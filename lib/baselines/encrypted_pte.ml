open Ptg_crypto

type t = { key : Qarma.key; sc : Qarma.scratch }

let create ~rng = { key = Qarma.key_of_rng rng; sc = Qarma.scratch () }

let tweak ~addr i = Block128.make ~hi:(Int64.of_int i) ~lo:addr

let map_chunks f line =
  let out = Array.make 8 0L in
  for i = 0 to 3 do
    let b = Block128.make ~hi:line.((2 * i) + 1) ~lo:line.(2 * i) in
    let c = f i b in
    out.(2 * i) <- c.Block128.lo;
    out.((2 * i) + 1) <- c.Block128.hi
  done;
  out

let encrypt_line t ~addr line =
  map_chunks (fun i b -> Qarma.encrypt_with t.sc t.key ~tweak:(tweak ~addr i) b) line

let decrypt_line t ~addr line =
  map_chunks (fun i b -> Qarma.decrypt_with t.sc t.key ~tweak:(tweak ~addr i) b) line

type consume_outcome =
  | Intact
  | Garbage_consumed of { wild_pfn : bool; looks_present : bool }

let consume t ~addr ~original ~stored =
  let decrypted = decrypt_line t ~addr stored in
  if Ptg_pte.Line.equal decrypted original then Intact
  else begin
    let wild_pfn = ref false and looks_present = ref false in
    Array.iteri
      (fun i w ->
        if not (Int64.equal w original.(i)) then begin
          if not (Int64.equal (Ptg_pte.X86.pfn w) (Ptg_pte.X86.pfn original.(i))) then
            wild_pfn := true;
          if Ptg_pte.X86.get_flag w Ptg_pte.X86.Present then looks_present := true
        end)
      decrypted;
    Garbage_consumed { wild_pfn = !wild_pfn; looks_present = !looks_present }
  end

(** An observability sink: one {!Registry} plus one {!Trace} ring, passed
    as a single [?obs] argument through every subsystem constructor.

    Disabled-by-default contract: a subsystem built without a sink keeps
    exactly its pre-observability behaviour — no RNG draws, no timing
    changes, and per-operation cost of a single [option] branch.

    For [Ptg_util.Pool.parallel_map] fan-outs, each task builds its own
    {!child} sink and the parent reduces them with {!merge_into} in task
    order after the join — snapshots and traces are therefore
    byte-identical for any job count. *)

type t

val create : ?trace_capacity:int -> unit -> t
val registry : t -> Registry.t
val trace : t -> Trace.t

val child : t -> t
(** A fresh empty sink with the same trace capacity; for per-task use. *)

val merge_into : src:t -> dst:t -> unit
(** Absorb [src]'s registry snapshot and append its trace into [dst]. *)

val metrics : t -> Registry.snapshot
val reset : t -> unit

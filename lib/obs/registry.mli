(** Metrics registry: named monotonic counters, gauges and histograms.

    Every metric is identified by a name plus an optional sorted label set
    (rendered [name{k="v",...}]). Metric handles are resolved once, at
    subsystem construction time, so the hot-path cost of an update is a
    single field mutation — and subsystems that were built without a
    registry pay only an [option] branch.

    A {!snapshot} flattens the registry into a sorted [(key, value)] list
    (histograms expand into [_count]/[_sum]/[_le_*] rows, all additive),
    which gives snapshots a simple algebra: {!diff} and {!merge} are
    pointwise, and {!absorb} folds a child registry's snapshot back into a
    parent — the mechanism behind deterministic cross-domain merging of
    per-task registries. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> ?labels:(string * string) list -> string -> counter
(** Get-or-create. Raises [Invalid_argument] if the key is already
    registered as a different metric kind, or if [name] is empty. *)

val incr : counter -> unit
val add : counter -> int -> unit
(** [add c n] requires [n >= 0] (counters are monotonic). *)

val counter_value : counter -> int

val gauge : t -> ?labels:(string * string) list -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram :
  t -> ?labels:(string * string) list -> ?buckets:float array -> string -> histogram
(** [buckets] are strictly-increasing upper bounds; an implicit [+inf]
    bucket is always appended. Default buckets suit cycle-count latencies:
    [25; 50; 100; 200; 400; 800]. *)

val observe : histogram -> float -> unit

type snapshot

val snapshot : t -> snapshot
(** Flattened, sorted view: own metrics plus everything {!absorb}ed. *)

val reset : t -> unit
(** Zero every registered metric and drop absorbed data. Registered
    handles stay valid. *)

val absorb : t -> snapshot -> unit
(** Add a snapshot's rows into this registry's next snapshots (pointwise
    sum). Used to reduce per-task registries in deterministic task order. *)

val rows : snapshot -> (string * float) list
val find : snapshot -> string -> float option
val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier]: pointwise [later - earlier] over the key union. *)

val merge : snapshot -> snapshot -> snapshot
(** Pointwise sum over the key union. *)

val equal : snapshot -> snapshot -> bool

val to_csv : snapshot -> string
(** [metric,value] lines with a header row; keys sorted, so byte-stable. *)

val to_jsonl : snapshot -> string
(** One [{"metric":...,"value":...}] object per line; keys sorted. *)

val save_csv : snapshot -> path:string -> unit
val save_jsonl : snapshot -> path:string -> unit

val json_escape : string -> string
(** JSON string-content escaping (shared with {!Trace}'s exporter). *)

(** Bounded structured event trace.

    A fixed-capacity ring of typed events: when full, the oldest event is
    dropped (and accounted for in {!dropped}). Events carry only primitive
    payloads so every subsystem — from the DRAM model up to the OS layer —
    can record into the same ring without dependency cycles.

    Export is deterministic: events appear in recording order, with a
    monotonically increasing global sequence number, so traces produced
    from per-task rings merged in task order are byte-stable across job
    counts. *)

type event =
  | Mac_verify of { addr : int64; ok : bool }
      (** A page-walk read's MAC check (before any correction attempt). *)
  | Correction of { addr : int64; step : string; guesses : int; ok : bool }
      (** A best-effort correction attempt; [step] is the strategy that
          fired ("uncorrectable" when every strategy failed). *)
  | Ctb_insert of { addr : int64 }
  | Ctb_overflow
  | Rekey of { writes : int }
  | Row_activation of { channel : int; bank : int; row : int; count : int }
      (** A row's activation count reached the configured hot threshold. *)
  | Tlb_miss of { vpn : int64 }
  | Mmu_cache_miss of { addr : int64 }
  | Cache_writeback of { addr : int64 }
      (** A dirty cacheline evicted and written back to DRAM. *)
  | Os_journal of { entry : string }
  | Server_request of { hash : int64; status : string; cache : string }
      (** One served scenario request: the canonical request hash, the
          response status ("ok" / "overloaded" / "error") and the cache
          disposition ("hit" / "miss" / "coalesced", "" when shed). *)
  | Router_request of { hash : int64; status : string; shard : string }
      (** One routed scenario request at the sharding router: the
          canonical request hash, the outcome status ("ok" / "hit" /
          "overloaded" / "timeout" / "error") and the shard index that
          answered ("" when served from the router cache or when no
          shard was live). *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: 4096 events. Raises [Invalid_argument] on
    [capacity < 1]. *)

val capacity : t -> int
val record : t -> event -> unit
val length : t -> int
(** Retained events. *)

val recorded : t -> int
(** Total events ever offered (retained + dropped). *)

val dropped : t -> int
val events : t -> event list
(** Retained events, oldest first. *)

val clear : t -> unit

val append : src:t -> dst:t -> unit
(** Record [src]'s retained events into [dst] in order; [src]'s dropped
    count carries over into [dst]'s accounting. [src] is unchanged. *)

val kind : event -> string
val attrs : event -> (string * string) list

val to_csv : t -> string
(** [seq,kind,attrs] rows; [attrs] is a ";"-joined [k=v] list. *)

val to_jsonl : t -> string
val save_csv : t -> path:string -> unit
val save_jsonl : t -> path:string -> unit

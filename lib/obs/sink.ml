type t = { registry : Registry.t; trace : Trace.t }

let create ?(trace_capacity = 4096) () =
  { registry = Registry.create (); trace = Trace.create ~capacity:trace_capacity () }

let registry t = t.registry
let trace t = t.trace
let child t = create ~trace_capacity:(Trace.capacity t.trace) ()

let merge_into ~src ~dst =
  Registry.absorb dst.registry (Registry.snapshot src.registry);
  Trace.append ~src:src.trace ~dst:dst.trace

let metrics t = Registry.snapshot t.registry

let reset t =
  Registry.reset t.registry;
  Trace.clear t.trace

type event =
  | Mac_verify of { addr : int64; ok : bool }
  | Correction of { addr : int64; step : string; guesses : int; ok : bool }
  | Ctb_insert of { addr : int64 }
  | Ctb_overflow
  | Rekey of { writes : int }
  | Row_activation of { channel : int; bank : int; row : int; count : int }
  | Tlb_miss of { vpn : int64 }
  | Mmu_cache_miss of { addr : int64 }
  | Cache_writeback of { addr : int64 }
  | Os_journal of { entry : string }
  | Server_request of { hash : int64; status : string; cache : string }
  | Router_request of { hash : int64; status : string; shard : string }

type t = {
  cap : int;
  buf : event array;
  mutable start : int; (* index of the oldest retained event *)
  mutable len : int;
  mutable recorded : int;
}

let create ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity";
  { cap = capacity; buf = Array.make capacity Ctb_overflow; start = 0; len = 0; recorded = 0 }

let capacity t = t.cap

let record t e =
  t.recorded <- t.recorded + 1;
  if t.len < t.cap then begin
    t.buf.((t.start + t.len) mod t.cap) <- e;
    t.len <- t.len + 1
  end
  else begin
    t.buf.(t.start) <- e;
    t.start <- (t.start + 1) mod t.cap
  end

let length t = t.len
let recorded t = t.recorded
let dropped t = t.recorded - t.len
let events t = List.init t.len (fun i -> t.buf.((t.start + i) mod t.cap))

let clear t =
  t.start <- 0;
  t.len <- 0;
  t.recorded <- 0

let append ~src ~dst =
  List.iter (record dst) (events src);
  (* Events src already lost are lost here too, but stay accounted. *)
  dst.recorded <- dst.recorded + dropped src

let kind = function
  | Mac_verify _ -> "mac_verify"
  | Correction _ -> "correction"
  | Ctb_insert _ -> "ctb_insert"
  | Ctb_overflow -> "ctb_overflow"
  | Rekey _ -> "rekey"
  | Row_activation _ -> "row_activation"
  | Tlb_miss _ -> "tlb_miss"
  | Mmu_cache_miss _ -> "mmu_cache_miss"
  | Cache_writeback _ -> "cache_writeback"
  | Os_journal _ -> "os_journal"
  | Server_request _ -> "server_request"
  | Router_request _ -> "router_request"

let hex a = Printf.sprintf "0x%Lx" a

let attrs = function
  | Mac_verify { addr; ok } -> [ ("addr", hex addr); ("ok", string_of_bool ok) ]
  | Correction { addr; step; guesses; ok } ->
      [
        ("addr", hex addr);
        ("step", step);
        ("guesses", string_of_int guesses);
        ("ok", string_of_bool ok);
      ]
  | Ctb_insert { addr } -> [ ("addr", hex addr) ]
  | Ctb_overflow -> []
  | Rekey { writes } -> [ ("writes", string_of_int writes) ]
  | Row_activation { channel; bank; row; count } ->
      [
        ("channel", string_of_int channel);
        ("bank", string_of_int bank);
        ("row", string_of_int row);
        ("count", string_of_int count);
      ]
  | Tlb_miss { vpn } -> [ ("vpn", hex vpn) ]
  | Mmu_cache_miss { addr } -> [ ("addr", hex addr) ]
  | Cache_writeback { addr } -> [ ("addr", hex addr) ]
  | Os_journal { entry } -> [ ("entry", entry) ]
  | Server_request { hash; status; cache } ->
      [
        ("hash", Printf.sprintf "%016Lx" hash);
        ("status", status);
        ("cache", cache);
      ]
  | Router_request { hash; status; shard } ->
      [
        ("hash", Printf.sprintf "%016Lx" hash);
        ("status", status);
        ("shard", shard);
      ]

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "seq,kind,attrs\n";
  let first_seq = dropped t in
  List.iteri
    (fun i e ->
      Buffer.add_string buf (string_of_int (first_seq + i));
      Buffer.add_char buf ',';
      Buffer.add_string buf (kind e);
      Buffer.add_char buf ',';
      Buffer.add_string buf
        (Ptg_util.Table.csv_field
           (String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) (attrs e))));
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

let to_jsonl t =
  let buf = Buffer.create 1024 in
  let first_seq = dropped t in
  List.iteri
    (fun i e ->
      Buffer.add_string buf
        (Printf.sprintf "{\"seq\":%d,\"kind\":\"%s\"" (first_seq + i) (kind e));
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf
            (Printf.sprintf ",\"%s\":\"%s\"" (Registry.json_escape k)
               (Registry.json_escape v)))
        (attrs e);
      Buffer.add_string buf "}\n")
    (events t);
  Buffer.contents buf

let save rendering t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (rendering t))

let save_csv = save to_csv
let save_jsonl = save to_jsonl

type counter = { c_key : string; mutable c : int }
type gauge = { g_key : string; mutable g : float }

type histogram = {
  h_name : string;
  h_labels : string; (* rendered "{k=\"v\",...}" or "" *)
  bounds : float array; (* strictly increasing upper bounds *)
  counts : int array; (* per-bound bucket counts; +inf bucket is implicit *)
  mutable sum : float;
  mutable n : int;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = {
  metrics : (string, metric) Hashtbl.t;
  mutable order : string list; (* registration order, for reset only *)
  mutable absorbed : (string * float) list; (* sorted, merged child rows *)
}

let create () = { metrics = Hashtbl.create 64; order = []; absorbed = [] }

let render_labels = function
  | [] -> ""
  | labels ->
      let labels =
        List.sort (fun (a, _) (b, _) -> String.compare a b) labels
      in
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
      ^ "}"

let check_name name =
  if name = "" then invalid_arg "Registry: empty metric name"

let register t key m =
  Hashtbl.replace t.metrics key m;
  t.order <- key :: t.order

let counter t ?(labels = []) name =
  check_name name;
  let key = name ^ render_labels labels in
  match Hashtbl.find_opt t.metrics key with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg ("Registry.counter: " ^ key ^ " is not a counter")
  | None ->
      let c = { c_key = key; c = 0 } in
      register t key (Counter c);
      c

let incr c = c.c <- c.c + 1

let add c n =
  if n < 0 then invalid_arg "Registry.add: counters are monotonic";
  c.c <- c.c + n

let counter_value c = c.c

let gauge t ?(labels = []) name =
  check_name name;
  let key = name ^ render_labels labels in
  match Hashtbl.find_opt t.metrics key with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg ("Registry.gauge: " ^ key ^ " is not a gauge")
  | None ->
      let g = { g_key = key; g = 0.0 } in
      register t key (Gauge g);
      g

let set_gauge g v = g.g <- v
let gauge_value g = g.g

let default_buckets = [| 25.0; 50.0; 100.0; 200.0; 400.0; 800.0 |]

let histogram t ?(labels = []) ?(buckets = default_buckets) name =
  check_name name;
  let rendered = render_labels labels in
  let key = name ^ rendered in
  match Hashtbl.find_opt t.metrics key with
  | Some (Histogram h) -> h
  | Some _ -> invalid_arg ("Registry.histogram: " ^ key ^ " is not a histogram")
  | None ->
      Array.iteri
        (fun i b ->
          if i > 0 && b <= buckets.(i - 1) then
            invalid_arg "Registry.histogram: buckets must strictly increase")
        buckets;
      let h =
        {
          h_name = name;
          h_labels = rendered;
          bounds = Array.copy buckets;
          counts = Array.make (Array.length buckets) 0;
          sum = 0.0;
          n = 0;
        }
      in
      register t key (Histogram h);
      h

let observe h v =
  h.n <- h.n + 1;
  h.sum <- h.sum +. v;
  (* counts.(i) is the non-cumulative count of observations <= bounds.(i)
     and > bounds.(i-1); flattening renders the cumulative view. *)
  let rec place i =
    if i >= Array.length h.bounds then ()
    else if v <= h.bounds.(i) then h.counts.(i) <- h.counts.(i) + 1
    else place (i + 1)
  in
  place 0

(* Snapshots: sorted (key, value) rows. *)

type snapshot = (string * float) list

let fmt_bound b =
  if Float.is_integer b then Printf.sprintf "%.0f" b else Printf.sprintf "%g" b

let flatten = function
  | Counter c -> [ (c.c_key, float_of_int c.c) ]
  | Gauge g -> [ (g.g_key, g.g) ]
  | Histogram h ->
      let tagged suffix = h.h_name ^ suffix ^ h.h_labels in
      let cumulative = ref 0 in
      let buckets =
        Array.to_list
          (Array.mapi
             (fun i b ->
               cumulative := !cumulative + h.counts.(i);
               (tagged ("_le_" ^ fmt_bound b), float_of_int !cumulative))
             h.bounds)
      in
      ((tagged "_count", float_of_int h.n) :: (tagged "_sum", h.sum) :: buckets)
      @ [ (tagged "_le_inf", float_of_int h.n) ]

let sort_rows rows =
  List.sort (fun (a, _) (b, _) -> String.compare a b) rows

(* Pointwise combine of two key-sorted row lists. *)
let rec combine op a b =
  match (a, b) with
  | [], rest -> List.map (fun (k, v) -> (k, op 0.0 v)) rest
  | rest, [] -> rest
  | (ka, va) :: ta, (kb, vb) :: tb ->
      let c = String.compare ka kb in
      if c = 0 then (ka, op va vb) :: combine op ta tb
      else if c < 0 then (ka, va) :: combine op ta ((kb, vb) :: tb)
      else (kb, op 0.0 vb) :: combine op ((ka, va) :: ta) tb

let merge a b = combine ( +. ) a b
let diff later earlier = combine ( -. ) later earlier

let snapshot t =
  let own =
    Hashtbl.fold (fun _ m acc -> List.rev_append (flatten m) acc) t.metrics []
  in
  merge (sort_rows own) t.absorbed

let reset t =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.c <- 0
      | Gauge g -> g.g <- 0.0
      | Histogram h ->
          Array.fill h.counts 0 (Array.length h.counts) 0;
          h.sum <- 0.0;
          h.n <- 0)
    t.metrics;
  t.absorbed <- []

let absorb t snap = t.absorbed <- merge t.absorbed snap
let rows s = s
let find s k = List.assoc_opt k s

let equal a b =
  List.length a = List.length b
  && List.for_all2 (fun (ka, va) (kb, vb) -> ka = kb && va = vb) a b

let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let to_csv s =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "metric,value\n";
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (Ptg_util.Table.csv_field k);
      Buffer.add_char buf ',';
      Buffer.add_string buf (fmt_value v);
      Buffer.add_char buf '\n')
    s;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_jsonl s =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf
        (Printf.sprintf "{\"metric\":\"%s\",\"value\":%s}\n" (json_escape k)
           (fmt_value v)))
    s;
  Buffer.contents buf

let save rendering s ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (rendering s))

let save_csv = save to_csv
let save_jsonl = save to_jsonl

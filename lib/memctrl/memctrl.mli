(** Memory controller with the PT-Guard engine on its DRAM port.

    This is the functional (bit-accurate) integration point: every line
    entering DRAM passes {!Ptguard.Engine.process_write} and every line
    leaving it passes {!Ptguard.Engine.process_read}, with the [is_pte]
    tag carried by page-walk requests (the paper's isPTE wire). The OS and
    applications access memory through {!phys_mem}, which performs
    read-modify-write cycles through the controller — so kernel PTE writes
    get their MACs embedded exactly as on real hardware, with no software
    cooperation. *)

type t

val create : ?engine:Ptguard.Engine.t -> ?obs:Ptg_obs.Sink.t -> Ptg_dram.Dram.t -> t
(** Without an [engine], the controller is the unprotected baseline.
    With [obs], the controller counts reads/writes ([memctrl_*]),
    failed page-walk reads, and a read-latency histogram; behaviour is
    otherwise unchanged. *)

val dram : t -> Ptg_dram.Dram.t
val engine : t -> Ptguard.Engine.t option

(** {2 Observer hook points}

    The attachment surface for mitigation plugins and passive
    observers ({!Ptg_mitigations.Registry} instances subscribe through
    these rather than bespoke wiring). Multiple observers may register;
    they run in subscription order. *)

val on_activate : t -> (Ptg_dram.Geometry.coords -> unit) -> unit
(** Called on every DRAM row activation (forwards to
    {!Ptg_dram.Dram.on_activate} on the controller's device). *)

val on_refresh : t -> (channel:int -> bank:int -> row:int -> unit) -> unit
(** Called on every targeted row refresh (forwards to
    {!Ptg_dram.Dram.subscribe_refresh}). *)

val on_line_read : t -> (addr:int64 -> is_pte:bool -> unit) -> unit
(** Called at the start of every {!read_line} with the request's
    line address and isPTE tag — the stream the DRAM layer cannot see. *)

type read = {
  data : Ptg_pte.Line.t option;
      (** [None] when a page-walk read failed its integrity check
          (PTECheckFailed: the line is not forwarded). *)
  integrity : Ptguard.Engine.integrity;
  latency : int;  (** DRAM latency + integrity-engine delay *)
}

val now : t -> int
(** The controller's current clock (max of all [~now] values seen). *)

val set_now : t -> int -> unit
(** Overwrite the clock (checkpoint restore). *)

val read_line : t -> ?now:int -> addr:int64 -> is_pte:bool -> unit -> read
val write_line : t -> ?now:int -> addr:int64 -> Ptg_pte.Line.t -> unit -> int
(** Returns the write latency. *)

val phys_mem : t -> Ptg_vm.Phys_mem.t
(** Word-granularity OS/application view (untimed, read-modify-write
    through the engine, tagged as data accesses). Reads of a tampered
    protected line return the raw stored bits — the situation where the
    paper's OS-side PFN bounds check (Section IV-E) applies. *)

val rekey : t -> rng:Ptg_util.Rng.t -> unit
(** Full-memory re-keying sweep over every stored line (Section VII-B). *)

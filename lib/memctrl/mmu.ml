open Ptg_vm

type outcome =
  | Translated of { paddr : int64; pte : int64; latency : int }
  | Not_present of { level : Page_table.level; latency : int }
  | Integrity_failure of {
      level : Page_table.level;
      line_addr : int64;
      latency : int;
    }
  | Corrected_then_translated of {
      paddr : int64;
      pte : int64;
      step : Ptguard.Correction.step;
      guesses : int;
      latency : int;
    }

let levels = [ Page_table.Pml4; Page_table.Pdpt; Page_table.Pd; Page_table.Pt ]

let walk mc ~root ~vaddr =
  let latency = ref 0 in
  let correction = ref None in
  let rec go table_paddr = function
    | [] ->
        invalid_arg
          (Printf.sprintf
             "Mmu.walk: exhausted page-table levels below the PT without \
              terminating (vaddr 0x%Lx, table 0x%Lx): malformed walk \
              configuration"
             vaddr table_paddr)
    | level :: deeper -> (
        let entry_addr =
          Int64.add table_paddr (Int64.of_int (Page_table.level_index level vaddr * 8))
        in
        let line_addr = Ptg_pte.Line.line_addr entry_addr in
        let r = Memctrl.read_line mc ~addr:line_addr ~is_pte:true () in
        latency := !latency + r.Memctrl.latency;
        (match r.Memctrl.integrity with
        | Ptguard.Engine.Corrected { step; guesses } ->
            correction := Some (step, guesses)
        | _ -> ());
        match r.Memctrl.data with
        | None -> Integrity_failure { level; line_addr; latency = !latency }
        | Some line ->
            let entry = line.(Int64.to_int (Int64.logand entry_addr 63L) / 8) in
            if not (Ptg_pte.X86.get_flag entry Ptg_pte.X86.Present) then
              Not_present { level; latency = !latency }
            else begin
              let huge =
                level = Page_table.Pd
                && Ptg_pte.X86.get_flag entry Ptg_pte.X86.Huge_page
              in
              match deeper with
              | _ when huge ->
                  (* 2 MB mapping terminates the walk at the PD. *)
                  let paddr =
                    Int64.logor (Ptg_pte.X86.phys_addr entry)
                      (Int64.logand vaddr 0x1F_FFFFL)
                  in
                  (match !correction with
                  | Some (step, guesses) ->
                      Corrected_then_translated
                        { paddr; pte = entry; step; guesses; latency = !latency }
                  | None -> Translated { paddr; pte = entry; latency = !latency })
              | [] ->
                  let paddr =
                    Int64.logor (Ptg_pte.X86.phys_addr entry)
                      (Int64.logand vaddr 0xfffL)
                  in
                  (match !correction with
                  | Some (step, guesses) ->
                      Corrected_then_translated
                        { paddr; pte = entry; step; guesses; latency = !latency }
                  | None -> Translated { paddr; pte = entry; latency = !latency })
              | _ ->
                  go (Int64.shift_left (Ptg_pte.X86.pfn entry) 12) deeper
            end)
  in
  go root levels

let pp_outcome fmt = function
  | Translated { paddr; pte; latency } ->
      Format.fprintf fmt "translated -> 0x%Lx (pte %a, %d cycles)" paddr
        Ptg_pte.X86.pp pte latency
  | Not_present { level; latency } ->
      Format.fprintf fmt "not present at %a (%d cycles)" Page_table.pp_level level
        latency
  | Integrity_failure { level; line_addr; latency } ->
      Format.fprintf fmt
        "PTE INTEGRITY FAILURE at %a (line 0x%Lx, %d cycles): exception to OS"
        Page_table.pp_level level line_addr latency
  | Corrected_then_translated { paddr; step; guesses; latency; _ } ->
      Format.fprintf fmt
        "translated -> 0x%Lx after correction (%s, %d guesses, %d cycles)" paddr
        (Ptguard.Correction.step_name step)
        guesses latency

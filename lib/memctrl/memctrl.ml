type obs = {
  o_reads_total : Ptg_obs.Registry.counter;
  o_reads_pte : Ptg_obs.Registry.counter;
  o_reads_failed : Ptg_obs.Registry.counter;
  o_writes_total : Ptg_obs.Registry.counter;
  o_read_latency : Ptg_obs.Registry.histogram;
}

let obs_of_sink sink =
  let reg = Ptg_obs.Sink.registry sink in
  let c = Ptg_obs.Registry.counter reg in
  {
    o_reads_total = c "memctrl_reads_total";
    o_reads_pte = c "memctrl_reads_pte";
    o_reads_failed = c "memctrl_reads_failed";
    o_writes_total = c "memctrl_writes_total";
    o_read_latency = Ptg_obs.Registry.histogram reg "memctrl_read_latency";
  }

type t = {
  dram : Ptg_dram.Dram.t;
  engine : Ptguard.Engine.t option;
  obs : obs option;
  mutable now : int;
  mutable line_read_hooks : (addr:int64 -> is_pte:bool -> unit) list;
      (* newest first; invoked in subscription order on every read_line *)
}

let create ?engine ?obs dram =
  {
    dram;
    engine;
    obs = Option.map obs_of_sink obs;
    now = 0;
    line_read_hooks = [];
  }

let dram t = t.dram
let engine t = t.engine
let now t = t.now
let set_now t now = t.now <- now

(* Observer hook points. Activation and refresh observers forward to the
   DRAM device (one subscription stream shared with the mitigations);
   line-read observers are the controller's own — they see the request
   stream with its isPTE tag, which the DRAM layer does not carry. *)
let on_activate t f = Ptg_dram.Dram.on_activate t.dram f
let on_refresh t f = Ptg_dram.Dram.subscribe_refresh t.dram f

let on_line_read t f = t.line_read_hooks <- t.line_read_hooks @ [ f ]

let obs_incr t sel =
  match t.obs with None -> () | Some o -> Ptg_obs.Registry.incr (sel o)

type read = {
  data : Ptg_pte.Line.t option;
  integrity : Ptguard.Engine.integrity;
  latency : int;
}

let advance t = function
  | Some now -> t.now <- max t.now now
  | None -> t.now <- t.now + 1

let read_line t ?now ~addr ~is_pte () =
  advance t now;
  List.iter (fun f -> f ~addr ~is_pte) t.line_read_hooks;
  obs_incr t (fun o -> o.o_reads_total);
  if is_pte then obs_incr t (fun o -> o.o_reads_pte);
  let r = Ptg_dram.Dram.access t.dram ~now:t.now ~addr ~is_write:false in
  let stored = Ptg_dram.Dram.read_line t.dram addr in
  let result =
    match t.engine with
    | None ->
        {
          data = Some stored;
          integrity = Ptguard.Engine.Data_passthrough;
          latency = r.Ptg_dram.Dram.latency;
        }
    | Some engine ->
        let g = Ptguard.Engine.process_read engine ~addr ~is_pte stored in
        {
          data = g.Ptguard.Engine.line;
          integrity = g.Ptguard.Engine.integrity;
          latency = r.Ptg_dram.Dram.latency + g.Ptguard.Engine.extra_latency;
        }
  in
  (match t.obs with
  | None -> ()
  | Some o ->
      if result.data = None then Ptg_obs.Registry.incr o.o_reads_failed;
      Ptg_obs.Registry.observe o.o_read_latency (float_of_int result.latency));
  result

let write_line t ?now ~addr line () =
  advance t now;
  obs_incr t (fun o -> o.o_writes_total);
  let r = Ptg_dram.Dram.access t.dram ~now:t.now ~addr ~is_write:true in
  let stored =
    match t.engine with
    | None -> line
    | Some engine -> Ptguard.Engine.process_write engine ~addr line
  in
  Ptg_dram.Dram.write_line t.dram addr stored;
  r.Ptg_dram.Dram.latency

(* Word-level OS view: an untimed read-modify-write cycle through the
   controller. Data reads of a tampered protected line pass the raw bits
   through — intentionally, see Section IV-E. *)
let phys_mem t =
  let read_raw addr =
    match read_line t ~addr ~is_pte:false () with
    | { data = Some line; _ } -> line
    | { data = None; _ } -> assert false (* data reads always forward *)
  in
  {
    Ptg_vm.Phys_mem.read_word =
      (fun addr ->
        let line = read_raw (Ptg_pte.Line.line_addr addr) in
        line.(Int64.to_int (Int64.logand addr 63L) / 8));
    write_word =
      (fun addr v ->
        let base = Ptg_pte.Line.line_addr addr in
        let line = read_raw base in
        line.(Int64.to_int (Int64.logand addr 63L) / 8) <- v;
        ignore (write_line t ~addr:base line ()));
  }

let rekey t ~rng =
  match t.engine with
  | None -> ()
  | Some engine ->
      Ptguard.Engine.rekey engine ~rng
        ~iter_lines:(fun visit ->
          Ptg_dram.Dram.iter_stored t.dram (fun addr line -> visit ~addr line))
        ~write:(fun ~addr line -> Ptg_dram.Dram.write_line t.dram addr line)

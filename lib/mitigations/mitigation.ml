(* Thin wrappers over the plugin registry. The implementation bodies
   live in Registry (lib/mitigations/registry.ml); these entry points
   keep the historical signatures and Invalid_argument messages, and
   double as the differential oracles for the registry path. *)

type t = Registry.instance

let name = Registry.instance_name
let refreshes_issued = Registry.refreshes_issued
let detach = Registry.detach

let ok_or_invalid = function Ok t -> t | Error msg -> invalid_arg msg

let attach_trr ?(sampler_size = 4) ?(ref_interval_acts = 166)
    ?(sample_window = 8) dram =
  ok_or_invalid
    (Registry.instantiate
       ~params:
         [
           ("sampler_size", Registry.Int sampler_size);
           ("ref_interval_acts", Registry.Int ref_interval_acts);
           ("sample_window", Registry.Int sample_window);
         ]
       "trr" (Registry.ctx dram))

let attach_para ?(p = 0.001) ~rng dram =
  ok_or_invalid
    (Registry.instantiate
       ~params:[ ("p", Registry.Float p) ]
       "para"
       (Registry.ctx ~rng dram))

let attach_graphene ?(counters = 128) ?(threshold = 2500) dram =
  ok_or_invalid
    (Registry.instantiate
       ~params:
         [
           ("counters", Registry.Int counters);
           ("threshold", Registry.Int threshold);
         ]
       "graphene" (Registry.ctx dram))

let attach_soft_trr ?(threshold = 2500) ~pt_row dram =
  ok_or_invalid
    (Registry.instantiate
       ~params:[ ("threshold", Registry.Int threshold) ]
       "soft-trr"
       (Registry.ctx ~pt_row dram))

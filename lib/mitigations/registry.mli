(** Named mitigation plugins with typed parameter schemas.

    The registry is the extensibility point ramulator2 gets from its
    [IControllerPlugin] implementations: a defense registers once, by
    name, with a schema of typed parameters (ints, floats, booleans,
    each with a default), and every front-end — the CLI's
    [trace replay --mitigation], the server's [kind:"trace"] scenarios,
    and the programmatic {!Mitigation.attach_trr}-style wrappers —
    instantiates it through the same validated path. Unknown plugin
    names, unknown parameter keys and type mismatches are rejected with
    messages that name the valid alternatives.

    Built-ins registered at load time: [trr], [para], [soft-trr],
    [graphene] (see {!Mitigation} for their semantics). *)

type instance
(** A live mitigation subscribed to a DRAM device. [Mitigation.t] is an
    alias of this type; use {!Mitigation.name},
    {!Mitigation.refreshes_issued} and {!Mitigation.detach} (re-exported
    below) to interact with one. *)

val instance_name : instance -> string
val refreshes_issued : instance -> int
val detach : instance -> unit

val save_state : instance -> (string * int64) list
(** The plugin's mutable state as a flat, canonically-ordered key/value
    image (always includes a ["refreshes"] entry; plugin-internal tables
    follow under plugin-chosen keys). Snapshots embed this image so a
    restored simulation resumes with identical mitigation behaviour. *)

val restore_state : instance -> (string * int64) list -> unit
(** Overwrite the plugin's state with a previously captured image. The
    instance must come from the same plugin with the same parameters.
    Raises [Invalid_argument] on a malformed image. *)

(** {1 Typed parameters} *)

type value = Int of int | Float of float | Bool of bool

val value_to_string : value -> string
(** Canonical rendering: decimal ints, [%.17g] floats, [true]/[false]. *)

val value_of_string : like:value -> string -> (value, string) result
(** Parse a CLI token with the type carried by [like] (a parameter's
    default). Rejects non-finite floats. *)

type param = {
  key : string;
  doc : string;
  default : value;  (** also fixes the parameter's type *)
}

(** {1 Instantiation context}

    What a plugin may need beyond the DRAM device itself. Plugins state
    their requirements by failing instantiation with a descriptive
    error when a needed capability is absent. *)

type ctx = {
  dram : Ptg_dram.Dram.t;
  rng : Ptg_util.Rng.t option;
      (** randomized defenses (PARA) refuse to instantiate without one *)
  pt_row : (channel:int -> bank:int -> row:int -> bool) option;
      (** page-table-row oracle; required by [soft-trr] *)
}

val ctx :
  ?rng:Ptg_util.Rng.t ->
  ?pt_row:(channel:int -> bank:int -> row:int -> bool) ->
  Ptg_dram.Dram.t ->
  ctx

(** {1 Registration and lookup} *)

val register :
  name:string ->
  doc:string ->
  params:param list ->
  ((string -> value) -> ctx -> instance) ->
  unit
(** [register ~name ~doc ~params build] adds a plugin. [build get ctx]
    receives a resolver [get] that returns the validated value of each
    declared parameter (override or default). Raises [Invalid_argument]
    on a duplicate name or a duplicate parameter key. *)

val names : unit -> string list
(** Registered plugin names, in registration order (built-ins first). *)

val doc : string -> string option
val params : string -> param list option

val resolved_params : string -> (string * value) list -> (string * value) list option
(** [resolved_params name overrides] is the full parameter set of
    [name] — defaults overlaid with [overrides], sorted by key — or
    [None] for an unknown plugin. Unknown override keys are ignored
    here; use {!check_params} first. *)

val check_params : string -> (string * value) list -> (unit, string) result
(** Validate override keys and types against [name]'s schema without
    instantiating (the server does this during scenario validation). *)

val instantiate :
  ?params:(string * value) list -> string -> ctx -> (instance, string) result
(** Look up by name, validate the overrides, and build. All failure
    modes — unknown plugin, unknown key, type mismatch, out-of-range
    value, missing context capability — come back as [Error msg]. *)

(** {1 CLI spec syntax}

    [NAME] or [NAME:key=value,key=value] — e.g. [para:p=0.002]. *)

val parse_spec : string -> (string * (string * value) list, string) result
(** Split and type-check a spec string against the named plugin's
    schema. *)

val of_spec : string -> ctx -> (instance, string) result
(** [parse_spec] followed by {!instantiate}. *)

val spec_help : unit -> string
(** One line per plugin: name, parameters with defaults, and doc — for
    CLI error messages and [--help] text. *)

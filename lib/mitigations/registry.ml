type instance = {
  name : string;
  mutable refreshes : int;
  mutable active : bool;
  (* Checkpoint capability: a flat, canonically-ordered key/value image of
     the plugin's internal state (sampler tables, counters, coin-flip RNG).
     Builders without hidden state keep the empty defaults. *)
  mutable save : unit -> (string * int64) list;
  mutable restore : (string * int64) list -> unit;
}

let make_instance name =
  { name; refreshes = 0; active = true; save = (fun () -> []); restore = ignore }

let instance_name i = i.name
let refreshes_issued i = i.refreshes
let detach i = i.active <- false

let save_state i = ("refreshes", Int64.of_int i.refreshes) :: i.save ()

let restore_state i kvs =
  (match List.assoc_opt "refreshes" kvs with
  | Some n -> i.refreshes <- Int64.to_int n
  | None -> ());
  i.restore (List.remove_assoc "refreshes" kvs)

(* ------------------------------------------------------------------ *)
(* Typed parameters                                                    *)
(* ------------------------------------------------------------------ *)

type value = Int of int | Float of float | Bool of bool

let type_name = function Int _ -> "int" | Float _ -> "float" | Bool _ -> "bool"

let value_to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.17g" f
  | Bool b -> string_of_bool b

let value_of_string ~like s =
  match like with
  | Int _ -> (
      match int_of_string_opt s with
      | Some i -> Ok (Int i)
      | None -> Error (Printf.sprintf "%S is not an int" s))
  | Float _ -> (
      match float_of_string_opt s with
      | Some f when Float.is_finite f -> Ok (Float f)
      | Some _ -> Error (Printf.sprintf "%S is not a finite float" s)
      | None -> Error (Printf.sprintf "%S is not a float" s))
  | Bool _ -> (
      match bool_of_string_opt s with
      | Some b -> Ok (Bool b)
      | None -> Error (Printf.sprintf "%S is not a bool (true/false)" s))

type param = { key : string; doc : string; default : value }

type ctx = {
  dram : Ptg_dram.Dram.t;
  rng : Ptg_util.Rng.t option;
  pt_row : (channel:int -> bank:int -> row:int -> bool) option;
}

let ctx ?rng ?pt_row dram = { dram; rng; pt_row }

type plugin = {
  plugin_name : string;
  plugin_doc : string;
  plugin_params : param list;
  build : (string -> value) -> ctx -> instance;
}

(* Registration order is the presentation order (built-ins first), so
   [names] is stable for docs and for the README sync gate. *)
let plugins : plugin list ref = ref []

let find name =
  List.find_opt (fun p -> p.plugin_name = name) !plugins

let register ~name ~doc ~params build =
  if find name <> None then
    invalid_arg (Printf.sprintf "Registry.register: duplicate plugin %S" name);
  let rec dup_key = function
    | [] -> None
    | p :: rest ->
        if List.exists (fun q -> q.key = p.key) rest then Some p.key
        else dup_key rest
  in
  (match dup_key params with
  | Some k ->
      invalid_arg
        (Printf.sprintf "Registry.register: %s: duplicate parameter %S" name k)
  | None -> ());
  plugins :=
    !plugins
    @ [ { plugin_name = name; plugin_doc = doc; plugin_params = params; build } ]

let names () = List.map (fun p -> p.plugin_name) !plugins
let doc name = Option.map (fun p -> p.plugin_doc) (find name)
let params name = Option.map (fun p -> p.plugin_params) (find name)

let unknown_plugin name =
  Printf.sprintf "unknown mitigation %S (registered: %s)" name
    (String.concat ", " (names ()))

let check_overrides plugin overrides =
  List.fold_left
    (fun acc (key, v) ->
      Result.bind acc (fun () ->
          match List.find_opt (fun p -> p.key = key) plugin.plugin_params with
          | None ->
              Error
                (Printf.sprintf "%s: unknown parameter %S (valid: %s)"
                   plugin.plugin_name key
                   (String.concat ", "
                      (List.map (fun p -> p.key) plugin.plugin_params)))
          | Some p ->
              if type_name p.default = type_name v then Ok ()
              else
                Error
                  (Printf.sprintf "%s: parameter %s must be %s, got %s %s"
                     plugin.plugin_name key (type_name p.default) (type_name v)
                     (value_to_string v))))
    (Ok ()) overrides

let check_params name overrides =
  match find name with
  | None -> Error (unknown_plugin name)
  | Some plugin -> check_overrides plugin overrides

let resolved_of plugin overrides =
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (List.map
       (fun p ->
         ( p.key,
           match List.assoc_opt p.key overrides with
           | Some v -> v
           | None -> p.default ))
       plugin.plugin_params)

let resolved_params name overrides =
  Option.map (fun p -> resolved_of p overrides) (find name)

let instantiate ?(params = []) name ctx =
  match find name with
  | None -> Error (unknown_plugin name)
  | Some plugin -> (
      match check_overrides plugin params with
      | Error _ as e -> e
      | Ok () ->
          let resolved = resolved_of plugin params in
          let get key =
            match List.assoc_opt key resolved with
            | Some v -> v
            | None ->
                invalid_arg
                  (Printf.sprintf "Registry: %s has no parameter %S" name key)
          in
          (* Range checks and context requirements live in the builders;
             both surface as Invalid_argument and come back as Error. *)
          (try Ok (plugin.build get ctx) with Invalid_argument msg -> Error msg))

(* ------------------------------------------------------------------ *)
(* CLI spec syntax: NAME[:key=value,key=value]                         *)
(* ------------------------------------------------------------------ *)

let parse_spec spec =
  let name, args =
    match String.index_opt spec ':' with
    | None -> (spec, "")
    | Some i ->
        (String.sub spec 0 i, String.sub spec (i + 1) (String.length spec - i - 1))
  in
  match find name with
  | None -> Error (unknown_plugin name)
  | Some plugin ->
      let bindings =
        if args = "" then [] else String.split_on_char ',' args
      in
      List.fold_left
        (fun acc binding ->
          Result.bind acc (fun parsed ->
              match String.index_opt binding '=' with
              | None ->
                  Error
                    (Printf.sprintf
                       "%s: malformed parameter %S (want key=value)" name
                       binding)
              | Some i ->
                  let key = String.sub binding 0 i in
                  let raw =
                    String.sub binding (i + 1) (String.length binding - i - 1)
                  in
                  (match
                     List.find_opt (fun p -> p.key = key) plugin.plugin_params
                   with
                  | None ->
                      Error
                        (Printf.sprintf "%s: unknown parameter %S (valid: %s)"
                           name key
                           (String.concat ", "
                              (List.map (fun p -> p.key) plugin.plugin_params)))
                  | Some p -> (
                      match value_of_string ~like:p.default raw with
                      | Ok v -> Ok (parsed @ [ (key, v) ])
                      | Error e ->
                          Error (Printf.sprintf "%s: parameter %s: %s" name key e)))))
        (Ok []) bindings
      |> Result.map (fun parsed -> (name, parsed))

let of_spec spec ctx =
  Result.bind (parse_spec spec) (fun (name, params) -> instantiate ~params name ctx)

let spec_help () =
  String.concat "\n"
    (List.map
       (fun p ->
         Printf.sprintf "  %-9s %s%s" p.plugin_name
           (match p.plugin_params with
           | [] -> ""
           | ps ->
               "("
               ^ String.concat ", "
                   (List.map
                      (fun q ->
                        Printf.sprintf "%s:%s=%s" q.key (type_name q.default)
                          (value_to_string q.default))
                      ps)
               ^ ") ")
           p.plugin_doc)
       !plugins)

(* ------------------------------------------------------------------ *)
(* Typed getters for builders                                          *)
(* ------------------------------------------------------------------ *)

let get_int get key =
  match get key with Int i -> i | _ -> invalid_arg ("Registry: " ^ key)

let get_float get key =
  match get key with Float f -> f | _ -> invalid_arg ("Registry: " ^ key)

let require_rng ~plugin ctx =
  match ctx.rng with
  | Some rng -> rng
  | None ->
      invalid_arg
        (Printf.sprintf "%s requires a random stream (supply a seed/rng)" plugin)

let require_pt_row ~plugin ctx =
  match ctx.pt_row with
  | Some f -> f
  | None ->
      invalid_arg
        (Printf.sprintf
           "%s requires a page-table-row oracle (supply pt_row)" plugin)

(* ------------------------------------------------------------------ *)
(* Built-in defenses                                                   *)
(*                                                                     *)
(* The bodies below are the reference implementations; the             *)
(* Mitigation.attach_* entry points are thin wrappers over             *)
(* [instantiate] and serve as the differential oracles for the         *)
(* registry path (see test/test_registry.ml).                          *)
(* ------------------------------------------------------------------ *)

let refresh_neighbors t dram ~channel ~bank ~row =
  let geometry = Ptg_dram.Dram.geometry dram in
  List.iter
    (fun r ->
      Ptg_dram.Dram.refresh_row dram ~channel ~bank ~row:r;
      t.refreshes <- t.refreshes + 1)
    (Ptg_dram.Geometry.row_neighbors geometry row ~distance:1)

(* --- TRR ------------------------------------------------------------- *)

type trr_entry = { row : int; mutable count : int; inserted_at : int }

type trr_bank = {
  mutable entries : trr_entry list; (* newest first, length <= sampler_size *)
  mutable acts_since_ref : int;
  mutable acts_total : int;
}

let make_trr ~sampler_size ~ref_interval_acts ~sample_window dram =
  if sampler_size < 1 then invalid_arg "Mitigation.attach_trr: sampler_size";
  if ref_interval_acts < 1 then
    invalid_arg "Mitigation.attach_trr: ref_interval_acts";
  if sample_window < 0 then invalid_arg "Mitigation.attach_trr: sample_window";
  let t = make_instance "TRR" in
  let banks : (int * int, trr_bank) Hashtbl.t = Hashtbl.create 32 in
  let bank_state channel bank =
    let key = (channel, bank) in
    match Hashtbl.find_opt banks key with
    | Some b -> b
    | None ->
        let b = { entries = []; acts_since_ref = 0; acts_total = 0 } in
        Hashtbl.replace banks key b;
        b
  in
  t.save <-
    (fun () ->
      let keys =
        Hashtbl.fold (fun k _ acc -> k :: acc) banks [] |> List.sort compare
      in
      List.concat_map
        (fun (c, bk) ->
          let b = Hashtbl.find banks (c, bk) in
          let prefix = Printf.sprintf "%d.%d." c bk in
          [
            (prefix ^ "asr", Int64.of_int b.acts_since_ref);
            (prefix ^ "att", Int64.of_int b.acts_total);
            (prefix ^ "n", Int64.of_int (List.length b.entries));
          ]
          @ List.concat
              (List.mapi
                 (fun i e ->
                   let ep = Printf.sprintf "%se%d." prefix i in
                   [
                     (ep ^ "row", Int64.of_int e.row);
                     (ep ^ "count", Int64.of_int e.count);
                     (ep ^ "at", Int64.of_int e.inserted_at);
                   ])
                 b.entries))
        keys);
  t.restore <-
    (fun kvs ->
      Hashtbl.reset banks;
      let get k =
        match List.assoc_opt k kvs with
        | Some v -> Int64.to_int v
        | None -> invalid_arg (Printf.sprintf "trr restore: missing %S" k)
      in
      List.iter
        (fun (k, v) ->
          match String.split_on_char '.' k with
          | [ c; bk; "asr" ] ->
              let c = int_of_string c and bk = int_of_string bk in
              let prefix = Printf.sprintf "%d.%d." c bk in
              let n = get (prefix ^ "n") in
              let entries =
                List.init n (fun i ->
                    let ep = Printf.sprintf "%se%d." prefix i in
                    {
                      row = get (ep ^ "row");
                      count = get (ep ^ "count");
                      inserted_at = get (ep ^ "at");
                    })
              in
              Hashtbl.replace banks (c, bk)
                {
                  entries;
                  acts_since_ref = Int64.to_int v;
                  acts_total = get (prefix ^ "att");
                }
          | _ -> ())
        kvs);
  Ptg_dram.Dram.on_activate dram (fun c ->
      if t.active then begin
        let channel = c.Ptg_dram.Geometry.channel
        and bank = c.Ptg_dram.Geometry.bank
        and row = c.Ptg_dram.Geometry.row in
        let b = bank_state channel bank in
        b.acts_total <- b.acts_total + 1;
        if b.acts_since_ref < sample_window then begin
        (match List.find_opt (fun e -> e.row = row) b.entries with
        | Some e -> e.count <- e.count + 1
        | None ->
            let entry = { row; count = 1; inserted_at = b.acts_total } in
            if List.length b.entries < sampler_size then
              b.entries <- entry :: b.entries
            else begin
              (* Sampler full: evict the oldest entry, losing its history.
                 With more distinct aggressors than sampler entries, no row
                 ever accumulates a meaningful count. *)
              let oldest =
                List.fold_left
                  (fun acc e -> if e.inserted_at < acc.inserted_at then e else acc)
                  (List.hd b.entries) b.entries
              in
              b.entries <-
                entry :: List.filter (fun e -> e != oldest) b.entries
            end)
        end;
        b.acts_since_ref <- b.acts_since_ref + 1;
        if b.acts_since_ref >= ref_interval_acts then begin
          b.acts_since_ref <- 0;
          (* REF-time mitigation: refresh neighbours of the hottest entry. *)
          match b.entries with
          | [] -> ()
          | e :: rest ->
              let hottest =
                List.fold_left (fun acc e -> if e.count > acc.count then e else acc) e rest
              in
              b.entries <- List.filter (fun e -> e != hottest) b.entries;
              refresh_neighbors t dram ~channel ~bank ~row:hottest.row
        end
      end);
  t

(* --- PARA ------------------------------------------------------------ *)

let make_para ~p ~rng dram =
  if p < 0.0 || p > 1.0 then invalid_arg "Mitigation.attach_para: p";
  let t = make_instance "PARA" in
  t.save <-
    (fun () ->
      Array.to_list (Ptg_util.Rng.state rng)
      |> List.mapi (fun i w -> (Printf.sprintf "rng.%d" i, w)));
  t.restore <-
    (fun kvs ->
      let word i =
        match List.assoc_opt (Printf.sprintf "rng.%d" i) kvs with
        | Some w -> w
        | None -> invalid_arg "para restore: missing rng word"
      in
      Ptg_util.Rng.set_state rng (Array.init 4 word));
  let geometry = Ptg_dram.Dram.geometry dram in
  Ptg_dram.Dram.on_activate dram (fun c ->
      if t.active then
        List.iter
          (fun r ->
            if Ptg_util.Rng.bernoulli rng p then begin
              Ptg_dram.Dram.refresh_row dram ~channel:c.Ptg_dram.Geometry.channel
                ~bank:c.Ptg_dram.Geometry.bank ~row:r;
              t.refreshes <- t.refreshes + 1
            end)
          (Ptg_dram.Geometry.row_neighbors geometry c.Ptg_dram.Geometry.row
             ~distance:1));
  t

(* --- Graphene -------------------------------------------------------- *)

type graphene_bank = {
  counts : (int, int) Hashtbl.t; (* Misra-Gries estimated counts *)
  mutable spillover : int;
}

let make_graphene ~counters ~threshold dram =
  if counters < 1 || threshold < 1 then invalid_arg "Mitigation.attach_graphene";
  let t = make_instance "Graphene" in
  let banks : (int * int, graphene_bank) Hashtbl.t = Hashtbl.create 32 in
  let bank_state channel bank =
    let key = (channel, bank) in
    match Hashtbl.find_opt banks key with
    | Some b -> b
    | None ->
        let b = { counts = Hashtbl.create counters; spillover = 0 } in
        Hashtbl.replace banks key b;
        b
  in
  t.save <-
    (fun () ->
      let keys =
        Hashtbl.fold (fun k _ acc -> k :: acc) banks [] |> List.sort compare
      in
      List.concat_map
        (fun (c, bk) ->
          let b = Hashtbl.find banks (c, bk) in
          let rows =
            Hashtbl.fold (fun r n acc -> (r, n) :: acc) b.counts []
            |> List.sort compare
          in
          (Printf.sprintf "%d.%d.spill" c bk, Int64.of_int b.spillover)
          :: List.map
               (fun (r, n) ->
                 (Printf.sprintf "%d.%d.row.%d" c bk r, Int64.of_int n))
               rows)
        keys);
  t.restore <-
    (fun kvs ->
      Hashtbl.reset banks;
      List.iter
        (fun (k, v) ->
          match String.split_on_char '.' k with
          | [ c; bk; "spill" ] ->
              let b = bank_state (int_of_string c) (int_of_string bk) in
              b.spillover <- Int64.to_int v
          | [ c; bk; "row"; r ] ->
              let b = bank_state (int_of_string c) (int_of_string bk) in
              Hashtbl.replace b.counts (int_of_string r) (Int64.to_int v)
          | _ -> ())
        kvs);
  Ptg_dram.Dram.on_activate dram (fun c ->
      if t.active then begin
        let channel = c.Ptg_dram.Geometry.channel
        and bank = c.Ptg_dram.Geometry.bank
        and row = c.Ptg_dram.Geometry.row in
        let b = bank_state channel bank in
        (match Hashtbl.find_opt b.counts row with
        | Some n -> Hashtbl.replace b.counts row (n + 1)
        | None ->
            if Hashtbl.length b.counts < counters then Hashtbl.replace b.counts row 1
            else begin
              (* Misra-Gries decrement step: no entry is ever silently
                 undercounted by more than the spillover. *)
              b.spillover <- b.spillover + 1;
              let doomed =
                Hashtbl.fold
                  (fun r n acc -> if n <= 1 then r :: acc else acc)
                  b.counts []
              in
              if doomed = [] then begin
                let all = Hashtbl.fold (fun r n acc -> (r, n) :: acc) b.counts [] in
                List.iter (fun (r, n) -> Hashtbl.replace b.counts r (n - 1)) all
              end
              else List.iter (Hashtbl.remove b.counts) doomed;
              Hashtbl.replace b.counts row 1
            end);
        match Hashtbl.find_opt b.counts row with
        | Some n when n >= threshold ->
            Hashtbl.replace b.counts row 0;
            refresh_neighbors t dram ~channel ~bank ~row
        | _ -> ()
      end);
  t

(* --- SoftTRR ---------------------------------------------------------- *)

let make_soft_trr ~threshold ~pt_row dram =
  if threshold < 1 then invalid_arg "Mitigation.attach_soft_trr: threshold";
  let t = make_instance "SoftTRR" in
  let geometry = Ptg_dram.Dram.geometry dram in
  (* aggressor (channel, bank, row) -> activations seen since the guarded
     PT row was last refreshed *)
  let counts : (int * int * int, int) Hashtbl.t = Hashtbl.create 64 in
  t.save <-
    (fun () ->
      Hashtbl.fold (fun k n acc -> (k, n) :: acc) counts []
      |> List.sort compare
      |> List.map (fun ((c, bk, r), n) ->
             (Printf.sprintf "%d.%d.%d" c bk r, Int64.of_int n)));
  t.restore <-
    (fun kvs ->
      Hashtbl.reset counts;
      List.iter
        (fun (k, v) ->
          match String.split_on_char '.' k with
          | [ c; bk; r ] ->
              Hashtbl.replace counts
                (int_of_string c, int_of_string bk, int_of_string r)
                (Int64.to_int v)
          | _ -> ())
        kvs);
  Ptg_dram.Dram.on_activate dram (fun c ->
      if t.active then begin
        let channel = c.Ptg_dram.Geometry.channel
        and bank = c.Ptg_dram.Geometry.bank
        and row = c.Ptg_dram.Geometry.row in
        (* Software visibility: only the attacker's activations adjacent
           to a page-table row register. *)
        let guarded_neighbors =
          List.filter
            (fun r -> pt_row ~channel ~bank ~row:r)
            (Ptg_dram.Geometry.row_neighbors geometry row ~distance:1)
        in
        if guarded_neighbors <> [] then begin
          let key = (channel, bank, row) in
          let n = 1 + Option.value ~default:0 (Hashtbl.find_opt counts key) in
          if n >= threshold then begin
            Hashtbl.remove counts key;
            (* Refresh the page-table rows this aggressor endangers (a
               kernel read of the PT page re-writes the row). *)
            List.iter
              (fun r ->
                Ptg_dram.Dram.refresh_row dram ~channel ~bank ~row:r;
                t.refreshes <- t.refreshes + 1)
              guarded_neighbors
          end
          else Hashtbl.replace counts key n
        end
      end);
  t

(* ------------------------------------------------------------------ *)
(* Registrations                                                       *)
(* ------------------------------------------------------------------ *)

let () =
  register ~name:"trr"
    ~doc:"in-DRAM TRR: bounded sampler, REF-time victim refresh"
    ~params:
      [
        { key = "sampler_size"; doc = "sampler entries per bank"; default = Int 4 };
        {
          key = "ref_interval_acts";
          doc = "activations per bank between REF-time mitigations";
          default = Int 166;
        };
        {
          key = "sample_window";
          doc = "activations observed after each REF";
          default = Int 8;
        };
      ]
    (fun get ctx ->
      make_trr
        ~sampler_size:(get_int get "sampler_size")
        ~ref_interval_acts:(get_int get "ref_interval_acts")
        ~sample_window:(get_int get "sample_window")
        ctx.dram)

let () =
  register ~name:"para"
    ~doc:"PARA: refresh each neighbour with probability p per activation"
    ~params:
      [ { key = "p"; doc = "per-neighbour refresh probability"; default = Float 0.001 } ]
    (fun get ctx ->
      make_para ~p:(get_float get "p") ~rng:(require_rng ~plugin:"para" ctx)
        ctx.dram)

let () =
  register ~name:"soft-trr"
    ~doc:"SoftTRR: OS-level counting of aggressors next to page-table rows"
    ~params:
      [ { key = "threshold"; doc = "aggressor activations before a PT-row refresh"; default = Int 2500 } ]
    (fun get ctx ->
      make_soft_trr
        ~threshold:(get_int get "threshold")
        ~pt_row:(require_pt_row ~plugin:"soft-trr" ctx)
        ctx.dram)

let () =
  register ~name:"graphene"
    ~doc:"Graphene: Misra-Gries frequent-item counters, fixed threshold"
    ~params:
      [
        { key = "counters"; doc = "Misra-Gries entries per bank"; default = Int 128 };
        {
          key = "threshold";
          doc = "estimated count that triggers a victim refresh";
          default = Int 2500;
        };
      ]
    (fun get ctx ->
      make_graphene
        ~counters:(get_int get "counters")
        ~threshold:(get_int get "threshold")
        ctx.dram)

(** Baseline Rowhammer mitigations (paper Sections II-B and VIII-B).

    These are the trackers that breakthrough attacks defeat — implemented
    so the experiments can demonstrate {e why} PT-Guard's threshold-free
    detection is needed. Each mitigation subscribes to a DRAM's activation
    stream and issues victim refreshes through
    {!Ptg_dram.Dram.refresh_row}; those refreshes in turn disturb their own
    neighbours in the fault model, which is exactly the lever Half-Double
    exploits.

    All three follow the victim-refresh paradigm:

    - {b TRR}: an in-DRAM sampler with a handful of entries, evicted (and
      its history lost) under pressure; mitigates the hottest entry at
      every REF interval. Many-sided patterns (TRRespass) thrash the
      sampler so no aggressor accumulates history, while the per-REF
      refreshes hammer distance-1 rows for Half-Double.
    - {b PARA}: stateless; on each activation refreshes each neighbour
      with probability [p]. Protection is probabilistic and [p] must be
      provisioned for a known RTH.
    - {b Graphene}: a Misra-Gries frequent-item counter — never misses a
      row that exceeds the threshold, but the threshold is fixed at design
      time; a module with lower RTH than provisioned still flips.

    Since the registry landed ({!Registry}), these [attach_*] entry
    points are thin wrappers over {!Registry.instantiate} with the
    historical defaults and [Invalid_argument] messages; they are kept
    as differential oracles for the registry path. *)

type t = Registry.instance

val name : t -> string
val refreshes_issued : t -> int
(** Victim refreshes this mitigation has issued. *)

val detach : t -> unit
(** Stop reacting to DRAM events (the subscription is silenced). *)

val attach_trr :
  ?sampler_size:int ->
  ?ref_interval_acts:int ->
  ?sample_window:int ->
  Ptg_dram.Dram.t ->
  t
(** In-DRAM TRR model. [sampler_size] defaults to 4 entries per bank;
    [ref_interval_acts] (activations per bank between REF-time mitigations)
    defaults to 166 (tREFI / tRC); the sampler observes only the first
    [sample_window] activations of each interval (default 8), as
    reverse-engineered from DDR4 parts. On REF: refresh both neighbours of
    the sampler entry with the highest count, then drop it. When a new row
    arrives and the sampler is full, the oldest entry is evicted and its
    count lost. The bounded sampler and the predictable sampling window
    are exactly the weaknesses TRRespass/SMASH exploit by hammering outside
    the window and parking decoys inside it. *)

val attach_para : ?p:float -> rng:Ptg_util.Rng.t -> Ptg_dram.Dram.t -> t
(** PARA: refresh each neighbour with probability [p] (default 0.001) on
    every activation. *)

val attach_graphene :
  ?counters:int ->
  ?threshold:int ->
  Ptg_dram.Dram.t ->
  t
(** Graphene: [counters] Misra-Gries entries per bank (default 128);
    refresh a row's neighbours whenever its estimated count reaches
    [threshold] (default 2500 = design-RTH 10K / 4), then reset it. *)

val attach_soft_trr :
  ?threshold:int ->
  pt_row:(channel:int -> bank:int -> row:int -> bool) ->
  Ptg_dram.Dram.t ->
  t
(** SoftTRR (Zhang et al., ATC 2022) — paper Section II-E.3: the OS tracks
    activations of rows {e adjacent to page-table rows} (via PMU-based
    sampling) and refreshes the PT row itself when a neighbour's count
    reaches [threshold] (default 2500). Being software, it can only see
    the attacker's accesses at distance 1 from a PT row: distance-2
    hammering and the in-DRAM mitigation's own refreshes are invisible to
    it — the Half-Double blind spot the paper calls out. Only page-table
    rows (per [pt_row]) are defended at all. *)

(* Classic hashtable + intrusive doubly-linked recency list. The list
   head is most-recently-used; eviction pops the tail. *)

type node = {
  key : string;
  mutable value : string;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  cap : int;
  tbl : (string, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity";
  {
    cap = capacity;
    tbl = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.cap
let length t = Hashtbl.length t.tbl
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let to_alist t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go ((n.key, n.value) :: acc) n.next
  in
  go [] t.head

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some n ->
      t.hits <- t.hits + 1;
      unlink t n;
      push_front t n;
      Some n.value

let mem t key = Hashtbl.mem t.tbl key

let put t key value =
  match Hashtbl.find_opt t.tbl key with
  | Some n ->
      n.value <- value;
      unlink t n;
      push_front t n
  | None ->
      if Hashtbl.length t.tbl >= t.cap then begin
        match t.tail with
        | None -> ()
        | Some lru ->
            unlink t lru;
            Hashtbl.remove t.tbl lru.key;
            t.evictions <- t.evictions + 1
      end;
      let n = { key; value; prev = None; next = None } in
      Hashtbl.replace t.tbl key n;
      push_front t n

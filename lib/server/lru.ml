(* Classic hashtable + intrusive doubly-linked recency list. The list
   head is most-recently-used; eviction pops the tail.

   Capacity is two-dimensional: an entry count and an optional byte
   budget over encoded sizes (key + value bytes). A fullsys rendering is
   three orders of magnitude bigger than a fig6 row summary, so counting
   entries alone would let a handful of huge results evict the whole hot
   set's worth of budget while reporting a healthy entry count. *)

type node = {
  key : string;
  mutable value : string;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  cap : int;
  max_bytes : int option;
  tbl : (string, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let weight ~key ~value = String.length key + String.length value

let create ?max_bytes ~capacity () =
  if capacity < 1 then invalid_arg "Lru.create: capacity";
  (match max_bytes with
  | Some b when b < 1 -> invalid_arg "Lru.create: max_bytes"
  | _ -> ());
  {
    cap = capacity;
    max_bytes;
    tbl = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.cap
let max_bytes t = t.max_bytes
let length t = Hashtbl.length t.tbl
let bytes t = t.bytes
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let to_alist t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go ((n.key, n.value) :: acc) n.next
  in
  go [] t.head

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some n ->
      t.hits <- t.hits + 1;
      unlink t n;
      push_front t n;
      Some n.value

let mem t key = Hashtbl.mem t.tbl key

let over_budget t =
  Hashtbl.length t.tbl > t.cap
  || (match t.max_bytes with Some m -> t.bytes > m | None -> false)

(* Evict least-recently-used entries until both budgets are respected.
   An entry whose own weight exceeds [max_bytes] drains the whole cache
   and is finally evicted itself — oversized results are simply not
   cacheable under that budget, never an error. *)
let rec evict_while_over t =
  if over_budget t then
    match t.tail with
    | None -> ()
    | Some lru ->
        unlink t lru;
        Hashtbl.remove t.tbl lru.key;
        t.bytes <- t.bytes - weight ~key:lru.key ~value:lru.value;
        t.evictions <- t.evictions + 1;
        evict_while_over t

let put t key value =
  (match Hashtbl.find_opt t.tbl key with
  | Some n ->
      t.bytes <- t.bytes - String.length n.value + String.length value;
      n.value <- value;
      unlink t n;
      push_front t n
  | None ->
      let n = { key; value; prev = None; next = None } in
      Hashtbl.replace t.tbl key n;
      t.bytes <- t.bytes + weight ~key ~value;
      push_front t n);
  evict_while_over t

(* Consistent-hash ring over shard indices.

   Each shard owns [vnodes] points on a 64-bit ring, placed by hashing
   "shard/<i>/<v>" with the same FNV-1a the scenario hash uses; a key
   routes to the shard owning the first point clockwise of the key's
   hash. Ejecting a shard removes it from consideration without moving
   any point: its arcs fall to the clockwise successors (rendezvous
   re-routing), every other key keeps its shard. Re-admission restores
   exactly the original ownership. *)

type point = { pos : int64; shard : int }

type t = { points : point array; shards : int }

(* Unsigned comparison: ring positions are raw 64-bit hashes. *)
let ucompare a b = Int64.unsigned_compare a b

let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

(* FNV-1a of near-identical strings (scenarios differing only in a seed
   digit) clusters in a narrow band of the 64-bit space — poor avalanche
   in the high bits — which would drop a whole working set into one arc.
   Finalize with splitmix64's mixer so ring placement sees uniform keys;
   applied to point positions and lookup keys alike, so routing is still
   a pure function of the inputs. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ?(vnodes = 64) shards =
  if shards < 1 then invalid_arg "Ring.create: shards";
  if vnodes < 1 then invalid_arg "Ring.create: vnodes";
  let points =
    Array.init (shards * vnodes) (fun i ->
        let shard = i / vnodes and v = i mod vnodes in
        { pos = mix64 (fnv1a64 (Printf.sprintf "shard/%d/%d" shard v)); shard })
  in
  Array.sort
    (fun a b ->
      match ucompare a.pos b.pos with 0 -> compare a.shard b.shard | c -> c)
    points;
  { points; shards }

let shards t = t.shards

(* First point at or clockwise of [key] (wrapping), as an index into the
   sorted points array. *)
let successor t key =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  (* Invariant: points.[0, lo) < key <= points.[hi, n). *)
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if ucompare t.points.(mid).pos key < 0 then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let route t ~live key =
  if Array.length live <> t.shards then invalid_arg "Ring.route: live";
  let n = Array.length t.points in
  let start = successor t (mix64 key) in
  let rec walk i remaining =
    if remaining = 0 then None
    else
      let p = t.points.((start + i) mod n) in
      if live.(p.shard) then Some p.shard else walk (i + 1) (remaining - 1)
  in
  walk 0 n

let route_string t ~live key = route t ~live (fnv1a64 key)

(* Fraction of the 64-bit keyspace each live shard owns: the arc ending
   at every point belongs to that point's shard (when live; an ejected
   shard's arc belongs to the next live successor). *)
let ownership t ~live =
  if Array.length live <> t.shards then invalid_arg "Ring.ownership: live";
  let shares = Array.make t.shards 0. in
  if Array.exists Fun.id live then begin
    let n = Array.length t.points in
    let width i =
      (* Arc from the previous point (wrapping) to point i, as an
         unsigned 64-bit difference scaled into [0,1]. *)
      let prev = t.points.((i + n - 1) mod n).pos in
      let w = Int64.sub t.points.(i).pos prev in
      (* The wrap-around arc is the 2^64 complement; Int64 subtraction
         already computes it modulo 2^64. *)
      Int64.to_float (Int64.shift_right_logical w 1) *. 2. /. 1.8446744073709552e19
    in
    let owner_of i =
      let rec go j remaining =
        if remaining = 0 then None
        else
          let p = t.points.((i + j) mod n) in
          if live.(p.shard) then Some p.shard else go (j + 1) (remaining - 1)
      in
      go 0 n
    in
    for i = 0 to n - 1 do
      match owner_of i with
      | Some s -> shares.(s) <- shares.(s) +. width i
      | None -> ()
    done
  end;
  shares

module Scenario = Ptg_sim.Scenario

let version = 1
let max_version = 2
let supported v = v = 1 || v = 2

type request =
  | Run of Scenario.t
  | Run_stream of Scenario.t
  | Ping
  | Stats
  | Shutdown
  | Hello of int
  | Cancel of string

type cache_disposition = Hit | Miss | Coalesced

let cache_disposition_name = function
  | Hit -> "hit"
  | Miss -> "miss"
  | Coalesced -> "coalesced"

let cache_disposition_of_name = function
  | "hit" -> Some Hit
  | "miss" -> Some Miss
  | "coalesced" -> Some Coalesced
  | _ -> None

type response =
  | Result of { cache : cache_disposition; hash : string; result : string }
  | Pong
  | Stats_reply of (string * float) list
  | Overloaded
  | Timeout
  | Error_reply of string
  | Progress of { done_count : int; total : int }
  | Cancelled
  | Hello_reply of int

type meta = { id : string option; v : int }

(* ------------------------------------------------------------------ *)
(* Scenario codec                                                      *)
(* ------------------------------------------------------------------ *)

let scenario_to_json (s : Scenario.t) =
  let fields = ref [] in
  let add key v = fields := (key, v) :: !fields in
  add "kind" (Json.String (Scenario.kind_name s.kind));
  if s.seeds > 1 then add "seeds" (Json.Int (Int64.of_int s.seeds))
  else add "seed" (Json.Int s.seed);
  if s.reduced then add "reduced" (Json.Bool true);
  (match s.kind with
  | Scenario.Fig6 ->
      add "design" (Json.String (Scenario.design_wire_name s.design));
      Option.iter (fun l -> add "mac_latency" (Json.Int (Int64.of_int l))) s.mac_latency;
      Option.iter
        (fun ws -> add "workloads" (Json.List (List.map (fun w -> Json.String w) ws)))
        s.workloads
  | _ -> ());
  Option.iter (fun i -> add "instrs" (Json.Int (Int64.of_int i))) s.instrs;
  Option.iter (fun w -> add "warmup" (Json.Int (Int64.of_int w))) s.warmup;
  Option.iter (fun p -> add "processes" (Json.Int (Int64.of_int p))) s.processes;
  Option.iter (fun l -> add "lines" (Json.Int (Int64.of_int l))) s.lines;
  Option.iter (fun m -> add "mixes" (Json.Int (Int64.of_int m))) s.mixes;
  Option.iter (fun p -> add "trace" (Json.String p)) s.trace_path;
  Option.iter (fun m -> add "mitigation" (Json.String m)) s.mitigation;
  if s.mit_params <> [] then
    add "params"
      (Json.Obj
         (List.map
            (fun (key, v) ->
              ( key,
                match v with
                | Ptg_mitigations.Registry.Int i -> Json.Int (Int64.of_int i)
                | Ptg_mitigations.Registry.Float f -> Json.Float f
                | Ptg_mitigations.Registry.Bool b -> Json.Bool b ))
            s.mit_params));
  if s.jobs <> 1 then add "jobs" (Json.Int (Int64.of_int s.jobs));
  Json.Obj (List.rev !fields)

let scenario_fields =
  [
    "kind"; "seed"; "seeds"; "reduced"; "design"; "mac_latency"; "workloads";
    "instrs"; "warmup"; "processes"; "lines"; "mixes"; "trace"; "mitigation";
    "params"; "jobs";
  ]

let ( let* ) = Result.bind

let as_int what = function
  | Json.Int i ->
      if i > Int64.of_int max_int || i < Int64.of_int min_int then
        Error (Printf.sprintf "%s out of range" what)
      else Ok (Int64.to_int i)
  | _ -> Error (Printf.sprintf "%s must be an integer" what)

let as_int64 what = function
  | Json.Int i -> Ok i
  | _ -> Error (Printf.sprintf "%s must be an integer" what)

let as_bool what = function
  | Json.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "%s must be a boolean" what)

let as_string what = function
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "%s must be a string" what)

let opt_field json key conv =
  match Json.member key json with
  | None -> Ok None
  | Some v ->
      let* x = conv key v in
      Ok (Some x)

let scenario_of_json json =
  match json with
  | Json.Obj _ ->
      let* () =
        List.fold_left
          (fun acc key ->
            let* () = acc in
            if List.mem key scenario_fields then Ok ()
            else Error (Printf.sprintf "unknown scenario field \"%s\"" key))
          (Ok ()) (Json.keys json)
      in
      let* kind_name =
        match Json.member "kind" json with
        | Some v -> as_string "kind" v
        | None -> Error "scenario is missing \"kind\""
      in
      let* kind =
        match Scenario.kind_of_name kind_name with
        | Some k -> Ok k
        | None ->
            Error
              (Printf.sprintf "unknown kind \"%s\" (one of: %s)" kind_name
                 (String.concat ", " Scenario.kind_names))
      in
      let* seed = opt_field json "seed" as_int64 in
      let* seeds = opt_field json "seeds" as_int in
      let* reduced = opt_field json "reduced" as_bool in
      let* design =
        match Json.member "design" json with
        | None -> Ok None
        | Some v ->
            let* name = as_string "design" v in
            (match Scenario.design_of_wire_name name with
            | Some d -> Ok (Some d)
            | None ->
                Error
                  (Printf.sprintf
                     "unknown design \"%s\" (baseline or optimized)" name))
      in
      let* mac_latency = opt_field json "mac_latency" as_int in
      let* workloads =
        match Json.member "workloads" json with
        | None -> Ok None
        | Some (Json.List items) ->
            let* names =
              List.fold_left
                (fun acc item ->
                  let* acc = acc in
                  let* name = as_string "workloads element" item in
                  Ok (name :: acc))
                (Ok []) items
            in
            Ok (Some (List.rev names))
        | Some _ -> Error "workloads must be a list of strings"
      in
      let* instrs = opt_field json "instrs" as_int in
      let* warmup = opt_field json "warmup" as_int in
      let* processes = opt_field json "processes" as_int in
      let* lines = opt_field json "lines" as_int in
      let* mixes = opt_field json "mixes" as_int in
      let* jobs = opt_field json "jobs" as_int in
      let* trace = opt_field json "trace" as_string in
      let* mitigation = opt_field json "mitigation" as_string in
      let* mit_params =
        match Json.member "params" json with
        | None -> Ok None
        | Some (Json.Obj fields) ->
            let* params =
              List.fold_left
                (fun acc (key, v) ->
                  let* acc = acc in
                  let* value =
                    match v with
                    | Json.Int i ->
                        if i > Int64.of_int max_int || i < Int64.of_int min_int
                        then Error (Printf.sprintf "params.%s out of range" key)
                        else
                          Ok (Ptg_mitigations.Registry.Int (Int64.to_int i))
                    | Json.Float f -> Ok (Ptg_mitigations.Registry.Float f)
                    | Json.Bool b -> Ok (Ptg_mitigations.Registry.Bool b)
                    | _ ->
                        Error
                          (Printf.sprintf
                             "params.%s must be a number or boolean" key)
                  in
                  Ok ((key, value) :: acc))
                (Ok []) fields
            in
            Ok (Some (List.rev params))
        | Some _ -> Error "params must be an object"
      in
      let scenario =
        Scenario.make ?seed ?seeds ?reduced ?design ?mac_latency ?workloads
          ?instrs ?warmup ?processes ?lines ?mixes ?trace ?mitigation
          ?mit_params ?jobs kind
      in
      let* () = Scenario.validate scenario in
      Ok scenario
  | _ -> Error "scenario must be an object"

(* ------------------------------------------------------------------ *)
(* Frame codecs                                                        *)
(* ------------------------------------------------------------------ *)

let check_supported fn v =
  if not (supported v) then
    invalid_arg
      (Printf.sprintf "Protocol.%s: unsupported version %d (1..%d)" fn v
         max_version)

let require_v2 fn v what =
  if v < 2 then
    invalid_arg (Printf.sprintf "Protocol.%s: %s requires version 2" fn what)

let base_fields ~v ?id () =
  ("v", Json.Int (Int64.of_int v))
  :: (match id with Some id -> [ ("id", Json.String id) ] | None -> [])

let encode_request ?id ?(v = version) req =
  check_supported "encode_request" v;
  let fields =
    base_fields ~v ?id ()
    @
    match req with
    | Run scenario ->
        [ ("op", Json.String "run"); ("scenario", scenario_to_json scenario) ]
    | Run_stream scenario ->
        require_v2 "encode_request" v "stream";
        [
          ("op", Json.String "run");
          ("stream", Json.Bool true);
          ("scenario", scenario_to_json scenario);
        ]
    | Ping -> [ ("op", Json.String "ping") ]
    | Stats -> [ ("op", Json.String "stats") ]
    | Shutdown -> [ ("op", Json.String "shutdown") ]
    | Hello max ->
        require_v2 "encode_request" v "hello";
        [ ("op", Json.String "hello"); ("max", Json.Int (Int64.of_int max)) ]
    | Cancel target ->
        require_v2 "encode_request" v "cancel";
        [ ("op", Json.String "cancel"); ("target", Json.String target) ]
  in
  Json.to_string (Json.Obj fields)

let frame_id json =
  match Json.member "id" json with Some (Json.String s) -> Some s | _ -> None

let frame_version json =
  match Json.member "v" json with
  | Some (Json.Int v) when supported (Int64.to_int v) -> Ok (Int64.to_int v)
  | Some (Json.Int v) ->
      Error
        (Printf.sprintf "unsupported protocol version %Ld (want 1..%d)" v
           max_version)
  | Some _ -> Error "v must be an integer"
  | None -> Error (Printf.sprintf "frame is missing \"v\" (want 1..%d)" max_version)

let with_meta json v r =
  match r with
  | Ok x -> Ok ({ id = frame_id json; v }, x)
  | Error e -> Error e

let decode_request line =
  match Json.parse line with
  | Error e -> Error ("malformed frame: " ^ e)
  | Ok json ->
      let* v = frame_version json in
      with_meta json v
        (match Json.member "op" json with
        | Some (Json.String "run") -> (
            let* stream =
              match Json.member "stream" json with
              | None -> Ok false
              | Some (Json.Bool b) ->
                  if v < 2 then Error "\"stream\" requires protocol version 2"
                  else Ok b
              | Some _ -> Error "stream must be a boolean"
            in
            match Json.member "scenario" json with
            | None -> Error "run frame is missing \"scenario\""
            | Some sj ->
                let* scenario = scenario_of_json sj in
                Ok (if stream then Run_stream scenario else Run scenario))
        | Some (Json.String "ping") -> Ok Ping
        | Some (Json.String "stats") -> Ok Stats
        | Some (Json.String "shutdown") -> Ok Shutdown
        | Some (Json.String "hello") when v >= 2 -> (
            match Json.member "max" json with
            | None -> Ok (Hello max_version)
            | Some m ->
                let* max = as_int "max" m in
                if max < 1 then Error "max must be >= 1" else Ok (Hello max))
        | Some (Json.String "cancel") when v >= 2 -> (
            match Json.member "target" json with
            | Some (Json.String target) -> Ok (Cancel target)
            | Some _ -> Error "target must be a string"
            | None -> Error "cancel frame is missing \"target\"")
        | Some (Json.String (("hello" | "cancel") as op)) ->
            Error (Printf.sprintf "op \"%s\" requires protocol version 2" op)
        | Some (Json.String op) -> Error (Printf.sprintf "unknown op \"%s\"" op)
        | Some _ -> Error "op must be a string"
        | None -> Error "frame is missing \"op\"")

let encode_response ?id ?(v = version) resp =
  check_supported "encode_response" v;
  let fields =
    base_fields ~v ?id ()
    @
    match resp with
    | Result { cache; hash; result } ->
        [
          ("status", Json.String "ok");
          ("cache", Json.String (cache_disposition_name cache));
          ("hash", Json.String hash);
          ("result", Json.String result);
        ]
    | Pong -> [ ("status", Json.String "ok"); ("result", Json.String "pong") ]
    | Stats_reply rows ->
        [
          ("status", Json.String "ok");
          ("stats", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) rows));
        ]
    | Overloaded -> [ ("status", Json.String "overloaded") ]
    | Timeout -> [ ("status", Json.String "timeout") ]
    | Error_reply msg ->
        [ ("status", Json.String "error"); ("error", Json.String msg) ]
    | Progress { done_count; total } ->
        require_v2 "encode_response" v "progress";
        [
          ("status", Json.String "progress");
          ("done", Json.Int (Int64.of_int done_count));
          ("total", Json.Int (Int64.of_int total));
        ]
    | Cancelled ->
        require_v2 "encode_response" v "cancelled";
        [ ("status", Json.String "cancelled") ]
    | Hello_reply negotiated ->
        require_v2 "encode_response" v "hello";
        [
          ("status", Json.String "ok");
          ("result", Json.String "hello");
          ("version", Json.Int (Int64.of_int negotiated));
        ]
  in
  Json.to_string (Json.Obj fields)

let decode_response line =
  match Json.parse line with
  | Error e -> Error ("malformed frame: " ^ e)
  | Ok json ->
      let* v = frame_version json in
      with_meta json v
        (match Json.member "status" json with
        | Some (Json.String "overloaded") -> Ok Overloaded
        | Some (Json.String "timeout") -> Ok Timeout
        | Some (Json.String "cancelled") ->
            if v < 2 then Error "\"cancelled\" requires protocol v2"
            else Ok Cancelled
        | Some (Json.String "progress") ->
            if v < 2 then Error "\"progress\" requires protocol v2"
            else (
              match (Json.member "done" json, Json.member "total" json) with
              | Some d, Some tot ->
                  let* done_count = as_int "done" d in
                  let* total = as_int "total" tot in
                  Ok (Progress { done_count; total })
              | _ -> Error "progress frame is missing \"done\"/\"total\"")
        | Some (Json.String "error") -> (
            match Json.member "error" json with
            | Some (Json.String msg) -> Ok (Error_reply msg)
            | _ -> Error "error frame is missing \"error\"")
        | Some (Json.String "ok") -> (
            match (Json.member "cache" json, Json.member "stats" json) with
            | Some (Json.String c), _ -> (
                match cache_disposition_of_name c with
                | None -> Error (Printf.sprintf "unknown cache disposition \"%s\"" c)
                | Some cache -> (
                    match (Json.member "hash" json, Json.member "result" json) with
                    | Some (Json.String hash), Some (Json.String result) ->
                        Ok (Result { cache; hash; result })
                    | _ -> Error "ok frame is missing \"hash\"/\"result\""))
            | None, Some (Json.Obj rows) ->
                let* stats =
                  List.fold_left
                    (fun acc (k, v) ->
                      let* acc = acc in
                      match v with
                      | Json.Float f -> Ok ((k, f) :: acc)
                      | Json.Int i -> Ok ((k, Int64.to_float i) :: acc)
                      | _ -> Error "stats values must be numbers")
                    (Ok []) rows
                in
                Ok (Stats_reply (List.rev stats))
            | None, None -> (
                match Json.member "result" json with
                | Some (Json.String "pong") -> Ok Pong
                | Some (Json.String "hello") ->
                    if v < 2 then Error "\"hello\" requires protocol v2"
                    else (
                      match Json.member "version" json with
                      | Some ver ->
                          let* negotiated = as_int "version" ver in
                          Ok (Hello_reply negotiated)
                      | None -> Error "hello frame is missing \"version\"")
                | _ -> Error "unrecognized ok frame")
            | _ -> Error "unrecognized ok frame")
        | Some (Json.String s) -> Error (Printf.sprintf "unknown status \"%s\"" s)
        | Some _ -> Error "status must be a string"
        | None -> Error "frame is missing \"status\"")

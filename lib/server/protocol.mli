(** Line-JSON wire protocol, version 1.

    Every frame is one JSON object on one line, newline-terminated.

    Requests carry a protocol version, an operation, an optional caller
    id (echoed back verbatim) and, for [run], a scenario object:
    {v
    {"v":1,"op":"run","id":"r1","scenario":{"kind":"fig6","seed":42,
      "reduced":true,"workloads":["mcf","bc"],"instrs":6000,"warmup":2000}}
    {"v":1,"op":"ping"}
    {"v":1,"op":"stats"}
    {"v":1,"op":"shutdown"}
    v}

    Responses are one of four statuses — ["ok"], ["overloaded"] (load
    shed: the server's in-flight high-water mark was reached; retry
    later), ["timeout"] (the per-request compute deadline expired before
    the scenario finished; an identical retry recomputes) or ["error"]
    (the explicit error frame):
    {v
    {"v":1,"id":"r1","status":"ok","cache":"miss","hash":"63…","result":"…"}
    {"v":1,"id":"r1","status":"overloaded"}
    {"v":1,"id":"r1","status":"timeout"}
    {"v":1,"id":"r1","status":"error","error":"unknown workload zzz (…)"}
    v}

    Scenario field order and whitespace in a request are irrelevant:
    the server canonicalizes ({!Ptg_sim.Scenario.canonical}) before
    hashing, so any spelling of the same scenario shares one cache
    entry. Unknown scenario or frame fields are rejected (the version
    field is the compatibility mechanism, not silent tolerance). *)

val version : int

type request = Run of Ptg_sim.Scenario.t | Ping | Stats | Shutdown

type cache_disposition = Hit | Miss | Coalesced

val cache_disposition_name : cache_disposition -> string
(** ["hit"] / ["miss"] / ["coalesced"]. *)

type response =
  | Result of { cache : cache_disposition; hash : string; result : string }
  | Pong
  | Stats_reply of (string * float) list
  | Overloaded
  | Timeout
      (** The compute deadline expired while this request waited; the
          pending entry was unhooked, so an identical retry recomputes
          (or hits the cache if the straggler finished meanwhile). *)
  | Error_reply of string

val scenario_to_json : Ptg_sim.Scenario.t -> Json.t
(** Wire encoding of a scenario: the canonical fields plus the [jobs]
    hint when not 1. *)

val scenario_of_json : Json.t -> (Ptg_sim.Scenario.t, string) result
(** Decode and validate. Rejects unknown fields, bad types, unknown
    kinds/designs/workloads, and semantically invalid values. *)

val encode_request : ?id:string -> request -> string
(** One frame, without the trailing newline. *)

val decode_request : string -> (string option * request, string) result
(** Returns the echoed id (if any) alongside the request; on malformed
    frames the id is recovered when possible so the error frame can
    still be correlated. *)

val encode_response : ?id:string -> response -> string
val decode_response : string -> (string option * response, string) result

(** Line-JSON wire protocol, versions 1 and 2.

    Every frame is one JSON object on one line, newline-terminated.
    Each frame carries its protocol version in ["v"], and a response
    mirrors the version of the request it answers — a v1 client never
    sees a v2-only frame, which is what keeps v1 clients working
    unchanged against a v2 server.

    Version 1 requests carry an operation, an optional caller id
    (echoed back verbatim) and, for [run], a scenario object:
    {v
    {"v":1,"op":"run","id":"r1","scenario":{"kind":"fig6","seed":42,
      "reduced":true,"workloads":["mcf","bc"],"instrs":6000,"warmup":2000}}
    {"v":1,"op":"ping"}
    {"v":1,"op":"stats"}
    {"v":1,"op":"shutdown"}
    v}

    Version 1 responses are one of four statuses — ["ok"],
    ["overloaded"] (load shed: the server's in-flight high-water mark
    was reached; retry later), ["timeout"] (the per-request compute
    deadline expired before the scenario finished; an identical retry
    recomputes) or ["error"] (the explicit error frame):
    {v
    {"v":1,"id":"r1","status":"ok","cache":"miss","hash":"63…","result":"…"}
    {"v":1,"id":"r1","status":"overloaded"}
    {"v":1,"id":"r1","status":"timeout"}
    {"v":1,"id":"r1","status":"error","error":"unknown workload zzz (…)"}
    v}

    Version 2 adds:

    - {b negotiation}: ["hello"] carries the client's highest supported
      version; the reply names the version the server settles on
      ([min client_max server_max]). Purely informative — every frame
      still names its own version, and a server accepts any supported
      one.
      {v
      {"v":2,"op":"hello","max":2}
      {"v":2,"status":"ok","result":"hello","version":2}
      v}
    - {b progress streaming}: a run with ["stream":true] may receive
      any number of ["progress"] frames (same id) before its terminal
      frame. [done]/[total] count the experiment's own units
      (instructions for fullsys, rows for fig6); a warm-started run's
      first progress frame starts at the adopted checkpoint depth.
      Progress frames are best-effort — zero of them is valid.
      {v
      {"v":2,"op":"run","id":"r2","stream":true,"scenario":{…}}
      {"v":2,"id":"r2","status":"progress","done":20000,"total":60000}
      {"v":2,"id":"r2","status":"ok","cache":"miss","hash":"…","result":"…"}
      v}
    - {b cancellation}: ["cancel"] names the [id] of an in-flight v2
      run (sent on another connection — the requesting connection is
      blocked in its run). The cancelled run terminates with status
      ["cancelled"]; its computation stops at the next checkpoint
      boundary once no interested waiter remains.
      {v
      {"v":2,"op":"cancel","target":"r2"}
      {"v":2,"id":"r2","status":"cancelled"}
      v}

    Scenario field order and whitespace in a request are irrelevant:
    the server canonicalizes ({!Ptg_sim.Scenario.canonical}) before
    hashing, so any spelling of the same scenario shares one cache
    entry. Unknown scenario fields, v2-only fields/ops under v1, and
    unsupported versions are rejected (the version field is the
    compatibility mechanism, not silent tolerance). *)

val version : int
(** The baseline version (1): the default for {!encode_request} and
    {!encode_response}, so existing v1 peers are unaffected by v2. *)

val max_version : int
(** Highest version this implementation speaks (2). *)

val supported : int -> bool

type request =
  | Run of Ptg_sim.Scenario.t
  | Run_stream of Ptg_sim.Scenario.t
      (** v2: like [Run], but the server may interleave [Progress]
          frames before the terminal frame. *)
  | Ping
  | Stats
  | Shutdown
  | Hello of int  (** v2: the sender's highest supported version *)
  | Cancel of string  (** v2: the id of the in-flight run to cancel *)

type cache_disposition = Hit | Miss | Coalesced

val cache_disposition_name : cache_disposition -> string
(** ["hit"] / ["miss"] / ["coalesced"]. *)

type response =
  | Result of { cache : cache_disposition; hash : string; result : string }
  | Pong
  | Stats_reply of (string * float) list
  | Overloaded
  | Timeout
      (** The compute deadline expired while this request waited; the
          pending entry was unhooked, so an identical retry recomputes
          (or hits the cache if the straggler finished meanwhile). *)
  | Error_reply of string
  | Progress of { done_count : int; total : int }
      (** v2, non-terminal: streamed while a [Run_stream] computes. *)
  | Cancelled  (** v2, terminal: the run was cancelled by a [Cancel]. *)
  | Hello_reply of int  (** v2: the negotiated version *)

type meta = { id : string option; v : int }
(** Per-frame envelope: the echoed caller id and the frame's protocol
    version (which the response to it must mirror). *)

val scenario_to_json : Ptg_sim.Scenario.t -> Json.t
(** Wire encoding of a scenario: the canonical fields plus the [jobs]
    hint when not 1. *)

val scenario_of_json : Json.t -> (Ptg_sim.Scenario.t, string) result
(** Decode and validate. Rejects unknown fields, bad types, unknown
    kinds/designs/workloads, and semantically invalid values. *)

val encode_request : ?id:string -> ?v:int -> request -> string
(** One frame, without the trailing newline; [v] defaults to
    {!version}. Raises [Invalid_argument] when a v2-only request is
    encoded at v1 or [v] is unsupported. *)

val decode_request : string -> (meta * request, string) result
(** Returns the frame envelope alongside the request; on malformed
    frames the id is recovered when possible so the error frame can
    still be correlated. *)

val encode_response : ?id:string -> ?v:int -> response -> string
(** Raises [Invalid_argument] when a v2-only response is encoded at v1
    — the type-level guard behind "a v1 client never sees a v2
    frame". *)

val decode_response : string -> (meta * response, string) result

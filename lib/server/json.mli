(** Minimal JSON for the line-oriented wire protocol.

    The repo deliberately carries no external JSON dependency; the wire
    frames only need objects, arrays, strings, 64-bit integers, floats,
    booleans and null. Integers are kept exact ([Int] of [int64]) because
    scenario seeds are 64-bit. Object field order is preserved by the
    parser and printer — canonicalization (sorting, default resolution)
    is {!Ptg_sim.Scenario.canonical}'s job, not the codec's. *)

type t =
  | Null
  | Bool of bool
  | Int of int64
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed; trailing
    garbage rejected). Errors carry a byte offset. Number literals that
    overflow to a non-finite float (["1e999"]) are rejected: a
    non-finite value cannot re-serialize as valid JSON. *)

val to_string : t -> string
(** Compact rendering, no whitespace, field order preserved. Raises
    [Invalid_argument] on a non-finite [Float] — JSON has no encoding
    for nan/inf, and emitting the bare tokens would produce a frame
    {!parse} itself rejects. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on missing field or non-object. *)

val keys : t -> string list
(** Field names of an [Obj] in order; [] otherwise. *)

(** Consistent-hash ring mapping canonical scenario hashes to shard
    indices.

    Each shard owns a fixed set of virtual-node points on a 64-bit
    ring (positions are FNV-1a hashes passed through a splitmix64-style
    finalizer, which is also applied to lookup keys — raw scenario
    hashes cluster, mixed ones spread); a key routes to the shard
    owning the first point clockwise of the key's mixed position. The
    point set never changes after {!create}:
    ejection is expressed per-lookup through the [live] mask, so an
    ejected shard's arcs fall to their clockwise successors while every
    other key keeps its shard, and re-admission restores exactly the
    original ownership. *)

type t

val create : ?vnodes:int -> int -> t
(** [create ?vnodes shards] builds the ring for shard indices
    [0 .. shards - 1] with [vnodes] points each (default 64). Pure
    function of its arguments — router and tests see the same layout.
    Raises [Invalid_argument] when either count is < 1. *)

val shards : t -> int

val route : t -> live:bool array -> int64 -> int option
(** Owning live shard for a 64-bit key ({!Ptg_sim.Scenario.hash64}
    output), or [None] when no shard is live. [live] must have length
    [shards t] (checked). O(log points) plus the walk past dead
    shards. *)

val route_string : t -> live:bool array -> string -> int option
(** {!route} of the FNV-1a hash of an arbitrary string key. *)

val ownership : t -> live:bool array -> float array
(** Fraction of the keyspace each shard currently owns (ejected shards
    own 0; entries sum to ~1 when any shard is live, all-zero
    otherwise). Feeds the per-shard ring-position gauges. *)

val fnv1a64 : string -> int64
(** The ring's hash function, exposed for tests. *)

(** LRU result cache for served scenario renderings.

    Keys are canonical request hashes ({!Ptg_sim.Scenario.hash}); values
    are the rendered experiment reports. Deterministic simulations make
    this cache lossless: a hit returns bytes identical to a re-run.

    Not thread-safe by itself — the server guards it with the same mutex
    that protects its scheduler state. Hit/miss/eviction counts are
    tracked here and exported into the server's metrics registry. *)

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] on [capacity < 1]. *)

val capacity : t -> int
val length : t -> int

val find : t -> string -> string option
(** Returns the cached value and marks the key most-recently-used;
    counts a hit or a miss. *)

val put : t -> string -> string -> unit
(** Insert or refresh a binding; evicts the least-recently-used entry
    when at capacity (counted in {!evictions}). *)

val mem : t -> string -> bool
(** Presence test without touching recency or hit/miss accounting. *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int

val to_alist : t -> (string * string) list
(** All bindings, most-recently-used first. Touches neither recency nor
    the hit/miss accounting; O(n). The recency order it exposes is the
    contract the model-based property test checks. *)

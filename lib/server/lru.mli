(** LRU result cache for served scenario renderings.

    Keys are canonical request hashes ({!Ptg_sim.Scenario.hash}); values
    are the rendered experiment reports. Deterministic simulations make
    this cache lossless: a hit returns bytes identical to a re-run.

    Capacity is two-dimensional: an entry count, and an optional byte
    budget over encoded entry sizes (key + value bytes) so one huge
    fullsys rendering cannot masquerade as "one entry" next to a
    hundred tiny fig6 rows.

    Not thread-safe by itself — the server guards it with the same mutex
    that protects its scheduler state. Hit/miss/eviction counts are
    tracked here and exported into the server's metrics registry. *)

type t

val create : ?max_bytes:int -> capacity:int -> unit -> t
(** Raises [Invalid_argument] on [capacity < 1] or [max_bytes < 1].
    Without [max_bytes] only the entry count bounds the cache. *)

val capacity : t -> int
val max_bytes : t -> int option
val length : t -> int

val bytes : t -> int
(** Sum of [weight] over the live entries. *)

val weight : key:string -> value:string -> int
(** The byte cost one entry charges against [max_bytes]:
    [String.length key + String.length value]. *)

val find : t -> string -> string option
(** Returns the cached value and marks the key most-recently-used;
    counts a hit or a miss. *)

val put : t -> string -> string -> unit
(** Insert or refresh a binding, then evict least-recently-used entries
    (counted in {!evictions}) until both the entry count and the byte
    budget are respected. An entry bigger than [max_bytes] by itself
    drains the cache and is then evicted too — oversized values are
    uncacheable, never an error. *)

val mem : t -> string -> bool
(** Presence test without touching recency or hit/miss accounting. *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int

val to_alist : t -> (string * string) list
(** All bindings, most-recently-used first. Touches neither recency nor
    the hit/miss accounting; O(n). The recency order it exposes is the
    contract the model-based property test checks. *)

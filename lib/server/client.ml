type t = { ic : in_channel; oc : out_channel }

let connect addr =
  let sockaddr, domain =
    match addr with
    | Server.Unix_socket path -> (Unix.ADDR_UNIX path, Unix.PF_UNIX)
    | Server.Tcp port ->
        (Unix.ADDR_INET (Unix.inet_addr_loopback, port), Unix.PF_INET)
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sockaddr
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  { ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close t =
  (* Both channels share one descriptor; closing the output channel
     flushes and closes it. *)
  close_out_noerr t.oc

let request ?id t req =
  match
    output_string t.oc (Protocol.encode_request ?id req);
    output_char t.oc '\n';
    flush t.oc;
    input_line t.ic
  with
  | exception (End_of_file | Sys_error _) -> Error "connection closed"
  | line -> (
      match Protocol.decode_response line with
      | Ok (_id, resp) -> Ok resp
      | Error e -> Error e)

let run t scenario = request t (Protocol.Run scenario)

(* ------------------------------------------------------------------ *)
(* Load generation                                                     *)
(* ------------------------------------------------------------------ *)

type report = {
  clients : int;
  requests : int;
  ok : int;
  hits : int;
  misses : int;
  coalesced : int;
  overloaded : int;
  errors : int;
  wall_s : float;
  throughput_rps : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
}

type worker_tally = {
  mutable w_ok : int;
  mutable w_hits : int;
  mutable w_misses : int;
  mutable w_coalesced : int;
  mutable w_overloaded : int;
  mutable w_errors : int;
  mutable latencies_us : float list;  (** ok responses only *)
}

let loadgen ~addr ~clients ~requests_per_client ~scenarios =
  if clients < 1 then invalid_arg "Client.loadgen: clients";
  if requests_per_client < 1 then invalid_arg "Client.loadgen: requests_per_client";
  if scenarios = [] then invalid_arg "Client.loadgen: scenarios";
  let scenarios = Array.of_list scenarios in
  let results = Array.make clients None in
  let worker i =
    let tally =
      {
        w_ok = 0;
        w_hits = 0;
        w_misses = 0;
        w_coalesced = 0;
        w_overloaded = 0;
        w_errors = 0;
        latencies_us = [];
      }
    in
    (match connect addr with
    | exception _ -> tally.w_errors <- requests_per_client
    | conn ->
        for r = 0 to requests_per_client - 1 do
          let scenario = scenarios.(r mod Array.length scenarios) in
          let t0 = Unix.gettimeofday () in
          match run conn scenario with
          | Ok (Protocol.Result { cache; _ }) ->
              tally.w_ok <- tally.w_ok + 1;
              tally.latencies_us <-
                (1e6 *. (Unix.gettimeofday () -. t0)) :: tally.latencies_us;
              (match cache with
              | Protocol.Hit -> tally.w_hits <- tally.w_hits + 1
              | Protocol.Miss -> tally.w_misses <- tally.w_misses + 1
              | Protocol.Coalesced -> tally.w_coalesced <- tally.w_coalesced + 1)
          | Ok Protocol.Overloaded -> tally.w_overloaded <- tally.w_overloaded + 1
          | Ok (Protocol.Error_reply _) | Ok Protocol.Pong
          | Ok (Protocol.Stats_reply _) | Error _ ->
              tally.w_errors <- tally.w_errors + 1
        done;
        close conn);
    results.(i) <- Some tally
  in
  let t0 = Unix.gettimeofday () in
  let threads = Array.init clients (fun i -> Thread.create worker i) in
  Array.iter Thread.join threads;
  let wall_s = Unix.gettimeofday () -. t0 in
  let ok = ref 0
  and hits = ref 0
  and misses = ref 0
  and coalesced = ref 0
  and overloaded = ref 0
  and errors = ref 0
  and latencies = ref [] in
  Array.iter
    (function
      | None -> errors := !errors + requests_per_client
      | Some w ->
          ok := !ok + w.w_ok;
          hits := !hits + w.w_hits;
          misses := !misses + w.w_misses;
          coalesced := !coalesced + w.w_coalesced;
          overloaded := !overloaded + w.w_overloaded;
          errors := !errors + w.w_errors;
          latencies := List.rev_append w.latencies_us !latencies)
    results;
  let lat = Array.of_list !latencies in
  let pct p = if Array.length lat = 0 then 0. else Ptg_util.Stats.percentile lat p in
  {
    clients;
    requests = clients * requests_per_client;
    ok = !ok;
    hits = !hits;
    misses = !misses;
    coalesced = !coalesced;
    overloaded = !overloaded;
    errors = !errors;
    wall_s;
    throughput_rps = (if wall_s > 0. then float_of_int !ok /. wall_s else 0.);
    p50_us = pct 50.;
    p95_us = pct 95.;
    p99_us = pct 99.;
  }

let report_to_string r =
  Printf.sprintf
    "loadgen: %d clients x %d requests (%d total)\n\
    \  ok          %d (hit %d / miss %d / coalesced %d)\n\
    \  overloaded  %d\n\
    \  errors      %d\n\
    \  wall        %.3f s\n\
    \  throughput  %.1f req/s\n\
    \  latency     p50 %.0f us  p95 %.0f us  p99 %.0f us\n"
    r.clients
    (r.requests / max 1 r.clients)
    r.requests r.ok r.hits r.misses r.coalesced r.overloaded r.errors r.wall_s
    r.throughput_rps r.p50_us r.p95_us r.p99_us

module Clock = Ptg_util.Clock

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let sockaddr_of = function
  | Server.Unix_socket path -> (Unix.ADDR_UNIX path, Unix.PF_UNIX)
  | Server.Tcp port ->
      (Unix.ADDR_INET (Unix.inet_addr_loopback, port), Unix.PF_INET)

let connect ?timeout_s addr =
  let sockaddr, domain = sockaddr_of addr in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try
     match timeout_s with
     | None -> Unix.connect fd sockaddr
     | Some timeout -> (
         (* Non-blocking connect + select so an unreachable peer costs
            at most [timeout] rather than the kernel's default. *)
         Unix.set_nonblock fd;
         (match Unix.connect fd sockaddr with
         | () -> ()
         | exception
             Unix.Unix_error
               ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> (
             match Unix.select [] [ fd ] [] timeout with
             | [], [], [] ->
                 raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
             | _ -> (
                 match Unix.getsockopt_error fd with
                 | None -> ()
                 | Some err -> raise (Unix.Unix_error (err, "connect", "")))));
         Unix.clear_nonblock fd)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close t =
  (* Both channels share one descriptor; closing the output channel
     flushes and closes it. *)
  close_out_noerr t.oc

let set_timeouts t timeout_s =
  match timeout_s with
  | Some v when v > 0. -> (
      try
        Unix.setsockopt_float t.fd Unix.SO_RCVTIMEO v;
        Unix.setsockopt_float t.fd Unix.SO_SNDTIMEO v
      with Unix.Unix_error _ | Invalid_argument _ -> ())
  | _ -> ()

(* A socket-timeout expiry surfaces as [Sys_blocked_io] through the
   buffered channel (or a read/write error); classify by elapsed time
   (monotonic). *)
let classify_transport_error timeout_s t0 =
  match timeout_s with
  | Some v when v > 0. && Clock.elapsed_s t0 >= 0.9 *. v ->
      Error "request timed out"
  | _ -> Error "connection closed"

let request ?id ?v ?timeout_s t req =
  set_timeouts t timeout_s;
  let t0 = Clock.now_ns () in
  match
    output_string t.oc (Protocol.encode_request ?id ?v req);
    output_char t.oc '\n';
    flush t.oc;
    input_line t.ic
  with
  | exception (End_of_file | Sys_error _ | Sys_blocked_io) ->
      classify_transport_error timeout_s t0
  | line -> (
      match Protocol.decode_response line with
      | Ok (_meta, resp) -> Ok resp
      | Error e -> Error e)

let run t scenario = request t (Protocol.Run scenario)

let hello ?timeout_s t =
  match request ~v:2 ?timeout_s t (Protocol.Hello Protocol.max_version) with
  | Ok (Protocol.Hello_reply v) -> Ok v
  | Ok _ -> Error "hello: unexpected reply"
  | Error e -> Error e

let cancel ?timeout_s t ~target =
  match request ~v:2 ?timeout_s t (Protocol.Cancel target) with
  | Ok Protocol.Pong -> Ok ()
  | Ok (Protocol.Error_reply e) -> Error e
  | Ok _ -> Error "cancel: unexpected reply"
  | Error e -> Error e

(* A streamed run holds the connection in a read loop, forwarding each
   progress frame, until the terminal frame arrives. The read timeout
   restarts per frame — progress frames are keep-alives, so a streamed
   run survives a per-frame timeout shorter than the whole compute. *)
let run_stream ?id ?timeout_s ?on_progress t scenario =
  set_timeouts t timeout_s;
  let t0 = Clock.now_ns () in
  match
    output_string t.oc
      (Protocol.encode_request ?id ~v:2 (Protocol.Run_stream scenario));
    output_char t.oc '\n';
    flush t.oc
  with
  | exception (Sys_error _ | Sys_blocked_io) ->
      classify_transport_error timeout_s t0
  | () ->
      let rec read_frame () =
        let t_frame = Clock.now_ns () in
        match input_line t.ic with
        | exception (End_of_file | Sys_error _ | Sys_blocked_io) ->
            classify_transport_error timeout_s t_frame
        | line -> (
            match Protocol.decode_response line with
            | Ok (_meta, Protocol.Progress { done_count; total }) ->
                (match on_progress with
                | Some f -> f ~done_count ~total
                | None -> ());
                read_frame ()
            | Ok (_meta, resp) -> Ok resp
            | Error e -> Error e)
      in
      read_frame ()

(* ------------------------------------------------------------------ *)
(* Retrying sessions                                                   *)
(* ------------------------------------------------------------------ *)

type retry_policy = {
  attempts : int;
  base_backoff_s : float;
  max_backoff_s : float;
  jitter : float;
}

let default_retry =
  { attempts = 3; base_backoff_s = 0.05; max_backoff_s = 1.0; jitter = 0.5 }

let check_policy p =
  if p.attempts < 1 then invalid_arg "Client: retry attempts";
  if not (p.base_backoff_s >= 0. && p.max_backoff_s >= 0.) then
    invalid_arg "Client: retry backoff";
  if not (p.jitter >= 0. && p.jitter <= 1.) then invalid_arg "Client: jitter"

let backoff_delay policy ~u ~attempt =
  let exp = Float.of_int (1 lsl min attempt 30) in
  let d = Float.min policy.max_backoff_s (policy.base_backoff_s *. exp) in
  (* Full jitter ([jitter = 1.0], [u -> 1.0]) must not collapse the
     delay to ~0 s — that turns retries into a hot loop against a server
     that is already struggling. Floor at 10% of the base backoff
     (clamped to the cap so a base above the cap cannot push past it). *)
  let floor_s = Float.min policy.max_backoff_s (0.1 *. policy.base_backoff_s) in
  Float.max floor_s (d *. (1. -. (policy.jitter *. u)))

type session = {
  s_addr : Server.addr;
  policy : retry_policy;
  connect_timeout_s : float option;
  request_timeout_s : float option;
  rng : Ptg_util.Rng.t;
  mutable conn : t option;
  mutable ever_connected : bool;
  mutable retries : int;
  mutable reconnects : int;
}

let session ?(policy = default_retry) ?connect_timeout_s ?request_timeout_s
    ?(seed = 1L) addr =
  check_policy policy;
  {
    s_addr = addr;
    policy;
    connect_timeout_s;
    request_timeout_s;
    rng = Ptg_util.Rng.create seed;
    conn = None;
    ever_connected = false;
    retries = 0;
    reconnects = 0;
  }

let session_retries s = s.retries
let session_reconnects s = s.reconnects

let session_close s =
  match s.conn with
  | Some c ->
      s.conn <- None;
      close c
  | None -> ()

let drop_conn s = session_close s

let ensure_conn s =
  match s.conn with
  | Some c -> Ok c
  | None -> (
      match connect ?timeout_s:s.connect_timeout_s s.s_addr with
      | c ->
          if s.ever_connected then s.reconnects <- s.reconnects + 1;
          s.ever_connected <- true;
          s.conn <- Some c;
          Ok c
      | exception Unix.Unix_error (err, _, _) ->
          Error ("connect: " ^ Unix.error_message err)
      | exception Sys_error msg -> Error ("connect: " ^ msg))

(* Retries are lossless, not merely safe: every scenario is
   deterministic and cache-keyed, so re-sending an identical request can
   only hit the cache or recompute the same bytes. Only transport-level
   failures (connect, torn/closed/timed-out sockets) are retried —
   server-decided replies, including [Timeout] and [Overloaded], go back
   to the caller. *)
let session_request s req =
  let rec attempt k last_err =
    if k >= s.policy.attempts then Error last_err
    else begin
      if k > 0 then begin
        s.retries <- s.retries + 1;
        let d =
          backoff_delay s.policy ~u:(Ptg_util.Rng.float s.rng) ~attempt:(k - 1)
        in
        if d > 0. then Thread.delay d
      end;
      match ensure_conn s with
      | Error e -> attempt (k + 1) e
      | Ok conn -> (
          match request ?timeout_s:s.request_timeout_s conn req with
          | Ok resp -> Ok resp
          | Error e ->
              drop_conn s;
              attempt (k + 1) e)
    end
  in
  attempt 0 "no attempts made"

let session_run s scenario = session_request s (Protocol.Run scenario)

(* Streamed analogue of [session_request]. The same lossless-retry
   argument applies to a torn stream: re-sending the run replays any
   progress already forwarded (duplicates, never gaps) and the terminal
   frame is byte-identical, so [on_progress] must be idempotent per
   (done_count, total) pair — both consumers (keep-alive, edge
   re-emission) are. *)
let session_run_stream ?on_progress s scenario =
  let rec attempt k last_err =
    if k >= s.policy.attempts then Error last_err
    else begin
      if k > 0 then begin
        s.retries <- s.retries + 1;
        let d =
          backoff_delay s.policy ~u:(Ptg_util.Rng.float s.rng) ~attempt:(k - 1)
        in
        if d > 0. then Thread.delay d
      end;
      match ensure_conn s with
      | Error e -> attempt (k + 1) e
      | Ok conn -> (
          match
            run_stream ?timeout_s:s.request_timeout_s ?on_progress conn
              scenario
          with
          | Ok resp -> Ok resp
          | Error e ->
              drop_conn s;
              attempt (k + 1) e)
    end
  in
  attempt 0 "no attempts made"

(* ------------------------------------------------------------------ *)
(* Load generation                                                     *)
(* ------------------------------------------------------------------ *)

type report = {
  clients : int;
  requests : int;
  ok : int;
  hits : int;
  misses : int;
  coalesced : int;
  overloaded : int;
  timeouts : int;
  errors : int;
  retries : int;
  reconnects : int;
  wall_s : float;
  throughput_rps : float;
  p50_us : float option;
  p95_us : float option;
  p99_us : float option;
}

type worker_tally = {
  mutable w_ok : int;
  mutable w_hits : int;
  mutable w_misses : int;
  mutable w_coalesced : int;
  mutable w_overloaded : int;
  mutable w_timeouts : int;
  mutable w_errors : int;
  mutable w_retries : int;
  mutable w_reconnects : int;
  mutable latencies_us : float list;  (** ok responses only *)
}

let loadgen ?(policy = default_retry) ?connect_timeout_s ?request_timeout_s
    ?(swarm = 1) ~addr ~clients ~requests_per_client ~scenarios () =
  if clients < 1 then invalid_arg "Client.loadgen: clients";
  if requests_per_client < 1 then invalid_arg "Client.loadgen: requests_per_client";
  if scenarios = [] then invalid_arg "Client.loadgen: scenarios";
  if swarm < 1 then invalid_arg "Client.loadgen: swarm";
  check_policy policy;
  let scenarios = Array.of_list scenarios in
  let tallies =
    Array.init clients (fun _ ->
        {
          w_ok = 0;
          w_hits = 0;
          w_misses = 0;
          w_coalesced = 0;
          w_overloaded = 0;
          w_timeouts = 0;
          w_errors = 0;
          w_retries = 0;
          w_reconnects = 0;
          latencies_us = [];
        })
  in
  let worker i =
    let tally = tallies.(i) in
    (* Per-client seeds: deterministic jitter streams, distinct per
       client (and per swarm connection) so backoffs do not
       synchronize. Swarm mode keeps [swarm] independent sessions per
       closed-loop thread and deals requests across them round-robin —
       a connection pool that multiplies socket-level concurrency
       without multiplying threads. *)
    let sessions =
      Array.init swarm (fun s ->
          session ~policy ?connect_timeout_s ?request_timeout_s
            ~seed:(Int64.of_int (0x10001 + (i * swarm) + s))
            addr)
    in
    for r = 0 to requests_per_client - 1 do
      let sess = sessions.(r mod swarm) in
      let scenario = scenarios.(r mod Array.length scenarios) in
      let t0 = Clock.now_ns () in
      match session_run sess scenario with
      | Ok (Protocol.Result { cache; _ }) -> (
          tally.w_ok <- tally.w_ok + 1;
          tally.latencies_us <- Clock.elapsed_us t0 :: tally.latencies_us;
          match cache with
          | Protocol.Hit -> tally.w_hits <- tally.w_hits + 1
          | Protocol.Miss -> tally.w_misses <- tally.w_misses + 1
          | Protocol.Coalesced -> tally.w_coalesced <- tally.w_coalesced + 1)
      | Ok Protocol.Overloaded -> tally.w_overloaded <- tally.w_overloaded + 1
      | Ok Protocol.Timeout -> tally.w_timeouts <- tally.w_timeouts + 1
      | Ok Protocol.Cancelled
      | Ok (Protocol.Error_reply _ | Protocol.Progress _)
      | Ok (Protocol.Pong | Protocol.Stats_reply _ | Protocol.Hello_reply _)
      | Error _ ->
          tally.w_errors <- tally.w_errors + 1
    done;
    Array.iter
      (fun sess ->
        tally.w_retries <- tally.w_retries + session_retries sess;
        tally.w_reconnects <- tally.w_reconnects + session_reconnects sess;
        session_close sess)
      sessions
  in
  let wall_t0 = Clock.now_ns () in
  let threads = Array.init clients (fun i -> Thread.create worker i) in
  Array.iter Thread.join threads;
  let wall_s = Clock.elapsed_s wall_t0 in
  let ok = ref 0
  and hits = ref 0
  and misses = ref 0
  and coalesced = ref 0
  and overloaded = ref 0
  and timeouts = ref 0
  and errors = ref 0
  and retries = ref 0
  and reconnects = ref 0
  and latencies = ref [] in
  Array.iter
    (fun w ->
      ok := !ok + w.w_ok;
      hits := !hits + w.w_hits;
      misses := !misses + w.w_misses;
      coalesced := !coalesced + w.w_coalesced;
      overloaded := !overloaded + w.w_overloaded;
      timeouts := !timeouts + w.w_timeouts;
      errors := !errors + w.w_errors;
      retries := !retries + w.w_retries;
      reconnects := !reconnects + w.w_reconnects;
      latencies := List.rev_append w.latencies_us !latencies)
    tallies;
  let lat = Array.of_list !latencies in
  (* No ok responses means no latency sample: the percentiles are
     undefined, not 0 us — a 0 would read as an impossibly fast server
     in exactly the runs that are total failures. *)
  let pct p =
    if Array.length lat = 0 then None else Some (Ptg_util.Stats.percentile lat p)
  in
  {
    clients;
    requests = clients * requests_per_client;
    ok = !ok;
    hits = !hits;
    misses = !misses;
    coalesced = !coalesced;
    overloaded = !overloaded;
    timeouts = !timeouts;
    errors = !errors;
    retries = !retries;
    reconnects = !reconnects;
    wall_s;
    throughput_rps = (if wall_s > 0. then float_of_int !ok /. wall_s else 0.);
    p50_us = pct 50.;
    p95_us = pct 95.;
    p99_us = pct 99.;
  }

let report_to_string r =
  let pct = function Some v -> Printf.sprintf "%.0f us" v | None -> "n/a" in
  Printf.sprintf
    "loadgen: %d clients x %d requests (%d total)\n\
    \  ok          %d (hit %d / miss %d / coalesced %d)\n\
    \  overloaded  %d\n\
    \  timeouts    %d\n\
    \  errors      %d (retries %d, reconnects %d)\n\
    \  wall        %.3f s\n\
    \  throughput  %.1f req/s\n\
    \  latency     p50 %s  p95 %s  p99 %s\n"
    r.clients
    (r.requests / max 1 r.clients)
    r.requests r.ok r.hits r.misses r.coalesced r.overloaded r.timeouts
    r.errors r.retries r.reconnects r.wall_s r.throughput_rps (pct r.p50_us)
    (pct r.p95_us) (pct r.p99_us)

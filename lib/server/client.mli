(** Client side of the wire protocol: one-shot connections, retrying
    sessions, and the closed-loop load generator behind the [loadgen]
    subcommand.

    All durations are measured on the monotonic clock
    ({!Ptg_util.Clock}), never wall-clock time. *)

type t

val connect : ?timeout_s:float -> Server.addr -> t
(** Raises [Unix.Unix_error] if the server is unreachable; with
    [timeout_s], a non-responding peer raises [ETIMEDOUT] after at most
    that long instead of the kernel default. *)

val close : t -> unit

val request :
  ?id:string ->
  ?v:int ->
  ?timeout_s:float ->
  t ->
  Protocol.request ->
  (Protocol.response, string) result
(** One round trip: send the frame, block for the one-line reply.
    [Error] covers transport failures (connection closed mid-reply,
    ["request timed out"] when [timeout_s] elapsed) and undecodable
    response frames. [timeout_s] bounds both the send and the receive
    via socket timeouts. [v] is the frame's protocol version (default
    {!Protocol.version}); v2-only requests raise through
    {!Protocol.encode_request} unless [v >= 2]. *)

val run : t -> Ptg_sim.Scenario.t -> (Protocol.response, string) result

(** {2 Protocol v2} *)

val hello : ?timeout_s:float -> t -> (int, string) result
(** Negotiate: send [hello] with our {!Protocol.max_version}, return
    the version the server settled on. A v1-only server rejects the
    frame, which surfaces as [Error] — callers may treat that as
    "speak v1". *)

val cancel : ?timeout_s:float -> t -> target:string -> (unit, string) result
(** Cancel the in-flight run whose request id is [target]. Must be sent
    on a different connection than the run itself (that connection is
    blocked awaiting its result). [Error] carries the server's reply
    when the id names nothing in flight. *)

val run_stream :
  ?id:string ->
  ?timeout_s:float ->
  ?on_progress:(done_count:int -> total:int -> unit) ->
  t ->
  Ptg_sim.Scenario.t ->
  (Protocol.response, string) result
(** Streamed run: sends [stream:true] at v2 and forwards each
    [progress] frame to [on_progress] until the terminal frame, which
    is returned exactly like {!request}. [timeout_s] applies per frame
    (progress frames reset it), so it can be much shorter than the
    whole computation. *)

(** {2 Retrying sessions}

    Retries are lossless, not merely safe: every scenario is
    deterministic and cache-keyed, so re-sending an identical request
    can only hit the cache or recompute the same bytes (see DESIGN.md).
    Sessions therefore retry transport failures — failed connects,
    torn/closed connections, request timeouts — with jittered
    exponential backoff, transparently reconnecting. Server-decided
    replies ([Timeout], [Overloaded], error frames) are returned to the
    caller, which owns that policy. *)

type retry_policy = {
  attempts : int;        (** total tries, including the first (>= 1) *)
  base_backoff_s : float;
  max_backoff_s : float;
  jitter : float;        (** in [0,1]: each delay is scaled by
                             [1 - jitter * u], [u] uniform in [0,1) *)
}

val default_retry : retry_policy
(** 3 attempts, 50 ms base doubling to at most 1 s, jitter 0.5. *)

val backoff_delay : retry_policy -> u:float -> attempt:int -> float
(** Pure: delay before retry number [attempt + 1] given a uniform draw
    [u]. Exposed for tests. For a positive [base_backoff_s] the result
    is strictly positive — jitter is floored at 10% of the base (clamped
    to [max_backoff_s]) so full jitter can never produce a 0 s delay and
    a retry hot loop — and never exceeds [max_backoff_s]. *)

type session

val session :
  ?policy:retry_policy ->
  ?connect_timeout_s:float ->
  ?request_timeout_s:float ->
  ?seed:int64 ->
  Server.addr ->
  session
(** Lazily-connecting session; [seed] fixes the jitter stream. Raises
    [Invalid_argument] on a nonsensical policy. *)

val session_request :
  session -> Protocol.request -> (Protocol.response, string) result
(** Like {!request}, with reconnect-and-retry per the policy. After the
    final attempt the last transport error is returned. *)

val session_run :
  session -> Ptg_sim.Scenario.t -> (Protocol.response, string) result

val session_run_stream :
  ?on_progress:(done_count:int -> total:int -> unit) ->
  session ->
  Ptg_sim.Scenario.t ->
  (Protocol.response, string) result
(** {!run_stream} with reconnect-and-retry per the policy. Because the
    read timeout restarts per frame, a server that slices a long run
    keeps this call alive with [progress] frames even when every slice
    exceeds [request_timeout_s]. A retry after a torn stream may replay
    progress pairs already seen (never skip any), so [on_progress] must
    tolerate duplicates. *)

val session_retries : session -> int
(** Re-attempts made after a transport failure (first tries excluded). *)

val session_reconnects : session -> int
(** Successful connects after the first one. *)

val session_close : session -> unit

(** {2 Closed-loop load generation}

    [clients] concurrent sessions, each issuing [requests_per_client]
    requests back-to-back (a client sends its next request only after
    the previous response arrives or its retries are exhausted), cycling
    through [scenarios]. A connection that dies mid-run is re-dialled
    with backoff rather than charging every remaining request as an
    error. *)
type report = {
  clients : int;
  requests : int;  (** total issued across all clients *)
  ok : int;
  hits : int;
  misses : int;
  coalesced : int;
  overloaded : int;
  timeouts : int;  (** server [timeout] frames (deadline expiries) *)
  errors : int;    (** error frames plus exhausted-retry transport failures *)
  retries : int;   (** transport-failure re-attempts across all clients *)
  reconnects : int;
  wall_s : float;
  throughput_rps : float;  (** ok responses per wall-clock second *)
  p50_us : float option;
  p95_us : float option;
  p99_us : float option;
      (** latency percentiles over ok responses; [None] when no request
          succeeded (an empty sample has no percentiles — reporting 0
          would fake a perfect server in a fully-failed run) *)
}

val loadgen :
  ?policy:retry_policy ->
  ?connect_timeout_s:float ->
  ?request_timeout_s:float ->
  ?swarm:int ->
  addr:Server.addr ->
  clients:int ->
  requests_per_client:int ->
  scenarios:Ptg_sim.Scenario.t list ->
  unit ->
  report
(** [swarm] (default 1) is the number of independent sessions each
    client thread holds, dealt requests round-robin: [clients * swarm]
    connections sustained by [clients] closed-loop threads — the mode
    that soaks a sharded router without thousands of OS threads.
    Raises [Invalid_argument] on non-positive [clients],
    [requests_per_client] or [swarm], an empty [scenarios] list, or a
    nonsensical [policy]. *)

val report_to_string : report -> string
(** Multi-line human-readable summary, newline-terminated. *)

(** Client side of the wire protocol, plus the closed-loop load
    generator behind the [loadgen] subcommand. *)

type t

val connect : Server.addr -> t
(** Raises [Unix.Unix_error] if the server is unreachable. *)

val close : t -> unit

val request : ?id:string -> t -> Protocol.request -> (Protocol.response, string) result
(** One round trip: send the frame, block for the one-line reply.
    [Error] covers transport failures (connection closed mid-reply) and
    undecodable response frames. *)

val run : t -> Ptg_sim.Scenario.t -> (Protocol.response, string) result

(** Closed-loop load generation: [clients] concurrent connections, each
    issuing [requests_per_client] requests back-to-back (a client sends
    its next request only after the previous response arrives), cycling
    through [scenarios]. *)
type report = {
  clients : int;
  requests : int;  (** total issued across all clients *)
  ok : int;
  hits : int;
  misses : int;
  coalesced : int;
  overloaded : int;
  errors : int;  (** error frames plus transport failures *)
  wall_s : float;
  throughput_rps : float;  (** ok responses per wall-clock second *)
  p50_us : float;
  p95_us : float;
  p99_us : float;  (** latency percentiles over ok responses *)
}

val loadgen :
  addr:Server.addr ->
  clients:int ->
  requests_per_client:int ->
  scenarios:Ptg_sim.Scenario.t list ->
  report
(** Raises [Invalid_argument] on non-positive [clients] or
    [requests_per_client], or an empty [scenarios] list. *)

val report_to_string : report -> string
(** Multi-line human-readable summary, newline-terminated. *)

(* Sharding front tier for the scenario service.

   The router accepts the same line-JSON protocol the shards speak and
   forwards each [run] to the backend shard owning the scenario's
   canonical hash on a consistent-hash ring ([Ring]). In front of the
   shards it keeps its own hot-set LRU over the union of the per-shard
   caches, so repeat requests for the hottest scenarios are answered
   without a network hop at all.

   Failure handling follows the client's fault taxonomy:

   - transport failures (connect refused, torn/closed connection,
     request timeout at the socket) are first retried by the inter-tier
     [Client.session]; when its retries are exhausted the shard is
     ejected and the request re-routed to the next live shard on the
     ring — a non-shed request is never lost to a shard crash;
   - server-decided [Timeout] and [Overloaded] replies pass through to
     the caller (that policy belongs to the edge client) but count as
     health strikes against the shard;
   - a health thread pings every shard each interval: failures add
     strikes until the shard is ejected, a successful ping resets the
     strikes and re-admits an ejected shard, restoring its original
     keyspace.

   Connection handling mirrors [Server]: per-connection threads, idle
   timeouts, a connection cap with best-effort shedding, a self-pipe to
   wake the accept loop, and a drain deadline at shutdown. Forwarding is
   I/O-bound, so requests run inline on the connection thread — no
   worker pool. *)

module Scenario = Ptg_sim.Scenario
module Registry = Ptg_obs.Registry
module Trace = Ptg_obs.Trace
module Clock = Ptg_util.Clock

type config = {
  addr : Server.addr;
  shards : Server.addr list;
  cache_capacity : int;
  cache_bytes : int option;
  vnodes : int;
  retry : Client.retry_policy;
  connect_timeout_s : float;
  request_timeout_s : float;
  health_interval_s : float;
  strike_limit : int;
  idle_timeout_s : float;
  max_conns : int;
  drain_deadline_s : float;
  obs : Ptg_obs.Sink.t option;
}

let default_config addr ~shards =
  {
    addr;
    shards;
    cache_capacity = 64;
    cache_bytes = None;
    vnodes = 64;
    retry = Client.default_retry;
    connect_timeout_s = 1.0;
    request_timeout_s = 30.;
    health_interval_s = 0.5;
    strike_limit = 3;
    idle_timeout_s = 60.;
    max_conns = 256;
    drain_deadline_s = 5.;
    obs = None;
  }

(* Handles resolved once at startup; per-shard series are labelled with
   the shard index so one registry serves any topology. *)
type obs_metrics = {
  c_served : Registry.counter;
  c_hits : Registry.counter;
  c_misses : Registry.counter;
  c_forwarded : Registry.counter;
  c_reroutes : Registry.counter;
  c_adoptions : Registry.counter;
  c_no_live : Registry.counter;
  c_errors : Registry.counter;
  c_timeouts : Registry.counter;
  c_overloaded : Registry.counter;
  c_conn_shed : Registry.counter;
  c_accept_errors : Registry.counter;
  c_idle_closed : Registry.counter;
  shard_requests : Registry.counter array;
  shard_ejections : Registry.counter array;
  shard_readmissions : Registry.counter array;
  g_ring : Registry.gauge array;
  g_hit_ratio : Registry.gauge;
  g_live : Registry.gauge;
  trace : Trace.t;
}

let make_obs sink ~shards =
  let reg = Ptg_obs.Sink.registry sink in
  let per name =
    Array.init shards (fun i ->
        Registry.counter reg ~labels:[ ("shard", string_of_int i) ] name)
  in
  {
    c_served = Registry.counter reg "router_served_total";
    c_hits = Registry.counter reg "router_cache_hits_total";
    c_misses = Registry.counter reg "router_cache_misses_total";
    c_forwarded = Registry.counter reg "router_forwarded_total";
    c_reroutes = Registry.counter reg "router_reroutes_total";
    c_adoptions = Registry.counter reg "router_adoptions_total";
    c_no_live = Registry.counter reg "router_no_live_shard_total";
    c_errors = Registry.counter reg "router_errors_total";
    c_timeouts = Registry.counter reg "router_timeouts_total";
    c_overloaded = Registry.counter reg "router_overloaded_total";
    c_conn_shed = Registry.counter reg "router_conns_shed_total";
    c_accept_errors = Registry.counter reg "router_accept_errors_total";
    c_idle_closed = Registry.counter reg "router_conns_idle_closed_total";
    shard_requests = per "router_shard_requests_total";
    shard_ejections = per "router_shard_ejections_total";
    shard_readmissions = per "router_shard_readmissions_total";
    g_ring =
      Array.init shards (fun i ->
          Registry.gauge reg
            ~labels:[ ("shard", string_of_int i) ]
            "router_ring_share");
    g_hit_ratio = Registry.gauge reg "router_cache_hit_ratio";
    g_live = Registry.gauge reg "router_live_shards";
    trace = Ptg_obs.Sink.trace sink;
  }

type shard_state = {
  s_addr : Server.addr;
  mutable live : bool;
  mutable strikes : int;
  mutable requests : int;
  mutable ejections : int;
  mutable readmissions : int;
}

type t = {
  config : config;
  ring : Ring.t;
  states : shard_state array;
  listen_fd : Unix.file_descr;
  bound : Server.addr;
  pipe_r : Unix.file_descr;  (* self-pipe: wakes the accept loop on stop *)
  pipe_w : Unix.file_descr;
  mutex : Mutex.t;
  drained : Condition.t;
  cache : Lru.t;
  conn_fds : (Unix.file_descr, unit) Hashtbl.t;
  mutable conns : int;
  mutable conn_seq : int;
  mutable stopping : bool;
  mutable finalized : bool;
  mutable ticker_stop : bool;
  mutable accept_thread : Thread.t option;
  mutable ticker_thread : Thread.t option;
  mutable health_thread : Thread.t option;
  mutable served : int;
  mutable forwarded : int;
  mutable reroutes : int;
  mutable adoptions : int;
  mutable no_live : int;
  mutable errors : int;
  mutable timeouts : int;
  mutable overloaded : int;
  mutable conn_shed : int;
  mutable accept_errors : int;
  mutable idle_closed : int;
  obs_m : obs_metrics option;
}

let listen_addr t = t.bound

let obs_incr t f = match t.obs_m with Some m -> Registry.incr (f m) | None -> ()

(* ------------------------------------------------------------------ *)
(* Shard health (all _locked helpers require the router mutex)         *)
(* ------------------------------------------------------------------ *)

let live_mask_locked t = Array.map (fun s -> s.live) t.states

let live_count_locked t =
  Array.fold_left (fun a s -> if s.live then a + 1 else a) 0 t.states

let sync_topology_gauges_locked t =
  match t.obs_m with
  | None -> ()
  | Some m ->
      let shares = Ring.ownership t.ring ~live:(live_mask_locked t) in
      Array.iteri (fun i g -> Registry.set_gauge g shares.(i)) m.g_ring;
      Registry.set_gauge m.g_live (float_of_int (live_count_locked t))

let eject_locked t i =
  let st = t.states.(i) in
  if st.live then begin
    st.live <- false;
    st.ejections <- st.ejections + 1;
    (match t.obs_m with
    | Some m -> Registry.incr m.shard_ejections.(i)
    | None -> ());
    sync_topology_gauges_locked t
  end

let strike_locked t i =
  let st = t.states.(i) in
  st.strikes <- st.strikes + 1;
  if st.strikes >= t.config.strike_limit then eject_locked t i

let mark_healthy_locked t i =
  let st = t.states.(i) in
  st.strikes <- 0;
  if not st.live then begin
    st.live <- true;
    st.readmissions <- st.readmissions + 1;
    (match t.obs_m with
    | Some m -> Registry.incr m.shard_readmissions.(i)
    | None -> ());
    sync_topology_gauges_locked t
  end

let sync_hit_ratio_locked t =
  match t.obs_m with
  | None -> ()
  | Some m ->
      let lookups = Lru.hits t.cache + Lru.misses t.cache in
      if lookups > 0 then
        Registry.set_gauge m.g_hit_ratio
          (float_of_int (Lru.hits t.cache) /. float_of_int lookups)

(* ------------------------------------------------------------------ *)
(* Stats (also the [stats] op payload); keys sorted alphabetically.    *)
(* ------------------------------------------------------------------ *)

let stats_locked t =
  let totals f = Array.fold_left (fun a s -> a + f s) 0 t.states in
  let base =
    [
      ("accept_errors", float_of_int t.accept_errors);
      ("adoptions", float_of_int t.adoptions);
      ("cache_bytes", float_of_int (Lru.bytes t.cache));
      ("cache_entries", float_of_int (Lru.length t.cache));
      ("cache_evictions", float_of_int (Lru.evictions t.cache));
      ("cache_hits", float_of_int (Lru.hits t.cache));
      ("cache_misses", float_of_int (Lru.misses t.cache));
      ("conn_shed", float_of_int t.conn_shed);
      ("conns", float_of_int t.conns);
      ("ejections", float_of_int (totals (fun s -> s.ejections)));
      ("errors", float_of_int t.errors);
      ("forwarded", float_of_int t.forwarded);
      ("idle_closed", float_of_int t.idle_closed);
      ("no_live", float_of_int t.no_live);
      ("overloaded", float_of_int t.overloaded);
      ("readmissions", float_of_int (totals (fun s -> s.readmissions)));
      ("reroutes", float_of_int t.reroutes);
      ("served", float_of_int t.served);
      ("shards", float_of_int (Array.length t.states));
      ("shards_live", float_of_int (live_count_locked t));
      ("timeouts", float_of_int t.timeouts);
    ]
  in
  let per_shard =
    List.concat
      (List.init (Array.length t.states) (fun i ->
           let st = t.states.(i) in
           [
             (Printf.sprintf "shard%d_ejections" i, float_of_int st.ejections);
             (Printf.sprintf "shard%d_live" i, if st.live then 1. else 0.);
             (Printf.sprintf "shard%d_requests" i, float_of_int st.requests);
           ]))
  in
  List.sort (fun (a, _) (b, _) -> compare a b) (base @ per_shard)

let stats t =
  Mutex.lock t.mutex;
  let rows = stats_locked t in
  Mutex.unlock t.mutex;
  rows

let live_shards t =
  Mutex.lock t.mutex;
  let mask = live_mask_locked t in
  Mutex.unlock t.mutex;
  mask

(* ------------------------------------------------------------------ *)
(* Request routing                                                     *)
(* ------------------------------------------------------------------ *)

let record_trace_locked t ~hash64 ~status ~shard =
  match t.obs_m with
  | Some m ->
      Trace.record m.trace (Trace.Router_request { hash = hash64; status; shard })
  | None -> ()

(* The response for one [run] frame. [get_session] hands out this
   connection's lazily-built session for a shard index; the blocking
   forward happens outside the mutex. Forwards always travel as a v2
   stream so a shard slicing a long run keeps the inter-tier hop alive
   with progress frames; [on_progress] (the edge re-emission hook) runs
   on this thread, between frame reads. *)
let handle_run ?on_progress t get_session scenario =
  let hash = Scenario.hash scenario in
  let hash64 = Scenario.hash64 scenario in
  Mutex.lock t.mutex;
  let cached = Lru.find t.cache hash in
  (match (cached, t.obs_m) with
  | Some _, Some m -> Registry.incr m.c_hits
  | None, Some m -> Registry.incr m.c_misses
  | _, None -> ());
  sync_hit_ratio_locked t;
  match cached with
  | Some result ->
      t.served <- t.served + 1;
      obs_incr t (fun m -> m.c_served);
      record_trace_locked t ~hash64 ~status:"hit" ~shard:"";
      Mutex.unlock t.mutex;
      Protocol.Result { cache = Protocol.Hit; hash; result }
  | None ->
      Mutex.unlock t.mutex;
      let n = Array.length t.states in
      let no_live_reply () =
        Mutex.lock t.mutex;
        t.no_live <- t.no_live + 1;
        obs_incr t (fun m -> m.c_no_live);
        record_trace_locked t ~hash64 ~status:"overloaded" ~shard:"";
        Mutex.unlock t.mutex;
        Protocol.Overloaded
      in
      (* Each transport failure ejects its shard, so successive attempts
         see a strictly smaller live set; [n + 1] tries bounds the walk
         even if health pings re-admit a flapping shard mid-request. *)
      let rec attempt tried =
        if tried > n then no_live_reply ()
        else begin
          Mutex.lock t.mutex;
          let target = Ring.route t.ring ~live:(live_mask_locked t) hash64 in
          (match target with
          | Some i ->
              t.states.(i).requests <- t.states.(i).requests + 1;
              (match t.obs_m with
              | Some m -> Registry.incr m.shard_requests.(i)
              | None -> ())
          | None -> ());
          Mutex.unlock t.mutex;
          match target with
          | None -> no_live_reply ()
          | Some i -> (
              let shard = string_of_int i in
              let finish ?(strike = false) ?(adopted = false) ~status
                  response =
                Mutex.lock t.mutex;
                if strike then strike_locked t i
                else t.states.(i).strikes <- 0;
                (match response with
                | Protocol.Result { hash = h; result; _ } ->
                    Lru.put t.cache h result;
                    t.served <- t.served + 1;
                    t.forwarded <- t.forwarded + 1;
                    obs_incr t (fun m -> m.c_served);
                    obs_incr t (fun m -> m.c_forwarded);
                    if adopted then begin
                      t.adoptions <- t.adoptions + 1;
                      obs_incr t (fun m -> m.c_adoptions)
                    end
                | Protocol.Overloaded ->
                    t.overloaded <- t.overloaded + 1;
                    obs_incr t (fun m -> m.c_overloaded)
                | Protocol.Timeout ->
                    t.timeouts <- t.timeouts + 1;
                    obs_incr t (fun m -> m.c_timeouts)
                | _ ->
                    t.errors <- t.errors + 1;
                    obs_incr t (fun m -> m.c_errors));
                record_trace_locked t ~hash64 ~status ~shard;
                Mutex.unlock t.mutex;
                response
              in
              match
                Client.session_run_stream ?on_progress (get_session i)
                  scenario
              with
              | Ok (Protocol.Result _ as r) ->
                  (* A result reached after ≥1 re-route means the ring
                     successor adopted the victim's request — and, when
                     the shards share a warm-start store, its deepest
                     checkpoint. *)
                  finish ~adopted:(tried > 1) ~status:"ok" r
              | Ok Protocol.Overloaded ->
                  (* Server-decided: pass through (re-routing would
                     defeat the keyspace partition) but strike — a shard
                     shedding load is part of the health signal. *)
                  finish ~strike:true ~status:"overloaded" Protocol.Overloaded
              | Ok Protocol.Timeout ->
                  finish ~strike:true ~status:"timeout" Protocol.Timeout
              | Ok (Protocol.Error_reply _ as r) -> finish ~status:"error" r
              | Ok
                  ( Protocol.Pong | Protocol.Stats_reply _ | Protocol.Cancelled
                  | Protocol.Progress _ | Protocol.Hello_reply _ ) ->
                  finish ~status:"error"
                    (Protocol.Error_reply "unexpected response from shard")
              | Error _ ->
                  (* Transport crash after the session's own retries:
                     eject and re-route — the request is not lost. *)
                  Mutex.lock t.mutex;
                  eject_locked t i;
                  t.reroutes <- t.reroutes + 1;
                  obs_incr t (fun m -> m.c_reroutes);
                  Mutex.unlock t.mutex;
                  attempt (tried + 1))
        end
      in
      attempt 1

(* ------------------------------------------------------------------ *)
(* Connection handling (mirrors Server, minus fault injection)         *)
(* ------------------------------------------------------------------ *)

let record_idle_close t =
  Mutex.lock t.mutex;
  t.idle_closed <- t.idle_closed + 1;
  obs_incr t (fun m -> m.c_idle_closed);
  Mutex.unlock t.mutex

let record_error t =
  Mutex.lock t.mutex;
  t.errors <- t.errors + 1;
  obs_incr t (fun m -> m.c_errors);
  Mutex.unlock t.mutex

let initiate_stop t =
  Mutex.lock t.mutex;
  if not t.stopping then begin
    t.stopping <- true;
    (try ignore (Unix.write t.pipe_w (Bytes.make 1 'x') 0 1)
     with Unix.Unix_error _ -> ());
    Condition.broadcast t.drained
  end;
  Mutex.unlock t.mutex

let handle_conn t fd =
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.idle_timeout_s;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.config.idle_timeout_s
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let send frame =
    output_string oc frame;
    output_char oc '\n';
    flush oc
  in
  let conn_id =
    Mutex.lock t.mutex;
    let id = t.conn_seq in
    t.conn_seq <- id + 1;
    Mutex.unlock t.mutex;
    id
  in
  (* One session per shard per connection, built on first use: sessions
     are single-threaded, and per-connection ownership keeps the
     inter-tier connection count proportional to the edge's. *)
  let n = Array.length t.states in
  let sessions = Array.make n None in
  let get_session i =
    match sessions.(i) with
    | Some s -> s
    | None ->
        let s =
          Client.session ~policy:t.config.retry
            ~connect_timeout_s:t.config.connect_timeout_s
            ~request_timeout_s:t.config.request_timeout_s
            ~seed:(Int64.of_int (0x5eed + (conn_id * n) + i))
            t.states.(i).s_addr
        in
        sessions.(i) <- Some s;
        s
  in
  let read_t0 = ref (Clock.now_ns ()) in
  let rec loop () =
    read_t0 := Clock.now_ns ();
    match input_line ic with
    | exception End_of_file -> ()
    | exception (Sys_error _ | Sys_blocked_io) ->
        if
          t.config.idle_timeout_s > 0.
          && Clock.elapsed_s !read_t0 >= 0.9 *. t.config.idle_timeout_s
        then record_idle_close t
    | line -> (
        let continue =
          match Protocol.decode_request line with
          | Error msg ->
              record_error t;
              send (Protocol.encode_response (Protocol.Error_reply msg));
              true
          | Ok ({ Protocol.id; v }, req) -> (
              match req with
              | Protocol.Ping ->
                  send (Protocol.encode_response ?id ~v Protocol.Pong);
                  true
              | Protocol.Stats ->
                  send
                    (Protocol.encode_response ?id ~v
                       (Protocol.Stats_reply (stats t)));
                  true
              | Protocol.Shutdown ->
                  initiate_stop t;
                  send (Protocol.encode_response ?id ~v Protocol.Pong);
                  false
              | Protocol.Hello client_max ->
                  send
                    (Protocol.encode_response ?id ~v
                       (Protocol.Hello_reply
                          (min client_max Protocol.max_version)));
                  true
              | Protocol.Cancel target ->
                  (* The router holds no in-flight registry of its own —
                     forwarded runs block their connection thread — so a
                     cancel can never name anything it could stop. *)
                  record_error t;
                  send
                    (Protocol.encode_response ?id ~v
                       (Protocol.Error_reply
                          (Printf.sprintf
                             "cancel: no in-flight request with id \"%s\""
                             target)));
                  true
              | Protocol.Run scenario ->
                  (* Forwarded as a v2 stream regardless (shard progress
                     frames keep the inter-tier hop alive through sliced
                     runs) but the edge asked for a plain run, so the
                     frames are consumed here and only the terminal one
                     goes back, at the edge's version. *)
                  send
                    (Protocol.encode_response ?id ~v
                       (handle_run t get_session scenario));
                  true
              | Protocol.Run_stream scenario ->
                  (* [Run_stream] only decodes at v2, so re-emitting
                     progress frames to the edge is always legal. The
                     re-emission is duplicate-tolerant (an inter-tier
                     retry may replay pairs), matching what Server
                     itself sends on a re-coalesced waiter. *)
                  let on_progress ~done_count ~total =
                    send
                      (Protocol.encode_response ?id ~v
                         (Protocol.Progress { done_count; total }))
                  in
                  send
                    (Protocol.encode_response ?id ~v
                       (handle_run ~on_progress t get_session scenario));
                  true)
        in
        if continue then loop ())
  in
  (try loop () with
  | End_of_file | Sys_error _ | Sys_blocked_io | Unix.Unix_error _ -> ()
  | _ -> record_error t);
  Array.iter (Option.iter Client.session_close) sessions;
  Mutex.lock t.mutex;
  Hashtbl.remove t.conn_fds fd;
  t.conns <- t.conns - 1;
  Condition.broadcast t.drained;
  Mutex.unlock t.mutex;
  close_out_noerr oc

let shed_conn fd =
  (try
     Unix.set_nonblock fd;
     let frame = Protocol.encode_response Protocol.Overloaded ^ "\n" in
     ignore (Unix.write_substring fd frame 0 (String.length frame))
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let record_accept_error t =
  Mutex.lock t.mutex;
  t.accept_errors <- t.accept_errors + 1;
  obs_incr t (fun m -> m.c_accept_errors);
  Mutex.unlock t.mutex

let accept_backoff_s = 0.05

let accept_loop t =
  let rec loop () =
    match Unix.select [ t.listen_fd; t.pipe_r ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | readable, _, _ ->
        if List.mem t.pipe_r readable then ()
        else begin
          (match Unix.accept ~cloexec:true t.listen_fd with
          | exception
              Unix.Unix_error
                ((Unix.EMFILE | Unix.ENFILE | Unix.ENOBUFS | Unix.ENOMEM), _, _)
            ->
              record_accept_error t;
              Thread.delay accept_backoff_s
          | exception Unix.Unix_error _ -> record_accept_error t
          | fd, _ ->
              let over =
                Mutex.lock t.mutex;
                let over = t.conns >= t.config.max_conns in
                if over then begin
                  t.conn_shed <- t.conn_shed + 1;
                  obs_incr t (fun m -> m.c_conn_shed)
                end
                else begin
                  t.conns <- t.conns + 1;
                  Hashtbl.replace t.conn_fds fd ()
                end;
                Mutex.unlock t.mutex;
                over
              in
              if over then shed_conn fd
              else ignore (Thread.create (handle_conn t) fd));
          loop ()
        end
  in
  loop ()

let tick_interval_s = 0.05

let ticker t =
  let rec loop () =
    Thread.delay tick_interval_s;
    Mutex.lock t.mutex;
    let stop = t.ticker_stop in
    if not stop then Condition.broadcast t.drained;
    Mutex.unlock t.mutex;
    if not stop then loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Health checks                                                       *)
(* ------------------------------------------------------------------ *)

let check_shard t i =
  let ok =
    match Client.connect ~timeout_s:t.config.connect_timeout_s t.states.(i).s_addr with
    | exception _ -> false
    | c ->
        let r = Client.request ~timeout_s:t.config.request_timeout_s c Protocol.Ping in
        Client.close c;
        (match r with Ok Protocol.Pong -> true | _ -> false)
  in
  Mutex.lock t.mutex;
  if ok then mark_healthy_locked t i else strike_locked t i;
  Mutex.unlock t.mutex

(* Sleeps in small slices so shutdown is never blocked behind a full
   health interval. *)
let health_loop t =
  let stopping () =
    Mutex.lock t.mutex;
    let s = t.ticker_stop in
    Mutex.unlock t.mutex;
    s
  in
  let rec sleep remaining =
    if (not (stopping ())) && remaining > 0. then begin
      let slice = Float.min 0.05 remaining in
      Thread.delay slice;
      sleep (remaining -. slice)
    end
  in
  let rec loop () =
    if not (stopping ()) then begin
      sleep t.config.health_interval_s;
      if not (stopping ()) then begin
        Array.iteri (fun i _ -> if not (stopping ()) then check_shard t i) t.states;
        loop ()
      end
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let start config =
  if config.shards = [] then invalid_arg "Router.start: shards";
  if config.cache_capacity < 1 then invalid_arg "Router.start: cache_capacity";
  (match config.cache_bytes with
  | Some b when b < 1 -> invalid_arg "Router.start: cache_bytes"
  | _ -> ());
  if config.vnodes < 1 then invalid_arg "Router.start: vnodes";
  if not (config.connect_timeout_s > 0.) then
    invalid_arg "Router.start: connect_timeout_s";
  if not (config.request_timeout_s > 0.) then
    invalid_arg "Router.start: request_timeout_s";
  if not (config.health_interval_s > 0.) then
    invalid_arg "Router.start: health_interval_s";
  if config.strike_limit < 1 then invalid_arg "Router.start: strike_limit";
  if not (config.idle_timeout_s >= 0.) then
    invalid_arg "Router.start: idle_timeout_s";
  if config.max_conns < 1 then invalid_arg "Router.start: max_conns";
  if not (config.drain_deadline_s >= 0.) then
    invalid_arg "Router.start: drain_deadline_s";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd, bound =
    match config.addr with
    | Server.Unix_socket path ->
        if Sys.file_exists path then Sys.remove path;
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 64;
        (fd, Server.Unix_socket path)
    | Server.Tcp port ->
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.listen fd 64;
        let actual =
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> port
        in
        (fd, Server.Tcp actual)
  in
  let pipe_r, pipe_w = Unix.pipe ~cloexec:true () in
  let shards = Array.of_list config.shards in
  let t =
    {
      config;
      ring = Ring.create ~vnodes:config.vnodes (Array.length shards);
      states =
        Array.map
          (fun a ->
            {
              s_addr = a;
              live = true;
              strikes = 0;
              requests = 0;
              ejections = 0;
              readmissions = 0;
            })
          shards;
      listen_fd;
      bound;
      pipe_r;
      pipe_w;
      mutex = Mutex.create ();
      drained = Condition.create ();
      cache =
        Lru.create ?max_bytes:config.cache_bytes
          ~capacity:config.cache_capacity ();
      conn_fds = Hashtbl.create 64;
      conns = 0;
      conn_seq = 0;
      stopping = false;
      finalized = false;
      ticker_stop = false;
      accept_thread = None;
      ticker_thread = None;
      health_thread = None;
      served = 0;
      forwarded = 0;
      reroutes = 0;
      adoptions = 0;
      no_live = 0;
      errors = 0;
      timeouts = 0;
      overloaded = 0;
      conn_shed = 0;
      accept_errors = 0;
      idle_closed = 0;
      obs_m =
        Option.map (fun s -> make_obs s ~shards:(Array.length shards)) config.obs;
    }
  in
  Mutex.lock t.mutex;
  sync_topology_gauges_locked t;
  Mutex.unlock t.mutex;
  t.accept_thread <- Some (Thread.create accept_loop t);
  t.ticker_thread <- Some (Thread.create ticker t);
  t.health_thread <- Some (Thread.create health_loop t);
  t

let finalize t =
  Mutex.lock t.mutex;
  let acceptor = t.accept_thread in
  t.accept_thread <- None;
  Mutex.unlock t.mutex;
  Option.iter Thread.join acceptor;
  Mutex.lock t.mutex;
  let drain_t0 = Clock.now_ns () in
  let force_at = Clock.ns_after drain_t0 t.config.drain_deadline_s in
  Hashtbl.iter
    (fun fd () ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    t.conn_fds;
  let forced = ref false in
  while t.conns > 0 do
    if (not !forced) && Clock.now_ns () >= force_at then begin
      forced := true;
      Hashtbl.iter
        (fun fd () ->
          try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        t.conn_fds
    end;
    Condition.wait t.drained t.mutex
  done;
  let first = not t.finalized in
  t.finalized <- true;
  t.ticker_stop <- true;
  let tick = t.ticker_thread in
  t.ticker_thread <- None;
  let health = t.health_thread in
  t.health_thread <- None;
  Mutex.unlock t.mutex;
  Option.iter Thread.join tick;
  Option.iter Thread.join health;
  if first then begin
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
    (try Unix.close t.pipe_w with Unix.Unix_error _ -> ());
    match t.bound with
    | Server.Unix_socket path -> ( try Sys.remove path with Sys_error _ -> ())
    | Server.Tcp _ -> ()
  end

let stop t =
  initiate_stop t;
  finalize t

let wait t =
  Mutex.lock t.mutex;
  while not t.stopping do
    Condition.wait t.drained t.mutex
  done;
  Mutex.unlock t.mutex;
  finalize t

(** Sharding front tier for the scenario service.

    Speaks the same protocol as {!Server} on its listen address and
    forwards each [run] frame to the backend shard that owns the
    scenario's canonical hash on a consistent-hash ring ({!Ring}),
    using {!Client} retrying sessions as the inter-tier transport. A
    router-local LRU over the hot set answers repeat requests without a
    network hop.

    Failure handling follows the client's fault taxonomy: transport
    failures exhaust the inter-tier session's retries, then eject the
    shard and re-route the request to the ring successor (a non-shed
    request is never lost to a shard crash); server-decided [Timeout] /
    [Overloaded] replies pass through to the caller but count as health
    strikes. A health thread pings every shard each interval — failures
    accumulate strikes until ejection, and a successful ping re-admits
    the shard with its original keyspace.

    The router is checkpoint-aware by construction: requests route by
    the scenario's canonical hash, so each shard owns the warm-start
    store keys of exactly the scenarios it serves, and when the shards
    share one snapshot directory (the [serve-router] spawner's default)
    an ejection re-route lands the request on a successor that resumes
    from the victim's deepest persisted checkpoint rather than
    recomputing from scratch. A [Result] obtained after ≥1 re-route is
    counted as an {e adoption} ([adoptions] /
    [router_adoptions_total]).

    Protocol v2: responses mirror the request's version. [hello]
    negotiates normally. Every forward travels as a v2 stream
    ({!Client.session_run_stream}) so a shard slicing a long run past
    its deadline keeps the inter-tier hop alive with [progress] frames;
    when the edge itself sent [stream:true] those frames are re-emitted
    to it (duplicates possible across inter-tier retries, gaps never),
    otherwise they are consumed at the router and only the terminal
    frame goes back, at the edge's version. [cancel] is always an
    error, since forwarded runs block their connection thread and the
    router tracks no in-flight ids. *)

type config = {
  addr : Server.addr;          (** where the router listens *)
  shards : Server.addr list;   (** backend shard addresses; index = shard id *)
  cache_capacity : int;        (** router hot-set LRU entries *)
  cache_bytes : int option;    (** optional hot-set LRU byte budget *)
  vnodes : int;                (** ring points per shard *)
  retry : Client.retry_policy; (** inter-tier transport retries *)
  connect_timeout_s : float;
  request_timeout_s : float;   (** per-forward deadline at the socket *)
  health_interval_s : float;   (** delay between ping sweeps *)
  strike_limit : int;          (** consecutive failures before ejection *)
  idle_timeout_s : float;
  max_conns : int;
  drain_deadline_s : float;
  obs : Ptg_obs.Sink.t option;
}

val default_config : Server.addr -> shards:Server.addr list -> config
(** 64-entry cache, 64 vnodes, {!Client.default_retry}, 1 s connects,
    30 s forwards, 0.5 s health sweeps, 3 strikes, and {!Server}-like
    connection limits. *)

type t

val start : config -> t
(** Binds, then serves on background threads until {!stop} (or a
    [shutdown] frame). Raises [Invalid_argument] on an empty shard list
    or nonsensical tuning values, [Unix.Unix_error] when binding fails.
    All shards start live; the first health sweep corrects that within
    [health_interval_s]. *)

val listen_addr : t -> Server.addr
(** Actual bound address ([Tcp 0] resolves to the kernel-chosen port). *)

val stats : t -> (string * float) list
(** Router counters — including [adoptions], [reroutes], [ejections],
    [readmissions] — plus per-shard [shardN_live] / [shardN_requests] /
    [shardN_ejections] rows; keys sorted, also the [stats] op payload. *)

val live_shards : t -> bool array
(** Current ejection state, indexed by shard id. *)

val stop : t -> unit
(** Stop accepting, drain connections (bounded by [drain_deadline_s]),
    join every background thread. Idempotent. *)

val wait : t -> unit
(** Block until a [shutdown] frame arrives, then finalize as {!stop}. *)

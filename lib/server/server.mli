(** The scenario-serving subsystem: a long-lived socket server that
    executes {!Ptg_sim.Scenario} requests on a persistent
    {!Ptg_util.Pool.Service} domain pool, fronted by an LRU result cache
    and an admission gate.

    Request lifecycle (one mutex guards cache + scheduler state):

    - canonicalize + hash the scenario ({!Ptg_sim.Scenario.hash});
    - cache hit → respond immediately ([cache:"hit"]);
    - an identical request already in flight → attach to it and wait
      ([cache:"coalesced"]) — K duplicate concurrent requests run the
      experiment exactly once;
    - otherwise, if in-flight computations have reached the configured
      high-water mark → immediate [overloaded] response (load shedding,
      never unbounded queueing);
    - otherwise submit the computation and wait ([cache:"miss"]).

    Because every scenario is deterministic given its canonical form, a
    cache hit is byte-identical to a re-run — caching is lossless.

    Connection I/O runs on one thread per accepted connection; the
    compute pool is [workers] domains. With an [obs] sink the server
    reports per-request latency histograms, a queue-depth gauge,
    served/shed/coalesced/error and cache hit/miss/eviction counters,
    and a [server_request] trace event per request. *)

type addr =
  | Unix_socket of string
  | Tcp of int  (** 127.0.0.1; port 0 binds an ephemeral port *)

type config = {
  addr : addr;
  workers : int;         (** compute pool size *)
  high_water : int;      (** max in-flight computations before shedding *)
  cache_capacity : int;  (** LRU entries *)
  obs : Ptg_obs.Sink.t option;
  handler : (Ptg_sim.Scenario.t -> string) option;
      (** compute override for tests/benchmarks; default
          [Ptg_sim.Scenario.run_to_string] *)
}

val default_config : addr -> config
(** workers {!Ptg_util.Pool.default_jobs}, high-water [2 * workers]
    (min 4), 64 cache entries, no obs, default handler. *)

type t

val start : config -> t
(** Bind, listen and begin accepting (raises [Invalid_argument] on a
    non-positive worker/high-water/cache size, [Unix.Unix_error] on bind
    failure). A stale Unix-domain socket file is replaced. *)

val listen_addr : t -> addr
(** The bound address — for [Tcp 0], the actual ephemeral port. *)

val stats : t -> (string * float) list
(** Scheduler/cache counters, sorted by key: cache entries/hits/misses/
    evictions, coalesced, errors, inflight, served, shed, plus the
    configured high_water/workers. Also what the [stats] op returns. *)

val stop : t -> unit
(** Stop accepting, wait for open connections to drain, shut the compute
    pool down. Idempotent; also the path a [shutdown] frame triggers. *)

val wait : t -> unit
(** Block until the server has fully stopped (a [shutdown] frame or a
    concurrent {!stop}), then release its resources. *)

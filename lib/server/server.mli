(** The scenario-serving subsystem: a long-lived socket server that
    executes {!Ptg_sim.Scenario} requests on a persistent
    {!Ptg_util.Pool.Service} domain pool, fronted by an LRU result cache
    and an admission gate.

    Request lifecycle (one mutex guards cache + scheduler state):

    - canonicalize + hash the scenario ({!Ptg_sim.Scenario.hash});
    - cache hit → respond immediately ([cache:"hit"]);
    - an identical request already in flight → attach to it and wait
      ([cache:"coalesced"]) — K duplicate concurrent requests run the
      experiment exactly once;
    - otherwise, if in-flight computations have reached the configured
      high-water mark → immediate [overloaded] response (load shedding,
      never unbounded queueing);
    - otherwise submit the computation and wait ([cache:"miss"]).

    Because every scenario is deterministic given its canonical form, a
    cache hit is byte-identical to a re-run — caching is lossless.

    Fault tolerance: a waiter whose computation has not finished within
    [deadline_s] gets a [timeout] frame instead of blocking forever, and
    its pending entry is unhooked so identical retries recompute rather
    than coalesce onto the straggler (whose in-flight slot stays charged
    until its worker actually finishes — a wedged worker still counts
    against [high_water]). With [slices > 0], a sliceable scenario
    ({!Ptg_sim.Checkpoint.sliceable}) whose deadline runs out is {e not}
    timed out: the worker persists its deepest checkpoint and yields,
    the scheduler requeues the remainder (up to [slices] times per
    request), and the waiter — kept alive by streamed [progress] frames
    on v2 — receives the final slice's result, byte-identical to an
    uninterrupted run. Connections carry socket read/write timeouts
    ([idle_timeout_s]) so idle or non-reading peers cannot hold handler
    threads; accepts beyond [max_conns] are shed at accept time with a
    best-effort [overloaded] frame; accept-loop resource errors
    (EMFILE/ENFILE) back off briefly instead of busy-looping; and
    shutdown force-closes stragglers after [drain_deadline_s]. {!Faults}
    can inject each failure for chaos tests.

    Protocol v2 ({!Protocol}): responses mirror the request's version,
    so v1 clients interoperate unchanged. v2 adds [hello] version
    negotiation, streamed [progress] frames for [stream:true] runs
    (emitted from the waiting connection's own thread as the
    computation reports chunk progress), and [cancel] — the cancelled
    waiter gets a terminal [cancelled] frame, and once an in-flight
    computation has no interested waiters left it stops at its next
    checkpoint boundary instead of running to completion. With
    [snapshot_dir] set, computations checkpoint periodically and
    identical re-requests warm-start from the deepest stored prefix —
    which also makes a forced drain lossless: interrupted runs resume
    where they stopped after a restart over the same store.

    Connection I/O runs on one thread per accepted connection; the
    compute pool is [workers] domains. With an [obs] sink the server
    reports per-request latency histograms, queue-depth and
    drain-duration gauges, served/shed/coalesced/error/timeout,
    connection-shed/idle-closed/accept-error, fault-injection and
    pool-dropped-exception counters, cache hit/miss/eviction counters,
    and a [server_request] trace event per request. *)

type addr =
  | Unix_socket of string
  | Tcp of int  (** 127.0.0.1; port 0 binds an ephemeral port *)

type config = {
  addr : addr;
  workers : int;         (** compute pool size *)
  high_water : int;      (** max in-flight computations before shedding *)
  cache_capacity : int;  (** LRU entries *)
  cache_bytes : int option;
      (** optional LRU byte budget over encoded entry sizes (see
          {!Lru.weight}); [None] bounds by entry count alone *)
  deadline_s : float;
      (** per-request compute budget: a waiter past it gets
          [Protocol.Timeout] (must be [> 0]; expiry is noticed within
          ~50 ms of the deadline) *)
  slices : int;
      (** max deadline-slice requeues per request ([0] disables): each
          expiry of [deadline_s] on a sliceable scenario checkpoints,
          requeues the remainder and grants one more window instead of
          timing out *)
  idle_timeout_s : float;
      (** socket read/write timeout per connection; [0.] disables *)
  max_conns : int;       (** concurrent connections before accept-time shed *)
  drain_deadline_s : float;
      (** shutdown drain budget before stragglers are force-closed;
          [0.] force-closes immediately *)
  snapshot_dir : string option;
      (** warm-start snapshot store for the default handler: scenario
          computations checkpoint their position here and resume from
          the deepest stored prefix of an identical later request (see
          {!Ptg_sim.Checkpoint.run_scenario}) *)
  snapshot_every : int option;
      (** checkpoint cadence (scenario units) for [snapshot_dir] *)
  obs : Ptg_obs.Sink.t option;
  handler : (Ptg_sim.Scenario.t -> string) option;
      (** compute override for tests/benchmarks; default
          [Ptg_sim.Scenario.run_to_string] (via
          {!Ptg_sim.Checkpoint.run_scenario} when [snapshot_dir] is
          set). Overrides ignore snapshotting, progress and early
          stop. *)
  handler_ext :
    (progress:(done_count:int -> total:int -> unit) ->
    should_stop:(unit -> bool) ->
    Ptg_sim.Scenario.t ->
    Ptg_sim.Checkpoint.served)
    option;
      (** full-control compute override (takes precedence over
          [handler]): receives the progress callback that feeds
          streamed [progress] frames and the [should_stop] poll that
          turns true once every waiter has cancelled or expired (or the
          server is aborting). Returning [{text = None; _}] means the
          computation stopped early — nothing is cached and no error is
          counted. *)
  faults : Faults.t;     (** chaos injection slot; unarmed by default *)
}

val default_config : addr -> config
(** workers {!Ptg_util.Pool.default_jobs}, high-water [2 * workers]
    (min 4), 64 cache entries (no byte budget), 30 s deadline, no
    slicing, 60 s idle timeout, 256 connections, 5 s drain deadline,
    no snapshot store, no obs, default handler, unarmed faults. *)

type t

val start : config -> t
(** Bind, listen and begin accepting (raises [Invalid_argument] on a
    non-positive worker/high-water/cache size, [Unix.Unix_error] on bind
    failure). A stale Unix-domain socket file is replaced. *)

val listen_addr : t -> addr
(** The bound address — for [Tcp 0], the actual ephemeral port. *)

val stats : t -> (string * float) list
(** Scheduler/cache/failure counters, sorted by key: accept_errors,
    cache bytes/entries/hits/misses/evictions, cancelled, coalesced,
    conn_shed, conns, errors, faults_injected, idle_closed, inflight,
    orphaned_stops, pending, pool_dropped, served, shed, sliced,
    timeouts, warm_starts, plus the configured
    high_water/max_conns/workers. Also what the [stats] op returns. *)

val stop : t -> unit
(** Stop accepting, drain open connections (force-closing stragglers
    after [drain_deadline_s]), shut the compute pool down. Idempotent;
    also the path a [shutdown] frame triggers. Note: a genuinely wedged
    worker domain cannot be killed — shutdown waits for it, so injected
    wedges should use finite delays. *)

val wait : t -> unit
(** Block until the server has fully stopped (a [shutdown] frame or a
    concurrent {!stop}), then release its resources. *)

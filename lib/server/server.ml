module Scenario = Ptg_sim.Scenario
module Registry = Ptg_obs.Registry
module Trace = Ptg_obs.Trace

type addr = Unix_socket of string | Tcp of int

type config = {
  addr : addr;
  workers : int;
  high_water : int;
  cache_capacity : int;
  obs : Ptg_obs.Sink.t option;
  handler : (Scenario.t -> string) option;
}

let default_config addr =
  let workers = Ptg_util.Pool.default_jobs () in
  {
    addr;
    workers;
    high_water = max 4 (2 * workers);
    cache_capacity = 64;
    obs = None;
    handler = None;
  }

(* Metric handles are resolved once at startup (the registry contract);
   every update below happens under the server mutex, which also makes
   the shared sink safe across connection threads and worker domains. *)
type obs_metrics = {
  c_served : Registry.counter;
  c_shed : Registry.counter;
  c_coalesced : Registry.counter;
  c_errors : Registry.counter;
  c_hits : Registry.counter;
  c_misses : Registry.counter;
  c_evictions : Registry.counter;
  g_queue : Registry.gauge;
  h_latency : Registry.histogram;
  trace : Trace.t;
}

let make_obs sink =
  let reg = Ptg_obs.Sink.registry sink in
  {
    c_served = Registry.counter reg "server_served_total";
    c_shed = Registry.counter reg "server_shed_total";
    c_coalesced = Registry.counter reg "server_coalesced_total";
    c_errors = Registry.counter reg "server_errors_total";
    c_hits = Registry.counter reg "server_cache_hits_total";
    c_misses = Registry.counter reg "server_cache_misses_total";
    c_evictions = Registry.counter reg "server_cache_evictions_total";
    g_queue = Registry.gauge reg "server_queue_depth";
    h_latency =
      Registry.histogram reg
        ~buckets:[| 100.; 1_000.; 10_000.; 100_000.; 1_000_000.; 10_000_000. |]
        "server_request_latency_us";
    trace = Ptg_obs.Sink.trace sink;
  }

type pending = { mutable outcome : (string, string) result option }

type t = {
  config : config;
  handler : Scenario.t -> string;
  listen_fd : Unix.file_descr;
  bound : addr;
  pipe_r : Unix.file_descr;  (* self-pipe: wakes the accept loop on stop *)
  pipe_w : Unix.file_descr;
  service : Ptg_util.Pool.Service.t;
  mutex : Mutex.t;
  done_cond : Condition.t;    (* a pending computation finished *)
  drained : Condition.t;      (* connection-count / stopping transitions *)
  cache : Lru.t;
  pending_tbl : (string, pending) Hashtbl.t;
  conn_fds : (Unix.file_descr, unit) Hashtbl.t;
  mutable inflight : int;
  mutable conns : int;
  mutable stopping : bool;
  mutable finalized : bool;
  mutable accept_thread : Thread.t option;
  mutable served : int;
  mutable shed : int;
  mutable coalesced : int;
  mutable errors : int;
  mutable last_evictions : int;
  obs_m : obs_metrics option;
}

let listen_addr t = t.bound

(* ------------------------------------------------------------------ *)
(* Stats (also the [stats] op payload); keys sorted alphabetically.    *)
(* ------------------------------------------------------------------ *)

let stats_locked t =
  [
    ("cache_entries", float_of_int (Lru.length t.cache));
    ("cache_evictions", float_of_int (Lru.evictions t.cache));
    ("cache_hits", float_of_int (Lru.hits t.cache));
    ("cache_misses", float_of_int (Lru.misses t.cache));
    ("coalesced", float_of_int t.coalesced);
    ("errors", float_of_int t.errors);
    ("high_water", float_of_int t.config.high_water);
    ("inflight", float_of_int t.inflight);
    ("served", float_of_int t.served);
    ("shed", float_of_int t.shed);
    ("workers", float_of_int t.config.workers);
  ]

let stats t =
  Mutex.lock t.mutex;
  let rows = stats_locked t in
  Mutex.unlock t.mutex;
  rows

(* ------------------------------------------------------------------ *)
(* Request scheduling                                                  *)
(* ------------------------------------------------------------------ *)

let set_queue_gauge t =
  match t.obs_m with
  | Some m -> Registry.set_gauge m.g_queue (float_of_int t.inflight)
  | None -> ()

let obs_incr t f = match t.obs_m with Some m -> Registry.incr (f m) | None -> ()

let sync_evictions_locked t =
  match t.obs_m with
  | None -> ()
  | Some m ->
      let now = Lru.evictions t.cache in
      Registry.add m.c_evictions (now - t.last_evictions);
      t.last_evictions <- now

(* Called with the mutex held; releases it while waiting. *)
let rec await_locked t p =
  match p.outcome with
  | Some r -> r
  | None ->
      Condition.wait t.done_cond t.mutex;
      await_locked t p

let submit_job t hash scenario p =
  Ptg_util.Pool.Service.submit t.service (fun () ->
      let outcome =
        try Ok (t.handler scenario)
        with e -> Error (Printexc.to_string e)
      in
      Mutex.lock t.mutex;
      (match outcome with
      | Ok rendered ->
          Lru.put t.cache hash rendered;
          sync_evictions_locked t
      | Error _ -> t.errors <- t.errors + 1);
      (match (outcome, t.obs_m) with
      | Error _, Some m -> Registry.incr m.c_errors
      | _ -> ());
      p.outcome <- Some outcome;
      Hashtbl.remove t.pending_tbl hash;
      t.inflight <- t.inflight - 1;
      set_queue_gauge t;
      Condition.broadcast t.done_cond;
      Mutex.unlock t.mutex)

(* The response for one [run] frame. Holds the mutex only around
   scheduler-state transitions (and while blocked in a condvar wait). *)
let handle_run t scenario =
  let hash = Scenario.hash scenario in
  let t0 = Unix.gettimeofday () in
  Mutex.lock t.mutex;
  let disposition, outcome =
    match Lru.find t.cache hash with
    | Some rendered ->
        obs_incr t (fun m -> m.c_hits);
        (Some Protocol.Hit, Ok rendered)
    | None -> (
        obs_incr t (fun m -> m.c_misses);
        match Hashtbl.find_opt t.pending_tbl hash with
        | Some p ->
            t.coalesced <- t.coalesced + 1;
            obs_incr t (fun m -> m.c_coalesced);
            (Some Protocol.Coalesced, await_locked t p)
        | None ->
            if t.inflight >= t.config.high_water then begin
              t.shed <- t.shed + 1;
              obs_incr t (fun m -> m.c_shed);
              (None, Error "overloaded")
            end
            else begin
              let p = { outcome = None } in
              Hashtbl.replace t.pending_tbl hash p;
              t.inflight <- t.inflight + 1;
              set_queue_gauge t;
              submit_job t hash scenario p;
              (Some Protocol.Miss, await_locked t p)
            end)
  in
  let response =
    match (disposition, outcome) with
    | Some cache, Ok result ->
        t.served <- t.served + 1;
        obs_incr t (fun m -> m.c_served);
        Protocol.Result { cache; hash; result }
    | None, _ -> Protocol.Overloaded
    | Some _, Error msg -> Protocol.Error_reply msg
  in
  (match t.obs_m with
  | None -> ()
  | Some m ->
      Registry.observe m.h_latency (1e6 *. (Unix.gettimeofday () -. t0));
      let status, cache =
        match response with
        | Protocol.Result { cache; _ } ->
            ("ok", Protocol.cache_disposition_name cache)
        | Protocol.Overloaded -> ("overloaded", "")
        | _ -> ("error", "")
      in
      Trace.record m.trace
        (Trace.Server_request { hash = Scenario.hash64 scenario; status; cache }));
  Mutex.unlock t.mutex;
  response

(* ------------------------------------------------------------------ *)
(* Connection handling                                                 *)
(* ------------------------------------------------------------------ *)

let record_protocol_error t =
  Mutex.lock t.mutex;
  t.errors <- t.errors + 1;
  obs_incr t (fun m -> m.c_errors);
  (match t.obs_m with
  | Some m ->
      Trace.record m.trace
        (Trace.Server_request { hash = 0L; status = "error"; cache = "" })
  | None -> ());
  Mutex.unlock t.mutex

let initiate_stop t =
  Mutex.lock t.mutex;
  if not t.stopping then begin
    t.stopping <- true;
    (try ignore (Unix.write t.pipe_w (Bytes.make 1 'x') 0 1) with _ -> ());
    Condition.broadcast t.drained
  end;
  Mutex.unlock t.mutex

let handle_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let send frame =
    output_string oc frame;
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line -> (
        let continue =
          match Protocol.decode_request line with
          | Error msg ->
              record_protocol_error t;
              send (Protocol.encode_response (Protocol.Error_reply msg));
              true
          | Ok (id, req) -> (
              match req with
              | Protocol.Ping ->
                  send (Protocol.encode_response ?id Protocol.Pong);
                  true
              | Protocol.Stats ->
                  send
                    (Protocol.encode_response ?id (Protocol.Stats_reply (stats t)));
                  true
              | Protocol.Shutdown ->
                  initiate_stop t;
                  send (Protocol.encode_response ?id Protocol.Pong);
                  false
              | Protocol.Run scenario ->
                  send (Protocol.encode_response ?id (handle_run t scenario));
                  true)
        in
        match continue with
        | true -> loop ()
        | false -> ()
        | exception Sys_error _ -> ())
  in
  (try loop () with _ -> ());
  Mutex.lock t.mutex;
  Hashtbl.remove t.conn_fds fd;
  t.conns <- t.conns - 1;
  Condition.broadcast t.drained;
  Mutex.unlock t.mutex;
  (* Flushes and closes the shared fd; the input channel must not be
     closed too (double close could hit a reused descriptor). *)
  close_out_noerr oc

let accept_loop t =
  let rec loop () =
    match Unix.select [ t.listen_fd; t.pipe_r ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | readable, _, _ ->
        if List.mem t.pipe_r readable then ()
        else begin
          (match Unix.accept ~cloexec:true t.listen_fd with
          | exception Unix.Unix_error _ -> ()
          | fd, _ ->
              Mutex.lock t.mutex;
              t.conns <- t.conns + 1;
              Hashtbl.replace t.conn_fds fd ();
              Mutex.unlock t.mutex;
              ignore (Thread.create (handle_conn t) fd));
          loop ()
        end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let start config =
  if config.workers < 1 then invalid_arg "Server.start: workers";
  if config.high_water < 1 then invalid_arg "Server.start: high_water";
  if config.cache_capacity < 1 then invalid_arg "Server.start: cache_capacity";
  (* A peer hanging up mid-response must surface as EPIPE, not kill the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd, bound =
    match config.addr with
    | Unix_socket path ->
        if Sys.file_exists path then Sys.remove path;
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 64;
        (fd, Unix_socket path)
    | Tcp port ->
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.listen fd 64;
        let actual =
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> port
        in
        (fd, Tcp actual)
  in
  let pipe_r, pipe_w = Unix.pipe ~cloexec:true () in
  let t =
    {
      config;
      handler =
        (match config.handler with
        | Some h -> h
        | None -> fun scenario -> Scenario.run_to_string scenario);
      listen_fd;
      bound;
      pipe_r;
      pipe_w;
      service = Ptg_util.Pool.Service.create ~workers:config.workers ();
      mutex = Mutex.create ();
      done_cond = Condition.create ();
      drained = Condition.create ();
      cache = Lru.create ~capacity:config.cache_capacity;
      pending_tbl = Hashtbl.create 64;
      conn_fds = Hashtbl.create 64;
      inflight = 0;
      conns = 0;
      stopping = false;
      finalized = false;
      accept_thread = None;
      served = 0;
      shed = 0;
      coalesced = 0;
      errors = 0;
      last_evictions = 0;
      obs_m = Option.map make_obs config.obs;
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let finalize t =
  (* Join the accept loop (woken by the self-pipe byte). *)
  Mutex.lock t.mutex;
  let acceptor = t.accept_thread in
  t.accept_thread <- None;
  Mutex.unlock t.mutex;
  Option.iter Thread.join acceptor;
  (* Nudge idle connections: half-close their read side so blocked
     [input_line]s see EOF. Done under the mutex so a connection thread
     cannot concurrently remove-and-close the same descriptor. *)
  Mutex.lock t.mutex;
  Hashtbl.iter
    (fun fd () -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with _ -> ())
    t.conn_fds;
  while t.conns > 0 do
    Condition.wait t.drained t.mutex
  done;
  let first = not t.finalized in
  t.finalized <- true;
  Mutex.unlock t.mutex;
  if first then begin
    Ptg_util.Pool.Service.shutdown t.service;
    (try Unix.close t.listen_fd with _ -> ());
    (try Unix.close t.pipe_r with _ -> ());
    (try Unix.close t.pipe_w with _ -> ());
    match t.bound with
    | Unix_socket path -> ( try Sys.remove path with _ -> ())
    | Tcp _ -> ()
  end

let stop t =
  initiate_stop t;
  finalize t

let wait t =
  Mutex.lock t.mutex;
  while not t.stopping do
    Condition.wait t.drained t.mutex
  done;
  Mutex.unlock t.mutex;
  finalize t

module Scenario = Ptg_sim.Scenario
module Checkpoint = Ptg_sim.Checkpoint
module Registry = Ptg_obs.Registry
module Trace = Ptg_obs.Trace
module Clock = Ptg_util.Clock

type addr = Unix_socket of string | Tcp of int

type config = {
  addr : addr;
  workers : int;
  high_water : int;
  cache_capacity : int;
  cache_bytes : int option;
  deadline_s : float;
  slices : int;
  idle_timeout_s : float;
  max_conns : int;
  drain_deadline_s : float;
  snapshot_dir : string option;
  snapshot_every : int option;
  obs : Ptg_obs.Sink.t option;
  handler : (Scenario.t -> string) option;
  handler_ext :
    (progress:(done_count:int -> total:int -> unit) ->
    should_stop:(unit -> bool) ->
    Scenario.t ->
    Checkpoint.served)
    option;
  faults : Faults.t;
}

let default_config addr =
  let workers = Ptg_util.Pool.default_jobs () in
  {
    addr;
    workers;
    high_water = max 4 (2 * workers);
    cache_capacity = 64;
    cache_bytes = None;
    deadline_s = 30.;
    slices = 0;
    idle_timeout_s = 60.;
    max_conns = 256;
    drain_deadline_s = 5.;
    snapshot_dir = None;
    snapshot_every = None;
    obs = None;
    handler = None;
    handler_ext = None;
    faults = Faults.create ();
  }

(* Metric handles are resolved once at startup (the registry contract);
   every update below happens under the server mutex, which also makes
   the shared sink safe across connection threads and worker domains. *)
type obs_metrics = {
  c_served : Registry.counter;
  c_shed : Registry.counter;
  c_coalesced : Registry.counter;
  c_errors : Registry.counter;
  c_hits : Registry.counter;
  c_misses : Registry.counter;
  c_evictions : Registry.counter;
  c_timeouts : Registry.counter;
  c_cancelled : Registry.counter;
  c_warm_starts : Registry.counter;
  c_sliced : Registry.counter;
  c_orphaned : Registry.counter;
  c_conn_shed : Registry.counter;
  c_accept_errors : Registry.counter;
  c_idle_closed : Registry.counter;
  c_faults : Registry.counter;
  c_pool_dropped : Registry.counter;
  g_queue : Registry.gauge;
  g_drain : Registry.gauge;
  h_latency : Registry.histogram;
  trace : Trace.t;
}

let make_obs sink =
  let reg = Ptg_obs.Sink.registry sink in
  {
    c_served = Registry.counter reg "server_served_total";
    c_shed = Registry.counter reg "server_shed_total";
    c_coalesced = Registry.counter reg "server_coalesced_total";
    c_errors = Registry.counter reg "server_errors_total";
    c_hits = Registry.counter reg "server_cache_hits_total";
    c_misses = Registry.counter reg "server_cache_misses_total";
    c_evictions = Registry.counter reg "server_cache_evictions_total";
    c_timeouts = Registry.counter reg "server_timeouts_total";
    c_cancelled = Registry.counter reg "server_cancelled_total";
    c_warm_starts = Registry.counter reg "server_warm_starts_total";
    c_sliced = Registry.counter reg "server_sliced_total";
    c_orphaned = Registry.counter reg "server_orphaned_stops_total";
    c_conn_shed = Registry.counter reg "server_conns_shed_total";
    c_accept_errors = Registry.counter reg "server_accept_errors_total";
    c_idle_closed = Registry.counter reg "server_conns_idle_closed_total";
    c_faults = Registry.counter reg "server_faults_injected_total";
    c_pool_dropped = Registry.counter reg "server_pool_dropped_exceptions_total";
    g_queue = Registry.gauge reg "server_queue_depth";
    g_drain = Registry.gauge reg "server_drain_duration_us";
    h_latency =
      Registry.histogram reg
        ~buckets:[| 100.; 1_000.; 10_000.; 100_000.; 1_000_000.; 10_000_000. |]
        "server_request_latency_us";
    trace = Ptg_obs.Sink.trace sink;
  }

(* One in-flight computation. [p_interest] counts the waiters still
   wanting the result; the worker's [should_stop] turns true when it
   reaches zero (every waiter cancelled or expired), which lets a
   checkpointed run stop at its next chunk boundary instead of burning
   the worker to completion for nobody. [p_done]/[p_total] carry the
   computation's progress for streaming waiters.

   [p_yield] is the deadline-slice handshake: a waiter whose compute
   deadline ran out (with slice budget left) arms it instead of
   expiring, the worker sees it through [should_stop], persists its
   deepest checkpoint and returns [Stopped], and the scheduler requeues
   the remainder — the fresh job warm-starts from that checkpoint.
   [p_slices] counts requeues consumed, bounded by [config.slices]. *)
type pending = {
  mutable outcome : (string, string) result option;
  mutable p_done : int;
  mutable p_total : int;
  mutable p_interest : int;
  mutable p_yield : bool;
  mutable p_slices : int;
}

(* One waiter attached to a pending computation; registered in
   [cancel_tbl] under its request id when cancellable (v2 + id). *)
type waiter = {
  w_hash : string;
  w_pending : pending;
  mutable w_cancelled : bool;
  mutable w_detached : bool;  (* interest already released *)
}

type t = {
  config : config;
  handler :
    progress:(done_count:int -> total:int -> unit) ->
    should_stop:(unit -> bool) ->
    Scenario.t ->
    Checkpoint.served;
  listen_fd : Unix.file_descr;
  bound : addr;
  pipe_r : Unix.file_descr;  (* self-pipe: wakes the accept loop on stop *)
  pipe_w : Unix.file_descr;
  service : Ptg_util.Pool.Service.t;
  mutex : Mutex.t;
  done_cond : Condition.t;    (* a pending computation finished *)
  drained : Condition.t;      (* connection-count / stopping transitions *)
  cache : Lru.t;
  pending_tbl : (string, pending) Hashtbl.t;
  cancel_tbl : (string, waiter) Hashtbl.t;
  conn_fds : (Unix.file_descr, unit) Hashtbl.t;
  mutable inflight : int;
  mutable conns : int;
  mutable stopping : bool;
  mutable aborting : bool;    (* forced drain: expire every waiter now *)
  mutable finalized : bool;
  mutable ticker_stop : bool;
  mutable accept_thread : Thread.t option;
  mutable ticker_thread : Thread.t option;
  mutable served : int;
  mutable shed : int;
  mutable coalesced : int;
  mutable errors : int;
  mutable timeouts : int;
  mutable cancelled : int;
  mutable warm_starts : int;
  mutable sliced : int;
  mutable orphaned_stops : int;
  mutable conn_shed : int;
  mutable accept_errors : int;
  mutable idle_closed : int;
  mutable pool_dropped : int;
  mutable last_evictions : int;
  obs_m : obs_metrics option;
}

let listen_addr t = t.bound

(* ------------------------------------------------------------------ *)
(* Stats (also the [stats] op payload); keys sorted alphabetically.    *)
(* ------------------------------------------------------------------ *)

let stats_locked t =
  [
    ("accept_errors", float_of_int t.accept_errors);
    ("cache_bytes", float_of_int (Lru.bytes t.cache));
    ("cache_entries", float_of_int (Lru.length t.cache));
    ("cache_evictions", float_of_int (Lru.evictions t.cache));
    ("cache_hits", float_of_int (Lru.hits t.cache));
    ("cache_misses", float_of_int (Lru.misses t.cache));
    ("cancelled", float_of_int t.cancelled);
    ("coalesced", float_of_int t.coalesced);
    ("conn_shed", float_of_int t.conn_shed);
    ("conns", float_of_int t.conns);
    ("errors", float_of_int t.errors);
    ("faults_injected", float_of_int (Faults.fired t.config.faults));
    ("high_water", float_of_int t.config.high_water);
    ("idle_closed", float_of_int t.idle_closed);
    ("inflight", float_of_int t.inflight);
    ("max_conns", float_of_int t.config.max_conns);
    ("orphaned_stops", float_of_int t.orphaned_stops);
    ("pending", float_of_int (Hashtbl.length t.pending_tbl));
    ("pool_dropped", float_of_int t.pool_dropped);
    ("served", float_of_int t.served);
    ("shed", float_of_int t.shed);
    ("sliced", float_of_int t.sliced);
    ("timeouts", float_of_int t.timeouts);
    ("warm_starts", float_of_int t.warm_starts);
    ("workers", float_of_int t.config.workers);
  ]

let stats t =
  Mutex.lock t.mutex;
  let rows = stats_locked t in
  Mutex.unlock t.mutex;
  rows

(* ------------------------------------------------------------------ *)
(* Request scheduling                                                  *)
(* ------------------------------------------------------------------ *)

let set_queue_gauge t =
  match t.obs_m with
  | Some m -> Registry.set_gauge m.g_queue (float_of_int t.inflight)
  | None -> ()

let obs_incr t f = match t.obs_m with Some m -> Registry.incr (f m) | None -> ()

let sync_evictions_locked t =
  match t.obs_m with
  | None -> ()
  | Some m ->
      let now = Lru.evictions t.cache in
      Registry.add m.c_evictions (now - t.last_evictions);
      t.last_evictions <- now

(* A consumed fault firing, counted under the mutex. *)
let record_fault t =
  Mutex.lock t.mutex;
  obs_incr t (fun m -> m.c_faults);
  Mutex.unlock t.mutex

let take_fault t f =
  match Faults.take_matching t.config.faults f with
  | Some _ as hit ->
      record_fault t;
      hit
  | None -> None

type wait_outcome =
  | Done of (string, string) result
  | Expired
  | Was_cancelled
  | Conn_lost of exn  (* a progress write failed: the peer is gone *)

(* Called with the mutex held; releases it while waiting and while
   writing progress frames (socket writes can block). Wakeups come from
   job completion/progress broadcasts and from the ticker thread, which
   bounds how late a deadline expiry is noticed.

   [sliceable] requests whose deadline runs out with slice budget left
   do not expire: the waiter arms [p_yield] (the worker checkpoints and
   the scheduler requeues the remainder) and grants itself one more
   deadline window per slice. Once the pending entry has consumed
   [config.slices] requeues the next expiry is final. *)
let await_locked t p w ~deadline ~sliceable ~on_progress =
  let deadline = ref deadline in
  let last = ref (0, 0) in
  let rec go () =
    let fresh_progress =
      match on_progress with
      | Some _
        when p.outcome = None && p.p_total > 0 && (p.p_done, p.p_total) <> !last
        ->
          Some (p.p_done, p.p_total)
      | _ -> None
    in
    match (fresh_progress, on_progress) with
    | Some ((done_count, total) as snap), Some f -> (
        last := snap;
        Mutex.unlock t.mutex;
        match f ~done_count ~total with
        | () ->
            Mutex.lock t.mutex;
            go ()
        | exception e ->
            Mutex.lock t.mutex;
            Conn_lost e)
    | _ -> (
        match p.outcome with
        | Some r -> Done r
        | None when w.w_cancelled -> Was_cancelled
        | None ->
            if t.aborting then Expired
            else if Clock.now_ns () >= !deadline then
              if sliceable && t.config.slices > 0 && p.p_slices < t.config.slices
              then begin
                p.p_yield <- true;
                deadline := Clock.ns_after (Clock.now_ns ()) t.config.deadline_s;
                Condition.wait t.done_cond t.mutex;
                go ()
              end
              else Expired
            else begin
              Condition.wait t.done_cond t.mutex;
              go ()
            end)
  in
  go ()

(* Remove [hash]'s pending entry only if it is still [p]: a timed-out
   waiter may already have unhooked it and a newer identical request
   re-registered — that newer entry must survive. *)
let unhook_locked t hash p =
  match Hashtbl.find_opt t.pending_tbl hash with
  | Some q when q == p -> Hashtbl.remove t.pending_tbl hash
  | _ -> ()

type job_result = Finished of string * int option | Stopped | Failed of string

let rec submit_job t hash scenario p =
  Ptg_util.Pool.Service.submit t.service (fun () ->
      (match
         Faults.take_matching t.config.faults (function
           | Faults.Wedge_worker d -> Some d
           | _ -> None)
       with
      | Some d ->
          record_fault t;
          Thread.delay d
      | None -> ());
      let progress ~done_count ~total =
        Mutex.lock t.mutex;
        p.p_done <- done_count;
        p.p_total <- total;
        Condition.broadcast t.done_cond;
        Mutex.unlock t.mutex
      in
      let should_stop () =
        Mutex.lock t.mutex;
        let s = t.aborting || p.p_yield || p.p_interest <= 0 in
        Mutex.unlock t.mutex;
        s
      in
      let result =
        try
          let served = t.handler ~progress ~should_stop scenario in
          match served.Checkpoint.text with
          | Some rendered -> Finished (rendered, served.Checkpoint.resumed_from)
          | None -> Stopped
        with e -> Failed (Printexc.to_string e)
      in
      Mutex.lock t.mutex;
      let requeued =
        match result with
        | Stopped when p.p_yield && p.p_interest > 0 && not t.aborting ->
            (* Deadline slice: the worker checkpointed and yielded while
               waiters remain. Requeue the remainder — the fresh job
               warm-starts from the checkpoint just persisted. The
               in-flight slot stays charged; the pending entry stays
               hooked so identical requests keep coalescing. *)
            p.p_yield <- false;
            p.p_slices <- p.p_slices + 1;
            t.sliced <- t.sliced + 1;
            obs_incr t (fun m -> m.c_sliced);
            submit_job t hash scenario p;
            true
        | _ -> false
      in
      if not requeued then begin
        (match result with
        | Finished (rendered, resumed_from) ->
            Lru.put t.cache hash rendered;
            sync_evictions_locked t;
            (match resumed_from with
            | Some _ ->
                t.warm_starts <- t.warm_starts + 1;
                obs_incr t (fun m -> m.c_warm_starts)
            | None -> ());
            p.outcome <- Some (Ok rendered)
        | Stopped ->
            (* Abandoned (cancelled, expired or draining) and stopped at
               a checkpoint boundary: nothing to cache, nobody to count
               an error for — the store holds the prefix for a retry. An
               orphan (zero waiters, no requeue pending, not draining)
               is counted: it proves abandoned compute stops early
               instead of burning the worker to completion. *)
            if p.p_interest <= 0 && not t.aborting then begin
              t.orphaned_stops <- t.orphaned_stops + 1;
              obs_incr t (fun m -> m.c_orphaned)
            end;
            p.outcome <- Some (Error "cancelled")
        | Failed msg ->
            t.errors <- t.errors + 1;
            obs_incr t (fun m -> m.c_errors);
            p.outcome <- Some (Error msg));
        unhook_locked t hash p;
        t.inflight <- t.inflight - 1;
        set_queue_gauge t
      end;
      Condition.broadcast t.done_cond;
      Mutex.unlock t.mutex)

(* The response for one [run] frame. Holds the mutex only around
   scheduler-state transitions (and while blocked in a condvar wait).
   [cancel_id] registers this waiter for [cancel] frames; [on_progress]
   streams progress frames to the peer between wakeups. *)
let handle_run t ?on_progress ?cancel_id scenario =
  let hash = Scenario.hash scenario in
  let sliceable = Checkpoint.sliceable scenario in
  let t0 = Clock.now_ns () in
  let deadline = Clock.ns_after t0 t.config.deadline_s in
  Mutex.lock t.mutex;
  let attach_locked p =
    p.p_interest <- p.p_interest + 1;
    let w =
      { w_hash = hash; w_pending = p; w_cancelled = false; w_detached = false }
    in
    Option.iter (fun id -> Hashtbl.replace t.cancel_tbl id w) cancel_id;
    w
  in
  let detach_locked w =
    Option.iter
      (fun id ->
        match Hashtbl.find_opt t.cancel_tbl id with
        | Some w' when w' == w -> Hashtbl.remove t.cancel_tbl id
        | _ -> ())
      cancel_id;
    if not w.w_detached then begin
      w.w_detached <- true;
      w.w_pending.p_interest <- w.w_pending.p_interest - 1
    end
  in
  let disposition, outcome =
    match Lru.find t.cache hash with
    | Some rendered ->
        obs_incr t (fun m -> m.c_hits);
        (Some Protocol.Hit, Done (Ok rendered))
    | None -> (
        obs_incr t (fun m -> m.c_misses);
        match Hashtbl.find_opt t.pending_tbl hash with
        | Some p ->
            t.coalesced <- t.coalesced + 1;
            obs_incr t (fun m -> m.c_coalesced);
            let w = attach_locked p in
            let r = await_locked t p w ~deadline ~sliceable ~on_progress in
            detach_locked w;
            (match r with
            | Expired | Conn_lost _ -> unhook_locked t hash p
            | _ -> ());
            (Some Protocol.Coalesced, r)
        | None ->
            if t.inflight >= t.config.high_water then begin
              t.shed <- t.shed + 1;
              obs_incr t (fun m -> m.c_shed);
              (None, Done (Error "overloaded"))
            end
            else begin
              let p =
                {
                  outcome = None;
                  p_done = 0;
                  p_total = 0;
                  p_interest = 0;
                  p_yield = false;
                  p_slices = 0;
                }
              in
              let w = attach_locked p in
              Hashtbl.replace t.pending_tbl hash p;
              t.inflight <- t.inflight + 1;
              set_queue_gauge t;
              submit_job t hash scenario p;
              let r = await_locked t p w ~deadline ~sliceable ~on_progress in
              detach_locked w;
              (* On expiry, unhook so a later identical request
                 recomputes instead of coalescing onto the zombie. The
                 in-flight slot stays charged: the worker really is
                 still busy, and it releases the slot itself (stopping
                 early at its next checkpoint boundary now that no
                 interest remains). *)
              (match r with
              | Expired | Conn_lost _ -> unhook_locked t hash p
              | _ -> ());
              (Some Protocol.Miss, r)
            end)
  in
  match outcome with
  | Conn_lost e ->
      (* The peer vanished mid-stream: interest is released and the
         pending entry unhooked above; let the connection unwind. *)
      Mutex.unlock t.mutex;
      raise e
  | _ ->
      let response =
        match (disposition, outcome) with
        | Some cache, Done (Ok result) ->
            t.served <- t.served + 1;
            obs_incr t (fun m -> m.c_served);
            Protocol.Result { cache; hash; result }
        | None, _ -> Protocol.Overloaded
        | Some _, Done (Error msg) -> Protocol.Error_reply msg
        | Some _, Was_cancelled ->
            t.cancelled <- t.cancelled + 1;
            obs_incr t (fun m -> m.c_cancelled);
            Protocol.Cancelled
        | Some _, (Expired | Conn_lost _) ->
            t.timeouts <- t.timeouts + 1;
            obs_incr t (fun m -> m.c_timeouts);
            Protocol.Timeout
      in
      (match t.obs_m with
      | None -> ()
      | Some m ->
          Registry.observe m.h_latency (Clock.elapsed_us t0);
          let status, cache =
            match response with
            | Protocol.Result { cache; _ } ->
                ("ok", Protocol.cache_disposition_name cache)
            | Protocol.Overloaded -> ("overloaded", "")
            | Protocol.Timeout -> ("timeout", "")
            | Protocol.Cancelled -> ("cancelled", "")
            | _ -> ("error", "")
          in
          Trace.record m.trace
            (Trace.Server_request { hash = Scenario.hash64 scenario; status; cache }));
      Mutex.unlock t.mutex;
      response

(* A [cancel] frame: flip the target waiter, release its interest, and
   wake everyone. Acked with the generic ok frame; an id naming nothing
   in flight (never registered, already finished, or v1) is an error. *)
let handle_cancel t target =
  Mutex.lock t.mutex;
  let response =
    match Hashtbl.find_opt t.cancel_tbl target with
    | None ->
        Protocol.Error_reply
          (Printf.sprintf "cancel: no in-flight request with id \"%s\"" target)
    | Some w ->
        Hashtbl.remove t.cancel_tbl target;
        w.w_cancelled <- true;
        if not w.w_detached then begin
          w.w_detached <- true;
          w.w_pending.p_interest <- w.w_pending.p_interest - 1
        end;
        (* Nobody is waiting any more: unhook so identical retries
           recompute (warm-starting from whatever was checkpointed)
           rather than coalescing onto the dying computation. *)
        if w.w_pending.p_interest <= 0 then unhook_locked t w.w_hash w.w_pending;
        Condition.broadcast t.done_cond;
        Protocol.Pong
  in
  Mutex.unlock t.mutex;
  response

(* ------------------------------------------------------------------ *)
(* Connection handling                                                 *)
(* ------------------------------------------------------------------ *)

let record_protocol_error t =
  Mutex.lock t.mutex;
  t.errors <- t.errors + 1;
  obs_incr t (fun m -> m.c_errors);
  (match t.obs_m with
  | Some m ->
      Trace.record m.trace
        (Trace.Server_request { hash = 0L; status = "error"; cache = "" })
  | None -> ());
  Mutex.unlock t.mutex

let record_idle_close t =
  Mutex.lock t.mutex;
  t.idle_closed <- t.idle_closed + 1;
  obs_incr t (fun m -> m.c_idle_closed);
  Mutex.unlock t.mutex

(* An exception no connection should produce: counted (never silent),
   then the connection is dropped. *)
let record_conn_crash t _e =
  Mutex.lock t.mutex;
  t.errors <- t.errors + 1;
  obs_incr t (fun m -> m.c_errors);
  (match t.obs_m with
  | Some m ->
      Trace.record m.trace
        (Trace.Server_request { hash = 0L; status = "error"; cache = "" })
  | None -> ());
  Mutex.unlock t.mutex

let initiate_stop t =
  Mutex.lock t.mutex;
  if not t.stopping then begin
    t.stopping <- true;
    (try ignore (Unix.write t.pipe_w (Bytes.make 1 'x') 0 1)
     with Unix.Unix_error _ -> ());
    Condition.broadcast t.drained
  end;
  Mutex.unlock t.mutex

let handle_conn t fd =
  (* Read/write timeouts bound how long a slow or hung peer can hold
     this thread: an idle socket times the blocked read out, and a peer
     that stops reading times our blocked write out. 0 disables. *)
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.idle_timeout_s;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.config.idle_timeout_s
   with Unix.Unix_error _ | Invalid_argument _ -> ());
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let send frame =
    output_string oc frame;
    output_char oc '\n';
    flush oc
  in
  let send_torn frame =
    output_string oc (String.sub frame 0 (String.length frame / 2));
    flush oc
  in
  let read_t0 = ref (Clock.now_ns ()) in
  let rec loop () =
    read_t0 := Clock.now_ns ();
    match input_line ic with
    | exception End_of_file -> ()
    | exception (Sys_error _ | Sys_blocked_io) ->
        (* SO_RCVTIMEO expiry surfaces as [Sys_blocked_io] through the
           buffered channel (or a read error); classify by how long the
           read actually blocked so idle closes are counted apart from
           peer resets. *)
        if
          t.config.idle_timeout_s > 0.
          && Clock.elapsed_s !read_t0 >= 0.9 *. t.config.idle_timeout_s
        then record_idle_close t
    | line -> (
        let continue =
          match Protocol.decode_request line with
          | Error msg ->
              record_protocol_error t;
              send (Protocol.encode_response (Protocol.Error_reply msg));
              true
          | Ok ({ Protocol.id; v }, req) -> (
              (match
                 take_fault t (function
                   | Faults.Delay_handler d -> Some d
                   | _ -> None)
               with
              | Some d -> Thread.delay d
              | None -> ());
              match
                take_fault t (function
                  | Faults.Drop_connection -> Some ()
                  | _ -> None)
              with
              | Some () -> false
              | None -> (
                  match req with
                  | Protocol.Ping ->
                      send (Protocol.encode_response ?id ~v Protocol.Pong);
                      true
                  | Protocol.Stats ->
                      send
                        (Protocol.encode_response ?id ~v
                           (Protocol.Stats_reply (stats t)));
                      true
                  | Protocol.Shutdown ->
                      initiate_stop t;
                      send (Protocol.encode_response ?id ~v Protocol.Pong);
                      false
                  | Protocol.Hello client_max ->
                      send
                        (Protocol.encode_response ?id ~v
                           (Protocol.Hello_reply
                              (min client_max Protocol.max_version)));
                      true
                  | Protocol.Cancel target ->
                      send (Protocol.encode_response ?id ~v (handle_cancel t target));
                      true
                  | Protocol.Run scenario | Protocol.Run_stream scenario -> (
                      (* Only v2 requests with an id are cancellable: a
                         v1 waiter could not be answered with the
                         [cancelled] status its cancellation produces. *)
                      let cancel_id = if v >= 2 then id else None in
                      let on_progress =
                        match req with
                        | Protocol.Run_stream _ ->
                            Some
                              (fun ~done_count ~total ->
                                send
                                  (Protocol.encode_response ?id ~v
                                     (Protocol.Progress { done_count; total })))
                        | _ -> None
                      in
                      let frame =
                        Protocol.encode_response ?id ~v
                          (handle_run t ?on_progress ?cancel_id scenario)
                      in
                      match
                        take_fault t (function
                          | Faults.Torn_frame -> Some ()
                          | _ -> None)
                      with
                      | Some () ->
                          send_torn frame;
                          false
                      | None ->
                          send frame;
                          true)))
        in
        if continue then loop ())
  in
  (try loop () with
  | End_of_file | Sys_error _ | Sys_blocked_io | Unix.Unix_error _ -> ()
  | e -> record_conn_crash t e);
  Mutex.lock t.mutex;
  Hashtbl.remove t.conn_fds fd;
  t.conns <- t.conns - 1;
  Condition.broadcast t.drained;
  Mutex.unlock t.mutex;
  (* Flushes and closes the shared fd; the input channel must not be
     closed too (double close could hit a reused descriptor). *)
  close_out_noerr oc

(* Accepted but over the connection cap: tell the peer why (best effort,
   non-blocking — a hostile peer must not stall the accept loop) and
   hang up. *)
let shed_conn fd =
  (try
     Unix.set_nonblock fd;
     let frame = Protocol.encode_response Protocol.Overloaded ^ "\n" in
     ignore (Unix.write_substring fd frame 0 (String.length frame))
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let record_accept_error t =
  Mutex.lock t.mutex;
  t.accept_errors <- t.accept_errors + 1;
  obs_incr t (fun m -> m.c_accept_errors);
  Mutex.unlock t.mutex

(* Transient fd exhaustion leaves listen_fd readable, so without a pause
   select+accept would busy-loop at 100% CPU until an fd frees up. *)
let accept_backoff_s = 0.05

let accept_loop t =
  let rec loop () =
    match Unix.select [ t.listen_fd; t.pipe_r ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | readable, _, _ ->
        if List.mem t.pipe_r readable then ()
        else begin
          (match Unix.accept ~cloexec:true t.listen_fd with
          | exception
              Unix.Unix_error
                ((Unix.EMFILE | Unix.ENFILE | Unix.ENOBUFS | Unix.ENOMEM), _, _)
            ->
              record_accept_error t;
              Thread.delay accept_backoff_s
          | exception Unix.Unix_error _ ->
              (* e.g. ECONNABORTED: the event was consumed, no spin. *)
              record_accept_error t
          | fd, _ ->
              let over =
                Mutex.lock t.mutex;
                let over = t.conns >= t.config.max_conns in
                if over then begin
                  t.conn_shed <- t.conn_shed + 1;
                  obs_incr t (fun m -> m.c_conn_shed)
                end
                else begin
                  t.conns <- t.conns + 1;
                  Hashtbl.replace t.conn_fds fd ()
                end;
                Mutex.unlock t.mutex;
                over
              in
              if over then shed_conn fd
              else ignore (Thread.create (handle_conn t) fd));
          loop ()
        end
  in
  loop ()

(* Periodic broadcasts bound how late deadline-style waits (request
   deadlines in [await_locked], the drain deadline in [finalize]) notice
   that their clock ran out; completion events still wake them at once. *)
let tick_interval_s = 0.05

let ticker t =
  let rec loop () =
    Thread.delay tick_interval_s;
    Mutex.lock t.mutex;
    let stop = t.ticker_stop in
    if not stop then begin
      Condition.broadcast t.done_cond;
      Condition.broadcast t.drained
    end;
    Mutex.unlock t.mutex;
    if not stop then loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let start config =
  if config.workers < 1 then invalid_arg "Server.start: workers";
  if config.high_water < 1 then invalid_arg "Server.start: high_water";
  if config.cache_capacity < 1 then invalid_arg "Server.start: cache_capacity";
  (match config.cache_bytes with
  | Some b when b < 1 -> invalid_arg "Server.start: cache_bytes"
  | _ -> ());
  if not (config.deadline_s > 0.) then invalid_arg "Server.start: deadline_s";
  if config.slices < 0 then invalid_arg "Server.start: slices";
  if not (config.idle_timeout_s >= 0.) then
    invalid_arg "Server.start: idle_timeout_s";
  if config.max_conns < 1 then invalid_arg "Server.start: max_conns";
  if not (config.drain_deadline_s >= 0.) then
    invalid_arg "Server.start: drain_deadline_s";
  (match config.snapshot_every with
  | Some n when n < 1 -> invalid_arg "Server.start: snapshot_every"
  | _ -> ());
  (* A peer hanging up mid-response must surface as EPIPE, not kill the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let listen_fd, bound =
    match config.addr with
    | Unix_socket path ->
        if Sys.file_exists path then Sys.remove path;
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 64;
        (fd, Unix_socket path)
    | Tcp port ->
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        Unix.listen fd 64;
        let actual =
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> port
        in
        (fd, Tcp actual)
  in
  let pipe_r, pipe_w = Unix.pipe ~cloexec:true () in
  (* The pool is created before the server record exists, so its drop
     hook goes through a cell filled in just below. *)
  let drop_hook = ref (fun (_ : exn) -> ()) in
  let t =
    {
      config;
      handler =
        (match (config.handler_ext, config.handler) with
        | Some h, _ -> h
        | None, Some h ->
            fun ~progress:_ ~should_stop:_ scenario ->
              {
                Checkpoint.text = Some (h scenario);
                completed = true;
                resumed_from = None;
              }
        | None, None ->
            (* The warm-start-aware path: with [snapshot_dir],
               checkpointable scenarios resume from stored prefixes,
               report progress, and stop early when abandoned. *)
            fun ~progress ~should_stop scenario ->
              Checkpoint.run_scenario ?dir:config.snapshot_dir
                ?every:config.snapshot_every ~should_stop ~progress scenario);
      listen_fd;
      bound;
      pipe_r;
      pipe_w;
      service =
        Ptg_util.Pool.Service.create ~workers:config.workers
          ~on_drop:(fun e -> !drop_hook e) ();
      mutex = Mutex.create ();
      done_cond = Condition.create ();
      drained = Condition.create ();
      cache =
        Lru.create ?max_bytes:config.cache_bytes
          ~capacity:config.cache_capacity ();
      pending_tbl = Hashtbl.create 64;
      cancel_tbl = Hashtbl.create 16;
      conn_fds = Hashtbl.create 64;
      inflight = 0;
      conns = 0;
      stopping = false;
      aborting = false;
      finalized = false;
      ticker_stop = false;
      accept_thread = None;
      ticker_thread = None;
      served = 0;
      shed = 0;
      coalesced = 0;
      errors = 0;
      timeouts = 0;
      cancelled = 0;
      warm_starts = 0;
      sliced = 0;
      orphaned_stops = 0;
      conn_shed = 0;
      accept_errors = 0;
      idle_closed = 0;
      pool_dropped = 0;
      last_evictions = 0;
      obs_m = Option.map make_obs config.obs;
    }
  in
  (drop_hook :=
     fun _e ->
       Mutex.lock t.mutex;
       t.pool_dropped <- t.pool_dropped + 1;
       obs_incr t (fun m -> m.c_pool_dropped);
       Mutex.unlock t.mutex);
  t.accept_thread <- Some (Thread.create accept_loop t);
  t.ticker_thread <- Some (Thread.create ticker t);
  t

let finalize t =
  (* Join the accept loop (woken by the self-pipe byte). *)
  Mutex.lock t.mutex;
  let acceptor = t.accept_thread in
  t.accept_thread <- None;
  Mutex.unlock t.mutex;
  Option.iter Thread.join acceptor;
  (* Nudge idle connections: half-close their read side so blocked
     [input_line]s see EOF. Done under the mutex so a connection thread
     cannot concurrently remove-and-close the same descriptor. In-flight
     requests get [drain_deadline_s] to finish; stragglers are then
     force-closed and their compute waits expired (checkpointed
     computations notice [aborting] through [should_stop] and persist
     their position for a resume after restart). *)
  Mutex.lock t.mutex;
  let drain_t0 = Clock.now_ns () in
  let force_at = Clock.ns_after drain_t0 t.config.drain_deadline_s in
  Hashtbl.iter
    (fun fd () ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    t.conn_fds;
  let forced = ref false in
  while t.conns > 0 do
    if (not !forced) && Clock.now_ns () >= force_at then begin
      forced := true;
      t.aborting <- true;
      Condition.broadcast t.done_cond;
      Hashtbl.iter
        (fun fd () ->
          try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        t.conn_fds
    end;
    Condition.wait t.drained t.mutex
  done;
  (* Workers the pool shutdown below must wait for should stop early
     rather than compute for closed connections. *)
  t.aborting <- true;
  let first = not t.finalized in
  (match (first, t.obs_m) with
  | true, Some m -> Registry.set_gauge m.g_drain (Clock.elapsed_us drain_t0)
  | _ -> ());
  t.finalized <- true;
  t.ticker_stop <- true;
  let tick = t.ticker_thread in
  t.ticker_thread <- None;
  Mutex.unlock t.mutex;
  Option.iter Thread.join tick;
  if first then begin
    Ptg_util.Pool.Service.shutdown t.service;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (try Unix.close t.pipe_r with Unix.Unix_error _ -> ());
    (try Unix.close t.pipe_w with Unix.Unix_error _ -> ());
    match t.bound with
    | Unix_socket path -> ( try Sys.remove path with Sys_error _ -> ())
    | Tcp _ -> ()
  end

let stop t =
  initiate_stop t;
  finalize t

let wait t =
  Mutex.lock t.mutex;
  while not t.stopping do
    Condition.wait t.drained t.mutex
  done;
  Mutex.unlock t.mutex;
  finalize t

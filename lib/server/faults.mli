(** Fault injection for chaos-testing the serving stack.

    A [t] is a shared, thread-safe fault slot: tests (or the hidden
    [--inject-fault] CLI flag) arm it with one fault kind and a firing
    budget; the server consumes firings at the matching injection point.
    An unarmed slot costs one mutex round-trip per check and injects
    nothing, so a default server config behaves exactly as if the module
    did not exist.

    Each kind fires at a specific point in the request path:
    - [Delay_handler d] — the connection thread sleeps [d] seconds
      before dispatching a decoded frame (a slow server; exercises
      client request timeouts and retries);
    - [Wedge_worker d] — the worker domain sleeps [d] seconds before
      running the scenario (a stuck computation; exercises the
      per-request compute deadline and [Protocol.Timeout]);
    - [Torn_frame] — the server writes only half of a response frame
      and drops the connection (exercises client decode-error retry);
    - [Drop_connection] — the server closes the connection instead of
      replying (exercises client reconnect). *)

type kind =
  | Delay_handler of float
  | Wedge_worker of float
  | Torn_frame
  | Drop_connection

val kind_name : kind -> string
(** ["delay"] / ["wedge"] / ["torn"] / ["drop"] (argument elided). *)

type t

val create : unit -> t
(** An unarmed slot. *)

val arm : ?times:int -> t -> kind -> unit
(** Arm [kind] for the next [times] (default 1) matching injection
    points; replaces any previously armed fault. Raises
    [Invalid_argument] on [times < 1] or a negative or non-finite delay
    (an infinite wedge could never drain at shutdown). *)

val disarm : t -> unit

val take_matching : t -> (kind -> 'a option) -> 'a option
(** [take_matching t f] consumes one firing iff a fault is armed, has
    budget left and [f kind] is [Some _] — returning that value — and
    [None] otherwise (leaving the budget untouched, so a non-matching
    injection point never burns a firing). Thread-safe. *)

val fired : t -> int
(** Total firings consumed since {!create}. *)

val of_spec : string -> (kind * int, string) result
(** Parse a CLI fault spec: [KIND[:ARG][:TIMES]] —
    ["delay:0.5"], ["wedge:2:3"] (wedge 2 s, 3 firings), ["torn"],
    ["drop:*:5"] (["*"] keeps the default argument slot empty). [delay]
    and [wedge] require a finite non-negative seconds argument; [TIMES]
    must be a positive integer. Violations produce a descriptive
    [Error] naming the offending token and the constraint. *)

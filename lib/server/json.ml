type t =
  | Null
  | Bool of bool
  | Int of int64
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of int * string

let fail pos msg = raise (Parse_error (pos, msg))

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c.pos (Printf.sprintf "expected '%c'" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c.pos (Printf.sprintf "expected %s" word)

let hex_digit c ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> fail c.pos "invalid \\u escape"

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c.pos "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> fail c.pos "unterminated escape"
        | Some esc ->
            advance c;
            (match esc with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if c.pos + 4 > String.length c.s then fail c.pos "short \\u escape";
                let code =
                  (hex_digit c c.s.[c.pos] lsl 12)
                  lor (hex_digit c c.s.[c.pos + 1] lsl 8)
                  lor (hex_digit c c.s.[c.pos + 2] lsl 4)
                  lor hex_digit c c.s.[c.pos + 3]
                in
                c.pos <- c.pos + 4;
                (* UTF-8 encode the BMP code point (enough for the
                   control-character escapes our own exporters emit). *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
            | _ -> fail (c.pos - 1) "unknown escape");
            go ())
    | Some ch when Char.code ch < 0x20 -> fail c.pos "raw control char in string"
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let consume () = advance c in
  (match peek c with Some '-' -> consume () | _ -> ());
  let rec digits () =
    match peek c with
    | Some '0' .. '9' ->
        consume ();
        digits ()
    | _ -> ()
  in
  digits ();
  (match peek c with
  | Some '.' ->
      is_float := true;
      consume ();
      digits ()
  | _ -> ());
  (match peek c with
  | Some ('e' | 'E') ->
      is_float := true;
      consume ();
      (match peek c with Some ('+' | '-') -> consume () | _ -> ());
      digits ()
  | _ -> ());
  let text = String.sub c.s start (c.pos - start) in
  if text = "" || text = "-" then fail start "invalid number";
  (* JSON forbids leading zeros in the integer part ("01", "-012"). *)
  let int_start = if text.[0] = '-' then 1 else 0 in
  if
    String.length text > int_start + 1
    && text.[int_start] = '0'
    && (match text.[int_start + 1] with '0' .. '9' -> true | _ -> false)
  then fail start "leading zero in number";
  (* Overflowed literals ("1e999", a 400-digit integer) parse to
     [infinity], which the emitter could never have produced and which
     would round-trip as the invalid token "inf" — reject them here so a
     non-finite float can never enter through the codec. *)
  let finite_or_fail f =
    if Float.is_finite f then Float f
    else fail start "number overflows a finite float"
  in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> finite_or_fail f
    | None -> fail start "invalid number"
  else
    match Int64.of_string_opt text with
    | Some i -> Int i
    | None -> (
        (* Out of int64 range: degrade to float rather than reject. *)
        match float_of_string_opt text with
        | Some f -> finite_or_fail f
        | None -> fail start "invalid number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c.pos "unexpected end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws c;
          let key = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields ((key, v) :: acc)
          | Some '}' ->
              advance c;
              List.rev ((key, v) :: acc)
          | _ -> fail c.pos "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              elements (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> fail c.pos "expected ',' or ']'"
        in
        List (elements [])
      end
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c.pos (Printf.sprintf "unexpected character '%c'" ch)

let parse s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at byte %d" c.pos)
      else Ok v
  | exception Parse_error (pos, msg) ->
      Error (Printf.sprintf "%s at byte %d" msg pos)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (Int64.to_string i)
  | Float f ->
      (* JSON has no encoding for nan/inf: %.17g would print the tokens
         "nan"/"inf", which our own parser (and every real client)
         rejects. Fail at the emit boundary instead of shipping an
         unparseable frame. *)
      if not (Float.is_finite f) then
        invalid_arg (Printf.sprintf "Json.to_string: non-finite float %h" f);
      (* %.17g round-trips every float; trim is not worth the bytes here. *)
      Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (Ptg_obs.Registry.json_escape s);
      Buffer.add_char buf '"'
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (Ptg_obs.Registry.json_escape k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 64 in
  write buf v;
  Buffer.contents buf

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let keys = function Obj fields -> List.map fst fields | _ -> []

type kind =
  | Delay_handler of float
  | Wedge_worker of float
  | Torn_frame
  | Drop_connection

let kind_name = function
  | Delay_handler _ -> "delay"
  | Wedge_worker _ -> "wedge"
  | Torn_frame -> "torn"
  | Drop_connection -> "drop"

type t = {
  mutex : Mutex.t;
  mutable armed : kind option;
  mutable remaining : int;
  mutable fired : int;
}

let create () =
  { mutex = Mutex.create (); armed = None; remaining = 0; fired = 0 }

let arm ?(times = 1) t kind =
  if times < 1 then invalid_arg "Faults.arm: times";
  (match kind with
  | Delay_handler d | Wedge_worker d ->
      (* Finite too: an infinite wedge can never drain at shutdown. *)
      if not (d >= 0. && Float.is_finite d) then invalid_arg "Faults.arm: delay"
  | Torn_frame | Drop_connection -> ());
  Mutex.lock t.mutex;
  t.armed <- Some kind;
  t.remaining <- times;
  Mutex.unlock t.mutex

let disarm t =
  Mutex.lock t.mutex;
  t.armed <- None;
  t.remaining <- 0;
  Mutex.unlock t.mutex

let take_matching t f =
  Mutex.lock t.mutex;
  let r =
    match t.armed with
    | Some kind when t.remaining > 0 -> (
        match f kind with
        | Some _ as hit ->
            t.remaining <- t.remaining - 1;
            t.fired <- t.fired + 1;
            if t.remaining = 0 then t.armed <- None;
            hit
        | None -> None)
    | _ -> None
  in
  Mutex.unlock t.mutex;
  r

let fired t =
  Mutex.lock t.mutex;
  let n = t.fired in
  Mutex.unlock t.mutex;
  n

let of_spec spec =
  let parts = String.split_on_char ':' spec in
  let arg = function
    | None | Some "*" | Some "" -> Ok None
    | Some s -> (
        match float_of_string_opt s with
        | Some f when f >= 0. && Float.is_finite f -> Ok (Some f)
        | Some f when Float.is_finite f ->
            Error
              (Printf.sprintf
                 "fault argument %S must be a non-negative number of seconds" s)
        | Some _ ->
            Error (Printf.sprintf "fault argument %S must be finite" s)
        | None -> Error (Printf.sprintf "bad fault argument %S" s))
  in
  let times = function
    | None | Some "" -> Ok 1
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n >= 1 -> Ok n
        | Some _ ->
            Error
              (Printf.sprintf "fault count %S must be a positive repeat count" s)
        | None -> Error (Printf.sprintf "bad fault count %S" s))
  in
  let nth i = List.nth_opt parts i in
  if List.length parts > 3 then Error (Printf.sprintf "bad fault spec %S" spec)
  else
    match (nth 0, arg (nth 1), times (nth 2)) with
    | _, Error e, _ | _, _, Error e -> Error e
    | Some "delay", Ok (Some d), Ok n -> Ok (Delay_handler d, n)
    | Some "wedge", Ok (Some d), Ok n -> Ok (Wedge_worker d, n)
    | Some ("delay" | "wedge"), Ok None, _ ->
        Error "delay/wedge need a seconds argument (e.g. wedge:2)"
    | Some "torn", Ok None, Ok n -> Ok (Torn_frame, n)
    | Some "drop", Ok None, Ok n -> Ok (Drop_connection, n)
    | Some ("torn" | "drop"), Ok (Some _), _ ->
        Error "torn/drop take no argument (use KIND or KIND:*:TIMES)"
    | _ ->
        Error
          (Printf.sprintf
             "unknown fault %S (one of: delay:SECS, wedge:SECS, torn, drop)"
             spec)

(** x86_64 4-level radix page tables built in simulated physical memory.

    Levels follow the hardware: PML4 (bits 47:39), PDPT (38:30),
    PD (29:21), PT (20:12); every table is one 4 KB frame of 512 8-byte
    entries. The structure lives entirely inside a {!Phys_mem.t}, so when
    that memory is DRAM-backed, Rowhammer bit flips corrupt real PTE
    cachelines and hardware page walks traverse real addresses — the setup
    of the paper's Figure 3 exploit. *)

type t

type level = Pml4 | Pdpt | Pd | Pt

val level_index : level -> int64 -> int
(** The 9-bit table index a virtual address selects at a level. *)

val pp_level : Format.formatter -> level -> unit

val create : mem:Phys_mem.t -> alloc:Frame_allocator.t -> t
(** Allocates the root (PML4) frame. *)

val root : t -> int64
(** Physical address of the PML4 (the CR3 value). *)

val allocator : t -> Frame_allocator.t
(** The frame allocator the table draws table pages from (checkpointing
    needs its cursor alongside the frame index below). *)

(** {2 Checkpointable state}

    The shadow frame index — the only mutable state beyond what already
    lives in physical memory. The tables themselves are restored with the
    DRAM contents. *)

type state = { s_pt_frames : int64 list; s_all_frames : int64 list }

val state : t -> state
val set_state : t -> state -> unit

val map : t -> vaddr:int64 -> pte:int64 -> unit
(** Install a leaf PTE for the 4 KB page containing [vaddr], creating
    intermediate tables as needed. [pte] is the raw leaf entry (use
    {!Ptg_pte.X86.make}). *)

val map_huge : t -> vaddr:int64 -> pde:int64 -> unit
(** Install a 2 MB mapping: [pde] is written at the PD level with the
    Huge_page (PS) bit forced on; its PFN must be 512-frame aligned.
    Walks terminate at the PD for such regions. *)

val unmap : t -> vaddr:int64 -> unit
(** Zero the leaf PTE (intermediate tables are not reclaimed, as in
    Linux's lazy teardown). *)

val lookup : t -> vaddr:int64 -> int64 option
(** The leaf PTE for [vaddr], or [None] anywhere the tree is not present.
    A functional walk — no timing, no integrity checks. *)

type walk_step = {
  level : level;
  entry_addr : int64;  (** physical address of the 8-byte entry read *)
  entry : int64;       (** its value *)
}

val walk : t -> vaddr:int64 -> walk_step list
(** The full translation walk (up to 4 steps; stops at a non-present
    entry). This is what the simulated MMU replays as timed memory
    accesses. *)

val translate : t -> vaddr:int64 -> int64 option
(** Virtual-to-physical translation of [vaddr] (requires the leaf Present
    bit); handles both 4 KB leaves and 2 MB huge mappings. *)

val leaf_line_addrs : t -> int64 list
(** Physical line addresses of every leaf (PT-level) PTE cacheline in the
    tree, each holding 8 PTEs — the population Figures 8 and 9 study.
    Sorted ascending. *)

val table_frames : t -> int64 list
(** Frames used by the tables themselves (all levels), ascending. *)

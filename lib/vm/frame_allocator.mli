(** Physical frame allocator with a contiguity/fragmentation model.

    Linux's buddy allocator plus demand paging produce the PFN locality the
    paper measures (Fig. 8, Insight 2): pages faulted in sequence within a
    VMA usually receive consecutive frames, broken occasionally when other
    processes' allocations interleave. [p_break] is the per-page
    probability of such a break; each break also leaves a gap, modeling
    the frames the interloper consumed. *)

type t

val create :
  ?p_break:float ->
  ?start_frame:int64 ->
  ?max_frame:int64 ->
  Ptg_util.Rng.t ->
  t
(** Defaults: [p_break] = 0.45, frames in [0x1000, 2^28) (i.e. within a
    1 TB physical space, far from frame 0). *)

val alloc : t -> int64
(** One frame at the current allocation cursor (advances it). *)

val alloc_run : t -> int -> int64 array
(** [alloc_run t n] allocates [n] frames for [n] consecutively-faulted
    pages: consecutive frames except at fragmentation breaks. *)

val alloc_discontiguous : t -> int64
(** A frame from a deliberately distant location (used for page-table
    pages themselves, which the kernel allocates from its own pools). *)

val frames_allocated : t -> int

(** {2 Checkpointable state}

    The allocation cursor and lifetime count. The fragmentation RNG is
    shared with the owning simulation and checkpointed there. *)

type state = { s_cursor : int64; s_count : int }

val state : t -> state

val set_state : t -> state -> unit
(** Raises [Invalid_argument] when the cursor falls outside this
    allocator's frame range. *)

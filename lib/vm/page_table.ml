open Ptg_util

type level = Pml4 | Pdpt | Pd | Pt

type t = {
  mem : Phys_mem.t;
  alloc : Frame_allocator.t;
  root : int64;
  (* Shadow index of intermediate tables so enumeration does not need to
     scan physical memory: (table frame paddr, level of entries within). *)
  mutable pt_frames : int64 list;  (* leaf-level table frames *)
  mutable all_frames : int64 list;
}

let level_shift = function Pml4 -> 39 | Pdpt -> 30 | Pd -> 21 | Pt -> 12

let level_index level vaddr =
  Int64.to_int (Bits.extract vaddr ~lo:(level_shift level) ~hi:(level_shift level + 8))

let pp_level fmt l =
  Format.pp_print_string fmt
    (match l with Pml4 -> "PML4" | Pdpt -> "PDPT" | Pd -> "PD" | Pt -> "PT")

let next_level = function
  | Pml4 -> Some Pdpt
  | Pdpt -> Some Pd
  | Pd -> Some Pt
  | Pt -> None

let frame_to_paddr f = Int64.shift_left f 12

let alloc_table t =
  let frame = Frame_allocator.alloc_discontiguous t.alloc in
  let paddr = frame_to_paddr frame in
  t.all_frames <- paddr :: t.all_frames;
  (* The kernel zeroes a fresh page-table page before linking it in; with
     a guarded memory controller behind [mem] this is also what embeds
     the MAC (MAC-zero) in every line of the new table. *)
  for i = 0 to 511 do
    t.mem.Phys_mem.write_word (Int64.add paddr (Int64.of_int (i * 8))) 0L
  done;
  paddr

let create ~mem ~alloc =
  let t = { mem; alloc; root = 0L; pt_frames = []; all_frames = [] } in
  let root = alloc_table t in
  { t with root }

let root t = t.root
let allocator t = t.alloc

type state = { s_pt_frames : int64 list; s_all_frames : int64 list }

let state t = { s_pt_frames = t.pt_frames; s_all_frames = t.all_frames }

let set_state t s =
  t.pt_frames <- s.s_pt_frames;
  t.all_frames <- s.s_all_frames

let entry_addr table_paddr index = Int64.add table_paddr (Int64.of_int (index * 8))

(* Descend one level, creating the next table if [create_missing]. *)
let descend t ~create_missing table_paddr level vaddr =
  let addr = entry_addr table_paddr (level_index level vaddr) in
  let entry = t.mem.Phys_mem.read_word addr in
  if Ptg_pte.X86.get_flag entry Ptg_pte.X86.Present then
    Some (frame_to_paddr (Ptg_pte.X86.pfn entry))
  else if not create_missing then None
  else begin
    let child = alloc_table t in
    (match level with
    | Pd -> t.pt_frames <- child :: t.pt_frames
    | Pml4 | Pdpt | Pt -> ());
    let entry =
      Ptg_pte.X86.make ~writable:true ~user:true
        ~pfn:(Int64.shift_right_logical child 12)
        ()
    in
    t.mem.Phys_mem.write_word addr entry;
    Some child
  end

let leaf_entry_addr t ~create_missing vaddr =
  let rec go table level =
    match next_level level with
    | None -> Some (entry_addr table (level_index level vaddr))
    | Some deeper -> (
        match descend t ~create_missing table level vaddr with
        | None -> None
        | Some child -> go child deeper)
  in
  go t.root Pml4

let map t ~vaddr ~pte =
  match leaf_entry_addr t ~create_missing:true vaddr with
  | Some addr -> t.mem.Phys_mem.write_word addr pte
  | None ->
      invalid_arg
        (Printf.sprintf
           "Page_table.map: could not materialise the walk for vaddr 0x%Lx \
            (an intermediate entry reads back non-present: corrupted or \
            tampered page-table memory)"
           vaddr)

let map_huge t ~vaddr ~pde =
  if Int64.rem (Ptg_pte.X86.pfn pde) 512L <> 0L then
    invalid_arg "Page_table.map_huge: PFN not 2MB-aligned";
  let pde = Ptg_pte.X86.set_flag pde Ptg_pte.X86.Huge_page true in
  let rec go table level =
    if level = Pd then
      t.mem.Phys_mem.write_word (entry_addr table (level_index Pd vaddr)) pde
    else
      match descend t ~create_missing:true table level vaddr with
      | Some child -> go child (Option.get (next_level level))
      | None ->
          invalid_arg
            (Printf.sprintf
               "Page_table.map_huge: could not materialise the walk for \
                vaddr 0x%Lx at %s (an intermediate entry reads back \
                non-present: corrupted or tampered page-table memory)"
               vaddr
               (Format.asprintf "%a" pp_level level))
  in
  go t.root Pml4

let unmap t ~vaddr =
  match leaf_entry_addr t ~create_missing:false vaddr with
  | Some addr -> t.mem.Phys_mem.write_word addr 0L
  | None -> ()

let lookup t ~vaddr =
  Option.map t.mem.Phys_mem.read_word (leaf_entry_addr t ~create_missing:false vaddr)

type walk_step = { level : level; entry_addr : int64; entry : int64 }

let walk t ~vaddr =
  let rec go table level acc =
    let addr = entry_addr table (level_index level vaddr) in
    let entry = t.mem.Phys_mem.read_word addr in
    let acc = { level; entry_addr = addr; entry } :: acc in
    if not (Ptg_pte.X86.get_flag entry Ptg_pte.X86.Present) then List.rev acc
    else if level = Pd && Ptg_pte.X86.get_flag entry Ptg_pte.X86.Huge_page then
      (* 2 MB mapping: the PD entry is the leaf. *)
      List.rev acc
    else
      match next_level level with
      | None -> List.rev acc
      | Some deeper -> go (frame_to_paddr (Ptg_pte.X86.pfn entry)) deeper acc
  in
  go t.root Pml4 []

let translate t ~vaddr =
  match List.rev (walk t ~vaddr) with
  | { level = Pt; entry; _ } :: _ when Ptg_pte.X86.get_flag entry Ptg_pte.X86.Present ->
      Some (Int64.logor (Ptg_pte.X86.phys_addr entry) (Bits.extract vaddr ~lo:0 ~hi:11))
  | { level = Pd; entry; _ } :: _
    when Ptg_pte.X86.get_flag entry Ptg_pte.X86.Present
         && Ptg_pte.X86.get_flag entry Ptg_pte.X86.Huge_page ->
      Some (Int64.logor (Ptg_pte.X86.phys_addr entry) (Bits.extract vaddr ~lo:0 ~hi:20))
  | _ -> None

let leaf_line_addrs t =
  let lines =
    List.concat_map
      (fun frame ->
        List.init 64 (fun i -> Int64.add frame (Int64.of_int (i * 64))))
      t.pt_frames
  in
  List.sort_uniq Int64.unsigned_compare lines

let table_frames t = List.sort_uniq Int64.unsigned_compare t.all_frames

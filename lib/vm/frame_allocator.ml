type t = {
  rng : Ptg_util.Rng.t;
  p_break : float;
  start_frame : int64;
  max_frame : int64;
  mutable cursor : int64;
  mutable count : int;
}

let create ?(p_break = 0.45) ?(start_frame = 0x1000L) ?(max_frame = 0x1000_0000L) rng =
  if p_break < 0.0 || p_break > 1.0 then invalid_arg "Frame_allocator.create: p_break";
  if Int64.compare start_frame max_frame >= 0 then
    invalid_arg "Frame_allocator.create: empty frame range";
  { rng; p_break; start_frame; max_frame; cursor = start_frame; count = 0 }

let jump t =
  (* Relocate the cursor: another allocation stream claimed the next
     frames. Distance is a modest skip, as buddy free lists are clustered. *)
  let skip = Int64.of_int (1 + Ptg_util.Rng.int t.rng 4096) in
  let range = Int64.sub t.max_frame t.start_frame in
  t.cursor <-
    Int64.add t.start_frame (Int64.rem (Int64.add (Int64.sub t.cursor t.start_frame) skip) range)

let take t =
  let f = t.cursor in
  t.cursor <- Int64.add t.cursor 1L;
  if Int64.compare t.cursor t.max_frame >= 0 then t.cursor <- t.start_frame;
  t.count <- t.count + 1;
  f

let alloc t = take t

let alloc_run t n =
  if n < 0 then invalid_arg "Frame_allocator.alloc_run";
  Array.init n (fun i ->
      if i > 0 && Ptg_util.Rng.bernoulli t.rng t.p_break then jump t;
      take t)

let alloc_discontiguous t =
  jump t;
  take t

let frames_allocated t = t.count

type state = { s_cursor : int64; s_count : int }

let state t = { s_cursor = t.cursor; s_count = t.count }

let set_state t s =
  if Int64.compare s.s_cursor t.start_frame < 0
     || Int64.compare s.s_cursor t.max_frame >= 0
  then invalid_arg "Frame_allocator.set_state: cursor out of range";
  t.cursor <- s.s_cursor;
  t.count <- s.s_count

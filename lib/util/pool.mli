(** Fixed-size domain pool for embarrassingly-parallel experiment sweeps.

    Every figure of the paper's evaluation is a sweep over independent
    (workload, seed, configuration) runs, each of which builds its own
    {!Rng} and engine state from an explicit seed. [parallel_map] fans
    such runs out across OCaml 5 domains: a fixed set of workers pulls
    tasks from a mutex/condvar-protected queue (no work stealing), so
    results are bit-identical to serial execution — the job count only
    changes wall-clock time, never a number. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: the number of workers used when
    [?jobs] is omitted. *)

module Service : sig
  (** A persistent domain pool for long-running services: workers are
      spawned once at {!create} and keep pulling submitted thunks until
      {!shutdown}. Jobs communicate results through their own closures
      (e.g. a mutex-protected cell plus a condition variable); jobs
      should catch and encode their own errors. An exception that still
      escapes a job is counted ({!dropped}) and reported to [on_drop]
      without killing the worker — except [Out_of_memory] and
      [Stack_overflow], which kill the worker domain and re-raise at
      {!shutdown}'s join: fatal exhaustion must never be silently
      retried. *)

  type t

  val create : ?workers:int -> ?on_drop:(exn -> unit) -> unit -> t
  (** Spawn [workers] worker domains (default {!default_jobs}). Raises
      [Invalid_argument] on [workers < 1]. [on_drop] is called from the
      worker domain for every non-fatal exception that escapes a job
      (e.g. to feed an observability counter); it must not raise —
      anything it raises besides fatal exhaustion is ignored. *)

  val dropped : t -> int
  (** Non-fatal exceptions that escaped jobs since {!create}. *)

  val workers : t -> int

  val submit : t -> (unit -> unit) -> unit
  (** Enqueue a job; some worker runs it FIFO. The queue is unbounded —
      callers that need backpressure must gate admission themselves
      (the server sheds load before submitting). Raises
      [Invalid_argument] after {!shutdown}. *)

  val queue_depth : t -> int
  (** Jobs submitted but not yet picked up by a worker. *)

  val shutdown : t -> unit
  (** Stop accepting jobs, let workers drain what is already queued, and
      join them. Idempotent. If a worker domain died of fatal exhaustion
      ([Out_of_memory] / [Stack_overflow]), the join re-raises it here. *)
end

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map ~jobs f a] is [Array.map f a], computed by up to [jobs]
    worker domains (default {!default_jobs}; capped at [Array.length a]).
    Input order is preserved. [jobs <= 1] runs serially in the calling
    domain with no spawns. If any [f] raises, remaining queued tasks are
    abandoned and the first exception (in completion order) is re-raised
    at the join point with its backtrace. Raises [Invalid_argument] if
    [jobs < 1].

    [f] must not assume it runs in the calling domain; tasks must be
    independent (sharing only immutable or per-task state), which is what
    seed-derived experiment runs guarantee. *)

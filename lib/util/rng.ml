type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64: expands a 64-bit seed into well-distributed state words. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref seed in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  (* xoshiro must not start from the all-zero state. *)
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let next t =
  let open Int64 in
  let result = mul (Bits.rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- Bits.rotl t.s3 45;
  result

let split t = create (next t)
let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let int64_bounded t bound =
  if Int64.compare bound 0L <= 0 then invalid_arg "Rng.int64_bounded";
  (* Rejection sampling over 63 random bits to avoid modulo bias: accept
     [r] iff it falls below the largest multiple of [bound] that fits in
     2^63, i.e. iff [r - (r mod bound) <= 2^63 - bound]. *)
  let limit = Int64.sub Int64.max_int (Int64.sub bound 1L) in
  let rec go () =
    let r = Int64.shift_right_logical (next t) 1 in
    let v = Int64.rem r bound in
    if Int64.compare (Int64.sub r v) limit > 0 then go () else v
  in
  go ()

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  Int64.to_int (int64_bounded t (Int64.of_int bound))

let float t =
  (* 53 random bits into the mantissa. *)
  let r = Int64.shift_right_logical (next t) 11 in
  Int64.to_float r *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next t) 1L = 1L
let bernoulli t p = float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose";
  a.(int t (Array.length a))

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric";
  if p >= 1.0 then 0
  else
    let u = float t in
    let u = if u <= 0.0 then epsilon_float else u in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

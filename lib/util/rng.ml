(* xoshiro256** seeded via SplitMix64.

   The four state words live in an int64 bigarray rather than mutable
   record fields: bigarray loads and stores compile to unboxed moves,
   where every store to a mutable [int64] field allocates a fresh box —
   and [next] runs several times per simulated instruction. The update
   math is unchanged, so streams are bit-identical to the record-based
   implementation this replaced. *)

type t = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

let make4 s0 s1 s2 s3 : t =
  let a = Bigarray.Array1.create Bigarray.Int64 Bigarray.c_layout 4 in
  Bigarray.Array1.unsafe_set a 0 s0;
  Bigarray.Array1.unsafe_set a 1 s1;
  Bigarray.Array1.unsafe_set a 2 s2;
  Bigarray.Array1.unsafe_set a 3 s3;
  a

(* SplitMix64: expands a 64-bit seed into well-distributed state words. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref seed in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  (* xoshiro must not start from the all-zero state. *)
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    make4 1L 2L 3L 4L
  else make4 s0 s1 s2 s3

(* Local rotate so [next] stays free of cross-module calls; [n] is a
   nonzero literal at both uses. *)
let rotl w n =
  Int64.logor (Int64.shift_left w n) (Int64.shift_right_logical w (64 - n))

let next (t : t) =
  let open Int64 in
  let s0 = Bigarray.Array1.unsafe_get t 0
  and s1 = Bigarray.Array1.unsafe_get t 1
  and s2 = Bigarray.Array1.unsafe_get t 2
  and s3 = Bigarray.Array1.unsafe_get t 3 in
  let result = mul (rotl (mul s1 5L) 7) 9L in
  let tmp = shift_left s1 17 in
  let s2 = logxor s2 s0 in
  let s3 = logxor s3 s1 in
  let s1 = logxor s1 s2 in
  let s0 = logxor s0 s3 in
  let s2 = logxor s2 tmp in
  let s3 = rotl s3 45 in
  Bigarray.Array1.unsafe_set t 0 s0;
  Bigarray.Array1.unsafe_set t 1 s1;
  Bigarray.Array1.unsafe_set t 2 s2;
  Bigarray.Array1.unsafe_set t 3 s3;
  result

let split t = create (next t)

let state (t : t) =
  [|
    Bigarray.Array1.unsafe_get t 0;
    Bigarray.Array1.unsafe_get t 1;
    Bigarray.Array1.unsafe_get t 2;
    Bigarray.Array1.unsafe_get t 3;
  |]

let set_state (t : t) words =
  if Array.length words <> 4 then invalid_arg "Rng.set_state: want 4 words";
  if Array.for_all (Int64.equal 0L) words then
    invalid_arg "Rng.set_state: all-zero xoshiro state";
  for i = 0 to 3 do
    Bigarray.Array1.unsafe_set t i words.(i)
  done

let copy (t : t) =
  make4
    (Bigarray.Array1.unsafe_get t 0)
    (Bigarray.Array1.unsafe_get t 1)
    (Bigarray.Array1.unsafe_get t 2)
    (Bigarray.Array1.unsafe_get t 3)

let int64_bounded t bound =
  if Int64.compare bound 0L <= 0 then invalid_arg "Rng.int64_bounded";
  (* Rejection sampling over 63 random bits to avoid modulo bias: accept
     [r] iff it falls below the largest multiple of [bound] that fits in
     2^63, i.e. iff [r - (r mod bound) <= 2^63 - bound]. *)
  let limit = Int64.sub Int64.max_int (Int64.sub bound 1L) in
  let rec go () =
    let r = Int64.shift_right_logical (next t) 1 in
    let v = Int64.rem r bound in
    if Int64.compare (Int64.sub r v) limit > 0 then go () else v
  in
  go ()

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  Int64.to_int (int64_bounded t (Int64.of_int bound))

let float t =
  (* 53 random bits into the mantissa. *)
  let r = Int64.shift_right_logical (next t) 11 in
  Int64.to_float r *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next t) 1L = 1L
let bernoulli t p = float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose";
  a.(int t (Array.length a))

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric";
  if p >= 1.0 then 0
  else
    let u = float t in
    let u = if u <= 0.0 then epsilon_float else u in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let default_jobs () = Domain.recommended_domain_count ()

(* Shared task queue. All tasks (indices into the input array) are
   enqueued and the queue closed before workers start; the condition
   variable lets workers sleep in the (here: impossible-by-construction,
   but cheap to handle) window where the queue is empty but not closed,
   and wakes everyone on failure so the pool drains promptly. *)
type state = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  tasks : int Queue.t;
  mutable closed : bool;
  mutable error : (exn * Printexc.raw_backtrace) option;
}

let take st =
  Mutex.lock st.mutex;
  let rec next () =
    if st.error <> None then None
    else if not (Queue.is_empty st.tasks) then Some (Queue.pop st.tasks)
    else if st.closed then None
    else begin
      Condition.wait st.nonempty st.mutex;
      next ()
    end
  in
  let r = next () in
  Mutex.unlock st.mutex;
  r

let fail st exn bt =
  Mutex.lock st.mutex;
  if st.error = None then st.error <- Some (exn, bt);
  Queue.clear st.tasks;
  Condition.broadcast st.nonempty;
  Mutex.unlock st.mutex

module Service = struct
  (* A long-lived variant of the same queue discipline: worker domains
     are spawned once and keep pulling thunks until [shutdown]. Unlike
     [parallel_map], jobs are fire-and-forget — a job communicates its
     result through its own closure (the server stores it under a mutex
     and broadcasts a condvar), so the service needs no result array. *)
  type t = {
    mutex : Mutex.t;
    nonempty : Condition.t;
    jobs : (unit -> unit) Queue.t;
    mutable stopped : bool;
    mutable workers : unit Domain.t array;
    mutable dropped : int;
    on_drop : (exn -> unit) option;
  }

  let worker t =
    let rec loop () =
      Mutex.lock t.mutex;
      let rec next () =
        if not (Queue.is_empty t.jobs) then Some (Queue.pop t.jobs)
        else if t.stopped then None
        else begin
          Condition.wait t.nonempty t.mutex;
          next ()
        end
      in
      let job = next () in
      Mutex.unlock t.mutex;
      match job with
      | None -> ()
      | Some f ->
          (* A job that raises must not kill the worker: jobs are expected
             to catch their own errors (the server turns them into error
             frames). Anything that still escapes is counted, and the
             owner's [on_drop] hook is told — except fatal runtime
             exhaustion, which must propagate (the domain dies and
             [shutdown]'s join re-raises it) rather than be retried into
             a crash loop. *)
          (match f () with
          | () -> ()
          | exception ((Out_of_memory | Stack_overflow) as fatal) -> raise fatal
          | exception e ->
              Mutex.lock t.mutex;
              t.dropped <- t.dropped + 1;
              Mutex.unlock t.mutex;
              (match t.on_drop with
              | None -> ()
              | Some g -> (
                  (* The hook must not raise; fatal exhaustion inside it
                     still propagates. *)
                  try g e
                  with
                  | (Out_of_memory | Stack_overflow) as fatal -> raise fatal
                  | _ -> ())));
          loop ()
    in
    loop ()

  let create ?workers:(n = default_jobs ()) ?on_drop () =
    if n < 1 then invalid_arg "Pool.Service.create: workers";
    let t =
      {
        mutex = Mutex.create ();
        nonempty = Condition.create ();
        jobs = Queue.create ();
        stopped = false;
        workers = [||];
        dropped = 0;
        on_drop;
      }
    in
    t.workers <- Array.init n (fun _ -> Domain.spawn (fun () -> worker t));
    t

  let dropped t =
    Mutex.lock t.mutex;
    let n = t.dropped in
    Mutex.unlock t.mutex;
    n

  let workers t = Array.length t.workers

  let submit t f =
    Mutex.lock t.mutex;
    if t.stopped then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.Service.submit: service is shut down"
    end;
    Queue.push f t.jobs;
    Condition.signal t.nonempty;
    Mutex.unlock t.mutex

  let queue_depth t =
    Mutex.lock t.mutex;
    let n = Queue.length t.jobs in
    Mutex.unlock t.mutex;
    n

  let shutdown t =
    Mutex.lock t.mutex;
    let was_stopped = t.stopped in
    t.stopped <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    if not was_stopped then Array.iter Domain.join t.workers
end

let parallel_map ?jobs f a =
  let n = Array.length a in
  let jobs =
    match jobs with
    | None -> default_jobs ()
    | Some j -> if j < 1 then invalid_arg "Pool.parallel_map: jobs" else j
  in
  let jobs = min jobs n in
  if jobs <= 1 then Array.map f a
  else begin
    let st =
      {
        mutex = Mutex.create ();
        nonempty = Condition.create ();
        tasks = Queue.create ();
        closed = false;
        error = None;
      }
    in
    (* [None] cells are only ever written (to [Some]) by the one worker
       that popped that index; Domain.join publishes them to the caller. *)
    let results = Array.make n None in
    let rec worker () =
      match take st with
      | None -> ()
      | Some i -> (
          match f a.(i) with
          | v ->
              results.(i) <- Some v;
              worker ()
          | exception exn -> fail st exn (Printexc.get_raw_backtrace ()))
    in
    Mutex.lock st.mutex;
    for i = 0 to n - 1 do
      Queue.push i st.tasks
    done;
    st.closed <- true;
    Mutex.unlock st.mutex;
    let domains = Array.init jobs (fun _ -> Domain.spawn worker) in
    Array.iter Domain.join domains;
    match st.error with
    | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> Array.map (function Some v -> v | None -> assert false) results
  end

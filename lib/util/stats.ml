type summary = {
  n : int;
  mean : float;
  stddev : float;
  stderr : float;
  min : float;
  max : float;
}

let mean xs =
  let n = Array.length xs in
  if Array.exists Float.is_nan xs then invalid_arg "Stats.mean: NaN sample";
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let geomean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive sample";
        acc := !acc +. log x)
      xs;
    exp (!acc /. float_of_int n)
  end

let variance xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) xs;
    !acc /. float_of_int n
  end

let stddev xs = sqrt (variance xs)

(* Bessel-corrected (/ (n-1)): the standard error estimates dispersion of
   the sample mean from the sample itself, where the population formula
   is biased low. Undefined below two samples — reported as 0. *)
let sample_variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) xs;
    !acc /. float_of_int (n - 1)
  end

let stderr xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else sqrt (sample_variance xs) /. sqrt (float_of_int n)

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  if Array.exists Float.is_nan xs then invalid_arg "Stats.percentile: NaN sample";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize xs =
  let n = Array.length xs in
  if Array.exists Float.is_nan xs then invalid_arg "Stats.summarize: NaN sample";
  if n = 0 then { n = 0; mean = 0.0; stddev = 0.0; stderr = 0.0; min = 0.0; max = 0.0 }
  else
    {
      n;
      mean = mean xs;
      stddev = stddev xs;
      stderr = stderr xs;
      min = Array.fold_left Float.min xs.(0) xs;
      max = Array.fold_left Float.max xs.(0) xs;
    }

let weighted_mean pairs =
  let num = ref 0.0 and den = ref 0.0 in
  Array.iter
    (fun (x, w) ->
      if w < 0.0 then invalid_arg "Stats.weighted_mean: negative weight";
      num := !num +. (x *. w);
      den := !den +. w)
    pairs;
  if !den = 0.0 then 0.0 else !num /. !den

(** Plain-text table and CSV rendering for experiment output.

    Every figure/table regeneration prints through this module so that the
    harness output has a uniform, diff-friendly shape. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays out a boxed ASCII table. [align] gives the
    per-column alignment (default all [Left]); missing entries default to
    [Left]. Every row must have the same width as [header]. *)

val print : ?align:align list -> header:string list -> string list list -> unit
(** {!render} followed by [print_string]. *)

val csv : header:string list -> string list list -> string
(** RFC-4180-ish CSV encoding (quotes fields containing commas/quotes). *)

val csv_field : string -> string
(** Encode one CSV field (quoting/escaping only when needed). *)

val save_csv : path:string -> header:string list -> string list list -> unit
(** Write {!csv} output to [path]. *)

val fpct : float -> string
(** Percent with two decimals, e.g. [fpct 1.3333] = ["1.33%"]. *)

val f2 : float -> string
(** Two-decimal fixed rendering. *)

val f3 : float -> string
(** Three-decimal fixed rendering. *)

let now_ns () = Monotonic_clock.now ()

let ns_after t0 seconds =
  let delta = seconds *. 1e9 in
  if delta >= 9.0e18 then Int64.max_int
  else Int64.add t0 (Int64.of_float delta)

let elapsed_us t0 = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e3
let elapsed_s t0 = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9

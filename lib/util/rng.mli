(** Deterministic pseudo-random number generation.

    Every stochastic component of the simulator (fault injection, workload
    address streams, allocator fragmentation, PARA coin flips, ...) draws
    from an explicit generator state so that experiments are reproducible
    from a seed. The generator is xoshiro256** seeded via SplitMix64. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] builds a generator from a 64-bit seed. Equal seeds yield
    equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Use to give each subsystem its own stream so that adding draws in one
    subsystem does not perturb another. *)

val copy : t -> t
(** Snapshot of the current state (advances nothing). *)

val state : t -> int64 array
(** The four xoshiro256** state words (a defensive copy). Together with
    {!set_state} this makes the stream checkpointable: restoring the words
    into any generator resumes the exact stream. *)

val set_state : t -> int64 array -> unit
(** Overwrite the generator with previously captured {!state} words.
    Raises [Invalid_argument] unless given exactly four words with at
    least one nonzero (the all-zero state is a xoshiro fixed point). *)

val next : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)

val int64_bounded : t -> int64 -> int64
(** [int64_bounded t bound] is uniform in [0, bound); [bound] > 0. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success of
    a Bernoulli([p]) sequence; requires [0 < p <= 1]. Used to skip ahead in
    sparse fault injection instead of testing every bit. *)

(** Descriptive statistics over float samples.

    Used by the experiment harness for the AMEAN/GMEAN rows of Figure 6, the
    standard-error annotations of Figure 8, and bench reporting. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  stderr : float;  (** standard error of the mean: sample stddev / sqrt n *)
  min : float;
  max : float;
}

val mean : float array -> float
(** Arithmetic mean; 0 on an empty array. Raises [Invalid_argument] on a
    NaN sample (like {!percentile}). *)

val geomean : float array -> float
(** Geometric mean; requires all elements > 0; 0 on an empty array. *)

val variance : float array -> float
(** Population variance (division by [n]). *)

val stddev : float array -> float

val sample_variance : float array -> float
(** Bessel-corrected variance (division by [n-1]); 0 below two samples. *)

val stderr : float array -> float
(** Standard error of the mean, from the Bessel-corrected sample
    variance: [sqrt (sample_variance xs) / sqrt n]; 0 below two
    samples. *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [0,100], linear interpolation between
    order statistics. The input array is not modified. NaN samples carry
    no order information, so any NaN in [xs] raises [Invalid_argument]
    rather than silently skewing the order statistics. *)

val summarize : float array -> summary
(** Raises [Invalid_argument] on a NaN sample. *)

val weighted_mean : (float * float) array -> float
(** [weighted_mean [| (x, w); ... |]] with weights [w >= 0]. *)

(** Monotonic time for latency measurement and deadlines.

    [Unix.gettimeofday] is wall-clock time: NTP slews and steps make
    intervals derived from it negative or wildly skewed, which poisons
    latency percentiles and bench regression gates. Every duration in
    the serving stack is therefore measured against the OS monotonic
    clock (CLOCK_MONOTONIC via the bechamel stubs), which never jumps.

    Instants are opaque nanosecond counts from an arbitrary origin:
    only differences between two instants are meaningful — never
    compare an instant to a wall-clock time. *)

val now_ns : unit -> int64
(** Nanoseconds on the monotonic clock, from an unspecified origin. *)

val ns_after : int64 -> float -> int64
(** [ns_after t0 seconds] is the instant [seconds] after [t0]
    (saturating on overflow; [seconds] may be fractional). *)

val elapsed_us : int64 -> float
(** Microseconds elapsed since instant [t0]. *)

val elapsed_s : int64 -> float
(** Seconds elapsed since instant [t0]. *)

(** In-order single-core timing model (paper Table III).

    One instruction issues per cycle; loads and stores block on the memory
    hierarchy: L1D -> L2 -> L3 -> DRAM, with a hardware page-table walker
    fed by a 64-entry TLB and an 8 KB MMU (page-walk) cache. PT-Guard's
    delay is charged by a {!Guard_timing.t} on every read that reaches
    DRAM, tagged with the walk/data distinction the paper's isPTE wire
    carries (Figure 5).

    The paper's own analysis (Section IV-H) reduces slowdown to "extra MAC
    cycles per DRAM read x DRAM reads per instruction / baseline CPI";
    this model reproduces exactly those terms — L1 hits are pipelined
    (free), deeper hits and DRAM accesses stall. Page tables live in a
    synthetic physical region so leaf-PTE lines contend for L2/L3 space
    like real walks do. *)

type op =
  | Nonmem
  | Load of int64   (** virtual address *)
  | Store of int64

type config = {
  l1 : Cache.config;
  l2 : Cache.config;
  l3 : Cache.config;
  tlb_entries : int;
  mmu_cache : Cache.config;
  llc_miss_overhead : int;
      (** fixed request-path cycles added to every DRAM access (queues,
          on-chip network); calibrated against Figure 6's slowdowns *)
  page_shift : int;
      (** 12 for 4 KB pages (the paper's default); 21 models transparent
          2 MB huge pages — each TLB entry and leaf PTE then covers 512x
          more memory, shrinking walk traffic (Section III's remark) *)
  data_region_bytes : int64;
      (** virtual data addresses are folded into [0, data_region);
          page tables live above it *)
}

val default_config : config

type result = {
  instrs : int;
  cycles : int;
  ipc : float;
  llc_mpki : float;        (** demand data misses per kilo-instruction *)
  dram_reads : int;        (** data reads reaching DRAM *)
  pte_dram_reads : int;    (** walk reads reaching DRAM *)
  walks : int;             (** page-table walks performed *)
  tlb_miss_rate : float;
  guard_mac_computations : int;
  cache_writebacks : int;
      (** dirty victims written back to DRAM (posted: they update device
          state and activation counts but charge no stall) *)
}

type t

val create :
  ?config:config ->
  ?geometry:Ptg_dram.Geometry.t ->
  ?timing:Ptg_dram.Timing.t ->
  ?obs:Ptg_obs.Sink.t ->
  guard:Guard_timing.t ->
  unit ->
  t
(** With [obs], the core mirrors DRAM read counts and walks into
    [core_*] counters, propagates the sink to its caches (labelled
    [l1]/[l2]/[l3]/[mmu]), TLB and DRAM device, and records an
    [Mmu_cache_miss] trace event per upper-level walk miss. The caller's
    [guard] is {e not} rewired — build it with
    {!Guard_timing.of_config} [?obs] to observe it too. *)

val run : t -> instrs:int -> stream:(unit -> op) -> result
(** Execute [instrs] instructions drawn from [stream]. Can be called
    repeatedly (warm caches); statistics are per-call. *)

val on_walk : t -> (vpn:int64 -> leaf_line_addr:int64 -> unit) -> unit
(** Observer invoked on every page-table walk with the virtual page and
    the physical line address of the leaf PTE cacheline the walker read —
    the paper's "execution traces of Page Table Walks accessing [the]
    memory controller" (Section VI-F). *)

(** {2 Checkpointable state}

    The full mutable surface of the core: cache/TLB/MMU contents, the
    private DRAM device, the guard's counters and RNG, and the run
    counters. Walk listeners are structural and survive in the
    re-created core. *)

type state = {
  s_l1 : Cache.state;
  s_l2 : Cache.state;
  s_l3 : Cache.state;
  s_mmu : Cache.state;
  s_tlb : Tlb.state;
  s_dram : Ptg_dram.Dram.state;
  s_guard : Guard_timing.state;
  s_now : int;
  s_dram_reads : int;
  s_pte_dram_reads : int;
  s_walks : int;
  s_cache_writebacks : int;
}

val state : t -> state

val set_state : t -> state -> unit
(** Raises [Invalid_argument] when a section's geometry does not match
    this core's configuration. *)

(** Set-associative cache timing model (tags only, true-LRU).

    Data never lives here — functional data stays in the DRAM model; the
    caches only decide hit/miss/writeback so the timing simulation knows
    which accesses reach the memory controller (where PT-Guard acts). *)

type config = {
  size_bytes : int;
  assoc : int;
  line_bytes : int;     (** 64 throughout *)
  latency : int;        (** access latency in cycles *)
}

val l1d_32k : config
(** 32 KB, 8-way, 4 cycles (Table III). *)

val l2_256k : config
(** 256 KB, 16-way, 12 cycles. *)

val l3_2m : config
(** 2 MB, 16-way, 38 cycles. *)

val l3_1m : config
(** 1 MB/core multicore slice (Section VII-C). *)

val mmu_8k : config
(** 8 KB 4-way MMU (page-walk) cache. *)

type t

type result =
  | Hit
  | Miss of { writeback : int64 option }
      (** [writeback] is the dirty victim's line address, if any. *)

val create : ?obs:Ptg_obs.Sink.t -> ?name:string -> config -> t
(** With [obs], accesses and misses are mirrored into
    [cache_accesses{cache="name"}] / [cache_misses{cache="name"}]
    (default label ["cache"]). *)

val config : t -> config

val access : t -> addr:int64 -> is_write:bool -> result
(** Look up the line containing [addr]; on miss the line is installed
    (allocate-on-miss for reads and writes alike). Convenience wrapper
    around {!access_fast}, allocating the result. *)

val access_fast : t -> addr:int64 -> is_write:bool -> bool
(** Allocation-free {!access}: returns [true] on hit. On a miss that
    evicts a dirty line, the writeback is published through
    {!writeback_pending}/{!writeback_addr} and stays readable until the
    next access to this cache. *)

val writeback_pending : t -> bool
(** Whether the last {!access_fast} miss evicted a dirty line. *)

val writeback_addr : t -> int64
(** Line address of that dirty victim; meaningful only when
    {!writeback_pending} is [true]. *)

val probe : t -> addr:int64 -> bool
(** Non-intrusive lookup (no LRU update, no fill). *)

val invalidate : t -> addr:int64 -> unit

val accesses : t -> int
val misses : t -> int
val miss_rate : t -> float
val reset_stats : t -> unit

(** {2 Checkpointable state}

    The full mutable contents (tags, recency, dirty bits, counters, the
    published writeback) as plain data, for the snapshot subsystem.
    [set_state] requires a cache of identical geometry. *)

type state = {
  s_tags : int array;
  s_lrus : int array;
  s_dirty : Bytes.t;
  s_tick : int;
  s_accesses : int;
  s_misses : int;
  s_wb_pending : bool;
  s_wb_addr : int64;
}

val state : t -> state
(** Defensive copy of the current contents. *)

val set_state : t -> state -> unit
(** Overwrite the cache with captured contents. Raises
    [Invalid_argument] when array lengths do not match this geometry. *)

type kind =
  | Unprotected
  | Guarded of {
      config : Ptguard.Config.t;
      p_data_protected : float;
      rng : Ptg_util.Rng.t;
    }

type obs = {
  o_reads : Ptg_obs.Registry.counter;
  o_mac_computations : Ptg_obs.Registry.counter;
}

type t = {
  kind : kind;
  obs : obs option;
  mutable mac_computations : int;
  mutable reads : int;
}

let obs_of_sink sink =
  let c = Ptg_obs.Registry.counter (Ptg_obs.Sink.registry sink) in
  { o_reads = c "guard_reads"; o_mac_computations = c "guard_mac_computations" }

(* Shared global: never carries a sink (it would cross-talk between
   experiments); build guarded instances with [of_config ?obs] instead. *)
let unprotected = { kind = Unprotected; obs = None; mac_computations = 0; reads = 0 }

let of_config ?(p_data_protected = 0.005) ?obs config ~rng =
  {
    kind = Guarded { config; p_data_protected; rng };
    obs = Option.map obs_of_sink obs;
    mac_computations = 0;
    reads = 0;
  }

let read_penalty t ~is_pte =
  t.reads <- t.reads + 1;
  (match t.obs with None -> () | Some o -> Ptg_obs.Registry.incr o.o_reads);
  match t.kind with
  | Unprotected -> 0
  | Guarded { config; p_data_protected; rng } -> (
      let charge () =
        t.mac_computations <- t.mac_computations + 1;
        (match t.obs with
        | None -> ()
        | Some o -> Ptg_obs.Registry.incr o.o_mac_computations);
        config.Ptguard.Config.mac_latency_cycles
      in
      match config.Ptguard.Config.design with
      | Ptguard.Config.Baseline ->
          (* Section IV: the MAC is recomputed on every DRAM read. *)
          charge ()
      | Ptguard.Config.Optimized ->
          if is_pte then charge ()
          else if Ptg_util.Rng.bernoulli rng p_data_protected then charge ()
          else 0)

let mac_computations t = t.mac_computations
let reads_observed t = t.reads

type state = {
  s_mac_computations : int;
  s_reads : int;
  s_rng : int64 array option;
}

let state t =
  {
    s_mac_computations = t.mac_computations;
    s_reads = t.reads;
    s_rng =
      (match t.kind with
      | Unprotected -> None
      | Guarded { rng; _ } -> Some (Ptg_util.Rng.state rng));
  }

let set_state t s =
  (match (t.kind, s.s_rng) with
  | Unprotected, None -> ()
  | Guarded { rng; _ }, Some words -> Ptg_util.Rng.set_state rng words
  | Unprotected, Some _ ->
      invalid_arg "Guard_timing.set_state: rng state for an unprotected guard"
  | Guarded _, None ->
      invalid_arg "Guard_timing.set_state: guarded instance needs an rng state");
  t.mac_computations <- s.s_mac_computations;
  t.reads <- s.s_reads

type op = Nonmem | Load of int64 | Store of int64

type config = {
  l1 : Cache.config;
  l2 : Cache.config;
  l3 : Cache.config;
  tlb_entries : int;
  mmu_cache : Cache.config;
  llc_miss_overhead : int;
  page_shift : int;
  data_region_bytes : int64;
}

let default_config =
  {
    l1 = Cache.l1d_32k;
    l2 = Cache.l2_256k;
    l3 = Cache.l3_2m;
    tlb_entries = 64;
    mmu_cache = Cache.mmu_8k;
    llc_miss_overhead = 30;
    page_shift = 12;
    data_region_bytes = Int64.mul 3L (Int64.mul 1024L (Int64.mul 1024L 1024L));
  }

type result = {
  instrs : int;
  cycles : int;
  ipc : float;
  llc_mpki : float;
  dram_reads : int;
  pte_dram_reads : int;
  walks : int;
  tlb_miss_rate : float;
  guard_mac_computations : int;
  cache_writebacks : int;
}

type obs = {
  o_dram_reads : Ptg_obs.Registry.counter;
  o_pte_dram_reads : Ptg_obs.Registry.counter;
  o_walks : Ptg_obs.Registry.counter;
  o_cache_writebacks : Ptg_obs.Registry.counter;
  o_trace : Ptg_obs.Trace.t;
}

let obs_of_sink sink =
  let c = Ptg_obs.Registry.counter (Ptg_obs.Sink.registry sink) in
  {
    o_dram_reads = c "core_dram_reads";
    o_pte_dram_reads = c "core_pte_dram_reads";
    o_walks = c "core_walks";
    o_cache_writebacks = c "core_cache_writebacks";
    o_trace = Ptg_obs.Sink.trace sink;
  }

type t = {
  cfg : config;
  l1 : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t;
  tlb : Tlb.t;
  mmu : Cache.t;
  dram : Ptg_dram.Dram.t;
  guard : Guard_timing.t;
  obs : obs option;
  mutable now : int;
  mutable dram_reads : int;
  mutable pte_dram_reads : int;
  mutable walks : int;
  mutable cache_writebacks : int;
  mutable walk_listeners : (vpn:int64 -> leaf_line_addr:int64 -> unit) list;
}

let create ?(config = default_config) ?geometry ?timing ?obs ~guard () =
  {
    cfg = config;
    l1 = Cache.create ?obs ~name:"l1" config.l1;
    l2 = Cache.create ?obs ~name:"l2" config.l2;
    l3 = Cache.create ?obs ~name:"l3" config.l3;
    tlb = Tlb.create ~entries:config.tlb_entries ?obs ();
    mmu = Cache.create ?obs ~name:"mmu" config.mmu_cache;
    dram = Ptg_dram.Dram.create ?geometry ?timing ?obs ();
    guard;
    obs = Option.map obs_of_sink obs;
    now = 0;
    dram_reads = 0;
    pte_dram_reads = 0;
    walks = 0;
    cache_writebacks = 0;
    walk_listeners = [];
  }

(* Synthetic page-table layout: four physically-contiguous regions above
   the data fold. Each level's entry for a vpn sits at base + index * 8,
   which gives walks the same spatial locality real radix tables have
   (adjacent pages share leaf-PTE cachelines). *)
let leaf_pte_addr t vpn = Int64.add t.cfg.data_region_bytes (Int64.mul vpn 8L)

let upper_entry_addr t ~level vpn =
  (* level 1 = PD, 2 = PDPT, 3 = PML4. *)
  let index = Int64.shift_right_logical vpn (9 * level) in
  let base =
    Int64.add t.cfg.data_region_bytes
      (Int64.of_int (512 * 1024 * 1024 * level))
  in
  Int64.add base (Int64.mul index 8L)

(* A dirty victim published by the last miss is retired to DRAM as a
   posted write: it updates device state (row buffers, activation counts)
   but charges no stall — write buffers take it off the critical path. *)
let drain_writeback t cache =
  if Cache.writeback_pending cache then begin
    let addr = Cache.writeback_addr cache in
    ignore (Ptg_dram.Dram.access_fast t.dram ~now:t.now ~addr ~is_write:true);
    t.cache_writebacks <- t.cache_writebacks + 1;
    match t.obs with
    | None -> ()
    | Some o ->
        Ptg_obs.Registry.incr o.o_cache_writebacks;
        Ptg_obs.Trace.record o.o_trace (Ptg_obs.Trace.Cache_writeback { addr })
  end

(* A read or write climbing the hierarchy; returns the stall in cycles.
   L1 hits are fully pipelined (no stall); hardware-walker accesses skip
   L1 as real walkers do. Each level's dirty eviction is drained before
   the next level is probed, so DRAM sees a deterministic order:
   L1 writeback, L2 access, L2 writeback, L3 access, L3 writeback,
   demand read. *)
let mem_access t ~paddr ~is_write ~is_pte ~through_l1 =
  if through_l1 && Cache.access_fast t.l1 ~addr:paddr ~is_write then 0
  else begin
    if through_l1 then drain_writeback t t.l1;
    if Cache.access_fast t.l2 ~addr:paddr ~is_write:false then
      (Cache.config t.l2).Cache.latency
    else begin
      drain_writeback t t.l2;
      let l2_lat = (Cache.config t.l2).Cache.latency in
      if Cache.access_fast t.l3 ~addr:paddr ~is_write:false then
        l2_lat + (Cache.config t.l3).Cache.latency
      else begin
        drain_writeback t t.l3;
        let l3_lat = (Cache.config t.l3).Cache.latency in
        let dram_lat =
          Ptg_dram.Dram.access_fast t.dram ~now:t.now ~addr:paddr
            ~is_write:false
        in
        let guard_extra = Guard_timing.read_penalty t.guard ~is_pte in
        if is_pte then t.pte_dram_reads <- t.pte_dram_reads + 1
        else t.dram_reads <- t.dram_reads + 1;
        (match t.obs with
        | None -> ()
        | Some o ->
            Ptg_obs.Registry.incr
              (if is_pte then o.o_pte_dram_reads else o.o_dram_reads));
        l2_lat + l3_lat + t.cfg.llc_miss_overhead + dram_lat + guard_extra
      end
    end
  end

(* Page-table walk: three upper levels through the MMU cache, leaf PTE
   through the cache hierarchy (walker port: no L1). *)
let on_walk t f = t.walk_listeners <- f :: t.walk_listeners

let walk t vpn =
  t.walks <- t.walks + 1;
  (match t.obs with None -> () | Some o -> Ptg_obs.Registry.incr o.o_walks);
  List.iter
    (fun f ->
      f ~vpn ~leaf_line_addr:(Ptg_pte.Line.line_addr (leaf_pte_addr t vpn)))
    t.walk_listeners;
  let stall = ref 0 in
  for level = 3 downto 1 do
    let addr = upper_entry_addr t ~level vpn in
    if Cache.access_fast t.mmu ~addr ~is_write:false then
      (* Configured MMU-cache hit latency, not a hardcoded cycle (equal
         under the default preset, where latency = 1). *)
      stall := !stall + (Cache.config t.mmu).Cache.latency
    else begin
      (match t.obs with
      | None -> ()
      | Some o ->
          Ptg_obs.Trace.record o.o_trace
            (Ptg_obs.Trace.Mmu_cache_miss { addr }));
      stall := !stall + mem_access t ~paddr:addr ~is_write:false ~is_pte:true ~through_l1:false
    end
  done;
  let leaf = leaf_pte_addr t vpn in
  stall := !stall + mem_access t ~paddr:leaf ~is_write:false ~is_pte:true ~through_l1:false;
  Tlb.fill t.tlb ~vpn;
  !stall

let translate t vaddr =
  (* Fold virtual data addresses into the physical data region, keeping
     page and line locality. *)
  let a = Int64.rem vaddr t.cfg.data_region_bytes in
  if Int64.compare a 0L < 0 then Int64.add a t.cfg.data_region_bytes else a

let run t ~instrs ~stream =
  let start_cycles = t.now in
  let start_dram = t.dram_reads and start_pte = t.pte_dram_reads in
  let start_walks = t.walks in
  let start_wb = t.cache_writebacks in
  let start_mac = Guard_timing.mac_computations t.guard in
  Tlb.reset_stats t.tlb;
  for _ = 1 to instrs do
    t.now <- t.now + 1;
    match stream () with
    | Nonmem -> ()
    | Load vaddr | Store vaddr as op ->
        let is_write = match op with Store _ -> true | Load _ | Nonmem -> false in
        let paddr = translate t vaddr in
        let vpn = Int64.shift_right_logical paddr t.cfg.page_shift in
        let stall = ref 0 in
        if not (Tlb.lookup t.tlb ~vpn) then stall := !stall + walk t vpn;
        stall := !stall + mem_access t ~paddr ~is_write ~is_pte:false ~through_l1:true;
        t.now <- t.now + !stall
  done;
  let cycles = t.now - start_cycles in
  let dram_reads = t.dram_reads - start_dram in
  let pte_dram_reads = t.pte_dram_reads - start_pte in
  {
    instrs;
    cycles;
    ipc = float_of_int instrs /. float_of_int (max 1 cycles);
    llc_mpki = 1000.0 *. float_of_int dram_reads /. float_of_int instrs;
    dram_reads;
    pte_dram_reads;
    walks = t.walks - start_walks;
    tlb_miss_rate = Tlb.miss_rate t.tlb;
    guard_mac_computations = Guard_timing.mac_computations t.guard - start_mac;
    cache_writebacks = t.cache_writebacks - start_wb;
  }

type state = {
  s_l1 : Cache.state;
  s_l2 : Cache.state;
  s_l3 : Cache.state;
  s_mmu : Cache.state;
  s_tlb : Tlb.state;
  s_dram : Ptg_dram.Dram.state;
  s_guard : Guard_timing.state;
  s_now : int;
  s_dram_reads : int;
  s_pte_dram_reads : int;
  s_walks : int;
  s_cache_writebacks : int;
}

let state t =
  {
    s_l1 = Cache.state t.l1;
    s_l2 = Cache.state t.l2;
    s_l3 = Cache.state t.l3;
    s_mmu = Cache.state t.mmu;
    s_tlb = Tlb.state t.tlb;
    s_dram = Ptg_dram.Dram.state t.dram;
    s_guard = Guard_timing.state t.guard;
    s_now = t.now;
    s_dram_reads = t.dram_reads;
    s_pte_dram_reads = t.pte_dram_reads;
    s_walks = t.walks;
    s_cache_writebacks = t.cache_writebacks;
  }

let set_state t s =
  Cache.set_state t.l1 s.s_l1;
  Cache.set_state t.l2 s.s_l2;
  Cache.set_state t.l3 s.s_l3;
  Cache.set_state t.mmu s.s_mmu;
  Tlb.set_state t.tlb s.s_tlb;
  Ptg_dram.Dram.set_state t.dram s.s_dram;
  Guard_timing.set_state t.guard s.s_guard;
  t.now <- s.s_now;
  t.dram_reads <- s.s_dram_reads;
  t.pte_dram_reads <- s.s_pte_dram_reads;
  t.walks <- s.s_walks;
  t.cache_writebacks <- s.s_cache_writebacks

(** Fully-associative translation lookaside buffer (Table III: 64 entries),
    true-LRU, keyed by virtual page number. *)

type t

val create : ?entries:int -> ?obs:Ptg_obs.Sink.t -> unit -> t
(** Default 64 entries. With [obs], hits/misses are mirrored into
    [tlb_hits]/[tlb_misses] and each miss records a [Tlb_miss] trace
    event. *)

val lookup : t -> vpn:int64 -> bool
(** True on hit (updates LRU). A miss does {e not} install — call
    {!fill} after the walk completes. *)

val fill : t -> vpn:int64 -> unit
val flush : t -> unit
val hits : t -> int
val misses : t -> int
val miss_rate : t -> float
val reset_stats : t -> unit

(** {2 Checkpointable state} *)

type state = {
  s_entries : (int * bool * int) array;  (** vpn, valid, lru per entry *)
  s_tick : int;
  s_hits : int;
  s_misses : int;
  s_mru : int;
}

val state : t -> state
(** Defensive copy of the mutable contents (entries, recency, counters). *)

val set_state : t -> state -> unit
(** Overwrite the TLB with captured contents; raises [Invalid_argument]
    on an entry-count mismatch or out-of-range MRU index. *)

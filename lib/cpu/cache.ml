type config = { size_bytes : int; assoc : int; line_bytes : int; latency : int }

let l1d_32k = { size_bytes = 32 * 1024; assoc = 8; line_bytes = 64; latency = 4 }
let l2_256k = { size_bytes = 256 * 1024; assoc = 16; line_bytes = 64; latency = 12 }
let l3_2m = { size_bytes = 2 * 1024 * 1024; assoc = 16; line_bytes = 64; latency = 38 }
let l3_1m = { size_bytes = 1024 * 1024; assoc = 16; line_bytes = 64; latency = 38 }
let mmu_8k = { size_bytes = 8 * 1024; assoc = 4; line_bytes = 8; latency = 1 }

type obs = {
  o_accesses : Ptg_obs.Registry.counter;
  o_misses : Ptg_obs.Registry.counter;
}

(* Way state is stored structure-of-arrays: the lookup loop scans a
   contiguous int array of tags instead of chasing one record pointer per
   way. Tags are native ints — simulated physical addresses are
   nonnegative and far below 2^62, so [Int64.to_int] is exact — with -1
   as the "invalid way" sentinel (a real tag is always >= 0, so a tag
   match implies validity). Way w of set s lives at index
   [s * assoc + w]. *)
type t = {
  cfg : config;
  set_count : int;
  assoc : int;
  tags : int array;   (* -1 = invalid *)
  lrus : int array;
  dirty : Bytes.t;    (* '\001' = dirty *)
  (* Shift/mask decomposition of the address split; exact because
     [create] validates that line size and set count are powers of two
     and simulated physical addresses are non-negative. *)
  line_shift : int;
  set_shift : int;
  set_mask : int;
  obs : obs option;
  mutable tick : int;
  mutable accesses : int;
  mutable misses : int;
  (* Writeback protocol of [access_fast]: valid until the next access. *)
  mutable wb_pending : bool;
  mutable wb_addr : int64;
}

let obs_of_sink ~name sink =
  let labels = [ ("cache", name) ] in
  let c = Ptg_obs.Registry.counter (Ptg_obs.Sink.registry sink) ~labels in
  { o_accesses = c "cache_accesses"; o_misses = c "cache_misses" }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let r = ref 0 in
  while 1 lsl !r < n do incr r done;
  !r

let create ?obs ?(name = "cache") cfg =
  if cfg.size_bytes mod (cfg.assoc * cfg.line_bytes) <> 0 then
    invalid_arg "Cache.create: geometry does not divide";
  let set_count = cfg.size_bytes / (cfg.assoc * cfg.line_bytes) in
  if not (is_pow2 cfg.line_bytes) then
    invalid_arg "Cache.create: line_bytes must be a power of two";
  if not (is_pow2 set_count) then
    invalid_arg "Cache.create: set count must be a power of two";
  let ways = set_count * cfg.assoc in
  {
    cfg;
    set_count;
    assoc = cfg.assoc;
    tags = Array.make ways (-1);
    lrus = Array.make ways 0;
    dirty = Bytes.make ways '\000';
    line_shift = log2 cfg.line_bytes;
    set_shift = log2 set_count;
    set_mask = set_count - 1;
    obs = Option.map (obs_of_sink ~name) obs;
    tick = 0;
    accesses = 0;
    misses = 0;
    wb_pending = false;
    wb_addr = 0L;
  }

let config t = t.cfg

(* Single source of truth for the address split: every caller derives the
   set base index and the tag from the same shift/mask chain, so a
   writeback address can never be reconstructed from a different set
   index than the one the lookup used. *)
(* The line index is shifted in int64 before conversion: for any
   line_bytes >= 4 the result is below 2^62, so [Int64.to_int] is exact
   even for addresses with the top bits set (the simulators stay far
   below that, but the property tests exercise the full domain). *)
let line_index t addr =
  Int64.to_int (Int64.shift_right_logical addr t.line_shift)

let locate t addr =
  let line = line_index t addr in
  let set_idx = line land t.set_mask in
  let tag = line lsr t.set_shift in
  (set_idx * t.assoc, set_idx, tag)

type result = Hit | Miss of { writeback : int64 option }

let line_addr_of t ~set_idx ~tag =
  Int64.shift_left
    (Int64.of_int ((tag lsl t.set_shift) lor set_idx))
    t.line_shift

let access_fast t ~addr ~is_write =
  t.tick <- t.tick + 1;
  t.accesses <- t.accesses + 1;
  (match t.obs with None -> () | Some o -> Ptg_obs.Registry.incr o.o_accesses);
  t.wb_pending <- false;
  let line = line_index t addr in
  let set_idx = line land t.set_mask in
  let tag = line lsr t.set_shift in
  let base = set_idx * t.assoc in
  let tags = t.tags in
  let lrus = t.lrus in
  (* One pass computes the hit way and, in case of a miss, the victim:
     first invalid way if any, else the leftmost LRU minimum among the
     (then all-valid) ways — identical choice to the separate scans this
     fused loop replaced. The partial victim state is simply unused on a
     hit. *)
  let hit = ref (-1) in
  let invalid = ref (-1) in
  let best = ref (-1) in
  let best_lru = ref max_int in
  let i = ref 0 in
  while !hit < 0 && !i < t.assoc do
    let w_tag = Array.unsafe_get tags (base + !i) in
    if w_tag = tag then hit := base + !i
    else if w_tag < 0 then begin
      if !invalid < 0 then invalid := base + !i
    end
    else begin
      let w_lru = Array.unsafe_get lrus (base + !i) in
      if w_lru < !best_lru then begin
        best := base + !i;
        best_lru := w_lru
      end
    end;
    incr i
  done;
  if !hit >= 0 then begin
    Array.unsafe_set lrus !hit t.tick;
    if is_write then Bytes.unsafe_set t.dirty !hit '\001';
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (match t.obs with None -> () | Some o -> Ptg_obs.Registry.incr o.o_misses);
    let victim = if !invalid >= 0 then !invalid else !best in
    let old_tag = Array.unsafe_get tags victim in
    if old_tag >= 0 && Bytes.unsafe_get t.dirty victim = '\001' then begin
      t.wb_pending <- true;
      t.wb_addr <- line_addr_of t ~set_idx ~tag:old_tag
    end;
    Array.unsafe_set tags victim tag;
    Bytes.unsafe_set t.dirty victim (if is_write then '\001' else '\000');
    Array.unsafe_set lrus victim t.tick;
    false
  end

let writeback_pending t = t.wb_pending
let writeback_addr t = t.wb_addr

let access t ~addr ~is_write =
  if access_fast t ~addr ~is_write then Hit
  else Miss { writeback = (if t.wb_pending then Some t.wb_addr else None) }

let probe t ~addr =
  let base, _, tag = locate t addr in
  let found = ref false in
  for i = 0 to t.assoc - 1 do
    if t.tags.(base + i) = tag then found := true
  done;
  !found

let invalidate t ~addr =
  let base, _, tag = locate t addr in
  for i = 0 to t.assoc - 1 do
    if t.tags.(base + i) = tag then t.tags.(base + i) <- -1
  done

type state = {
  s_tags : int array;
  s_lrus : int array;
  s_dirty : Bytes.t;
  s_tick : int;
  s_accesses : int;
  s_misses : int;
  s_wb_pending : bool;
  s_wb_addr : int64;
}

let state t =
  {
    s_tags = Array.copy t.tags;
    s_lrus = Array.copy t.lrus;
    s_dirty = Bytes.copy t.dirty;
    s_tick = t.tick;
    s_accesses = t.accesses;
    s_misses = t.misses;
    s_wb_pending = t.wb_pending;
    s_wb_addr = t.wb_addr;
  }

let set_state t s =
  let ways = Array.length t.tags in
  if
    Array.length s.s_tags <> ways
    || Array.length s.s_lrus <> ways
    || Bytes.length s.s_dirty <> ways
  then invalid_arg "Cache.set_state: geometry mismatch";
  Array.blit s.s_tags 0 t.tags 0 ways;
  Array.blit s.s_lrus 0 t.lrus 0 ways;
  Bytes.blit s.s_dirty 0 t.dirty 0 ways;
  t.tick <- s.s_tick;
  t.accesses <- s.s_accesses;
  t.misses <- s.s_misses;
  t.wb_pending <- s.s_wb_pending;
  t.wb_addr <- s.s_wb_addr

let accesses t = t.accesses
let misses t = t.misses

let miss_rate t =
  if t.accesses = 0 then 0.0 else float_of_int t.misses /. float_of_int t.accesses

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0

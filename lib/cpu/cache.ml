type config = { size_bytes : int; assoc : int; line_bytes : int; latency : int }

let l1d_32k = { size_bytes = 32 * 1024; assoc = 8; line_bytes = 64; latency = 4 }
let l2_256k = { size_bytes = 256 * 1024; assoc = 16; line_bytes = 64; latency = 12 }
let l3_2m = { size_bytes = 2 * 1024 * 1024; assoc = 16; line_bytes = 64; latency = 38 }
let l3_1m = { size_bytes = 1024 * 1024; assoc = 16; line_bytes = 64; latency = 38 }
let mmu_8k = { size_bytes = 8 * 1024; assoc = 4; line_bytes = 8; latency = 1 }

type way = { mutable tag : int64; mutable valid : bool; mutable dirty : bool; mutable lru : int }

type obs = {
  o_accesses : Ptg_obs.Registry.counter;
  o_misses : Ptg_obs.Registry.counter;
}

type t = {
  cfg : config;
  sets : way array array;
  set_count : int;
  (* Shift/mask decomposition of the address split; exact because
     [create] validates that line size and set count are powers of two
     and simulated physical addresses are non-negative. *)
  line_shift : int;
  set_shift : int;
  set_mask : int;
  obs : obs option;
  mutable tick : int;
  mutable accesses : int;
  mutable misses : int;
  (* Writeback protocol of [access_fast]: valid until the next access. *)
  mutable wb_pending : bool;
  mutable wb_addr : int64;
}

let obs_of_sink ~name sink =
  let labels = [ ("cache", name) ] in
  let c = Ptg_obs.Registry.counter (Ptg_obs.Sink.registry sink) ~labels in
  { o_accesses = c "cache_accesses"; o_misses = c "cache_misses" }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let r = ref 0 in
  while 1 lsl !r < n do incr r done;
  !r

let create ?obs ?(name = "cache") cfg =
  if cfg.size_bytes mod (cfg.assoc * cfg.line_bytes) <> 0 then
    invalid_arg "Cache.create: geometry does not divide";
  let set_count = cfg.size_bytes / (cfg.assoc * cfg.line_bytes) in
  if not (is_pow2 cfg.line_bytes) then
    invalid_arg "Cache.create: line_bytes must be a power of two";
  if not (is_pow2 set_count) then
    invalid_arg "Cache.create: set count must be a power of two";
  {
    cfg;
    sets =
      Array.init set_count (fun _ ->
          Array.init cfg.assoc (fun _ ->
              { tag = 0L; valid = false; dirty = false; lru = 0 }));
    set_count;
    line_shift = log2 cfg.line_bytes;
    set_shift = log2 set_count;
    set_mask = set_count - 1;
    obs = Option.map (obs_of_sink ~name) obs;
    tick = 0;
    accesses = 0;
    misses = 0;
    wb_pending = false;
    wb_addr = 0L;
  }

let config t = t.cfg

(* Single source of truth for the address split: every caller derives the
   set, its index, and the tag from the same shift/mask chain, so a
   writeback address can never be reconstructed from a different set
   index than the one the lookup used. *)
let locate t addr =
  let line = Int64.shift_right_logical addr t.line_shift in
  let set_idx = Int64.to_int line land t.set_mask in
  let tag = Int64.shift_right_logical line t.set_shift in
  (t.sets.(set_idx), set_idx, tag)

type result = Hit | Miss of { writeback : int64 option }

let line_addr_of t ~set_idx ~tag =
  let line = Int64.logor (Int64.shift_left tag t.set_shift) (Int64.of_int set_idx) in
  Int64.shift_left line t.line_shift

let access_fast t ~addr ~is_write =
  t.tick <- t.tick + 1;
  t.accesses <- t.accesses + 1;
  (match t.obs with None -> () | Some o -> Ptg_obs.Registry.incr o.o_accesses);
  t.wb_pending <- false;
  let line = Int64.shift_right_logical addr t.line_shift in
  let set_idx = Int64.to_int line land t.set_mask in
  let tag = Int64.shift_right_logical line t.set_shift in
  let set = t.sets.(set_idx) in
  let n = Array.length set in
  let hit = ref (-1) in
  let i = ref 0 in
  while !hit < 0 && !i < n do
    let w = Array.unsafe_get set !i in
    if w.valid && Int64.equal w.tag tag then hit := !i;
    incr i
  done;
  if !hit >= 0 then begin
    let w = Array.unsafe_get set !hit in
    w.lru <- t.tick;
    if is_write then w.dirty <- true;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (match t.obs with None -> () | Some o -> Ptg_obs.Registry.incr o.o_misses);
    (* Victim: first invalid way if any, else true-LRU — the leftmost
       minimum, matching the strict-< fold this loop replaced. *)
    let victim = ref (-1) in
    let j = ref 0 in
    while !victim < 0 && !j < n do
      if not (Array.unsafe_get set !j).valid then victim := !j;
      incr j
    done;
    if !victim < 0 then begin
      let best = ref 0 in
      for k = 1 to n - 1 do
        if (Array.unsafe_get set k).lru < (Array.unsafe_get set !best).lru then
          best := k
      done;
      victim := !best
    end;
    let w = Array.unsafe_get set !victim in
    if w.valid && w.dirty then begin
      t.wb_pending <- true;
      t.wb_addr <- line_addr_of t ~set_idx ~tag:w.tag
    end;
    w.tag <- tag;
    w.valid <- true;
    w.dirty <- is_write;
    w.lru <- t.tick;
    false
  end

let writeback_pending t = t.wb_pending
let writeback_addr t = t.wb_addr

let access t ~addr ~is_write =
  if access_fast t ~addr ~is_write then Hit
  else Miss { writeback = (if t.wb_pending then Some t.wb_addr else None) }

let probe t ~addr =
  let set, _, tag = locate t addr in
  Array.exists (fun w -> w.valid && Int64.equal w.tag tag) set

let invalidate t ~addr =
  let set, _, tag = locate t addr in
  Array.iter (fun w -> if w.valid && Int64.equal w.tag tag then w.valid <- false) set

let accesses t = t.accesses
let misses t = t.misses

let miss_rate t =
  if t.accesses = 0 then 0.0 else float_of_int t.misses /. float_of_int t.accesses

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0

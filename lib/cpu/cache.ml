type config = { size_bytes : int; assoc : int; line_bytes : int; latency : int }

let l1d_32k = { size_bytes = 32 * 1024; assoc = 8; line_bytes = 64; latency = 4 }
let l2_256k = { size_bytes = 256 * 1024; assoc = 16; line_bytes = 64; latency = 12 }
let l3_2m = { size_bytes = 2 * 1024 * 1024; assoc = 16; line_bytes = 64; latency = 38 }
let l3_1m = { size_bytes = 1024 * 1024; assoc = 16; line_bytes = 64; latency = 38 }
let mmu_8k = { size_bytes = 8 * 1024; assoc = 4; line_bytes = 8; latency = 1 }

type way = { mutable tag : int64; mutable valid : bool; mutable dirty : bool; mutable lru : int }

type obs = {
  o_accesses : Ptg_obs.Registry.counter;
  o_misses : Ptg_obs.Registry.counter;
}

type t = {
  cfg : config;
  sets : way array array;
  set_count : int;
  obs : obs option;
  mutable tick : int;
  mutable accesses : int;
  mutable misses : int;
}

let obs_of_sink ~name sink =
  let labels = [ ("cache", name) ] in
  let c = Ptg_obs.Registry.counter (Ptg_obs.Sink.registry sink) ~labels in
  { o_accesses = c "cache_accesses"; o_misses = c "cache_misses" }

let create ?obs ?(name = "cache") cfg =
  if cfg.size_bytes mod (cfg.assoc * cfg.line_bytes) <> 0 then
    invalid_arg "Cache.create: geometry does not divide";
  let set_count = cfg.size_bytes / (cfg.assoc * cfg.line_bytes) in
  {
    cfg;
    sets =
      Array.init set_count (fun _ ->
          Array.init cfg.assoc (fun _ ->
              { tag = 0L; valid = false; dirty = false; lru = 0 }));
    set_count;
    obs = Option.map (obs_of_sink ~name) obs;
    tick = 0;
    accesses = 0;
    misses = 0;
  }

let config t = t.cfg

(* Single source of truth for the address split: every caller gets the
   set, its index, and the tag from the same divide/rem chain, so a
   writeback address can never be reconstructed from a different set
   index than the one the lookup used. *)
let locate t addr =
  let line = Int64.div addr (Int64.of_int t.cfg.line_bytes) in
  let set_idx = Int64.to_int (Int64.rem line (Int64.of_int t.set_count)) in
  let tag = Int64.div line (Int64.of_int t.set_count) in
  (t.sets.(set_idx), set_idx, tag)

type result = Hit | Miss of { writeback : int64 option }

let line_addr_of t ~set_idx ~tag =
  let line = Int64.add (Int64.mul tag (Int64.of_int t.set_count)) (Int64.of_int set_idx) in
  Int64.mul line (Int64.of_int t.cfg.line_bytes)

let access t ~addr ~is_write =
  t.tick <- t.tick + 1;
  t.accesses <- t.accesses + 1;
  (match t.obs with None -> () | Some o -> Ptg_obs.Registry.incr o.o_accesses);
  let set, set_idx, tag = locate t addr in
  match Array.find_opt (fun w -> w.valid && Int64.equal w.tag tag) set with
  | Some w ->
      w.lru <- t.tick;
      if is_write then w.dirty <- true;
      Hit
  | None ->
      t.misses <- t.misses + 1;
      (match t.obs with None -> () | Some o -> Ptg_obs.Registry.incr o.o_misses);
      (* Victim: invalid way if any, else true-LRU. *)
      let victim =
        match Array.find_opt (fun w -> not w.valid) set with
        | Some w -> w
        | None -> Array.fold_left (fun acc w -> if w.lru < acc.lru then w else acc) set.(0) set
      in
      let writeback =
        if victim.valid && victim.dirty then
          Some (line_addr_of t ~set_idx ~tag:victim.tag)
        else None
      in
      victim.tag <- tag;
      victim.valid <- true;
      victim.dirty <- is_write;
      victim.lru <- t.tick;
      Miss { writeback }

let probe t ~addr =
  let set, _, tag = locate t addr in
  Array.exists (fun w -> w.valid && Int64.equal w.tag tag) set

let invalidate t ~addr =
  let set, _, tag = locate t addr in
  Array.iter (fun w -> if w.valid && Int64.equal w.tag tag then w.valid <- false) set

let accesses t = t.accesses
let misses t = t.misses

let miss_rate t =
  if t.accesses = 0 then 0.0 else float_of_int t.misses /. float_of_int t.accesses

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0

type config = {
  cores : int;
  l1 : Cache.config;
  l2 : Cache.config;
  llc : Cache.config;
  tlb_entries : int;
  mmu_cache : Cache.config;
  llc_miss_overhead : int;
  channel_service : int;
  channels : int;
  mlp_expose : int;
  data_region_bytes : int64;
}

let default_config =
  {
    cores = 4;
    l1 = Cache.l1d_32k;
    l2 = Cache.l2_256k;
    llc = { Cache.l3_1m with size_bytes = 4 * 1024 * 1024 };
    tlb_entries = 64;
    mmu_cache = Cache.mmu_8k;
    llc_miss_overhead = 60;
    channel_service = 30;
    channels = 2;
    mlp_expose = 4;
    data_region_bytes = Int64.mul 3L (Int64.mul 1024L (Int64.mul 1024L 1024L));
  }

type per_core = { instrs : int; cycles : int; ipc : float; llc_mpki : float }

type result = {
  per_core : per_core array;
  total_cycles : int;
  aggregate_ipc : float;
  dram_reads : int;
  pte_dram_reads : int;
  avg_queue_delay : float;
  cache_writebacks : int;
  macs_verified : int;
  mac_verify_failures : int;
}

(* Engine-backed verification (optional): every PTE line that reaches DRAM
   gets real MAC'd content installed on first touch, and every PTE DRAM
   read from any core stages a verification into one shared
   [Engine.Batch] — the batch boundary is where verifications from
   different cores/workloads get amortized into one lane-parallel cipher
   pass. Purely additive: timing still comes from [Guard_timing] (which
   already models the pipelined MAC latency), so results with [verify]
   off are bit-identical to builds without this feature. *)
type verify = {
  engine : Ptguard.Engine.t;
  batch : Ptguard.Engine.Batch.t;
  store : (int64, Ptg_pte.Line.t) Hashtbl.t;
  mutable passed : int;
  mutable failed : int;
}

type core_state = {
  id : int;
  l1 : Cache.t;
  l2 : Cache.t;
  tlb : Tlb.t;
  mmu : Cache.t;
  mutable now : int;
  mutable done_instrs : int;
  mutable dram_reads : int;
}

type t = {
  cfg : config;
  cores : core_state array;
  llc : Cache.t;
  dram : Ptg_dram.Dram.t;
  guard : Guard_timing.t;
  channel_busy : int array;
  mutable read_counter : int;
  mutable dram_reads : int;
  mutable pte_dram_reads : int;
  mutable queue_delay_total : int;
  mutable queued_accesses : int;
  mutable cache_writebacks : int;
  verify : verify option;
}

let create ?(config = default_config) ?verify_engine ~guard () =
  {
    verify =
      Option.map
        (fun engine ->
          {
            engine;
            batch = Ptguard.Engine.Batch.create engine;
            store = Hashtbl.create 1024;
            passed = 0;
            failed = 0;
          })
        verify_engine;
    cfg = config;
    cores =
      Array.init config.cores (fun id ->
          {
            id;
            l1 = Cache.create config.l1;
            l2 = Cache.create config.l2;
            tlb = Tlb.create ~entries:config.tlb_entries ();
            mmu = Cache.create config.mmu_cache;
            now = 0;
            done_instrs = 0;
            dram_reads = 0;
          });
    llc = Cache.create config.llc;
    dram = Ptg_dram.Dram.create ~geometry:Ptg_dram.Geometry.ddr4_16gb ();
    guard;
    channel_busy = Array.make config.channels 0;
    read_counter = 0;
    dram_reads = 0;
    pte_dram_reads = 0;
    queue_delay_total = 0;
    queued_accesses = 0;
    cache_writebacks = 0;
  }

(* Cores address disjoint physical slices so they do not share data but do
   share LLC capacity and channel bandwidth — the SE-mode setup of the
   paper's multicore evaluation. *)
let core_base t core =
  Int64.mul (Int64.of_int core.id) (Int64.mul 4L t.cfg.data_region_bytes)

let translate t core vaddr =
  let a = Int64.rem vaddr t.cfg.data_region_bytes in
  let a = if Int64.compare a 0L < 0 then Int64.add a t.cfg.data_region_bytes else a in
  Int64.add a (core_base t core)

let pt_base t core = Int64.add (core_base t core) t.cfg.data_region_bytes
let leaf_pte_addr t core vpn = Int64.add (pt_base t core) (Int64.mul vpn 8L)

let upper_entry_addr t core ~level vpn =
  let index = Int64.shift_right_logical vpn (9 * level) in
  Int64.add
    (Int64.add (pt_base t core) (Int64.of_int (512 * 1024 * 1024 * level)))
    (Int64.mul index 8L)

(* First PTE touch installs deterministic MAC-embedded content; every PTE
   read stages a content verification. Address-derived PFNs keep the
   synthetic tables reproducible without consuming any RNG stream. *)
let verify_pte_read v ~paddr =
  let laddr = Ptg_pte.Line.line_addr paddr in
  let stored =
    match Hashtbl.find_opt v.store laddr with
    | Some l -> l
    | None ->
        let idx =
          Int64.to_int (Int64.logand (Int64.shift_right_logical laddr 6) 0xffffL)
        in
        let line =
          Array.init 8 (fun i ->
              Ptg_pte.X86.make ~writable:true ~user:true ~accessed:false
                ~pfn:(Int64.of_int (((idx lsl 3) lor i) land 0xfffff))
                ())
        in
        let s = Ptguard.Engine.process_write v.engine ~addr:laddr line in
        Hashtbl.replace v.store laddr s;
        s
  in
  Ptguard.Engine.Batch.stage v.batch ~addr:laddr ~is_pte:true stored (fun r ->
      match r.Ptguard.Engine.integrity with
      | Ptguard.Engine.Passed | Ptguard.Engine.Corrected _ ->
          v.passed <- v.passed + 1
      | _ -> v.failed <- v.failed + 1)

let dram_access t core ~paddr ~is_pte =
  (match t.verify with
  | Some v when is_pte -> verify_pte_read v ~paddr
  | Some _ | None -> ());
  let dram_lat =
    Ptg_dram.Dram.access_fast t.dram ~now:core.now ~addr:paddr ~is_write:false
  in
  let chan = Ptg_dram.Dram.last_channel t.dram mod t.cfg.channels in
  let wait = max 0 (t.channel_busy.(chan) - core.now) in
  t.channel_busy.(chan) <- max t.channel_busy.(chan) core.now + t.cfg.channel_service;
  t.queue_delay_total <- t.queue_delay_total + wait;
  t.queued_accesses <- t.queued_accesses + 1;
  let guard_extra = Guard_timing.read_penalty t.guard ~is_pte in
  (* The paper's multicore cores are out-of-order: overlapping misses hide
     the controller's pipelined MAC latency except on reads at the head of
     a dependence chain — modeled as 1 exposed read in [mlp_expose]. *)
  t.read_counter <- t.read_counter + 1;
  let guard_extra =
    if t.read_counter mod t.cfg.mlp_expose = 0 then guard_extra else 0
  in
  if is_pte then t.pte_dram_reads <- t.pte_dram_reads + 1
  else begin
    t.dram_reads <- t.dram_reads + 1;
    core.dram_reads <- core.dram_reads + 1
  end;
  wait + t.cfg.llc_miss_overhead + dram_lat + guard_extra

(* Posted writebacks: dirty victims update DRAM device state but skip the
   channel-queue model and charge no stall (write buffers absorb them). *)
let drain_writeback t core cache =
  if Cache.writeback_pending cache then begin
    ignore
      (Ptg_dram.Dram.access_fast t.dram ~now:core.now
         ~addr:(Cache.writeback_addr cache) ~is_write:true);
    t.cache_writebacks <- t.cache_writebacks + 1
  end

let mem_access t core ~paddr ~is_write ~is_pte ~through_l1 =
  if through_l1 && Cache.access_fast core.l1 ~addr:paddr ~is_write then 0
  else begin
    if through_l1 then drain_writeback t core core.l1;
    if Cache.access_fast core.l2 ~addr:paddr ~is_write:false then
      (Cache.config core.l2).Cache.latency
    else begin
      drain_writeback t core core.l2;
      let l2_lat = (Cache.config core.l2).Cache.latency in
      if Cache.access_fast t.llc ~addr:paddr ~is_write:false then
        l2_lat + (Cache.config t.llc).Cache.latency
      else begin
        drain_writeback t core t.llc;
        l2_lat + (Cache.config t.llc).Cache.latency
        + dram_access t core ~paddr ~is_pte
      end
    end
  end

let walk t core vpn =
  let stall = ref 0 in
  for level = 3 downto 1 do
    let addr = upper_entry_addr t core ~level vpn in
    if Cache.access_fast core.mmu ~addr ~is_write:false then
      stall := !stall + (Cache.config core.mmu).Cache.latency
    else
      stall := !stall + mem_access t core ~paddr:addr ~is_write:false ~is_pte:true ~through_l1:false
  done;
  stall :=
    !stall
    + mem_access t core ~paddr:(leaf_pte_addr t core vpn) ~is_write:false
        ~is_pte:true ~through_l1:false;
  Tlb.fill core.tlb ~vpn;
  !stall

let step t core op =
  core.now <- core.now + 1;
  (match op with
  | Core.Nonmem -> ()
  | Core.Load vaddr | Core.Store vaddr ->
      let is_write = match op with Core.Store _ -> true | _ -> false in
      let paddr = translate t core vaddr in
      let vpn = Int64.shift_right_logical paddr 12 in
      let stall = ref 0 in
      if not (Tlb.lookup core.tlb ~vpn) then stall := !stall + walk t core vpn;
      stall := !stall + mem_access t core ~paddr ~is_write ~is_pte:false ~through_l1:true;
      core.now <- core.now + !stall);
  core.done_instrs <- core.done_instrs + 1

let run t ~instrs_per_core ~streams =
  if Array.length streams <> t.cfg.cores then
    invalid_arg "Multicore.run: need one stream per core";
  let total = t.cfg.cores * instrs_per_core in
  let ncores = Array.length t.cores in
  for _ = 1 to total do
    (* Advance the core that is earliest in global time and not done —
       leftmost minimum, same pick as the option-accumulating scan this
       index loop replaced. *)
    let next = ref (-1) in
    for i = 0 to ncores - 1 do
      let c = t.cores.(i) in
      if c.done_instrs < instrs_per_core
         && (!next < 0 || c.now < t.cores.(!next).now)
      then next := i
    done;
    if !next >= 0 then begin
      let c = t.cores.(!next) in
      step t c (streams.(c.id) ())
    end
  done;
  let total_cycles = Array.fold_left (fun acc c -> max acc c.now) 0 t.cores in
  (* Resolve any ragged final batch before reporting. *)
  (match t.verify with
  | None -> ()
  | Some v -> Ptguard.Engine.Batch.flush v.batch);
  {
    per_core =
      Array.map
        (fun c ->
          {
            instrs = c.done_instrs;
            cycles = c.now;
            ipc = float_of_int c.done_instrs /. float_of_int (max 1 c.now);
            llc_mpki = 1000.0 *. float_of_int c.dram_reads /. float_of_int (max 1 c.done_instrs);
          })
        t.cores;
    total_cycles;
    aggregate_ipc = float_of_int total /. float_of_int (max 1 total_cycles);
    dram_reads = t.dram_reads;
    pte_dram_reads = t.pte_dram_reads;
    avg_queue_delay =
      (if t.queued_accesses = 0 then 0.0
       else float_of_int t.queue_delay_total /. float_of_int t.queued_accesses);
    cache_writebacks = t.cache_writebacks;
    macs_verified = (match t.verify with None -> 0 | Some v -> v.passed);
    mac_verify_failures = (match t.verify with None -> 0 | Some v -> v.failed);
  }

type core_snapshot = {
  sc_l1 : Cache.state;
  sc_l2 : Cache.state;
  sc_tlb : Tlb.state;
  sc_mmu : Cache.state;
  sc_now : int;
  sc_done_instrs : int;
  sc_dram_reads : int;
}

type verify_snapshot = {
  sv_engine : Ptguard.Engine.state;
  sv_store : (int64 * Ptg_pte.Line.t) list; (* address-sorted *)
  sv_passed : int;
  sv_failed : int;
}

type state = {
  s_cores : core_snapshot array;
  s_llc : Cache.state;
  s_dram : Ptg_dram.Dram.state;
  s_guard : Guard_timing.state;
  s_channel_busy : int array;
  s_read_counter : int;
  s_dram_reads : int;
  s_pte_dram_reads : int;
  s_queue_delay_total : int;
  s_queued_accesses : int;
  s_cache_writebacks : int;
  s_verify : verify_snapshot option;
}

let state t =
  (* Any staged verifications are resolved first so the snapshot never has
     to encode half-batched engine work. *)
  (match t.verify with
  | None -> ()
  | Some v -> Ptguard.Engine.Batch.flush v.batch);
  {
    s_cores =
      Array.map
        (fun c ->
          {
            sc_l1 = Cache.state c.l1;
            sc_l2 = Cache.state c.l2;
            sc_tlb = Tlb.state c.tlb;
            sc_mmu = Cache.state c.mmu;
            sc_now = c.now;
            sc_done_instrs = c.done_instrs;
            sc_dram_reads = c.dram_reads;
          })
        t.cores;
    s_llc = Cache.state t.llc;
    s_dram = Ptg_dram.Dram.state t.dram;
    s_guard = Guard_timing.state t.guard;
    s_channel_busy = Array.copy t.channel_busy;
    s_read_counter = t.read_counter;
    s_dram_reads = t.dram_reads;
    s_pte_dram_reads = t.pte_dram_reads;
    s_queue_delay_total = t.queue_delay_total;
    s_queued_accesses = t.queued_accesses;
    s_cache_writebacks = t.cache_writebacks;
    s_verify =
      Option.map
        (fun v ->
          {
            sv_engine = Ptguard.Engine.state v.engine;
            sv_store =
              Hashtbl.fold
                (fun addr line acc -> (addr, Ptg_pte.Line.copy line) :: acc)
                v.store []
              |> List.sort (fun (a, _) (b, _) -> Int64.compare a b);
            sv_passed = v.passed;
            sv_failed = v.failed;
          })
        t.verify;
  }

let set_state t s =
  if Array.length s.s_cores <> Array.length t.cores then
    invalid_arg "Multicore.set_state: core count mismatch";
  if Array.length s.s_channel_busy <> Array.length t.channel_busy then
    invalid_arg "Multicore.set_state: channel count mismatch";
  (match (t.verify, s.s_verify) with
  | None, None | Some _, Some _ -> ()
  | _ -> invalid_arg "Multicore.set_state: verify-engine presence mismatch");
  Array.iteri
    (fun i c ->
      let sc = s.s_cores.(i) in
      Cache.set_state c.l1 sc.sc_l1;
      Cache.set_state c.l2 sc.sc_l2;
      Tlb.set_state c.tlb sc.sc_tlb;
      Cache.set_state c.mmu sc.sc_mmu;
      c.now <- sc.sc_now;
      c.done_instrs <- sc.sc_done_instrs;
      c.dram_reads <- sc.sc_dram_reads)
    t.cores;
  Cache.set_state t.llc s.s_llc;
  Ptg_dram.Dram.set_state t.dram s.s_dram;
  Guard_timing.set_state t.guard s.s_guard;
  Array.blit s.s_channel_busy 0 t.channel_busy 0 (Array.length t.channel_busy);
  t.read_counter <- s.s_read_counter;
  t.dram_reads <- s.s_dram_reads;
  t.pte_dram_reads <- s.s_pte_dram_reads;
  t.queue_delay_total <- s.s_queue_delay_total;
  t.queued_accesses <- s.s_queued_accesses;
  t.cache_writebacks <- s.s_cache_writebacks;
  match (t.verify, s.s_verify) with
  | Some v, Some sv ->
      Ptguard.Engine.set_state v.engine sv.sv_engine;
      Hashtbl.reset v.store;
      List.iter
        (fun (addr, line) -> Hashtbl.replace v.store addr (Ptg_pte.Line.copy line))
        sv.sv_store;
      v.passed <- sv.sv_passed;
      v.failed <- sv.sv_failed
  | _ -> ()

(** Four-core timing model for the Section VII-C study.

    Private L1/L2 per core, a shared LLC (1 MB per core), and shared
    memory channels with a contention model: each DRAM access occupies a
    channel for a fixed service time, and later requests queue behind it.
    This reproduces the paper's observation that multicore contention
    inflates the {e base} memory latency, shrinking PT-Guard's constant
    MAC delay in relative terms (0.5% average vs 1.3% single-core). *)

type config = {
  cores : int;                  (** 4 in the paper *)
  l1 : Cache.config;
  l2 : Cache.config;
  llc : Cache.config;           (** shared; 1 MB x cores *)
  tlb_entries : int;
  mmu_cache : Cache.config;
  llc_miss_overhead : int;
  channel_service : int;        (** cycles a DRAM access occupies its channel *)
  channels : int;               (** 2 (16 GB DDR4, Section VII-C) *)
  mlp_expose : int;
      (** out-of-order latency tolerance: the integrity engine's delay
          reaches the critical path on 1 read in [mlp_expose] (default 4),
          approximating the paper's O3 cores *)
  data_region_bytes : int64;
}

val default_config : config

type per_core = {
  instrs : int;
  cycles : int;
  ipc : float;
  llc_mpki : float;
}

type result = {
  per_core : per_core array;
  total_cycles : int;           (** cycles until the last core finished *)
  aggregate_ipc : float;        (** total instructions / total_cycles *)
  dram_reads : int;
  pte_dram_reads : int;
  avg_queue_delay : float;      (** mean channel queueing per DRAM access *)
  cache_writebacks : int;
      (** dirty victims written back to DRAM across all cores (posted:
          no stall, no channel occupancy, but they touch row buffers) *)
  macs_verified : int;
      (** engine-backed verification mode only: PTE reads whose MAC
          verified (0 when no [verify_engine] was given) *)
  mac_verify_failures : int;
      (** PTE reads whose staged verification failed outright *)
}

type t

val create :
  ?config:config -> ?verify_engine:Ptguard.Engine.t -> guard:Guard_timing.t -> unit -> t
(** With [verify_engine], the scheduler runs {e content-level} MAC
    verification on top of the timing model: the first DRAM touch of each
    PTE line installs deterministic MAC-embedded content through the
    engine, and every PTE DRAM read from any core stages a verification
    into a shared {!Ptguard.Engine.Batch} (flushed at batch boundaries
    and at the end of the run — this is where verifications from
    different cores are amortized into lane-parallel cipher passes).
    Timing is unchanged: the MAC {e latency} is already modeled by
    [guard], so all cycle/IPC numbers are identical with or without
    [verify_engine]; only [macs_verified]/[mac_verify_failures] differ. *)

val run : t -> instrs_per_core:int -> streams:(unit -> Core.op) array -> result
(** [streams] must have length [config.cores]; each core executes
    [instrs_per_core] instructions from its own stream, interleaved in
    (approximate) global time order. *)

(** {2 Checkpointable state}

    Per-core cache/TLB/MMU contents and counters, the shared LLC and
    DRAM device, channel occupancy, and (when engine-backed verification
    is on) the engine state plus the installed PTE store. Capturing
    state flushes any staged verification batch first. *)

type core_snapshot = {
  sc_l1 : Cache.state;
  sc_l2 : Cache.state;
  sc_tlb : Tlb.state;
  sc_mmu : Cache.state;
  sc_now : int;
  sc_done_instrs : int;
  sc_dram_reads : int;
}

type verify_snapshot = {
  sv_engine : Ptguard.Engine.state;
  sv_store : (int64 * Ptg_pte.Line.t) list;  (** address-sorted *)
  sv_passed : int;
  sv_failed : int;
}

type state = {
  s_cores : core_snapshot array;
  s_llc : Cache.state;
  s_dram : Ptg_dram.Dram.state;
  s_guard : Guard_timing.state;
  s_channel_busy : int array;
  s_read_counter : int;
  s_dram_reads : int;
  s_pte_dram_reads : int;
  s_queue_delay_total : int;
  s_queued_accesses : int;
  s_cache_writebacks : int;
  s_verify : verify_snapshot option;
}

val state : t -> state

val set_state : t -> state -> unit
(** Raises [Invalid_argument] on a core/channel-count or verify-presence
    mismatch. *)

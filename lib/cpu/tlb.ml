type entry = { mutable vpn : int64; mutable valid : bool; mutable lru : int }

type obs = {
  o_hits : Ptg_obs.Registry.counter;
  o_misses : Ptg_obs.Registry.counter;
  o_trace : Ptg_obs.Trace.t;
}

type t = {
  entries : entry array;
  obs : obs option;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let obs_of_sink sink =
  let c = Ptg_obs.Registry.counter (Ptg_obs.Sink.registry sink) in
  {
    o_hits = c "tlb_hits";
    o_misses = c "tlb_misses";
    o_trace = Ptg_obs.Sink.trace sink;
  }

let create ?(entries = 64) ?obs () =
  if entries < 1 then invalid_arg "Tlb.create";
  {
    entries = Array.init entries (fun _ -> { vpn = 0L; valid = false; lru = 0 });
    obs = Option.map obs_of_sink obs;
    tick = 0;
    hits = 0;
    misses = 0;
  }

let lookup t ~vpn =
  t.tick <- t.tick + 1;
  match Array.find_opt (fun e -> e.valid && Int64.equal e.vpn vpn) t.entries with
  | Some e ->
      e.lru <- t.tick;
      t.hits <- t.hits + 1;
      (match t.obs with None -> () | Some o -> Ptg_obs.Registry.incr o.o_hits);
      true
  | None ->
      t.misses <- t.misses + 1;
      (match t.obs with
      | None -> ()
      | Some o ->
          Ptg_obs.Registry.incr o.o_misses;
          Ptg_obs.Trace.record o.o_trace (Ptg_obs.Trace.Tlb_miss { vpn }));
      false

let fill t ~vpn =
  t.tick <- t.tick + 1;
  if not (Array.exists (fun e -> e.valid && Int64.equal e.vpn vpn) t.entries) then begin
    let victim =
      match Array.find_opt (fun e -> not e.valid) t.entries with
      | Some e -> e
      | None ->
          Array.fold_left
            (fun acc e -> if e.lru < acc.lru then e else acc)
            t.entries.(0) t.entries
    in
    victim.vpn <- vpn;
    victim.valid <- true;
    victim.lru <- t.tick
  end

let flush t = Array.iter (fun e -> e.valid <- false) t.entries
let hits t = t.hits
let misses t = t.misses

let miss_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.misses /. float_of_int total

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

(* VPNs are stored as native ints (exact for the nonnegative sub-2^62
   addresses the simulators generate), keeping the lookup loop free of
   boxed-int64 loads and comparisons. *)
type entry = { mutable vpn : int; mutable valid : bool; mutable lru : int }

type obs = {
  o_hits : Ptg_obs.Registry.counter;
  o_misses : Ptg_obs.Registry.counter;
  o_trace : Ptg_obs.Trace.t;
}

type t = {
  entries : entry array;
  obs : obs option;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  (* Index of the most recently hit/filled entry. Pure fast path: entries
     are unique by vpn (fill never duplicates), so when the MRU entry
     matches, the scan would have found exactly that entry. *)
  mutable mru : int;
}

let obs_of_sink sink =
  let c = Ptg_obs.Registry.counter (Ptg_obs.Sink.registry sink) in
  {
    o_hits = c "tlb_hits";
    o_misses = c "tlb_misses";
    o_trace = Ptg_obs.Sink.trace sink;
  }

let create ?(entries = 64) ?obs () =
  if entries < 1 then invalid_arg "Tlb.create";
  {
    entries = Array.init entries (fun _ -> { vpn = 0; valid = false; lru = 0 });
    obs = Option.map obs_of_sink obs;
    tick = 0;
    hits = 0;
    misses = 0;
    mru = 0;
  }

(* Index of the valid entry holding [vpn], or -1. Runs once per
   instruction, so this is a closure-free index loop. *)
let find t vpn =
  let entries = t.entries in
  let n = Array.length entries in
  let found = ref (-1) in
  let i = ref 0 in
  while !found < 0 && !i < n do
    let e = Array.unsafe_get entries !i in
    if e.valid && e.vpn = vpn then found := !i;
    incr i
  done;
  !found

let lookup t ~vpn =
  t.tick <- t.tick + 1;
  let vpn = Int64.to_int vpn in
  (* MRU shortcut: page locality makes consecutive lookups overwhelmingly
     hit the same entry; skip the associative scan when they do. *)
  let mru_e = Array.unsafe_get t.entries t.mru in
  let idx =
    if mru_e.valid && mru_e.vpn = vpn then t.mru else find t vpn
  in
  if idx >= 0 then begin
    (Array.unsafe_get t.entries idx).lru <- t.tick;
    t.mru <- idx;
    t.hits <- t.hits + 1;
    (match t.obs with None -> () | Some o -> Ptg_obs.Registry.incr o.o_hits);
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (match t.obs with
    | None -> ()
    | Some o ->
        Ptg_obs.Registry.incr o.o_misses;
        Ptg_obs.Trace.record o.o_trace
          (Ptg_obs.Trace.Tlb_miss { vpn = Int64.of_int vpn }));
    false
  end

let fill t ~vpn =
  t.tick <- t.tick + 1;
  let vpn = Int64.to_int vpn in
  if find t vpn < 0 then begin
    let entries = t.entries in
    let n = Array.length entries in
    (* First invalid entry if any, else the leftmost LRU minimum —
       identical victim choice to the fold this replaced. *)
    let victim = ref (-1) in
    let j = ref 0 in
    while !victim < 0 && !j < n do
      if not (Array.unsafe_get entries !j).valid then victim := !j;
      incr j
    done;
    if !victim < 0 then begin
      let best = ref 0 in
      for k = 1 to n - 1 do
        if (Array.unsafe_get entries k).lru < (Array.unsafe_get entries !best).lru
        then best := k
      done;
      victim := !best
    end;
    let e = Array.unsafe_get entries !victim in
    e.vpn <- vpn;
    e.valid <- true;
    e.lru <- t.tick;
    t.mru <- !victim
  end

let flush t = Array.iter (fun e -> e.valid <- false) t.entries
let hits t = t.hits
let misses t = t.misses

type state = {
  s_entries : (int * bool * int) array; (* vpn, valid, lru *)
  s_tick : int;
  s_hits : int;
  s_misses : int;
  s_mru : int;
}

let state t =
  {
    s_entries = Array.map (fun e -> (e.vpn, e.valid, e.lru)) t.entries;
    s_tick = t.tick;
    s_hits = t.hits;
    s_misses = t.misses;
    s_mru = t.mru;
  }

let set_state t s =
  let n = Array.length t.entries in
  if Array.length s.s_entries <> n then
    invalid_arg "Tlb.set_state: entry count mismatch";
  if s.s_mru < 0 || s.s_mru >= n then invalid_arg "Tlb.set_state: mru";
  Array.iteri
    (fun i (vpn, valid, lru) ->
      let e = t.entries.(i) in
      e.vpn <- vpn;
      e.valid <- valid;
      e.lru <- lru)
    s.s_entries;
  t.tick <- s.s_tick;
  t.hits <- s.s_hits;
  t.misses <- s.s_misses;
  t.mru <- s.s_mru

let miss_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.misses /. float_of_int total

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0

(** Timing-only model of PT-Guard's memory-controller delay.

    The performance experiments (Figures 6 and 7) need to know {e when} a
    DRAM read pays the MAC-computation latency — not the MAC values
    themselves. This module captures the classification rules of the two
    designs without running the cipher, which keeps billion-access timing
    runs fast. The functional engine ({!Ptguard.Engine}) is the
    bit-accurate counterpart used by the correction and attack
    experiments; the unit tests cross-check the two classifications. *)

type t

val unprotected : t
(** The no-integrity baseline: zero added latency. *)

val of_config :
  ?p_data_protected:float ->
  ?obs:Ptg_obs.Sink.t ->
  Ptguard.Config.t ->
  rng:Ptg_util.Rng.t ->
  t
(** [p_data_protected] is the probability that a {e data} line read from
    DRAM carries an embedded MAC whose check cannot be skipped:
    - [Baseline] design: ignored — every DRAM read computes the MAC;
    - [Optimized]: only reads whose identifier matches compute it; the
      paper measures < 2% of DRAM reads in total, of which page walks are
      the majority, so the default for data reads is 0.005.

    With [obs], reads and charged MAC computations are mirrored into
    [guard_reads]/[guard_mac_computations]; the shared {!unprotected}
    instance never carries a sink. *)

val read_penalty : t -> is_pte:bool -> int
(** Extra cycles charged to this DRAM read. *)

val mac_computations : t -> int
(** Number of reads that paid the MAC latency so far. *)

val reads_observed : t -> int

(** {2 Checkpointable state}

    Counters plus the guarded instance's RNG stream ([None] for
    {!unprotected}). The configuration itself is structural — a restored
    guard must be built with the same design and probabilities. *)

type state = {
  s_mac_computations : int;
  s_reads : int;
  s_rng : int64 array option;
}

val state : t -> state

val set_state : t -> state -> unit
(** Raises [Invalid_argument] when the RNG presence does not match the
    instance's kind. *)

type t = { hi : int64; lo : int64 }

let zero = { hi = 0L; lo = 0L }
let make ~hi ~lo = { hi; lo }
let logxor a b = { hi = Int64.logxor a.hi b.hi; lo = Int64.logxor a.lo b.lo }
let logand a b = { hi = Int64.logand a.hi b.hi; lo = Int64.logand a.lo b.lo }
let lognot a = { hi = Int64.lognot a.hi; lo = Int64.lognot a.lo }
let equal a b = Int64.equal a.hi b.hi && Int64.equal a.lo b.lo

let compare a b =
  let c = Int64.unsigned_compare a.hi b.hi in
  if c <> 0 then c else Int64.unsigned_compare a.lo b.lo

let of_int64 lo = { hi = 0L; lo }

let popcount a = Ptg_util.Bits.popcount a.hi + Ptg_util.Bits.popcount a.lo
let hamming a b = popcount (logxor a b)

let rotr1 a =
  let lo_bit0 = Int64.logand a.lo 1L in
  let hi_bit0 = Int64.logand a.hi 1L in
  {
    hi = Int64.logor (Int64.shift_right_logical a.hi 1) (Int64.shift_left lo_bit0 63);
    lo = Int64.logor (Int64.shift_right_logical a.lo 1) (Int64.shift_left hi_bit0 63);
  }

let shift_right_127 a = { hi = 0L; lo = Int64.shift_right_logical a.hi 63 }

let to_cells a =
  Array.init 16 (fun i ->
      let half, idx = if i < 8 then (a.hi, i) else (a.lo, i - 8) in
      Int64.to_int (Int64.logand (Int64.shift_right_logical half ((7 - idx) * 8)) 0xffL))

(* Allocation-free variants for the scratch-context cipher API: the
   destination array is caller-owned and reused across calls. *)
let fill_cells dst ~hi ~lo =
  if Array.length dst <> 16 then invalid_arg "Block128.fill_cells: length";
  for i = 0 to 7 do
    let sh = (7 - i) * 8 in
    dst.(i) <- Int64.to_int (Int64.logand (Int64.shift_right_logical hi sh) 0xffL);
    dst.(i + 8) <- Int64.to_int (Int64.logand (Int64.shift_right_logical lo sh) 0xffL)
  done

let to_cells_into a dst = fill_cells dst ~hi:a.hi ~lo:a.lo

(* Packs eight consecutive cells into one 64-bit half. Unlike [of_cells]
   this skips range validation: the cipher keeps cells within [0, 255] by
   construction (all cell ops are table lookups or 8-bit xors). *)
let pack_half cells off =
  let acc = ref 0L in
  for i = 0 to 7 do
    acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int cells.(off + i))
  done;
  !acc

let pack_hi cells = pack_half cells 0
let pack_lo cells = pack_half cells 8

let of_cells cells =
  if Array.length cells <> 16 then invalid_arg "Block128.of_cells: length";
  let pack off =
    let acc = ref 0L in
    for i = 0 to 7 do
      let c = cells.(off + i) in
      if c < 0 || c > 0xff then invalid_arg "Block128.of_cells: cell range";
      acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int c)
    done;
    !acc
  in
  { hi = pack 0; lo = pack 8 }

let to_hex a = Ptg_util.Bits.to_hex a.hi ^ Ptg_util.Bits.to_hex a.lo
let pp fmt a = Format.fprintf fmt "0x%s" (to_hex a)

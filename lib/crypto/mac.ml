type t = { hi32 : int64; lo : int64 }

let zero = { hi32 = 0L; lo = 0L }
let equal a b = Int64.equal a.hi32 b.hi32 && Int64.equal a.lo b.lo
let is_well_formed m = Int64.logand m.hi32 0xFFFFFFFF00000000L = 0L

let hamming a b =
  Ptg_util.Bits.hamming a.hi32 b.hi32 + Ptg_util.Bits.hamming a.lo b.lo

let soft_match ~k a b =
  if k < 0 then invalid_arg "Mac.soft_match: negative k";
  hamming a b <= k

let chunk line i =
  Block128.make ~hi:line.((2 * i) + 1) ~lo:line.(2 * i)

(* A_i binds the MAC to both the line's physical address and the chunk's
   position within the line. *)
let addr_block ~addr i = Block128.make ~hi:(Int64.of_int i) ~lo:addr

let fold key ~addr line =
  if Array.length line <> 8 then invalid_arg "Mac.compute: line must be 8 words";
  let acc = ref Block128.zero in
  for i = 0 to 3 do
    let a = addr_block ~addr i in
    let q = Qarma.encrypt key ~tweak:a (Block128.logxor (chunk line i) a) in
    acc := Block128.logxor !acc q
  done;
  !acc

let of_block (x : Block128.t) =
  { hi32 = Int64.logand x.Block128.hi 0xFFFFFFFFL; lo = x.Block128.lo }

let compute key ~addr line = of_block (fold key ~addr line)

(* Scratch-reusing fast path: same fold as [compute], but the chunk, A_i
   and cipher state never materialize as Block128 values — the halves flow
   through bare int64s into [Qarma.encrypt_raw]. Property-tested equal to
   [compute] on random keys/addresses/lines. *)
type ctx = Qarma.scratch

let ctx () = Qarma.scratch ()

let compute_with ctx key ~addr line =
  if Array.length line <> 8 then invalid_arg "Mac.compute: line must be 8 words";
  let acc_hi = ref 0L and acc_lo = ref 0L in
  for i = 0 to 3 do
    (* A_i = { hi = i; lo = addr }; plaintext = C_i xor A_i. *)
    let a_hi = Int64.of_int i in
    Qarma.encrypt_raw ctx key ~t_hi:a_hi ~t_lo:addr
      ~p_hi:(Int64.logxor line.((2 * i) + 1) a_hi)
      ~p_lo:(Int64.logxor line.(2 * i) addr);
    acc_hi := Int64.logxor !acc_hi (Qarma.out_hi ctx);
    acc_lo := Int64.logxor !acc_lo (Qarma.out_lo ctx)
  done;
  { hi32 = Int64.logand !acc_hi 0xFFFFFFFFL; lo = !acc_lo }

(* Batched fold: MAC j occupies cipher lanes [4j .. 4j+3] of a
   [Qarma.batch]; after one [encrypt_batch] over all lanes, each MAC is
   XOR-folded back from its four lanes. Requests beyond the context's
   capacity are processed in full-capacity chunks, so callers can hand
   over arbitrarily large (or ragged) request sets. *)
type batch_ctx = { qb : Qarma.batch; capacity : int }

let default_batch_capacity = 64

let batch_ctx ?(capacity = default_batch_capacity) () =
  if capacity < 1 then invalid_arg "Mac.batch_ctx: capacity";
  { qb = Qarma.batch ~capacity:(4 * capacity); capacity }

let batch_capacity c = c.capacity

let compute_batch ctx key ~n ~addrs ~lines =
  if n < 0 || n > Array.length addrs || n > Array.length lines then
    invalid_arg "Mac.compute_batch: n out of range";
  let out = Array.make n zero in
  let pos = ref 0 in
  while !pos < n do
    let m = min ctx.capacity (n - !pos) in
    for j = 0 to m - 1 do
      let addr = addrs.(!pos + j) and line = lines.(!pos + j) in
      if Array.length line <> 8 then
        invalid_arg "Mac.compute_batch: line must be 8 words";
      for i = 0 to 3 do
        (* Same per-chunk inputs as [compute_with]: A_i = {hi=i; lo=addr},
           plaintext = C_i xor A_i. *)
        let a_hi = Int64.of_int i in
        Qarma.set_lane ctx.qb ((4 * j) + i) ~t_hi:a_hi ~t_lo:addr
          ~p_hi:(Int64.logxor line.((2 * i) + 1) a_hi)
          ~p_lo:(Int64.logxor line.(2 * i) addr)
      done
    done;
    Qarma.encrypt_batch key ctx.qb ~n:(4 * m);
    for j = 0 to m - 1 do
      let acc_hi = ref 0L and acc_lo = ref 0L in
      for i = 0 to 3 do
        acc_hi := Int64.logxor !acc_hi (Qarma.lane_hi ctx.qb ((4 * j) + i));
        acc_lo := Int64.logxor !acc_lo (Qarma.lane_lo ctx.qb ((4 * j) + i))
      done;
      out.(!pos + j) <- { hi32 = Int64.logand !acc_hi 0xFFFFFFFFL; lo = !acc_lo }
    done;
    pos := !pos + m
  done;
  out

let compute_zero key = compute key ~addr:0L (Array.make 8 0L)

let truncate ~width m =
  if width < 1 || width > 96 then invalid_arg "Mac.truncate: width";
  if width >= 96 then m
  else if width > 64 then
    { m with hi32 = Int64.logand m.hi32 (Ptg_util.Bits.mask (width - 64)) }
  else { hi32 = 0L; lo = Int64.logand m.lo (Ptg_util.Bits.mask width) }

let split12 m =
  Array.init 8 (fun i ->
      let lo_bit = i * 12 in
      let piece =
        if lo_bit + 12 <= 64 then
          Ptg_util.Bits.extract m.lo ~lo:lo_bit ~hi:(lo_bit + 11)
        else if lo_bit >= 64 then
          Ptg_util.Bits.extract m.hi32 ~lo:(lo_bit - 64) ~hi:(lo_bit - 64 + 11)
        else begin
          (* Slice straddling the 64-bit boundary (slice 5: bits 60..71). *)
          let low_part = Ptg_util.Bits.extract m.lo ~lo:lo_bit ~hi:63 in
          let nlow = 64 - lo_bit in
          let high_part = Ptg_util.Bits.extract m.hi32 ~lo:0 ~hi:(11 - nlow) in
          Int64.logor low_part (Int64.shift_left high_part nlow)
        end
      in
      Int64.to_int piece)

let join12 pieces =
  if Array.length pieces <> 8 then invalid_arg "Mac.join12: need 8 pieces";
  let lo = ref 0L and hi32 = ref 0L in
  Array.iteri
    (fun i p ->
      if p < 0 || p > 0xfff then invalid_arg "Mac.join12: piece out of range";
      let v = Int64.of_int p in
      let lo_bit = i * 12 in
      if lo_bit + 12 <= 64 then lo := Int64.logor !lo (Int64.shift_left v lo_bit)
      else if lo_bit >= 64 then
        hi32 := Int64.logor !hi32 (Int64.shift_left v (lo_bit - 64))
      else begin
        let nlow = 64 - lo_bit in
        lo := Int64.logor !lo (Int64.shift_left v lo_bit);
        hi32 := Int64.logor !hi32 (Int64.shift_right_logical v nlow)
      end)
    pieces;
  { hi32 = Int64.logand !hi32 0xFFFFFFFFL; lo = !lo }

let flip_bit m i =
  if i < 0 || i > 95 then invalid_arg "Mac.flip_bit: bit index";
  if i < 64 then { m with lo = Ptg_util.Bits.flip m.lo i }
  else { m with hi32 = Ptg_util.Bits.flip m.hi32 (i - 64) }

let pp fmt m = Format.fprintf fmt "0x%08Lx%016Lx" m.hi32 m.lo

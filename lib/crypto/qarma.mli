(** QARMA-128 tweakable block cipher (Avanzi, ToSC 2017).

    This is the low-latency reflector cipher PT-Guard uses to build the PTE
    MAC (paper Section IV-F: "18 round QARMA-128 ... 256-bit key").

    The implementation follows the published construction: a 16-cell state
    (8-bit cells for the 128-bit block), [r] forward rounds of
    AddRoundTweakey / cell shuffle [tau] / involutory diffusion matrix [M] /
    S-box, a keyed pseudo-reflector, and [r] mirrored backward rounds, with
    the tweak evolving through the [h] cell permutation and a cell LFSR.
    Key material is [w0 || k0] (256 bits); [w1] is derived by the
    orthomorphism [o(w) = (w >>> 1) xor (w >> 127)] and the reflector key is
    [k1 = M(k0)].

    No official QARMA-128 test vectors are reachable in this offline
    environment, so the round constants (hex digits of pi) and the 8-bit
    cell S-box (nibble-parallel sigma_1 with nibble swap) are documented
    choices; correctness is established by the property tests: exact
    inverse, ~50% avalanche, and key/tweak sensitivity. See DESIGN.md. *)

type key
(** Expanded key schedule. *)

val default_rounds : int
(** Forward-round count [r] matching the paper's "18-round" deployment:
    [r = 8] (8 forward + 2 reflector + 8 backward). *)

val expand_key : ?rounds:int -> w0:Block128.t -> Block128.t -> key
(** [expand_key ~w0 k0] builds a key schedule from the 256-bit key
    [w0 || k0].
    [rounds] defaults to {!default_rounds}; it must be within [1, 16]
    (bounded by the round-constant table). *)

val key_of_rng : ?rounds:int -> Ptg_util.Rng.t -> key
(** Draw a uniformly random key. *)

val rounds : key -> int

val key_material : key -> Block128.t * Block128.t
(** The 256-bit key input [(w0, k0)] the schedule was expanded from.
    [expand_key ~rounds:(rounds k) ~w0 k0] rebuilds an identical schedule
    — this is how checkpoints serialize a key without persisting the
    derived round material. *)

val encrypt : key -> tweak:Block128.t -> Block128.t -> Block128.t
(** [encrypt key ~tweak p] is the ciphertext of block [p] under [tweak]. *)

val decrypt : key -> tweak:Block128.t -> Block128.t -> Block128.t
(** Exact inverse of {!encrypt} for the same key and tweak. *)

(** {2 Scratch-context API}

    The pure functions above allocate fresh cell arrays on every call,
    which dominates the cost of MAC-ing a PTE line millions of times per
    simulation. A {!scratch} preallocates the state and tweak double
    buffers once; the [_with]/[_raw] entry points below reuse it and are
    property-tested to agree with {!encrypt}/{!decrypt} exactly. A scratch
    is not thread-safe: give each domain (each engine, each correction
    engine) its own. *)

type scratch
(** Reusable cipher working state; see {!val-scratch}. *)

val scratch : unit -> scratch
(** Allocate a fresh scratch context. *)

val encrypt_with : scratch -> key -> tweak:Block128.t -> Block128.t -> Block128.t
(** [encrypt_with sc key ~tweak p] = [encrypt key ~tweak p], reusing [sc]'s
    buffers instead of allocating. Only the result block is allocated. *)

val decrypt_with : scratch -> key -> tweak:Block128.t -> Block128.t -> Block128.t
(** Scratch-reusing {!decrypt}. *)

val encrypt_raw :
  scratch -> key -> t_hi:int64 -> t_lo:int64 -> p_hi:int64 -> p_lo:int64 -> unit
(** Fully allocation-free encryption: tweak and plaintext halves are passed
    as bare [int64]s and the ciphertext is left in the scratch, readable
    via {!out_hi}/{!out_lo} until the next [_raw]/[_with] call. *)

val out_hi : scratch -> int64
(** High 64 bits of the last {!encrypt_raw} result. *)

val out_lo : scratch -> int64
(** Low 64 bits of the last {!encrypt_raw} result. *)

(** {2 Batched API}

    [N] independent (block, tweak) lanes encrypted together in a
    structure-of-arrays layout (cell [c] of lane [l] at
    [c * capacity + l]): key and round-constant loads are hoisted out of
    the per-lane loops and the cell permutations become contiguous blits,
    which is what makes the engine's batched MAC verification faster than
    [N] scalar calls. Property-tested lane-for-lane equal to {!encrypt}
    for every batch size, ragged tail and round count. Like {!scratch},
    a batch is not thread-safe: one per domain. *)

type batch
(** Preallocated lane buffers; see {!val-batch}. *)

val batch : capacity:int -> batch
(** [batch ~capacity] allocates lane buffers for up to [capacity]
    concurrent encryptions. *)

val batch_capacity : batch -> int

val set_lane :
  batch -> int -> t_hi:int64 -> t_lo:int64 -> p_hi:int64 -> p_lo:int64 -> unit
(** [set_lane b l ~t_hi ~t_lo ~p_hi ~p_lo] stages plaintext [p] and tweak
    [t] into lane [l] (0-based, < capacity). *)

val encrypt_batch : key -> batch -> n:int -> unit
(** Encrypt lanes [0..n-1] in place ([0 <= n <= capacity]). Lanes at and
    beyond [n] are untouched. Results are readable via
    {!lane_hi}/{!lane_lo} until the next [set_lane]/[encrypt_batch]. *)

val lane_hi : batch -> int -> int64
(** High 64 bits of the ciphertext in lane [l] after {!encrypt_batch}. *)

val lane_lo : batch -> int -> int64
(** Low 64 bits of the ciphertext in lane [l] after {!encrypt_batch}. *)

(**/**)

module Internal : sig
  (* Exposed for white-box unit tests only. *)
  val sbox : int array
  val sbox_inv : int array
  val tau : int array
  val tau_inv : int array
  val mix : int array -> int array
  val tweak_update : int array -> int array
  val tweak_update_inv : int array -> int array
end

(* QARMA-128 reflector cipher. State is 16 cells of 8 bits; see the .mli
   for the construction outline and the DESIGN.md faithfulness note about
   constants. All steps are individually invertible and [decrypt] replays
   them in exact reverse, which the test suite uses as the primary
   correctness oracle. *)

(* sigma_1, the 4-bit S-box recommended in the QARMA paper. *)
let sigma1 = [| 0xa; 0xd; 0xe; 0x6; 0xf; 0x7; 0x3; 0x5; 0x9; 0x8; 0x0; 0xc; 0xb; 0x1; 0x2; 0x4 |]

(* 8-bit cell S-box: sigma_1 on each nibble, then a nibble swap so the two
   halves of a cell diffuse into each other across rounds. *)
let sbox =
  Array.init 256 (fun x ->
      let hi = sigma1.(x lsr 4) and lo = sigma1.(x land 0xf) in
      (lo lsl 4) lor hi)

let sbox_inv =
  let inv = Array.make 256 0 in
  Array.iteri (fun i y -> inv.(y) <- i) sbox;
  inv

(* The Midori cell shuffle used by QARMA: new.(i) = old.(tau.(i)). *)
let tau = [| 0; 11; 6; 13; 10; 1; 12; 7; 5; 14; 3; 8; 15; 4; 9; 2 |]

let tau_inv =
  let inv = Array.make 16 0 in
  Array.iteri (fun i j -> inv.(j) <- i) tau;
  inv

let permute p cells = Array.init 16 (fun i -> cells.(p.(i)))
let permute_into p src dst = for i = 0 to 15 do dst.(i) <- src.(p.(i)) done

(* Involutory diffusion matrix M = circ(0, rho^1, rho^4, rho^5) over 8-bit
   cells, applied column-wise on the 4x4 state (cell index = 4*row + col).
   Involution: c0^2 + c2^2 = rho^8 = id and c1^2 + c3^2 = rho^2+rho^10 = 0. *)
let mix cells =
  let out = Array.make 16 0 in
  let rot = Ptg_util.Bits.rotl8 in
  for col = 0 to 3 do
    for row = 0 to 3 do
      let c j = cells.((j * 4) + col) in
      let v =
        rot (c ((row + 1) land 3)) 1
        lxor rot (c ((row + 2) land 3)) 4
        lxor rot (c ((row + 3) land 3)) 5
      in
      out.((row * 4) + col) <- v
    done
  done;
  out

let substitute_in_place table cells =
  for i = 0 to 15 do
    cells.(i) <- table.(cells.(i))
  done

(* s ^= k ^ t ^ rc, fused into one pass over the 16 cells. *)
let xor_round_key s k t rc =
  for i = 0 to 15 do
    s.(i) <- s.(i) lxor k.(i) lxor t.(i) lxor rc.(i)
  done

let xor2_in_place s a b =
  for i = 0 to 15 do
    s.(i) <- s.(i) lxor a.(i) lxor b.(i)
  done

let xor1_in_place s a =
  for i = 0 to 15 do
    s.(i) <- s.(i) lxor a.(i)
  done

(* Rotation lookup tables for the diffusion matrix. *)
let rot1 = Array.init 256 (fun x -> Ptg_util.Bits.rotl8 x 1)
let rot4 = Array.init 256 (fun x -> Ptg_util.Bits.rotl8 x 4)
let rot5 = Array.init 256 (fun x -> Ptg_util.Bits.rotl8 x 5)

let mix_into src dst =
  for col = 0 to 3 do
    let c0 = src.(col)
    and c1 = src.(4 + col)
    and c2 = src.(8 + col)
    and c3 = src.(12 + col) in
    dst.(col) <- rot1.(c1) lxor rot4.(c2) lxor rot5.(c3);
    dst.(4 + col) <- rot1.(c2) lxor rot4.(c3) lxor rot5.(c0);
    dst.(8 + col) <- rot1.(c3) lxor rot4.(c0) lxor rot5.(c1);
    dst.(12 + col) <- rot1.(c0) lxor rot4.(c1) lxor rot5.(c2)
  done

(* Tweak schedule: cell permutation h, then an 8-bit maximal LFSR
   (x^8 + x^4 + x^3 + x^2 + 1) on a fixed subset of cells. *)
let h_perm = [| 6; 5; 14; 15; 0; 1; 2; 3; 7; 12; 13; 4; 8; 9; 10; 11 |]

let h_perm_inv =
  let inv = Array.make 16 0 in
  Array.iteri (fun i j -> inv.(j) <- i) h_perm;
  inv

let lfsr_cells = [| 0; 1; 3; 4; 8; 11; 13 |]

let lfsr x =
  let fb = (x lxor (x lsr 2) lxor (x lsr 3) lxor (x lsr 4)) land 1 in
  (x lsr 1) lor (fb lsl 7)

let lfsr_inv y =
  let b7 = (y lsr 7) land 1 in
  let x_low = (y lsl 1) land 0xff in
  (* b7 = b0 xor b2 xor b3 xor b4 of the pre-image; those old bits sit at
     positions 1..7 of [x_low] except old b0, which we solve for. *)
  let b0 = b7 lxor ((x_low lsr 2) land 1) lxor ((x_low lsr 3) land 1) lxor ((x_low lsr 4) land 1) in
  x_low lor b0

let tweak_update t =
  let t = permute h_perm t in
  Array.iter (fun i -> t.(i) <- lfsr t.(i)) lfsr_cells;
  t

let tweak_update_inv t =
  let t = Array.copy t in
  Array.iter (fun i -> t.(i) <- lfsr_inv t.(i)) lfsr_cells;
  permute h_perm_inv t

(* In-place variants driving the hot path: [src] is consumed, the updated
   tweak lands in [dst]. *)
let tweak_update_into src dst =
  permute_into h_perm src dst;
  Array.iter (fun i -> dst.(i) <- lfsr dst.(i)) lfsr_cells

let tweak_update_inv_into src dst =
  Array.iter (fun i -> src.(i) <- lfsr_inv src.(i)) lfsr_cells;
  permute_into h_perm_inv src dst

(* Nothing-up-my-sleeve round constants: the SHA-512 round constants
   (fractional parts of cube roots of the first primes), paired into
   128-bit words. 16 round constants plus the backward-key constant. *)
let constant_words =
  [|
    0x428a2f98d728ae22L; 0x7137449123ef65cdL; 0xb5c0fbcfec4d3b2fL; 0xe9b5dba58189dbbcL;
    0x3956c25bf348b538L; 0x59f111f1b605d019L; 0x923f82a4af194f9bL; 0xab1c5ed5da6d8118L;
    0xd807aa98a3030242L; 0x12835b0145706fbeL; 0x243185be4ee4b28cL; 0x550c7dc3d5ffb4e2L;
    0x72be5d74f27b896fL; 0x80deb1fe3b1696b1L; 0x9bdc06a725c71235L; 0xc19bf174cf692694L;
    0xe49b69c19ef14ad2L; 0xefbe4786384f25e3L; 0x0fc19dc68b8cd5b5L; 0x240ca1cc77ac9c65L;
    0x2de92c6f592b0275L; 0x4a7484aa6ea6e483L; 0x5cb0a9dcbd41fbd4L; 0x76f988da831153b5L;
    0x983e5152ee66dfabL; 0xa831c66d2db43210L; 0xb00327c898fb213fL; 0xbf597fc7beef0ee4L;
    0xc6e00bf33da88fc2L; 0xd5a79147930aa725L; 0x06ca6351e003826fL; 0x142929670a0e6e70L;
  |]

let max_rounds = 16

let round_constant i =
  Block128.make ~hi:constant_words.(2 * i) ~lo:constant_words.((2 * i) + 1)

let alpha = Block128.make ~hi:0x27b70a8546d22ffcL ~lo:0x2e1b21385c26c926L

type key = {
  rounds : int;
  w0 : int array;
  w1 : int array;
  k0 : int array;  (* forward round key *)
  k0a : int array; (* backward round key: k0 xor alpha *)
  k1 : int array;  (* reflector key: M(k0) *)
  rc : int array array;
}

let default_rounds = 8

let expand_key ?(rounds = default_rounds) ~w0 k0 =
  if rounds < 1 || rounds > max_rounds then invalid_arg "Qarma.expand_key: rounds";
  (* Orthomorphism o(w) = (w >>> 1) xor (w >> 127). *)
  let w1 = Block128.logxor (Block128.rotr1 w0) (Block128.shift_right_127 w0) in
  let k0_cells = Block128.to_cells k0 in
  {
    rounds;
    w0 = Block128.to_cells w0;
    w1 = Block128.to_cells w1;
    k0 = k0_cells;
    k0a = Block128.to_cells (Block128.logxor k0 alpha);
    k1 = mix k0_cells;
    rc = Array.init rounds (fun i -> Block128.to_cells (round_constant i));
  }

let key_of_rng ?rounds rng =
  let block () =
    Block128.make ~hi:(Ptg_util.Rng.next rng) ~lo:(Ptg_util.Rng.next rng)
  in
  expand_key ?rounds ~w0:(block ()) (block ())

let rounds k = k.rounds

let key_material k = (Block128.of_cells k.w0, Block128.of_cells k.k0)

let encrypt key ~tweak p =
  let s = ref (Block128.to_cells p) in
  let s' = ref (Array.make 16 0) in
  let t = ref (Block128.to_cells tweak) in
  let t' = ref (Array.make 16 0) in
  let swap_s () = let tmp = !s in s := !s'; s' := tmp in
  let swap_t () = let tmp = !t in t := !t'; t' := tmp in
  xor1_in_place !s key.w0;
  for i = 0 to key.rounds - 1 do
    xor_round_key !s key.k0 !t key.rc.(i);
    if i > 0 then begin
      permute_into tau !s !s';
      swap_s ();
      mix_into !s !s';
      swap_s ()
    end;
    substitute_in_place sbox !s;
    tweak_update_into !t !t';
    swap_t ()
  done;
  (* Center: whitening, then the keyed pseudo-reflector. *)
  xor2_in_place !s key.w1 !t;
  permute_into tau !s !s';
  swap_s ();
  mix_into !s !s';
  swap_s ();
  xor1_in_place !s key.k1;
  permute_into tau_inv !s !s';
  swap_s ();
  (* Mirrored backward half. *)
  for i = key.rounds - 1 downto 0 do
    tweak_update_inv_into !t !t';
    swap_t ();
    substitute_in_place sbox_inv !s;
    if i > 0 then begin
      mix_into !s !s';
      swap_s ();
      permute_into tau_inv !s !s';
      swap_s ()
    end;
    xor_round_key !s key.k0a !t key.rc.(i)
  done;
  xor1_in_place !s key.w1;
  Block128.of_cells !s

let decrypt key ~tweak c =
  let s = ref (Block128.to_cells c) in
  let s' = ref (Array.make 16 0) in
  let t = ref (Block128.to_cells tweak) in
  let t' = ref (Array.make 16 0) in
  let swap_s () = let tmp = !s in s := !s'; s' := tmp in
  let swap_t () = let tmp = !t in t := !t'; t' := tmp in
  xor1_in_place !s key.w1;
  (* Undo the backward half (replay it forward). *)
  for i = 0 to key.rounds - 1 do
    xor_round_key !s key.k0a !t key.rc.(i);
    if i > 0 then begin
      permute_into tau !s !s';
      swap_s ();
      mix_into !s !s';
      swap_s ()
    end;
    substitute_in_place sbox !s;
    tweak_update_into !t !t';
    swap_t ()
  done;
  (* Undo the center. *)
  permute_into tau !s !s';
  swap_s ();
  xor1_in_place !s key.k1;
  mix_into !s !s';
  swap_s ();
  permute_into tau_inv !s !s';
  swap_s ();
  xor2_in_place !s key.w1 !t;
  (* Undo the forward half. *)
  for i = key.rounds - 1 downto 0 do
    tweak_update_inv_into !t !t';
    swap_t ();
    substitute_in_place sbox_inv !s;
    if i > 0 then begin
      mix_into !s !s';
      swap_s ();
      permute_into tau_inv !s !s';
      swap_s ()
    end;
    xor_round_key !s key.k0 !t key.rc.(i)
  done;
  xor1_in_place !s key.w0;
  Block128.of_cells !s

(* Scratch-context API: a reusable pair of state/tweak double buffers so
   the hot MAC paths encrypt without allocating. The round sequences below
   mirror [encrypt]/[decrypt] above exactly; the pure functions stay as the
   reference implementation and the property tests check agreement. *)

type scratch = {
  mutable s : int array;   (* state *)
  mutable s' : int array;  (* state spare (permute/mix destination) *)
  mutable t : int array;   (* tweak *)
  mutable t' : int array;  (* tweak spare *)
}

let scratch () =
  {
    s = Array.make 16 0;
    s' = Array.make 16 0;
    t = Array.make 16 0;
    t' = Array.make 16 0;
  }

let swap_state sc = let tmp = sc.s in sc.s <- sc.s'; sc.s' <- tmp
let swap_tweak sc = let tmp = sc.t in sc.t <- sc.t'; sc.t' <- tmp

(* Consumes the plaintext cells in [sc.s] and tweak cells in [sc.t],
   leaving the ciphertext cells in [sc.s]. *)
let encrypt_cells key sc =
  xor1_in_place sc.s key.w0;
  for i = 0 to key.rounds - 1 do
    xor_round_key sc.s key.k0 sc.t key.rc.(i);
    if i > 0 then begin
      permute_into tau sc.s sc.s';
      swap_state sc;
      mix_into sc.s sc.s';
      swap_state sc
    end;
    substitute_in_place sbox sc.s;
    tweak_update_into sc.t sc.t';
    swap_tweak sc
  done;
  xor2_in_place sc.s key.w1 sc.t;
  permute_into tau sc.s sc.s';
  swap_state sc;
  mix_into sc.s sc.s';
  swap_state sc;
  xor1_in_place sc.s key.k1;
  permute_into tau_inv sc.s sc.s';
  swap_state sc;
  for i = key.rounds - 1 downto 0 do
    tweak_update_inv_into sc.t sc.t';
    swap_tweak sc;
    substitute_in_place sbox_inv sc.s;
    if i > 0 then begin
      mix_into sc.s sc.s';
      swap_state sc;
      permute_into tau_inv sc.s sc.s';
      swap_state sc
    end;
    xor_round_key sc.s key.k0a sc.t key.rc.(i)
  done;
  xor1_in_place sc.s key.w1

(* Inverse of [encrypt_cells]: ciphertext cells in [sc.s] and tweak cells
   in [sc.t] on entry, plaintext cells in [sc.s] on exit. *)
let decrypt_cells key sc =
  xor1_in_place sc.s key.w1;
  for i = 0 to key.rounds - 1 do
    xor_round_key sc.s key.k0a sc.t key.rc.(i);
    if i > 0 then begin
      permute_into tau sc.s sc.s';
      swap_state sc;
      mix_into sc.s sc.s';
      swap_state sc
    end;
    substitute_in_place sbox sc.s;
    tweak_update_into sc.t sc.t';
    swap_tweak sc
  done;
  permute_into tau sc.s sc.s';
  swap_state sc;
  xor1_in_place sc.s key.k1;
  mix_into sc.s sc.s';
  swap_state sc;
  permute_into tau_inv sc.s sc.s';
  swap_state sc;
  xor2_in_place sc.s key.w1 sc.t;
  for i = key.rounds - 1 downto 0 do
    tweak_update_inv_into sc.t sc.t';
    swap_tweak sc;
    substitute_in_place sbox_inv sc.s;
    if i > 0 then begin
      mix_into sc.s sc.s';
      swap_state sc;
      permute_into tau_inv sc.s sc.s';
      swap_state sc
    end;
    xor_round_key sc.s key.k0 sc.t key.rc.(i)
  done;
  xor1_in_place sc.s key.w0

let encrypt_raw sc key ~t_hi ~t_lo ~p_hi ~p_lo =
  Block128.fill_cells sc.s ~hi:p_hi ~lo:p_lo;
  Block128.fill_cells sc.t ~hi:t_hi ~lo:t_lo;
  encrypt_cells key sc

let out_hi sc = Block128.pack_hi sc.s
let out_lo sc = Block128.pack_lo sc.s

let encrypt_with sc key ~tweak p =
  Block128.to_cells_into p sc.s;
  Block128.to_cells_into tweak sc.t;
  encrypt_cells key sc;
  Block128.make ~hi:(Block128.pack_hi sc.s) ~lo:(Block128.pack_lo sc.s)

let decrypt_with sc key ~tweak c =
  Block128.to_cells_into c sc.s;
  Block128.to_cells_into tweak sc.t;
  decrypt_cells key sc;
  Block128.make ~hi:(Block128.pack_hi sc.s) ~lo:(Block128.pack_lo sc.s)

(* Batched API: N independent (block, tweak) lanes encrypted together in
   structure-of-arrays layout — cell c of lane l lives at [c * capacity + l].
   Each round step walks the lanes of one cell at a time, so the key,
   round-constant and S-box loads are hoisted out of the per-lane work and
   the cell permutations become 16 contiguous blits. The scalar path above
   is deliberately untouched: it is the property-tested oracle the batch
   is checked against lane-for-lane. *)

(* 256-entry tables for the tweak LFSR and its inverse: the batch applies
   them across lanes, where a table load beats recomputing the feedback
   bits. Identical by construction to [lfsr]/[lfsr_inv]. *)
let lfsr_tab = Array.init 256 lfsr
let lfsr_inv_tab = Array.init 256 lfsr_inv

type batch = {
  capacity : int;
  mutable bs : int array;  (* state lanes *)
  mutable bs' : int array; (* state spare (permute/mix destination) *)
  mutable bt : int array;  (* tweak lanes *)
  mutable bt' : int array; (* tweak spare *)
}

let batch ~capacity =
  if capacity < 1 then invalid_arg "Qarma.batch: capacity";
  {
    capacity;
    bs = Array.make (16 * capacity) 0;
    bs' = Array.make (16 * capacity) 0;
    bt = Array.make (16 * capacity) 0;
    bt' = Array.make (16 * capacity) 0;
  }

let batch_capacity b = b.capacity

let set_lane b l ~t_hi ~t_lo ~p_hi ~p_lo =
  if l < 0 || l >= b.capacity then invalid_arg "Qarma.set_lane: lane";
  let cap = b.capacity in
  let byte x sh = Int64.to_int (Int64.logand (Int64.shift_right_logical x sh) 0xffL) in
  for i = 0 to 7 do
    let sh = (7 - i) * 8 in
    b.bs.((i * cap) + l) <- byte p_hi sh;
    b.bs.(((i + 8) * cap) + l) <- byte p_lo sh;
    b.bt.((i * cap) + l) <- byte t_hi sh;
    b.bt.(((i + 8) * cap) + l) <- byte t_lo sh
  done

let lane_half b arr l off =
  let cap = b.capacity in
  let acc = ref 0L in
  for i = off to off + 7 do
    acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int arr.((i * cap) + l))
  done;
  !acc

let lane_hi b l =
  if l < 0 || l >= b.capacity then invalid_arg "Qarma.lane_hi: lane";
  lane_half b b.bs l 0

let lane_lo b l =
  if l < 0 || l >= b.capacity then invalid_arg "Qarma.lane_lo: lane";
  lane_half b b.bs l 8

let swap_bstate b = let tmp = b.bs in b.bs <- b.bs'; b.bs' <- tmp
let swap_btweak b = let tmp = b.bt in b.bt <- b.bt'; b.bt' <- tmp

(* s ^= k ^ t ^ rc across [n] lanes; the per-cell constant [k ^ rc] is
   folded once outside the lane loop. *)
let bxor_round_key b n k rc =
  let cap = b.capacity in
  let s = b.bs and t = b.bt in
  for c = 0 to 15 do
    let kc = k.(c) lxor rc.(c) in
    let off = c * cap in
    for l = off to off + n - 1 do
      Array.unsafe_set s l
        (Array.unsafe_get s l lxor kc lxor Array.unsafe_get t l)
    done
  done

let bxor1 b n k =
  let cap = b.capacity in
  let s = b.bs in
  for c = 0 to 15 do
    let kc = k.(c) in
    if kc <> 0 then begin
      let off = c * cap in
      for l = off to off + n - 1 do
        Array.unsafe_set s l (Array.unsafe_get s l lxor kc)
      done
    end
  done

let bxor2 b n k =
  let cap = b.capacity in
  let s = b.bs and t = b.bt in
  for c = 0 to 15 do
    let kc = k.(c) in
    let off = c * cap in
    for l = off to off + n - 1 do
      Array.unsafe_set s l
        (Array.unsafe_get s l lxor kc lxor Array.unsafe_get t l)
    done
  done

(* dst cell i := src cell p(i): one contiguous blit per cell. *)
let bpermute p src dst cap n =
  for i = 0 to 15 do
    Array.blit src (p.(i) * cap) dst (i * cap) n
  done

let bmix src dst cap n =
  for col = 0 to 3 do
    let o0 = col * cap
    and o1 = (4 + col) * cap
    and o2 = (8 + col) * cap
    and o3 = (12 + col) * cap in
    for l = 0 to n - 1 do
      let c0 = Array.unsafe_get src (o0 + l)
      and c1 = Array.unsafe_get src (o1 + l)
      and c2 = Array.unsafe_get src (o2 + l)
      and c3 = Array.unsafe_get src (o3 + l) in
      Array.unsafe_set dst (o0 + l)
        (Array.unsafe_get rot1 c1
        lxor Array.unsafe_get rot4 c2
        lxor Array.unsafe_get rot5 c3);
      Array.unsafe_set dst (o1 + l)
        (Array.unsafe_get rot1 c2
        lxor Array.unsafe_get rot4 c3
        lxor Array.unsafe_get rot5 c0);
      Array.unsafe_set dst (o2 + l)
        (Array.unsafe_get rot1 c3
        lxor Array.unsafe_get rot4 c0
        lxor Array.unsafe_get rot5 c1);
      Array.unsafe_set dst (o3 + l)
        (Array.unsafe_get rot1 c0
        lxor Array.unsafe_get rot4 c1
        lxor Array.unsafe_get rot5 c2)
    done
  done

let bsubstitute table s cap n =
  for c = 0 to 15 do
    let off = c * cap in
    for l = off to off + n - 1 do
      Array.unsafe_set s l (Array.unsafe_get table (Array.unsafe_get s l))
    done
  done

let btweak_update b n =
  let cap = b.capacity in
  bpermute h_perm b.bt b.bt' cap n;
  swap_btweak b;
  let t = b.bt in
  Array.iter
    (fun c ->
      let off = c * cap in
      for l = off to off + n - 1 do
        Array.unsafe_set t l (Array.unsafe_get lfsr_tab (Array.unsafe_get t l))
      done)
    lfsr_cells

let btweak_update_inv b n =
  let cap = b.capacity in
  let t = b.bt in
  Array.iter
    (fun c ->
      let off = c * cap in
      for l = off to off + n - 1 do
        Array.unsafe_set t l
          (Array.unsafe_get lfsr_inv_tab (Array.unsafe_get t l))
      done)
    lfsr_cells;
  bpermute h_perm_inv b.bt b.bt' cap n;
  swap_btweak b

(* Same round sequence as [encrypt_cells], lane-parallel. Lanes
   [n..capacity-1] hold stale garbage and are simply not visited. *)
let encrypt_batch key b ~n =
  if n < 0 || n > b.capacity then invalid_arg "Qarma.encrypt_batch: n";
  if n > 0 then begin
    let cap = b.capacity in
    bxor1 b n key.w0;
    for i = 0 to key.rounds - 1 do
      bxor_round_key b n key.k0 key.rc.(i);
      if i > 0 then begin
        bpermute tau b.bs b.bs' cap n;
        swap_bstate b;
        bmix b.bs b.bs' cap n;
        swap_bstate b
      end;
      bsubstitute sbox b.bs cap n;
      btweak_update b n
    done;
    bxor2 b n key.w1;
    bpermute tau b.bs b.bs' cap n;
    swap_bstate b;
    bmix b.bs b.bs' cap n;
    swap_bstate b;
    bxor1 b n key.k1;
    bpermute tau_inv b.bs b.bs' cap n;
    swap_bstate b;
    for i = key.rounds - 1 downto 0 do
      btweak_update_inv b n;
      bsubstitute sbox_inv b.bs cap n;
      if i > 0 then begin
        bmix b.bs b.bs' cap n;
        swap_bstate b;
        bpermute tau_inv b.bs b.bs' cap n;
        swap_bstate b
      end;
      bxor_round_key b n key.k0a key.rc.(i)
    done;
    bxor1 b n key.w1
  end

module Internal = struct
  let sbox = sbox
  let sbox_inv = sbox_inv
  let tau = tau
  let tau_inv = tau_inv
  let mix = mix
  let tweak_update t = tweak_update (Array.copy t)
  let tweak_update_inv = tweak_update_inv
end

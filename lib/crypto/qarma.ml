(* QARMA-128 reflector cipher. State is 16 cells of 8 bits; see the .mli
   for the construction outline and the DESIGN.md faithfulness note about
   constants. All steps are individually invertible and [decrypt] replays
   them in exact reverse, which the test suite uses as the primary
   correctness oracle. *)

(* sigma_1, the 4-bit S-box recommended in the QARMA paper. *)
let sigma1 = [| 0xa; 0xd; 0xe; 0x6; 0xf; 0x7; 0x3; 0x5; 0x9; 0x8; 0x0; 0xc; 0xb; 0x1; 0x2; 0x4 |]

(* 8-bit cell S-box: sigma_1 on each nibble, then a nibble swap so the two
   halves of a cell diffuse into each other across rounds. *)
let sbox =
  Array.init 256 (fun x ->
      let hi = sigma1.(x lsr 4) and lo = sigma1.(x land 0xf) in
      (lo lsl 4) lor hi)

let sbox_inv =
  let inv = Array.make 256 0 in
  Array.iteri (fun i y -> inv.(y) <- i) sbox;
  inv

(* The Midori cell shuffle used by QARMA: new.(i) = old.(tau.(i)). *)
let tau = [| 0; 11; 6; 13; 10; 1; 12; 7; 5; 14; 3; 8; 15; 4; 9; 2 |]

let tau_inv =
  let inv = Array.make 16 0 in
  Array.iteri (fun i j -> inv.(j) <- i) tau;
  inv

let permute p cells = Array.init 16 (fun i -> cells.(p.(i)))
let permute_into p src dst = for i = 0 to 15 do dst.(i) <- src.(p.(i)) done

(* Involutory diffusion matrix M = circ(0, rho^1, rho^4, rho^5) over 8-bit
   cells, applied column-wise on the 4x4 state (cell index = 4*row + col).
   Involution: c0^2 + c2^2 = rho^8 = id and c1^2 + c3^2 = rho^2+rho^10 = 0. *)
let mix cells =
  let out = Array.make 16 0 in
  let rot = Ptg_util.Bits.rotl8 in
  for col = 0 to 3 do
    for row = 0 to 3 do
      let c j = cells.((j * 4) + col) in
      let v =
        rot (c ((row + 1) land 3)) 1
        lxor rot (c ((row + 2) land 3)) 4
        lxor rot (c ((row + 3) land 3)) 5
      in
      out.((row * 4) + col) <- v
    done
  done;
  out

let substitute_in_place table cells =
  for i = 0 to 15 do
    cells.(i) <- table.(cells.(i))
  done

(* s ^= k ^ t ^ rc, fused into one pass over the 16 cells. *)
let xor_round_key s k t rc =
  for i = 0 to 15 do
    s.(i) <- s.(i) lxor k.(i) lxor t.(i) lxor rc.(i)
  done

let xor2_in_place s a b =
  for i = 0 to 15 do
    s.(i) <- s.(i) lxor a.(i) lxor b.(i)
  done

let xor1_in_place s a =
  for i = 0 to 15 do
    s.(i) <- s.(i) lxor a.(i)
  done

(* Rotation lookup tables for the diffusion matrix. *)
let rot1 = Array.init 256 (fun x -> Ptg_util.Bits.rotl8 x 1)
let rot4 = Array.init 256 (fun x -> Ptg_util.Bits.rotl8 x 4)
let rot5 = Array.init 256 (fun x -> Ptg_util.Bits.rotl8 x 5)

let mix_into src dst =
  for col = 0 to 3 do
    let c0 = src.(col)
    and c1 = src.(4 + col)
    and c2 = src.(8 + col)
    and c3 = src.(12 + col) in
    dst.(col) <- rot1.(c1) lxor rot4.(c2) lxor rot5.(c3);
    dst.(4 + col) <- rot1.(c2) lxor rot4.(c3) lxor rot5.(c0);
    dst.(8 + col) <- rot1.(c3) lxor rot4.(c0) lxor rot5.(c1);
    dst.(12 + col) <- rot1.(c0) lxor rot4.(c1) lxor rot5.(c2)
  done

(* Tweak schedule: cell permutation h, then an 8-bit maximal LFSR
   (x^8 + x^4 + x^3 + x^2 + 1) on a fixed subset of cells. *)
let h_perm = [| 6; 5; 14; 15; 0; 1; 2; 3; 7; 12; 13; 4; 8; 9; 10; 11 |]

let h_perm_inv =
  let inv = Array.make 16 0 in
  Array.iteri (fun i j -> inv.(j) <- i) h_perm;
  inv

let lfsr_cells = [| 0; 1; 3; 4; 8; 11; 13 |]

let lfsr x =
  let fb = (x lxor (x lsr 2) lxor (x lsr 3) lxor (x lsr 4)) land 1 in
  (x lsr 1) lor (fb lsl 7)

let lfsr_inv y =
  let b7 = (y lsr 7) land 1 in
  let x_low = (y lsl 1) land 0xff in
  (* b7 = b0 xor b2 xor b3 xor b4 of the pre-image; those old bits sit at
     positions 1..7 of [x_low] except old b0, which we solve for. *)
  let b0 = b7 lxor ((x_low lsr 2) land 1) lxor ((x_low lsr 3) land 1) lxor ((x_low lsr 4) land 1) in
  x_low lor b0

let tweak_update t =
  let t = permute h_perm t in
  Array.iter (fun i -> t.(i) <- lfsr t.(i)) lfsr_cells;
  t

let tweak_update_inv t =
  let t = Array.copy t in
  Array.iter (fun i -> t.(i) <- lfsr_inv t.(i)) lfsr_cells;
  permute h_perm_inv t

(* In-place variants driving the hot path: [src] is consumed, the updated
   tweak lands in [dst]. *)
let tweak_update_into src dst =
  permute_into h_perm src dst;
  Array.iter (fun i -> dst.(i) <- lfsr dst.(i)) lfsr_cells

let tweak_update_inv_into src dst =
  Array.iter (fun i -> src.(i) <- lfsr_inv src.(i)) lfsr_cells;
  permute_into h_perm_inv src dst

(* Nothing-up-my-sleeve round constants: the SHA-512 round constants
   (fractional parts of cube roots of the first primes), paired into
   128-bit words. 16 round constants plus the backward-key constant. *)
let constant_words =
  [|
    0x428a2f98d728ae22L; 0x7137449123ef65cdL; 0xb5c0fbcfec4d3b2fL; 0xe9b5dba58189dbbcL;
    0x3956c25bf348b538L; 0x59f111f1b605d019L; 0x923f82a4af194f9bL; 0xab1c5ed5da6d8118L;
    0xd807aa98a3030242L; 0x12835b0145706fbeL; 0x243185be4ee4b28cL; 0x550c7dc3d5ffb4e2L;
    0x72be5d74f27b896fL; 0x80deb1fe3b1696b1L; 0x9bdc06a725c71235L; 0xc19bf174cf692694L;
    0xe49b69c19ef14ad2L; 0xefbe4786384f25e3L; 0x0fc19dc68b8cd5b5L; 0x240ca1cc77ac9c65L;
    0x2de92c6f592b0275L; 0x4a7484aa6ea6e483L; 0x5cb0a9dcbd41fbd4L; 0x76f988da831153b5L;
    0x983e5152ee66dfabL; 0xa831c66d2db43210L; 0xb00327c898fb213fL; 0xbf597fc7beef0ee4L;
    0xc6e00bf33da88fc2L; 0xd5a79147930aa725L; 0x06ca6351e003826fL; 0x142929670a0e6e70L;
  |]

let max_rounds = 16

let round_constant i =
  Block128.make ~hi:constant_words.(2 * i) ~lo:constant_words.((2 * i) + 1)

let alpha = Block128.make ~hi:0x27b70a8546d22ffcL ~lo:0x2e1b21385c26c926L

type key = {
  rounds : int;
  w0 : int array;
  w1 : int array;
  k0 : int array;  (* forward round key *)
  k0a : int array; (* backward round key: k0 xor alpha *)
  k1 : int array;  (* reflector key: M(k0) *)
  rc : int array array;
}

let default_rounds = 8

let expand_key ?(rounds = default_rounds) ~w0 k0 =
  if rounds < 1 || rounds > max_rounds then invalid_arg "Qarma.expand_key: rounds";
  (* Orthomorphism o(w) = (w >>> 1) xor (w >> 127). *)
  let w1 = Block128.logxor (Block128.rotr1 w0) (Block128.shift_right_127 w0) in
  let k0_cells = Block128.to_cells k0 in
  {
    rounds;
    w0 = Block128.to_cells w0;
    w1 = Block128.to_cells w1;
    k0 = k0_cells;
    k0a = Block128.to_cells (Block128.logxor k0 alpha);
    k1 = mix k0_cells;
    rc = Array.init rounds (fun i -> Block128.to_cells (round_constant i));
  }

let key_of_rng ?rounds rng =
  let block () =
    Block128.make ~hi:(Ptg_util.Rng.next rng) ~lo:(Ptg_util.Rng.next rng)
  in
  expand_key ?rounds ~w0:(block ()) (block ())

let rounds k = k.rounds

let encrypt key ~tweak p =
  let s = ref (Block128.to_cells p) in
  let s' = ref (Array.make 16 0) in
  let t = ref (Block128.to_cells tweak) in
  let t' = ref (Array.make 16 0) in
  let swap_s () = let tmp = !s in s := !s'; s' := tmp in
  let swap_t () = let tmp = !t in t := !t'; t' := tmp in
  xor1_in_place !s key.w0;
  for i = 0 to key.rounds - 1 do
    xor_round_key !s key.k0 !t key.rc.(i);
    if i > 0 then begin
      permute_into tau !s !s';
      swap_s ();
      mix_into !s !s';
      swap_s ()
    end;
    substitute_in_place sbox !s;
    tweak_update_into !t !t';
    swap_t ()
  done;
  (* Center: whitening, then the keyed pseudo-reflector. *)
  xor2_in_place !s key.w1 !t;
  permute_into tau !s !s';
  swap_s ();
  mix_into !s !s';
  swap_s ();
  xor1_in_place !s key.k1;
  permute_into tau_inv !s !s';
  swap_s ();
  (* Mirrored backward half. *)
  for i = key.rounds - 1 downto 0 do
    tweak_update_inv_into !t !t';
    swap_t ();
    substitute_in_place sbox_inv !s;
    if i > 0 then begin
      mix_into !s !s';
      swap_s ();
      permute_into tau_inv !s !s';
      swap_s ()
    end;
    xor_round_key !s key.k0a !t key.rc.(i)
  done;
  xor1_in_place !s key.w1;
  Block128.of_cells !s

let decrypt key ~tweak c =
  let s = ref (Block128.to_cells c) in
  let s' = ref (Array.make 16 0) in
  let t = ref (Block128.to_cells tweak) in
  let t' = ref (Array.make 16 0) in
  let swap_s () = let tmp = !s in s := !s'; s' := tmp in
  let swap_t () = let tmp = !t in t := !t'; t' := tmp in
  xor1_in_place !s key.w1;
  (* Undo the backward half (replay it forward). *)
  for i = 0 to key.rounds - 1 do
    xor_round_key !s key.k0a !t key.rc.(i);
    if i > 0 then begin
      permute_into tau !s !s';
      swap_s ();
      mix_into !s !s';
      swap_s ()
    end;
    substitute_in_place sbox !s;
    tweak_update_into !t !t';
    swap_t ()
  done;
  (* Undo the center. *)
  permute_into tau !s !s';
  swap_s ();
  xor1_in_place !s key.k1;
  mix_into !s !s';
  swap_s ();
  permute_into tau_inv !s !s';
  swap_s ();
  xor2_in_place !s key.w1 !t;
  (* Undo the forward half. *)
  for i = key.rounds - 1 downto 0 do
    tweak_update_inv_into !t !t';
    swap_t ();
    substitute_in_place sbox_inv !s;
    if i > 0 then begin
      mix_into !s !s';
      swap_s ();
      permute_into tau_inv !s !s';
      swap_s ()
    end;
    xor_round_key !s key.k0 !t key.rc.(i)
  done;
  xor1_in_place !s key.w0;
  Block128.of_cells !s

(* Scratch-context API: a reusable pair of state/tweak double buffers so
   the hot MAC paths encrypt without allocating. The round sequences below
   mirror [encrypt]/[decrypt] above exactly; the pure functions stay as the
   reference implementation and the property tests check agreement. *)

type scratch = {
  mutable s : int array;   (* state *)
  mutable s' : int array;  (* state spare (permute/mix destination) *)
  mutable t : int array;   (* tweak *)
  mutable t' : int array;  (* tweak spare *)
}

let scratch () =
  {
    s = Array.make 16 0;
    s' = Array.make 16 0;
    t = Array.make 16 0;
    t' = Array.make 16 0;
  }

let swap_state sc = let tmp = sc.s in sc.s <- sc.s'; sc.s' <- tmp
let swap_tweak sc = let tmp = sc.t in sc.t <- sc.t'; sc.t' <- tmp

(* Consumes the plaintext cells in [sc.s] and tweak cells in [sc.t],
   leaving the ciphertext cells in [sc.s]. *)
let encrypt_cells key sc =
  xor1_in_place sc.s key.w0;
  for i = 0 to key.rounds - 1 do
    xor_round_key sc.s key.k0 sc.t key.rc.(i);
    if i > 0 then begin
      permute_into tau sc.s sc.s';
      swap_state sc;
      mix_into sc.s sc.s';
      swap_state sc
    end;
    substitute_in_place sbox sc.s;
    tweak_update_into sc.t sc.t';
    swap_tweak sc
  done;
  xor2_in_place sc.s key.w1 sc.t;
  permute_into tau sc.s sc.s';
  swap_state sc;
  mix_into sc.s sc.s';
  swap_state sc;
  xor1_in_place sc.s key.k1;
  permute_into tau_inv sc.s sc.s';
  swap_state sc;
  for i = key.rounds - 1 downto 0 do
    tweak_update_inv_into sc.t sc.t';
    swap_tweak sc;
    substitute_in_place sbox_inv sc.s;
    if i > 0 then begin
      mix_into sc.s sc.s';
      swap_state sc;
      permute_into tau_inv sc.s sc.s';
      swap_state sc
    end;
    xor_round_key sc.s key.k0a sc.t key.rc.(i)
  done;
  xor1_in_place sc.s key.w1

(* Inverse of [encrypt_cells]: ciphertext cells in [sc.s] and tweak cells
   in [sc.t] on entry, plaintext cells in [sc.s] on exit. *)
let decrypt_cells key sc =
  xor1_in_place sc.s key.w1;
  for i = 0 to key.rounds - 1 do
    xor_round_key sc.s key.k0a sc.t key.rc.(i);
    if i > 0 then begin
      permute_into tau sc.s sc.s';
      swap_state sc;
      mix_into sc.s sc.s';
      swap_state sc
    end;
    substitute_in_place sbox sc.s;
    tweak_update_into sc.t sc.t';
    swap_tweak sc
  done;
  permute_into tau sc.s sc.s';
  swap_state sc;
  xor1_in_place sc.s key.k1;
  mix_into sc.s sc.s';
  swap_state sc;
  permute_into tau_inv sc.s sc.s';
  swap_state sc;
  xor2_in_place sc.s key.w1 sc.t;
  for i = key.rounds - 1 downto 0 do
    tweak_update_inv_into sc.t sc.t';
    swap_tweak sc;
    substitute_in_place sbox_inv sc.s;
    if i > 0 then begin
      mix_into sc.s sc.s';
      swap_state sc;
      permute_into tau_inv sc.s sc.s';
      swap_state sc
    end;
    xor_round_key sc.s key.k0 sc.t key.rc.(i)
  done;
  xor1_in_place sc.s key.w0

let encrypt_raw sc key ~t_hi ~t_lo ~p_hi ~p_lo =
  Block128.fill_cells sc.s ~hi:p_hi ~lo:p_lo;
  Block128.fill_cells sc.t ~hi:t_hi ~lo:t_lo;
  encrypt_cells key sc

let out_hi sc = Block128.pack_hi sc.s
let out_lo sc = Block128.pack_lo sc.s

let encrypt_with sc key ~tweak p =
  Block128.to_cells_into p sc.s;
  Block128.to_cells_into tweak sc.t;
  encrypt_cells key sc;
  Block128.make ~hi:(Block128.pack_hi sc.s) ~lo:(Block128.pack_lo sc.s)

let decrypt_with sc key ~tweak c =
  Block128.to_cells_into c sc.s;
  Block128.to_cells_into tweak sc.t;
  decrypt_cells key sc;
  Block128.make ~hi:(Block128.pack_hi sc.s) ~lo:(Block128.pack_lo sc.s)

module Internal = struct
  let sbox = sbox
  let sbox_inv = sbox_inv
  let tau = tau
  let tau_inv = tau_inv
  let mix = mix
  let tweak_update t = tweak_update (Array.copy t)
  let tweak_update_inv = tweak_update_inv
end

(** 128-bit blocks for the QARMA cipher and MAC values.

    A block is an immutable pair of 64-bit halves. Cell-array conversion
    views the block as 16 byte-sized cells, cell 0 being the most
    significant byte — the cell ordering used by the QARMA state. *)

type t = { hi : int64; lo : int64 }

val zero : t
val make : hi:int64 -> lo:int64 -> t
val logxor : t -> t -> t
val logand : t -> t -> t
val lognot : t -> t
val equal : t -> t -> bool
val compare : t -> t -> int

val of_int64 : int64 -> t
(** Zero-extends into the low half. *)

val hamming : t -> t -> int
(** Hamming distance over all 128 bits. *)

val popcount : t -> int

val rotr1 : t -> t
(** Rotate the whole 128-bit word right by one bit (used by the QARMA
    key-derivation orthomorphism). *)

val shift_right_127 : t -> t
(** Logical shift right by 127 bits: isolates the top bit in bit 0. *)

val to_cells : t -> int array
(** 16 cells, cell.(0) = most significant byte. *)

val of_cells : int array -> t
(** Inverse of {!to_cells}; requires length 16, each cell in [0, 255]. *)

val to_cells_into : t -> int array -> unit
(** [to_cells_into a dst] writes the 16 cells of [a] into the caller-owned
    [dst] (length 16) without allocating. *)

val fill_cells : int array -> hi:int64 -> lo:int64 -> unit
(** Like {!to_cells_into} on [make ~hi ~lo], without building the block. *)

val pack_hi : int array -> int64
(** High half of {!of_cells}, minus the range validation — for cell arrays
    produced by the cipher itself, whose cells are 8-bit by construction. *)

val pack_lo : int array -> int64
(** Low half counterpart of {!pack_hi}. *)

val to_hex : t -> string
val pp : Format.formatter -> t -> unit

(** The PT-Guard MAC over a 64-byte PTE cacheline (paper Section IV-F).

    The cacheline (eight 64-bit words, unprotected bits zeroed by the
    caller) is split into four 16-byte chunks [C_i]; each chunk is
    enciphered as [Q(C_i xor A_i)] where [A_i] encodes the line's physical
    address and the chunk index, and the four outputs are XOR-folded. The
    upper 32 bits are dropped, leaving the 96-bit MAC that fits the pooled
    unused-PFN bits (12 bits in each of the 8 PTEs). *)

type t = { hi32 : int64; lo : int64 }
(** A 96-bit MAC: [hi32] holds bits 64..95 (top 32 bits are always zero),
    [lo] holds bits 0..63. *)

val equal : t -> t -> bool
val zero : t

val is_well_formed : t -> bool
(** [hi32] fits in 32 bits. *)

val hamming : t -> t -> int
(** Hamming distance over the 96 MAC bits. *)

val soft_match : k:int -> t -> t -> bool
(** [soft_match ~k a b] is the fault-tolerant comparison of Section VI-C:
    true when the Hamming distance is at most [k]. [soft_match ~k:0] is
    exact equality. *)

val compute : Qarma.key -> addr:int64 -> int64 array -> t
(** [compute key ~addr line] is the 96-bit MAC of the 8-word [line] at
    physical line address [addr]. The caller must already have masked the
    line to its protected bits and zeroed the MAC field itself. *)

type ctx
(** Reusable working state for {!compute_with} (wraps a {!Qarma.scratch}).
    Not thread-safe: one per domain. *)

val ctx : unit -> ctx

val compute_with : ctx -> Qarma.key -> addr:int64 -> int64 array -> t
(** Allocation-free {!compute}: identical result, but the per-chunk blocks
    and cipher state live in [ctx] instead of being freshly allocated. *)

type batch_ctx
(** Reusable lane buffers for {!compute_batch} (wraps a {!Qarma.batch}
    with four cipher lanes per MAC). Not thread-safe: one per domain. *)

val default_batch_capacity : int
(** Default MAC capacity per flush (64 MACs = 256 cipher lanes). *)

val batch_ctx : ?capacity:int -> unit -> batch_ctx
(** [batch_ctx ~capacity ()] sizes the context for [capacity] MACs per
    internal flush; larger request sets are chunked transparently. *)

val batch_capacity : batch_ctx -> int

val compute_batch :
  batch_ctx -> Qarma.key -> n:int -> addrs:int64 array -> lines:int64 array array -> t array
(** [compute_batch ctx key ~n ~addrs ~lines] MACs the [n] requests
    [(addrs.(i), lines.(i))], [i < n], in lane-parallel batches. Result
    [i] equals [compute key ~addr:addrs.(i) lines.(i)] exactly (the
    property tests assert lane-for-lane agreement with the scalar
    oracle). Lines must already be masked as for {!compute}. *)

val compute_zero : Qarma.key -> t
(** The pre-computed MAC of the all-zero cacheline {e without} the address
    input — the MAC-zero optimization of Section V-B. Equals
    [compute key ~addr:0L all_zero_line]. *)

val truncate : width:int -> t -> t
(** Keep only the low [width] bits (for the 64-bit-MAC ablation of
    Section VII-A). Requires [1 <= width <= 96]. *)

val split12 : t -> int array
(** The 8 twelve-bit slices of the MAC, slice [i] destined for PTE [i] of
    the line (bits 51:40 of that PTE). Slice 0 holds MAC bits 0..11. *)

val join12 : int array -> t
(** Inverse of {!split12}; requires 8 values, each within 12 bits. *)

val flip_bit : t -> int -> t
(** [flip_bit m i] flips MAC bit [i] (0..95) — used by fault injection. *)

val pp : Format.formatter -> t -> unit

(** Ablation studies for the design choices DESIGN.md calls out.

    These go beyond the paper's headline figures to quantify {e why} each
    mechanism is there: the marginal coverage of every correction
    strategy, the selectivity of the 96- vs 152-bit write patterns, and
    the CTB-overflow / re-keying defense of Section VII-B exercised by an
    actual known-plaintext collision attack. *)

(** {2 Correction-strategy ablation} *)

type correction_row = {
  label : string;
  corrected_pct : float;
  avg_guesses_when_corrected : float;
}

type correction_result = {
  p_flip : float;
  lines : int;
  rows : correction_row list;  (** "all", "without X...", "only X..." *)
}

val correction :
  ?jobs:int -> ?lines:int -> ?seed:int64 -> ?p_flip:float -> unit -> correction_result
(** [jobs] fans the strategy masks across domains; every mask replays the
    same pre-drawn faults, so results are independent of the job count. *)

val print_correction : correction_result -> unit

(** {2 Write-pattern selectivity} *)

type pattern_result = {
  data_lines_tested : int;
  basic_matches : int;     (** random/realistic data matching the 96-bit pattern *)
  extended_matches : int;
  zero_lines : int;
  pte_lines_tested : int;
  pte_basic_matches : int;      (** must equal pte_lines_tested *)
  pte_extended_matches : int;   (** must equal pte_lines_tested *)
}

val pattern : ?lines:int -> ?seed:int64 -> unit -> pattern_result
val print_pattern : pattern_result -> unit

(** {2 Page-size sensitivity (Section III's remark)} *)

type page_size_row = {
  page : string;            (** "4K" or "2M" *)
  avg_slowdown_pct : float;
  walks_per_kinstr : float;
}

type page_size_result = { rows : page_size_row list }

val page_size :
  ?jobs:int -> ?instrs:int -> ?seed:int64 ->
  ?workloads:Ptg_workloads.Workload.spec list ->
  unit -> page_size_result
(** PT-Guard's slowdown with 4 KB vs 2 MB pages: "larger page sizes would
    only reduce the slowdown by reducing frequency of page-table-walks"
    — measured. Defaults to the high-MPKI workload subset. *)

val print_page_size : page_size_result -> unit

(** {2 CTB overflow and re-keying (Section VII-B)} *)

type ctb_result = {
  collisions_planted : int;    (** via the known-plaintext MAC leak *)
  ctb_entries_before : int;
  overflow_signalled : bool;
  rekeys : int;
  collisions_after_rekey : int; (** stale MACs must stop colliding: 0 *)
  reads_correct_after_rekey : bool;
}

val ctb_overflow : ?seed:int64 -> unit -> ctb_result
val print_ctb : ctb_result -> unit

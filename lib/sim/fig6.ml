open Ptg_util

type row = {
  workload : string;
  mpki : float;
  base_ipc : float;
  norm_ipc : float;
  slowdown_pct : float;
  pte_dram_reads : int;
  dram_reads : int;
}

type result = {
  rows : row list;
  gmean_norm_ipc : float;
  amean_norm_ipc : float;
  amean_slowdown_pct : float;
  max_slowdown_pct : float;
}

let run_workload ?obs ~instrs ~warmup ~seed ~guard spec =
  let rng = Rng.create seed in
  let stream = Ptg_workloads.Workload.stream rng spec in
  let core = Ptg_cpu.Core.create ?obs ~guard () in
  ignore (Ptg_cpu.Core.run core ~instrs:warmup ~stream);
  Ptg_cpu.Core.run core ~instrs ~stream

(* One workload's row. Each row builds its own Rng/Engine from [seed]
   alone, so rows are independent of each other and of which process,
   domain or chunk computes them — the property both the parallel
   fan-out and the row-batch checkpoint driver rely on. *)
let row_of_spec ?obs ~instrs ~warmup ~seed ~config spec =
  let base =
    run_workload ~instrs ~warmup ~seed ~guard:Ptg_cpu.Guard_timing.unprotected
      spec
  in
  let guard =
    Ptg_cpu.Guard_timing.of_config config ?obs
      ~rng:(Rng.create (Int64.add seed 1L))
  in
  let guarded = run_workload ?obs ~instrs ~warmup ~seed ~guard spec in
  let norm_ipc = guarded.Ptg_cpu.Core.ipc /. base.Ptg_cpu.Core.ipc in
  {
    workload = spec.Ptg_workloads.Workload.name;
    mpki = base.Ptg_cpu.Core.llc_mpki;
    base_ipc = base.Ptg_cpu.Core.ipc;
    norm_ipc;
    slowdown_pct = 100.0 *. (1.0 -. norm_ipc);
    pte_dram_reads = base.Ptg_cpu.Core.pte_dram_reads;
    dram_reads = base.Ptg_cpu.Core.dram_reads;
  }

let of_rows rows =
  let norms = Array.of_list (List.map (fun r -> r.norm_ipc) rows) in
  let slowdowns = Array.of_list (List.map (fun r -> r.slowdown_pct) rows) in
  {
    rows;
    gmean_norm_ipc = Stats.geomean norms;
    amean_norm_ipc = Stats.mean norms;
    amean_slowdown_pct = Stats.mean slowdowns;
    max_slowdown_pct = Array.fold_left Float.max 0.0 slowdowns;
  }

let run_rows ?jobs ~instrs ~warmup ~seed ~config workloads =
  Array.to_list
    (Pool.parallel_map ?jobs
       (row_of_spec ~instrs ~warmup ~seed ~config)
       (Array.of_list workloads))

let run ?jobs ?(instrs = 2_000_000) ?(warmup = 500_000) ?(seed = 42L)
    ?(config = Ptguard.Config.baseline) ?(workloads = Ptg_workloads.Workload.all)
    ?obs () =
  (* Each task writes into its own child sink; the children are merged
     into [obs] in task order after the join, so metrics and traces are
     identical for any job count. *)
  let children =
    match obs with
    | None -> [||]
    | Some sink ->
        Array.init (List.length workloads) (fun _ -> Ptg_obs.Sink.child sink)
  in
  let rows_arr =
    Pool.parallel_map ?jobs
      (fun (i, spec) ->
        let obs = if Array.length children = 0 then None else Some children.(i) in
        row_of_spec ?obs ~instrs ~warmup ~seed ~config spec)
      (Array.of_list (List.mapi (fun i spec -> (i, spec)) workloads))
  in
  (match obs with
  | None -> ()
  | Some sink ->
      Array.iter (fun child -> Ptg_obs.Sink.merge_into ~src:child ~dst:sink) children);
  of_rows (Array.to_list rows_arr)

let to_rows result =
  List.map
    (fun r ->
      [
        r.workload;
        Table.f2 r.mpki;
        Table.f3 r.base_ipc;
        Table.f3 r.norm_ipc;
        Table.fpct r.slowdown_pct;
        string_of_int r.dram_reads;
        string_of_int r.pte_dram_reads;
      ])
    result.rows
  @ [
      [ "GMEAN"; ""; ""; Table.f3 result.gmean_norm_ipc; ""; ""; "" ];
      [
        "AMEAN"; ""; ""; Table.f3 result.amean_norm_ipc;
        Table.fpct result.amean_slowdown_pct; ""; "";
      ];
    ]

let header =
  [ "workload"; "LLC MPKI"; "IPC_b"; "IPC/IPC_b"; "slowdown"; "DRAM rd"; "PTE rd" ]

let to_string result =
  "Figure 6: PT-Guard normalized IPC and LLC MPKI per workload\n"
  ^ Table.render
      ~align:[ Table.Left; Right; Right; Right; Right; Right; Right ]
      ~header (to_rows result)
  ^ Printf.sprintf
      "Paper: 1.3%% average slowdown, 3.6%% worst (xalancbmk @ 29 MPKI).\n\
       Here:  %.2f%% average slowdown, %.2f%% worst.\n"
      result.amean_slowdown_pct result.max_slowdown_pct

let print result = print_string (to_string result)

let to_csv result ~path = Table.save_csv ~path ~header (to_rows result)

type multi = {
  runs : result list;
  amean_slowdown : Stats.summary;
  max_slowdown : Stats.summary;
}

let run_multi ?jobs ?(seeds = 5) ?instrs ?warmup ?config ?workloads ?obs () =
  if seeds < 1 then invalid_arg "Fig6.run_multi: seeds";
  (* Seeds run in sequence; each seed's workloads fan out across [jobs]
     domains (nesting both would oversubscribe the pool). *)
  let runs =
    List.init seeds (fun i ->
        run ?jobs ?instrs ?warmup ?config ?workloads ?obs
          ~seed:(Int64.of_int (1000 + i)) ())
  in
  {
    runs;
    amean_slowdown =
      Stats.summarize (Array.of_list (List.map (fun r -> r.amean_slowdown_pct) runs));
    max_slowdown =
      Stats.summarize (Array.of_list (List.map (fun r -> r.max_slowdown_pct) runs));
  }

let multi_to_string m =
  Printf.sprintf
    "Figure 6 across %d seeds: average slowdown %.2f%% (se %.3f, min %.2f, max %.2f);\n\
     worst-case slowdown %.2f%% (se %.3f).\n\
     Paper: 1.3%% average, 3.6%% worst.\n"
    m.amean_slowdown.Stats.n m.amean_slowdown.Stats.mean m.amean_slowdown.Stats.stderr
    m.amean_slowdown.Stats.min m.amean_slowdown.Stats.max m.max_slowdown.Stats.mean
    m.max_slowdown.Stats.stderr

let print_multi m = print_string (multi_to_string m)

(** The [ptguard_cli stats] experiment: one fully-observed {!Fullsys} run.

    Everything in the stack reports into a single {!Ptg_obs.Sink}: the
    DRAM device, the integrity engine, the memory controller, the TLB and
    the OS journal. The run is single-domain and seed-deterministic, so
    the exported metrics and trace are byte-stable — the CLI golden tests
    pin them. *)

type result = {
  sink : Ptg_obs.Sink.t;
  fullsys : Fullsys.result;
}

val run : ?seed:int64 -> ?pages:int -> ?instrs:int -> unit -> result
(** Defaults: seed 42, 512 mapped pages, 20K instructions — small enough
    for tests, busy enough that MAC verifications, corrections and OS
    journal entries all appear in the sink. *)

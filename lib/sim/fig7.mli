(** Figure 7: average and worst-case slowdown of PT-Guard vs Optimized
    PT-Guard as the MAC computation latency sweeps 5..20 cycles.

    Paper result being reproduced: PT-Guard's average slowdown scales
    0.7% -> 2.6% across the sweep while Optimized PT-Guard stays below
    0.3% (its MAC computations cover < 2% of DRAM reads); at the default
    10 cycles, Optimized averages 0.2% with a 0.4% worst case. *)

type point = {
  design : Ptguard.Config.design;
  mac_latency : int;
  avg_slowdown_pct : float;
  max_slowdown_pct : float;
  max_workload : string;
  mac_reads_fraction : float;
      (** fraction of DRAM reads that paid the MAC latency *)
}

type result = { points : point list }

val run :
  ?jobs:int ->
  ?instrs:int ->
  ?warmup:int ->
  ?seed:int64 ->
  ?latencies:int list ->
  ?workloads:Ptg_workloads.Workload.spec list ->
  ?obs:Ptg_obs.Sink.t ->
  unit ->
  result
(** Defaults: latencies [5; 10; 15; 20], both designs, all workloads.
    [jobs] fans the shared baseline runs and the (design, latency) sweep
    points across domains; results are independent of the job count.
    With [obs], each sweep case's guard reports into a child sink merged
    back in case order (deterministic for any job count). *)

val to_string : result -> string
(** Exactly the bytes {!print} writes to stdout. *)

val print : result -> unit
val to_csv : result -> path:string -> unit

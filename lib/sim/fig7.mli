(** Figure 7: average and worst-case slowdown of PT-Guard vs Optimized
    PT-Guard as the MAC computation latency sweeps 5..20 cycles.

    Paper result being reproduced: PT-Guard's average slowdown scales
    0.7% -> 2.6% across the sweep while Optimized PT-Guard stays below
    0.3% (its MAC computations cover < 2% of DRAM reads); at the default
    10 cycles, Optimized averages 0.2% with a 0.4% worst case. *)

type point = {
  design : Ptguard.Config.design;
  mac_latency : int;
  avg_slowdown_pct : float;
  max_slowdown_pct : float;
  max_workload : string;
  mac_reads_fraction : float;
      (** fraction of DRAM reads that paid the MAC latency *)
}

type result = { points : point list }

val default_latencies : int list
(** [[5; 10; 15; 20]], the paper's sweep. *)

val cases : ?latencies:int list -> unit -> (Ptguard.Config.design * int) list
(** The sweep's (design, MAC latency) points in presentation order:
    Baseline across [latencies], then Optimized. *)

val base_runs :
  ?jobs:int ->
  instrs:int ->
  warmup:int ->
  seed:int64 ->
  Ptg_workloads.Workload.spec list ->
  (Ptg_workloads.Workload.spec * Ptg_cpu.Core.result) list
(** The unprotected per-workload runs every sweep point is normalized
    against. Deterministic for any [jobs]; each workload seeds its own
    generator from [seed]. *)

val point :
  ?obs:Ptg_obs.Sink.t ->
  instrs:int ->
  warmup:int ->
  seed:int64 ->
  base_results:(Ptg_workloads.Workload.spec * Ptg_cpu.Core.result) list ->
  Ptguard.Config.design * int ->
  point
(** One sweep point from shared baselines: guarded runs over every
    workload in [base_results], averaged and worst-cased. Independent of
    every other point, so points can be computed in any batching (the
    checkpoint driver's slicing contract). *)

val run :
  ?jobs:int ->
  ?instrs:int ->
  ?warmup:int ->
  ?seed:int64 ->
  ?latencies:int list ->
  ?workloads:Ptg_workloads.Workload.spec list ->
  ?obs:Ptg_obs.Sink.t ->
  unit ->
  result
(** Defaults: latencies [5; 10; 15; 20], both designs, all workloads.
    [jobs] fans the shared baseline runs and the (design, latency) sweep
    points across domains; results are independent of the job count.
    With [obs], each sweep case's guard reports into a child sink merged
    back in case order (deterministic for any job count). *)

val to_string : result -> string
(** Exactly the bytes {!print} writes to stdout. *)

val print : result -> unit
val to_csv : result -> path:string -> unit

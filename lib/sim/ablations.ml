open Ptg_util
open Ptguard

(* --- Correction-strategy ablation ------------------------------------ *)

type correction_row = {
  label : string;
  corrected_pct : float;
  avg_guesses_when_corrected : float;
}

type correction_result = {
  p_flip : float;
  lines : int;
  rows : correction_row list;
}

let masks =
  let all = Correction.all_strategies in
  let none = Correction.no_strategies in
  [
    ("all strategies", all);
    ("without soft-MAC", { all with Correction.use_soft_mac = false });
    ("without flip-and-check", { all with Correction.use_flip_and_check = false });
    ("without zero-reset", { all with Correction.use_zero_reset = false });
    ("without flag-vote", { all with Correction.use_flag_vote = false });
    ("without pfn-contiguity", { all with Correction.use_pfn_contiguity = false });
    ("only soft-MAC", { none with Correction.use_soft_mac = true });
    ("only flip-and-check", { none with Correction.use_flip_and_check = true });
    ("only zero-reset", { none with Correction.use_zero_reset = true });
  ]

let correction ?jobs ?(lines = 400) ?(seed = 21L) ?(p_flip = 1.0 /. 256.0) () =
  let rng = Rng.create seed in
  let config = Config.optimized in
  let engine = Engine.create ~config ~rng:(Rng.split rng) () in
  let key = Engine.key engine in
  let mac_zero =
    Ptg_crypto.Mac.truncate ~width:config.Config.mac_bits
      (Ptg_crypto.Mac.compute_zero key)
  in
  let params =
    { (Ptg_vm.Process_model.draw_params rng) with Ptg_vm.Process_model.target_ptes = 32768 }
  in
  let population = Ptg_vm.Process_model.leaf_lines rng params in
  (* Pre-draw a shared set of (stored, faulty) cases so every mask faces
     the same faults. *)
  let cases = ref [] in
  let n = ref 0 in
  let counter = ref 0 in
  while !n < lines do
    incr counter;
    let line = population.(Rng.int rng (Array.length population)) in
    let addr = Int64.of_int (0x200_0000 + (!counter * 64)) in
    let stored = Engine.process_write engine ~addr line in
    let faulty, flips = Ptg_rowhammer.Inject.flip_line rng ~p_flip stored in
    (* Only protected-bit damage is interesting for correction. *)
    if flips <> [] && not (Correction.verify_only config key ~addr faulty) then begin
      incr n;
      cases := (addr, line, faulty) :: !cases
    end
  done;
  (* Every mask replays the same pre-drawn faults; [Correction.correct]
     draws nothing, so fanning the masks across domains is exact. *)
  let rows =
    Array.to_list
      (Pool.parallel_map ?jobs
         (fun (label, strategies) ->
        let corrected = ref 0 and guesses_sum = ref 0 in
        List.iter
          (fun (addr, original, faulty) ->
            let prepared =
              Ptg_pte.Protection.embed_identifier faulty (Engine.identifier engine)
            in
            match Correction.correct ~strategies ~mac_zero config key ~addr prepared with
            | Correction.Corrected { line = fixed; guesses; _ } ->
                let m = Config.masked_for_mac config in
                if Ptg_pte.Line.equal (m fixed) (m original) then begin
                  incr corrected;
                  guesses_sum := !guesses_sum + guesses
                end
            | Correction.Uncorrectable _ -> ())
          !cases;
        {
          label;
          corrected_pct = 100.0 *. float_of_int !corrected /. float_of_int lines;
          avg_guesses_when_corrected =
            (if !corrected = 0 then 0.0
             else float_of_int !guesses_sum /. float_of_int !corrected);
        })
         (Array.of_list masks))
  in
  { p_flip; lines; rows }

let print_correction r =
  Printf.printf
    "Correction-strategy ablation (p_flip = %.4f, %d faulty lines):\n" r.p_flip r.lines;
  Table.print
    ~align:[ Table.Left; Right; Right ]
    ~header:[ "strategy mask"; "corrected"; "avg guesses" ]
    (List.map
       (fun row ->
         [ row.label; Table.fpct row.corrected_pct; Table.f2 row.avg_guesses_when_corrected ])
       r.rows)

(* --- Write-pattern selectivity --------------------------------------- *)

type pattern_result = {
  data_lines_tested : int;
  basic_matches : int;
  extended_matches : int;
  zero_lines : int;
  pte_lines_tested : int;
  pte_basic_matches : int;
  pte_extended_matches : int;
}

let pattern ?(lines = 20_000) ?(seed = 22L) () =
  let rng = Rng.create seed in
  let prot = Ptg_pte.Protection.default in
  (* Realistic data-line mixture: integers of various magnitudes, floats,
     pointers, zero lines — the kinds of payloads DRAM actually holds. *)
  let random_data_line () =
    let kind = Rng.int rng 10 in
    Array.init 8 (fun _ ->
        match kind with
        | 0 | 1 -> 0L (* zero line *)
        | 2 | 3 -> Int64.of_int (Rng.int rng 65536) (* small ints *)
        | 4 | 5 ->
            (* Power-of-two doubles (0.5, 1.0, 2.0, ...): zero mantissa,
               so the MAC field is clear, but the exponent occupies the
               identifier field — they match the 96-bit pattern only. *)
            Int64.bits_of_float (Float.pow 2.0 (float_of_int (Rng.int rng 64 - 32)))
        | 6 | 7 -> Int64.logor 0x0000_7F00_0000_0000L
                     (Int64.logand (Rng.next rng) 0xFF_FFFF_FFFFL) (* user pointers *)
        | _ -> Rng.next rng (* uniform noise *))
  in
  let basic = ref 0 and extended = ref 0 and zero = ref 0 in
  for _ = 1 to lines do
    let l = random_data_line () in
    if Ptg_pte.Line.is_zero l then incr zero;
    if Ptg_pte.Protection.matches_basic_pattern prot l then incr basic;
    if Ptg_pte.Protection.matches_extended_pattern prot l then incr extended
  done;
  let params = Ptg_vm.Process_model.draw_params rng in
  let pte_lines = Ptg_vm.Process_model.leaf_lines rng params in
  let pte_basic = ref 0 and pte_extended = ref 0 in
  Array.iter
    (fun l ->
      if Ptg_pte.Protection.matches_basic_pattern prot l then incr pte_basic;
      if Ptg_pte.Protection.matches_extended_pattern prot l then incr pte_extended)
    pte_lines;
  {
    data_lines_tested = lines;
    basic_matches = !basic;
    extended_matches = !extended;
    zero_lines = !zero;
    pte_lines_tested = Array.length pte_lines;
    pte_basic_matches = !pte_basic;
    pte_extended_matches = !pte_extended;
  }

let print_pattern r =
  print_endline "Write-pattern selectivity (96-bit basic vs 152-bit extended):";
  Table.print
    ~align:[ Table.Left; Right; Right ]
    ~header:[ "population"; "96-bit matches"; "152-bit matches" ]
    [
      [ Printf.sprintf "data lines (%d, %d all-zero)" r.data_lines_tested r.zero_lines;
        string_of_int r.basic_matches; string_of_int r.extended_matches ];
      [ Printf.sprintf "PTE lines (%d)" r.pte_lines_tested;
        string_of_int r.pte_basic_matches; string_of_int r.pte_extended_matches ];
    ];
  print_endline
    "Every kernel-written PTE line must match both patterns (they do);\n\
     the extended pattern only sheds data lines, shrinking the set of\n\
     reads that ever need a MAC computation."

(* --- Page-size sensitivity --------------------------------------------- *)

type page_size_row = {
  page : string;
  avg_slowdown_pct : float;
  walks_per_kinstr : float;
}

type page_size_result = { rows : page_size_row list }

let page_size ?jobs ?(instrs = 400_000) ?(seed = 24L)
    ?(workloads = Ptg_workloads.Workload.high_mpki) () =
  let run_config label page_shift =
    (* Each workload simulates from seed-derived generators only, so the
       per-workload fan-out is exact for any job count. *)
    let per =
      Pool.parallel_map ?jobs
        (fun spec ->
          let core_cfg = { Ptg_cpu.Core.default_config with Ptg_cpu.Core.page_shift } in
          let run guard =
            let rng = Rng.create seed in
            let stream = Ptg_workloads.Workload.stream rng spec in
            let core = Ptg_cpu.Core.create ~config:core_cfg ~guard () in
            ignore (Ptg_cpu.Core.run core ~instrs:(instrs / 4) ~stream);
            Ptg_cpu.Core.run core ~instrs ~stream
          in
          let base = run Ptg_cpu.Guard_timing.unprotected in
          let guarded =
            run
              (Ptg_cpu.Guard_timing.of_config Config.baseline
                 ~rng:(Rng.create (Int64.add seed 1L)))
          in
          ( 100.0 *. (1.0 -. (guarded.Ptg_cpu.Core.ipc /. base.Ptg_cpu.Core.ipc)),
            1000.0 *. float_of_int base.Ptg_cpu.Core.walks /. float_of_int instrs ))
        (Array.of_list workloads)
    in
    {
      page = label;
      avg_slowdown_pct = Ptg_util.Stats.mean (Array.map fst per);
      walks_per_kinstr = Ptg_util.Stats.mean (Array.map snd per);
    }
  in
  { rows = [ run_config "4K" 12; run_config "2M" 21 ] }

let print_page_size r =
  print_endline "Page-size sensitivity (PT-Guard baseline, high-MPKI workloads):";
  Table.print
    ~align:[ Table.Left; Right; Right ]
    ~header:[ "page size"; "avg slowdown"; "walks/Kinstr" ]
    (List.map
       (fun row ->
         [ row.page; Table.fpct row.avg_slowdown_pct; Table.f2 row.walks_per_kinstr ])
       r.rows);
  print_endline
    "Paper (Section III): larger pages reduce walk frequency and hence
     PT-Guard's already-small overhead."

(* --- CTB overflow via the known-plaintext MAC leak -------------------- *)

type ctb_result = {
  collisions_planted : int;
  ctb_entries_before : int;
  overflow_signalled : bool;
  rekeys : int;
  collisions_after_rekey : int;
  reads_correct_after_rekey : bool;
}

let ctb_overflow ?(seed = 23L) () =
  let rng = Rng.create seed in
  let dram = Ptg_dram.Dram.create () in
  let engine = Engine.create ~config:Config.optimized ~rng:(Rng.split rng) () in
  let mc = Ptg_memctrl.Memctrl.create ~engine dram in
  let overflow = ref false and collisions = ref 0 in
  Engine.on_os_event engine (function
    | Engine.Ctb_overflow -> overflow := true
    | Engine.Collision_detected _ -> incr collisions
    | Engine.Pte_integrity_failure _ | Engine.Rekey_completed _ -> ());
  (* The Section IV-G known-plaintext leak, once per target address:
     (1) write attacker data that matches the extended pattern, so the
         engine embeds a MAC in it;
     (2) hammer one protected bit of the stored line (the MAC now
         mismatches);
     (3) read it back as data: the line is forwarded raw, MAC included —
         the attacker has learned MAC(faulty data, addr);
     (4) write the faulty data with the leaked MAC pre-placed: the
         pattern no longer matches, the collision check fires, the CTB
         gains an entry. *)
  let leak_and_collide i =
    let addr = Int64.of_int (0x9000_0000 + (64 * i)) in
    let payload =
      Array.init 8 (fun j ->
          (* attacker-chosen data, zero in the MAC/identifier fields *)
          Int64.of_int ((i * 1000) + j))
    in
    ignore (Ptg_memctrl.Memctrl.write_line mc ~addr payload ());
    Ptg_dram.Dram.flip_stored_bit dram ~addr ~bit:1 (* flip a protected bit *);
    let leaked =
      match Ptg_memctrl.Memctrl.read_line mc ~addr ~is_pte:false () with
      | { Ptg_memctrl.Memctrl.data = Some l; _ } -> l
      | _ -> assert false
    in
    (* The leaked line carries MAC(payload, addr) and the identifier in
       the clear (the flip broke the data, not the MAC). Recombine the
       attacker's original payload with the leaked metadata fields: its
       MAC now matches its data — a crafted collision. *)
    let meta =
      Int64.logor Ptg_pte.Protection.mac_field_mask
        Ptg_pte.Protection.identifier_field_mask
    in
    let crafted =
      Array.mapi
        (fun j w ->
          Int64.logor
            (Int64.logand w (Int64.lognot meta))
            (Int64.logand leaked.(j) meta))
        payload
    in
    ignore (Ptg_memctrl.Memctrl.write_line mc ~addr crafted ())
  in
  for i = 1 to 5 do
    leak_and_collide i
  done;
  let ctb_entries_before = Ctb.size (Engine.ctb engine) in
  let overflow_signalled = !overflow in
  (* OS response: full-memory re-keying. *)
  Ptg_memctrl.Memctrl.rekey mc ~rng:(Rng.split rng);
  let collisions_after = Ctb.size (Engine.ctb engine) in
  (* Data must still read back correctly after re-keying. *)
  let ok = ref true in
  for i = 1 to 5 do
    let addr = Int64.of_int (0x9000_0000 + (64 * i)) in
    match Ptg_memctrl.Memctrl.read_line mc ~addr ~is_pte:false () with
    | { Ptg_memctrl.Memctrl.data = Some _; _ } -> ()
    | _ -> ok := false
  done;
  {
    collisions_planted = !collisions;
    ctb_entries_before;
    overflow_signalled;
    rekeys = (Engine.stats engine).Engine.rekeys;
    collisions_after_rekey = collisions_after;
    reads_correct_after_rekey = !ok;
  }

let print_ctb r =
  print_endline "CTB overflow via known-plaintext collisions (Section VII-B):";
  Printf.printf
    "  collisions planted:        %d\n\
    \  CTB entries before rekey:  %d (capacity 4)\n\
    \  overflow signalled to OS:  %b\n\
    \  re-key sweeps performed:   %d\n\
    \  CTB entries after rekey:   %d\n\
    \  reads correct after rekey: %b\n"
    r.collisions_planted r.ctb_entries_before r.overflow_signalled r.rekeys
    r.collisions_after_rekey r.reads_correct_after_rekey

(** Figure 9: fraction of faulty PTE cachelines corrected by PT-Guard's
    best-effort correction, per bit-flip probability.

    Paper result being reproduced: across workloads, 93% of erroneous PTE
    cachelines are corrected at p_flip = 1/512 (the DDR4 worst case) and
    70% at 1/128 (the LPDDR4 worst case), with 100% detection and no
    mis-corrections (126M simulated PTE accesses in the paper).

    PTE cachelines are drawn from per-workload simulated processes,
    weighted by the number of present PTEs in the line — walks fetch the
    lines of mapped pages, so populated lines dominate the sample, exactly
    as in traces of page-table walks. *)

type cell = {
  p_flip : float;
  sampled : int;          (** faulty lines examined (>= 1 flip) *)
  corrected : int;
  uncorrectable : int;    (** detected and reported to the OS *)
  benign : int;           (** flips confined to unprotected bits *)
  miscorrections : int;   (** must be 0 *)
  escapes : int;          (** tampering that passed verification; must be 0 *)
  corrected_pct : float;  (** corrected / (corrected + uncorrectable) *)
}

type workload_result = { workload : string; cells : cell list }

type result = {
  per_workload : workload_result list;
  average : cell list;       (** pooled over workloads, per p_flip *)
  step_histogram : (string * int) list;
      (** which correction strategy fired, across all corrections *)
}

val default_p_flips : float list
(** [1/1024; 1/512; 1/256; 1/128], the x-axis of Figure 9. *)

type prepared = {
  pr_spec : Ptg_workloads.Workload.spec;
  pr_params : Ptg_vm.Process_model.params;
  pr_wl_rng : Ptg_util.Rng.t;
  pr_engine_rng : Ptg_util.Rng.t;
}
(** One workload's generator state, split serially off the master seed
    stream in workload order. *)

val prepare : seed:int64 -> Ptg_workloads.Workload.spec list -> prepared list
(** Derive every workload's generator state from [seed]. Cheap relative
    to a campaign — a checkpoint-resumed slice re-prepares all workloads
    and runs only the missing ones, bit-identically. *)

val run_workload :
  ?obs:Ptg_obs.Sink.t ->
  lines_per_point:int ->
  p_flips:float list ->
  config:Ptguard.Config.t ->
  prepared ->
  workload_result * (string * int) list
(** One workload's injection campaign; the snd is its correction-step
    histogram as a key-sorted assoc list (serializable, mergeable). *)

val assemble :
  p_flips:float list ->
  (workload_result * (string * int) list) list ->
  result
(** Merge per-workload parts (in workload order) into the figure:
    byte-identical however the parts were batched. *)

val run :
  ?jobs:int ->
  ?lines_per_point:int ->
  ?seed:int64 ->
  ?p_flips:float list ->
  ?config:Ptguard.Config.t ->
  ?workloads:Ptg_workloads.Workload.spec list ->
  ?obs:Ptg_obs.Sink.t ->
  unit ->
  result
(** Defaults: 300 faulty lines per (workload, p_flip) point, the Optimized
    design, the Figure 9 workload subset. [jobs] fans the per-workload
    injection campaigns across domains; each workload draws from its own
    generator split serially off the master stream, so results are
    independent of the job count. With [obs], each workload's engine
    reports into a child sink merged back in workload order. *)

val to_string : result -> string
(** Exactly the bytes {!print} writes to stdout. *)

val print : result -> unit
val to_csv : result -> path:string -> unit

type multi = {
  p_flips : float list;
  corrected : Ptg_util.Stats.summary list;  (** per p_flip, across seeds *)
  total_miscorrections : int;
  total_escapes : int;
}

val run_multi :
  ?jobs:int ->
  ?seeds:int ->
  ?lines_per_point:int ->
  ?p_flips:float list ->
  ?config:Ptguard.Config.t ->
  ?workloads:Ptg_workloads.Workload.spec list ->
  unit ->
  multi
(** Repeat {!run} over [seeds] seeds (default 5) and summarize the spread
    of the average corrected%% per flip probability. *)

val multi_to_string : multi -> string
val print_multi : multi -> unit

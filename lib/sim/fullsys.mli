(** Full-system co-simulation: the analogue of the paper's gem5
    full-system mode.

    Unlike the calibrated timing model behind Figures 6/7 (synthetic
    page-table layout, classification-only guard), this mode wires
    {e everything} together functionally:

    - a process's 4-level page tables are built in simulated DRAM through
      the guarded memory controller (MACs embedded by the engine on every
      kernel write);
    - the core's TLB misses trigger {!Ptg_memctrl.Mmu.walk}s that read the
      {e actual} PTE cachelines back through the controller, paying real
      verification (and correction) work;
    - a Rowhammer attacker hammers the DRAM rows holding the leaf page
      table concurrently with execution, injecting real flips via the
      disturbance fault model;
    - a shadow copy of the intended address space checks every
      translation the core consumes: any mismatch is an exploit
      ([wrong_translations] — the number the whole paper is about).

    Runs are slower than the calibrated model (the cipher executes in
    software on every walk line), so use demo-scale instruction counts. *)

type config = {
  guarded : bool;
  attack : bool;
  hammer_period : int;   (** instructions between attacker bursts *)
  hammer_burst : int;    (** double-sided rotations per burst *)
  fault : Ptg_rowhammer.Fault_model.config;
}

val default_config : config
(** Guarded, under attack, bursts of 2000 rotations every 2000
    instructions, LPDDR4-class fault model (RTH 4.8K, p_flip 1%). *)

type result = {
  instrs : int;
  cycles : int;
  ipc : float;
  walks : int;
  walk_corrections : int;   (** walks that survived via correction *)
  walk_exceptions : int;    (** PTECheckFailed walks (OS re-faulted) *)
  refaults : int;           (** pages the OS rebuilt after exceptions *)
  flips_landed : int;       (** Rowhammer flips in the PT rows *)
  wrong_translations : int; (** translations disagreeing with the shadow
                                mapping: MUST be 0 when guarded *)
}

type t

val create :
  ?config:config -> ?pages:int -> ?obs:Ptg_obs.Sink.t -> seed:int64 -> unit -> t
(** Build the machine and a process with [pages] mapped pages
    (default 2048). With [obs], the DRAM device, integrity engine, memory
    controller and TLB all report into the sink, and a read-only
    {!Ptg_os.Os_handler} is attached (auto-rekey disabled, private RNG) so
    journal entries land in the trace — the observed run consumes exactly
    the same random stream and produces exactly the same {!result} as the
    unobserved one. *)

val run : t -> instrs:int -> result
(** Execute [instrs] more instructions. The attacker's hammer schedule
    keys off the {e absolute} instruction counter, so splitting a budget
    across several [run] calls (checkpointing, resume) replays exactly
    the bursts of one uninterrupted call. The returned statistics cover
    this call only; use {!totals} for the lifetime numbers. *)

val instrs_done : t -> int
(** Instructions executed so far, across all [run] calls. *)

val totals : t -> result
(** Lifetime result — equal to the single-[run] result when the whole
    budget ran in one call, however many chunks actually produced it. *)

val memctrl : t -> Ptg_memctrl.Memctrl.t
val os_handler : t -> Ptg_os.Os_handler.t option
(** The journal observer; [Some] exactly when [obs] was passed. *)

val engine : t -> Ptguard.Engine.t option
(** The controller's integrity engine ([None] when unguarded). *)

val pp_result : Format.formatter -> result -> unit

(** {2 Checkpointable state}

    The full mutable surface of the machine. Everything else — the
    shadow mapping, the vaddr array, victim coordinates — is write-once
    in [create] and reconstructed bit-identically from the same
    (config, pages, seed), which is the restore contract: build a fresh
    [t] with the creation parameters of the checkpointed run, then
    [set_state] it. Checkpointing excludes observability ([obs]), whose
    sinks cannot be serialized. *)

type state = {
  s_rng : int64 array;
  s_dram : Ptg_dram.Dram.state;
  s_fault : Ptg_rowhammer.Fault_model.state;
  s_engine : Ptguard.Engine.state option;
  s_mc_now : int;
  s_table : Ptg_vm.Page_table.state;
  s_alloc : Ptg_vm.Frame_allocator.state;
  s_tlb : Ptg_cpu.Tlb.state;
  s_translations : (int64 * int64) list;  (** vpn-sorted *)
  s_instr : int;
  s_now : int;
  s_walks : int;
  s_walk_corrections : int;
  s_walk_exceptions : int;
  s_refaults : int;
  s_wrong_translations : int;
}

val state : t -> state

val set_state : t -> state -> unit
(** Raises [Invalid_argument] when the state's guarded/unguarded shape
    does not match this machine's configuration. *)

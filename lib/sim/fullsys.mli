(** Full-system co-simulation: the analogue of the paper's gem5
    full-system mode.

    Unlike the calibrated timing model behind Figures 6/7 (synthetic
    page-table layout, classification-only guard), this mode wires
    {e everything} together functionally:

    - a process's 4-level page tables are built in simulated DRAM through
      the guarded memory controller (MACs embedded by the engine on every
      kernel write);
    - the core's TLB misses trigger {!Ptg_memctrl.Mmu.walk}s that read the
      {e actual} PTE cachelines back through the controller, paying real
      verification (and correction) work;
    - a Rowhammer attacker hammers the DRAM rows holding the leaf page
      table concurrently with execution, injecting real flips via the
      disturbance fault model;
    - a shadow copy of the intended address space checks every
      translation the core consumes: any mismatch is an exploit
      ([wrong_translations] — the number the whole paper is about).

    Runs are slower than the calibrated model (the cipher executes in
    software on every walk line), so use demo-scale instruction counts. *)

type config = {
  guarded : bool;
  attack : bool;
  hammer_period : int;   (** instructions between attacker bursts *)
  hammer_burst : int;    (** double-sided rotations per burst *)
  fault : Ptg_rowhammer.Fault_model.config;
}

val default_config : config
(** Guarded, under attack, bursts of 2000 rotations every 2000
    instructions, LPDDR4-class fault model (RTH 4.8K, p_flip 1%). *)

type result = {
  instrs : int;
  cycles : int;
  ipc : float;
  walks : int;
  walk_corrections : int;   (** walks that survived via correction *)
  walk_exceptions : int;    (** PTECheckFailed walks (OS re-faulted) *)
  refaults : int;           (** pages the OS rebuilt after exceptions *)
  flips_landed : int;       (** Rowhammer flips in the PT rows *)
  wrong_translations : int; (** translations disagreeing with the shadow
                                mapping: MUST be 0 when guarded *)
}

type t

val create :
  ?config:config -> ?pages:int -> ?obs:Ptg_obs.Sink.t -> seed:int64 -> unit -> t
(** Build the machine and a process with [pages] mapped pages
    (default 2048). With [obs], the DRAM device, integrity engine, memory
    controller and TLB all report into the sink, and a read-only
    {!Ptg_os.Os_handler} is attached (auto-rekey disabled, private RNG) so
    journal entries land in the trace — the observed run consumes exactly
    the same random stream and produces exactly the same {!result} as the
    unobserved one. *)

val run : t -> instrs:int -> result

val memctrl : t -> Ptg_memctrl.Memctrl.t
val os_handler : t -> Ptg_os.Os_handler.t option
(** The journal observer; [Some] exactly when [obs] was passed. *)

val engine : t -> Ptguard.Engine.t option
(** The controller's integrity engine ([None] when unguarded). *)

val pp_result : Format.formatter -> result -> unit

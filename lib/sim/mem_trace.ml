open Ptg_util

type event = { addr : int64; is_write : bool; cycle : int }
type t = { workload : string; events : event array }
type format = Text | Binary

let length t = Array.length t.events

let equal a b =
  a.workload = b.workload
  && Array.length a.events = Array.length b.events
  && Array.for_all2 (fun (x : event) y -> x = y) a.events b.events

let record ?(instrs = 500_000) ?(seed = 18L) (spec : Ptg_workloads.Workload.spec) =
  let rng = Rng.create seed in
  let stream = Ptg_workloads.Workload.stream rng spec in
  let acc = ref [] in
  for cycle = 0 to instrs - 1 do
    match stream () with
    | Ptg_cpu.Core.Nonmem -> ()
    | Ptg_cpu.Core.Load addr ->
        acc := { addr = Ptg_pte.Line.line_addr addr; is_write = false; cycle } :: !acc
    | Ptg_cpu.Core.Store addr ->
        acc := { addr = Ptg_pte.Line.line_addr addr; is_write = true; cycle } :: !acc
  done;
  { workload = spec.Ptg_workloads.Workload.name; events = Array.of_list (List.rev !acc) }

(* ------------------------------------------------------------------ *)
(* Text format                                                         *)
(* ------------------------------------------------------------------ *)

let save_text t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# %s\n" t.workload;
      Array.iter
        (fun e ->
          Printf.fprintf oc "0x%Lx %c %d\n" e.addr
            (if e.is_write then 'W' else 'R')
            e.cycle)
        t.events)

let load_text ~path ic =
  let header =
    try input_line ic
    with End_of_file ->
      invalid_arg (Printf.sprintf "Mem_trace.load: %s: empty file" path)
  in
  let workload =
    if String.length header > 2 && String.sub header 0 2 = "# " then
      String.sub header 2 (String.length header - 2)
    else
      invalid_arg
        (Printf.sprintf "Mem_trace.load: %s, line 1: missing \"# workload\" header"
           path)
  in
  let acc = ref [] in
  let lineno = ref 1 in
  (try
     while true do
       let raw = input_line ic in
       incr lineno;
       match String.trim raw with
       | "" -> ()
       | s -> (
           match String.split_on_char ' ' s |> List.filter (fun t -> t <> "") with
           | [ addr_s; op_s; cycle_s ] ->
               let addr =
                 match Int64.of_string_opt addr_s with
                 | Some a -> a
                 | None ->
                     invalid_arg
                       (Printf.sprintf
                          "Mem_trace.load: %s, line %d: not an address: %S" path
                          !lineno addr_s)
               in
               let is_write =
                 match op_s with
                 | "R" -> false
                 | "W" -> true
                 | _ ->
                     invalid_arg
                       (Printf.sprintf
                          "Mem_trace.load: %s, line %d: operation must be R or \
                           W, got %S"
                          path !lineno op_s)
               in
               let cycle =
                 match int_of_string_opt cycle_s with
                 | Some c when c >= 0 -> c
                 | Some _ ->
                     invalid_arg
                       (Printf.sprintf
                          "Mem_trace.load: %s, line %d: negative cycle %S" path
                          !lineno cycle_s)
                 | None ->
                     invalid_arg
                       (Printf.sprintf
                          "Mem_trace.load: %s, line %d: not a cycle: %S" path
                          !lineno cycle_s)
               in
               acc := { addr; is_write; cycle } :: !acc
           | _ ->
               invalid_arg
                 (Printf.sprintf
                    "Mem_trace.load: %s, line %d: want \"addr R|W cycle\", got %S"
                    path !lineno s))
     done
   with End_of_file -> ());
  { workload; events = Array.of_list (List.rev !acc) }

(* ------------------------------------------------------------------ *)
(* Binary format: magic + version + varints (see EXPERIMENTS.md)       *)
(* ------------------------------------------------------------------ *)

let magic = "PTGM"
let version = 1

let zigzag v = Int64.logxor (Int64.shift_left v 1) (Int64.shift_right v 63)

let unzigzag v =
  Int64.logxor (Int64.shift_right_logical v 1) (Int64.neg (Int64.logand v 1L))

let put_varint buf v =
  (* LEB128 on the unsigned 64-bit payload. *)
  let v = ref v in
  let continue = ref true in
  while !continue do
    let byte = Int64.to_int (Int64.logand !v 0x7fL) in
    v := Int64.shift_right_logical !v 7;
    if !v = 0L then begin
      Buffer.add_char buf (Char.chr byte);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (byte lor 0x80))
  done

let save_binary t ~path =
  let buf = Buffer.create (64 + (Array.length t.events * 3)) in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  put_varint buf (Int64.of_int (String.length t.workload));
  Buffer.add_string buf t.workload;
  put_varint buf (Int64.of_int (Array.length t.events));
  let prev_addr = ref 0L and prev_cycle = ref 0 in
  Array.iter
    (fun e ->
      put_varint buf (zigzag (Int64.sub e.addr !prev_addr));
      let cycle_delta = Int64.of_int (e.cycle - !prev_cycle) in
      put_varint buf
        (Int64.logor
           (Int64.shift_left (zigzag cycle_delta) 1)
           (if e.is_write then 1L else 0L));
      prev_addr := e.addr;
      prev_cycle := e.cycle)
    t.events;
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc buf)

let load_binary ~path (s : string) =
  let pos = ref (String.length magic + 1) in
  let truncated () =
    invalid_arg
      (Printf.sprintf "Mem_trace.load: %s: truncated at byte %d" path !pos)
  in
  let byte () =
    if !pos >= String.length s then truncated ();
    let b = Char.code s.[!pos] in
    incr pos;
    b
  in
  let get_varint () =
    let v = ref 0L and shift = ref 0 and continue = ref true in
    while !continue do
      if !shift > 63 then
        invalid_arg
          (Printf.sprintf "Mem_trace.load: %s: varint overflow at byte %d" path
             !pos);
      let b = byte () in
      v := Int64.logor !v (Int64.shift_left (Int64.of_int (b land 0x7f)) !shift);
      shift := !shift + 7;
      continue := b land 0x80 <> 0
    done;
    !v
  in
  let v = Char.code s.[String.length magic] in
  if v <> version then
    invalid_arg
      (Printf.sprintf "Mem_trace.load: %s: unsupported version %d (want %d)"
         path v version);
  let name_len = Int64.to_int (get_varint ()) in
  if name_len < 0 || !pos + name_len > String.length s then truncated ();
  let workload = String.sub s !pos name_len in
  pos := !pos + name_len;
  let count = Int64.to_int (get_varint ()) in
  if count < 0 then
    invalid_arg (Printf.sprintf "Mem_trace.load: %s: negative event count" path);
  let prev_addr = ref 0L and prev_cycle = ref 0 in
  let events =
    Array.init count (fun _ ->
        let addr = Int64.add !prev_addr (unzigzag (get_varint ())) in
        let packed = get_varint () in
        let is_write = Int64.logand packed 1L = 1L in
        let cycle_delta =
          Int64.to_int (unzigzag (Int64.shift_right_logical packed 1))
        in
        let cycle = !prev_cycle + cycle_delta in
        if cycle < 0 then
          invalid_arg
            (Printf.sprintf "Mem_trace.load: %s: negative cycle at byte %d" path
               !pos);
        prev_addr := addr;
        prev_cycle := cycle;
        { addr; is_write; cycle })
  in
  if !pos <> String.length s then
    invalid_arg
      (Printf.sprintf "Mem_trace.load: %s: %d trailing bytes after the last event"
         path
         (String.length s - !pos));
  { workload; events }

(* ------------------------------------------------------------------ *)
(* Save / load dispatch                                                *)
(* ------------------------------------------------------------------ *)

let save t ~format ~path =
  Walk_trace.validate_name ~context:"Mem_trace.save" t.workload;
  match format with Text -> save_text t ~path | Binary -> save_binary t ~path

let load ~path =
  let contents = In_channel.with_open_bin path In_channel.input_all in
  let is_binary =
    String.length contents >= String.length magic + 1
    && String.sub contents 0 (String.length magic) = magic
  in
  let t =
    if is_binary then load_binary ~path contents
    else
      In_channel.with_open_text path (fun ic -> load_text ~path ic)
  in
  Walk_trace.validate_name ~context:"Mem_trace.load" t.workload;
  t

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)
(* ------------------------------------------------------------------ *)

type replay_result = {
  events : int;
  reads : int;
  writes : int;
  activations : int;
  refreshes : int;
  mitigation_refreshes : int;
}

let replay ?mitigation ?(params = []) ?pt_row ?(seed = 42L) (t : t) =
  let dram = Ptg_dram.Dram.create () in
  let mc = Ptg_memctrl.Memctrl.create dram in
  let reads = ref 0 and writes = ref 0 in
  let activations = ref 0 and refreshes = ref 0 in
  (* All counting goes through the controller's observer hook points —
     the same surface registry mitigations attach to. *)
  Ptg_memctrl.Memctrl.on_activate mc (fun _ -> incr activations);
  Ptg_memctrl.Memctrl.on_refresh mc (fun ~channel:_ ~bank:_ ~row:_ ->
      incr refreshes);
  Ptg_memctrl.Memctrl.on_line_read mc (fun ~addr:_ ~is_pte:_ -> incr reads);
  let attached =
    match mitigation with
    | None -> Ok None
    | Some name ->
        let rng = Rng.create seed in
        Result.map Option.some
          (Ptg_mitigations.Registry.instantiate ~params name
             (Ptg_mitigations.Registry.ctx ~rng ?pt_row dram))
  in
  Result.map
    (fun mit ->
      Array.iter
        (fun e ->
          if e.is_write then begin
            incr writes;
            ignore
              (Ptg_memctrl.Memctrl.write_line mc ~now:e.cycle ~addr:e.addr
                 (Ptg_dram.Dram.read_line dram e.addr)
                 ())
          end
          else
            ignore
              (Ptg_memctrl.Memctrl.read_line mc ~now:e.cycle ~addr:e.addr
                 ~is_pte:false ()))
        t.events;
      {
        events = Array.length t.events;
        reads = !reads;
        writes = !writes;
        activations = !activations;
        refreshes = !refreshes;
        mitigation_refreshes =
          (match mit with
          | Some m -> Ptg_mitigations.Registry.refreshes_issued m
          | None -> 0);
      })
    attached

let render_result ?mitigation r =
  Printf.sprintf
    "Trace replay (%s): %d events (%d reads, %d writes)\n\
     DRAM: %d row activations, %d targeted refreshes\n\
     Mitigation refreshes issued: %d\n"
    (Option.value ~default:"no mitigation" mitigation)
    r.events r.reads r.writes r.activations r.refreshes r.mitigation_refreshes

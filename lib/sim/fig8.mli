(** Figure 8: distribution of PFN values across the page tables of 623
    simulated processes.

    Paper result being reproduced: 64.13% zero PTEs and 23.73% contiguous
    PFNs on average over 623 processes (24M PTEs), with >99% of lines
    having uniform flags — the locality the correction strategies exploit. *)

type result = {
  aggregate : Ptg_vm.Profile.aggregate;
  sample_rows : (float * float * float) array;
      (** (zero, contiguous, non-contiguous) for a decile sample of
          processes, sorted by contiguity — the Figure 8 curve shape *)
}

val run :
  ?jobs:int -> ?processes:int -> ?seed:int64 -> ?obs:Ptg_obs.Sink.t -> unit -> result
(** Default: 623 processes, matching the paper's survey size. [jobs]
    fans the per-process page-table synthesis across domains; each
    process draws from its own serially-split generator, so results are
    independent of the job count. *)

val to_string : result -> string
(** Exactly the bytes {!print} writes to stdout. *)

val print : result -> unit
val to_csv : result -> path:string -> unit

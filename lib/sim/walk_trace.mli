(** Page-table-walk traces (paper Section VI-F methodology).

    The paper drives the correction study from "execution traces of Page
    Table Walks accessing [the] memory controller" extracted from gem5.
    This module does the equivalent: it records, from the timing core, the
    leaf-PTE cacheline index touched by every walk of a workload, persists
    traces to disk, and replays them against the functional PT-Guard
    engine with fault injection.

    It also validates Figure 9's default methodology: the experiment's
    present-PTE-weighted line sampler is an approximation of true
    walk-frequency sampling; {!compare_samplers} measures how close the
    two are on the same workload. *)

type t = {
  workload : string;
  line_indices : int array;
      (** chronological leaf-PTE-line indices (leaf line k covers virtual
          pages 8k..8k+7 of the workload's address space) *)
}

val record :
  ?instrs:int -> ?seed:int64 -> Ptg_workloads.Workload.spec -> t
(** Run the workload on the timing core (default 500K instructions after
    a short warmup) and record one entry per page-table walk. *)

val length : t -> int

val histogram : t -> (int, int) Hashtbl.t
(** line index -> access count. *)

val save : t -> path:string -> unit
(** One decimal index per line, preceded by a [# workload] header.
    Raises [Invalid_argument] if the workload name is empty or contains
    a newline (it could not round-trip through the one-line header). *)

val validate_name : context:string -> string -> unit
(** The header-name rule shared by the trace formats ({!save} and
    [Mem_trace]): non-empty, no [\n]/[\r]. Raises [Invalid_argument]
    prefixed with [context] on violation. *)

val load : path:string -> t
(** Inverse of {!save}. Blank lines are skipped; a missing header or a
    line that is not a non-negative decimal index raises
    [Invalid_argument] naming the file and its 1-based line number. *)

type replay_result = {
  trace_len : int;
  faulty : int;
  corrected : int;
  uncorrectable : int;
  corrected_pct : float;
}

val replay_with_faults :
  ?p_flip:float ->
  ?seed:int64 ->
  ?max_events:int ->
  t ->
  lines:Ptg_pte.Line.t array ->
  replay_result
(** Replay the trace against PT-Guard: each walked line (trace index mod
    the population size) is written through the engine, hit with uniform
    faults at [p_flip] (default 1/512), and read back as a walk; only
    events with at least one flip count (capped at [max_events],
    default 2000). *)

type sampler_comparison = {
  trace_pct : float;      (** corrected%% under true walk-frequency replay *)
  weighted_pct : float;   (** corrected%% under Fig. 9's weighted sampler *)
}

val compare_samplers :
  ?instrs:int -> ?seed:int64 -> ?p_flip:float -> Ptg_workloads.Workload.spec ->
  sampler_comparison
(** The methodology check: both samplers over the same synthetic process. *)

val print_comparison : Ptg_workloads.Workload.spec -> sampler_comparison -> unit

open Ptg_util
open Ptg_vm

type config = {
  guarded : bool;
  attack : bool;
  hammer_period : int;
  hammer_burst : int;
  fault : Ptg_rowhammer.Fault_model.config;
}

let default_config =
  {
    guarded = true;
    attack = true;
    hammer_period = 2000;
    hammer_burst = 2000;
    fault = Ptg_rowhammer.Fault_model.lpddr4;
  }

type result = {
  instrs : int;
  cycles : int;
  ipc : float;
  walks : int;
  walk_corrections : int;
  walk_exceptions : int;
  refaults : int;
  flips_landed : int;
  wrong_translations : int;
}

type t = {
  cfg : config;
  rng : Rng.t;
  dram : Ptg_dram.Dram.t;
  fault : Ptg_rowhammer.Fault_model.t;
  mc : Ptg_memctrl.Memctrl.t;
  os : Ptg_os.Os_handler.t option;
  table : Page_table.t;
  root : int64;
  shadow : (int64, int64) Hashtbl.t; (* vpn -> intended pfn *)
  vaddrs : int64 array;              (* mapped pages, index-addressable *)
  tlb : Ptg_cpu.Tlb.t;
  translations : (int64, int64) Hashtbl.t; (* vpn -> cached paddr (TLB payload) *)
  victim : Ptg_dram.Geometry.coords;
  mutable instr : int; (* absolute executed-instruction count, across runs *)
  mutable now : int;
  mutable walks : int;
  mutable walk_corrections : int;
  mutable walk_exceptions : int;
  mutable refaults : int;
  mutable wrong_translations : int;
}

let vaddr_base = 0x1000_0000L

let create ?(config = default_config) ?(pages = 2048) ?obs ~seed () =
  let rng = Rng.create seed in
  let dram = Ptg_dram.Dram.create ?obs () in
  let fault =
    Ptg_rowhammer.Fault_model.attach ~config:config.fault ~rng:(Rng.split rng) dram
  in
  let engine =
    if config.guarded then
      Some (Ptguard.Engine.create ~config:Ptguard.Config.optimized ?obs ~rng:(Rng.split rng) ())
    else None
  in
  let mc = Ptg_memctrl.Memctrl.create ?engine ?obs dram in
  (* OS journal observer: only attached when observability is on, and
     carefully non-perturbing — a private RNG (never drawn from: rekey-on-
     overflow is disabled) so the simulation's own stream is untouched. *)
  let os =
    match obs with
    | None -> None
    | Some _ ->
        Some
          (Ptg_os.Os_handler.attach
             ~policy:
               {
                 Ptg_os.Os_handler.auto_rekey_on_overflow = false;
                 failure_threshold_per_row = 1;
               }
             ?obs ~rng:(Rng.create 0L) mc)
  in
  let mem = Ptg_memctrl.Memctrl.phys_mem mc in
  (* Contiguous kernel pool: the leaf tables land in a couple of DRAM rows,
     which is exactly what the attacker wants to aim at. *)
  let kernel_alloc = Frame_allocator.create ~p_break:0.0 ~start_frame:0x20000L rng in
  let user_alloc = Frame_allocator.create ~p_break:0.05 ~start_frame:0x80000L rng in
  let table = Page_table.create ~mem ~alloc:kernel_alloc in
  let shadow = Hashtbl.create pages in
  let vaddrs =
    Array.init pages (fun i ->
        let vaddr = Int64.add vaddr_base (Int64.of_int (i * 4096)) in
        let pfn = Frame_allocator.alloc user_alloc in
        Page_table.map table ~vaddr
          ~pte:(Ptg_pte.X86.make ~writable:true ~user:true ~pfn ());
        Hashtbl.replace shadow (Int64.shift_right_logical vaddr 12) pfn;
        vaddr)
  in
  let victim =
    match Page_table.leaf_line_addrs table with
    | first :: _ -> Ptg_dram.Geometry.decode (Ptg_dram.Dram.geometry dram) first
    | [] -> assert false
  in
  {
    cfg = config;
    rng;
    dram;
    fault;
    mc;
    os;
    table;
    root = Page_table.root table;
    shadow;
    vaddrs;
    tlb = Ptg_cpu.Tlb.create ?obs ();
    translations = Hashtbl.create 64;
    victim;
    instr = 0;
    now = 0;
    walks = 0;
    walk_corrections = 0;
    walk_exceptions = 0;
    refaults = 0;
    wrong_translations = 0;
  }

(* The OS page-fault path after an integrity exception (or a PTE whose
   Present bit was flipped off): rebuild the whole damaged PTE cacheline
   from the kernel's authoritative records (the shadow mapping) and flush
   the TLB, as a real kernel would after INVLPG/remap. *)
let refault t vaddr =
  t.refaults <- t.refaults + 1;
  let vpn = Int64.shift_right_logical vaddr 12 in
  let line_base_vpn = Int64.mul (Int64.div vpn 8L) 8L in
  for k = 0 to 7 do
    let v = Int64.add line_base_vpn (Int64.of_int k) in
    match Hashtbl.find_opt t.shadow v with
    | Some pfn ->
        Page_table.map t.table
          ~vaddr:(Int64.shift_left v 12)
          ~pte:(Ptg_pte.X86.make ~writable:true ~user:true ~pfn ())
    | None -> ()
  done;
  Ptg_cpu.Tlb.flush t.tlb;
  Hashtbl.reset t.translations

let check_translation t vaddr paddr =
  let vpn = Int64.shift_right_logical vaddr 12 in
  match Hashtbl.find_opt t.shadow vpn with
  | Some pfn ->
      if not (Int64.equal (Int64.shift_right_logical paddr 12) pfn) then
        t.wrong_translations <- t.wrong_translations + 1
  | None -> ()

let rec do_walk ?(retried = false) t vaddr =
  t.walks <- t.walks + 1;
  match Ptg_memctrl.Mmu.walk t.mc ~root:t.root ~vaddr with
  | Ptg_memctrl.Mmu.Translated { paddr; latency; _ } ->
      check_translation t vaddr paddr;
      t.now <- t.now + latency;
      Some paddr
  | Ptg_memctrl.Mmu.Corrected_then_translated { paddr; latency; _ } ->
      t.walk_corrections <- t.walk_corrections + 1;
      check_translation t vaddr paddr;
      t.now <- t.now + latency;
      Some paddr
  | Ptg_memctrl.Mmu.Integrity_failure { latency; _ } ->
      t.walk_exceptions <- t.walk_exceptions + 1;
      t.now <- t.now + latency + 2000 (* exception + kernel fault handler *);
      if retried then None
      else begin
        refault t vaddr;
        do_walk ~retried:true t vaddr
      end
  | Ptg_memctrl.Mmu.Not_present { latency; _ } ->
      (* a flip cleared a Present bit (or tore an upper level): the kernel
         sees an ordinary page fault and rebuilds from its records *)
      t.now <- t.now + latency + 2000;
      if retried then None
      else begin
        refault t vaddr;
        do_walk ~retried:true t vaddr
      end

let hammer t =
  ignore
    (Ptg_rowhammer.Attack.run t.dram ~channel:t.victim.Ptg_dram.Geometry.channel
       ~bank:t.victim.Ptg_dram.Geometry.bank
       (Ptg_rowhammer.Attack.Double_sided { victim = t.victim.Ptg_dram.Geometry.row })
       ~iterations:t.cfg.hammer_burst ~start_time:t.now)

let run t ~instrs =
  let start_cycles = t.now and start_walks = t.walks in
  let start_corr = t.walk_corrections and start_exc = t.walk_exceptions in
  let start_refaults = t.refaults and start_wrong = t.wrong_translations in
  let hot = Array.sub t.vaddrs 0 (min 32 (Array.length t.vaddrs)) in
  (* The hammer schedule keys off the absolute instruction counter, so a
     run split into chunks (checkpointed, or resumed from a snapshot)
     fires bursts at exactly the instants one uninterrupted run would. *)
  for _ = 1 to instrs do
    t.instr <- t.instr + 1;
    t.now <- t.now + 1;
    if t.cfg.attack && t.instr mod t.cfg.hammer_period = 0 then hammer t;
    (* 35% memory operations: mostly hot pages (TLB-resident), a cold
       tail that walks. *)
    if Rng.bernoulli t.rng 0.35 then begin
      let vaddr =
        if Rng.bernoulli t.rng 0.8 then Rng.choose t.rng hot
        else Rng.choose t.rng t.vaddrs
      in
      let vpn = Int64.shift_right_logical vaddr 12 in
      let paddr =
        if Ptg_cpu.Tlb.lookup t.tlb ~vpn then Hashtbl.find_opt t.translations vpn
        else begin
          match do_walk t vaddr with
          | Some paddr ->
              Ptg_cpu.Tlb.fill t.tlb ~vpn;
              Hashtbl.replace t.translations vpn paddr;
              Some paddr
          | None -> None
        end
      in
      match paddr with
      | Some paddr ->
          (* the data access itself, timed through the controller *)
          let r = Ptg_memctrl.Memctrl.read_line t.mc ~now:t.now ~addr:paddr ~is_pte:false () in
          t.now <- t.now + (r.Ptg_memctrl.Memctrl.latency / 4)
          (* /4: a crude cache-hit discount so data traffic does not
             swamp the walk effects this mode studies *)
      | None -> ()
    end
  done;
  let cycles = t.now - start_cycles in
  {
    instrs;
    cycles;
    ipc = float_of_int instrs /. float_of_int (max 1 cycles);
    walks = t.walks - start_walks;
    walk_corrections = t.walk_corrections - start_corr;
    walk_exceptions = t.walk_exceptions - start_exc;
    refaults = t.refaults - start_refaults;
    flips_landed = Ptg_rowhammer.Fault_model.flip_count t.fault;
    wrong_translations = t.wrong_translations - start_wrong;
  }

let memctrl t = t.mc
let os_handler t = t.os
let engine t = Ptg_memctrl.Memctrl.engine t.mc
let instrs_done t = t.instr

(* Lifetime result: identical to what a single [run] over the whole
   instruction budget returns, however many chunks (or snapshot resumes)
   actually produced it — the checkpoint drivers report this. *)
let totals t =
  {
    instrs = t.instr;
    cycles = t.now;
    ipc = float_of_int t.instr /. float_of_int (max 1 t.now);
    walks = t.walks;
    walk_corrections = t.walk_corrections;
    walk_exceptions = t.walk_exceptions;
    refaults = t.refaults;
    flips_landed = Ptg_rowhammer.Fault_model.flip_count t.fault;
    wrong_translations = t.wrong_translations;
  }

type state = {
  s_rng : int64 array;
  s_dram : Ptg_dram.Dram.state;
  s_fault : Ptg_rowhammer.Fault_model.state;
  s_engine : Ptguard.Engine.state option;
  s_mc_now : int;
  s_table : Page_table.state;
  s_alloc : Frame_allocator.state;
  s_tlb : Ptg_cpu.Tlb.state;
  s_translations : (int64 * int64) list; (* vpn-sorted *)
  s_instr : int;
  s_now : int;
  s_walks : int;
  s_walk_corrections : int;
  s_walk_exceptions : int;
  s_refaults : int;
  s_wrong_translations : int;
}

let state t =
  {
    s_rng = Rng.state t.rng;
    s_dram = Ptg_dram.Dram.state t.dram;
    s_fault = Ptg_rowhammer.Fault_model.state t.fault;
    s_engine = Option.map Ptguard.Engine.state (engine t);
    s_mc_now = Ptg_memctrl.Memctrl.now t.mc;
    s_table = Page_table.state t.table;
    s_alloc = Frame_allocator.state (Page_table.allocator t.table);
    s_tlb = Ptg_cpu.Tlb.state t.tlb;
    s_translations =
      Hashtbl.fold (fun vpn paddr acc -> (vpn, paddr) :: acc) t.translations []
      |> List.sort (fun (a, _) (b, _) -> Int64.compare a b);
    s_instr = t.instr;
    s_now = t.now;
    s_walks = t.walks;
    s_walk_corrections = t.walk_corrections;
    s_walk_exceptions = t.walk_exceptions;
    s_refaults = t.refaults;
    s_wrong_translations = t.wrong_translations;
  }

(* Everything not restored here is reconstructed bit-identically by
   [create] from the same (config, pages, seed): the shadow mapping,
   victim coordinates and vaddr array are write-once, and the OS journal
   observer only exists under observability (which checkpointing
   excludes). *)
let set_state t s =
  (match (engine t, s.s_engine) with
  | None, None | Some _, Some _ -> ()
  | _ -> invalid_arg "Fullsys.set_state: guarded/unguarded mismatch");
  Rng.set_state t.rng s.s_rng;
  Ptg_dram.Dram.set_state t.dram s.s_dram;
  Ptg_rowhammer.Fault_model.set_state t.fault s.s_fault;
  (match (engine t, s.s_engine) with
  | Some e, Some es -> Ptguard.Engine.set_state e es
  | _ -> ());
  Ptg_memctrl.Memctrl.set_now t.mc s.s_mc_now;
  Page_table.set_state t.table s.s_table;
  Frame_allocator.set_state (Page_table.allocator t.table) s.s_alloc;
  Ptg_cpu.Tlb.set_state t.tlb s.s_tlb;
  Hashtbl.reset t.translations;
  List.iter (fun (vpn, paddr) -> Hashtbl.replace t.translations vpn paddr)
    s.s_translations;
  t.instr <- s.s_instr;
  t.now <- s.s_now;
  t.walks <- s.s_walks;
  t.walk_corrections <- s.s_walk_corrections;
  t.walk_exceptions <- s.s_walk_exceptions;
  t.refaults <- s.s_refaults;
  t.wrong_translations <- s.s_wrong_translations

let pp_result fmt r =
  Format.fprintf fmt
    "@[<v>instructions:        %d@,\
     cycles:              %d (IPC %.3f)@,\
     page-table walks:    %d@,\
     corrected walks:     %d@,\
     walk exceptions:     %d (OS re-faults: %d)@,\
     Rowhammer flips:     %d@,\
     WRONG TRANSLATIONS:  %d@]"
    r.instrs r.cycles r.ipc r.walks r.walk_corrections r.walk_exceptions r.refaults
    r.flips_landed r.wrong_translations

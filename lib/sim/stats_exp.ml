type result = {
  sink : Ptg_obs.Sink.t;
  fullsys : Fullsys.result;
}

let run ?(seed = 42L) ?(pages = 512) ?(instrs = 20_000) () =
  let sink = Ptg_obs.Sink.create () in
  let sim = Fullsys.create ~pages ~obs:sink ~seed () in
  let fullsys = Fullsys.run sim ~instrs in
  { sink; fullsys }

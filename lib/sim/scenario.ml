type kind = Fig6 | Fig7 | Fig8 | Fig9 | Multicore | Trace | Fullsys

let kinds = [ Fig6; Fig7; Fig8; Fig9; Multicore; Trace; Fullsys ]

let kind_name = function
  | Fig6 -> "fig6"
  | Fig7 -> "fig7"
  | Fig8 -> "fig8"
  | Fig9 -> "fig9"
  | Multicore -> "multicore"
  | Trace -> "trace"
  | Fullsys -> "fullsys"

let kind_names = List.map kind_name kinds

let kind_of_name name =
  List.find_opt (fun k -> kind_name k = name) kinds

type t = {
  kind : kind;
  seed : int64;
  seeds : int;
  reduced : bool;
  design : Ptguard.Config.design;
  mac_latency : int option;
  workloads : string list option;
  instrs : int option;
  warmup : int option;
  processes : int option;
  lines : int option;
  mixes : int option;
  trace_path : string option;
  mitigation : string option;
  mit_params : (string * Ptg_mitigations.Registry.value) list;
  jobs : int;
}

let make ?(seed = 42L) ?(seeds = 1) ?(reduced = false)
    ?(design = Ptguard.Config.Baseline) ?mac_latency ?workloads ?instrs ?warmup
    ?processes ?lines ?mixes ?trace ?mitigation ?(mit_params = []) ?(jobs = 1)
    kind =
  {
    kind;
    seed;
    seeds;
    reduced;
    design;
    mac_latency;
    workloads;
    instrs;
    warmup;
    processes;
    lines;
    mixes;
    trace_path = trace;
    mitigation;
    mit_params;
    jobs;
  }

(* ------------------------------------------------------------------ *)
(* Default resolution. Full sizes are the CLI defaults of each         *)
(* subcommand; reduced sizes are the bench harness's reduced sweep.    *)
(* ------------------------------------------------------------------ *)

let config_of_design = function
  | Ptguard.Config.Baseline -> Ptguard.Config.baseline
  | Ptguard.Config.Optimized -> Ptguard.Config.optimized

(* The CLI's --design tokens, reused as the wire/canonical encoding
   (Config.design_name is the human display name). *)
let design_wire_name = function
  | Ptguard.Config.Baseline -> "baseline"
  | Ptguard.Config.Optimized -> "optimized"

let design_of_wire_name = function
  | "baseline" -> Some Ptguard.Config.Baseline
  | "optimized" -> Some Ptguard.Config.Optimized
  | _ -> None

let resolve_instrs t =
  match (t.instrs, t.kind, t.reduced) with
  | Some i, _, _ -> i
  | None, Fig6, false -> 2_000_000
  | None, Fig6, true -> 600_000
  | None, Fig7, false -> 1_000_000
  | None, Fig7, true -> 250_000
  | None, Multicore, false -> 400_000
  | None, Multicore, true -> 120_000
  | None, Fullsys, false -> 60_000
  | None, Fullsys, true -> 20_000
  | None, (Fig8 | Fig9 | Trace), _ -> 0

let resolve_warmup t =
  match (t.warmup, t.kind, t.reduced) with
  | Some w, _, _ -> w
  | None, Fig6, false -> 500_000
  | None, Fig6, true -> 200_000
  | None, Fig7, false -> 300_000
  | None, Fig7, true -> 100_000
  | None, (Fig8 | Fig9 | Multicore | Trace | Fullsys), _ -> 0

let resolve_mac_latency t =
  match t.mac_latency with
  | Some l -> l
  | None -> (config_of_design t.design).Ptguard.Config.mac_latency_cycles

let resolve_workload_names t =
  match t.workloads with
  | Some names -> names
  | None -> Ptg_workloads.Workload.names

let resolve_processes t =
  match (t.processes, t.reduced) with
  | Some p, _ -> p
  | None, false -> 623
  | None, true -> 200

let resolve_lines t =
  match (t.lines, t.reduced) with
  | Some l, _ -> l
  | None, false -> 300
  | None, true -> 150

let resolve_mixes t =
  match (t.mixes, t.reduced) with
  | Some m, _ -> m
  | None, false -> 16
  | None, true -> 8

let multi_seed_kind = function Fig6 | Fig9 -> true | _ -> false

let validate t =
  let ( let* ) = Result.bind in
  let positive what n =
    if n >= 1 then Ok () else Error (Printf.sprintf "%s must be >= 1, got %d" what n)
  in
  let* () = positive "seeds" t.seeds in
  let* () = positive "jobs" t.jobs in
  let* () =
    if t.seeds > 1 && not (multi_seed_kind t.kind) then
      Error
        (Printf.sprintf "seeds > 1 is only supported for fig6 and fig9, not %s"
           (kind_name t.kind))
    else Ok ()
  in
  let* () =
    if t.warmup <> None && Option.get t.warmup < 0 then
      Error "warmup must be >= 0"
    else Ok ()
  in
  let* () =
    match t.instrs with Some i -> positive "instrs" i | None -> Ok ()
  in
  let* () =
    match t.mac_latency with
    | Some l when l < 0 -> Error "mac_latency must be >= 0"
    | _ -> Ok ()
  in
  let* () =
    match t.processes with Some p -> positive "processes" p | None -> Ok ()
  in
  let* () = match t.lines with Some l -> positive "lines" l | None -> Ok () in
  let* () = match t.mixes with Some m -> positive "mixes" m | None -> Ok () in
  let* () =
    match t.workloads with
    | None -> Ok ()
    | Some [] -> Error "workloads must be non-empty"
    | Some names ->
        List.fold_left
          (fun acc name ->
            let* () = acc in
            match Ptg_workloads.Workload.by_name name with
            | Some _ -> Ok ()
            | None ->
                Error
                  (Printf.sprintf "unknown workload %s (try: %s)" name
                     (String.concat ", " Ptg_workloads.Workload.names)))
          (Ok ()) names
  in
  let* () =
    match (t.kind, t.trace_path) with
    | Trace, None -> Error "trace scenarios require a trace file"
    | Trace, Some path ->
        if Sys.file_exists path && not (Sys.is_directory path) then Ok ()
        else Error (Printf.sprintf "trace file %s does not exist" path)
    | _, Some _ ->
        Error
          (Printf.sprintf "trace is only valid for kind trace, not %s"
             (kind_name t.kind))
    | _, None -> Ok ()
  in
  let* () =
    match (t.kind, t.mitigation) with
    | Trace, Some name -> Ptg_mitigations.Registry.check_params name t.mit_params
    | Trace, None ->
        if t.mit_params = [] then Ok ()
        else Error "params require a mitigation"
    | _, Some _ ->
        Error
          (Printf.sprintf "mitigation is only valid for kind trace, not %s"
             (kind_name t.kind))
    | _, None ->
        if t.mit_params = [] then Ok ()
        else Error "params are only valid for kind trace"
  in
  Ok ()

let check t =
  match validate t with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Scenario: " ^ msg)

(* ------------------------------------------------------------------ *)
(* Canonical form and content hash                                     *)
(* ------------------------------------------------------------------ *)

(* FNV-1a, 64-bit: tiny, dependency-free, and stable across runs and
   platforms — exactly what a cache key and a trace payload need. Not
   adversarially collision-resistant; the cache is an optimization, not a
   security boundary (and a collision only ever returns another
   deterministic experiment report). *)
let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

(* Trace scenarios cache by what the trace *contains*, not where it
   lives: two paths with identical bytes share a cache entry, and
   rewriting a file under a cached path misses instead of serving stale
   results. *)
let trace_content_hash path =
  Printf.sprintf "%016Lx"
    (fnv1a64 (In_channel.with_open_bin path In_channel.input_all))

(* [skip_instrs] drops the instruction budget from the rendering: the
   warm-start store keys checkpoints by everything {e except} how far
   the run goes, so a longer run can resume from a shorter run's
   snapshots (only [Fullsys] scales by instructions this way). *)
let canonical_ext ~skip_instrs t =
  check t;
  let buf = Buffer.create 128 in
  let first = ref true in
  let field key render =
    if !first then first := false else Buffer.add_char buf ',';
    Buffer.add_char buf '"';
    Buffer.add_string buf key;
    Buffer.add_string buf "\":";
    render ()
  in
  let int_field key v = field key (fun () -> Buffer.add_string buf (string_of_int v)) in
  let str_field key v =
    field key (fun () ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (Ptg_obs.Registry.json_escape v);
        Buffer.add_char buf '"')
  in
  (* Multi-seed sweeps draw their own per-run seeds, so [seed] carries no
     information there; emitting only one of seed/seeds keeps the hash
     honest about what the computation depends on. *)
  let seed_field () =
    if t.seeds > 1 then int_field "seeds" t.seeds
    else field "seed" (fun () -> Buffer.add_string buf (Int64.to_string t.seed))
  in
  Buffer.add_char buf '{';
  (* Fields appear in alphabetical key order within each kind. *)
  (match t.kind with
  | Fig6 ->
      str_field "design" (design_wire_name t.design);
      int_field "instrs" (resolve_instrs t);
      str_field "kind" "fig6";
      int_field "mac_latency" (resolve_mac_latency t);
      seed_field ();
      int_field "warmup" (resolve_warmup t);
      field "workloads" (fun () ->
          Buffer.add_char buf '[';
          List.iteri
            (fun i name ->
              if i > 0 then Buffer.add_char buf ',';
              Buffer.add_char buf '"';
              Buffer.add_string buf (Ptg_obs.Registry.json_escape name);
              Buffer.add_char buf '"')
            (resolve_workload_names t);
          Buffer.add_char buf ']')
  | Fig7 ->
      int_field "instrs" (resolve_instrs t);
      str_field "kind" "fig7";
      seed_field ();
      int_field "warmup" (resolve_warmup t)
  | Fig8 ->
      str_field "kind" "fig8";
      int_field "processes" (resolve_processes t);
      seed_field ()
  | Fig9 ->
      str_field "kind" "fig9";
      int_field "lines" (resolve_lines t);
      seed_field ()
  | Multicore ->
      int_field "instrs" (resolve_instrs t);
      str_field "kind" "multicore";
      int_field "mixes" (resolve_mixes t);
      seed_field ()
  | Trace ->
      str_field "kind" "trace";
      (match t.mitigation with
      | None -> ()
      | Some name ->
          str_field "mitigation" name;
          field "params" (fun () ->
              Buffer.add_char buf '{';
              List.iteri
                (fun i (key, v) ->
                  if i > 0 then Buffer.add_char buf ',';
                  Buffer.add_char buf '"';
                  Buffer.add_string buf (Ptg_obs.Registry.json_escape key);
                  Buffer.add_string buf "\":";
                  Buffer.add_string buf
                    (Ptg_mitigations.Registry.value_to_string v))
                (Option.get
                   (Ptg_mitigations.Registry.resolved_params name t.mit_params));
              Buffer.add_char buf '}'));
      seed_field ();
      str_field "trace" (trace_content_hash (Option.get t.trace_path))
  | Fullsys ->
      if not skip_instrs then int_field "instrs" (resolve_instrs t);
      str_field "kind" "fullsys";
      seed_field ());
  Buffer.add_char buf '}';
  Buffer.contents buf

let canonical t = canonical_ext ~skip_instrs:false t
let hash64 t = fnv1a64 (canonical t)
let hash t = Printf.sprintf "%016Lx" (hash64 t)
let prefix_canonical t = canonical_ext ~skip_instrs:true t
let prefix_hash64 t = fnv1a64 (prefix_canonical t)
let prefix_hash t = Printf.sprintf "%016Lx" (prefix_hash64 t)

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

type output =
  | Fig6_out of Fig6.result
  | Fig6_multi_out of Fig6.multi
  | Fig7_out of Fig7.result
  | Fig8_out of Fig8.result
  | Fig9_out of Fig9.result
  | Fig9_multi_out of Fig9.multi
  | Multicore_out of Multicore_exp.result
  | Trace_out of { mitigation : string option; result : Mem_trace.replay_result }
  | Fullsys_out of Fullsys.result

let run ?obs t =
  check t;
  let jobs = t.jobs in
  match t.kind with
  | Fig6 ->
      let config =
        Ptguard.Config.with_mac_latency (config_of_design t.design)
          (resolve_mac_latency t)
      in
      let workloads =
        List.map
          (fun name -> Option.get (Ptg_workloads.Workload.by_name name))
          (resolve_workload_names t)
      in
      let instrs = resolve_instrs t and warmup = resolve_warmup t in
      if t.seeds > 1 then
        Fig6_multi_out
          (Fig6.run_multi ~jobs ~seeds:t.seeds ~instrs ~warmup ~config
             ~workloads ?obs ())
      else
        Fig6_out
          (Fig6.run ~jobs ~seed:t.seed ~instrs ~warmup ~config ~workloads ?obs
             ())
  | Fig7 ->
      Fig7_out
        (Fig7.run ~jobs ~seed:t.seed ~instrs:(resolve_instrs t)
           ~warmup:(resolve_warmup t) ?obs ())
  | Fig8 ->
      Fig8_out (Fig8.run ~jobs ~seed:t.seed ~processes:(resolve_processes t) ?obs ())
  | Fig9 ->
      if t.seeds > 1 then
        Fig9_multi_out
          (Fig9.run_multi ~jobs ~seeds:t.seeds ~lines_per_point:(resolve_lines t) ())
      else
        Fig9_out
          (Fig9.run ~jobs ~seed:t.seed ~lines_per_point:(resolve_lines t) ?obs ())
  | Multicore ->
      Multicore_out
        (Multicore_exp.run ~jobs ~seed:t.seed
           ~instrs_per_core:(resolve_instrs t) ~mixes:(resolve_mixes t) ?obs ())
  | Trace -> (
      let trace = Mem_trace.load ~path:(Option.get t.trace_path) in
      match
        Mem_trace.replay ?mitigation:t.mitigation ~params:t.mit_params
          ~seed:t.seed trace
      with
      | Ok result -> Trace_out { mitigation = t.mitigation; result }
      | Error msg -> invalid_arg ("Scenario: " ^ msg))
  | Fullsys ->
      (* Guarded machine under attack (the mode's defaults); [totals] so
         the rendering is identical however the budget was chunked —
         including when the checkpoint driver serves this scenario from
         a warm-start snapshot instead. *)
      let m = Fullsys.create ?obs ~seed:t.seed () in
      ignore (Fullsys.run m ~instrs:(resolve_instrs t));
      Fullsys_out (Fullsys.totals m)

let render = function
  | Fig6_out r -> Fig6.to_string r
  | Fig6_multi_out m -> Fig6.multi_to_string m
  | Fig7_out r -> Fig7.to_string r
  | Fig8_out r -> Fig8.to_string r
  | Fig9_out r -> Fig9.to_string r
  | Fig9_multi_out m -> Fig9.multi_to_string m
  | Multicore_out r -> Multicore_exp.to_string r
  | Trace_out { mitigation; result } ->
      Mem_trace.render_result ?mitigation result
  | Fullsys_out r -> Format.asprintf "%a@." Fullsys.pp_result r

let run_to_string ?obs t = render (run ?obs t)

let save_csv out ~path =
  match out with
  | Fig6_out r -> Fig6.to_csv r ~path
  | Fig7_out r -> Fig7.to_csv r ~path
  | Fig8_out r -> Fig8.to_csv r ~path
  | Fig9_out r -> Fig9.to_csv r ~path
  | Multicore_out r -> Multicore_exp.to_csv r ~path
  | Fig6_multi_out _ | Fig9_multi_out _ | Trace_out _ | Fullsys_out _ -> ()

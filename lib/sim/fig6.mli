(** Figure 6: normalized IPC under PT-Guard and LLC MPKI, per workload.

    Paper result being reproduced: 1.3% average slowdown across 25
    SPEC/GAP workloads with a 10-cycle MAC; slowdown grows with LLC MPKI;
    xalancbmk worst at 3.6% (MPKI 29); workloads below 5 MPKI lose < 1%. *)

type row = {
  workload : string;
  mpki : float;
  base_ipc : float;
  norm_ipc : float;      (** IPC_PT-Guard / IPC_base *)
  slowdown_pct : float;
  pte_dram_reads : int;
  dram_reads : int;
}

type result = {
  rows : row list;
  gmean_norm_ipc : float;
  amean_norm_ipc : float;
  amean_slowdown_pct : float;
  max_slowdown_pct : float;
}

val run :
  ?jobs:int ->
  ?instrs:int ->
  ?warmup:int ->
  ?seed:int64 ->
  ?config:Ptguard.Config.t ->
  ?workloads:Ptg_workloads.Workload.spec list ->
  ?obs:Ptg_obs.Sink.t ->
  unit ->
  result
(** Defaults: 2M timed instructions after 500K warmup per workload, the
    Baseline PT-Guard design at 10-cycle MAC latency, all 25 workloads.
    Identical streams (same seed) drive the unprotected and protected
    runs, so the IPC ratio isolates the MAC delay exactly. [jobs] fans
    the per-workload runs across domains via {!Ptg_util.Pool} (default
    {!Ptg_util.Pool.default_jobs}); the result is bit-identical for any
    job count. With [obs], the {e guarded} run of each workload reports
    into a per-task child sink; children merge into [obs] in workload
    order after the join, so metrics/trace exports are also byte-identical
    for any job count. *)

val run_rows :
  ?jobs:int ->
  instrs:int ->
  warmup:int ->
  seed:int64 ->
  config:Ptguard.Config.t ->
  Ptg_workloads.Workload.spec list ->
  row list
(** The per-workload rows of {!run} for an arbitrary subset of
    workloads, in order. Rows are independent — each builds its own RNG
    and guard from [seed] alone — so computing them in separate calls
    (the checkpoint driver's row batches) yields exactly the rows a
    single {!run} over the full list produces. No observability. *)

val of_rows : row list -> result
(** Aggregate rows (gmean/amean/max) exactly as {!run} does. *)

val to_string : result -> string
(** Exactly the bytes {!print} writes to stdout (the serving layer caches
    and ships this rendering). *)

val print : result -> unit
val to_csv : result -> path:string -> unit

type multi = {
  runs : result list;
  amean_slowdown : Ptg_util.Stats.summary;  (** across seeds *)
  max_slowdown : Ptg_util.Stats.summary;
}

val run_multi :
  ?jobs:int ->
  ?seeds:int ->
  ?instrs:int ->
  ?warmup:int ->
  ?config:Ptguard.Config.t ->
  ?workloads:Ptg_workloads.Workload.spec list ->
  ?obs:Ptg_obs.Sink.t ->
  unit ->
  multi
(** Repeat {!run} over [seeds] distinct seeds (default 5) and summarize
    the run-to-run spread of the headline numbers. [jobs] is passed to
    each per-seed {!run}. *)

val multi_to_string : multi -> string
val print_multi : multi -> unit

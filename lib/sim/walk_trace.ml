open Ptg_util

type t = { workload : string; line_indices : int array }

let record ?(instrs = 500_000) ?(seed = 18L) (spec : Ptg_workloads.Workload.spec) =
  let rng = Rng.create seed in
  let stream = Ptg_workloads.Workload.stream rng spec in
  let core = Ptg_cpu.Core.create ~guard:Ptg_cpu.Guard_timing.unprotected () in
  let acc = ref [] in
  Ptg_cpu.Core.on_walk core (fun ~vpn:_ ~leaf_line_addr ->
      (* the leaf region starts at the data fold; each line is 64 B and
         covers 8 consecutive leaf PTEs *)
      let base = Ptg_cpu.Core.default_config.Ptg_cpu.Core.data_region_bytes in
      let idx = Int64.to_int (Int64.div (Int64.sub leaf_line_addr base) 64L) in
      acc := idx :: !acc);
  ignore (Ptg_cpu.Core.run core ~instrs:(instrs / 4) ~stream);
  acc := [];
  ignore (Ptg_cpu.Core.run core ~instrs ~stream);
  { workload = spec.Ptg_workloads.Workload.name; line_indices = Array.of_list (List.rev !acc) }

let length t = Array.length t.line_indices

let histogram t =
  let h = Hashtbl.create 1024 in
  Array.iter
    (fun i -> Hashtbl.replace h i (1 + Option.value ~default:0 (Hashtbl.find_opt h i)))
    t.line_indices;
  h

(* Shared with Mem_trace: a workload name is a single non-empty header
   line in both text formats, so a newline inside it would silently
   shear the tail of the name into the data section (where it parses as
   garbage — or worse, as a valid record). *)
let validate_name ~context name =
  if name = "" then invalid_arg (Printf.sprintf "%s: empty workload name" context);
  String.iter
    (fun c ->
      if c = '\n' || c = '\r' then
        invalid_arg
          (Printf.sprintf "%s: workload name %S contains a newline" context name))
    name

let save t ~path =
  validate_name ~context:"Walk_trace.save" t.workload;
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# %s\n" t.workload;
      Array.iter (fun i -> Printf.fprintf oc "%d\n" i) t.line_indices)

let load ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header =
        try input_line ic
        with End_of_file ->
          invalid_arg (Printf.sprintf "Walk_trace.load: %s: empty file" path)
      in
      let workload =
        if String.length header > 2 && String.sub header 0 2 = "# " then
          String.sub header 2 (String.length header - 2)
        else
          invalid_arg
            (Printf.sprintf "Walk_trace.load: %s, line 1: missing \"# workload\" header" path)
      in
      (* Blank lines (e.g. a trailing newline left by an editor) are
         skipped; anything else that fails to parse names the file and
         its 1-based line number instead of a bare [int_of_string]. *)
      let acc = ref [] in
      let lineno = ref 1 in
      (try
         while true do
           let raw = input_line ic in
           incr lineno;
           match String.trim raw with
           | "" -> ()
           | s -> (
               match int_of_string_opt s with
               | Some i when i >= 0 -> acc := i :: !acc
               | Some _ ->
                   invalid_arg
                     (Printf.sprintf
                        "Walk_trace.load: %s, line %d: negative line index %S"
                        path !lineno s)
               | None ->
                   invalid_arg
                     (Printf.sprintf
                        "Walk_trace.load: %s, line %d: not a line index: %S"
                        path !lineno s))
         done
       with End_of_file -> ());
      { workload; line_indices = Array.of_list (List.rev !acc) })

type replay_result = {
  trace_len : int;
  faulty : int;
  corrected : int;
  uncorrectable : int;
  corrected_pct : float;
}

let replay_with_faults ?(p_flip = 1.0 /. 512.0) ?(seed = 19L) ?(max_events = 2000) t
    ~lines =
  if Array.length lines = 0 then invalid_arg "Walk_trace.replay_with_faults: no lines";
  let rng = Rng.create seed in
  let engine =
    Ptguard.Engine.create ~config:Ptguard.Config.optimized ~rng:(Rng.split rng) ()
  in
  let corrected = ref 0 and uncorrectable = ref 0 and faulty = ref 0 in
  let n = Array.length t.line_indices in
  let i = ref 0 in
  while !i < n && !faulty < max_events do
    let idx = t.line_indices.(!i) mod Array.length lines in
    let line = lines.(idx) in
    let addr = Int64.of_int (0x4800_0000 + (idx * 64)) in
    let stored = Ptguard.Engine.process_write engine ~addr line in
    let damaged, flips = Ptg_rowhammer.Inject.flip_line rng ~p_flip stored in
    if flips <> [] then begin
      incr faulty;
      match Ptguard.Engine.process_read engine ~addr ~is_pte:true damaged with
      | { Ptguard.Engine.integrity = Ptguard.Engine.Corrected _; _ } -> incr corrected
      | { integrity = Ptguard.Engine.Failed; _ } -> incr uncorrectable
      | _ -> () (* benign: unprotected-bit damage *)
    end;
    incr i
  done;
  let denom = max 1 (!corrected + !uncorrectable) in
  {
    trace_len = n;
    faulty = !faulty;
    corrected = !corrected;
    uncorrectable = !uncorrectable;
    corrected_pct = 100.0 *. float_of_int !corrected /. float_of_int denom;
  }

type sampler_comparison = { trace_pct : float; weighted_pct : float }

let compare_samplers ?(instrs = 400_000) ?(seed = 20L) ?(p_flip = 1.0 /. 512.0)
    (spec : Ptg_workloads.Workload.spec) =
  (* One synthetic process underlies both samplers. *)
  let rng = Rng.create seed in
  let params =
    {
      (Ptg_vm.Process_model.draw_params rng) with
      Ptg_vm.Process_model.target_ptes = 32768;
      mean_run = 40.0;
      mean_gap = 8.0;
      p_break = 0.06;
    }
  in
  let lines = Ptg_vm.Process_model.leaf_lines rng params in
  (* trace-frequency replay *)
  let trace = record ~instrs ~seed spec in
  let trace_result = replay_with_faults ~p_flip ~seed trace ~lines in
  (* weighted-sampler replay (the Fig. 9 default) via Fig9's machinery *)
  let weighted =
    Fig9.run ~lines_per_point:trace_result.faulty ~seed ~p_flips:[ p_flip ]
      ~workloads:[ spec ] ()
  in
  let weighted_pct =
    match weighted.Fig9.average with c :: _ -> c.Fig9.corrected_pct | [] -> 0.0
  in
  { trace_pct = trace_result.corrected_pct; weighted_pct }

let print_comparison (spec : Ptg_workloads.Workload.spec) c =
  Printf.printf
    "Sampler validation (%s): trace-frequency replay corrects %.1f%%, the\n\
     Fig. 9 weighted sampler %.1f%% — the approximation the harness uses.\n"
    spec.Ptg_workloads.Workload.name c.trace_pct c.weighted_pct

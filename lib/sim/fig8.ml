open Ptg_util

type result = {
  aggregate : Ptg_vm.Profile.aggregate;
  sample_rows : (float * float * float) array;
}

let run ?jobs ?(processes = 623) ?(seed = 8L) ?obs () =
  let rng = Rng.create seed in
  (* Per-process generators are split off the master stream serially, in
     process order, so the fan-out across domains cannot perturb any
     process's draw sequence: results are identical for any job count. *)
  let rngs = Array.init processes (fun _ -> Rng.split rng) in
  let stats =
    Array.to_list
      (Pool.parallel_map ?jobs
         (fun rng ->
           let params = Ptg_vm.Process_model.draw_params rng in
           Ptg_vm.Profile.stats_of_lines (Ptg_vm.Process_model.leaf_lines rng params))
         rngs)
  in
  let aggregate = Ptg_vm.Profile.aggregate stats in
  (* Pure profiling (no engine): the summary counts are written once by
     the parent, after the join, so they are trivially job-independent. *)
  (match obs with
  | None -> ()
  | Some sink ->
      let reg = Ptg_obs.Sink.registry sink in
      Ptg_obs.Registry.add
        (Ptg_obs.Registry.counter reg "fig8_processes")
        aggregate.Ptg_vm.Profile.processes;
      Ptg_obs.Registry.add
        (Ptg_obs.Registry.counter reg "fig8_ptes_profiled")
        aggregate.Ptg_vm.Profile.total_ptes_profiled);
  let n = Array.length aggregate.Ptg_vm.Profile.per_process in
  let sample_rows =
    Array.init (min 11 n) (fun i ->
        aggregate.Ptg_vm.Profile.per_process.(i * (n - 1) / max 1 (min 10 (n - 1))))
  in
  { aggregate; sample_rows }

let to_string result =
  let a = result.aggregate in
  "Figure 8: PFN-value distribution across simulated processes\n"
  ^ Table.render
      ~align:[ Table.Left; Right; Right ]
      ~header:[ "metric"; "ours"; "paper" ]
      [
        [ "processes profiled"; string_of_int a.Ptg_vm.Profile.processes; "623" ];
        [ "total PTEs"; string_of_int a.total_ptes_profiled; "24M" ];
        [ "zero PTEs"; Printf.sprintf "%.2f%% (se %.3f)" a.mean_zero a.stderr_zero;
          "64.13% (se 0.6)" ];
        [ "contiguous PFNs";
          Printf.sprintf "%.2f%% (se %.3f)" a.mean_contiguous a.stderr_contiguous;
          "23.73% (se 0.4)" ];
        [ "non-contiguous PFNs"; Printf.sprintf "%.2f%%" a.mean_non_contiguous;
          "~12%" ];
        [ "flag-uniform lines";
          Printf.sprintf "%.2f%%" (100.0 *. a.mean_flag_uniformity); "> 99%" ];
      ]
  ^ "Per-process deciles (sorted by contiguous share, as in the figure):\n"
  ^ Table.render
      ~align:[ Table.Right; Right; Right; Right ]
      ~header:[ "decile"; "zero %"; "contiguous %"; "non-contig %" ]
      (Array.to_list
         (Array.mapi
            (fun i (z, c, n) ->
              [ string_of_int (i * 10); Table.f2 z; Table.f2 c; Table.f2 n ])
            result.sample_rows))

let print result = print_string (to_string result)

let to_csv result ~path =
  let rows =
    Array.to_list
      (Array.map
         (fun (z, c, n) -> [ Table.f3 z; Table.f3 c; Table.f3 n ])
         result.aggregate.Ptg_vm.Profile.per_process)
  in
  Table.save_csv ~path ~header:[ "zero_pct"; "contiguous_pct"; "noncontiguous_pct" ] rows

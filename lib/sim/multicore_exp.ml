open Ptg_util

type row = {
  label : string;
  workloads : string list;
  base_ipc : float;
  norm_ipc : float;
  slowdown_pct : float;
  avg_queue_delay : float;
}

type result = {
  rows : row list;
  avg_slowdown_pct : float;
  max_slowdown_pct : float;
  max_label : string;
}

let run_mix ~instrs_per_core ~seed ~guard specs =
  let mc = Ptg_cpu.Multicore.create ~guard () in
  let streams =
    Array.mapi
      (fun i spec ->
        Ptg_workloads.Workload.stream (Rng.create (Int64.add seed (Int64.of_int i))) spec)
      specs
  in
  Ptg_cpu.Multicore.run mc ~instrs_per_core ~streams

(* The MIX compositions are drawn serially from a seed-derived stream;
   each case then simulates from seed-derived generators only, so any
   per-case fan-out (or checkpoint-slice batching) is bit-identical to
   serial execution. Re-deriving the case list is cheap, so a resumed
   slice just recomputes it. *)
let cases ?(same = Ptg_workloads.Workload.all) ~seed ~mixes () =
  let mix_rng = Rng.create (Int64.add seed 100L) in
  List.map
    (fun spec ->
      ( "SAME " ^ spec.Ptg_workloads.Workload.name,
        Ptg_workloads.Workload.multicore_same spec ))
    same
  @ Array.to_list
      (Array.mapi
         (fun i mix -> (Printf.sprintf "MIX%d" (i + 1), mix))
         (Ptg_workloads.Workload.multicore_mixes mix_rng mixes))

let case_row ?obs ~instrs_per_core ~seed ~config (label, specs) =
  let base =
    run_mix ~instrs_per_core ~seed ~guard:Ptg_cpu.Guard_timing.unprotected specs
  in
  let guard =
    Ptg_cpu.Guard_timing.of_config config ?obs
      ~rng:(Rng.create (Int64.add seed 1L))
  in
  let guarded = run_mix ~instrs_per_core ~seed ~guard specs in
  let norm_ipc =
    guarded.Ptg_cpu.Multicore.aggregate_ipc /. base.Ptg_cpu.Multicore.aggregate_ipc
  in
  {
    label;
    workloads =
      Array.to_list (Array.map (fun s -> s.Ptg_workloads.Workload.name) specs);
    base_ipc = base.Ptg_cpu.Multicore.aggregate_ipc;
    norm_ipc;
    slowdown_pct = 100.0 *. (1.0 -. norm_ipc);
    avg_queue_delay = base.Ptg_cpu.Multicore.avg_queue_delay;
  }

let of_rows rows =
  let max_row =
    List.fold_left
      (fun acc r -> if r.slowdown_pct > acc.slowdown_pct then r else acc)
      (List.hd rows) rows
  in
  {
    rows;
    avg_slowdown_pct =
      Stats.mean (Array.of_list (List.map (fun r -> r.slowdown_pct) rows));
    max_slowdown_pct = max_row.slowdown_pct;
    max_label = max_row.label;
  }

let run ?jobs ?(instrs_per_core = 400_000) ?(seed = 7L)
    ?(same = Ptg_workloads.Workload.all) ?(mixes = 16)
    ?(config = Ptguard.Config.baseline) ?obs () =
  let cases = cases ~same ~seed ~mixes () in
  let children =
    match obs with
    | None -> [||]
    | Some sink ->
        Array.init (List.length cases) (fun _ -> Ptg_obs.Sink.child sink)
  in
  let rows =
    Array.to_list
      (Pool.parallel_map ?jobs
         (fun (i, case) ->
           let obs =
             if Array.length children = 0 then None else Some children.(i)
           in
           case_row ?obs ~instrs_per_core ~seed ~config case)
         (Array.of_list (List.mapi (fun i case -> (i, case)) cases)))
  in
  (match obs with
  | None -> ()
  | Some sink ->
      Array.iter (fun child -> Ptg_obs.Sink.merge_into ~src:child ~dst:sink) children);
  of_rows rows

let header = [ "configuration"; "workloads"; "IPC_b"; "IPC/IPC_b"; "slowdown"; "queue delay" ]

let to_rows result =
  List.map
    (fun r ->
      [
        r.label;
        String.concat "+" r.workloads;
        Table.f3 r.base_ipc;
        Table.f3 r.norm_ipc;
        Table.fpct r.slowdown_pct;
        Table.f2 r.avg_queue_delay;
      ])
    result.rows

let to_string result =
  "Section VII-C: 4-core slowdown (SAME and MIX configurations)\n"
  ^ Table.render
      ~align:[ Table.Left; Left; Right; Right; Right; Right ]
      ~header (to_rows result)
  ^ Printf.sprintf
      "Average slowdown %.2f%%, worst %.2f%% (%s).\n\
       Paper: 0.5%% average, 1.6%% worst case.\n"
      result.avg_slowdown_pct result.max_slowdown_pct result.max_label

let print result = print_string (to_string result)

let to_csv result ~path = Table.save_csv ~path ~header (to_rows result)

open Ptg_snapshot

(* ------------------------------------------------------------------ *)
(* Meta section                                                        *)
(* ------------------------------------------------------------------ *)

(* Every checkpoint opens with a meta section naming what produced it:
   the driver kind, the warm-start store key, and how far the run had
   got. Restoring validates all three — a snapshot from a different
   scenario (or a stale key collision) is rejected before any state is
   touched. *)
type meta = { m_kind : string; m_key : string; m_count : int }

let meta_section m =
  let b = Codec.writer () in
  Codec.put_string b m.m_kind;
  Codec.put_string b m.m_key;
  Codec.put_varint b m.m_count;
  Snapshot.section ~name:"meta" (Codec.contents b)

let meta_of_sections ~what sections =
  let r = Snapshot.reader ~what sections "meta" in
  let m_kind = Codec.get_string r in
  let m_key = Codec.get_string r in
  let m_count = Codec.get_varint r in
  Codec.expect_end r;
  { m_kind; m_key; m_count }

let check_meta ~what ~kind ~key m =
  if m.m_kind <> kind then
    invalid_arg
      (Printf.sprintf "Snapshot.load: %s: checkpoint kind %S, want %S" what
         m.m_kind kind);
  if m.m_key <> key then
    invalid_arg
      (Printf.sprintf "Snapshot.load: %s: checkpoint key %s, want %s" what
         m.m_key key)

(* ------------------------------------------------------------------ *)
(* Warm-start store: <dir>/<key>.<count>.ptgs                          *)
(* ------------------------------------------------------------------ *)

let file_name = Snapshot.store_file_name
let path = Snapshot.store_path

(* Counts present in the store for [key], newest first. *)
let stored_counts = Snapshot.store_counts

(* Deepest-N retention applied after every successful save: the deepest
   checkpoint plus one fallback. Without this every chunk leaks a file
   and a long served run grows the store without bound. *)
let default_keep = 2

(* Best usable checkpoint at or below [upto] instructions/rows. *)
let find_latest ~dir ~key ~upto =
  List.find_opt (fun n -> n <= upto && n > 0) (stored_counts ~dir ~key)

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

(* ------------------------------------------------------------------ *)
(* Fullsys checkpoints                                                 *)
(* ------------------------------------------------------------------ *)

(* Keying a fullsys machine outside the scenario layer: everything
   [Fullsys.create] consumed, rendered canonically (alphabetical keys)
   and hashed — the same recipe as [Scenario.prefix_hash], over the
   creation parameters instead of the scenario fields. *)
let fullsys_key ?(config = Fullsys.default_config) ?(pages = 2048) ~seed () =
  let f = config.Fullsys.fault in
  let orientation =
    match f.Ptg_rowhammer.Fault_model.orientation with
    | Ptg_rowhammer.Fault_model.All_true -> "true"
    | Ptg_rowhammer.Fault_model.All_anti -> "anti"
    | Ptg_rowhammer.Fault_model.Per_row_hash -> "hash"
  in
  let canonical =
    Printf.sprintf
      "{\"attack\":%b,\"burst\":%d,\"fault\":{\"d2\":%.17g,\"orient\":%S,\"pflip\":%.17g,\"refresh\":%.17g,\"rth\":%d},\"guarded\":%b,\"pages\":%d,\"period\":%d,\"seed\":%Ld}"
      config.Fullsys.attack config.Fullsys.hammer_burst
      f.Ptg_rowhammer.Fault_model.distance2_weight orientation
      f.Ptg_rowhammer.Fault_model.p_flip
      f.Ptg_rowhammer.Fault_model.refresh_disturb_weight
      f.Ptg_rowhammer.Fault_model.rth config.Fullsys.guarded pages
      config.Fullsys.hammer_period seed
  in
  Snapshot.hash_hex (Codec.fnv1a64 canonical)

let fullsys_sections ~key (m : Fullsys.t) =
  let s = Fullsys.state m in
  let w = Codec.writer in
  let sec name fill =
    let b = w () in
    fill b;
    Snapshot.section ~name (Codec.contents b)
  in
  [
    meta_section { m_kind = "fullsys"; m_key = key; m_count = s.Fullsys.s_instr };
    sec "rng" (fun b -> Sections.put_words b s.Fullsys.s_rng);
    sec "dram" (fun b -> Sections.put_dram b s.Fullsys.s_dram);
    sec "fault" (fun b -> Sections.put_fault b s.Fullsys.s_fault);
    sec "engine" (fun b -> Codec.put_option b Sections.put_engine s.Fullsys.s_engine);
    sec "memctrl" (fun b -> Codec.put_int b s.Fullsys.s_mc_now);
    sec "vm" (fun b ->
        Sections.put_page_table b s.Fullsys.s_table;
        Sections.put_frame_allocator b s.Fullsys.s_alloc);
    sec "tlb" (fun b -> Sections.put_tlb b s.Fullsys.s_tlb);
    sec "translations" (fun b ->
        Codec.put_list b
          (fun b (vpn, paddr) ->
            Codec.put_i64 b vpn;
            Codec.put_i64 b paddr)
          s.Fullsys.s_translations);
    sec "counters" (fun b ->
        Codec.put_varint b s.Fullsys.s_instr;
        Codec.put_varint b s.Fullsys.s_now;
        Codec.put_varint b s.Fullsys.s_walks;
        Codec.put_varint b s.Fullsys.s_walk_corrections;
        Codec.put_varint b s.Fullsys.s_walk_exceptions;
        Codec.put_varint b s.Fullsys.s_refaults;
        Codec.put_varint b s.Fullsys.s_wrong_translations);
  ]

let fullsys_state_of_sections ~what sections : Fullsys.state =
  let sect name = Snapshot.reader ~what sections name in
  let finish r v =
    Codec.expect_end r;
    v
  in
  let r = sect "rng" in
  let s_rng = finish r (Sections.get_words r) in
  let r = sect "dram" in
  let s_dram = finish r (Sections.get_dram r) in
  let r = sect "fault" in
  let s_fault = finish r (Sections.get_fault r) in
  let r = sect "engine" in
  let s_engine = finish r (Codec.get_option r Sections.get_engine) in
  let r = sect "memctrl" in
  let s_mc_now = finish r (Codec.get_int r) in
  let r = sect "vm" in
  let s_table = Sections.get_page_table r in
  let s_alloc = finish r (Sections.get_frame_allocator r) in
  let r = sect "tlb" in
  let s_tlb = finish r (Sections.get_tlb r) in
  let r = sect "translations" in
  let s_translations =
    finish r
      (Codec.get_list r (fun r ->
           let vpn = Codec.get_i64 r in
           let paddr = Codec.get_i64 r in
           (vpn, paddr)))
  in
  let r = sect "counters" in
  let s_instr = Codec.get_varint r in
  let s_now = Codec.get_varint r in
  let s_walks = Codec.get_varint r in
  let s_walk_corrections = Codec.get_varint r in
  let s_walk_exceptions = Codec.get_varint r in
  let s_refaults = Codec.get_varint r in
  let s_wrong_translations = finish r (Codec.get_varint r) in
  {
    Fullsys.s_rng;
    s_dram;
    s_fault;
    s_engine;
    s_mc_now;
    s_table;
    s_alloc;
    s_tlb;
    s_translations;
    s_instr;
    s_now;
    s_walks;
    s_walk_corrections;
    s_walk_exceptions;
    s_refaults;
    s_wrong_translations;
  }

let fullsys_save ~path ~key m = Snapshot.save ~path (fullsys_sections ~key m)

let fullsys_restore ~path ~key m =
  let sections = Snapshot.load ~path in
  let meta = meta_of_sections ~what:path sections in
  check_meta ~what:path ~kind:"fullsys" ~key meta;
  Fullsys.set_state m (fullsys_state_of_sections ~what:path sections);
  meta.m_count

(* ------------------------------------------------------------------ *)
(* Chunked fullsys driver                                              *)
(* ------------------------------------------------------------------ *)

type fullsys_outcome = {
  f_result : Fullsys.result;
  f_completed : bool;
  f_done : int;
  f_resumed_from : int option;
}

let never_stop () = false
let no_progress ~done_count:_ ~total:_ = ()

let run_fullsys ?config ?pages ?key ?(keep = default_keep) ?every ?dir
    ?(adopt = true) ?(should_stop = never_stop) ?(progress = no_progress) ~seed
    ~instrs () =
  let key =
    match key with Some k -> k | None -> fullsys_key ?config ?pages ~seed ()
  in
  let m = Fullsys.create ?config ?pages ~seed () in
  (* Warm start: adopt the deepest stored checkpoint not past the
     budget. A damaged or mismatched file is skipped (the store is an
     optimization); deeper candidates are tried in order. *)
  let resumed_from =
    match dir with
    | None -> None
    | Some _ when not adopt -> None
    | Some dir ->
        stored_counts ~dir ~key
        |> List.filter (fun n -> n <= instrs && n > 0)
        |> List.find_map (fun n ->
               match fullsys_restore ~path:(path ~dir ~key n) ~key m with
               | count -> Some count
               | exception Invalid_argument _ -> None
               (* A sharing peer may prune a file between our readdir
                  and the open; skip it like any other dead candidate. *)
               | exception Sys_error _ -> None)
  in
  let checkpoint () =
    match dir with
    | None -> ()
    | Some dir ->
        ensure_dir dir;
        let n = Fullsys.instrs_done m in
        let p = path ~dir ~key n in
        if not (Sys.file_exists p) then begin
          fullsys_save ~path:p ~key m;
          ignore (Snapshot.prune ~keep ~dir ~key ())
        end
  in
  (* Make the adopted depth visible to progress streams before any new
     work happens (also the only progress a full-depth adoption emits). *)
  (match resumed_from with
  | Some n -> progress ~done_count:n ~total:instrs
  | None -> ());
  let chunk = match every with Some e when e > 0 -> e | _ -> instrs in
  let stopped = ref false in
  while (not !stopped) && Fullsys.instrs_done m < instrs do
    if should_stop () then stopped := true
    else begin
      let step = min chunk (instrs - Fullsys.instrs_done m) in
      ignore (Fullsys.run m ~instrs:step);
      if every <> None || Fullsys.instrs_done m >= instrs then checkpoint ();
      progress ~done_count:(Fullsys.instrs_done m) ~total:instrs
    end
  done;
  if !stopped then checkpoint ();
  {
    f_result = Fullsys.totals m;
    f_completed = not !stopped;
    f_done = Fullsys.instrs_done m;
    f_resumed_from = resumed_from;
  }

(* ------------------------------------------------------------------ *)
(* Fig6 row-batch checkpoints                                          *)
(* ------------------------------------------------------------------ *)

let fig6_rows_sections ~key ~total rows =
  let b = Codec.writer () in
  Codec.put_varint b total;
  Codec.put_list b
    (fun b (r : Fig6.row) ->
      Codec.put_string b r.Fig6.workload;
      Codec.put_float b r.mpki;
      Codec.put_float b r.base_ipc;
      Codec.put_float b r.norm_ipc;
      Codec.put_float b r.slowdown_pct;
      Codec.put_varint b r.pte_dram_reads;
      Codec.put_varint b r.dram_reads)
    rows;
  [
    meta_section { m_kind = "fig6"; m_key = key; m_count = List.length rows };
    Snapshot.section ~name:"fig6.rows" (Codec.contents b);
  ]

let fig6_rows_of_sections ~what sections =
  let r = Snapshot.reader ~what sections "fig6.rows" in
  let total = Codec.get_varint r in
  let rows =
    Codec.get_list r (fun r ->
        let workload = Codec.get_string r in
        let mpki = Codec.get_float r in
        let base_ipc = Codec.get_float r in
        let norm_ipc = Codec.get_float r in
        let slowdown_pct = Codec.get_float r in
        let pte_dram_reads = Codec.get_varint r in
        let dram_reads = Codec.get_varint r in
        {
          Fig6.workload;
          mpki;
          base_ipc;
          norm_ipc;
          slowdown_pct;
          pte_dram_reads;
          dram_reads;
        })
  in
  Codec.expect_end r;
  (total, rows)

type fig6_outcome = {
  g_result : Fig6.result option; (* None when stopped before the last row *)
  g_rows : Fig6.row list;
  g_completed : bool;
  g_resumed_from : int option;
}

let run_fig6 ?jobs ?key ?(keep = default_keep) ?every ?dir ?(adopt = true)
    ?(should_stop = never_stop) ?(progress = no_progress) ~instrs ~warmup ~seed
    ~config ~workloads () =
  let total = List.length workloads in
  let key =
    match key with
    | Some k -> k
    | None ->
        (* No scenario at hand: key by the run parameters and the
           workload list. *)
        let names =
          String.concat ","
            (List.map (fun s -> s.Ptg_workloads.Workload.name) workloads)
        in
        Snapshot.hash_hex
          (Codec.fnv1a64
             (Printf.sprintf
                "{\"instrs\":%d,\"mac\":%d,\"seed\":%Ld,\"warmup\":%d,\"workloads\":[%s]}"
                instrs config.Ptguard.Config.mac_latency_cycles seed warmup
                names))
  in
  (* Resume: the deepest stored row prefix whose workloads match ours in
     order (a stale or colliding checkpoint is skipped). *)
  let resumed =
    match dir with
    | None -> None
    | Some _ when not adopt -> None
    | Some dir ->
        stored_counts ~dir ~key
        |> List.filter (fun n -> n <= total && n > 0)
        |> List.find_map (fun n ->
               let p = path ~dir ~key n in
               match
                 let sections = Snapshot.load ~path:p in
                 let meta = meta_of_sections ~what:p sections in
                 check_meta ~what:p ~kind:"fig6" ~key meta;
                 fig6_rows_of_sections ~what:p sections
               with
               | stored_total, rows
                 when stored_total = total
                      && List.length rows = n
                      && List.for_all2
                           (fun (r : Fig6.row) s ->
                             r.Fig6.workload = s.Ptg_workloads.Workload.name)
                           rows
                           (List.filteri (fun i _ -> i < n) workloads) ->
                   Some (n, rows)
               | _ -> None
               | exception Invalid_argument _ -> None
               | exception Sys_error _ -> None)
  in
  let done_rows = ref (match resumed with None -> [] | Some (_, rows) -> rows) in
  let checkpoint () =
    match dir with
    | None -> ()
    | Some dir ->
        ensure_dir dir;
        let n = List.length !done_rows in
        let p = path ~dir ~key n in
        if n > 0 && not (Sys.file_exists p) then begin
          Snapshot.save ~path:p (fig6_rows_sections ~key ~total !done_rows);
          ignore (Snapshot.prune ~keep ~dir ~key ())
        end
  in
  (match resumed with
  | Some (n, _) -> progress ~done_count:n ~total
  | None -> ());
  let batch = match every with Some e when e > 0 -> e | _ -> total in
  let stopped = ref false in
  while (not !stopped) && List.length !done_rows < total do
    if should_stop () then stopped := true
    else begin
      let n = List.length !done_rows in
      let step = min batch (total - n) in
      let specs = List.filteri (fun i _ -> i >= n && i < n + step) workloads in
      let rows = Fig6.run_rows ?jobs ~instrs ~warmup ~seed ~config specs in
      done_rows := !done_rows @ rows;
      if every <> None || List.length !done_rows >= total then checkpoint ();
      progress ~done_count:(List.length !done_rows) ~total
    end
  done;
  if !stopped then checkpoint ();
  let completed = not !stopped in
  {
    g_result = (if completed then Some (Fig6.of_rows !done_rows) else None);
    g_rows = !done_rows;
    g_completed = completed;
    g_resumed_from = Option.map fst resumed;
  }

(* ------------------------------------------------------------------ *)
(* Fig7 point-batch checkpoints                                        *)
(* ------------------------------------------------------------------ *)

(* A fig7 checkpoint carries the shared per-workload baseline runs in
   every file: they cost as much as one sweep point, are needed by every
   remaining point, and storing them means a resumed slice never
   recomputes them. The count is the completed-point prefix; a count of
   0 (baselines only) is a legal checkpoint. *)

let put_core_result b (r : Ptg_cpu.Core.result) =
  Codec.put_varint b r.Ptg_cpu.Core.instrs;
  Codec.put_varint b r.Ptg_cpu.Core.cycles;
  Codec.put_float b r.Ptg_cpu.Core.ipc;
  Codec.put_float b r.Ptg_cpu.Core.llc_mpki;
  Codec.put_varint b r.Ptg_cpu.Core.dram_reads;
  Codec.put_varint b r.Ptg_cpu.Core.pte_dram_reads;
  Codec.put_varint b r.Ptg_cpu.Core.walks;
  Codec.put_float b r.Ptg_cpu.Core.tlb_miss_rate;
  Codec.put_varint b r.Ptg_cpu.Core.guard_mac_computations;
  Codec.put_varint b r.Ptg_cpu.Core.cache_writebacks

let get_core_result r : Ptg_cpu.Core.result =
  let instrs = Codec.get_varint r in
  let cycles = Codec.get_varint r in
  let ipc = Codec.get_float r in
  let llc_mpki = Codec.get_float r in
  let dram_reads = Codec.get_varint r in
  let pte_dram_reads = Codec.get_varint r in
  let walks = Codec.get_varint r in
  let tlb_miss_rate = Codec.get_float r in
  let guard_mac_computations = Codec.get_varint r in
  let cache_writebacks = Codec.get_varint r in
  {
    Ptg_cpu.Core.instrs;
    cycles;
    ipc;
    llc_mpki;
    dram_reads;
    pte_dram_reads;
    walks;
    tlb_miss_rate;
    guard_mac_computations;
    cache_writebacks;
  }

let put_design b d = Codec.put_bool b (d = Ptguard.Config.Optimized)

let get_design r =
  if Codec.get_bool r then Ptguard.Config.Optimized else Ptguard.Config.Baseline

let fig7_sections ~key ~total ~base ~points =
  let b = Codec.writer () in
  Codec.put_list b
    (fun b (spec, r) ->
      Codec.put_string b spec.Ptg_workloads.Workload.name;
      put_core_result b r)
    base;
  let p = Codec.writer () in
  Codec.put_varint p total;
  Codec.put_list p
    (fun p (pt : Fig7.point) ->
      put_design p pt.Fig7.design;
      Codec.put_varint p pt.Fig7.mac_latency;
      Codec.put_float p pt.Fig7.avg_slowdown_pct;
      Codec.put_float p pt.Fig7.max_slowdown_pct;
      Codec.put_string p pt.Fig7.max_workload;
      Codec.put_float p pt.Fig7.mac_reads_fraction)
    points;
  [
    meta_section { m_kind = "fig7"; m_key = key; m_count = List.length points };
    Snapshot.section ~name:"fig7.base" (Codec.contents b);
    Snapshot.section ~name:"fig7.points" (Codec.contents p);
  ]

let fig7_parts_of_sections ~what sections =
  let r = Snapshot.reader ~what sections "fig7.base" in
  let base =
    Codec.get_list r (fun r ->
        let name = Codec.get_string r in
        let core = get_core_result r in
        (name, core))
  in
  Codec.expect_end r;
  let r = Snapshot.reader ~what sections "fig7.points" in
  let total = Codec.get_varint r in
  let points =
    Codec.get_list r (fun r ->
        let design = get_design r in
        let mac_latency = Codec.get_varint r in
        let avg_slowdown_pct = Codec.get_float r in
        let max_slowdown_pct = Codec.get_float r in
        let max_workload = Codec.get_string r in
        let mac_reads_fraction = Codec.get_float r in
        {
          Fig7.design;
          mac_latency;
          avg_slowdown_pct;
          max_slowdown_pct;
          max_workload;
          mac_reads_fraction;
        })
  in
  Codec.expect_end r;
  (total, base, points)

type fig7_outcome = {
  p_result : Fig7.result option; (* None when stopped before the last point *)
  p_points : Fig7.point list;
  p_completed : bool;
  p_resumed_from : int option;
}

let run_fig7 ?jobs ?key ?(keep = default_keep) ?every ?dir ?(adopt = true)
    ?(should_stop = never_stop) ?(progress = no_progress)
    ?(latencies = Fig7.default_latencies)
    ?(workloads = Ptg_workloads.Workload.all) ~instrs ~warmup ~seed () =
  let cases = Fig7.cases ~latencies () in
  let total = List.length cases in
  let names = List.map (fun s -> s.Ptg_workloads.Workload.name) workloads in
  let key =
    match key with
    | Some k -> k
    | None ->
        Snapshot.hash_hex
          (Codec.fnv1a64
             (Printf.sprintf
                "{\"instrs\":%d,\"kind\":\"fig7\",\"latencies\":[%s],\"seed\":%Ld,\"warmup\":%d,\"workloads\":[%s]}"
                instrs
                (String.concat "," (List.map string_of_int latencies))
                seed warmup (String.concat "," names)))
  in
  (* Adopt the deepest stored point prefix whose baselines cover our
     workload list and whose points match our case list, in order. *)
  let resumed =
    match dir with
    | None -> None
    | Some _ when not adopt -> None
    | Some dir ->
        Snapshot.store_counts ~dir ~key
        |> List.filter (fun n -> n >= 0 && n <= total)
        |> List.find_map (fun n ->
               let p = path ~dir ~key n in
               match
                 let sections = Snapshot.load ~path:p in
                 let meta = meta_of_sections ~what:p sections in
                 check_meta ~what:p ~kind:"fig7" ~key meta;
                 fig7_parts_of_sections ~what:p sections
               with
               | stored_total, base, points
                 when stored_total = total
                      && List.length points = n
                      && List.map fst base = names
                      && List.for_all2
                           (fun (pt : Fig7.point) (d, l) ->
                             pt.Fig7.design = d && pt.Fig7.mac_latency = l)
                           points
                           (List.filteri (fun i _ -> i < n) cases) ->
                   Some
                     ( n,
                       List.map2
                         (fun spec (_, core) -> (spec, core))
                         workloads base,
                       points )
               | _ -> None
               | exception Invalid_argument _ -> None
               | exception Sys_error _ -> None)
  in
  let base = ref (Option.map (fun (_, b, _) -> b) resumed) in
  let done_points =
    ref (match resumed with None -> [] | Some (_, _, pts) -> pts)
  in
  let checkpoint () =
    match (dir, !base) with
    | Some dir, Some b ->
        ensure_dir dir;
        let n = List.length !done_points in
        let p = path ~dir ~key n in
        if not (Sys.file_exists p) then begin
          Snapshot.save ~path:p
            (fig7_sections ~key ~total ~base:b ~points:!done_points);
          ignore (Snapshot.prune ~keep ~dir ~key ())
        end
    | _ -> ()
  in
  (match resumed with
  | Some (n, _, _) -> progress ~done_count:n ~total
  | None -> ());
  let batch = match every with Some e when e > 0 -> e | _ -> total in
  let stopped = ref false in
  (* The shared baselines are the first chunk. *)
  if !base = None then
    if should_stop () then stopped := true
    else begin
      base := Some (Fig7.base_runs ?jobs ~instrs ~warmup ~seed workloads);
      if every <> None then checkpoint ();
      progress ~done_count:0 ~total
    end;
  while (not !stopped) && List.length !done_points < total do
    if should_stop () then stopped := true
    else begin
      let n = List.length !done_points in
      let step = min batch (total - n) in
      let chunk = List.filteri (fun i _ -> i >= n && i < n + step) cases in
      let base_results = Option.get !base in
      let pts =
        Array.to_list
          (Ptg_util.Pool.parallel_map ?jobs
             (fun case -> Fig7.point ~instrs ~warmup ~seed ~base_results case)
             (Array.of_list chunk))
      in
      done_points := !done_points @ pts;
      if every <> None || List.length !done_points >= total then checkpoint ();
      progress ~done_count:(List.length !done_points) ~total
    end
  done;
  if !stopped then checkpoint ();
  let completed = not !stopped in
  {
    p_result =
      (if completed then Some { Fig7.points = !done_points } else None);
    p_points = !done_points;
    p_completed = completed;
    p_resumed_from = Option.map (fun (n, _, _) -> n) resumed;
  }

(* ------------------------------------------------------------------ *)
(* Fig9 workload-batch checkpoints                                     *)
(* ------------------------------------------------------------------ *)

let fig9_sections ~key ~total ~p_flips parts =
  let b = Codec.writer () in
  Codec.put_varint b total;
  Codec.put_list b (Codec.put_float) p_flips;
  Codec.put_list b
    (fun b ((w : Fig9.workload_result), steps) ->
      Codec.put_string b w.Fig9.workload;
      Codec.put_list b
        (fun b (c : Fig9.cell) ->
          Codec.put_float b c.Fig9.p_flip;
          Codec.put_varint b c.Fig9.sampled;
          Codec.put_varint b c.Fig9.corrected;
          Codec.put_varint b c.Fig9.uncorrectable;
          Codec.put_varint b c.Fig9.benign;
          Codec.put_varint b c.Fig9.miscorrections;
          Codec.put_varint b c.Fig9.escapes;
          Codec.put_float b c.Fig9.corrected_pct)
        w.Fig9.cells;
      Codec.put_list b
        (fun b (k, v) ->
          Codec.put_string b k;
          Codec.put_varint b v)
        steps)
    parts;
  [
    meta_section { m_kind = "fig9"; m_key = key; m_count = List.length parts };
    Snapshot.section ~name:"fig9.parts" (Codec.contents b);
  ]

let fig9_parts_of_sections ~what sections =
  let r = Snapshot.reader ~what sections "fig9.parts" in
  let total = Codec.get_varint r in
  let p_flips = Codec.get_list r Codec.get_float in
  let parts =
    Codec.get_list r (fun r ->
        let workload = Codec.get_string r in
        let cells =
          Codec.get_list r (fun r ->
              let p_flip = Codec.get_float r in
              let sampled = Codec.get_varint r in
              let corrected = Codec.get_varint r in
              let uncorrectable = Codec.get_varint r in
              let benign = Codec.get_varint r in
              let miscorrections = Codec.get_varint r in
              let escapes = Codec.get_varint r in
              let corrected_pct = Codec.get_float r in
              {
                Fig9.p_flip;
                sampled;
                corrected;
                uncorrectable;
                benign;
                miscorrections;
                escapes;
                corrected_pct;
              })
        in
        let steps =
          Codec.get_list r (fun r ->
              let k = Codec.get_string r in
              let v = Codec.get_varint r in
              (k, v))
        in
        ({ Fig9.workload; cells }, steps))
  in
  Codec.expect_end r;
  (total, p_flips, parts)

type fig9_outcome = {
  q_result : Fig9.result option; (* None when stopped before the last workload *)
  q_parts : (Fig9.workload_result * (string * int) list) list;
  q_completed : bool;
  q_resumed_from : int option;
}

let run_fig9 ?jobs ?key ?(keep = default_keep) ?every ?dir ?(adopt = true)
    ?(should_stop = never_stop) ?(progress = no_progress)
    ?(p_flips = Fig9.default_p_flips) ?(config = Ptguard.Config.optimized)
    ?(workloads = Ptg_workloads.Workload.fig9_subset) ~lines_per_point ~seed ()
    =
  let total = List.length workloads in
  let names = List.map (fun s -> s.Ptg_workloads.Workload.name) workloads in
  let key =
    match key with
    | Some k -> k
    | None ->
        Snapshot.hash_hex
          (Codec.fnv1a64
             (Printf.sprintf
                "{\"kind\":\"fig9\",\"lines\":%d,\"mac\":%d,\"p_flips\":[%s],\"seed\":%Ld,\"workloads\":[%s]}"
                lines_per_point config.Ptguard.Config.mac_latency_cycles
                (String.concat ","
                   (List.map (Printf.sprintf "%.17g") p_flips))
                seed (String.concat "," names)))
  in
  (* Generator states are re-derived every slice (cheap); only the
     campaign results are stored. *)
  let prepared = Fig9.prepare ~seed workloads in
  let resumed =
    match dir with
    | None -> None
    | Some _ when not adopt -> None
    | Some dir ->
        Snapshot.store_counts ~dir ~key
        |> List.filter (fun n -> n <= total && n > 0)
        |> List.find_map (fun n ->
               let p = path ~dir ~key n in
               match
                 let sections = Snapshot.load ~path:p in
                 let meta = meta_of_sections ~what:p sections in
                 check_meta ~what:p ~kind:"fig9" ~key meta;
                 fig9_parts_of_sections ~what:p sections
               with
               | stored_total, stored_p_flips, parts
                 when stored_total = total
                      && stored_p_flips = p_flips
                      && List.length parts = n
                      && List.for_all2
                           (fun ((w : Fig9.workload_result), _) name ->
                             w.Fig9.workload = name)
                           parts
                           (List.filteri (fun i _ -> i < n) names) ->
                   Some (n, parts)
               | _ -> None
               | exception Invalid_argument _ -> None
               | exception Sys_error _ -> None)
  in
  let done_parts =
    ref (match resumed with None -> [] | Some (_, parts) -> parts)
  in
  let checkpoint () =
    match dir with
    | None -> ()
    | Some dir ->
        ensure_dir dir;
        let n = List.length !done_parts in
        let p = path ~dir ~key n in
        if n > 0 && not (Sys.file_exists p) then begin
          Snapshot.save ~path:p (fig9_sections ~key ~total ~p_flips !done_parts);
          ignore (Snapshot.prune ~keep ~dir ~key ())
        end
  in
  (match resumed with
  | Some (n, _) -> progress ~done_count:n ~total
  | None -> ());
  let batch = match every with Some e when e > 0 -> e | _ -> total in
  let stopped = ref false in
  while (not !stopped) && List.length !done_parts < total do
    if should_stop () then stopped := true
    else begin
      let n = List.length !done_parts in
      let step = min batch (total - n) in
      let chunk = List.filteri (fun i _ -> i >= n && i < n + step) prepared in
      let parts =
        Array.to_list
          (Ptg_util.Pool.parallel_map ?jobs
             (fun p -> Fig9.run_workload ~lines_per_point ~p_flips ~config p)
             (Array.of_list chunk))
      in
      done_parts := !done_parts @ parts;
      if every <> None || List.length !done_parts >= total then checkpoint ();
      progress ~done_count:(List.length !done_parts) ~total
    end
  done;
  if !stopped then checkpoint ();
  let completed = not !stopped in
  {
    q_result =
      (if completed then Some (Fig9.assemble ~p_flips !done_parts) else None);
    q_parts = !done_parts;
    q_completed = completed;
    q_resumed_from = Option.map fst resumed;
  }

(* ------------------------------------------------------------------ *)
(* Multicore row-batch checkpoints                                     *)
(* ------------------------------------------------------------------ *)

let multicore_sections ~key ~total rows =
  let b = Codec.writer () in
  Codec.put_varint b total;
  Codec.put_list b
    (fun b (r : Multicore_exp.row) ->
      Codec.put_string b r.Multicore_exp.label;
      Codec.put_list b Codec.put_string r.Multicore_exp.workloads;
      Codec.put_float b r.Multicore_exp.base_ipc;
      Codec.put_float b r.Multicore_exp.norm_ipc;
      Codec.put_float b r.Multicore_exp.slowdown_pct;
      Codec.put_float b r.Multicore_exp.avg_queue_delay)
    rows;
  [
    meta_section
      { m_kind = "multicore"; m_key = key; m_count = List.length rows };
    Snapshot.section ~name:"multicore.rows" (Codec.contents b);
  ]

let multicore_rows_of_sections ~what sections =
  let r = Snapshot.reader ~what sections "multicore.rows" in
  let total = Codec.get_varint r in
  let rows =
    Codec.get_list r (fun r ->
        let label = Codec.get_string r in
        let workloads = Codec.get_list r Codec.get_string in
        let base_ipc = Codec.get_float r in
        let norm_ipc = Codec.get_float r in
        let slowdown_pct = Codec.get_float r in
        let avg_queue_delay = Codec.get_float r in
        {
          Multicore_exp.label;
          workloads;
          base_ipc;
          norm_ipc;
          slowdown_pct;
          avg_queue_delay;
        })
  in
  Codec.expect_end r;
  (total, rows)

type multicore_outcome = {
  r_result : Multicore_exp.result option; (* None when stopped early *)
  r_rows : Multicore_exp.row list;
  r_completed : bool;
  r_resumed_from : int option;
}

let run_multicore ?jobs ?key ?(keep = default_keep) ?every ?dir ?(adopt = true)
    ?(should_stop = never_stop) ?(progress = no_progress)
    ?(same = Ptg_workloads.Workload.all) ?(config = Ptguard.Config.baseline)
    ~instrs_per_core ~mixes ~seed () =
  let cases = Multicore_exp.cases ~same ~seed ~mixes () in
  let total = List.length cases in
  let labels = List.map fst cases in
  let key =
    match key with
    | Some k -> k
    | None ->
        Snapshot.hash_hex
          (Codec.fnv1a64
             (Printf.sprintf
                "{\"instrs\":%d,\"kind\":\"multicore\",\"mac\":%d,\"mixes\":%d,\"same\":[%s],\"seed\":%Ld}"
                instrs_per_core config.Ptguard.Config.mac_latency_cycles mixes
                (String.concat ","
                   (List.map
                      (fun s -> s.Ptg_workloads.Workload.name)
                      same))
                seed))
  in
  let resumed =
    match dir with
    | None -> None
    | Some _ when not adopt -> None
    | Some dir ->
        Snapshot.store_counts ~dir ~key
        |> List.filter (fun n -> n <= total && n > 0)
        |> List.find_map (fun n ->
               let p = path ~dir ~key n in
               match
                 let sections = Snapshot.load ~path:p in
                 let meta = meta_of_sections ~what:p sections in
                 check_meta ~what:p ~kind:"multicore" ~key meta;
                 multicore_rows_of_sections ~what:p sections
               with
               | stored_total, rows
                 when stored_total = total
                      && List.length rows = n
                      && List.for_all2
                           (fun (r : Multicore_exp.row) label ->
                             r.Multicore_exp.label = label)
                           rows
                           (List.filteri (fun i _ -> i < n) labels) ->
                   Some (n, rows)
               | _ -> None
               | exception Invalid_argument _ -> None
               | exception Sys_error _ -> None)
  in
  let done_rows =
    ref (match resumed with None -> [] | Some (_, rows) -> rows)
  in
  let checkpoint () =
    match dir with
    | None -> ()
    | Some dir ->
        ensure_dir dir;
        let n = List.length !done_rows in
        let p = path ~dir ~key n in
        if n > 0 && not (Sys.file_exists p) then begin
          Snapshot.save ~path:p (multicore_sections ~key ~total !done_rows);
          ignore (Snapshot.prune ~keep ~dir ~key ())
        end
  in
  (match resumed with
  | Some (n, _) -> progress ~done_count:n ~total
  | None -> ());
  let batch = match every with Some e when e > 0 -> e | _ -> total in
  let stopped = ref false in
  while (not !stopped) && List.length !done_rows < total do
    if should_stop () then stopped := true
    else begin
      let n = List.length !done_rows in
      let step = min batch (total - n) in
      let chunk = List.filteri (fun i _ -> i >= n && i < n + step) cases in
      let rows =
        Array.to_list
          (Ptg_util.Pool.parallel_map ?jobs
             (fun case ->
               Multicore_exp.case_row ~instrs_per_core ~seed ~config case)
             (Array.of_list chunk))
      in
      done_rows := !done_rows @ rows;
      if every <> None || List.length !done_rows >= total then checkpoint ();
      progress ~done_count:(List.length !done_rows) ~total
    end
  done;
  if !stopped then checkpoint ();
  let completed = not !stopped in
  {
    r_result =
      (if completed then Some (Multicore_exp.of_rows !done_rows) else None);
    r_rows = !done_rows;
    r_completed = completed;
    r_resumed_from = Option.map fst resumed;
  }

(* ------------------------------------------------------------------ *)
(* Scenario entry point (server warm-start path)                       *)
(* ------------------------------------------------------------------ *)

type served = {
  text : string option; (* None when stopped before completion *)
  completed : bool;
  resumed_from : int option;
}

(* Scenario kinds the chunked drivers can slice: kill, persist, resume,
   byte-identically. Multi-seed sweeps aggregate across seeds at the end
   and are served in one piece. *)
let sliceable (t : Scenario.t) =
  match t.Scenario.kind with
  | Scenario.Fullsys | Scenario.Fig7 | Scenario.Multicore -> true
  | Scenario.Fig6 | Scenario.Fig9 -> t.Scenario.seeds = 1
  | Scenario.Fig8 | Scenario.Trace -> false

(* Without an explicit granularity, slice fullsys into ~10 instruction
   chunks and batched experiments one unit (row/point/workload) at a
   time, so [should_stop] gets a timely look even when the caller never
   tuned [every]. *)
let default_every (t : Scenario.t) =
  match t.Scenario.kind with
  | Scenario.Fullsys -> max 1 (Scenario.resolve_instrs t / 10)
  | _ -> 1

(* Scenarios the snapshot store can serve incrementally: fullsys by
   instruction prefix (keyed by [Scenario.prefix_hash]) and the batched
   experiments by unit prefix (keyed by the full [Scenario.hash] — units
   are only reusable for identical sizing). Even without [dir] the
   sliceable kinds run chunked, so [should_stop]/[progress] stay live;
   everything else runs in one piece. *)
let run_scenario ?dir ?every ?should_stop ?progress (t : Scenario.t) =
  Scenario.check t;
  let every =
    match every with
    | Some _ -> every
    | None -> if sliceable t then Some (default_every t) else None
  in
  match t.Scenario.kind with
  | Scenario.Fullsys ->
      let o =
        run_fullsys ?every ?dir ?should_stop ?progress
          ~key:(Scenario.prefix_hash t) ~seed:t.Scenario.seed
          ~instrs:(Scenario.resolve_instrs t) ()
      in
      {
        text =
          (if o.f_completed then
             Some (Scenario.render (Scenario.Fullsys_out o.f_result))
           else None);
        completed = o.f_completed;
        resumed_from = o.f_resumed_from;
      }
  | Scenario.Fig6 when t.Scenario.seeds = 1 ->
      let config =
        Ptguard.Config.with_mac_latency
          (Scenario.config_of_design t.Scenario.design)
          (Scenario.resolve_mac_latency t)
      in
      let workloads =
        List.map
          (fun name -> Option.get (Ptg_workloads.Workload.by_name name))
          (Scenario.resolve_workload_names t)
      in
      let o =
        run_fig6 ~jobs:t.Scenario.jobs ?every ?dir ?should_stop ?progress
          ~key:(Scenario.hash t) ~instrs:(Scenario.resolve_instrs t)
          ~warmup:(Scenario.resolve_warmup t) ~seed:t.Scenario.seed ~config
          ~workloads ()
      in
      {
        text = Option.map (fun r -> Scenario.render (Scenario.Fig6_out r)) o.g_result;
        completed = o.g_completed;
        resumed_from = o.g_resumed_from;
      }
  | Scenario.Fig7 ->
      let o =
        run_fig7 ~jobs:t.Scenario.jobs ?every ?dir ?should_stop ?progress
          ~key:(Scenario.hash t) ~instrs:(Scenario.resolve_instrs t)
          ~warmup:(Scenario.resolve_warmup t) ~seed:t.Scenario.seed ()
      in
      {
        text = Option.map (fun r -> Scenario.render (Scenario.Fig7_out r)) o.p_result;
        completed = o.p_completed;
        resumed_from = o.p_resumed_from;
      }
  | Scenario.Fig9 when t.Scenario.seeds = 1 ->
      let o =
        run_fig9 ~jobs:t.Scenario.jobs ?every ?dir ?should_stop ?progress
          ~key:(Scenario.hash t) ~lines_per_point:(Scenario.resolve_lines t)
          ~seed:t.Scenario.seed ()
      in
      {
        text = Option.map (fun r -> Scenario.render (Scenario.Fig9_out r)) o.q_result;
        completed = o.q_completed;
        resumed_from = o.q_resumed_from;
      }
  | Scenario.Multicore ->
      let o =
        run_multicore ~jobs:t.Scenario.jobs ?every ?dir ?should_stop ?progress
          ~key:(Scenario.hash t)
          ~instrs_per_core:(Scenario.resolve_instrs t)
          ~mixes:(Scenario.resolve_mixes t) ~seed:t.Scenario.seed ()
      in
      {
        text =
          Option.map (fun r -> Scenario.render (Scenario.Multicore_out r)) o.r_result;
        completed = o.r_completed;
        resumed_from = o.r_resumed_from;
      }
  | _ ->
      (match should_stop with
      | Some stop when stop () -> { text = None; completed = false; resumed_from = None }
      | _ ->
          {
            text = Some (Scenario.run_to_string t);
            completed = true;
            resumed_from = None;
          })

open Ptg_snapshot

(* ------------------------------------------------------------------ *)
(* Meta section                                                        *)
(* ------------------------------------------------------------------ *)

(* Every checkpoint opens with a meta section naming what produced it:
   the driver kind, the warm-start store key, and how far the run had
   got. Restoring validates all three — a snapshot from a different
   scenario (or a stale key collision) is rejected before any state is
   touched. *)
type meta = { m_kind : string; m_key : string; m_count : int }

let meta_section m =
  let b = Codec.writer () in
  Codec.put_string b m.m_kind;
  Codec.put_string b m.m_key;
  Codec.put_varint b m.m_count;
  Snapshot.section ~name:"meta" (Codec.contents b)

let meta_of_sections ~what sections =
  let r = Snapshot.reader ~what sections "meta" in
  let m_kind = Codec.get_string r in
  let m_key = Codec.get_string r in
  let m_count = Codec.get_varint r in
  Codec.expect_end r;
  { m_kind; m_key; m_count }

let check_meta ~what ~kind ~key m =
  if m.m_kind <> kind then
    invalid_arg
      (Printf.sprintf "Snapshot.load: %s: checkpoint kind %S, want %S" what
         m.m_kind kind);
  if m.m_key <> key then
    invalid_arg
      (Printf.sprintf "Snapshot.load: %s: checkpoint key %s, want %s" what
         m.m_key key)

(* ------------------------------------------------------------------ *)
(* Warm-start store: <dir>/<key>.<count>.ptgs                          *)
(* ------------------------------------------------------------------ *)

let file_name ~key count = Printf.sprintf "%s.%d.ptgs" key count
let path ~dir ~key count = Filename.concat dir (file_name ~key count)

(* Counts present in the store for [key], newest first. *)
let stored_counts ~dir ~key =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      Array.to_list entries
      |> List.filter_map (fun name ->
             match String.split_on_char '.' name with
             | [ k; n; "ptgs" ] when k = key -> int_of_string_opt n
             | _ -> None)
      |> List.sort (fun a b -> compare b a)

(* Best usable checkpoint at or below [upto] instructions/rows. *)
let find_latest ~dir ~key ~upto =
  List.find_opt (fun n -> n <= upto && n > 0) (stored_counts ~dir ~key)

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

(* ------------------------------------------------------------------ *)
(* Fullsys checkpoints                                                 *)
(* ------------------------------------------------------------------ *)

(* Keying a fullsys machine outside the scenario layer: everything
   [Fullsys.create] consumed, rendered canonically (alphabetical keys)
   and hashed — the same recipe as [Scenario.prefix_hash], over the
   creation parameters instead of the scenario fields. *)
let fullsys_key ?(config = Fullsys.default_config) ?(pages = 2048) ~seed () =
  let f = config.Fullsys.fault in
  let orientation =
    match f.Ptg_rowhammer.Fault_model.orientation with
    | Ptg_rowhammer.Fault_model.All_true -> "true"
    | Ptg_rowhammer.Fault_model.All_anti -> "anti"
    | Ptg_rowhammer.Fault_model.Per_row_hash -> "hash"
  in
  let canonical =
    Printf.sprintf
      "{\"attack\":%b,\"burst\":%d,\"fault\":{\"d2\":%.17g,\"orient\":%S,\"pflip\":%.17g,\"refresh\":%.17g,\"rth\":%d},\"guarded\":%b,\"pages\":%d,\"period\":%d,\"seed\":%Ld}"
      config.Fullsys.attack config.Fullsys.hammer_burst
      f.Ptg_rowhammer.Fault_model.distance2_weight orientation
      f.Ptg_rowhammer.Fault_model.p_flip
      f.Ptg_rowhammer.Fault_model.refresh_disturb_weight
      f.Ptg_rowhammer.Fault_model.rth config.Fullsys.guarded pages
      config.Fullsys.hammer_period seed
  in
  Snapshot.hash_hex (Codec.fnv1a64 canonical)

let fullsys_sections ~key (m : Fullsys.t) =
  let s = Fullsys.state m in
  let w = Codec.writer in
  let sec name fill =
    let b = w () in
    fill b;
    Snapshot.section ~name (Codec.contents b)
  in
  [
    meta_section { m_kind = "fullsys"; m_key = key; m_count = s.Fullsys.s_instr };
    sec "rng" (fun b -> Sections.put_words b s.Fullsys.s_rng);
    sec "dram" (fun b -> Sections.put_dram b s.Fullsys.s_dram);
    sec "fault" (fun b -> Sections.put_fault b s.Fullsys.s_fault);
    sec "engine" (fun b -> Codec.put_option b Sections.put_engine s.Fullsys.s_engine);
    sec "memctrl" (fun b -> Codec.put_int b s.Fullsys.s_mc_now);
    sec "vm" (fun b ->
        Sections.put_page_table b s.Fullsys.s_table;
        Sections.put_frame_allocator b s.Fullsys.s_alloc);
    sec "tlb" (fun b -> Sections.put_tlb b s.Fullsys.s_tlb);
    sec "translations" (fun b ->
        Codec.put_list b
          (fun b (vpn, paddr) ->
            Codec.put_i64 b vpn;
            Codec.put_i64 b paddr)
          s.Fullsys.s_translations);
    sec "counters" (fun b ->
        Codec.put_varint b s.Fullsys.s_instr;
        Codec.put_varint b s.Fullsys.s_now;
        Codec.put_varint b s.Fullsys.s_walks;
        Codec.put_varint b s.Fullsys.s_walk_corrections;
        Codec.put_varint b s.Fullsys.s_walk_exceptions;
        Codec.put_varint b s.Fullsys.s_refaults;
        Codec.put_varint b s.Fullsys.s_wrong_translations);
  ]

let fullsys_state_of_sections ~what sections : Fullsys.state =
  let sect name = Snapshot.reader ~what sections name in
  let finish r v =
    Codec.expect_end r;
    v
  in
  let r = sect "rng" in
  let s_rng = finish r (Sections.get_words r) in
  let r = sect "dram" in
  let s_dram = finish r (Sections.get_dram r) in
  let r = sect "fault" in
  let s_fault = finish r (Sections.get_fault r) in
  let r = sect "engine" in
  let s_engine = finish r (Codec.get_option r Sections.get_engine) in
  let r = sect "memctrl" in
  let s_mc_now = finish r (Codec.get_int r) in
  let r = sect "vm" in
  let s_table = Sections.get_page_table r in
  let s_alloc = finish r (Sections.get_frame_allocator r) in
  let r = sect "tlb" in
  let s_tlb = finish r (Sections.get_tlb r) in
  let r = sect "translations" in
  let s_translations =
    finish r
      (Codec.get_list r (fun r ->
           let vpn = Codec.get_i64 r in
           let paddr = Codec.get_i64 r in
           (vpn, paddr)))
  in
  let r = sect "counters" in
  let s_instr = Codec.get_varint r in
  let s_now = Codec.get_varint r in
  let s_walks = Codec.get_varint r in
  let s_walk_corrections = Codec.get_varint r in
  let s_walk_exceptions = Codec.get_varint r in
  let s_refaults = Codec.get_varint r in
  let s_wrong_translations = finish r (Codec.get_varint r) in
  {
    Fullsys.s_rng;
    s_dram;
    s_fault;
    s_engine;
    s_mc_now;
    s_table;
    s_alloc;
    s_tlb;
    s_translations;
    s_instr;
    s_now;
    s_walks;
    s_walk_corrections;
    s_walk_exceptions;
    s_refaults;
    s_wrong_translations;
  }

let fullsys_save ~path ~key m = Snapshot.save ~path (fullsys_sections ~key m)

let fullsys_restore ~path ~key m =
  let sections = Snapshot.load ~path in
  let meta = meta_of_sections ~what:path sections in
  check_meta ~what:path ~kind:"fullsys" ~key meta;
  Fullsys.set_state m (fullsys_state_of_sections ~what:path sections);
  meta.m_count

(* ------------------------------------------------------------------ *)
(* Chunked fullsys driver                                              *)
(* ------------------------------------------------------------------ *)

type fullsys_outcome = {
  f_result : Fullsys.result;
  f_completed : bool;
  f_done : int;
  f_resumed_from : int option;
}

let never_stop () = false
let no_progress ~done_count:_ ~total:_ = ()

let run_fullsys ?config ?pages ?key ?every ?dir ?(adopt = true)
    ?(should_stop = never_stop) ?(progress = no_progress) ~seed ~instrs () =
  let key =
    match key with Some k -> k | None -> fullsys_key ?config ?pages ~seed ()
  in
  let m = Fullsys.create ?config ?pages ~seed () in
  (* Warm start: adopt the deepest stored checkpoint not past the
     budget. A damaged or mismatched file is skipped (the store is an
     optimization); deeper candidates are tried in order. *)
  let resumed_from =
    match dir with
    | None -> None
    | Some _ when not adopt -> None
    | Some dir ->
        stored_counts ~dir ~key
        |> List.filter (fun n -> n <= instrs && n > 0)
        |> List.find_map (fun n ->
               match fullsys_restore ~path:(path ~dir ~key n) ~key m with
               | count -> Some count
               | exception Invalid_argument _ -> None)
  in
  let checkpoint () =
    match dir with
    | None -> ()
    | Some dir ->
        ensure_dir dir;
        let n = Fullsys.instrs_done m in
        let p = path ~dir ~key n in
        if not (Sys.file_exists p) then fullsys_save ~path:p ~key m
  in
  (* Make the adopted depth visible to progress streams before any new
     work happens (also the only progress a full-depth adoption emits). *)
  (match resumed_from with
  | Some n -> progress ~done_count:n ~total:instrs
  | None -> ());
  let chunk = match every with Some e when e > 0 -> e | _ -> instrs in
  let stopped = ref false in
  while (not !stopped) && Fullsys.instrs_done m < instrs do
    if should_stop () then stopped := true
    else begin
      let step = min chunk (instrs - Fullsys.instrs_done m) in
      ignore (Fullsys.run m ~instrs:step);
      if every <> None || Fullsys.instrs_done m >= instrs then checkpoint ();
      progress ~done_count:(Fullsys.instrs_done m) ~total:instrs
    end
  done;
  if !stopped then checkpoint ();
  {
    f_result = Fullsys.totals m;
    f_completed = not !stopped;
    f_done = Fullsys.instrs_done m;
    f_resumed_from = resumed_from;
  }

(* ------------------------------------------------------------------ *)
(* Fig6 row-batch checkpoints                                          *)
(* ------------------------------------------------------------------ *)

let fig6_rows_sections ~key ~total rows =
  let b = Codec.writer () in
  Codec.put_varint b total;
  Codec.put_list b
    (fun b (r : Fig6.row) ->
      Codec.put_string b r.Fig6.workload;
      Codec.put_float b r.mpki;
      Codec.put_float b r.base_ipc;
      Codec.put_float b r.norm_ipc;
      Codec.put_float b r.slowdown_pct;
      Codec.put_varint b r.pte_dram_reads;
      Codec.put_varint b r.dram_reads)
    rows;
  [
    meta_section { m_kind = "fig6"; m_key = key; m_count = List.length rows };
    Snapshot.section ~name:"fig6.rows" (Codec.contents b);
  ]

let fig6_rows_of_sections ~what sections =
  let r = Snapshot.reader ~what sections "fig6.rows" in
  let total = Codec.get_varint r in
  let rows =
    Codec.get_list r (fun r ->
        let workload = Codec.get_string r in
        let mpki = Codec.get_float r in
        let base_ipc = Codec.get_float r in
        let norm_ipc = Codec.get_float r in
        let slowdown_pct = Codec.get_float r in
        let pte_dram_reads = Codec.get_varint r in
        let dram_reads = Codec.get_varint r in
        {
          Fig6.workload;
          mpki;
          base_ipc;
          norm_ipc;
          slowdown_pct;
          pte_dram_reads;
          dram_reads;
        })
  in
  Codec.expect_end r;
  (total, rows)

type fig6_outcome = {
  g_result : Fig6.result option; (* None when stopped before the last row *)
  g_rows : Fig6.row list;
  g_completed : bool;
  g_resumed_from : int option;
}

let run_fig6 ?jobs ?key ?every ?dir ?(adopt = true)
    ?(should_stop = never_stop) ?(progress = no_progress) ~instrs ~warmup ~seed
    ~config ~workloads () =
  let total = List.length workloads in
  let key =
    match key with
    | Some k -> k
    | None ->
        (* No scenario at hand: key by the run parameters and the
           workload list. *)
        let names =
          String.concat ","
            (List.map (fun s -> s.Ptg_workloads.Workload.name) workloads)
        in
        Snapshot.hash_hex
          (Codec.fnv1a64
             (Printf.sprintf
                "{\"instrs\":%d,\"mac\":%d,\"seed\":%Ld,\"warmup\":%d,\"workloads\":[%s]}"
                instrs config.Ptguard.Config.mac_latency_cycles seed warmup
                names))
  in
  (* Resume: the deepest stored row prefix whose workloads match ours in
     order (a stale or colliding checkpoint is skipped). *)
  let resumed =
    match dir with
    | None -> None
    | Some _ when not adopt -> None
    | Some dir ->
        stored_counts ~dir ~key
        |> List.filter (fun n -> n <= total && n > 0)
        |> List.find_map (fun n ->
               let p = path ~dir ~key n in
               match
                 let sections = Snapshot.load ~path:p in
                 let meta = meta_of_sections ~what:p sections in
                 check_meta ~what:p ~kind:"fig6" ~key meta;
                 fig6_rows_of_sections ~what:p sections
               with
               | stored_total, rows
                 when stored_total = total
                      && List.length rows = n
                      && List.for_all2
                           (fun (r : Fig6.row) s ->
                             r.Fig6.workload = s.Ptg_workloads.Workload.name)
                           rows
                           (List.filteri (fun i _ -> i < n) workloads) ->
                   Some (n, rows)
               | _ -> None
               | exception Invalid_argument _ -> None)
  in
  let done_rows = ref (match resumed with None -> [] | Some (_, rows) -> rows) in
  let checkpoint () =
    match dir with
    | None -> ()
    | Some dir ->
        ensure_dir dir;
        let n = List.length !done_rows in
        let p = path ~dir ~key n in
        if n > 0 && not (Sys.file_exists p) then
          Snapshot.save ~path:p (fig6_rows_sections ~key ~total !done_rows)
  in
  (match resumed with
  | Some (n, _) -> progress ~done_count:n ~total
  | None -> ());
  let batch = match every with Some e when e > 0 -> e | _ -> total in
  let stopped = ref false in
  while (not !stopped) && List.length !done_rows < total do
    if should_stop () then stopped := true
    else begin
      let n = List.length !done_rows in
      let step = min batch (total - n) in
      let specs = List.filteri (fun i _ -> i >= n && i < n + step) workloads in
      let rows = Fig6.run_rows ?jobs ~instrs ~warmup ~seed ~config specs in
      done_rows := !done_rows @ rows;
      if every <> None || List.length !done_rows >= total then checkpoint ();
      progress ~done_count:(List.length !done_rows) ~total
    end
  done;
  if !stopped then checkpoint ();
  let completed = not !stopped in
  {
    g_result = (if completed then Some (Fig6.of_rows !done_rows) else None);
    g_rows = !done_rows;
    g_completed = completed;
    g_resumed_from = Option.map fst resumed;
  }

(* ------------------------------------------------------------------ *)
(* Scenario entry point (server warm-start path)                       *)
(* ------------------------------------------------------------------ *)

type served = {
  text : string option; (* None when stopped before completion *)
  completed : bool;
  resumed_from : int option;
}

(* Scenarios the snapshot store can serve incrementally: single-seed,
   non-observed fullsys (instruction-prefix warm start, keyed by
   [Scenario.prefix_hash]) and fig6 (row-prefix warm start, keyed by the
   full [Scenario.hash] — rows are only reusable for identical sizing).
   Everything else runs in one piece; [should_stop] then only takes
   effect between scenarios. *)
let run_scenario ?dir ?every ?should_stop ?progress (t : Scenario.t) =
  Scenario.check t;
  match (t.Scenario.kind, dir) with
  | Scenario.Fullsys, Some _ ->
      let o =
        run_fullsys ?every ?dir ?should_stop ?progress
          ~key:(Scenario.prefix_hash t) ~seed:t.Scenario.seed
          ~instrs:(Scenario.resolve_instrs t) ()
      in
      {
        text =
          (if o.f_completed then
             Some (Scenario.render (Scenario.Fullsys_out o.f_result))
           else None);
        completed = o.f_completed;
        resumed_from = o.f_resumed_from;
      }
  | Scenario.Fig6, Some _ when t.Scenario.seeds = 1 ->
      let config =
        Ptguard.Config.with_mac_latency
          (Scenario.config_of_design t.Scenario.design)
          (Scenario.resolve_mac_latency t)
      in
      let workloads =
        List.map
          (fun name -> Option.get (Ptg_workloads.Workload.by_name name))
          (Scenario.resolve_workload_names t)
      in
      let o =
        run_fig6 ~jobs:t.Scenario.jobs ?every ?dir ?should_stop ?progress
          ~key:(Scenario.hash t) ~instrs:(Scenario.resolve_instrs t)
          ~warmup:(Scenario.resolve_warmup t) ~seed:t.Scenario.seed ~config
          ~workloads ()
      in
      {
        text = Option.map (fun r -> Scenario.render (Scenario.Fig6_out r)) o.g_result;
        completed = o.g_completed;
        resumed_from = o.g_resumed_from;
      }
  | _ ->
      (match should_stop with
      | Some stop when stop () -> { text = None; completed = false; resumed_from = None }
      | _ ->
          {
            text = Some (Scenario.run_to_string t);
            completed = true;
            resumed_from = None;
          })

(** Shared scenario description for the servable experiments.

    A scenario is a typed, validated description of one experiment run:
    the experiment kind plus every semantic parameter (workload set, MAC
    latency, seed(s), reduced/full sizing) and one execution hint
    ([jobs]). Both front-ends build the same record — the CLI from parsed
    arguments, {!Ptg_server} from decoded wire frames — and both run it
    through {!run}/{!render}, so their outputs cannot drift: the bytes a
    server response carries are exactly the bytes the CLI prints.

    Every scenario has a {e canonical} serialized form: a single-line
    JSON object with alphabetically sorted keys, all defaults resolved to
    concrete values, and only the fields that are semantic for its kind
    (the [jobs] hint is excluded — results are bit-identical for any job
    count, so two requests differing only in [jobs] must share a cache
    entry). {!hash} is an FNV-1a 64-bit hash of that form: the result
    cache key. Because every experiment is deterministic given its
    canonical form, a cache hit is byte-identical to a re-run. *)

type kind = Fig6 | Fig7 | Fig8 | Fig9 | Multicore | Trace | Fullsys

val kinds : kind list
val kind_name : kind -> string
val kind_of_name : string -> kind option
val kind_names : string list

val design_wire_name : Ptguard.Config.design -> string
(** ["baseline"] / ["optimized"]: the CLI's --design tokens, reused as
    the wire and canonical encoding. *)

val design_of_wire_name : string -> Ptguard.Config.design option

type t = {
  kind : kind;
  seed : int64;                 (** ignored when [seeds > 1] *)
  seeds : int;                  (** > 1 selects the multi-seed sweep *)
  reduced : bool;               (** bench-reduced default sizes *)
  design : Ptguard.Config.design;      (** Fig6 only *)
  mac_latency : int option;            (** Fig6 only; None = design default *)
  workloads : string list option;      (** Fig6 only; None = all *)
  instrs : int option;          (** Fig6/Fig7 timed instrs; Multicore per-core *)
  warmup : int option;          (** Fig6/Fig7 *)
  processes : int option;       (** Fig8 *)
  lines : int option;           (** Fig9 lines per (workload, p_flip) point *)
  mixes : int option;           (** Multicore *)
  trace_path : string option;   (** Trace only: path to the trace file *)
  mitigation : string option;   (** Trace only: a {!Ptg_mitigations.Registry} name *)
  mit_params : (string * Ptg_mitigations.Registry.value) list;
      (** Trace only: overrides for the mitigation's declared defaults *)
  jobs : int;  (** execution hint: worker domains inside the experiment *)
}

val make :
  ?seed:int64 ->
  ?seeds:int ->
  ?reduced:bool ->
  ?design:Ptguard.Config.design ->
  ?mac_latency:int ->
  ?workloads:string list ->
  ?instrs:int ->
  ?warmup:int ->
  ?processes:int ->
  ?lines:int ->
  ?mixes:int ->
  ?trace:string ->
  ?mitigation:string ->
  ?mit_params:(string * Ptg_mitigations.Registry.value) list ->
  ?jobs:int ->
  kind ->
  t
(** Defaults: seed 42, one seed, full sizes, Baseline design, one job,
    every parameter at its kind default (resolved lazily, see
    {!canonical}). *)

val validate : t -> (unit, string) result
(** Semantic checks beyond typing: known workload names, positive sizes,
    [seeds > 1] only for the kinds with a multi-seed sweep (Fig6/Fig9);
    for [Trace], an existing trace file, a registered mitigation name
    and schema-valid parameter overrides. *)

val check : t -> unit
(** {!validate}, raising [Invalid_argument] on rejection. *)

val config_of_design : Ptguard.Config.design -> Ptguard.Config.t

val resolve_instrs : t -> int
val resolve_warmup : t -> int
val resolve_mac_latency : t -> int
val resolve_workload_names : t -> string list
val resolve_lines : t -> int
val resolve_mixes : t -> int
(** Kind-aware defaults, as {!canonical} resolves them — exposed for
    drivers (the checkpoint layer) that must reproduce {!run}'s exact
    parameters. *)

val canonical : t -> string
(** Single-line JSON, sorted keys, defaults resolved, kind-relevant
    fields only. Raises [Invalid_argument] when {!validate} rejects.
    For [Trace], the [trace] field is {!trace_content_hash} of the file
    — the cache key follows content, not path. *)

val trace_content_hash : string -> string
(** FNV-1a (64-bit, 16 hex digits) of a file's bytes. *)

val hash64 : t -> int64
(** FNV-1a (64-bit) of {!canonical}. *)

val hash : t -> string
(** {!hash64} as 16 lowercase hex digits: the result-cache key. *)

val prefix_canonical : t -> string
(** {!canonical} with the instruction budget omitted: everything the
    run depends on {e except} how far it goes. Two [Fullsys] scenarios
    differing only in [instrs] share a prefix form, which is what lets
    a longer run warm-start from a shorter run's checkpoints. *)

val prefix_hash64 : t -> int64

val prefix_hash : t -> string
(** {!prefix_hash64} as 16 lowercase hex digits: the warm-start store
    key ([Checkpoint] names snapshot files [<prefix_hash>.<n>.ptgs]). *)

type output =
  | Fig6_out of Fig6.result
  | Fig6_multi_out of Fig6.multi
  | Fig7_out of Fig7.result
  | Fig8_out of Fig8.result
  | Fig9_out of Fig9.result
  | Fig9_multi_out of Fig9.multi
  | Multicore_out of Multicore_exp.result
  | Trace_out of { mitigation : string option; result : Mem_trace.replay_result }
  | Fullsys_out of Fullsys.result
      (** guarded machine under double-sided attack, default sizing *)

val run : ?obs:Ptg_obs.Sink.t -> t -> output
(** Execute the scenario (raising [Invalid_argument] when {!validate}
    rejects). Deterministic: the rendering of the output depends only on
    {!canonical}, never on [jobs] or on the observability sink. *)

val render : output -> string
(** The human-readable report — exactly what the corresponding CLI
    subcommand prints to stdout. *)

val run_to_string : ?obs:Ptg_obs.Sink.t -> t -> string
(** [render (run t)]: what the server computes, caches and ships. *)

val save_csv : output -> path:string -> unit
(** Write the CSV artifact for single-run outputs; multi-seed outputs
    have no CSV form and are ignored (matching the CLI). *)

(** Memory-access traces: external address streams as first-class
    workloads (the DRAMsim3 trace-frontend idiom).

    A trace is a chronological sequence of line-granularity memory
    accesses — [(addr, R/W, cycle)] — recorded from a synthetic
    workload's instruction stream or supplied from outside the
    simulator. Replay drives a {!Ptg_memctrl.Memctrl} and attaches any
    registered mitigation ({!Ptg_mitigations.Registry}) by name, so a
    new attack pattern is a trace file plus a registry lookup instead of
    a cross-cutting patch.

    Two on-disk formats, converted losslessly in either direction:

    - {b text} (one record per line, human-editable):
      {v # <workload>
0x48000000 R 0
0x48010040 W 3 v}
      Addresses are accepted in any [Int64.of_string] form and written
      back as [0x%Lx]; cycles are non-negative decimals; blank lines
      are skipped. Malformed input raises [Invalid_argument] naming the
      file and 1-based line, exactly like {!Walk_trace.load}.
    - {b binary} (compact): magic ["PTGM"], a version byte (currently
      1), the workload name (varint length + bytes), the event count
      (varint), then per event a zigzag-varint address delta and a
      varint packing [(zigzag cycle_delta) lsl 1 lor is_write]. Both
      deltas are signed, so neither addresses nor cycles need to be
      monotone. See EXPERIMENTS.md for the normative grammar.

    Workload names obey {!Walk_trace.validate_name} in both formats. *)

type event = { addr : int64; is_write : bool; cycle : int }

type t = { workload : string; events : event array }

type format = Text | Binary

val record :
  ?instrs:int -> ?seed:int64 -> Ptg_workloads.Workload.spec -> t
(** Record the workload's memory operations (default 500K instructions):
    one event per [Load]/[Store] of the instruction stream, with
    [cycle] = instruction index. Deterministic for a given seed. *)

val length : t -> int

val save : t -> format:format -> path:string -> unit
(** Raises [Invalid_argument] if the workload name violates
    {!Walk_trace.validate_name}. *)

val load : path:string -> t
(** Sniffs the format (binary iff the file starts with the magic) and
    parses. All malformed-input failures raise [Invalid_argument]
    naming the file — and, for the text format, the 1-based line. *)

val equal : t -> t -> bool

(** {1 Replay} *)

type replay_result = {
  events : int;
  reads : int;
  writes : int;
  activations : int;  (** row activations observed on the DRAM bus *)
  refreshes : int;  (** targeted row refreshes observed on the bus *)
  mitigation_refreshes : int;
      (** as accounted by the attached mitigation (0 when none) *)
}

val replay :
  ?mitigation:string ->
  ?params:(string * Ptg_mitigations.Registry.value) list ->
  ?pt_row:(channel:int -> bank:int -> row:int -> bool) ->
  ?seed:int64 ->
  t ->
  (replay_result, string) result
(** Drive the trace through a fresh memory controller, observing the
    bus via the {!Ptg_memctrl.Memctrl.on_activate} /
    [on_refresh] / [on_line_read] hook points. With [mitigation], the
    named plugin is instantiated from the registry ([params] overriding
    its defaults; [seed], default 42, feeds the RNG of randomized
    defenses; [pt_row] supplies the page-table-row oracle [soft-trr]
    needs). Unknown mitigation names, bad parameters and missing
    capabilities come back as [Error msg]. Deterministic: the result
    depends only on the trace, the mitigation spec and the seed. *)

val render_result : ?mitigation:string -> replay_result -> string
(** Stable human-readable report (the CLI/server output for
    [kind:"trace"] scenarios). *)

open Ptg_util

type cell = {
  p_flip : float;
  sampled : int;
  corrected : int;
  uncorrectable : int;
  benign : int;
  miscorrections : int;
  escapes : int;
  corrected_pct : float;
}

type workload_result = { workload : string; cells : cell list }

type result = {
  per_workload : workload_result list;
  average : cell list;
  step_histogram : (string * int) list;
}

let default_p_flips = [ 1.0 /. 1024.0; 1.0 /. 512.0; 1.0 /. 256.0; 1.0 /. 128.0 ]

(* Per-workload process-model parameters. Unlike the multi-process desktop
   survey of Figure 8, these model a single benchmark process on a freshly
   booted system (the paper's gem5 setup): large sequentially-faulted
   regions with little allocator interleaving, hence long runs and high
   PFN contiguity. GAP kernels fragment somewhat more (graph CSR arrays
   interleaved with per-vertex allocations). *)
let process_params rng (spec : Ptg_workloads.Workload.spec) =
  let base = Ptg_vm.Process_model.draw_params rng in
  let target = min spec.Ptg_workloads.Workload.cold_pages 65_536 in
  let target_ptes = 512 * ((target + 511) / 512) in
  match spec.Ptg_workloads.Workload.suite with
  | Ptg_workloads.Workload.Gap ->
      { base with Ptg_vm.Process_model.target_ptes; mean_run = 20.0; mean_gap = 8.0;
        p_break = 0.15 }
  | Ptg_workloads.Workload.Spec_int | Ptg_workloads.Workload.Spec_fp ->
      { base with Ptg_vm.Process_model.target_ptes; mean_run = 40.0; mean_gap = 8.0;
        p_break = 0.06 }

(* Walk-biased sampler: line i drawn with weight = its present-PTE count. *)
let weighted_sampler rng lines =
  let weights =
    Array.map
      (fun line ->
        Array.fold_left
          (fun acc w -> if Int64.equal w 0L then acc else acc + 1)
          0 line)
      lines
  in
  let total = Array.fold_left ( + ) 0 weights in
  if total = 0 then fun () -> lines.(Rng.int rng (Array.length lines))
  else fun () ->
    let target = Rng.int rng total in
    let rec find i acc =
      let acc = acc + weights.(i) in
      if acc > target then lines.(i) else find (i + 1) acc
    in
    find 0 0

type tally = {
  mutable sampled : int;
  mutable corrected : int;
  mutable uncorrectable : int;
  mutable benign : int;
  mutable miscorrections : int;
  mutable escapes : int;
}

type prepared = {
  pr_spec : Ptg_workloads.Workload.spec;
  pr_params : Ptg_vm.Process_model.params;
  pr_wl_rng : Rng.t;
  pr_engine_rng : Rng.t;
}

(* Per-workload generator state is split off the master stream serially,
   in workload order, before any fan-out across domains — the injection
   sequence each workload sees is therefore independent of the job
   count, and parallel (or resumed-from-checkpoint) runs are
   bit-identical to serial ones. Preparation is cheap relative to a
   campaign, so a resumed slice just re-prepares every workload. *)
let prepare ~seed workloads =
  let rng = Rng.create seed in
  List.map
    (fun spec ->
      let pr_params = process_params rng spec in
      let pr_wl_rng = Rng.split rng in
      let pr_engine_rng = Rng.split rng in
      { pr_spec = spec; pr_params; pr_wl_rng; pr_engine_rng })
    workloads

(* One workload's injection campaign from its prepared generator state.
   The correction-strategy histogram is returned as a key-sorted assoc
   list so it can be serialized and merged deterministically. *)
let run_workload ?obs ~lines_per_point ~p_flips ~config prepared =
  let { pr_spec = spec; pr_params = params; pr_wl_rng = wl_rng;
        pr_engine_rng = engine_rng } = prepared in
  let mask line = Ptguard.Config.masked_for_mac config line in
  let rng = wl_rng in
  let steps : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let lines = Ptg_vm.Process_model.leaf_lines rng params in
  let sample = weighted_sampler rng lines in
  let engine = Ptguard.Engine.create ~config ?obs ~rng:engine_rng () in
          let cells =
            List.map
              (fun p_flip ->
                let t = { sampled = 0; corrected = 0; uncorrectable = 0; benign = 0; miscorrections = 0; escapes = 0 } in
                let addr_counter = ref 0 in
                while t.sampled < lines_per_point do
                  let line = sample () in
                  incr addr_counter;
                  let addr = Int64.of_int (0x4000_0000 + (!addr_counter * 64)) in
                  let stored = Ptguard.Engine.process_write engine ~addr line in
                  let faulty, flips =
                    Ptg_rowhammer.Inject.flip_line rng ~p_flip stored
                  in
                  if flips <> [] then begin
                    t.sampled <- t.sampled + 1;
                    let r = Ptguard.Engine.process_read engine ~addr ~is_pte:true faulty in
                    (match r.Ptguard.Engine.integrity with
                    | Ptguard.Engine.Corrected { step; _ } ->
                        let name = Ptguard.Correction.step_name step in
                        Hashtbl.replace steps name
                          (1 + Option.value ~default:0 (Hashtbl.find_opt steps name));
                        let ok =
                          match r.Ptguard.Engine.line with
                          | Some l -> Ptg_pte.Line.equal (mask l) (mask line)
                          | None -> false
                        in
                        if ok then t.corrected <- t.corrected + 1
                        else t.miscorrections <- t.miscorrections + 1
                    | Ptguard.Engine.Failed -> t.uncorrectable <- t.uncorrectable + 1
                    | Ptguard.Engine.Passed -> (
                        (* Flips confined to unprotected bits are invisible
                           by design; anything else passing is an escape. *)
                        match r.Ptguard.Engine.line with
                        | Some l when Ptg_pte.Line.equal (mask l) (mask line) ->
                            t.benign <- t.benign + 1
                        | Some _ | None -> t.escapes <- t.escapes + 1)
                    | Ptguard.Engine.Data_protected | Ptguard.Engine.Data_passthrough ->
                        t.escapes <- t.escapes + 1)
                  end
                done;
                let denom = max 1 (t.corrected + t.uncorrectable) in
                {
                  p_flip;
                  sampled = t.sampled;
                  corrected = t.corrected;
                  uncorrectable = t.uncorrectable;
                  benign = t.benign;
                  miscorrections = t.miscorrections;
                  escapes = t.escapes;
                  corrected_pct = 100.0 *. float_of_int t.corrected /. float_of_int denom;
                })
              p_flips
          in
  ( { workload = spec.Ptg_workloads.Workload.name; cells },
    List.sort
      (fun (ka, _) (kb, _) -> String.compare ka kb)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) steps []) )

(* Assemble per-workload parts — in workload order — into the figure:
   merged strategy histogram and the pooled per-p_flip average row. The
   merge sums commutatively and the histogram is re-sorted, so parts
   computed in any batching (checkpoint slices included) assemble
   byte-identically. *)
let assemble ~p_flips parts =
  let per_workload = List.map fst parts in
  let steps : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (_, wl_steps) ->
      List.iter
        (fun (k, v) ->
          Hashtbl.replace steps k (v + Option.value ~default:0 (Hashtbl.find_opt steps k)))
        wl_steps)
    parts;
  (* Pool the per-workload tallies into the per-p_flip average row. *)
  let average =
    List.mapi
      (fun pi p_flip ->
        let cells = List.map (fun w -> List.nth w.cells pi) per_workload in
        let sum g = List.fold_left (fun acc c -> acc + g c) 0 cells in
        let corrected = sum (fun c -> c.corrected) in
        let uncorrectable = sum (fun c -> c.uncorrectable) in
        let denom = max 1 (corrected + uncorrectable) in
        {
          p_flip;
          sampled = sum (fun c -> c.sampled);
          corrected;
          uncorrectable;
          benign = sum (fun c -> c.benign);
          miscorrections = sum (fun c -> c.miscorrections);
          escapes = sum (fun c -> c.escapes);
          corrected_pct = 100.0 *. float_of_int corrected /. float_of_int denom;
        })
      p_flips
  in
  {
    per_workload;
    average;
    step_histogram =
      List.sort
        (fun (ka, a) (kb, b) ->
          match compare b a with 0 -> String.compare ka kb | c -> c)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) steps []);
  }

let run ?jobs ?(lines_per_point = 300) ?(seed = 9L) ?(p_flips = default_p_flips)
    ?(config = Ptguard.Config.optimized)
    ?(workloads = Ptg_workloads.Workload.fig9_subset) ?obs () =
  let prepared = Array.of_list (prepare ~seed workloads) in
  let children =
    match obs with
    | None -> [||]
    | Some sink ->
        Array.init (Array.length prepared) (fun _ -> Ptg_obs.Sink.child sink)
  in
  let parts =
    Pool.parallel_map ?jobs
      (fun (i, p) ->
        let obs =
          if Array.length children = 0 then None else Some children.(i)
        in
        run_workload ?obs ~lines_per_point ~p_flips ~config p)
      (Array.mapi (fun i p -> (i, p)) prepared)
  in
  (match obs with
  | None -> ()
  | Some sink ->
      Array.iter (fun child -> Ptg_obs.Sink.merge_into ~src:child ~dst:sink) children);
  assemble ~p_flips (Array.to_list parts)

let pp_p p =
  if p > 0.0 && Float.is_integer (1.0 /. p) then
    Printf.sprintf "1/%d" (int_of_float (1.0 /. p))
  else Printf.sprintf "%.4f" p

let header result =
  "workload" :: List.map (fun c -> pp_p c.p_flip) result.average

let to_rows result =
  List.map
    (fun w ->
      w.workload :: List.map (fun c -> Table.f2 c.corrected_pct) w.cells)
    result.per_workload
  @ [ "AVERAGE" :: List.map (fun c -> Table.f2 c.corrected_pct) result.average ]

let to_string result =
  let total_mis =
    List.fold_left (fun acc (c : cell) -> acc + c.miscorrections) 0 result.average
  in
  let total_escapes =
    List.fold_left (fun acc (c : cell) -> acc + c.escapes) 0 result.average
  in
  "Figure 9: % of faulty PTE cachelines corrected, by p_flip\n"
  ^ Table.render
      ~align:(Table.Left :: List.map (fun _ -> Table.Right) result.average)
      ~header:(header result) (to_rows result)
  ^ Printf.sprintf
      "Mis-corrections: %d, undetected escapes: %d (paper: zero of each; 100%% coverage).\n"
      total_mis total_escapes
  ^ "Paper: 93% corrected at p=1/512, 70% at p=1/128.\n"
  ^ "Correction strategy usage:\n"
  ^ String.concat ""
      (List.map
         (fun (s, n) -> Printf.sprintf "  %-16s %d\n" s n)
         result.step_histogram)

let print result = print_string (to_string result)

let to_csv result ~path =
  Table.save_csv ~path ~header:(header result) (to_rows result)

type multi = {
  p_flips : float list;
  corrected : Stats.summary list;
  total_miscorrections : int;
  total_escapes : int;
}

let run_multi ?jobs ?(seeds = 5) ?lines_per_point ?(p_flips = default_p_flips)
    ?config ?workloads () =
  if seeds < 1 then invalid_arg "Fig9.run_multi: seeds";
  let runs =
    List.init seeds (fun i ->
        run ?jobs ?lines_per_point ~p_flips ?config ?workloads
          ~seed:(Int64.of_int (2000 + i)) ())
  in
  let corrected =
    List.mapi
      (fun pi _ ->
        Stats.summarize
          (Array.of_list
             (List.map
                (fun r -> (List.nth r.average pi).corrected_pct)
                runs)))
      p_flips
  in
  {
    p_flips;
    corrected;
    total_miscorrections =
      List.fold_left
        (fun acc r ->
          acc + List.fold_left (fun a (c : cell) -> a + c.miscorrections) 0 r.average)
        0 runs;
    total_escapes =
      List.fold_left
        (fun acc r ->
          acc + List.fold_left (fun a (c : cell) -> a + c.escapes) 0 r.average)
        0 runs;
  }

let multi_to_string m =
  Printf.sprintf "Figure 9 across %d seeds (corrected %%, mean +- se):\n"
    (match m.corrected with s :: _ -> s.Stats.n | [] -> 0)
  ^ String.concat ""
      (List.mapi
         (fun i s ->
           Printf.sprintf "  p_flip %-7s %.1f%% +- %.2f\n"
             (pp_p (List.nth m.p_flips i))
             s.Stats.mean s.Stats.stderr)
         m.corrected)
  ^ Printf.sprintf "  mis-corrections: %d, escapes: %d (must both be 0)\n"
      m.total_miscorrections m.total_escapes

let print_multi m = print_string (multi_to_string m)

(** Checkpoint/restore drivers over {!Ptg_snapshot}.

    Two experiment families checkpoint usefully:

    - {b fullsys} — the machine's complete mutable state
      ({!Fullsys.state}) every [every] instructions. Because the hammer
      schedule, RNG streams and all counters are absolute, a run
      resumed from any checkpoint is byte-identical to one that never
      stopped.
    - {b fig6} — completed per-workload rows in batches of [every].
      Rows are independent and job-count invariant, so a resumed run
      recomputes only the missing suffix and aggregates identically.

    Checkpoints live in a {e warm-start store}: a directory of
    [<key>.<count>.ptgs] snapshot files, where [key] hashes everything
    the run depends on {e except} how far it goes
    ({!Scenario.prefix_hash} for fullsys scenarios) and [count] is the
    instruction (or row) prefix covered. A longer run warm-starts from
    the deepest stored prefix at or below its budget; damaged or
    mismatched files are skipped, never fatal — explicit restores
    ({!fullsys_restore}) raise instead.

    Checkpointing excludes observability: drivers never pass [obs]. *)

(** {1 Warm-start store} *)

val file_name : key:string -> int -> string
val path : dir:string -> key:string -> int -> string

val stored_counts : dir:string -> key:string -> int list
(** Prefix depths present for [key], deepest first; [] when [dir] is
    missing. *)

val find_latest : dir:string -> key:string -> upto:int -> int option

(** {1 Fullsys} *)

val fullsys_key :
  ?config:Fullsys.config -> ?pages:int -> seed:int64 -> unit -> string
(** Store key for a machine built outside the scenario layer: FNV-1a
    over the canonicalized creation parameters. Scenario-driven runs
    use {!Scenario.prefix_hash} instead. *)

val fullsys_sections : key:string -> Fullsys.t -> Ptg_snapshot.Snapshot.section list
(** Snapshot sections for the machine's current state: a meta header
    (kind, key, instruction count) plus one section per subsystem
    (rng, dram, fault, engine, memctrl, vm, tlb, translations,
    counters). *)

val fullsys_state_of_sections :
  what:string -> Ptg_snapshot.Snapshot.section list -> Fullsys.state
(** Decode the subsystem sections back into a state record. Raises
    [Invalid_argument] naming [what] on any missing or malformed
    section. *)

val fullsys_save : path:string -> key:string -> Fullsys.t -> unit

val fullsys_restore : path:string -> key:string -> Fullsys.t -> int
(** Load, validate the meta header against [key], and overwrite the
    machine's state; returns the checkpoint's instruction count.
    Raises [Invalid_argument] on a corrupt file or a kind/key
    mismatch. *)

type fullsys_outcome = {
  f_result : Fullsys.result;  (** lifetime totals, partial when stopped *)
  f_completed : bool;
  f_done : int;               (** absolute instructions executed *)
  f_resumed_from : int option;
}

val run_fullsys :
  ?config:Fullsys.config ->
  ?pages:int ->
  ?key:string ->
  ?every:int ->
  ?dir:string ->
  ?adopt:bool ->
  ?should_stop:(unit -> bool) ->
  ?progress:(done_count:int -> total:int -> unit) ->
  seed:int64 ->
  instrs:int ->
  unit ->
  fullsys_outcome
(** Build the machine, warm-start it from [dir] when possible, and run
    the remaining budget in chunks of [every] (one chunk when absent),
    checkpointing after each chunk and at completion. [should_stop] is
    polled between chunks; stopping checkpoints the current position
    and returns with [f_completed = false]. [adopt:false] still writes
    checkpoints but starts cold, ignoring stored ones (the CLI's
    checkpoint-without-[--resume] mode). The final result is
    byte-identical for any [every], any kill/resume schedule, and any
    warm-start depth. *)

(** {1 Fig6} *)

val fig6_rows_sections :
  key:string -> total:int -> Fig6.row list -> Ptg_snapshot.Snapshot.section list

val fig6_rows_of_sections :
  what:string ->
  Ptg_snapshot.Snapshot.section list ->
  int * Fig6.row list
(** [(total, completed-prefix)]. *)

type fig6_outcome = {
  g_result : Fig6.result option;  (** [None] when stopped early *)
  g_rows : Fig6.row list;
  g_completed : bool;
  g_resumed_from : int option;    (** rows adopted from the store *)
}

val run_fig6 :
  ?jobs:int ->
  ?key:string ->
  ?every:int ->
  ?dir:string ->
  ?adopt:bool ->
  ?should_stop:(unit -> bool) ->
  ?progress:(done_count:int -> total:int -> unit) ->
  instrs:int ->
  warmup:int ->
  seed:int64 ->
  config:Ptguard.Config.t ->
  workloads:Ptg_workloads.Workload.spec list ->
  unit ->
  fig6_outcome
(** Row-batch analogue of {!run_fullsys}: compute missing rows in
    ordered batches of [every] (all at once when absent) through
    {!Fig6.run_rows}, checkpointing the completed prefix. A stored
    prefix is only adopted when its workload names match this run's
    list in order. *)

(** {1 Scenario entry point} *)

type served = {
  text : string option;  (** the {!Scenario.render}ing; [None] if stopped *)
  completed : bool;
  resumed_from : int option;
}

val run_scenario :
  ?dir:string ->
  ?every:int ->
  ?should_stop:(unit -> bool) ->
  ?progress:(done_count:int -> total:int -> unit) ->
  Scenario.t ->
  served
(** The server's warm-start-aware execution path. With [dir], fullsys
    scenarios warm-start by instruction prefix (key
    {!Scenario.prefix_hash}) and single-seed fig6 scenarios by row
    prefix (key {!Scenario.hash}); the rendering is byte-identical to
    {!Scenario.run_to_string}. Other kinds run in one piece. *)

(** Checkpoint/restore drivers over {!Ptg_snapshot}.

    Every sliceable experiment family has a chunked driver:

    - {b fullsys} — the machine's complete mutable state
      ({!Fullsys.state}) every [every] instructions. Because the hammer
      schedule, RNG streams and all counters are absolute, a run
      resumed from any checkpoint is byte-identical to one that never
      stopped.
    - {b fig6} — completed per-workload rows in batches of [every].
      Rows are independent and job-count invariant, so a resumed run
      recomputes only the missing suffix and aggregates identically.
    - {b fig7} — completed sweep points, with the shared unprotected
      baselines stored in every checkpoint so resumes never recompute
      them.
    - {b fig9} — completed per-workload injection campaigns; generator
      states are re-derived from the seed each slice.
    - {b multicore} — completed SAME/MIX rows; the case list is
      re-derived from the seed each slice.

    Checkpoints live in a {e warm-start store}: a directory of
    [<key>.<count>.ptgs] snapshot files, where [key] hashes everything
    the run depends on {e except} how far it goes
    ({!Scenario.prefix_hash} for fullsys scenarios) and [count] is the
    instruction (or unit) prefix covered. A longer run warm-starts from
    the deepest stored prefix at or below its budget; damaged or
    mismatched files are skipped, never fatal — explicit restores
    ({!fullsys_restore}) raise instead. After each successful save the
    drivers prune the store to the deepest [keep] files per key
    ({!Ptg_snapshot.Snapshot.prune}), so a long multi-chunk run leaves a
    bounded number of files behind.

    Checkpointing excludes observability: drivers never pass [obs]. *)

(** {1 Warm-start store} *)

val file_name : key:string -> int -> string
val path : dir:string -> key:string -> int -> string

val stored_counts : dir:string -> key:string -> int list
(** Prefix depths present for [key], deepest first; [] when [dir] is
    missing. *)

val find_latest : dir:string -> key:string -> upto:int -> int option

val default_keep : int
(** Files retained per key by the drivers' post-save prune (2: the
    deepest plus one fallback for damaged-file recovery). *)

(** {1 Fullsys} *)

val fullsys_key :
  ?config:Fullsys.config -> ?pages:int -> seed:int64 -> unit -> string
(** Store key for a machine built outside the scenario layer: FNV-1a
    over the canonicalized creation parameters. Scenario-driven runs
    use {!Scenario.prefix_hash} instead. *)

val fullsys_sections : key:string -> Fullsys.t -> Ptg_snapshot.Snapshot.section list
(** Snapshot sections for the machine's current state: a meta header
    (kind, key, instruction count) plus one section per subsystem
    (rng, dram, fault, engine, memctrl, vm, tlb, translations,
    counters). *)

val fullsys_state_of_sections :
  what:string -> Ptg_snapshot.Snapshot.section list -> Fullsys.state
(** Decode the subsystem sections back into a state record. Raises
    [Invalid_argument] naming [what] on any missing or malformed
    section. *)

val fullsys_save : path:string -> key:string -> Fullsys.t -> unit

val fullsys_restore : path:string -> key:string -> Fullsys.t -> int
(** Load, validate the meta header against [key], and overwrite the
    machine's state; returns the checkpoint's instruction count.
    Raises [Invalid_argument] on a corrupt file or a kind/key
    mismatch. *)

type fullsys_outcome = {
  f_result : Fullsys.result;  (** lifetime totals, partial when stopped *)
  f_completed : bool;
  f_done : int;               (** absolute instructions executed *)
  f_resumed_from : int option;
}

val run_fullsys :
  ?config:Fullsys.config ->
  ?pages:int ->
  ?key:string ->
  ?keep:int ->
  ?every:int ->
  ?dir:string ->
  ?adopt:bool ->
  ?should_stop:(unit -> bool) ->
  ?progress:(done_count:int -> total:int -> unit) ->
  seed:int64 ->
  instrs:int ->
  unit ->
  fullsys_outcome
(** Build the machine, warm-start it from [dir] when possible, and run
    the remaining budget in chunks of [every] (one chunk when absent),
    checkpointing after each chunk and at completion. [should_stop] is
    polled between chunks; stopping checkpoints the current position
    and returns with [f_completed = false]. [adopt:false] still writes
    checkpoints but starts cold, ignoring stored ones (the CLI's
    checkpoint-without-[--resume] mode). The final result is
    byte-identical for any [every], any kill/resume schedule, and any
    warm-start depth. *)

(** {1 Fig6} *)

val fig6_rows_sections :
  key:string -> total:int -> Fig6.row list -> Ptg_snapshot.Snapshot.section list

val fig6_rows_of_sections :
  what:string ->
  Ptg_snapshot.Snapshot.section list ->
  int * Fig6.row list
(** [(total, completed-prefix)]. *)

type fig6_outcome = {
  g_result : Fig6.result option;  (** [None] when stopped early *)
  g_rows : Fig6.row list;
  g_completed : bool;
  g_resumed_from : int option;    (** rows adopted from the store *)
}

val run_fig6 :
  ?jobs:int ->
  ?key:string ->
  ?keep:int ->
  ?every:int ->
  ?dir:string ->
  ?adopt:bool ->
  ?should_stop:(unit -> bool) ->
  ?progress:(done_count:int -> total:int -> unit) ->
  instrs:int ->
  warmup:int ->
  seed:int64 ->
  config:Ptguard.Config.t ->
  workloads:Ptg_workloads.Workload.spec list ->
  unit ->
  fig6_outcome
(** Row-batch analogue of {!run_fullsys}: compute missing rows in
    ordered batches of [every] (all at once when absent) through
    {!Fig6.run_rows}, checkpointing the completed prefix. A stored
    prefix is only adopted when its workload names match this run's
    list in order. *)

(** {1 Fig7} *)

val fig7_sections :
  key:string ->
  total:int ->
  base:(Ptg_workloads.Workload.spec * Ptg_cpu.Core.result) list ->
  points:Fig7.point list ->
  Ptg_snapshot.Snapshot.section list
(** Every fig7 checkpoint carries the shared unprotected baselines
    alongside the completed point prefix: they cost about one sweep
    point and every remaining point needs them, so a resumed slice
    never recomputes them. A points-empty (baselines-only) file is a
    legal count-0 checkpoint. *)

val fig7_parts_of_sections :
  what:string ->
  Ptg_snapshot.Snapshot.section list ->
  int * (string * Ptg_cpu.Core.result) list * Fig7.point list
(** [(total, named baselines, completed-prefix)]. *)

type fig7_outcome = {
  p_result : Fig7.result option;  (** [None] when stopped early *)
  p_points : Fig7.point list;
  p_completed : bool;
  p_resumed_from : int option;    (** points adopted from the store *)
}

val run_fig7 :
  ?jobs:int ->
  ?key:string ->
  ?keep:int ->
  ?every:int ->
  ?dir:string ->
  ?adopt:bool ->
  ?should_stop:(unit -> bool) ->
  ?progress:(done_count:int -> total:int -> unit) ->
  ?latencies:int list ->
  ?workloads:Ptg_workloads.Workload.spec list ->
  instrs:int ->
  warmup:int ->
  seed:int64 ->
  unit ->
  fig7_outcome
(** Point-batch analogue of {!run_fig6}: compute the shared baselines
    as the first chunk, then the missing sweep points in ordered
    batches of [every] through {!Fig7.point}. A stored prefix is only
    adopted when its baseline workload names and its (design, latency)
    points match this run's case list in order. *)

(** {1 Fig9} *)

val fig9_sections :
  key:string ->
  total:int ->
  p_flips:float list ->
  (Fig9.workload_result * (string * int) list) list ->
  Ptg_snapshot.Snapshot.section list

val fig9_parts_of_sections :
  what:string ->
  Ptg_snapshot.Snapshot.section list ->
  int * float list * (Fig9.workload_result * (string * int) list) list
(** [(total, p_flips, completed per-workload parts)]. *)

type fig9_outcome = {
  q_result : Fig9.result option;  (** [None] when stopped early *)
  q_parts : (Fig9.workload_result * (string * int) list) list;
  q_completed : bool;
  q_resumed_from : int option;    (** workloads adopted from the store *)
}

val run_fig9 :
  ?jobs:int ->
  ?key:string ->
  ?keep:int ->
  ?every:int ->
  ?dir:string ->
  ?adopt:bool ->
  ?should_stop:(unit -> bool) ->
  ?progress:(done_count:int -> total:int -> unit) ->
  ?p_flips:float list ->
  ?config:Ptguard.Config.t ->
  ?workloads:Ptg_workloads.Workload.spec list ->
  lines_per_point:int ->
  seed:int64 ->
  unit ->
  fig9_outcome
(** Workload-batch driver: {!Fig9.prepare} re-derives every generator
    state from [seed] each slice (cheap), missing campaigns run in
    ordered batches of [every] through {!Fig9.run_workload}, and
    completion assembles through {!Fig9.assemble}. A stored prefix is
    only adopted when its [p_flips] and workload-name prefix match. *)

(** {1 Multicore} *)

val multicore_sections :
  key:string ->
  total:int ->
  Multicore_exp.row list ->
  Ptg_snapshot.Snapshot.section list

val multicore_rows_of_sections :
  what:string ->
  Ptg_snapshot.Snapshot.section list ->
  int * Multicore_exp.row list
(** [(total, completed-prefix)]. *)

type multicore_outcome = {
  r_result : Multicore_exp.result option;  (** [None] when stopped early *)
  r_rows : Multicore_exp.row list;
  r_completed : bool;
  r_resumed_from : int option;    (** rows adopted from the store *)
}

val run_multicore :
  ?jobs:int ->
  ?key:string ->
  ?keep:int ->
  ?every:int ->
  ?dir:string ->
  ?adopt:bool ->
  ?should_stop:(unit -> bool) ->
  ?progress:(done_count:int -> total:int -> unit) ->
  ?same:Ptg_workloads.Workload.spec list ->
  ?config:Ptguard.Config.t ->
  instrs_per_core:int ->
  mixes:int ->
  seed:int64 ->
  unit ->
  multicore_outcome
(** Row-batch driver over {!Multicore_exp.cases} (re-derived from
    [seed] each slice) and {!Multicore_exp.case_row}. A stored prefix
    is only adopted when its labels match this run's case labels in
    order. *)

(** {1 Scenario entry point} *)

val sliceable : Scenario.t -> bool
(** Whether {!run_scenario} can execute this scenario in
    kill-and-resume slices: fullsys, fig7 and multicore always;
    fig6/fig9 when single-seed; fig8 and trace never. The server only
    requeues deadline-expired requests for sliceable scenarios. *)

type served = {
  text : string option;  (** the {!Scenario.render}ing; [None] if stopped *)
  completed : bool;
  resumed_from : int option;
}

val run_scenario :
  ?dir:string ->
  ?every:int ->
  ?should_stop:(unit -> bool) ->
  ?progress:(done_count:int -> total:int -> unit) ->
  Scenario.t ->
  served
(** The server's warm-start-aware execution path. With [dir], fullsys
    scenarios warm-start by instruction prefix (key
    {!Scenario.prefix_hash}) and the other sliceable kinds by unit
    prefix (key {!Scenario.hash}); the rendering is byte-identical to
    {!Scenario.run_to_string}. Sliceable scenarios run chunked even
    without [dir] (default [every]: a tenth of the fullsys budget, one
    unit otherwise), so [should_stop] and [progress] stay live
    mid-scenario; other kinds run in one piece. *)

open Ptg_util

type point = {
  design : Ptguard.Config.design;
  mac_latency : int;
  avg_slowdown_pct : float;
  max_slowdown_pct : float;
  max_workload : string;
  mac_reads_fraction : float;
}

type result = { points : point list }

let default_latencies = [ 5; 10; 15; 20 ]

let cases ?(latencies = default_latencies) () =
  List.concat_map
    (fun design -> List.map (fun lat -> (design, lat)) latencies)
    [ Ptguard.Config.Baseline; Ptguard.Config.Optimized ]

(* Baseline (unprotected) runs are shared across the sweep; each one
   seeds its own Rng, so both this fan-out and the per-point fan-out in
   [run] are bit-identical to serial execution. *)
let base_runs ?jobs ~instrs ~warmup ~seed workloads =
  Array.to_list
    (Pool.parallel_map ?jobs
       (fun spec ->
         let rng = Rng.create seed in
         let stream = Ptg_workloads.Workload.stream rng spec in
         let core = Ptg_cpu.Core.create ~guard:Ptg_cpu.Guard_timing.unprotected () in
         ignore (Ptg_cpu.Core.run core ~instrs:warmup ~stream);
         (spec, Ptg_cpu.Core.run core ~instrs ~stream))
       (Array.of_list workloads))

let point ?obs ~instrs ~warmup ~seed ~base_results (design, mac_latency) =
  let cfg =
    Ptguard.Config.with_mac_latency
      (match design with
      | Ptguard.Config.Baseline -> Ptguard.Config.baseline
      | Ptguard.Config.Optimized -> Ptguard.Config.optimized)
      mac_latency
  in
  let slowdowns, max_w, mac_fracs =
    List.fold_left
      (fun (acc, (mx_v, mx_n), fr) (spec, base) ->
        let guard =
          Ptg_cpu.Guard_timing.of_config cfg ?obs
            ~rng:(Rng.create (Int64.add seed 1L))
        in
        let rng = Rng.create seed in
        let stream = Ptg_workloads.Workload.stream rng spec in
        let core = Ptg_cpu.Core.create ~guard () in
        ignore (Ptg_cpu.Core.run core ~instrs:warmup ~stream);
        let r = Ptg_cpu.Core.run core ~instrs ~stream in
        let slow =
          100.0 *. (1.0 -. (r.Ptg_cpu.Core.ipc /. base.Ptg_cpu.Core.ipc))
        in
        let frac =
          let reads = r.Ptg_cpu.Core.dram_reads + r.Ptg_cpu.Core.pte_dram_reads in
          if reads = 0 then 0.0
          else
            float_of_int r.Ptg_cpu.Core.guard_mac_computations
            /. float_of_int reads
        in
        ( slow :: acc,
          (if slow > mx_v then (slow, spec.Ptg_workloads.Workload.name)
           else (mx_v, mx_n)),
          frac :: fr ))
      ([], (neg_infinity, ""), [])
      base_results
  in
  let max_v, max_n = max_w in
  {
    design;
    mac_latency;
    avg_slowdown_pct = Stats.mean (Array.of_list slowdowns);
    max_slowdown_pct = max_v;
    max_workload = max_n;
    mac_reads_fraction = Stats.mean (Array.of_list mac_fracs);
  }

let run ?jobs ?(instrs = 1_000_000) ?(warmup = 300_000) ?(seed = 42L)
    ?(latencies = default_latencies) ?(workloads = Ptg_workloads.Workload.all)
    ?obs () =
  let base_results = base_runs ?jobs ~instrs ~warmup ~seed workloads in
  let cases = Array.of_list (cases ~latencies ()) in
  let children =
    match obs with
    | None -> [||]
    | Some sink -> Array.init (Array.length cases) (fun _ -> Ptg_obs.Sink.child sink)
  in
  let points =
    Array.to_list
      (Pool.parallel_map ?jobs
         (fun (case_idx, case) ->
           let obs =
             if Array.length children = 0 then None else Some children.(case_idx)
           in
           point ?obs ~instrs ~warmup ~seed ~base_results case)
         (Array.mapi (fun i case -> (i, case)) cases))
  in
  (match obs with
  | None -> ()
  | Some sink ->
      Array.iter (fun child -> Ptg_obs.Sink.merge_into ~src:child ~dst:sink) children);
  { points }

let header =
  [ "design"; "MAC latency"; "avg slowdown"; "worst slowdown"; "worst workload"; "MAC-read frac" ]

let to_rows result =
  List.map
    (fun p ->
      [
        Ptguard.Config.design_name p.design;
        string_of_int p.mac_latency;
        Table.fpct p.avg_slowdown_pct;
        Table.fpct p.max_slowdown_pct;
        p.max_workload;
        Table.f3 p.mac_reads_fraction;
      ])
    result.points

let to_string result =
  "Figure 7: slowdown vs MAC latency, PT-Guard vs Optimized PT-Guard\n"
  ^ Table.render
      ~align:[ Table.Left; Right; Right; Right; Left; Right ]
      ~header (to_rows result)
  ^ "Paper: PT-Guard average 0.7%-2.6% across 5-20 cycles; Optimized stays\n\
     below 0.3% average (MAC computed on <2% of DRAM reads).\n"

let print result = print_string (to_string result)

let to_csv result ~path = Table.save_csv ~path ~header (to_rows result)

(** Section VII-C: PT-Guard slowdown on a 4-core system.

    Paper result being reproduced: with 4 cores sharing the LLC and memory
    channels, PT-Guard (baseline design, MAC latency on all DRAM reads)
    averages 0.5% slowdown with a 1.6% worst case — lower than single-core
    because channel contention inflates the base memory latency relative
    to the constant MAC delay. *)

type row = {
  label : string;          (** "SAME xalancbmk" or "MIX3" *)
  workloads : string list;
  base_ipc : float;        (** aggregate IPC, unprotected *)
  norm_ipc : float;
  slowdown_pct : float;
  avg_queue_delay : float;
}

type result = {
  rows : row list;
  avg_slowdown_pct : float;
  max_slowdown_pct : float;
  max_label : string;
}

val cases :
  ?same:Ptg_workloads.Workload.spec list ->
  seed:int64 ->
  mixes:int ->
  unit ->
  (string * Ptg_workloads.Workload.spec array) list
(** The labelled SAME and MIX core compositions, in presentation order.
    MIXes are drawn serially from a seed-derived stream, so the list is
    deterministic and cheap to re-derive (a checkpoint-resumed slice
    recomputes it rather than storing it). *)

val case_row :
  ?obs:Ptg_obs.Sink.t ->
  instrs_per_core:int ->
  seed:int64 ->
  config:Ptguard.Config.t ->
  string * Ptg_workloads.Workload.spec array ->
  row
(** One case's unprotected-vs-guarded 4-core comparison. Independent of
    every other case. *)

val of_rows : row list -> result
(** Aggregate completed rows (in case order) into the section's
    average/worst summary. Raises on []. *)

val run :
  ?jobs:int ->
  ?instrs_per_core:int ->
  ?seed:int64 ->
  ?same:Ptg_workloads.Workload.spec list ->
  ?mixes:int ->
  ?config:Ptguard.Config.t ->
  ?obs:Ptg_obs.Sink.t ->
  unit ->
  result
(** Defaults: every workload as a SAME configuration (the paper runs 18)
    plus 16 random MIXes, 400K instructions per core, baseline design.
    [jobs] fans the SAME/MIX cases across domains; results are
    independent of the job count. With [obs], each case's guard reports
    into a child sink merged back in case order. *)

val to_string : result -> string
(** Exactly the bytes {!print} writes to stdout. *)

val print : result -> unit
val to_csv : result -> path:string -> unit

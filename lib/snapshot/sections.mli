(** Per-subsystem snapshot-section codecs.

    Each [put_x]/[get_x] pair round-trips one checkpointable state
    record ([X.state]) through {!Codec}. Decoders only reconstruct the
    record; applying it with the subsystem's [set_state] is where
    geometry and range invariants are enforced. *)

val put_words : Codec.writer -> int64 array -> unit
(** RNG word vectors ({!Ptg_util.Rng.state}). *)

val get_words : Codec.reader -> int64 array
val put_line : Codec.writer -> Ptg_pte.Line.t -> unit
val get_line : Codec.reader -> Ptg_pte.Line.t
val put_addr_line : Codec.writer -> int64 * Ptg_pte.Line.t -> unit
val get_addr_line : Codec.reader -> int64 * Ptg_pte.Line.t
val put_block : Codec.writer -> Ptg_crypto.Block128.t -> unit
val get_block : Codec.reader -> Ptg_crypto.Block128.t

val put_kvs : Codec.writer -> (string * int64) list -> unit
(** Mitigation-plugin images ({!Ptg_mitigations.Registry.save_state}). *)

val get_kvs : Codec.reader -> (string * int64) list
val put_cache : Codec.writer -> Ptg_cpu.Cache.state -> unit
val get_cache : Codec.reader -> Ptg_cpu.Cache.state
val put_tlb : Codec.writer -> Ptg_cpu.Tlb.state -> unit
val get_tlb : Codec.reader -> Ptg_cpu.Tlb.state
val put_dram : Codec.writer -> Ptg_dram.Dram.state -> unit
val get_dram : Codec.reader -> Ptg_dram.Dram.state
val put_engine : Codec.writer -> Ptguard.Engine.state -> unit
val get_engine : Codec.reader -> Ptguard.Engine.state
val put_guard : Codec.writer -> Ptg_cpu.Guard_timing.state -> unit
val get_guard : Codec.reader -> Ptg_cpu.Guard_timing.state
val put_core : Codec.writer -> Ptg_cpu.Core.state -> unit
val get_core : Codec.reader -> Ptg_cpu.Core.state
val put_multicore : Codec.writer -> Ptg_cpu.Multicore.state -> unit
val get_multicore : Codec.reader -> Ptg_cpu.Multicore.state
val put_fault : Codec.writer -> Ptg_rowhammer.Fault_model.state -> unit
val get_fault : Codec.reader -> Ptg_rowhammer.Fault_model.state
val put_frame_allocator : Codec.writer -> Ptg_vm.Frame_allocator.state -> unit
val get_frame_allocator : Codec.reader -> Ptg_vm.Frame_allocator.state
val put_page_table : Codec.writer -> Ptg_vm.Page_table.state -> unit
val get_page_table : Codec.reader -> Ptg_vm.Page_table.state

(** Binary primitives for the snapshot format.

    Unsigned LEB128 varints frame every length and counter; signed ints
    travel zigzag-encoded; [int64] payloads (addresses, RNG words, float
    bits) are fixed 8-byte little-endian words. Readers reject malformed
    input with [Invalid_argument] messages naming the input and the byte
    offset — the same contract as [Mem_trace.load_binary]. *)

type writer

val writer : unit -> writer
val contents : writer -> string

val put_varint : writer -> int -> unit
(** Unsigned; raises [Invalid_argument] on a negative value. *)

val put_int : writer -> int -> unit
(** Signed (zigzag). *)

val put_bool : writer -> bool -> unit
val put_i64 : writer -> int64 -> unit
val put_float : writer -> float -> unit
val put_string : writer -> string -> unit
val put_list : writer -> (writer -> 'a -> unit) -> 'a list -> unit
val put_array : writer -> (writer -> 'a -> unit) -> 'a array -> unit
val put_option : writer -> (writer -> 'a -> unit) -> 'a option -> unit

type reader

val reader : what:string -> string -> reader
(** [what] names the input (a path, or ["<memory>"]) in error messages. *)

val pos : reader -> int
val truncated : reader -> 'a
val corrupt : reader -> string -> 'a
val get_u8 : reader -> int
val get_varint : reader -> int
val get_int : reader -> int
val get_bool : reader -> bool
val get_i64 : reader -> int64
val get_float : reader -> float
val get_string : reader -> string
val get_list : reader -> (reader -> 'a) -> 'a list
val get_array : reader -> (reader -> 'a) -> 'a array
val get_option : reader -> (reader -> 'a) -> 'a option

val expect_end : reader -> unit
(** Raises unless every byte has been consumed. *)

val fnv1a64 : string -> int64
(** The snapshot content-hash primitive (FNV-1a, 64-bit). *)

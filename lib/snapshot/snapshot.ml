let magic = "PTGS"
let version = 1

type section = { name : string; payload : string }

let section ~name payload = { name; payload }

(* Layout: magic(4) | version(1) | section region | FNV-1a hash(8, LE).
   Section region: varint count, then per section a length-prefixed name
   and a length-prefixed payload. The hash covers exactly the section
   region, so any bit damage between the header and the trailer is
   caught before a single section is decoded. *)
let to_string sections =
  let body = Codec.writer () in
  Codec.put_varint body (List.length sections);
  List.iter
    (fun s ->
      Codec.put_string body s.name;
      Codec.put_string body s.payload)
    sections;
  let body = Codec.contents body in
  let out = Buffer.create (String.length body + 16) in
  Buffer.add_string out magic;
  Buffer.add_char out (Char.chr version);
  Buffer.add_string out body;
  Buffer.add_int64_le out (Codec.fnv1a64 body);
  Buffer.contents out

let content_hash sections =
  let body = Codec.writer () in
  Codec.put_varint body (List.length sections);
  List.iter
    (fun s ->
      Codec.put_string body s.name;
      Codec.put_string body s.payload)
    sections;
  Codec.fnv1a64 (Codec.contents body)

let hash_hex h = Printf.sprintf "%016Lx" h

let of_string ~what s =
  let fail msg = invalid_arg (Printf.sprintf "Snapshot.load: %s: %s" what msg) in
  let len = String.length s in
  if len < 13 then fail (Printf.sprintf "truncated at byte %d" len);
  if String.sub s 0 4 <> magic then fail "bad magic (not a PTGS snapshot)";
  let v = Char.code s.[4] in
  if v <> version then
    fail (Printf.sprintf "unsupported snapshot version %d (want %d)" v version);
  let body = String.sub s 5 (len - 13) in
  let stored = String.get_int64_le s (len - 8) in
  if not (Int64.equal stored (Codec.fnv1a64 body)) then
    fail "content hash mismatch (corrupt snapshot)";
  let r = Codec.reader ~what body in
  let n = Codec.get_varint r in
  if n < 0 then Codec.corrupt r "negative section count";
  let sections =
    List.init n (fun _ ->
        let name = Codec.get_string r in
        let payload = Codec.get_string r in
        { name; payload })
  in
  Codec.expect_end r;
  sections

(* Write-to-temp + rename: a crash (or a concurrent writer racing on the
   same warm-start path) can never leave a torn file behind — readers
   see the old complete snapshot or the new complete snapshot, and the
   last writer wins. The temp file lives next to the target so the
   rename stays within one filesystem. *)
let save ~path sections =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ".ptgs-tmp" ".partial" in
  let ok = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !ok then try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (to_string sections));
      Sys.rename tmp path;
      ok := true)

let load ~path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string ~what:path s

(* ------------------------------------------------------------------ *)
(* Warm-start store naming: <dir>/<key>.<count>.ptgs                   *)
(* ------------------------------------------------------------------ *)

let store_file_name ~key count = Printf.sprintf "%s.%d.ptgs" key count
let store_path ~dir ~key count = Filename.concat dir (store_file_name ~key count)

let store_counts ~dir ~key =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      Array.to_list entries
      |> List.filter_map (fun name ->
             match String.split_on_char '.' name with
             | [ k; n; "ptgs" ] when k = key -> int_of_string_opt n
             | _ -> None)
      |> List.sort (fun a b -> compare b a)

(* Deeper checkpoints strictly supersede shallower ones for the same
   key, so only the deepest [keep] are worth disk: the deepest is the
   warm-start candidate, the one below it the fallback should the
   deepest arrive damaged. A concurrent reader may hold a file we
   delete; removal failures are ignored (its readdir snapshot is
   stale, not torn — every surviving file is still complete). *)
let prune ?(keep = 2) ~dir ~key () =
  if keep < 1 then invalid_arg "Snapshot.prune: keep";
  let victims =
    List.filteri (fun i _ -> i >= keep) (store_counts ~dir ~key)
  in
  List.fold_left
    (fun removed n ->
      match Sys.remove (store_path ~dir ~key n) with
      | () -> removed + 1
      | exception Sys_error _ -> removed)
    0 victims

let find sections name =
  List.find_map (fun s -> if s.name = name then Some s.payload else None) sections

let get ~what sections name =
  match find sections name with
  | Some payload -> payload
  | None ->
      invalid_arg
        (Printf.sprintf "Snapshot.load: %s: missing section %S" what name)

let reader ~what sections name =
  Codec.reader ~what:(Printf.sprintf "%s[%s]" what name)
    (get ~what sections name)

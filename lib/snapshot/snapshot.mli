(** Versioned, hashed snapshot container.

    A snapshot is an ordered list of named binary sections wrapped in a
    compact envelope:

    {v magic "PTGS" | version (1 byte) | sections | FNV-1a hash (8 bytes LE) v}

    where the section region is a varint count followed by
    length-prefixed (name, payload) pairs, and the trailing hash covers
    exactly that region. Loading rejects — with [Invalid_argument]
    messages naming the input — a bad magic, an unsupported version, a
    hash mismatch, truncation, and trailing bytes, in that order of
    detection. Section payloads are produced and consumed with {!Codec}
    by the per-subsystem encoders in {!Sections}. *)

val magic : string
val version : int

type section = { name : string; payload : string }

val section : name:string -> string -> section

val to_string : section list -> string
val of_string : what:string -> string -> section list
(** [what] names the input in error messages. *)

val save : path:string -> section list -> unit
(** Atomic: written to a temp file beside [path], then renamed over it —
    a crash or a concurrent writer on the same path can never leave a
    torn snapshot (last complete writer wins). *)

val load : path:string -> section list

val content_hash : section list -> int64
(** FNV-1a over the encoded section region — the same value the trailer
    stores; two snapshots are byte-identical iff their hashes agree
    (modulo 64-bit collisions). *)

val hash_hex : int64 -> string
(** 16-digit lowercase hex. *)

(** {1 Warm-start store}

    The store convention shared by every checkpoint driver: a directory
    of [<key>.<count>.ptgs] files where [key] hashes everything the run
    depends on except its depth and [count] is the prefix covered. *)

val store_file_name : key:string -> int -> string
val store_path : dir:string -> key:string -> int -> string

val store_counts : dir:string -> key:string -> int list
(** Prefix depths present for [key], deepest first; [] when [dir] is
    missing. *)

val prune : ?keep:int -> dir:string -> key:string -> unit -> int
(** Delete every stored checkpoint for [key] below the deepest [keep]
    (default 2: the warm-start candidate plus one fallback); returns how
    many files were removed. Removal races with concurrent readers are
    benign — a failure to delete is ignored, and surviving files are
    always complete snapshots. Raises [Invalid_argument] when
    [keep < 1]. *)

val find : section list -> string -> string option

val get : what:string -> section list -> string -> string
(** Raises [Invalid_argument] naming [what] and the missing section. *)

val reader : what:string -> section list -> string -> Codec.reader
(** [get] wrapped in a {!Codec.reader} whose error messages carry both
    the input name and the section name. *)

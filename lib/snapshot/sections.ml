(* Per-subsystem section payloads: every [put_x]/[get_x] pair round-trips
   one checkpointable state record from the simulator libraries through
   {!Codec}. These are deliberately dumb field-by-field serializers —
   validation of the decoded values (geometry, ranges, key material)
   happens in the corresponding [set_state], which owns the invariants. *)

open Codec

(* xoshiro word vectors (Rng streams, PARA/fault-model RNGs). *)
let put_words b words = put_array b put_i64 words
let get_words r = get_array r get_i64

let put_line b (line : Ptg_pte.Line.t) = Array.iter (put_i64 b) line

let get_line r : Ptg_pte.Line.t =
  Ptg_pte.Line.of_words (Array.init Ptg_pte.Line.words (fun _ -> get_i64 r))

let put_addr_line b (addr, line) =
  put_i64 b addr;
  put_line b line

let get_addr_line r =
  let addr = get_i64 r in
  (addr, get_line r)

let put_block b (blk : Ptg_crypto.Block128.t) =
  put_i64 b blk.Ptg_crypto.Block128.hi;
  put_i64 b blk.Ptg_crypto.Block128.lo

let get_block r =
  let hi = get_i64 r in
  let lo = get_i64 r in
  Ptg_crypto.Block128.make ~hi ~lo

(* Mitigation-plugin key/value images ([Registry.save_state]). *)
let put_kv b (k, v) =
  put_string b k;
  put_i64 b v

let get_kv r =
  let k = get_string r in
  (k, get_i64 r)

let put_kvs b kvs = put_list b put_kv kvs
let get_kvs r = get_list r get_kv

let put_cache b (s : Ptg_cpu.Cache.state) =
  put_array b (fun b n -> put_int b n) s.Ptg_cpu.Cache.s_tags;
  put_array b (fun b n -> put_int b n) s.s_lrus;
  put_string b (Bytes.to_string s.s_dirty);
  put_int b s.s_tick;
  put_int b s.s_accesses;
  put_int b s.s_misses;
  put_bool b s.s_wb_pending;
  put_i64 b s.s_wb_addr

let get_cache r : Ptg_cpu.Cache.state =
  let s_tags = get_array r get_int in
  let s_lrus = get_array r get_int in
  let s_dirty = Bytes.of_string (get_string r) in
  let s_tick = get_int r in
  let s_accesses = get_int r in
  let s_misses = get_int r in
  let s_wb_pending = get_bool r in
  let s_wb_addr = get_i64 r in
  { s_tags; s_lrus; s_dirty; s_tick; s_accesses; s_misses; s_wb_pending; s_wb_addr }

let put_tlb b (s : Ptg_cpu.Tlb.state) =
  put_array b
    (fun b (vpn, valid, lru) ->
      put_int b vpn;
      put_bool b valid;
      put_int b lru)
    s.Ptg_cpu.Tlb.s_entries;
  put_int b s.s_tick;
  put_int b s.s_hits;
  put_int b s.s_misses;
  put_int b s.s_mru

let get_tlb r : Ptg_cpu.Tlb.state =
  let s_entries =
    get_array r (fun r ->
        let vpn = get_int r in
        let valid = get_bool r in
        let lru = get_int r in
        (vpn, valid, lru))
  in
  let s_tick = get_int r in
  let s_hits = get_int r in
  let s_misses = get_int r in
  let s_mru = get_int r in
  { s_entries; s_tick; s_hits; s_misses; s_mru }

let put_outcome b (o : Ptg_dram.Timing.row_buffer_outcome) =
  put_varint b
    (match o with
    | Ptg_dram.Timing.Hit -> 0
    | Ptg_dram.Timing.Closed_row -> 1
    | Ptg_dram.Timing.Conflict -> 2)

let get_outcome r : Ptg_dram.Timing.row_buffer_outcome =
  match get_varint r with
  | 0 -> Ptg_dram.Timing.Hit
  | 1 -> Ptg_dram.Timing.Closed_row
  | 2 -> Ptg_dram.Timing.Conflict
  | n -> corrupt r (Printf.sprintf "bad row-buffer outcome tag %d" n)

let put_dram b (s : Ptg_dram.Dram.state) =
  put_array b
    (fun b banks ->
      put_array b
        (fun b (bs : Ptg_dram.Dram.bank_snapshot) ->
          put_int b bs.Ptg_dram.Dram.bs_open_row;
          put_list b
            (fun b (row, acts) ->
              put_int b row;
              put_int b acts)
            bs.bs_activations)
        banks)
    s.Ptg_dram.Dram.s_banks;
  put_list b put_addr_line s.s_storage;
  put_int b s.s_epoch;
  put_int b s.s_total_activations;
  put_outcome b s.s_last_outcome;
  put_int b s.s_last_channel;
  put_int b s.s_last_rank;
  put_int b s.s_last_bank;
  put_int b s.s_last_row;
  put_int b s.s_last_col

let get_dram r : Ptg_dram.Dram.state =
  let s_banks =
    get_array r (fun r ->
        get_array r (fun r ->
            let bs_open_row = get_int r in
            let bs_activations =
              get_list r (fun r ->
                  let row = get_int r in
                  let acts = get_int r in
                  (row, acts))
            in
            { Ptg_dram.Dram.bs_open_row; bs_activations }))
  in
  let s_storage = get_list r get_addr_line in
  let s_epoch = get_int r in
  let s_total_activations = get_int r in
  let s_last_outcome = get_outcome r in
  let s_last_channel = get_int r in
  let s_last_rank = get_int r in
  let s_last_bank = get_int r in
  let s_last_row = get_int r in
  let s_last_col = get_int r in
  {
    s_banks;
    s_storage;
    s_epoch;
    s_total_activations;
    s_last_outcome;
    s_last_channel;
    s_last_rank;
    s_last_bank;
    s_last_row;
    s_last_col;
  }

let put_engine_stats b (s : Ptguard.Engine.stats) =
  put_int b s.Ptguard.Engine.writes_total;
  put_int b s.writes_protected;
  put_int b s.writes_mac_zero;
  put_int b s.collisions_tracked;
  put_int b s.reads_total;
  put_int b s.reads_pte;
  put_int b s.mac_computations;
  put_int b s.macs_stripped;
  put_int b s.integrity_failures;
  put_int b s.corrections_attempted;
  put_int b s.corrections_succeeded;
  put_int b s.rekeys

let get_engine_stats r : Ptguard.Engine.stats =
  let writes_total = get_int r in
  let writes_protected = get_int r in
  let writes_mac_zero = get_int r in
  let collisions_tracked = get_int r in
  let reads_total = get_int r in
  let reads_pte = get_int r in
  let mac_computations = get_int r in
  let macs_stripped = get_int r in
  let integrity_failures = get_int r in
  let corrections_attempted = get_int r in
  let corrections_succeeded = get_int r in
  let rekeys = get_int r in
  {
    writes_total;
    writes_protected;
    writes_mac_zero;
    collisions_tracked;
    reads_total;
    reads_pte;
    mac_computations;
    macs_stripped;
    integrity_failures;
    corrections_attempted;
    corrections_succeeded;
    rekeys;
  }

let put_engine b (s : Ptguard.Engine.state) =
  put_block b s.Ptguard.Engine.s_key_w0;
  put_block b s.s_key_k0;
  put_list b put_i64 s.s_ctb;
  put_engine_stats b s.s_stats

let get_engine r : Ptguard.Engine.state =
  let s_key_w0 = get_block r in
  let s_key_k0 = get_block r in
  let s_ctb = get_list r get_i64 in
  let s_stats = get_engine_stats r in
  { s_key_w0; s_key_k0; s_ctb; s_stats }

let put_guard b (s : Ptg_cpu.Guard_timing.state) =
  put_int b s.Ptg_cpu.Guard_timing.s_mac_computations;
  put_int b s.s_reads;
  put_option b put_words s.s_rng

let get_guard r : Ptg_cpu.Guard_timing.state =
  let s_mac_computations = get_int r in
  let s_reads = get_int r in
  let s_rng = get_option r get_words in
  { s_mac_computations; s_reads; s_rng }

let put_core b (s : Ptg_cpu.Core.state) =
  put_cache b s.Ptg_cpu.Core.s_l1;
  put_cache b s.s_l2;
  put_cache b s.s_l3;
  put_cache b s.s_mmu;
  put_tlb b s.s_tlb;
  put_dram b s.s_dram;
  put_guard b s.s_guard;
  put_int b s.s_now;
  put_int b s.s_dram_reads;
  put_int b s.s_pte_dram_reads;
  put_int b s.s_walks;
  put_int b s.s_cache_writebacks

let get_core r : Ptg_cpu.Core.state =
  let s_l1 = get_cache r in
  let s_l2 = get_cache r in
  let s_l3 = get_cache r in
  let s_mmu = get_cache r in
  let s_tlb = get_tlb r in
  let s_dram = get_dram r in
  let s_guard = get_guard r in
  let s_now = get_int r in
  let s_dram_reads = get_int r in
  let s_pte_dram_reads = get_int r in
  let s_walks = get_int r in
  let s_cache_writebacks = get_int r in
  {
    s_l1;
    s_l2;
    s_l3;
    s_mmu;
    s_tlb;
    s_dram;
    s_guard;
    s_now;
    s_dram_reads;
    s_pte_dram_reads;
    s_walks;
    s_cache_writebacks;
  }

let put_multicore b (s : Ptg_cpu.Multicore.state) =
  put_array b
    (fun b (c : Ptg_cpu.Multicore.core_snapshot) ->
      put_cache b c.Ptg_cpu.Multicore.sc_l1;
      put_cache b c.sc_l2;
      put_tlb b c.sc_tlb;
      put_cache b c.sc_mmu;
      put_int b c.sc_now;
      put_int b c.sc_done_instrs;
      put_int b c.sc_dram_reads)
    s.Ptg_cpu.Multicore.s_cores;
  put_cache b s.s_llc;
  put_dram b s.s_dram;
  put_guard b s.s_guard;
  put_array b (fun b n -> put_int b n) s.s_channel_busy;
  put_int b s.s_read_counter;
  put_int b s.s_dram_reads;
  put_int b s.s_pte_dram_reads;
  put_int b s.s_queue_delay_total;
  put_int b s.s_queued_accesses;
  put_int b s.s_cache_writebacks;
  put_option b
    (fun b (v : Ptg_cpu.Multicore.verify_snapshot) ->
      put_engine b v.Ptg_cpu.Multicore.sv_engine;
      put_list b put_addr_line v.sv_store;
      put_int b v.sv_passed;
      put_int b v.sv_failed)
    s.s_verify

let get_multicore r : Ptg_cpu.Multicore.state =
  let s_cores =
    get_array r (fun r ->
        let sc_l1 = get_cache r in
        let sc_l2 = get_cache r in
        let sc_tlb = get_tlb r in
        let sc_mmu = get_cache r in
        let sc_now = get_int r in
        let sc_done_instrs = get_int r in
        let sc_dram_reads = get_int r in
        {
          Ptg_cpu.Multicore.sc_l1;
          sc_l2;
          sc_tlb;
          sc_mmu;
          sc_now;
          sc_done_instrs;
          sc_dram_reads;
        })
  in
  let s_llc = get_cache r in
  let s_dram = get_dram r in
  let s_guard = get_guard r in
  let s_channel_busy = get_array r get_int in
  let s_read_counter = get_int r in
  let s_dram_reads = get_int r in
  let s_pte_dram_reads = get_int r in
  let s_queue_delay_total = get_int r in
  let s_queued_accesses = get_int r in
  let s_cache_writebacks = get_int r in
  let s_verify =
    get_option r (fun r ->
        let sv_engine = get_engine r in
        let sv_store = get_list r get_addr_line in
        let sv_passed = get_int r in
        let sv_failed = get_int r in
        { Ptg_cpu.Multicore.sv_engine; sv_store; sv_passed; sv_failed })
  in
  {
    s_cores;
    s_llc;
    s_dram;
    s_guard;
    s_channel_busy;
    s_read_counter;
    s_dram_reads;
    s_pte_dram_reads;
    s_queue_delay_total;
    s_queued_accesses;
    s_cache_writebacks;
    s_verify;
  }

let put_fault b (s : Ptg_rowhammer.Fault_model.state) =
  put_words b s.Ptg_rowhammer.Fault_model.s_rng;
  put_list b
    (fun b ((channel, bank, row), d) ->
      put_int b channel;
      put_int b bank;
      put_int b row;
      put_float b d)
    s.s_disturbance;
  put_list b
    (fun b (f : Ptg_rowhammer.Fault_model.flip) ->
      put_i64 b f.Ptg_rowhammer.Fault_model.addr;
      put_int b f.bit;
      put_int b f.row;
      put_int b f.bank;
      put_int b f.channel)
    s.s_flips;
  put_int b s.s_flip_count

let get_fault r : Ptg_rowhammer.Fault_model.state =
  let s_rng = get_words r in
  let s_disturbance =
    get_list r (fun r ->
        let channel = get_int r in
        let bank = get_int r in
        let row = get_int r in
        let d = get_float r in
        ((channel, bank, row), d))
  in
  let s_flips =
    get_list r (fun r ->
        let addr = get_i64 r in
        let bit = get_int r in
        let row = get_int r in
        let bank = get_int r in
        let channel = get_int r in
        { Ptg_rowhammer.Fault_model.addr; bit; row; bank; channel })
  in
  let s_flip_count = get_int r in
  { s_rng; s_disturbance; s_flips; s_flip_count }

let put_frame_allocator b (s : Ptg_vm.Frame_allocator.state) =
  put_i64 b s.Ptg_vm.Frame_allocator.s_cursor;
  put_int b s.s_count

let get_frame_allocator r : Ptg_vm.Frame_allocator.state =
  let s_cursor = get_i64 r in
  let s_count = get_int r in
  { s_cursor; s_count }

let put_page_table b (s : Ptg_vm.Page_table.state) =
  put_list b put_i64 s.Ptg_vm.Page_table.s_pt_frames;
  put_list b put_i64 s.s_all_frames

let get_page_table r : Ptg_vm.Page_table.state =
  let s_pt_frames = get_list r get_i64 in
  let s_all_frames = get_list r get_i64 in
  { s_pt_frames; s_all_frames }

(* Little binary codec shared by every snapshot section: unsigned LEB128
   varints for lengths and counters, zigzag varints for signed ints,
   fixed 8-byte little-endian words for int64 payloads (addresses, RNG
   words, float bits). The framing and error style deliberately mirror
   [Mem_trace]'s trace format so corrupt inputs fail the same way
   everywhere: [Invalid_argument] naming the input and byte offset. *)

type writer = Buffer.t

let writer () = Buffer.create 4096
let contents (b : writer) = Buffer.contents b
let put_varint b n =
  if n < 0 then invalid_arg "Snapshot: negative varint";
  let n = ref n in
  while !n >= 0x80 do
    Buffer.add_char b (Char.chr (0x80 lor (!n land 0x7f)));
    n := !n lsr 7
  done;
  Buffer.add_char b (Char.chr !n)

let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag n = (n lsr 1) lxor (- (n land 1))

let put_int b n = put_varint b (zigzag n)
let put_bool b v = Buffer.add_char b (if v then '\001' else '\000')
let put_i64 b (v : int64) = Buffer.add_int64_le b v
let put_float b f = put_i64 b (Int64.bits_of_float f)

let put_string b s =
  put_varint b (String.length s);
  Buffer.add_string b s

let put_list b put xs =
  put_varint b (List.length xs);
  List.iter (put b) xs

let put_array b put xs =
  put_varint b (Array.length xs);
  Array.iter (put b) xs

let put_option b put = function
  | None -> put_bool b false
  | Some v ->
      put_bool b true;
      put b v

type reader = { what : string; src : string; mutable pos : int }

let reader ~what src = { what; src; pos = 0 }
let pos r = r.pos

let truncated r =
  invalid_arg
    (Printf.sprintf "Snapshot.load: %s: truncated at byte %d" r.what r.pos)

let corrupt r msg =
  invalid_arg
    (Printf.sprintf "Snapshot.load: %s: %s at byte %d" r.what msg r.pos)

let get_u8 r =
  if r.pos >= String.length r.src then truncated r;
  let c = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  c

let get_varint r =
  let n = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if !shift > 62 then corrupt r "varint overflow";
    let byte = get_u8 r in
    n := !n lor ((byte land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := byte land 0x80 <> 0
  done;
  !n

let get_int r = unzigzag (get_varint r)

let get_bool r =
  match get_u8 r with
  | 0 -> false
  | 1 -> true
  | n -> corrupt r (Printf.sprintf "bad boolean byte %d" n)

let get_i64 r =
  if r.pos + 8 > String.length r.src then truncated r;
  let v = String.get_int64_le r.src r.pos in
  r.pos <- r.pos + 8;
  v

let get_float r = Int64.float_of_bits (get_i64 r)

let get_string r =
  let len = get_varint r in
  if r.pos + len > String.length r.src then truncated r;
  let s = String.sub r.src r.pos len in
  r.pos <- r.pos + len;
  s

let get_list r get =
  let n = get_varint r in
  List.init n (fun _ -> get r)

let get_array r get =
  let n = get_varint r in
  Array.init n (fun _ -> get r)

let get_option r get = if get_bool r then Some (get r) else None

let expect_end r =
  if r.pos <> String.length r.src then
    corrupt r
      (Printf.sprintf "%d trailing bytes" (String.length r.src - r.pos))

(* FNV-1a 64 — same content-hash primitive the scenario canonicalizer
   uses, applied here to the framed section region of a snapshot. *)
let fnv1a64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

(** OS-side handling of PT-Guard exceptions (paper Sections IV-G, VII-B).

    PT-Guard's hardware raises three kinds of events to the kernel; the
    paper sketches the responses and this module implements them against
    the simulated machine:

    - {b PTE integrity failure} (PTECheckFailed): the walk was aborted.
      The OS can terminate the victim, or — the availability-preserving
      response the paper recommends against DoS — treat the affected DRAM
      row as bad and {e remap} the page-table page away from it
      ({!remap_pt_page}), rebuilding the entries it can recover.
    - {b Collision detected}: a data line whose bits equal its would-be
      MAC was CTB-tracked. Natural probability 2^-96, so the OS treats it
      as an attack indicator, records the address, and can evict the
      collision by rewriting the line ({!resolve_collision}).
    - {b CTB overflow}: re-key the whole memory (gradually in hardware;
      a sweep here), voiding every MAC an attacker may have learned.

    The handler keeps an event journal so tests and demos can assert the
    whole exception flow. *)

type event =
  | Integrity_failure of { addr : int64; row : int; bank : int; channel : int }
  | Collision of { addr : int64 }
  | Overflowed_ctb
  | Rekeyed of { lines : int }
  | Remapped_pt_page of { old_frame : int64; new_frame : int64 }

val pp_event : Format.formatter -> event -> unit

type policy = {
  auto_rekey_on_overflow : bool;  (** default true *)
  failure_threshold_per_row : int;
      (** integrity failures in one row before it is flagged bad
          (candidate for remapping); default 1 *)
}

val default_policy : policy

type t

val attach :
  ?policy:policy ->
  ?obs:Ptg_obs.Sink.t ->
  rng:Ptg_util.Rng.t ->
  Ptg_memctrl.Memctrl.t ->
  t
(** Subscribe to the controller's engine events. No-op on an unguarded
    controller. With [obs], every journal entry increments
    [os_journal_entries{kind="..."}] and records an [Os_journal] trace
    event carrying the rendered {!pp_event} text. *)

val events : t -> event list
(** Journal, most recent first. *)

val integrity_failures : t -> int
val collisions_seen : t -> int

val bad_rows : t -> (int * int * int) list
(** (channel, bank, row) triples that crossed [failure_threshold_per_row]
    — the rows the OS should migrate page tables away from. *)

val is_bad_row : t -> channel:int -> bank:int -> row:int -> bool

val resolve_collision : t -> addr:int64 -> benign:Ptg_pte.Line.t -> bool
(** Rewrite the colliding line with benign data (after, e.g., terminating
    the offender — Section VII-B); returns true when the CTB entry is
    gone afterwards. *)

val remap_pt_page :
  t ->
  table:Ptg_vm.Page_table.t ->
  alloc:Ptg_vm.Frame_allocator.t ->
  vaddr:int64 ->
  (int64 * int64) option
(** Migrate the leaf page-table page serving [vaddr] to a freshly
    allocated frame: copy the 4 KB of PTEs through the controller (each
    line re-verified/corrected by the engine on the way out and re-MACed
    at its new address on the way in) and update the parent PDE. Returns
    [(old_frame, new_frame)], or [None] if the walk has no leaf table.
    This is the paper's "remap the row experiencing bit flips" response. *)

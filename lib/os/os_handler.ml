type event =
  | Integrity_failure of { addr : int64; row : int; bank : int; channel : int }
  | Collision of { addr : int64 }
  | Overflowed_ctb
  | Rekeyed of { lines : int }
  | Remapped_pt_page of { old_frame : int64; new_frame : int64 }

let pp_event fmt = function
  | Integrity_failure { addr; row; bank; channel } ->
      Format.fprintf fmt "PTE integrity failure at 0x%Lx (ch%d bank%d row%d)" addr
        channel bank row
  | Collision { addr } -> Format.fprintf fmt "colliding line tracked at 0x%Lx" addr
  | Overflowed_ctb -> Format.fprintf fmt "CTB overflow"
  | Rekeyed { lines } -> Format.fprintf fmt "re-keyed %d lines" lines
  | Remapped_pt_page { old_frame; new_frame } ->
      Format.fprintf fmt "remapped PT page frame 0x%Lx -> 0x%Lx" old_frame new_frame

let event_kind = function
  | Integrity_failure _ -> "integrity_failure"
  | Collision _ -> "collision"
  | Overflowed_ctb -> "ctb_overflow"
  | Rekeyed _ -> "rekeyed"
  | Remapped_pt_page _ -> "remapped_pt_page"

type policy = {
  auto_rekey_on_overflow : bool;
  failure_threshold_per_row : int;
}

let default_policy = { auto_rekey_on_overflow = true; failure_threshold_per_row = 1 }

type obs = {
  o_by_kind : (string * Ptg_obs.Registry.counter) list;
  o_trace : Ptg_obs.Trace.t;
}

let obs_of_sink sink =
  let reg = Ptg_obs.Sink.registry sink in
  {
    o_by_kind =
      List.map
        (fun kind ->
          (kind, Ptg_obs.Registry.counter reg ~labels:[ ("kind", kind) ] "os_journal_entries"))
        [ "integrity_failure"; "collision"; "ctb_overflow"; "rekeyed"; "remapped_pt_page" ];
    o_trace = Ptg_obs.Sink.trace sink;
  }

type t = {
  policy : policy;
  mc : Ptg_memctrl.Memctrl.t;
  rng : Ptg_util.Rng.t;
  obs : obs option;
  mutable events : event list;
  row_failures : (int * int * int, int) Hashtbl.t;
  mutable collisions : int;
  mutable failures : int;
}

let journal t e =
  t.events <- e :: t.events;
  match t.obs with
  | None -> ()
  | Some o ->
      let kind = event_kind e in
      (match List.assoc_opt kind o.o_by_kind with
      | Some c -> Ptg_obs.Registry.incr c
      | None -> ());
      Ptg_obs.Trace.record o.o_trace
        (Ptg_obs.Trace.Os_journal { entry = Format.asprintf "%a" pp_event e })

let attach ?(policy = default_policy) ?obs ~rng mc =
  let t =
    {
      policy;
      mc;
      rng;
      obs = Option.map obs_of_sink obs;
      events = [];
      row_failures = Hashtbl.create 16;
      collisions = 0;
      failures = 0;
    }
  in
  (match Ptg_memctrl.Memctrl.engine mc with
  | None -> ()
  | Some engine ->
      Ptguard.Engine.on_os_event engine (function
        | Ptguard.Engine.Pte_integrity_failure { addr } ->
            let c =
              Ptg_dram.Geometry.decode
                (Ptg_dram.Dram.geometry (Ptg_memctrl.Memctrl.dram mc))
                addr
            in
            t.failures <- t.failures + 1;
            let key =
              (c.Ptg_dram.Geometry.channel, c.Ptg_dram.Geometry.bank, c.Ptg_dram.Geometry.row)
            in
            Hashtbl.replace t.row_failures key
              (1 + Option.value ~default:0 (Hashtbl.find_opt t.row_failures key));
            journal t
              (Integrity_failure
                 {
                   addr;
                   row = c.Ptg_dram.Geometry.row;
                   bank = c.Ptg_dram.Geometry.bank;
                   channel = c.Ptg_dram.Geometry.channel;
                 })
        | Ptguard.Engine.Collision_detected { addr } ->
            t.collisions <- t.collisions + 1;
            journal t (Collision { addr })
        | Ptguard.Engine.Ctb_overflow ->
            journal t Overflowed_ctb;
            if t.policy.auto_rekey_on_overflow then
              Ptg_memctrl.Memctrl.rekey mc ~rng:t.rng
        | Ptguard.Engine.Rekey_completed { writes } -> journal t (Rekeyed { lines = writes })));
  t

let events t = t.events
let integrity_failures t = t.failures
let collisions_seen t = t.collisions

let bad_rows t =
  Hashtbl.fold
    (fun key n acc -> if n >= t.policy.failure_threshold_per_row then key :: acc else acc)
    t.row_failures []

let is_bad_row t ~channel ~bank ~row =
  Option.value ~default:0 (Hashtbl.find_opt t.row_failures (channel, bank, row))
  >= t.policy.failure_threshold_per_row

let resolve_collision t ~addr ~benign =
  ignore (Ptg_memctrl.Memctrl.write_line t.mc ~addr benign ());
  match Ptg_memctrl.Memctrl.engine t.mc with
  | None -> true
  | Some engine -> not (Ptguard.Ctb.mem (Ptguard.Engine.ctb engine) addr)

let remap_pt_page t ~table ~alloc ~vaddr =
  let steps = Ptg_vm.Page_table.walk table ~vaddr in
  let pd_step =
    List.find_opt (fun s -> s.Ptg_vm.Page_table.level = Ptg_vm.Page_table.Pd) steps
  in
  match pd_step with
  | Some s when Ptg_pte.X86.get_flag s.Ptg_vm.Page_table.entry Ptg_pte.X86.Present ->
      let old_frame = Ptg_pte.X86.pfn s.Ptg_vm.Page_table.entry in
      let new_frame = Ptg_vm.Frame_allocator.alloc_discontiguous alloc in
      let old_base = Int64.shift_left old_frame 12 in
      let new_base = Int64.shift_left new_frame 12 in
      (* Copy the 64 PTE cachelines through the controller: each line is
         verified (and best-effort corrected) on the way out of the bad
         row and freshly MACed for its new address. Uncorrectable lines
         are zeroed — the kernel rebuilds those PTEs from its VMA records
         on the next fault. *)
      for i = 0 to 63 do
        let src = Int64.add old_base (Int64.of_int (i * 64)) in
        let dst = Int64.add new_base (Int64.of_int (i * 64)) in
        let line =
          match Ptg_memctrl.Memctrl.read_line t.mc ~addr:src ~is_pte:true () with
          | { Ptg_memctrl.Memctrl.data = Some l; _ } -> l
          | { Ptg_memctrl.Memctrl.data = None; _ } -> Ptg_pte.Line.create ()
        in
        ignore (Ptg_memctrl.Memctrl.write_line t.mc ~addr:dst line ())
      done;
      (* Point the PDE at the new frame (a normal kernel write, so the
         parent line is re-MACed by the engine). *)
      let mem = Ptg_memctrl.Memctrl.phys_mem t.mc in
      mem.Ptg_vm.Phys_mem.write_word s.Ptg_vm.Page_table.entry_addr
        (Ptg_pte.X86.set_pfn s.Ptg_vm.Page_table.entry new_frame);
      journal t (Remapped_pt_page { old_frame; new_frame });
      Some (old_frame, new_frame)
  | Some _ | None -> None

open Ptg_util
open Ptg_crypto

type step =
  | Soft_mac_match
  | Flip_and_check
  | Zero_pte_reset
  | Flag_majority
  | Pfn_contiguity
  | Flags_and_pfn

let step_name = function
  | Soft_mac_match -> "soft-MAC-match"
  | Flip_and_check -> "flip-and-check"
  | Zero_pte_reset -> "zero-PTE-reset"
  | Flag_majority -> "flag-majority"
  | Pfn_contiguity -> "pfn-contiguity"
  | Flags_and_pfn -> "flags+pfn"

type outcome =
  | Corrected of { line : Ptg_pte.Line.t; step : step; guesses : int }
  | Uncorrectable of { guesses : int }

type strategy_mask = {
  use_soft_mac : bool;
  use_flip_and_check : bool;
  use_zero_reset : bool;
  use_flag_vote : bool;
  use_pfn_contiguity : bool;
}

let all_strategies =
  {
    use_soft_mac = true;
    use_flip_and_check = true;
    use_zero_reset = true;
    use_flag_vote = true;
    use_pfn_contiguity = true;
  }

let no_strategies =
  {
    use_soft_mac = false;
    use_flip_and_check = false;
    use_zero_reset = false;
    use_flag_vote = false;
    use_pfn_contiguity = false;
  }

(* The MAC folds Q(C_i xor A_i) over four 16-byte chunks; a candidate that
   differs from a cached base in a single chunk needs only one fresh QARMA
   call. This makes flip-and-check ~4x cheaper. *)
module Mac_cache = struct
  type t = {
    key : Qarma.key;
    addr : int64;
    mac_bits : int;
    masked_for_mac : Ptg_pte.Line.t -> Ptg_pte.Line.t;
    protected_mask : int64;
    mutable base : Ptg_pte.Line.t; (* masked for MAC *)
    mutable q : Block128.t array;  (* 4 chunk ciphertexts for [base] *)
    sc : Qarma.scratch;            (* reused across the correction search *)
  }

  let chunk line i = Block128.make ~hi:line.((2 * i) + 1) ~lo:line.(2 * i)
  let addr_block ~addr i = Block128.make ~hi:(Int64.of_int i) ~lo:addr

  let encrypt_chunk t masked i =
    let a = addr_block ~addr:t.addr i in
    Qarma.encrypt_with t.sc t.key ~tweak:a (Block128.logxor (chunk masked i) a)

  let make ~mac_bits ~masked_for_mac ~protected_mask key ~addr line =
    let masked = masked_for_mac line in
    let t =
      { key; addr; mac_bits; masked_for_mac; protected_mask; base = masked;
        q = [||]; sc = Qarma.scratch () }
    in
    t.q <- Array.init 4 (fun i -> encrypt_chunk t masked i);
    t

  let mac_of_blocks t q =
    let x = Array.fold_left Block128.logxor Block128.zero q in
    let m =
      { Mac.hi32 = Int64.logand x.Block128.hi 0xFFFFFFFFL; lo = x.Block128.lo }
    in
    Mac.truncate ~width:t.mac_bits m

  (* MAC of the current base. *)
  let base_mac t = mac_of_blocks t t.q

  (* MAC of the base with one word replaced (word index 0..7). *)
  let mac_with_word t ~word_idx value =
    let masked_value = Int64.logand value t.protected_mask in
    if Int64.equal masked_value t.base.(word_idx) then base_mac t
    else begin
      let ci = word_idx / 2 in
      let candidate_chunk =
        let hi = if word_idx = (2 * ci) + 1 then masked_value else t.base.((2 * ci) + 1) in
        let lo = if word_idx = 2 * ci then masked_value else t.base.(2 * ci) in
        Block128.make ~hi ~lo
      in
      let a = addr_block ~addr:t.addr ci in
      let qc = Qarma.encrypt_with t.sc t.key ~tweak:a (Block128.logxor candidate_chunk a) in
      let q = Array.copy t.q in
      q.(ci) <- qc;
      mac_of_blocks t q
    end

  (* MAC of an arbitrary candidate line (all chunks recomputed as needed). *)
  let mac_of_line t line =
    let masked = t.masked_for_mac line in
    let q =
      Array.init 4 (fun i ->
          let same =
            Int64.equal masked.(2 * i) t.base.(2 * i)
            && Int64.equal masked.((2 * i) + 1) t.base.((2 * i) + 1)
          in
          if same then t.q.(i) else encrypt_chunk t masked i)
    in
    mac_of_blocks t q
end

let verify_only (cfg : Config.t) key ~addr line =
  let module L = (val cfg.Config.layout : Layout.S) in
  let cache =
    Mac_cache.make ~mac_bits:cfg.Config.mac_bits ~masked_for_mac:L.masked_for_mac
      ~protected_mask:L.protected_mask key ~addr line
  in
  Mac.equal (Mac_cache.base_mac cache)
    (Mac.truncate ~width:cfg.Config.mac_bits (L.extract_mac line))

let majority_bit words bit =
  let n = List.length words in
  let ones = List.length (List.filter (fun w -> Bits.get w bit) words) in
  2 * ones > n

let correct ?(strategies = all_strategies) ?mac_zero (cfg : Config.t) key ~addr line =
  let module L = (val cfg.Config.layout : Layout.S) in
  let k = cfg.Config.soft_match_k in
  let target = Mac.truncate ~width:cfg.Config.mac_bits (L.extract_mac line) in
  let cache =
    Mac_cache.make ~mac_bits:cfg.Config.mac_bits ~masked_for_mac:L.masked_for_mac
      ~protected_mask:L.protected_mask key ~addr line
  in
  let guesses = ref 0 in
  let matches mac =
    incr guesses;
    Mac.soft_match ~k mac target
  in
  (* Under the Optimized design, an all-zero candidate's reference MAC is
     the address-free MAC-zero constant (Section V-B) — the same rule the
     write path used to embed it. *)
  let zero_masked candidate = Ptg_pte.Line.is_zero (L.masked_for_mac candidate) in
  let effective_mac candidate computed_lazily =
    match mac_zero with
    | Some mz when zero_masked candidate -> mz
    | Some _ | None -> computed_lazily ()
  in
  (* Bits of an entry that carry page-table content (not MAC/identifier). *)
  let content_mask =
    Int64.lognot (Int64.logor L.mac_field_mask L.identifier_field_mask)
  in
  let protected_bit_list =
    List.filter (fun b -> Bits.get L.protected_mask b) (List.init 64 Fun.id)
  in
  let exception Found of Ptg_pte.Line.t * step in
  let try_line step candidate =
    let mac =
      effective_mac candidate (fun () -> Mac_cache.mac_of_line cache candidate)
    in
    if matches mac then raise (Found (candidate, step))
  in
  try
    (* Step 1: the stored data may be intact with faults only in the MAC. *)
    if strategies.use_soft_mac then begin
      let mac = effective_mac line (fun () -> Mac_cache.base_mac cache) in
      if matches mac then raise (Found (Ptg_pte.Line.copy line, Soft_mac_match))
    end;
    (* Step 2: single-bit flip in any protected bit of any PTE. *)
    if strategies.use_flip_and_check then begin
      for word = 0 to 7 do
        List.iter
          (fun b ->
            let flipped = Bits.flip line.(word) b in
            let candidate () =
              let out = Ptg_pte.Line.copy line in
              out.(word) <- flipped;
              out
            in
            let mac =
              match mac_zero with
              | Some mz when zero_masked (candidate ()) -> mz
              | Some _ | None -> Mac_cache.mac_with_word cache ~word_idx:word flipped
            in
            if matches mac then raise (Found (candidate (), Flip_and_check)))
          protected_bit_list
      done
    end;
    (* Step 3: reset almost-zero PTEs; later steps inherit the resets. *)
    let base =
      if not strategies.use_zero_reset then Ptg_pte.Line.copy line
      else begin
        let candidate =
          Array.map
            (fun w ->
              let content = Int64.logand w content_mask in
              if
                (not (Int64.equal content 0L))
                && Bits.popcount content <= cfg.Config.zero_pte_max_bits
              then Int64.logand w (Int64.lognot content_mask)
              else w)
            line
        in
        try_line Zero_pte_reset candidate;
        candidate
      end
    in
    let nonzero_idx =
      List.filter
        (fun i -> not (Int64.equal (Int64.logand base.(i) content_mask) 0L))
        (List.init 8 Fun.id)
    in
    let nonzero_words = List.map (fun i -> base.(i)) nonzero_idx in
    (* Step 4: bitwise flag majority across non-zero PTEs. *)
    let flag_voted =
      if nonzero_words = [] then base
      else
        Array.mapi
          (fun i w ->
            if List.mem i nonzero_idx then
              List.fold_left
                (fun w b -> Bits.assign w b (majority_bit nonzero_words b))
                w L.flag_bits
            else w)
          base
    in
    if strategies.use_flag_vote && nonzero_words <> [] then
      try_line Flag_majority flag_voted;
    (* Step 5: PFN locality. First a majority vote over the top PFN bits;
       then contiguity reconstruction of all PFNs from each base. *)
    let pfn_lo, pfn_hi = L.pfn_word_bits in
    let top_lo = pfn_lo + 8 and top_hi = pfn_hi in
    let pfn_top_voted from_line =
      if nonzero_words = [] then from_line
      else begin
        let words = List.map (fun i -> from_line.(i)) nonzero_idx in
        Array.mapi
          (fun i w ->
            if List.mem i nonzero_idx then begin
              let w = ref w in
              for b = top_lo to top_hi do
                w := Bits.assign !w b (majority_bit words b)
              done;
              !w
            end
            else w)
          from_line
      end
    in
    let contiguity_candidates from_line =
      (* Assume PTE [b]'s PFN is correct; rebuild the others as a +1-per-
         index progression. Zero PTEs stay zero. *)
      List.map
        (fun b ->
          let base_pfn = L.pfn from_line.(b) in
          Array.mapi
            (fun i w ->
              if List.mem i nonzero_idx then
                L.set_pfn w (Int64.add base_pfn (Int64.of_int (i - b)))
              else w)
            from_line)
        (List.filter (fun b -> List.mem b nonzero_idx) (List.init 8 Fun.id))
    in
    if strategies.use_pfn_contiguity && nonzero_words <> [] then begin
      try_line Pfn_contiguity (pfn_top_voted base);
      List.iter (try_line Pfn_contiguity) (contiguity_candidates base)
    end;
    (* Steps 4+5 combined (flags voted, then PFN reconstruction). *)
    if strategies.use_flag_vote && strategies.use_pfn_contiguity
       && nonzero_words <> []
    then
      List.iter (try_line Flags_and_pfn) (contiguity_candidates flag_voted);
    Uncorrectable { guesses = !guesses }
  with Found (candidate, step) -> Corrected { line = candidate; step; guesses = !guesses }

(** The PT-Guard integrity engine, as implemented in the memory controller
    (paper Figure 5).

    The engine sits on the DRAM side of the controller:

    - {b writes} ({!process_write}): if the line matches the PTE bit
      pattern, the MAC (and, in the Optimized design, the identifier) is
      embedded before the line goes to DRAM. Lines whose existing data
      equals the would-be MAC are recorded in the CTB.
    - {b reads} ({!process_read}): page-table walks ([is_pte = true])
      always verify the MAC; a mismatch triggers best-effort correction
      and, failing that, a PTE-integrity exception (the line is {e not}
      forwarded). Regular reads have the MAC stripped when it verifies,
      are forwarded untouched otherwise, and — in the Optimized design —
      skip MAC computation entirely unless the identifier is present.

    The engine is purely functional with respect to DRAM: callers hand it
    lines on their way in/out of memory. It never sees cache hits, matching
    the hardware placement. *)

type os_event =
  | Pte_integrity_failure of { addr : int64 }
      (** Raised to the OS via the PTECheckFailed path. *)
  | Collision_detected of { addr : int64 }
      (** A colliding line was inserted into the CTB (attack indicator). *)
  | Ctb_overflow
      (** CTB full: the engine re-keys; the OS should suspect an attack. *)
  | Rekey_completed of { writes : int }

type stats = {
  mutable writes_total : int;
  mutable writes_protected : int;   (** MAC embedded *)
  mutable writes_mac_zero : int;    (** embedded via the precomputed MAC-zero *)
  mutable collisions_tracked : int;
  mutable reads_total : int;
  mutable reads_pte : int;
  mutable mac_computations : int;   (** reads that paid the MAC latency *)
  mutable macs_stripped : int;      (** protected lines cleaned before forwarding *)
  mutable integrity_failures : int;
  mutable corrections_attempted : int;
  mutable corrections_succeeded : int;
  mutable rekeys : int;
}

type integrity =
  | Passed
      (** PTE read whose MAC verified (line forwarded, MAC stripped). *)
  | Corrected of { step : Correction.step; guesses : int }
  | Failed
      (** Unrecoverable PTE tampering: exception, line not forwarded. *)
  | Data_protected
      (** Regular read of a line carrying a verified MAC (stripped). *)
  | Data_passthrough
      (** Regular read forwarded untouched (no MAC / mismatch / CTB hit). *)

type read_result = {
  line : Ptg_pte.Line.t option;
      (** What the controller forwards to the caches; [None] on [Failed]. *)
  integrity : integrity;
  extra_latency : int;
      (** Cycles added by this read: the MAC latency when a computation
          was needed, plus correction guesses when correction ran. *)
  raw_line : Ptg_pte.Line.t;
      (** The line as stored in DRAM (what the OS would see on a direct
          read; used for the Section IV-E PFN bounds check). *)
}

type t

val create :
  ?config:Config.t -> ?obs:Ptg_obs.Sink.t -> rng:Ptg_util.Rng.t -> unit -> t
(** Draws the QARMA key and (Optimized) the 56-bit identifier from [rng].
    Default config: {!Config.baseline}. When [obs] is given, every {!stats}
    field is mirrored into [engine_*] counters and MAC-verify / correction /
    CTB / rekey events are recorded in the trace ring; without it the
    engine's behaviour and RNG stream are unchanged (a single [option]
    branch per operation). *)

val config : t -> Config.t
val stats : t -> stats
val key : t -> Ptg_crypto.Qarma.key
val identifier : t -> int64
(** The current identifier (0 under [Baseline]). *)

val on_os_event : t -> (os_event -> unit) -> unit

val process_write : t -> addr:int64 -> Ptg_pte.Line.t -> Ptg_pte.Line.t
(** The line as it should be stored in DRAM (MAC/identifier embedded when
    the pattern matches). Also performs collision detection. *)

val process_read : t -> addr:int64 -> is_pte:bool -> Ptg_pte.Line.t -> read_result
(** [line] is the line as read from DRAM (possibly corrupted). *)

val ctb : t -> Ctb.t

(** {2 Checkpointable state}

    Everything mutable beyond what re-creation from the same seed already
    reproduces: the (possibly re-keyed) 256-bit key input, the CTB
    contents, and the statistics counters. [mac_zero] and the expanded
    round material are recomputed from the key on restore; the identifier
    is immutable and re-derived by creation. *)

type state = {
  s_key_w0 : Ptg_crypto.Block128.t;
  s_key_k0 : Ptg_crypto.Block128.t;
  s_ctb : int64 list;
  s_stats : stats;
}

val state : t -> state
(** Defensive copy (the stats record is duplicated). *)

val set_state : t -> state -> unit
(** Overwrite key, CTB and stats with captured state. The engine must
    have the same configuration the state was captured under. *)

val rekey :
  t ->
  rng:Ptg_util.Rng.t ->
  iter_lines:((addr:int64 -> Ptg_pte.Line.t -> unit) -> unit) ->
  write:(addr:int64 -> Ptg_pte.Line.t -> unit) ->
  unit
(** Gradual re-keying (Section VII-B): draws a fresh key, then
    [iter_lines] must present every stored line (the engine snapshots
    them); each line is verified/stripped under the old key — as one
    lane-parallel MAC batch — re-embedded under the new key, and handed
    to [write] in iteration order. The CTB is cleared. *)

(** {2 Batched verification}

    Reads staged here are resolved together: one lane-parallel
    {!Ptg_crypto.Mac.compute_batch} covers every staged read that needs a
    cipher call, then each request is resolved in stage order with the
    precomputed MAC substituted into the ordinary read path. Stats,
    traces, OS events and results are exactly those of calling
    {!process_read} sequentially at flush time (differential-tested);
    only the cipher work is amortized. Corrections still run the scalar
    cipher. *)

module Batch : sig
  type engine := t
  type t

  val create : ?capacity:int -> engine -> t
  (** Lane buffer for up to [capacity] staged reads (default
      {!Ptg_crypto.Mac.default_batch_capacity}). *)

  val capacity : t -> int

  val pending : t -> int
  (** Number of staged, unresolved reads. *)

  val stage :
    t -> addr:int64 -> is_pte:bool -> Ptg_pte.Line.t -> (read_result -> unit) -> unit
  (** [stage b ~addr ~is_pte line k] defers [process_read] of [line]
      (copied) and invokes [k] with the result at flush. Reaching
      [capacity] flushes automatically — the batch boundary. *)

  val flush : t -> unit
  (** Resolve all staged reads now, invoking their callbacks in stage
      order. No-op when empty. *)
end

val pte_bounds_check : t -> Ptg_pte.Line.t -> bool
(** Section IV-E: would the OS's PFN bounds check flag this stored PTE
    line (a PFN beyond physical memory, i.e. an embedded MAC)? *)

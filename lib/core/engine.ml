open Ptg_crypto

type os_event =
  | Pte_integrity_failure of { addr : int64 }
  | Collision_detected of { addr : int64 }
  | Ctb_overflow
  | Rekey_completed of { writes : int }

type stats = {
  mutable writes_total : int;
  mutable writes_protected : int;
  mutable writes_mac_zero : int;
  mutable collisions_tracked : int;
  mutable reads_total : int;
  mutable reads_pte : int;
  mutable mac_computations : int;
  mutable macs_stripped : int;
  mutable integrity_failures : int;
  mutable corrections_attempted : int;
  mutable corrections_succeeded : int;
  mutable rekeys : int;
}

type integrity =
  | Passed
  | Corrected of { step : Correction.step; guesses : int }
  | Failed
  | Data_protected
  | Data_passthrough

type read_result = {
  line : Ptg_pte.Line.t option;
  integrity : integrity;
  extra_latency : int;
  raw_line : Ptg_pte.Line.t;
}

(* Observability mirror of [stats]: registry counters resolved once at
   creation, plus the shared trace ring. [None] when the engine was built
   without a sink — the disabled path costs one option branch. *)
type obs = {
  o_writes_total : Ptg_obs.Registry.counter;
  o_writes_protected : Ptg_obs.Registry.counter;
  o_writes_unprotected : Ptg_obs.Registry.counter;
  o_writes_mac_zero : Ptg_obs.Registry.counter;
  o_collisions : Ptg_obs.Registry.counter;
  o_ctb_overflows : Ptg_obs.Registry.counter;
  o_reads_total : Ptg_obs.Registry.counter;
  o_reads_pte : Ptg_obs.Registry.counter;
  o_mac_computations : Ptg_obs.Registry.counter;
  o_macs_stripped : Ptg_obs.Registry.counter;
  o_integrity_failures : Ptg_obs.Registry.counter;
  o_corrections_attempted : Ptg_obs.Registry.counter;
  o_corrections_succeeded : Ptg_obs.Registry.counter;
  o_rekeys : Ptg_obs.Registry.counter;
  o_trace : Ptg_obs.Trace.t;
}

let obs_of_sink sink =
  let c = Ptg_obs.Registry.counter (Ptg_obs.Sink.registry sink) in
  {
    o_writes_total = c "engine_writes_total";
    o_writes_protected = c "engine_writes_protected";
    o_writes_unprotected = c "engine_writes_unprotected";
    o_writes_mac_zero = c "engine_writes_mac_zero";
    o_collisions = c "engine_collisions_tracked";
    o_ctb_overflows = c "engine_ctb_overflows";
    o_reads_total = c "engine_reads_total";
    o_reads_pte = c "engine_reads_pte";
    o_mac_computations = c "engine_mac_computations";
    o_macs_stripped = c "engine_macs_stripped";
    o_integrity_failures = c "engine_integrity_failures";
    o_corrections_attempted = c "engine_corrections_attempted";
    o_corrections_succeeded = c "engine_corrections_succeeded";
    o_rekeys = c "engine_rekeys";
    o_trace = Ptg_obs.Sink.trace sink;
  }

type t = {
  config : Config.t;
  mutable key : Qarma.key;
  identifier : int64;
  mutable mac_zero : Mac.t;
  ctb : Ctb.t;
  stats : stats;
  mutable listeners : (os_event -> unit) list;
  obs : obs option;
  (* Reused by every MAC computation; engines are single-domain, and the
     read-only view [rekey] builds shares it safely (strictly sequential). *)
  mac_ctx : Mac.ctx;
  (* Lane buffers shared by [Batch] flushes and the rekey sweep. *)
  mac_batch : Mac.batch_ctx;
}

let obs_incr t sel =
  match t.obs with None -> () | Some o -> Ptg_obs.Registry.incr (sel o)

let obs_event t e =
  match t.obs with None -> () | Some o -> Ptg_obs.Trace.record o.o_trace e

let fresh_stats () =
  {
    writes_total = 0;
    writes_protected = 0;
    writes_mac_zero = 0;
    collisions_tracked = 0;
    reads_total = 0;
    reads_pte = 0;
    mac_computations = 0;
    macs_stripped = 0;
    integrity_failures = 0;
    corrections_attempted = 0;
    corrections_succeeded = 0;
    rekeys = 0;
  }

let create ?(config = Config.baseline) ?obs ~rng () =
  let key = Qarma.key_of_rng ~rounds:config.Config.qarma_rounds rng in
  let identifier =
    match config.Config.design with
    | Config.Baseline -> 0L
    | Config.Optimized ->
        let module L = (val config.Config.layout : Layout.S) in
        Int64.logand (Ptg_util.Rng.next rng) (Ptg_util.Bits.mask L.identifier_bits)
  in
  {
    config;
    key;
    identifier;
    mac_zero = Mac.truncate ~width:config.Config.mac_bits (Mac.compute_zero key);
    ctb = Ctb.create ~capacity:config.Config.ctb_entries;
    stats = fresh_stats ();
    listeners = [];
    obs = Option.map obs_of_sink obs;
    mac_ctx = Mac.ctx ();
    mac_batch = Mac.batch_ctx ();
  }

let config t = t.config
let stats t = t.stats
let key t = t.key
let identifier t = t.identifier
let ctb t = t.ctb

type state = {
  s_key_w0 : Block128.t;
  s_key_k0 : Block128.t;
  s_ctb : int64 list;
  s_stats : stats;
}

let state t =
  let w0, k0 = Qarma.key_material t.key in
  {
    s_key_w0 = w0;
    s_key_k0 = k0;
    s_ctb = Ctb.entries t.ctb;
    s_stats = { t.stats with writes_total = t.stats.writes_total };
  }

let set_state t s =
  (* [mac_zero] and the derived round material are functions of the key;
     recomputing them keeps the snapshot payload down to the 256-bit key
     input. The identifier is drawn at creation from the same seed the
     restore path recreates the engine with, so it needs no field here. *)
  let key =
    Qarma.expand_key ~rounds:t.config.Config.qarma_rounds ~w0:s.s_key_w0
      s.s_key_k0
  in
  t.key <- key;
  t.mac_zero <-
    Mac.truncate ~width:t.config.Config.mac_bits (Mac.compute_zero key);
  Ctb.clear t.ctb;
  Ctb.set_entries t.ctb s.s_ctb;
  let d = t.stats and src = s.s_stats in
  d.writes_total <- src.writes_total;
  d.writes_protected <- src.writes_protected;
  d.writes_mac_zero <- src.writes_mac_zero;
  d.collisions_tracked <- src.collisions_tracked;
  d.reads_total <- src.reads_total;
  d.reads_pte <- src.reads_pte;
  d.mac_computations <- src.mac_computations;
  d.macs_stripped <- src.macs_stripped;
  d.integrity_failures <- src.integrity_failures;
  d.corrections_attempted <- src.corrections_attempted;
  d.corrections_succeeded <- src.corrections_succeeded;
  d.rekeys <- src.rekeys
let on_os_event t f = t.listeners <- f :: t.listeners
let emit t e = List.iter (fun f -> f e) t.listeners

(* The configured page-table layout (x86-64 by default, ARMv8 via
   Config.with_layout): every format-specific operation goes through it. *)
let layout t = t.config.Config.layout

(* MAC of a line's protected bits, truncated to the configured width. *)
let compute_mac t ~addr line =
  let module L = (val layout t : Layout.S) in
  Mac.truncate ~width:t.config.Config.mac_bits
    (Mac.compute_with t.mac_ctx t.key ~addr (L.masked_for_mac line))

(* The embedded-MAC comparison is strict over the full 96-bit field: with
   a truncated MAC the unused upper field bits must be zero, exactly as
   the write path leaves them. *)
let embedded_matches ~stored ~computed = Mac.equal stored computed

let pattern_matches t line =
  let module L = (val layout t : Layout.S) in
  match t.config.Config.design with
  | Config.Baseline -> L.matches_basic_pattern line
  | Config.Optimized -> L.matches_extended_pattern line

let identifier_present t line =
  let module L = (val layout t : Layout.S) in
  Int64.equal (L.extract_identifier line) t.identifier

(* Would reading this stored line back be misinterpreted as MAC-protected?
   Used for write-time collision detection on non-matching lines. *)
let would_collide t ~addr line =
  let id_ok =
    match t.config.Config.design with
    | Config.Baseline -> true
    | Config.Optimized -> identifier_present t line
  in
  let module L = (val layout t : Layout.S) in
  id_ok
  && embedded_matches ~stored:(L.extract_mac line) ~computed:(compute_mac t ~addr line)

let embed t ~addr line =
  let module L = (val layout t : Layout.S) in
  let is_zero_line = Ptg_pte.Line.is_zero line in
  let mac =
    if t.config.Config.design = Config.Optimized && is_zero_line then begin
      t.stats.writes_mac_zero <- t.stats.writes_mac_zero + 1;
      obs_incr t (fun o -> o.o_writes_mac_zero);
      t.mac_zero
    end
    else compute_mac t ~addr line
  in
  let stored = L.embed_mac line mac in
  match t.config.Config.design with
  | Config.Baseline -> stored
  | Config.Optimized -> L.embed_identifier stored t.identifier

let process_write t ~addr line =
  t.stats.writes_total <- t.stats.writes_total + 1;
  obs_incr t (fun o -> o.o_writes_total);
  if pattern_matches t line then begin
    t.stats.writes_protected <- t.stats.writes_protected + 1;
    obs_incr t (fun o -> o.o_writes_protected);
    (* A protected write replaces whatever colliding data was there. *)
    Ctb.remove t.ctb addr;
    embed t ~addr line
  end
  else begin
    obs_incr t (fun o -> o.o_writes_unprotected);
    if would_collide t ~addr line then begin
      match Ctb.add t.ctb addr with
      | `Added ->
          t.stats.collisions_tracked <- t.stats.collisions_tracked + 1;
          obs_incr t (fun o -> o.o_collisions);
          obs_event t (Ptg_obs.Trace.Ctb_insert { addr });
          emit t (Collision_detected { addr })
      | `Already_present -> ()
      | `Full ->
          obs_incr t (fun o -> o.o_ctb_overflows);
          obs_event t Ptg_obs.Trace.Ctb_overflow;
          emit t Ctb_overflow
    end
    else Ctb.remove t.ctb addr;
    Ptg_pte.Line.copy line
  end

let strip t line =
  let module L = (val layout t : Layout.S) in
  let line = L.strip_mac line in
  match t.config.Config.design with
  | Config.Baseline -> line
  | Config.Optimized -> L.strip_identifier line

(* Under the Optimized design, faults in the identifier field of a PTE
   line are trivially corrected because the expected value is known
   on-chip (Section VI). *)
let restore_identifier t line =
  let module L = (val layout t : Layout.S) in
  match t.config.Config.design with
  | Config.Baseline -> line
  | Config.Optimized -> L.embed_identifier line t.identifier

(* The [?mac] parameter on the read paths carries a MAC that a [Batch]
   flush already computed for this (addr, line): the decision logic and
   stats accounting are identical to the scalar path — including counting
   the computation — only the cipher work itself is skipped. *)
let computed_or t ~addr line = function
  | Some m -> m
  | None -> compute_mac t ~addr line

let read_pte ?mac t ~addr line =
  let module L = (val layout t : Layout.S) in
  let mac_latency = t.config.Config.mac_latency_cycles in
  let stored = L.extract_mac line in
  (* Zero PTE cachelines carry the address-free MAC-zero (Section V-B):
     the check is a comparison against the on-chip constant, no cipher
     latency. Only the Optimized design embeds MAC-zero. *)
  let mac_zero_hit =
    t.config.Config.design = Config.Optimized
    && Ptg_pte.Line.is_zero (strip t line)
    && embedded_matches ~stored ~computed:t.mac_zero
  in
  if mac_zero_hit then begin
    t.stats.macs_stripped <- t.stats.macs_stripped + 1;
    obs_incr t (fun o -> o.o_macs_stripped);
    obs_event t (Ptg_obs.Trace.Mac_verify { addr; ok = true });
    { line = Some (strip t line); integrity = Passed; extra_latency = 0;
      raw_line = line }
  end
  else begin
  t.stats.mac_computations <- t.stats.mac_computations + 1;
  obs_incr t (fun o -> o.o_mac_computations);
  let computed = computed_or t ~addr line mac in
  if embedded_matches ~stored ~computed then begin
    t.stats.macs_stripped <- t.stats.macs_stripped + 1;
    obs_incr t (fun o -> o.o_macs_stripped);
    obs_event t (Ptg_obs.Trace.Mac_verify { addr; ok = true });
    { line = Some (strip t line); integrity = Passed; extra_latency = mac_latency;
      raw_line = line }
  end
  else begin
  obs_event t (Ptg_obs.Trace.Mac_verify { addr; ok = false });
  if t.config.Config.correction_enabled then begin
    t.stats.corrections_attempted <- t.stats.corrections_attempted + 1;
    obs_incr t (fun o -> o.o_corrections_attempted);
    let candidate = restore_identifier t line in
    let mac_zero =
      match t.config.Config.design with
      | Config.Baseline -> None
      | Config.Optimized -> Some t.mac_zero
    in
    match Correction.correct ?mac_zero:(Option.map Fun.id mac_zero) t.config t.key ~addr candidate with
    | Correction.Corrected { line = fixed; step; guesses } ->
        t.stats.corrections_succeeded <- t.stats.corrections_succeeded + 1;
        obs_incr t (fun o -> o.o_corrections_succeeded);
        obs_event t
          (Ptg_obs.Trace.Correction
             { addr; step = Correction.step_name step; guesses; ok = true });
        {
          line = Some (strip t fixed);
          integrity = Corrected { step; guesses };
          extra_latency = mac_latency * (1 + guesses);
          raw_line = line;
        }
    | Correction.Uncorrectable { guesses } ->
        t.stats.integrity_failures <- t.stats.integrity_failures + 1;
        obs_incr t (fun o -> o.o_integrity_failures);
        obs_event t
          (Ptg_obs.Trace.Correction { addr; step = "uncorrectable"; guesses; ok = false });
        emit t (Pte_integrity_failure { addr });
        {
          line = None;
          integrity = Failed;
          extra_latency = mac_latency * (1 + guesses);
          raw_line = line;
        }
  end
  else begin
    t.stats.integrity_failures <- t.stats.integrity_failures + 1;
    obs_incr t (fun o -> o.o_integrity_failures);
    emit t (Pte_integrity_failure { addr });
    { line = None; integrity = Failed; extra_latency = mac_latency; raw_line = line }
  end
  end
  end

let read_data_baseline ?mac t ~addr line =
  let module L = (val layout t : Layout.S) in
  let mac_latency = t.config.Config.mac_latency_cycles in
  t.stats.mac_computations <- t.stats.mac_computations + 1;
  obs_incr t (fun o -> o.o_mac_computations);
  let computed = computed_or t ~addr line mac in
  let stored = L.extract_mac line in
  if embedded_matches ~stored ~computed then begin
    t.stats.macs_stripped <- t.stats.macs_stripped + 1;
    obs_incr t (fun o -> o.o_macs_stripped);
    { line = Some (strip t line); integrity = Data_protected;
      extra_latency = mac_latency; raw_line = line }
  end
  else
    { line = Some (Ptg_pte.Line.copy line); integrity = Data_passthrough;
      extra_latency = mac_latency; raw_line = line }

let read_data_optimized ?mac t ~addr line =
  let mac_latency = t.config.Config.mac_latency_cycles in
  if not (identifier_present t line) then
    (* No identifier, no embedded MAC: forward with zero added latency —
       the optimization that flattens Figure 7. *)
    { line = Some (Ptg_pte.Line.copy line); integrity = Data_passthrough;
      extra_latency = 0; raw_line = line }
  else begin
    let module L = (val layout t : Layout.S) in
    let stored = L.extract_mac line in
    let rest_is_zero = Ptg_pte.Line.is_zero (strip t line) in
    if rest_is_zero && embedded_matches ~stored ~computed:t.mac_zero then begin
      (* MAC-zero shortcut: comparison against the on-chip constant only. *)
      t.stats.macs_stripped <- t.stats.macs_stripped + 1;
      obs_incr t (fun o -> o.o_macs_stripped);
      { line = Some (strip t line); integrity = Data_protected;
        extra_latency = 0; raw_line = line }
    end
    else begin
      t.stats.mac_computations <- t.stats.mac_computations + 1;
      obs_incr t (fun o -> o.o_mac_computations);
      let computed = computed_or t ~addr line mac in
      if embedded_matches ~stored ~computed then begin
        t.stats.macs_stripped <- t.stats.macs_stripped + 1;
        obs_incr t (fun o -> o.o_macs_stripped);
        { line = Some (strip t line); integrity = Data_protected;
          extra_latency = mac_latency; raw_line = line }
      end
      else
        { line = Some (Ptg_pte.Line.copy line); integrity = Data_passthrough;
          extra_latency = mac_latency; raw_line = line }
    end
  end

let process_read_with ?mac t ~addr ~is_pte line =
  t.stats.reads_total <- t.stats.reads_total + 1;
  obs_incr t (fun o -> o.o_reads_total);
  if is_pte then begin
    t.stats.reads_pte <- t.stats.reads_pte + 1;
    obs_incr t (fun o -> o.o_reads_pte);
    (* Page-table walks are always verified, CTB or not: a PTE line can
       never legitimately be a tracked collision because the kernel's
       protected write evicts any stale CTB entry. *)
    read_pte ?mac t ~addr line
  end
  else if Ctb.mem t.ctb addr then
    { line = Some (Ptg_pte.Line.copy line); integrity = Data_passthrough;
      extra_latency = 0; raw_line = line }
  else
    match t.config.Config.design with
    | Config.Baseline -> read_data_baseline ?mac t ~addr line
    | Config.Optimized -> read_data_optimized ?mac t ~addr line

let process_read t ~addr ~is_pte line = process_read_with t ~addr ~is_pte line

(* Will [process_read] need a fresh MAC computation for this request?
   Mirrors the shortcut structure of the read paths above exactly (the
   mac-zero constant comparison, the CTB passthrough, the Optimized
   identifier gate); the batched-vs-sequential differential tests pin the
   agreement. Pure: no stats, no traces. *)
let needs_mac t ~addr ~is_pte line =
  let module L = (val layout t : Layout.S) in
  let mac_zero_hit () =
    t.config.Config.design = Config.Optimized
    && Ptg_pte.Line.is_zero (strip t line)
    && embedded_matches ~stored:(L.extract_mac line) ~computed:t.mac_zero
  in
  if is_pte then not (mac_zero_hit ())
  else if Ctb.mem t.ctb addr then false
  else
    match t.config.Config.design with
    | Config.Baseline -> true
    | Config.Optimized -> identifier_present t line && not (mac_zero_hit ())

let rekey t ~rng ~iter_lines ~write =
  (* [old] is a read-only view under the outgoing key: no stats, no
     listeners, and no observability (the re-embedding writes on [t] are
     the ones that count). *)
  let old = { t with stats = fresh_stats (); listeners = []; obs = None } in
  t.key <- Qarma.key_of_rng ~rounds:t.config.Config.qarma_rounds rng;
  t.mac_zero <- Mac.truncate ~width:t.config.Config.mac_bits (Mac.compute_zero t.key);
  Ctb.clear t.ctb;
  (* Snapshot the stored lines first, so the old-key verification MACs can
     be computed as one lane-parallel batch instead of line-at-a-time. The
     verification only reads [old]'s frozen key material, so hoisting it
     ahead of the re-embedding writes cannot change any outcome. *)
  let addrs = ref [] and count = ref 0 in
  iter_lines (fun ~addr line ->
      incr count;
      addrs := (addr, Ptg_pte.Line.copy line) :: !addrs);
  let items = Array.of_list (List.rev !addrs) in
  let n = Array.length items in
  let module L = (val layout old : Layout.S) in
  let macs =
    Mac.compute_batch t.mac_batch old.key ~n
      ~addrs:(Array.map fst items)
      ~lines:(Array.map (fun (_, line) -> L.masked_for_mac line) items)
  in
  Array.iteri
    (fun i (addr, line) ->
      (* Recover the pre-DRAM view under the old key, then re-embed. *)
      let logical =
        let id_ok =
          match old.config.Config.design with
          | Config.Baseline -> true
          | Config.Optimized -> identifier_present old line
        in
        if
          id_ok
          && embedded_matches ~stored:(L.extract_mac line)
               ~computed:
                 (Mac.truncate ~width:old.config.Config.mac_bits macs.(i))
        then strip old line
        else Ptg_pte.Line.copy line
      in
      write ~addr (process_write t ~addr logical))
    items;
  t.stats.rekeys <- t.stats.rekeys + 1;
  obs_incr t (fun o -> o.o_rekeys);
  obs_event t (Ptg_obs.Trace.Rekey { writes = !count });
  emit t (Rekey_completed { writes = !count })

(* Deferred verification: reads are staged into a lane buffer and resolved
   together when the buffer reaches capacity (or on an explicit flush).
   The flush computes every needed MAC with one [Mac.compute_batch], then
   replays the scalar decision logic per request in stage order with the
   precomputed MAC substituted in — so stats, traces, OS events and
   results are exactly those of calling [process_read] sequentially
   (pinned by the differential tests). Corrections, being rare and
   iterative, fall back to the scalar cipher inside [Correction]. *)
module Batch = struct
  type engine = t

  type nonrec t = {
    engine : engine;
    capacity : int;
    mutable n : int;
    addrs : int64 array;
    is_ptes : bool array;
    lines : Ptg_pte.Line.t array;
    ks : (read_result -> unit) array;
    (* flush scratch: lane -> request mapping *)
    lane_addrs : int64 array;
    lane_lines : Ptg_pte.Line.t array;
    lane_req : int array;
  }

  let nop (_ : read_result) = ()

  let create ?(capacity = Mac.default_batch_capacity) engine =
    if capacity < 1 then invalid_arg "Engine.Batch.create: capacity";
    {
      engine;
      capacity;
      n = 0;
      addrs = Array.make capacity 0L;
      is_ptes = Array.make capacity false;
      lines = Array.make capacity [||];
      ks = Array.make capacity nop;
      lane_addrs = Array.make capacity 0L;
      lane_lines = Array.make capacity [||];
      lane_req = Array.make capacity (-1);
    }

  let capacity b = b.capacity
  let pending b = b.n

  let flush b =
    if b.n > 0 then begin
      let e = b.engine in
      let module L = (val layout e : Layout.S) in
      (* Which staged reads will pay for a cipher call? The predicate only
         depends on engine state that reads never mutate, so deciding for
         the whole batch up front matches per-request decisions. *)
      let k = ref 0 in
      for i = 0 to b.n - 1 do
        if needs_mac e ~addr:b.addrs.(i) ~is_pte:b.is_ptes.(i) b.lines.(i)
        then begin
          b.lane_addrs.(!k) <- b.addrs.(i);
          b.lane_lines.(!k) <- L.masked_for_mac b.lines.(i);
          b.lane_req.(!k) <- i;
          incr k
        end
      done;
      let macs =
        Mac.compute_batch e.mac_batch e.key ~n:!k ~addrs:b.lane_addrs
          ~lines:b.lane_lines
      in
      let next_lane = ref 0 in
      for i = 0 to b.n - 1 do
        let mac =
          if !next_lane < !k && b.lane_req.(!next_lane) = i then begin
            let m =
              Mac.truncate ~width:e.config.Config.mac_bits macs.(!next_lane)
            in
            incr next_lane;
            Some m
          end
          else None
        in
        let r =
          process_read_with ?mac e ~addr:b.addrs.(i) ~is_pte:b.is_ptes.(i)
            b.lines.(i)
        in
        b.ks.(i) r
      done;
      (* Drop line references so staged lines don't outlive the flush. *)
      for i = 0 to b.n - 1 do
        b.lines.(i) <- [||];
        b.ks.(i) <- nop
      done;
      b.n <- 0
    end

  let stage b ~addr ~is_pte line k =
    b.addrs.(b.n) <- addr;
    b.is_ptes.(b.n) <- is_pte;
    b.lines.(b.n) <- Ptg_pte.Line.copy line;
    b.ks.(b.n) <- k;
    b.n <- b.n + 1;
    if b.n = b.capacity then flush b
end

let pte_bounds_check t line =
  let module L = (val layout t : Layout.S) in
  Array.exists L.pfn_out_of_bounds line

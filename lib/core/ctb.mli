(** Collision Tracking Buffer (paper Section IV-D).

    A tiny SRAM table of line addresses whose {e data} happened to equal
    the MAC that would be computed for them — reads of these lines must be
    forwarded untouched or the "MAC removal" would corrupt real data.
    Natural collisions are a 2^-96 event; a full CTB is therefore a strong
    attack indicator and triggers re-keying (Section VII-B). *)

type t

val create : capacity:int -> t
(** [capacity] is 4 in the paper (20 bytes of SRAM). *)

val capacity : t -> int
val size : t -> int
val is_full : t -> bool

val mem : t -> int64 -> bool
(** Is this line address tracked? Consulted on every DRAM read. *)

val add : t -> int64 -> [ `Added | `Already_present | `Full ]
(** Track a colliding line. [`Full] means the entry could not be inserted
    — the caller must re-key. *)

val remove : t -> int64 -> unit
(** The OS rewrote the line with benign data (Section VII-B). *)

val clear : t -> unit
(** Re-keying voids all tracked collisions. *)

val entries : t -> int64 list

val set_entries : t -> int64 list -> unit
(** Overwrite the tracked entries (checkpoint restore); newest first, as
    {!entries} returns them. Raises [Invalid_argument] beyond capacity. *)


val sram_bytes : t -> int
(** 5 bytes per entry (a 34-bit line address within 1 TB, padded). *)

type t = { capacity : int; mutable entries : int64 list }

let create ~capacity =
  if capacity < 1 then invalid_arg "Ctb.create: capacity";
  { capacity; entries = [] }

let capacity t = t.capacity
let size t = List.length t.entries
let is_full t = size t >= t.capacity
let mem t addr = List.exists (Int64.equal (Ptg_pte.Line.line_addr addr)) t.entries

let add t addr =
  let addr = Ptg_pte.Line.line_addr addr in
  if List.exists (Int64.equal addr) t.entries then `Already_present
  else if is_full t then `Full
  else begin
    t.entries <- addr :: t.entries;
    `Added
  end

let remove t addr =
  let addr = Ptg_pte.Line.line_addr addr in
  t.entries <- List.filter (fun a -> not (Int64.equal a addr)) t.entries

let clear t = t.entries <- []
let entries t = t.entries

let set_entries t addrs =
  if List.length addrs > t.capacity then invalid_arg "Ctb.set_entries: capacity";
  t.entries <- List.map Ptg_pte.Line.line_addr addrs
let sram_bytes t = 5 * t.capacity

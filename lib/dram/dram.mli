(** The DRAM device: banks with row buffers, backing storage for cacheline
    data, per-row activation counting, and refresh.

    This is both a timing model (row-buffer outcome per access) and a
    functional store (lines actually hold data so Rowhammer flips corrupt
    real bits that PT-Guard must then detect/correct). Activation and
    refresh events are exposed to observers — the Rowhammer fault model and
    the TRR-style mitigations both subscribe. *)

type t

type access_result = {
  latency : int;                       (** cycles, excluding integrity-engine delay *)
  outcome : Timing.row_buffer_outcome;
  coords : Geometry.coords;
}

val create :
  ?geometry:Geometry.t ->
  ?timing:Timing.t ->
  ?obs:Ptg_obs.Sink.t ->
  ?hot_row_threshold:int ->
  unit ->
  t
(** Defaults: {!Geometry.ddr4_4gb}, {!Timing.ddr4_3ghz}. With [obs], the
    device counts activations, row-buffer outcomes and refresh epochs
    ([dram_*]) and records a [Row_activation] trace event the first time a
    row's per-window activation count reaches [hot_row_threshold]
    (default 4096, roughly half a DDR4 Rowhammer threshold). *)

val geometry : t -> Geometry.t
val timing : t -> Timing.t

val on_activate : t -> (Geometry.coords -> unit) -> unit
(** Register an observer called on every row activation (row-buffer miss
    or conflict), before the access completes. *)

val subscribe_refresh : t -> (channel:int -> bank:int -> row:int -> unit) -> unit
(** Observer for targeted row refreshes (issued by mitigations) and for
    the periodic all-bank refresh sweep (called per refreshed row only for
    targeted refreshes; the periodic sweep is signalled via {!on_refresh_epoch}). *)

val on_refresh_epoch : t -> (unit -> unit) -> unit
(** Observer called when the global refresh window rolls over (all rows
    considered refreshed). *)

val access : t -> now:int -> addr:int64 -> is_write:bool -> access_result
(** Perform a timed access at cycle [now]. Advancing [now] past the
    refresh window triggers the epoch rollover. *)

val access_fast : t -> now:int -> addr:int64 -> is_write:bool -> int
(** Allocation-free variant of {!access}: same device-state updates,
    returns only the latency in cycles. The decoded outcome and channel
    of the most recent [access_fast] (or {!access}, which is a wrapper)
    are published via {!last_outcome} / {!last_channel} and stay valid
    until the next access — the same publication protocol as
    [Cache.access_fast]. *)

val last_outcome : t -> Timing.row_buffer_outcome
val last_channel : t -> int

val read_line : t -> int64 -> Ptg_pte.Line.t
(** Functional read of the 64-byte line containing [addr]. Unwritten lines
    read as zero. *)

val write_line : t -> int64 -> Ptg_pte.Line.t -> unit
(** Functional write (line-aligned). *)

val refresh_row : t -> channel:int -> bank:int -> row:int -> unit
(** Targeted refresh (the mitigation action): notifies subscribers and
    resets the row's activation count. *)

val activations : t -> channel:int -> bank:int -> row:int -> int
(** Activations of the row since it was last refreshed. *)

val lines_in_row : t -> channel:int -> bank:int -> row:int -> (int64 * Ptg_pte.Line.t) list
(** All (address, line) pairs currently stored in the given row, in
    ascending address order — stable across checkpoint save/restore, which
    matters because fault injection draws RNG per visited line. *)

val flip_stored_bit : t -> addr:int64 -> bit:int -> unit
(** Corrupt one bit of the stored line at [addr] (fault injection). *)

val total_activations : t -> int
(** Lifetime activate-command count (for bench reporting). *)

val iter_stored : t -> (int64 -> Ptg_pte.Line.t -> unit) -> unit
(** Visit every stored (non-zero-initialized) line in ascending address
    order. The callback receives copies; mutating storage during iteration
    is safe only via {!write_line} on already-visited addresses (used by
    re-keying, which snapshots addresses first). *)

val stored_line_count : t -> int

(** {2 Checkpointable state}

    The device's full mutable state as plain data: per-bank open row and
    nonzero activation counts (sparse), the stored lines (address-sorted),
    the refresh epoch, and the published last-access decode. *)

type bank_snapshot = { bs_open_row : int; bs_activations : (int * int) list }

type state = {
  s_banks : bank_snapshot array array;
  s_storage : (int64 * Ptg_pte.Line.t) list;
  s_epoch : int;
  s_total_activations : int;
  s_last_outcome : Timing.row_buffer_outcome;
  s_last_channel : int;
  s_last_rank : int;
  s_last_bank : int;
  s_last_row : int;
  s_last_col : int;
}

val state : t -> state
(** Defensive copy of the current device state. *)

val set_state : t -> state -> unit
(** Overwrite the device with captured state. Requires identical
    geometry (bank/row counts); raises [Invalid_argument] otherwise.
    Listeners are untouched. *)

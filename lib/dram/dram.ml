(* Row state is kept allocation-free: [open_row] uses -1 as the
   "no open row" sentinel instead of an option, and per-row activation
   counts live in a flat int array indexed by row (rows_per_bank entries
   per bank) rather than a hashtable — the simulators hit [access] once
   per LLC miss, so the per-access cost here is on the fig6 critical
   path. *)
type bank_state = {
  mutable open_row : int; (* -1 = closed *)
  activations : int array; (* row -> count since last refresh *)
}

type obs = {
  o_activations : Ptg_obs.Registry.counter;
  o_row_hits : Ptg_obs.Registry.counter;
  o_row_conflicts : Ptg_obs.Registry.counter;
  o_row_closed : Ptg_obs.Registry.counter;
  o_refresh_epochs : Ptg_obs.Registry.counter;
  o_hot_row_threshold : int;
  o_trace : Ptg_obs.Trace.t;
}

let obs_of_sink ~hot_row_threshold sink =
  let c = Ptg_obs.Registry.counter (Ptg_obs.Sink.registry sink) in
  {
    o_activations = c "dram_activations";
    o_row_hits = c "dram_row_hits";
    o_row_conflicts = c "dram_row_conflicts";
    o_row_closed = c "dram_row_closed";
    o_refresh_epochs = c "dram_refresh_epochs";
    o_hot_row_threshold = hot_row_threshold;
    o_trace = Ptg_obs.Sink.trace sink;
  }

type t = {
  geometry : Geometry.t;
  timing : Timing.t;
  banks : bank_state array array; (* channel -> flattened bank *)
  storage : (int64, Ptg_pte.Line.t) Hashtbl.t;
  obs : obs option;
  mutable epoch : int;
  mutable activate_listeners : (Geometry.coords -> unit) list;
  mutable refresh_listeners : (channel:int -> bank:int -> row:int -> unit) list;
  mutable epoch_listeners : (unit -> unit) list;
  mutable total_activations : int;
  (* Decode/outcome of the last [access_fast], valid until the next
     access — same publication protocol as [Cache.access_fast]. *)
  mutable last_outcome : Timing.row_buffer_outcome;
  mutable last_channel : int;
  mutable last_rank : int;
  mutable last_bank : int;
  mutable last_row : int;
  mutable last_col : int;
}

type access_result = {
  latency : int;
  outcome : Timing.row_buffer_outcome;
  coords : Geometry.coords;
}

let create ?(geometry = Geometry.ddr4_4gb) ?(timing = Timing.ddr4_3ghz)
    ?obs ?(hot_row_threshold = 4096) () =
  {
    geometry;
    timing;
    banks =
      Array.init geometry.Geometry.channels (fun _ ->
          Array.init (Geometry.total_banks geometry) (fun _ ->
              {
                open_row = -1;
                activations = Array.make geometry.Geometry.rows_per_bank 0;
              }));
    storage = Hashtbl.create 4096;
    obs = Option.map (obs_of_sink ~hot_row_threshold) obs;
    epoch = 0;
    activate_listeners = [];
    refresh_listeners = [];
    epoch_listeners = [];
    total_activations = 0;
    last_outcome = Timing.Hit;
    last_channel = 0;
    last_rank = 0;
    last_bank = 0;
    last_row = 0;
    last_col = 0;
  }

let geometry t = t.geometry
let timing t = t.timing
let on_activate t f = t.activate_listeners <- f :: t.activate_listeners
let subscribe_refresh t f = t.refresh_listeners <- f :: t.refresh_listeners
let on_refresh_epoch t f = t.epoch_listeners <- f :: t.epoch_listeners

let roll_epoch_if_needed t ~now =
  let epoch = now / t.timing.Timing.refresh_interval in
  if epoch > t.epoch then begin
    t.epoch <- epoch;
    (match t.obs with
    | None -> ()
    | Some o -> Ptg_obs.Registry.incr o.o_refresh_epochs);
    (* All rows refreshed: activation counts restart. *)
    Array.iter
      (fun channel_banks ->
        Array.iter
          (fun b ->
            Array.fill b.activations 0 (Array.length b.activations) 0;
            b.open_row <- -1)
          channel_banks)
      t.banks;
    List.iter (fun f -> f ()) t.epoch_listeners
  end

let access_fast t ~now ~addr ~is_write =
  roll_epoch_if_needed t ~now;
  (* Inline [Geometry.decode]: identical arithmetic, but no coords record
     on the hit path — the record is materialized only for listeners. *)
  let g = t.geometry in
  let line = Int64.to_int (Int64.shift_right_logical addr 6) in
  let col = line mod g.Geometry.columns in
  let rest = line / g.Geometry.columns in
  let channel = rest mod g.Geometry.channels in
  let rest = rest / g.Geometry.channels in
  let banks = Geometry.total_banks g in
  let bank_raw = rest mod banks in
  let rest = rest / banks in
  let row = rest mod g.Geometry.rows_per_bank in
  let bank = (bank_raw lxor (row land (banks - 1))) mod banks in
  t.last_channel <- channel;
  t.last_rank <- bank / g.Geometry.banks_per_rank;
  t.last_bank <- bank;
  t.last_row <- row;
  t.last_col <- col;
  let b = Array.unsafe_get (Array.unsafe_get t.banks channel) bank in
  let outcome : Timing.row_buffer_outcome =
    if b.open_row = row then Timing.Hit
    else if b.open_row >= 0 then Timing.Conflict
    else Timing.Closed_row
  in
  t.last_outcome <- outcome;
  (match outcome with
  | Timing.Hit -> ()
  | Timing.Closed_row | Timing.Conflict ->
      b.open_row <- row;
      Array.unsafe_set b.activations row
        (Array.unsafe_get b.activations row + 1);
      t.total_activations <- t.total_activations + 1;
      (match t.activate_listeners with
      | [] -> ()
      | ls ->
          let coords =
            {
              Geometry.channel;
              rank = t.last_rank;
              bank;
              row;
              col;
            }
          in
          List.iter (fun f -> f coords) ls));
  (match t.obs with
  | None -> ()
  | Some o ->
      (match outcome with
      | Timing.Hit -> Ptg_obs.Registry.incr o.o_row_hits
      | Timing.Conflict -> Ptg_obs.Registry.incr o.o_row_conflicts
      | Timing.Closed_row -> Ptg_obs.Registry.incr o.o_row_closed);
      if outcome <> Timing.Hit then begin
        Ptg_obs.Registry.incr o.o_activations;
        let count = b.activations.(row) in
        (* Fire exactly once per refresh window, on the crossing access. *)
        if count = o.o_hot_row_threshold then
          Ptg_obs.Trace.record o.o_trace
            (Ptg_obs.Trace.Row_activation { channel; bank; row; count })
      end);
  if is_write then Timing.write_latency t.timing outcome
  else Timing.read_latency t.timing outcome

let last_outcome t = t.last_outcome
let last_channel t = t.last_channel

let access t ~now ~addr ~is_write =
  let latency = access_fast t ~now ~addr ~is_write in
  {
    latency;
    outcome = t.last_outcome;
    coords =
      {
        Geometry.channel = t.last_channel;
        rank = t.last_rank;
        bank = t.last_bank;
        row = t.last_row;
        col = t.last_col;
      };
  }

let read_line t addr =
  let key = Ptg_pte.Line.line_addr addr in
  match Hashtbl.find_opt t.storage key with
  | Some line -> Ptg_pte.Line.copy line
  | None -> Ptg_pte.Line.create ()

let write_line t addr line =
  Hashtbl.replace t.storage (Ptg_pte.Line.line_addr addr) (Ptg_pte.Line.copy line)

let refresh_row t ~channel ~bank ~row =
  let b = t.banks.(channel).(bank) in
  b.activations.(row) <- 0;
  List.iter (fun f -> f ~channel ~bank ~row) t.refresh_listeners

let activations t ~channel ~bank ~row = t.banks.(channel).(bank).activations.(row)

(* Sorted by address: [Hashtbl.fold] order depends on the table's
   insertion/resize history, which a checkpoint restore cannot reproduce —
   and the fault model draws RNG per line it visits, so iteration order is
   part of the deterministic stream. *)
let lines_in_row t ~channel ~bank ~row =
  Hashtbl.fold
    (fun addr line acc ->
      let c = Geometry.decode t.geometry addr in
      if c.Geometry.channel = channel && c.Geometry.bank = bank && c.Geometry.row = row
      then (addr, Ptg_pte.Line.copy line) :: acc
      else acc)
    t.storage []
  |> List.sort (fun (a, _) (b, _) -> Int64.compare a b)

let flip_stored_bit t ~addr ~bit =
  let key = Ptg_pte.Line.line_addr addr in
  let line =
    match Hashtbl.find_opt t.storage key with
    | Some l -> l
    | None ->
        let l = Ptg_pte.Line.create () in
        Hashtbl.replace t.storage key l;
        l
  in
  Hashtbl.replace t.storage key (Ptg_pte.Line.flip_bit line bit)

let total_activations t = t.total_activations

(* Address-sorted for the same reason as [lines_in_row]: rekey sweeps and
   checkpoint encoding must visit lines in an order independent of the
   hashtable's history. *)
let iter_stored t f =
  let snapshot = Hashtbl.fold (fun addr line acc -> (addr, Ptg_pte.Line.copy line) :: acc) t.storage [] in
  List.iter
    (fun (addr, line) -> f addr line)
    (List.sort (fun (a, _) (b, _) -> Int64.compare a b) snapshot)

let stored_line_count t = Hashtbl.length t.storage

(* ------------------------------------------------------------------ *)
(* Checkpointable state                                                *)
(* ------------------------------------------------------------------ *)

type bank_snapshot = { bs_open_row : int; bs_activations : (int * int) list }

type state = {
  s_banks : bank_snapshot array array;
  s_storage : (int64 * Ptg_pte.Line.t) list; (* address-sorted *)
  s_epoch : int;
  s_total_activations : int;
  s_last_outcome : Timing.row_buffer_outcome;
  s_last_channel : int;
  s_last_rank : int;
  s_last_bank : int;
  s_last_row : int;
  s_last_col : int;
}

let state t =
  let snap_bank b =
    let acts = ref [] in
    for row = Array.length b.activations - 1 downto 0 do
      if b.activations.(row) <> 0 then acts := (row, b.activations.(row)) :: !acts
    done;
    { bs_open_row = b.open_row; bs_activations = !acts }
  in
  let storage = ref [] in
  iter_stored t (fun addr line -> storage := (addr, line) :: !storage);
  {
    s_banks = Array.map (Array.map snap_bank) t.banks;
    s_storage = List.rev !storage;
    s_epoch = t.epoch;
    s_total_activations = t.total_activations;
    s_last_outcome = t.last_outcome;
    s_last_channel = t.last_channel;
    s_last_rank = t.last_rank;
    s_last_bank = t.last_bank;
    s_last_row = t.last_row;
    s_last_col = t.last_col;
  }

let set_state t s =
  if
    Array.length s.s_banks <> Array.length t.banks
    || Array.exists2
         (fun a b -> Array.length a <> Array.length b)
         s.s_banks t.banks
  then invalid_arg "Dram.set_state: bank geometry mismatch";
  Array.iteri
    (fun ci channel_banks ->
      Array.iteri
        (fun bi snap ->
          let b = t.banks.(ci).(bi) in
          b.open_row <- snap.bs_open_row;
          Array.fill b.activations 0 (Array.length b.activations) 0;
          List.iter
            (fun (row, count) ->
              if row < 0 || row >= Array.length b.activations then
                invalid_arg "Dram.set_state: row out of range";
              b.activations.(row) <- count)
            snap.bs_activations)
        channel_banks)
    s.s_banks;
  Hashtbl.reset t.storage;
  List.iter
    (fun (addr, line) ->
      Hashtbl.replace t.storage (Ptg_pte.Line.line_addr addr)
        (Ptg_pte.Line.copy line))
    s.s_storage;
  t.epoch <- s.s_epoch;
  t.total_activations <- s.s_total_activations;
  t.last_outcome <- s.s_last_outcome;
  t.last_channel <- s.s_last_channel;
  t.last_rank <- s.s_last_rank;
  t.last_bank <- s.s_last_bank;
  t.last_row <- s.s_last_row;
  t.last_col <- s.s_last_col

(** Rowhammer disturbance fault model.

    Physics abstracted to what the defense can observe: every activation of
    a row leaks charge from its neighbours; when a victim row's accumulated
    disturbance since its last refresh crosses the Rowhammer threshold
    (RTH), bits of data stored in that row flip with a per-bit probability,
    subject to the cell's orientation (true cells flip 1->0, anti cells
    0->1 — the basis of the Monotonic-Pointers defense the paper compares
    against).

    Crucially for the breakthrough attacks: a {e refresh} of a row also
    activates it, so mitigation-issued victim refreshes disturb the
    refreshed row's own neighbours ([refresh_disturb_weight]). This is the
    Half-Double effect — hammering row A makes a TRR-style mitigation
    refresh A±1 so intensely that A±2 flips.

    The model subscribes to a {!Ptg_dram.Dram.t}'s activation and refresh
    events and injects flips directly into its stored lines. *)

type orientation = All_true | All_anti | Per_row_hash
(** How cell orientation is assigned. [Per_row_hash] (default) gives each
    row a pseudo-random orientation, stable across runs. *)

type config = {
  rth : int;                    (** Rowhammer threshold (activations) *)
  p_flip : float;               (** per-bit flip probability at threshold *)
  distance2_weight : float;     (** disturbance from activations 2 rows away *)
  refresh_disturb_weight : float; (** disturbance a refresh inflicts at distance 1 *)
  orientation : orientation;
}

val ddr4 : config
(** RTH = 10K, worst-case p_flip ~ 0.2% (Kim et al., ISCA 2020). *)

val lpddr4 : config
(** RTH = 4.8K, worst-case p_flip ~ 1%. *)

val legacy_ddr3 : config
(** RTH = 139K (Kim et al., ISCA 2014) — the 2014 baseline. *)

type flip = { addr : int64; bit : int; row : int; bank : int; channel : int }

type t

val attach : ?config:config -> rng:Ptg_util.Rng.t -> Ptg_dram.Dram.t -> t
(** Create the fault model and subscribe it to the DRAM's activation and
    refresh events. Default config: {!ddr4}. *)

val config : t -> config
val flips : t -> flip list
(** All flips injected so far, most recent first. *)

val flip_count : t -> int
val clear_flips : t -> unit

val on_flip : t -> (flip -> unit) -> unit

(** {2 Checkpointable state}

    The model's own RNG stream, the accumulated per-row disturbance, and
    the flip journal. Listeners and the DRAM subscription are structural
    and survive in the re-created model. *)

type state = {
  s_rng : int64 array;
  s_disturbance : ((int * int * int) * float) list;
  s_flips : flip list;
  s_flip_count : int;
}

val state : t -> state
val set_state : t -> state -> unit
val disturbance : t -> channel:int -> bank:int -> row:int -> float
val row_is_true_cell : t -> row:int -> bool
(** Orientation assigned to a row (under [Per_row_hash]). *)

type orientation = All_true | All_anti | Per_row_hash

type config = {
  rth : int;
  p_flip : float;
  distance2_weight : float;
  refresh_disturb_weight : float;
  orientation : orientation;
}

let ddr4 =
  {
    rth = 10_000;
    p_flip = 0.002;
    distance2_weight = 0.1;
    refresh_disturb_weight = 1.0;
    orientation = Per_row_hash;
  }

let lpddr4 = { ddr4 with rth = 4_800; p_flip = 0.01 }
let legacy_ddr3 = { ddr4 with rth = 139_000; p_flip = 0.0005 }

type flip = { addr : int64; bit : int; row : int; bank : int; channel : int }

type t = {
  config : config;
  rng : Ptg_util.Rng.t;
  dram : Ptg_dram.Dram.t;
  disturbance : (int * int * int, float) Hashtbl.t; (* channel, bank, row *)
  mutable flips : flip list;
  mutable flip_count : int;
  mutable flip_listeners : (flip -> unit) list;
}

let config t = t.config
let flips t = t.flips
let flip_count t = t.flip_count

let clear_flips t =
  t.flips <- [];
  t.flip_count <- 0

let on_flip t f = t.flip_listeners <- f :: t.flip_listeners

let disturbance t ~channel ~bank ~row =
  Option.value ~default:0.0 (Hashtbl.find_opt t.disturbance (channel, bank, row))

(* Stable pseudo-random row orientation: a cheap integer hash of the row
   number, independent of the experiment's RNG stream. *)
let row_is_true_cell _t ~row =
  let h = row * 0x9E3779B1 in
  let h = h lxor (h lsr 16) in
  h land 1 = 0

let orientation_allows t ~row ~current_bit =
  match t.config.orientation with
  | All_true -> current_bit (* true cells: only 1 -> 0 *)
  | All_anti -> not current_bit
  | Per_row_hash ->
      if row_is_true_cell t ~row then current_bit else not current_bit

(* Victim row crossed the threshold: visit every stored line in the row and
   flip each eligible bit with probability p_flip. Sparse storage means
   rows holding no data produce no observable flips, which mirrors reality:
   flips in unused memory are harmless. *)
let inject_flips t ~channel ~bank ~row =
  let lines = Ptg_dram.Dram.lines_in_row t.dram ~channel ~bank ~row in
  List.iter
    (fun (addr, line) ->
      (* Geometric skipping: jump straight to the next flipped bit. *)
      let bit = ref (Ptg_util.Rng.geometric t.rng t.config.p_flip) in
      while !bit < 512 do
        let current = Ptg_pte.Line.get_bit line !bit in
        if orientation_allows t ~row ~current_bit:current then begin
          Ptg_dram.Dram.flip_stored_bit t.dram ~addr ~bit:!bit;
          let f = { addr; bit = !bit; row; bank; channel } in
          t.flips <- f :: t.flips;
          t.flip_count <- t.flip_count + 1;
          List.iter (fun g -> g f) t.flip_listeners
        end;
        bit := !bit + 1 + Ptg_util.Rng.geometric t.rng t.config.p_flip
      done)
    lines

let add_disturbance t ~channel ~bank ~row amount =
  let rows = (Ptg_dram.Dram.geometry t.dram).Ptg_dram.Geometry.rows_per_bank in
  if row >= 0 && row < rows then begin
    let key = (channel, bank, row) in
    let d = Option.value ~default:0.0 (Hashtbl.find_opt t.disturbance key) +. amount in
    if d >= float_of_int t.config.rth then begin
      Hashtbl.replace t.disturbance key 0.0;
      inject_flips t ~channel ~bank ~row
    end
    else Hashtbl.replace t.disturbance key d
  end

let handle_activation t (c : Ptg_dram.Geometry.coords) =
  let channel = c.Ptg_dram.Geometry.channel
  and bank = c.Ptg_dram.Geometry.bank
  and row = c.Ptg_dram.Geometry.row in
  add_disturbance t ~channel ~bank ~row:(row - 1) 1.0;
  add_disturbance t ~channel ~bank ~row:(row + 1) 1.0;
  if t.config.distance2_weight > 0.0 then begin
    add_disturbance t ~channel ~bank ~row:(row - 2) t.config.distance2_weight;
    add_disturbance t ~channel ~bank ~row:(row + 2) t.config.distance2_weight
  end

let handle_refresh t ~channel ~bank ~row =
  (* The refreshed row itself is restored... *)
  Hashtbl.remove t.disturbance (channel, bank, row);
  (* ...but refreshing activates it, disturbing its own neighbours: the
     Half-Double lever. *)
  if t.config.refresh_disturb_weight > 0.0 then begin
    add_disturbance t ~channel ~bank ~row:(row - 1) t.config.refresh_disturb_weight;
    add_disturbance t ~channel ~bank ~row:(row + 1) t.config.refresh_disturb_weight
  end

type state = {
  s_rng : int64 array;
  s_disturbance : ((int * int * int) * float) list; (* key-sorted *)
  s_flips : flip list;
  s_flip_count : int;
}

let state t =
  {
    s_rng = Ptg_util.Rng.state t.rng;
    s_disturbance =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.disturbance []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    s_flips = t.flips;
    s_flip_count = t.flip_count;
  }

let set_state t s =
  Ptg_util.Rng.set_state t.rng s.s_rng;
  Hashtbl.reset t.disturbance;
  List.iter (fun (k, v) -> Hashtbl.replace t.disturbance k v) s.s_disturbance;
  t.flips <- s.s_flips;
  t.flip_count <- s.s_flip_count

let attach ?(config = ddr4) ~rng dram =
  let t =
    {
      config;
      rng;
      dram;
      disturbance = Hashtbl.create 1024;
      flips = [];
      flip_count = 0;
      flip_listeners = [];
    }
  in
  Ptg_dram.Dram.on_activate dram (handle_activation t);
  Ptg_dram.Dram.subscribe_refresh dram (fun ~channel ~bank ~row ->
      handle_refresh t ~channel ~bank ~row);
  Ptg_dram.Dram.on_refresh_epoch dram (fun () -> Hashtbl.reset t.disturbance);
  t

(* PT-Guard benchmark harness.

   Part 1 — Bechamel micro-benchmarks of every hot operation the paper
   costs out in hardware (Section IV-F / V-E): the QARMA cipher, the MAC,
   both write-path classifications, both read paths, and the correction
   engine's best and worst cases.

   Part 2 — regeneration of every table and figure of the paper via the
   experiment harness (the same code `bin/ptguard_cli.exe` drives), at
   bench-friendly sizes. Set PTG_BENCH_FULL=1 for the paper-scale runs
   recorded in EXPERIMENTS.md. The experiment sweeps fan out across
   PTG_BENCH_JOBS worker domains (default: the recommended domain count);
   results are bit-identical for any job count.

   Part 3 — a serial-vs-parallel wall-clock comparison of the Figure 6
   sweep through Ptg_util.Pool, recorded in EXPERIMENTS.md's "Parallel
   runs" section.

   Run with: dune exec bench/main.exe *)

open Bechamel

let full = Sys.getenv_opt "PTG_BENCH_FULL" = Some "1"

let jobs =
  match Sys.getenv_opt "PTG_BENCH_JOBS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some j when j >= 1 -> j
      | _ -> invalid_arg "PTG_BENCH_JOBS must be a positive integer")
  | None -> Ptg_util.Pool.default_jobs ()

(* ------------------------------------------------------------------ *)
(* Micro-benchmark fixtures                                            *)
(* ------------------------------------------------------------------ *)

let rng = Ptg_util.Rng.create 2023L
let key = Ptg_crypto.Qarma.key_of_rng rng
let baseline_engine = Ptguard.Engine.create ~config:Ptguard.Config.baseline ~rng ()
let optimized_engine = Ptguard.Engine.create ~config:Ptguard.Config.optimized ~rng ()

let pte_line =
  Array.init 8 (fun i ->
      Ptg_pte.X86.make ~writable:true ~user:true ~pfn:(Int64.of_int (0x52700 + i)) ())

let data_line = Array.init 8 (fun i -> Int64.logor 0xDEAD_0000_0000_0000L (Int64.of_int i))
let addr = 0x7F8A_1000L
let stored_pte = Ptguard.Engine.process_write baseline_engine ~addr pte_line
let stored_pte_opt = Ptguard.Engine.process_write optimized_engine ~addr pte_line
let single_flip = Ptg_pte.Line.flip_bit stored_pte ((3 * 64) + 20)

let hopeless =
  (* MAC shredded beyond soft match: correction runs all G_max guesses. *)
  List.fold_left Ptg_pte.Line.flip_bit stored_pte [ 40; 42; 44; 46; 48; 50; 104; 106 ]

let block_p = Ptg_crypto.Block128.make ~hi:0x0123456789ABCDEFL ~lo:0xFEDCBA9876543210L
let block_t = Ptg_crypto.Block128.make ~hi:0xAAAAAAAAAAAAAAAAL ~lo:0x5555555555555555L
let masked = Ptg_pte.Protection.masked_for_mac Ptg_pte.Protection.default pte_line

let workload_stream =
  Ptg_workloads.Workload.stream (Ptg_util.Rng.create 11L)
    (Option.get (Ptg_workloads.Workload.by_name "xalancbmk"))

let timing_core = Ptg_cpu.Core.create ~guard:Ptg_cpu.Guard_timing.unprotected ()
let dram = Ptg_dram.Dram.create ()
let dram_cursor = ref 0

(* Observability fixtures (after the unobserved engines, so their RNG
   draws are unchanged). *)
let obs_sink = Ptg_obs.Sink.create ()

let observed_engine =
  Ptguard.Engine.create ~config:Ptguard.Config.baseline ~obs:obs_sink ~rng ()

let stored_pte_obs = Ptguard.Engine.process_write observed_engine ~addr pte_line
let obs_counter = Ptg_obs.Registry.counter (Ptg_obs.Sink.registry obs_sink) "bench_ticks"

let micro_tests =
  [
    Test.make ~name:"qarma128/encrypt"
      (Staged.stage (fun () -> Ptg_crypto.Qarma.encrypt key ~tweak:block_t block_p));
    Test.make ~name:"qarma128/decrypt"
      (Staged.stage (fun () -> Ptg_crypto.Qarma.decrypt key ~tweak:block_t block_p));
    Test.make ~name:"mac/compute-64B-line"
      (Staged.stage (fun () -> Ptg_crypto.Mac.compute key ~addr masked));
    Test.make ~name:"pattern/basic-96bit"
      (Staged.stage (fun () ->
           Ptg_pte.Protection.matches_basic_pattern Ptg_pte.Protection.default pte_line));
    Test.make ~name:"pattern/extended-152bit"
      (Staged.stage (fun () ->
           Ptg_pte.Protection.matches_extended_pattern Ptg_pte.Protection.default pte_line));
    Test.make ~name:"engine/write-pte-line"
      (Staged.stage (fun () -> Ptguard.Engine.process_write baseline_engine ~addr pte_line));
    Test.make ~name:"engine/write-data-line"
      (Staged.stage (fun () -> Ptguard.Engine.process_write baseline_engine ~addr data_line));
    Test.make ~name:"engine/read-pte-verify"
      (Staged.stage (fun () ->
           Ptguard.Engine.process_read baseline_engine ~addr ~is_pte:true stored_pte));
    Test.make ~name:"engine/read-pte-verify-optimized"
      (Staged.stage (fun () ->
           Ptguard.Engine.process_read optimized_engine ~addr ~is_pte:true stored_pte_opt));
    Test.make ~name:"engine/read-data-optimized-skip"
      (Staged.stage (fun () ->
           Ptguard.Engine.process_read optimized_engine ~addr ~is_pte:false data_line));
    Test.make ~name:"correction/single-flip"
      (Staged.stage (fun () ->
           Ptguard.Correction.correct Ptguard.Config.baseline key ~addr single_flip));
    Test.make ~name:"correction/worst-case-Gmax"
      (Staged.stage (fun () ->
           Ptguard.Correction.correct Ptguard.Config.baseline key ~addr hopeless));
    Test.make ~name:"obs/counter-incr"
      (Staged.stage (fun () -> Ptg_obs.Registry.incr obs_counter));
    Test.make ~name:"engine/read-pte-verify-observed"
      (Staged.stage (fun () ->
           Ptguard.Engine.process_read observed_engine ~addr ~is_pte:true
             stored_pte_obs));
    Test.make ~name:"dram/timed-access"
      (Staged.stage (fun () ->
           incr dram_cursor;
           Ptg_dram.Dram.access dram ~now:!dram_cursor
             ~addr:(Int64.of_int (!dram_cursor * 8192))
             ~is_write:false));
    Test.make ~name:"sim/core-1K-instrs"
      (Staged.stage (fun () ->
           Ptg_cpu.Core.run timing_core ~instrs:1000 ~stream:workload_stream));
  ]

let run_micro () =
  print_endline "=== Micro-benchmarks (Bechamel, monotonic clock) ===";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if full then 1.0 else 0.25))
      ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg
      [ Toolkit.Instance.monotonic_clock ]
      (Test.make_grouped ~name:"ptguard" micro_tests)
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) -> est
        | _ -> Float.nan
      in
      rows := (name, est) :: !rows)
    results;
  List.iter
    (fun (name, ns) -> Printf.printf "  %-40s %14.1f ns/op\n" name ns)
    (List.sort compare !rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Table/figure regeneration                                           *)
(* ------------------------------------------------------------------ *)

let section title = Printf.printf "\n=== %s ===\n%!" title

let run_experiments () =
  let seed = 42L in
  section "Tables I-IV and cost model";
  Ptg_sim.Tables_exp.print_all ();
  section "Security analysis (Sections IV-G, VI-E)";
  Ptg_sim.Security_exp.print (Ptg_sim.Security_exp.run ());
  section "Figure 6: per-workload slowdown and MPKI";
  Ptg_sim.Fig6.print
    (Ptg_sim.Fig6.run ~jobs ~seed
       ~instrs:(if full then 2_000_000 else 600_000)
       ~warmup:(if full then 500_000 else 200_000)
       ());
  section "Figure 7: slowdown vs MAC latency";
  Ptg_sim.Fig7.print
    (Ptg_sim.Fig7.run ~jobs ~seed
       ~instrs:(if full then 1_000_000 else 250_000)
       ~warmup:(if full then 300_000 else 100_000)
       ());
  section "Figure 8: PTE value locality (623 processes)";
  Ptg_sim.Fig8.print (Ptg_sim.Fig8.run ~jobs ~processes:623 ());
  section "Figure 9: best-effort correction coverage";
  Ptg_sim.Fig9.print
    (Ptg_sim.Fig9.run ~jobs ~seed ~lines_per_point:(if full then 400 else 150) ());
  section "Section VII-C: 4-core SAME/MIX";
  Ptg_sim.Multicore_exp.print
    (Ptg_sim.Multicore_exp.run ~jobs ~seed
       ~instrs_per_core:(if full then 400_000 else 120_000)
       ~mixes:(if full then 16 else 8) ());
  section "Attack-vs-mitigation matrix";
  Ptg_sim.Attacks_exp.print
    (Ptg_sim.Attacks_exp.run ~seed ~iterations:(if full then 400_000 else 200_000) ());
  section "Prior defenses vs PT-Guard (Sections II-E, VIII-C)";
  Ptg_sim.Baselines_exp.print
    (Ptg_sim.Baselines_exp.run ~trials:(if full then 500 else 250) ());
  section "Full-system co-simulation (live Rowhammer vs PT-Guard)";
  List.iter
    (fun (label, guarded, attack) ->
      let config = { Ptg_sim.Fullsys.default_config with guarded; attack } in
      let t = Ptg_sim.Fullsys.create ~config ~seed:42L () in
      let r = Ptg_sim.Fullsys.run t ~instrs:(if full then 60_000 else 30_000) in
      Printf.printf "--- %s ---\n" label;
      Format.printf "%a@.@." Ptg_sim.Fullsys.pp_result r)
    [
      ("baseline, no attack", true, false);
      ("PT-Guard under attack", true, true);
      ("UNPROTECTED under attack", false, true);
    ];
  section "Ablations";
  Ptg_sim.Ablations.print_correction
    (Ptg_sim.Ablations.correction ~jobs ~lines:(if full then 400 else 150) ());
  print_newline ();
  Ptg_sim.Ablations.print_pattern (Ptg_sim.Ablations.pattern ());
  print_newline ();
  Ptg_sim.Ablations.print_ctb (Ptg_sim.Ablations.ctb_overflow ());
  print_newline ();
  Ptg_sim.Ablations.print_page_size
    (Ptg_sim.Ablations.page_size ~jobs ~instrs:(if full then 400_000 else 150_000) ())

(* ------------------------------------------------------------------ *)
(* Pool scaling: serial vs parallel wall clock                         *)
(* ------------------------------------------------------------------ *)

let run_scaling () =
  section
    (Printf.sprintf "Pool scaling: Figure 6 sweep, jobs 1 vs %d (of %d recommended)"
       (max jobs 4) (Ptg_util.Pool.default_jobs ()));
  let instrs = if full then 2_000_000 else 300_000 in
  let warmup = if full then 500_000 else 100_000 in
  let timed j =
    let t0 = Unix.gettimeofday () in
    let r = Ptg_sim.Fig6.run ~jobs:j ~instrs ~warmup () in
    (Unix.gettimeofday () -. t0, r)
  in
  let parallel_jobs = max jobs 4 in
  let t_serial, r_serial = timed 1 in
  let t_parallel, r_parallel = timed parallel_jobs in
  let csv r =
    let path = Filename.temp_file "ptg_scaling" ".csv" in
    Ptg_sim.Fig6.to_csv r ~path;
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove path;
    s
  in
  Printf.printf
    "  jobs 1:  %6.2f s\n  jobs %d:  %6.2f s\n  speedup: %.2fx\n  CSV identical: %b\n"
    t_serial parallel_jobs t_parallel (t_serial /. t_parallel)
    (String.equal (csv r_serial) (csv r_parallel))

(* ------------------------------------------------------------------ *)
(* Observability overhead: the same Figure 6 sweep with the sink off    *)
(* and on. The disabled path is a single option branch per operation,   *)
(* so "off" must match the pre-observability wall clock; "on" bounds    *)
(* the full-instrumentation cost quoted in README.md.                   *)
(* ------------------------------------------------------------------ *)

let run_obs_overhead () =
  section "Observability overhead: Figure 6 sweep, obs off vs on";
  let instrs = if full then 1_000_000 else 300_000 in
  let warmup = if full then 300_000 else 100_000 in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let t_off, r_off = timed (fun () -> Ptg_sim.Fig6.run ~jobs ~instrs ~warmup ()) in
  let sink = Ptg_obs.Sink.create () in
  let t_on, r_on =
    timed (fun () -> Ptg_sim.Fig6.run ~jobs ~instrs ~warmup ~obs:sink ())
  in
  let rows = Ptg_obs.Registry.rows (Ptg_obs.Sink.metrics sink) in
  Printf.printf
    "  obs off: %6.2f s\n\
    \  obs on:  %6.2f s (%+.1f%% wall clock)\n\
    \  collected: %d metric rows, %d trace events\n\
    \  figure results identical: %b\n"
    t_off t_on
    (100.0 *. ((t_on -. t_off) /. t_off))
    (List.length rows)
    (Ptg_obs.Trace.recorded (Ptg_obs.Sink.trace sink))
    (r_off = r_on)

(* ------------------------------------------------------------------ *)
(* Figure 6 regression benchmark: BENCH_fig6.json                      *)
(* ------------------------------------------------------------------ *)

(* Single-job reduced Figure 6 sweep measured on this container before
   the allocation-free hot-path work (commit 9ec9bcf), the denominator
   of the "speedup_vs_pre_pr" field below. *)
let pre_pr_wall_time_s = 7.84

let run_fig6_json () =
  section "Figure 6 regression benchmark (BENCH_fig6.json)";
  let instrs = if full then 2_000_000 else 600_000 in
  let warmup = if full then 500_000 else 200_000 in
  (* Always single-job: the wall-time gate needs the serial path (this
     container has one hardware thread; domain fan-out only adds noise). *)
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let t_off, r_off =
    timed (fun () -> Ptg_sim.Fig6.run ~jobs:1 ~seed:42L ~instrs ~warmup ())
  in
  let sink = Ptg_obs.Sink.create () in
  let t_on, r_on =
    timed (fun () -> Ptg_sim.Fig6.run ~jobs:1 ~seed:42L ~instrs ~warmup ~obs:sink ())
  in
  let n_workloads = List.length r_off.Ptg_sim.Fig6.rows in
  (* Base and guarded runs both simulate warmup + timed instructions. *)
  let simulated = 2 * n_workloads * (instrs + warmup) in
  let instrs_per_sec = float_of_int simulated /. t_off in
  let path =
    match Sys.getenv_opt "PTG_BENCH_JSON" with
    | Some p -> p
    | None -> "BENCH_fig6.json"
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"fig6\",\n\
    \  \"mode\": \"%s\",\n\
    \  \"jobs\": 1,\n\
    \  \"instrs\": %d,\n\
    \  \"warmup\": %d,\n\
    \  \"workloads\": %d,\n\
    \  \"wall_time_s\": %.3f,\n\
    \  \"wall_time_obs_s\": %.3f,\n\
    \  \"instrs_per_sec\": %.0f,\n\
    \  \"amean_slowdown_pct\": %.4f,\n\
    \  \"obs_results_identical\": %b,\n\
    \  \"pre_pr_wall_time_s\": %.2f,\n\
    \  \"speedup_vs_pre_pr\": %.2f\n\
     }\n"
    (if full then "full" else "reduced")
    instrs warmup n_workloads t_off t_on instrs_per_sec
    r_off.Ptg_sim.Fig6.amean_slowdown_pct (r_off = r_on) pre_pr_wall_time_s
    (pre_pr_wall_time_s /. t_off);
  close_out oc;
  Printf.printf
    "  wall: %.2f s (obs on: %.2f s), %.0f simulated instrs/s\n\
    \  speedup vs pre-PR %.2f s: %.2fx\n\
    \  wrote %s\n"
    t_off t_on instrs_per_sec pre_pr_wall_time_s
    (pre_pr_wall_time_s /. t_off)
    path

(* ------------------------------------------------------------------ *)
(* Batched MAC verification: scalar oracle vs lane-parallel batch.     *)
(* The speedup here is what the engine's Batch path and the batched    *)
(* rekey harvest; the equality check is the differential oracle run    *)
(* once more on bench-sized data.                                      *)
(* ------------------------------------------------------------------ *)

let run_batch_bench () =
  section "Batched MAC: scalar vs lane-parallel (same inputs, same outputs)";
  let reqs = 4096 in
  let passes = if full then 8 else 3 in
  let brng = Ptg_util.Rng.create 77L in
  let addrs = Array.init reqs (fun i -> Int64.of_int (0x4000 + (i * 64))) in
  let lines =
    Array.init reqs (fun _ ->
        Array.init 8 (fun _ ->
            (* Masked-shape inputs: any int64s are valid MAC inputs. *)
            Ptg_util.Rng.next brng))
  in
  let ctx = Ptg_crypto.Mac.ctx () in
  let bctx = Ptg_crypto.Mac.batch_ctx () in
  let timed f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to passes do f () done;
    (Unix.gettimeofday () -. t0) /. float_of_int passes
  in
  let scalar = Array.make reqs Ptg_crypto.Mac.zero in
  let t_scalar =
    timed (fun () ->
        for i = 0 to reqs - 1 do
          scalar.(i) <- Ptg_crypto.Mac.compute_with ctx key ~addr:addrs.(i) lines.(i)
        done)
  in
  let batched = ref [||] in
  let t_batch =
    timed (fun () -> batched := Ptg_crypto.Mac.compute_batch bctx key ~n:reqs ~addrs ~lines)
  in
  let identical =
    Array.for_all
      (fun i -> Ptg_crypto.Mac.equal scalar.(i) !batched.(i))
      (Array.init reqs (fun i -> i))
  in
  Printf.printf
    "  scalar:  %8.1f ns/MAC (%d MACs, %d passes)\n\
    \  batched: %8.1f ns/MAC (capacity %d)\n\
    \  speedup: %8.2fx\n\
    \  batched == scalar oracle: %b\n"
    (1e9 *. t_scalar /. float_of_int reqs)
    reqs passes
    (1e9 *. t_batch /. float_of_int reqs)
    (Ptg_crypto.Mac.batch_capacity bctx)
    (t_scalar /. t_batch) identical;
  if not identical then failwith "batch bench: batched MACs diverge from scalar oracle"

(* ------------------------------------------------------------------ *)
(* Full-system regression benchmark: BENCH_fullsys.json                *)
(* The paths the fig6 gate never touches: real QARMA on every walk     *)
(* (fullsys co-simulation) and the multicore scheduler's batched       *)
(* engine-backed verification.                                         *)
(* ------------------------------------------------------------------ *)

let run_fullsys_json () =
  section "Full-system regression benchmark (BENCH_fullsys.json)";
  let instrs = if full then 60_000 else 30_000 in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  (* Guarded co-simulation under live Rowhammer: every TLB miss pays real
     MAC verification through the controller. *)
  let t_guarded, r_guarded =
    timed (fun () ->
        let t = Ptg_sim.Fullsys.create ~seed:42L () in
        Ptg_sim.Fullsys.run t ~instrs)
  in
  if r_guarded.Ptg_sim.Fullsys.wrong_translations <> 0 then
    failwith "fullsys bench: guarded run consumed a wrong translation";
  (* Multicore with engine-backed verification: PTE reads from all four
     cores batched into lane-parallel MAC checks. *)
  let mc_instrs = if full then 100_000 else 50_000 in
  let t_mc, r_mc =
    timed (fun () ->
        let spec = Option.get (Ptg_workloads.Workload.by_name "pr") in
        let engine = Ptguard.Engine.create ~rng:(Ptg_util.Rng.create 9L) () in
        let mc =
          Ptg_cpu.Multicore.create ~verify_engine:engine
            ~guard:Ptg_cpu.Guard_timing.unprotected ()
        in
        let streams =
          Array.init 4 (fun i ->
              Ptg_workloads.Workload.stream (Ptg_util.Rng.create (Int64.of_int i)) spec)
        in
        Ptg_cpu.Multicore.run mc ~instrs_per_core:mc_instrs ~streams)
  in
  if r_mc.Ptg_cpu.Multicore.mac_verify_failures <> 0 then
    failwith "fullsys bench: multicore verification failed on untampered PTEs";
  let wall = t_guarded +. t_mc in
  let path =
    match Sys.getenv_opt "PTG_BENCH_JSON" with
    | Some p -> p
    | None -> "BENCH_fullsys.json"
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"fullsys\",\n\
    \  \"mode\": \"%s\",\n\
    \  \"instrs\": %d,\n\
    \  \"wall_time_s\": %.3f,\n\
    \  \"fullsys_wall_s\": %.3f,\n\
    \  \"fullsys_walks\": %d,\n\
    \  \"fullsys_flips_landed\": %d,\n\
    \  \"fullsys_wrong_translations\": %d,\n\
    \  \"mc_wall_s\": %.3f,\n\
    \  \"mc_instrs_per_core\": %d,\n\
    \  \"mc_macs_verified\": %d,\n\
    \  \"mc_verify_failures\": %d,\n\
    \  \"mc_macs_per_sec\": %.0f\n\
     }\n"
    (if full then "full" else "reduced")
    instrs wall t_guarded r_guarded.Ptg_sim.Fullsys.walks
    r_guarded.Ptg_sim.Fullsys.flips_landed
    r_guarded.Ptg_sim.Fullsys.wrong_translations t_mc mc_instrs
    r_mc.Ptg_cpu.Multicore.macs_verified r_mc.Ptg_cpu.Multicore.mac_verify_failures
    (float_of_int r_mc.Ptg_cpu.Multicore.macs_verified /. t_mc);
  close_out oc;
  Printf.printf
    "  fullsys: %.2f s (%d walks, %d flips landed, 0 wrong translations)\n\
    \  multicore verify: %.2f s (%d MACs batch-verified, %.0f MACs/s)\n\
    \  wrote %s\n"
    t_guarded r_guarded.Ptg_sim.Fullsys.walks r_guarded.Ptg_sim.Fullsys.flips_landed
    t_mc r_mc.Ptg_cpu.Multicore.macs_verified
    (float_of_int r_mc.Ptg_cpu.Multicore.macs_verified /. t_mc)
    path

(* ------------------------------------------------------------------ *)
(* Warm-start regression benchmark: BENCH_snapshot.json                *)
(* The checkpoint/restore tier's whole value proposition in one        *)
(* number: re-running a finished fullsys budget against its snapshot   *)
(* store must be at least 5x faster than computing it cold, while the  *)
(* adopted result stays byte-identical.                                *)
(* ------------------------------------------------------------------ *)

let run_snapshot_json () =
  section "Warm-start regression benchmark (BENCH_snapshot.json)";
  let instrs = if full then 60_000 else 20_000 in
  let every = instrs / 10 in
  let dir = Filename.temp_file "ptg_bench_store" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Sys.rmdir dir with Sys_error _ -> ())
  @@ fun () ->
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let t_cold, cold =
    timed (fun () ->
        Ptg_sim.Checkpoint.run_fullsys ~every ~dir ~seed:42L ~instrs ())
  in
  let t_warm, warm =
    timed (fun () ->
        Ptg_sim.Checkpoint.run_fullsys ~every ~dir ~seed:42L ~instrs ())
  in
  let identical =
    cold.Ptg_sim.Checkpoint.f_result = warm.Ptg_sim.Checkpoint.f_result
  in
  if not identical then
    failwith "snapshot bench: warm-started result diverged from the cold run";
  let resumed_from =
    Option.value warm.Ptg_sim.Checkpoint.f_resumed_from ~default:0
  in
  if resumed_from <> instrs then
    failwith "snapshot bench: warm run did not adopt the completed checkpoint";
  let checkpoints = Array.length (Sys.readdir dir) in
  let store_bytes =
    Array.fold_left
      (fun a n -> a + (Unix.stat (Filename.concat dir n)).Unix.st_size)
      0 (Sys.readdir dir)
  in
  let speedup = t_cold /. t_warm in
  let path =
    match Sys.getenv_opt "PTG_BENCH_JSON" with
    | Some p -> p
    | None -> "BENCH_snapshot.json"
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"snapshot\",\n\
    \  \"mode\": \"%s\",\n\
    \  \"instrs\": %d,\n\
    \  \"every\": %d,\n\
    \  \"wall_time_s\": %.3f,\n\
    \  \"cold_wall_s\": %.3f,\n\
    \  \"warm_wall_s\": %.3f,\n\
    \  \"speedup\": %.2f,\n\
    \  \"warm_resumed_from\": %d,\n\
    \  \"identical\": %d,\n\
    \  \"checkpoints\": %d,\n\
    \  \"store_bytes\": %d\n\
     }\n"
    (if full then "full" else "reduced")
    instrs every (t_cold +. t_warm) t_cold t_warm speedup resumed_from
    (if identical then 1 else 0)
    checkpoints store_bytes;
  close_out oc;
  Printf.printf
    "  cold: %.2f s (%d checkpoints, %d KiB store)\n\
    \  warm: %.3f s (adopted %d/%d instructions)\n\
    \  speedup: %.1fx, byte-identical: %b\n\
    \  wrote %s\n"
    t_cold checkpoints (store_bytes / 1024) t_warm resumed_from instrs speedup
    identical path

(* ------------------------------------------------------------------ *)
(* Serving throughput: cold (computed) vs cache-hot served requests.   *)
(* The server, client and load generator are the real ptg_server       *)
(* stack over a real loopback socket; only the scenario is small.      *)
(* ------------------------------------------------------------------ *)

let run_serve () =
  section "Serving: cold vs cache-hot requests/sec (ptg_server over TCP)";
  let scenario =
    Ptg_sim.Scenario.make ~reduced:true
      ~processes:(if full then 623 else 60)
      Ptg_sim.Scenario.Fig8
  in
  let config =
    {
      (Ptg_server.Server.default_config (Ptg_server.Server.Tcp 0)) with
      Ptg_server.Server.workers = jobs;
    }
  in
  let server = Ptg_server.Server.start config in
  Fun.protect
    ~finally:(fun () -> Ptg_server.Server.stop server)
    (fun () ->
      let addr = Ptg_server.Server.listen_addr server in
      (* Cold: one request, nothing cached — response time is dominated
         by the experiment itself. *)
      let t0 = Unix.gettimeofday () in
      let client = Ptg_server.Client.connect addr in
      (match Ptg_server.Client.run client scenario with
      | Ok (Ptg_server.Protocol.Result { cache = Ptg_server.Protocol.Miss; _ })
        -> ()
      | _ -> failwith "serve bench: cold request did not compute");
      Ptg_server.Client.close client;
      let cold_s = Unix.gettimeofday () -. t0 in
      (* Hot: a closed-loop load against the now-warm cache. *)
      let report =
        Ptg_server.Client.loadgen ~addr ~clients:4
          ~requests_per_client:(if full then 500 else 200)
          ~scenarios:[ scenario ] ()
      in
      let cold_rps = 1.0 /. cold_s in
      let p99 =
        match report.Ptg_server.Client.p99_us with
        | Some v -> Printf.sprintf "%.0f us" v
        | None -> "n/a"
      in
      Printf.printf
        "  cold:   %8.2f req/s (one computed request: %.3f s)\n\
        \  hot:    %8.2f req/s (%d requests, %d clients, p99 %s)\n\
        \  ratio:  %8.0fx\n\
        \  hits %d / misses %d / shed %d / errors %d\n"
        cold_rps cold_s report.Ptg_server.Client.throughput_rps
        report.Ptg_server.Client.ok report.Ptg_server.Client.clients p99
        (report.Ptg_server.Client.throughput_rps /. cold_rps)
        report.Ptg_server.Client.hits report.Ptg_server.Client.misses
        report.Ptg_server.Client.overloaded report.Ptg_server.Client.errors)

(* ------------------------------------------------------------------ *)
(* Sharded serving: 1 vs 2 vs 4 shards behind the consistent-hash      *)
(* router (BENCH_serve_sharded.json).                                  *)
(*                                                                     *)
(* This container has one hardware thread, so the scaling axis is      *)
(* aggregate cache capacity, not CPU: the working set holds [distinct] *)
(* scenarios cycled round-robin, and each shard's LRU holds fewer than *)
(* that. One shard therefore thrashes — a cyclic scan over more keys   *)
(* than the cache holds hits never — and recomputes every request,     *)
(* while two or more shards partition the keyspace until each slice    *)
(* fits its shard's cache and requests are served cache-hot. The       *)
(* router's own LRU is kept far below the working set so it cannot     *)
(* mask the difference.                                                *)
(* ------------------------------------------------------------------ *)

let run_serve_sharded () =
  section "Sharded serving: throughput vs shard count (router over TCP)";
  let distinct = 64 in
  let shard_cache = 56 in
  let router_cache = 8 in
  let clients = 4 in
  let requests_per_client = if full then 400 else 150 in
  let scenarios =
    List.init distinct (fun i ->
        Ptg_sim.Scenario.make ~reduced:true
          ~seed:(Int64.of_int (1000 + i))
          ~processes:(if full then 60 else 24)
          Ptg_sim.Scenario.Fig8)
  in
  let topology n =
    let shards =
      List.init n (fun _ ->
          Ptg_server.Server.start
            {
              (Ptg_server.Server.default_config (Ptg_server.Server.Tcp 0)) with
              Ptg_server.Server.workers = 1;
              high_water = 64;
              cache_capacity = shard_cache;
            })
    in
    let router =
      Ptg_server.Router.start
        {
          (Ptg_server.Router.default_config (Ptg_server.Server.Tcp 0)
             ~shards:(List.map Ptg_server.Server.listen_addr shards)) with
          Ptg_server.Router.cache_capacity = router_cache;
          health_interval_s = 0.2;
        }
    in
    Fun.protect
      ~finally:(fun () ->
        Ptg_server.Router.stop router;
        List.iter Ptg_server.Server.stop shards)
      (fun () ->
        let addr = Ptg_server.Router.listen_addr router in
        (* Warm pass: every scenario once, so the steady state being
           timed is the topology's, not the cold start's. With one
           thrashing shard the pass is recomputed anyway — that is the
           steady state. *)
        let warm = Ptg_server.Client.connect addr in
        List.iter
          (fun s ->
            match Ptg_server.Client.run warm s with
            | Ok _ -> ()
            | Error e -> failwith ("serve_sharded bench: warm pass: " ^ e))
          scenarios;
        Ptg_server.Client.close warm;
        let report =
          Ptg_server.Client.loadgen ~addr ~clients ~requests_per_client
            ~scenarios ()
        in
        let lost =
          report.Ptg_server.Client.requests - report.Ptg_server.Client.ok
          - report.Ptg_server.Client.overloaded
          - report.Ptg_server.Client.timeouts - report.Ptg_server.Client.errors
        in
        let p99 =
          match report.Ptg_server.Client.p99_us with
          | Some v -> Printf.sprintf "%.0f us" v
          | None -> "n/a"
        in
        Printf.printf
          "  %d shard%s: %8.2f req/s (ok %d, errors %d, lost %d, p99 %s)\n%!"
          n
          (if n = 1 then " " else "s")
          report.Ptg_server.Client.throughput_rps report.Ptg_server.Client.ok
          report.Ptg_server.Client.errors lost p99;
        (report.Ptg_server.Client.throughput_rps, report.Ptg_server.Client.ok,
         lost))
  in
  let rps1, ok1, lost1 = topology 1 in
  let rps2, ok2, lost2 = topology 2 in
  let rps4, ok4, lost4 = topology 4 in
  let path =
    match Sys.getenv_opt "PTG_BENCH_JSON" with
    | Some p -> p
    | None -> "BENCH_serve_sharded.json"
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"serve_sharded\",\n\
    \  \"mode\": \"%s\",\n\
    \  \"distinct_scenarios\": %d,\n\
    \  \"shard_cache_capacity\": %d,\n\
    \  \"router_cache_capacity\": %d,\n\
    \  \"clients\": %d,\n\
    \  \"requests_per_client\": %d,\n\
    \  \"rps_1_shard\": %.2f,\n\
    \  \"rps_2_shards\": %.2f,\n\
    \  \"rps_4_shards\": %.2f,\n\
    \  \"speedup_2_shards\": %.2f,\n\
    \  \"speedup_4_shards\": %.2f,\n\
    \  \"ok_1_shard\": %d,\n\
    \  \"ok_2_shards\": %d,\n\
    \  \"ok_4_shards\": %d,\n\
    \  \"lost_1_shard\": %d,\n\
    \  \"lost_2_shards\": %d,\n\
    \  \"lost_4_shards\": %d\n\
     }\n"
    (if full then "full" else "reduced")
    distinct shard_cache router_cache clients requests_per_client rps1 rps2
    rps4 (rps2 /. rps1) (rps4 /. rps1) ok1 ok2 ok4 lost1 lost2 lost4;
  close_out oc;
  Printf.printf "  speedup: %.2fx at 2 shards, %.2fx at 4\n  wrote %s\n"
    (rps2 /. rps1) (rps4 /. rps1) path

(* ------------------------------------------------------------------ *)
(* Deadline-sliced serving: BENCH_slices.json.                         *)
(*                                                                     *)
(* Two claims, both through the real ptg_server stack or the real      *)
(* chunked drivers:                                                    *)
(*                                                                     *)
(* 1. Slicing tax — a served fullsys run forced through several        *)
(*    compute windows (checkpoint, requeue, resume per window) must    *)
(*    land within a few percent of the same request served in one      *)
(*    uninterrupted window, and byte-identical to it. Each extra       *)
(*    slice re-pays machine construction (~0.2 s here), so the tax     *)
(*    ratio is roughly construction/window; the sizes below keep the   *)
(*    expected tax near 5% against the 10% gate.                       *)
(*                                                                     *)
(* 2. Ejection-resume speedup — a "victim" run stopped at 80% of its   *)
(*    budget (the chunked driver's should_stop, exactly what a         *)
(*    deadline yield or a SIGKILL between saves leaves behind) must    *)
(*    be at least 2x cheaper to finish from its deepest checkpoint     *)
(*    than to recompute cold, with an identical final result.          *)
(* ------------------------------------------------------------------ *)

let run_slices_json () =
  section "Deadline-sliced serving benchmark (BENCH_slices.json)";
  let with_store f =
    let dir = Filename.temp_file "ptg_bench_slices" "" in
    Sys.remove dir;
    Sys.mkdir dir 0o755;
    Fun.protect
      ~finally:(fun () ->
        Array.iter
          (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
          (try Sys.readdir dir with Sys_error _ -> [||]);
        try Sys.rmdir dir with Sys_error _ -> ())
      (fun () -> f dir)
  in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  (* Part 1: slicing tax over the served path. *)
  let instrs = if full then 300_000 else 150_000 in
  let deadline_s = 4.0 in
  let scenario =
    Ptg_sim.Scenario.make ~seed:97L ~instrs Ptg_sim.Scenario.Fullsys
  in
  let serve config =
    let server = Ptg_server.Server.start config in
    Fun.protect
      ~finally:(fun () -> Ptg_server.Server.stop server)
      (fun () ->
        let client =
          Ptg_server.Client.connect (Ptg_server.Server.listen_addr server)
        in
        let t, reply =
          timed (fun () -> Ptg_server.Client.run client scenario)
        in
        Ptg_server.Client.close client;
        match reply with
        | Ok (Ptg_server.Protocol.Result { result; _ }) ->
            let sliced =
              match
                List.assoc_opt "sliced" (Ptg_server.Server.stats server)
              with
              | Some v -> int_of_float v
              | None -> failwith "slices bench: server has no sliced stat"
            in
            (t, result, sliced)
        | Ok Ptg_server.Protocol.Timeout ->
            failwith "slices bench: served run timed out"
        | Ok _ -> failwith "slices bench: unexpected terminal frame"
        | Error e -> failwith ("slices bench: " ^ e))
  in
  let base =
    {
      (Ptg_server.Server.default_config (Ptg_server.Server.Tcp 0)) with
      Ptg_server.Server.workers = 1;
    }
  in
  let t_plain, plain_bytes, plain_sliced = serve base in
  if plain_sliced <> 0 then
    failwith "slices bench: uninterrupted run was sliced";
  let t_sliced, sliced_bytes, slices = with_store (fun dir ->
      serve
        {
          base with
          Ptg_server.Server.snapshot_dir = Some dir;
          snapshot_every = Some (instrs / 15);
          deadline_s;
          slices = 50;
        })
  in
  if slices < 1 then
    failwith "slices bench: the deadline never sliced the run (raise instrs)";
  let identical = String.equal plain_bytes sliced_bytes in
  if not identical then
    failwith "slices bench: sliced bytes diverge from the uninterrupted run";
  let overhead_pct = 100.0 *. ((t_sliced -. t_plain) /. t_plain) in
  (* Part 2: finishing from a victim's deepest checkpoint vs cold. *)
  let r_instrs = if full then 80_000 else 40_000 in
  let every = r_instrs / 10 in
  let victim_stop_at = 8 * every in
  let t_cold, t_resume, adopted, resume_identical =
    with_store (fun dir ->
        let t_cold, cold =
          with_store (fun cold_dir ->
              timed (fun () ->
                  Ptg_sim.Checkpoint.run_fullsys ~every ~dir:cold_dir ~seed:42L
                    ~instrs:r_instrs ()))
        in
        let stop = ref false in
        let victim =
          Ptg_sim.Checkpoint.run_fullsys ~every ~dir ~seed:42L ~instrs:r_instrs
            ~should_stop:(fun () -> !stop)
            ~progress:(fun ~done_count ~total:_ ->
              if done_count >= victim_stop_at then stop := true)
            ()
        in
        if victim.Ptg_sim.Checkpoint.f_completed then
          failwith "slices bench: victim ran to completion before the stop";
        let t_resume, resumed =
          timed (fun () ->
              Ptg_sim.Checkpoint.run_fullsys ~every ~dir ~seed:42L
                ~instrs:r_instrs ())
        in
        ( t_cold,
          t_resume,
          Option.value resumed.Ptg_sim.Checkpoint.f_resumed_from ~default:0,
          resumed.Ptg_sim.Checkpoint.f_result = cold.Ptg_sim.Checkpoint.f_result
        ))
  in
  if adopted < victim_stop_at then
    failwith "slices bench: resume did not adopt the victim's deepest checkpoint";
  if not resume_identical then
    failwith "slices bench: resumed result diverged from the cold run";
  let resume_speedup = t_cold /. t_resume in
  let path =
    match Sys.getenv_opt "PTG_BENCH_JSON" with
    | Some p -> p
    | None -> "BENCH_slices.json"
  in
  let oc = open_out path in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"slices\",\n\
    \  \"mode\": \"%s\",\n\
    \  \"instrs\": %d,\n\
    \  \"deadline_s\": %.1f,\n\
    \  \"wall_time_s\": %.3f,\n\
    \  \"plain_wall_s\": %.3f,\n\
    \  \"sliced_wall_s\": %.3f,\n\
    \  \"slices\": %d,\n\
    \  \"overhead_pct\": %.2f,\n\
    \  \"identical\": %d,\n\
    \  \"resume_instrs\": %d,\n\
    \  \"victim_stopped_at\": %d,\n\
    \  \"cold_wall_s\": %.3f,\n\
    \  \"resume_wall_s\": %.3f,\n\
    \  \"resume_adopted_from\": %d,\n\
    \  \"resume_identical\": %d,\n\
    \  \"resume_speedup\": %.2f\n\
     }\n"
    (if full then "full" else "reduced")
    instrs deadline_s
    (t_plain +. t_sliced +. t_cold +. t_resume)
    t_plain t_sliced slices overhead_pct
    (if identical then 1 else 0)
    r_instrs victim_stop_at t_cold t_resume adopted
    (if resume_identical then 1 else 0)
    resume_speedup;
  close_out oc;
  Printf.printf
    "  uninterrupted: %.2f s; sliced (%d yields): %.2f s (%+.1f%% tax), \
     byte-identical: %b\n\
    \  cold: %.2f s; resumed from %d/%d: %.2f s (%.1fx), identical: %b\n\
    \  wrote %s\n"
    t_plain slices t_sliced overhead_pct identical t_cold adopted r_instrs
    t_resume resume_speedup resume_identical path

let () =
  Printf.printf "PT-Guard bench harness (%s sizes, %d worker domains)\n\n%!"
    (if full then "full" else "reduced; set PTG_BENCH_FULL=1 for paper-scale")
    jobs;
  (* PTG_BENCH_ONLY=<section> runs one section; see [sections]. *)
  let sections =
    [
      ("micro", run_micro);
      ("experiments", run_experiments);
      ("scaling", run_scaling);
      ("obs", run_obs_overhead);
      ("fig6", run_fig6_json);
      ("batch", run_batch_bench);
      ("fullsys", run_fullsys_json);
      ("snapshot", run_snapshot_json);
      ("slices", run_slices_json);
      ("serve", run_serve);
      ("serve_sharded", run_serve_sharded);
    ]
  in
  match Sys.getenv_opt "PTG_BENCH_ONLY" with
  | Some name -> (
      match List.assoc_opt name sections with
      | Some run -> run ()
      | None ->
          Printf.eprintf "unknown PTG_BENCH_ONLY section: %s\nvalid sections: %s\n"
            name
            (String.concat " " (List.map fst sections));
          exit 2)
  | None -> List.iter (fun (_, run) -> run ()) sections

(* Command-line driver: one subcommand per paper artifact.
   `ptguard_cli all` regenerates everything EXPERIMENTS.md records. *)

open Cmdliner

let seed_arg =
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let jobs_arg =
  let positive_int =
    let parse s =
      match Arg.conv_parser Arg.int s with
      | Ok n when n >= 1 -> Ok n
      | Ok n -> Error (`Msg (Printf.sprintf "%d is not a positive job count" n))
      | Error _ as e -> e
    in
    Arg.conv (parse, Arg.conv_printer Arg.int)
  in
  Arg.(
    value
    & opt positive_int (Domain.recommended_domain_count ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the experiment sweeps (default: the \
           recommended domain count of this machine). Results are \
           bit-identical for any job count; only wall-clock time changes.")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"PATH" ~doc:"Also write the result as CSV to $(docv).")

let instrs_arg default =
  Arg.(
    value & opt int default
    & info [ "instrs" ] ~docv:"N" ~doc:"Timed instructions per workload.")

let design_arg =
  let designs =
    [ ("baseline", Ptguard.Config.Baseline); ("optimized", Ptguard.Config.Optimized) ]
  in
  Arg.(
    value
    & opt (enum designs) Ptguard.Config.Baseline
    & info [ "design" ] ~docv:"DESIGN" ~doc:"PT-Guard design: baseline or optimized.")

let seeds_arg =
  Arg.(
    value & opt int 1
    & info [ "seeds" ]
        ~docv:"N"
        ~doc:"Repeat over N seeds and report mean/stderr (N > 1).")

(* Observability plumbing: --metrics/--trace pick their format from the
   file extension (.json/.jsonl -> line-JSON, anything else -> CSV). *)
let jsonl_path path =
  Filename.check_suffix path ".jsonl" || Filename.check_suffix path ".json"

let save_metrics sink path =
  let snap = Ptg_obs.Sink.metrics sink in
  if jsonl_path path then Ptg_obs.Registry.save_jsonl snap ~path
  else Ptg_obs.Registry.save_csv snap ~path

let save_trace sink path =
  let trace = Ptg_obs.Sink.trace sink in
  if jsonl_path path then Ptg_obs.Trace.save_jsonl trace ~path
  else Ptg_obs.Trace.save_csv trace ~path

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"PATH"
        ~doc:
          "Collect observability metrics and write them to $(docv) \
           (.json/.jsonl for line-JSON, otherwise CSV).")

let trace_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"PATH"
        ~doc:
          "Collect the structured event trace and write it to $(docv) \
           (.json/.jsonl for line-JSON, otherwise CSV).")

let sink_of ~trace ~metrics =
  if trace <> None || metrics <> None then Some (Ptg_obs.Sink.create ()) else None

let export_sink sink ~trace ~metrics =
  match sink with
  | None -> ()
  | Some s ->
      Option.iter (save_metrics s) metrics;
      Option.iter (save_trace s) trace

let warmup_arg default =
  Arg.(
    value & opt int default
    & info [ "warmup" ] ~docv:"N" ~doc:"Warmup instructions per workload.")

let workloads_arg =
  let workloads_conv =
    let parse s =
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | name :: rest -> (
            match Ptg_workloads.Workload.by_name name with
            | Some spec -> go (spec :: acc) rest
            | None ->
                Error
                  (`Msg
                    (Printf.sprintf "unknown workload %s (try: %s)" name
                       (String.concat ", " Ptg_workloads.Workload.names))))
      in
      go [] (String.split_on_char ',' s)
    in
    let print fmt specs =
      Format.pp_print_string fmt
        (String.concat ","
           (List.map (fun s -> s.Ptg_workloads.Workload.name) specs))
    in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt (some workloads_conv) None
    & info [ "workloads" ] ~docv:"W1,W2,.."
        ~doc:"Comma-separated workload subset (default: all 25).")

(* The scenario-shaped subcommands (fig6/7/8/9, multicore) all funnel
   through Ptg_sim.Scenario — the same record the server decodes from
   wire frames — so CLI output and served output cannot drift. *)
let run_scenario ?obs ?csv scenario =
  let out = Ptg_sim.Scenario.run ?obs scenario in
  print_string (Ptg_sim.Scenario.render out);
  Option.iter (fun path -> Ptg_sim.Scenario.save_csv out ~path) csv

let fig6_cmd =
  let run seed instrs warmup design workloads seeds jobs csv trace metrics =
    let obs = sink_of ~trace ~metrics in
    let workloads =
      Option.map (List.map (fun s -> s.Ptg_workloads.Workload.name)) workloads
    in
    run_scenario ?obs ?csv
      (Ptg_sim.Scenario.make ~seed ~seeds ~design ?workloads ~instrs ~warmup
         ~jobs Ptg_sim.Scenario.Fig6);
    export_sink obs ~trace ~metrics
  in
  Cmd.v
    (Cmd.info "fig6" ~doc:"Figure 6: per-workload normalized IPC and LLC MPKI.")
    Term.(
      const run $ seed_arg $ instrs_arg 2_000_000 $ warmup_arg 500_000 $ design_arg
      $ workloads_arg $ seeds_arg $ jobs_arg $ csv_arg $ trace_file_arg
      $ metrics_arg)

let fig7_cmd =
  let run seed instrs jobs csv =
    run_scenario ?csv
      (Ptg_sim.Scenario.make ~seed ~instrs ~jobs Ptg_sim.Scenario.Fig7)
  in
  Cmd.v
    (Cmd.info "fig7" ~doc:"Figure 7: slowdown vs MAC latency for both designs.")
    Term.(const run $ seed_arg $ instrs_arg 1_000_000 $ jobs_arg $ csv_arg)

let fig8_cmd =
  let processes =
    Arg.(
      value & opt int 623
      & info [ "processes" ] ~docv:"N" ~doc:"Processes to profile (paper: 623).")
  in
  let run seed processes jobs csv =
    run_scenario ?csv
      (Ptg_sim.Scenario.make ~seed ~processes ~jobs Ptg_sim.Scenario.Fig8)
  in
  Cmd.v
    (Cmd.info "fig8" ~doc:"Figure 8: PTE value locality across processes.")
    Term.(const run $ seed_arg $ processes $ jobs_arg $ csv_arg)

let fig9_cmd =
  let lines =
    Arg.(
      value & opt int 300
      & info [ "lines" ] ~docv:"N" ~doc:"Faulty lines per (workload, p_flip) point.")
  in
  let run seed lines seeds jobs csv =
    run_scenario ?csv
      (Ptg_sim.Scenario.make ~seed ~seeds ~lines ~jobs Ptg_sim.Scenario.Fig9)
  in
  Cmd.v
    (Cmd.info "fig9" ~doc:"Figure 9: best-effort correction coverage vs p_flip.")
    Term.(const run $ seed_arg $ lines $ seeds_arg $ jobs_arg $ csv_arg)

let security_cmd =
  let run () = Ptg_sim.Security_exp.print (Ptg_sim.Security_exp.run ()) in
  Cmd.v
    (Cmd.info "security" ~doc:"Sections IV-G/VI-E: analytical MAC security.")
    Term.(const run $ const ())

let multicore_cmd =
  let instrs =
    Arg.(
      value & opt int 400_000
      & info [ "instrs" ] ~docv:"N" ~doc:"Instructions per core.")
  in
  let mixes =
    Arg.(value & opt int 16 & info [ "mixes" ] ~docv:"N" ~doc:"Random MIX configs.")
  in
  let run seed instrs mixes jobs csv =
    run_scenario ?csv
      (Ptg_sim.Scenario.make ~seed ~instrs ~mixes ~jobs
         Ptg_sim.Scenario.Multicore)
  in
  Cmd.v
    (Cmd.info "multicore" ~doc:"Section VII-C: 4-core SAME/MIX slowdowns.")
    Term.(const run $ seed_arg $ instrs $ mixes $ jobs_arg $ csv_arg)

let tables_cmd =
  let run () = Ptg_sim.Tables_exp.print_all () in
  Cmd.v
    (Cmd.info "tables" ~doc:"Tables I-IV and the Section V-E cost summary.")
    Term.(const run $ const ())

let attacks_cmd =
  let iterations =
    Arg.(
      value & opt int 400_000
      & info [ "iterations" ] ~docv:"N" ~doc:"Hammer rotations per scenario.")
  in
  let run seed iterations csv =
    let r = Ptg_sim.Attacks_exp.run ~seed ~iterations () in
    Ptg_sim.Attacks_exp.print r;
    Option.iter (fun path -> Ptg_sim.Attacks_exp.to_csv r ~path) csv
  in
  Cmd.v
    (Cmd.info "attacks" ~doc:"Attack-vs-mitigation matrix with PT-Guard backstop.")
    Term.(const run $ seed_arg $ iterations $ csv_arg)

let baselines_cmd =
  let trials =
    Arg.(value & opt int 500 & info [ "trials" ] ~docv:"N" ~doc:"Trials per cell.")
  in
  let run seed trials csv =
    let r = Ptg_sim.Baselines_exp.run ~seed ~trials () in
    Ptg_sim.Baselines_exp.print r;
    Option.iter (fun path -> Ptg_sim.Baselines_exp.to_csv r ~path) csv
  in
  Cmd.v
    (Cmd.info "baselines"
       ~doc:"Sections II-E/VIII-C: Monotonic Pointers and SecWalk vs PT-Guard.")
    Term.(const run $ seed_arg $ trials $ csv_arg)

let ablations_cmd =
  let run seed jobs =
    Ptg_sim.Ablations.print_correction (Ptg_sim.Ablations.correction ~jobs ~seed ());
    print_newline ();
    Ptg_sim.Ablations.print_pattern (Ptg_sim.Ablations.pattern ~seed ());
    print_newline ();
    Ptg_sim.Ablations.print_ctb (Ptg_sim.Ablations.ctb_overflow ~seed ());
    print_newline ();
    Ptg_sim.Ablations.print_page_size (Ptg_sim.Ablations.page_size ~jobs ~seed ())
  in
  Cmd.v
    (Cmd.info "ablations"
       ~doc:"Correction-strategy, write-pattern and CTB/re-keying ablations.")
    Term.(const run $ seed_arg $ jobs_arg)

(* ---------------------------------------------------------------- *)
(* Traces                                                            *)
(* ---------------------------------------------------------------- *)

let workload_name_arg =
  Arg.(
    value & opt string "mcf"
    & info [ "workload" ] ~docv:"NAME" ~doc:"Workload to trace.")

let require_workload ~cmd name =
  match Ptg_workloads.Workload.by_name name with
  | Some spec -> spec
  | None ->
      Printf.eprintf "%s: unknown workload %s (try: %s)\n" cmd name
        (String.concat ", " Ptg_workloads.Workload.names);
      exit 2

let trace_format_arg =
  Arg.(
    value
    & opt
        (some
           (enum
              [ ("text", Ptg_sim.Mem_trace.Text); ("binary", Ptg_sim.Mem_trace.Binary) ]))
        None
    & info [ "format" ] ~docv:"FORMAT" ~doc:"Trace file format: text or binary.")

let mitigation_spec_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "mitigation" ] ~docv:"SPEC"
        ~doc:
          "Registered mitigation to attach, as NAME or \
           NAME:key=value,key=value (e.g. para:p=0.002). Names and \
           parameter schemas come from the plugin registry.")

let parse_mitigation ~cmd = function
  | None -> (None, [])
  | Some spec -> (
      match Ptg_mitigations.Registry.parse_spec spec with
      | Ok (name, params) -> (Some name, params)
      | Error msg ->
          Printf.eprintf "%s: --mitigation: %s\nregistered mitigations:\n%s\n"
            cmd msg
            (Ptg_mitigations.Registry.spec_help ());
          exit 2)

let load_mem_trace ~cmd path =
  try Ptg_sim.Mem_trace.load ~path
  with Invalid_argument msg | Sys_error msg ->
    Printf.eprintf "%s: %s\n" cmd msg;
    exit 2

let save_mem_trace ~cmd t ~format ~path =
  try Ptg_sim.Mem_trace.save t ~format ~path
  with Invalid_argument msg | Sys_error msg ->
    Printf.eprintf "%s: %s\n" cmd msg;
    exit 2

let trace_record_cmd =
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"PATH" ~doc:"Write the trace to $(docv).")
  in
  let run seed instrs workload format out =
    let spec = require_workload ~cmd:"trace record" workload in
    let t = Ptg_sim.Mem_trace.record ~seed ~instrs spec in
    let format = Option.value format ~default:Ptg_sim.Mem_trace.Text in
    save_mem_trace ~cmd:"trace record" t ~format ~path:out;
    Printf.printf "recorded %d memory events for %s -> %s (%s)\n"
      (Ptg_sim.Mem_trace.length t)
      t.Ptg_sim.Mem_trace.workload out
      (match format with Ptg_sim.Mem_trace.Text -> "text" | Binary -> "binary")
  in
  Cmd.v
    (Cmd.info "record"
       ~doc:
         "Record a workload's memory-access stream as a trace file (one \
          event per load/store, cycle = instruction index).")
    Term.(
      const run $ seed_arg $ instrs_arg 500_000 $ workload_name_arg
      $ trace_format_arg $ out)

let trace_replay_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE" ~doc:"Trace file (text or binary, sniffed).")
  in
  let run seed file mitigation =
    let t = load_mem_trace ~cmd:"trace replay" file in
    let name, params = parse_mitigation ~cmd:"trace replay" mitigation in
    match Ptg_sim.Mem_trace.replay ?mitigation:name ~params ~seed t with
    | Ok r -> print_string (Ptg_sim.Mem_trace.render_result ?mitigation:name r)
    | Error msg ->
        Printf.eprintf "trace replay: %s\n" msg;
        exit 2
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Replay a trace through the memory controller, optionally with \
          a registry mitigation attached; report activations and \
          refreshes. Deterministic for a given seed.")
    Term.(const run $ seed_arg $ file $ mitigation_spec_arg)

let trace_convert_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"IN" ~doc:"Input trace (text or binary, sniffed).")
  in
  let output =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"OUT" ~doc:"Output trace path.")
  in
  let run input output format =
    let t = load_mem_trace ~cmd:"trace convert" input in
    let format =
      match format with
      | Some f -> f
      | None ->
          (* Default: flip whatever the input was. *)
          let is_binary =
            In_channel.with_open_bin input (fun ic ->
                match really_input_string ic 4 with
                | s -> s = "PTGM"
                | exception End_of_file -> false)
          in
          if is_binary then Ptg_sim.Mem_trace.Text else Ptg_sim.Mem_trace.Binary
    in
    save_mem_trace ~cmd:"trace convert" t ~format ~path:output;
    Printf.printf "converted %s -> %s (%d events, %s)\n" input output
      (Ptg_sim.Mem_trace.length t)
      (match format with Ptg_sim.Mem_trace.Text -> "text" | Binary -> "binary")
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:
         "Convert a trace between the text and binary formats (default: \
          the opposite of the input's format). Lossless both ways.")
    Term.(const run $ input $ output $ trace_format_arg)

let trace_walk_cmd =
  let workload = workload_name_arg in
  let save =
    Arg.(
      value & opt (some string) None
      & info [ "save" ] ~docv:"PATH" ~doc:"Persist the trace to $(docv).")
  in
  let run seed instrs workload save =
    let spec = require_workload ~cmd:"trace walk" workload in
    let t = Ptg_sim.Walk_trace.record ~seed ~instrs spec in
    Printf.printf "recorded %d page-table walks for %s (%d distinct PTE lines)\n"
      (Ptg_sim.Walk_trace.length t)
      t.Ptg_sim.Walk_trace.workload
      (Hashtbl.length (Ptg_sim.Walk_trace.histogram t));
    Option.iter
      (fun path ->
        Ptg_sim.Walk_trace.save t ~path;
        Printf.printf "saved to %s\n" path)
      save;
    Ptg_sim.Walk_trace.print_comparison spec
      (Ptg_sim.Walk_trace.compare_samplers ~seed spec)
  in
  Cmd.v
    (Cmd.info "walk"
       ~doc:"Record a page-walk trace (Section VI-F methodology) and validate \
             the Fig. 9 sampler against trace-frequency replay.")
    Term.(const run $ seed_arg $ instrs_arg 500_000 $ workload $ save)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:
         "Memory-trace frontend: record a workload's access stream, \
          replay it against any registered mitigation, convert between \
          the text and binary formats, or record a page-walk trace \
          (walk, the pre-registry recorder).")
    [ trace_record_cmd; trace_replay_cmd; trace_convert_cmd; trace_walk_cmd ]

let fullsys_cmd =
  let instrs =
    Arg.(value & opt int 60_000 & info [ "instrs" ] ~docv:"N" ~doc:"Instructions.")
  in
  let checkpoint_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint-dir" ] ~docv:"DIR"
          ~doc:
            "Warm-start store: snapshot each machine's complete state \
             into $(docv) every $(b,--checkpoint-every) instructions \
             (atomic temp-file-and-rename writes; the directory is \
             created if missing). Results are byte-identical to an \
             uncheckpointed run.")
  in
  let checkpoint_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "Instructions between checkpoints (default: one checkpoint \
             at completion only).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Adopt the deepest stored checkpoint at or below the \
             instruction budget instead of starting cold; damaged or \
             mismatched files are skipped. Requires \
             $(b,--checkpoint-dir).")
  in
  let banner () =
    print_endline
      "Full-system co-simulation: real page tables in DRAM, functional\n\
       PT-Guard on every walk, Rowhammer attacker running concurrently.\n"
  in
  let configs =
    [
      ("baseline, no attack", true, false);
      ("PT-Guard under attack", true, true);
      ("UNPROTECTED under attack", false, true);
    ]
  in
  let closer () =
    print_endline
      "The number that matters: WRONG TRANSLATIONS is nonzero only on the\n\
       unprotected machine — the invariant of Section IV-G holds."
  in
  let run seed instrs trace metrics checkpoint_dir checkpoint_every resume =
    (match checkpoint_every with
    | Some n when n < 1 ->
        Printf.eprintf "fullsys: --checkpoint-every must be >= 1\n";
        exit 2
    | _ -> ());
    if checkpoint_dir = None && (checkpoint_every <> None || resume) then begin
      Printf.eprintf
        "fullsys: --checkpoint-every and --resume need --checkpoint-dir\n";
      exit 2
    end;
    match checkpoint_dir with
    | None ->
        let obs = sink_of ~trace ~metrics in
        banner ();
        List.iter
          (fun (label, guarded, attack) ->
            let config =
              { Ptg_sim.Fullsys.default_config with guarded; attack }
            in
            let t = Ptg_sim.Fullsys.create ~config ?obs ~seed () in
            let r = Ptg_sim.Fullsys.run t ~instrs in
            Printf.printf "=== %s ===\n" label;
            Format.printf "%a@.@." Ptg_sim.Fullsys.pp_result r)
          configs;
        closer ();
        export_sink obs ~trace ~metrics
    | Some dir ->
        (* Checkpointing excludes observability (the sink is not part of
           the snapshot, so a resumed run could not reproduce it). *)
        if trace <> None || metrics <> None then begin
          Printf.eprintf
            "fullsys: --checkpoint-dir excludes --trace/--metrics \
             (observer state is not checkpointed)\n";
          exit 2
        end;
        banner ();
        List.iter
          (fun (label, guarded, attack) ->
            let config =
              { Ptg_sim.Fullsys.default_config with guarded; attack }
            in
            let key = Ptg_sim.Checkpoint.fullsys_key ~config ~seed () in
            let o =
              Ptg_sim.Checkpoint.run_fullsys ~config ~key
                ?every:checkpoint_every ~dir ~adopt:resume ~seed ~instrs ()
            in
            Option.iter
              (fun n ->
                Printf.eprintf "fullsys: %s: resumed from %d/%d instructions\n%!"
                  label n instrs)
              o.Ptg_sim.Checkpoint.f_resumed_from;
            Printf.printf "=== %s ===\n" label;
            Format.printf "%a@.@." Ptg_sim.Fullsys.pp_result
              o.Ptg_sim.Checkpoint.f_result)
          configs;
        closer ()
  in
  Cmd.v
    (Cmd.info "fullsys"
       ~doc:"Full-system co-simulation: execution + live Rowhammer + functional \
             PT-Guard on real in-DRAM page tables. With --checkpoint-dir, \
             periodically snapshot state and (with --resume) warm-start a \
             killed run byte-identically.")
    Term.(
      const run $ seed_arg $ instrs $ trace_file_arg $ metrics_arg
      $ checkpoint_dir $ checkpoint_every $ resume)

let stats_cmd =
  let instrs =
    Arg.(value & opt int 20_000 & info [ "instrs" ] ~docv:"N" ~doc:"Instructions.")
  in
  let pages =
    Arg.(value & opt int 512 & info [ "pages" ] ~docv:"N" ~doc:"Mapped pages.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the registry as line-JSON instead of CSV.")
  in
  let run seed instrs pages json trace =
    let r = Ptg_sim.Stats_exp.run ~seed ~pages ~instrs () in
    let snap = Ptg_obs.Sink.metrics r.Ptg_sim.Stats_exp.sink in
    print_string
      (if json then Ptg_obs.Registry.to_jsonl snap
       else Ptg_obs.Registry.to_csv snap);
    Option.iter (save_trace r.Ptg_sim.Stats_exp.sink) trace
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"One fully-observed full-system run; dump every metric the stack \
             reports (engine, memory controller, DRAM, TLB, OS journal).")
    Term.(const run $ seed_arg $ instrs $ pages $ json $ trace_file_arg)

(* ---------------------------------------------------------------- *)
(* Serving                                                           *)
(* ---------------------------------------------------------------- *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket at $(docv).")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT"
        ~doc:"TCP on 127.0.0.1:$(docv) (0 picks an ephemeral port).")

let addr_of ~cmd ~required socket port =
  match (socket, port) with
  | Some _, Some _ ->
      Printf.eprintf "%s: --socket and --port are mutually exclusive\n" cmd;
      exit 2
  | Some path, None -> Ptg_server.Server.Unix_socket path
  | None, Some port -> Ptg_server.Server.Tcp port
  | None, None ->
      if required then begin
        Printf.eprintf "%s: need --socket PATH or --port PORT\n" cmd;
        exit 2
      end
      else Ptg_server.Server.Tcp 0

let serve_cmd =
  let high_water =
    Arg.(
      value
      & opt (some int) None
      & info [ "high-water" ] ~docv:"N"
          ~doc:
            "In-flight computations beyond which new requests are shed \
             with an immediate overloaded response (default: 2x workers).")
  in
  let cache =
    Arg.(
      value & opt int 64
      & info [ "cache" ] ~docv:"N" ~doc:"Result-cache capacity (LRU entries).")
  in
  let deadline =
    Arg.(
      value & opt float 30.
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:
            "Per-request compute budget: a request whose scenario has \
             not finished after $(docv) gets a timeout frame (the \
             computation keeps its worker until it really finishes).")
  in
  let slices =
    Arg.(
      value & opt int 0
      & info [ "slices" ] ~docv:"N"
          ~doc:
            "Deadline-slice budget: instead of a timeout frame, a \
             sliceable scenario that exhausts --deadline checkpoints, \
             is requeued, and gets another compute window — up to \
             $(docv) times per request (0 disables). Pair with \
             --snapshot-dir: each slice resumes from the previous \
             one's persisted checkpoint, so the window extension \
             actually buys forward progress.")
  in
  let idle_timeout =
    Arg.(
      value & opt float 60.
      & info [ "idle-timeout" ] ~docv:"SECS"
          ~doc:
            "Close a connection whose socket stays idle (or unwritable) \
             for $(docv); 0 disables.")
  in
  let max_conns =
    Arg.(
      value & opt int 256
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Concurrent-connection cap; accepts beyond it are shed with \
             a best-effort overloaded frame.")
  in
  let drain_deadline =
    Arg.(
      value & opt float 5.
      & info [ "drain-deadline" ] ~docv:"SECS"
          ~doc:
            "On shutdown, force-close connections still open after \
             $(docv).")
  in
  let inject_fault =
    (* Testing hook; see Ptg_server.Faults.of_spec for the grammar. *)
    Arg.(
      value
      & opt (some string) None
      & info [ "inject-fault" ] ~docv:"SPEC"
          ~doc:
            "(testing) Arm a chaos fault: delay:SECS, wedge:SECS, torn \
             or drop, optionally :TIMES (e.g. wedge:2:3).")
  in
  let cache_bytes =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-bytes" ] ~docv:"BYTES"
          ~doc:
            "Byte budget for the result cache (key + value weights), \
             enforced alongside the entry cap; unset means entries-only.")
  in
  let snapshot_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot-dir" ] ~docv:"DIR"
          ~doc:
            "Warm-start store: checkpoint fullsys and single-seed fig6 \
             computations into $(docv) and adopt stored prefixes on \
             later requests — including retries of runs a client \
             cancelled or a drain interrupted.")
  in
  let snapshot_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:
            "Checkpoint cadence in instructions (fullsys) or rows \
             (fig6); also the granularity at which cancelled or drained \
             computations stop. Default: checkpoint at completion only.")
  in
  let run socket port jobs high_water cache cache_bytes snapshot_dir
      snapshot_every deadline slices idle_timeout max_conns drain_deadline
      inject_fault trace metrics =
    let addr = addr_of ~cmd:"serve" ~required:false socket port in
    let obs = sink_of ~trace ~metrics in
    let base = Ptg_server.Server.default_config addr in
    let faults = Ptg_server.Faults.create () in
    (match inject_fault with
    | None -> ()
    | Some spec -> (
        match Ptg_server.Faults.of_spec spec with
        | Ok (kind, times) -> Ptg_server.Faults.arm ~times faults kind
        | Error msg ->
            Printf.eprintf "serve: --inject-fault: %s\n" msg;
            exit 2));
    let config =
      {
        base with
        Ptg_server.Server.workers = jobs;
        high_water = Option.value high_water ~default:(max 4 (2 * jobs));
        cache_capacity = cache;
        cache_bytes;
        snapshot_dir;
        snapshot_every;
        deadline_s = deadline;
        slices;
        idle_timeout_s = idle_timeout;
        max_conns;
        drain_deadline_s = drain_deadline;
        obs;
        faults;
      }
    in
    let server =
      try Ptg_server.Server.start config
      with Invalid_argument msg ->
        Printf.eprintf "serve: %s\n" msg;
        exit 2
    in
    (match Ptg_server.Server.listen_addr server with
    | Ptg_server.Server.Unix_socket path ->
        Printf.printf "serving on %s (workers %d, high-water %d, cache %d)\n%!"
          path config.Ptg_server.Server.workers
          config.Ptg_server.Server.high_water cache
    | Ptg_server.Server.Tcp port ->
        Printf.printf
          "serving on 127.0.0.1:%d (workers %d, high-water %d, cache %d)\n%!"
          port config.Ptg_server.Server.workers
          config.Ptg_server.Server.high_water cache);
    Ptg_server.Server.wait server;
    print_endline "server stopped; final stats:";
    List.iter
      (fun (k, v) -> Printf.printf "  %-16s %.0f\n" k v)
      (Ptg_server.Server.stats server);
    export_sink obs ~trace ~metrics
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the scenario server: line-JSON requests over a socket, \
          results computed on a domain pool behind an LRU cache with \
          load shedding, per-request deadlines, idle timeouts and a \
          connection cap. Stops on a shutdown frame.")
    Term.(
      const run $ socket_arg $ port_arg $ jobs_arg $ high_water $ cache
      $ cache_bytes $ snapshot_dir $ snapshot_every
      $ deadline $ slices $ idle_timeout $ max_conns $ drain_deadline
      $ inject_fault $ trace_file_arg $ metrics_arg)

let loadgen_cmd =
  let clients =
    Arg.(
      value & opt int 8
      & info [ "clients" ] ~docv:"N" ~doc:"Concurrent closed-loop clients.")
  in
  let requests =
    Arg.(
      value & opt int 20
      & info [ "requests" ] ~docv:"N" ~doc:"Requests per client.")
  in
  let kind =
    (* Trace scenarios need a server-local trace file the loadgen cannot
       synthesize; exercise them via `serve` + a run frame instead. *)
    let kinds =
      List.filter_map
        (fun k ->
          if k = Ptg_sim.Scenario.Trace then None
          else Some (Ptg_sim.Scenario.kind_name k, k))
        Ptg_sim.Scenario.kinds
    in
    Arg.(
      value
      & opt (enum kinds) Ptg_sim.Scenario.Fig6
      & info [ "kind" ] ~docv:"KIND" ~doc:"Scenario kind to request.")
  in
  let reduced =
    Arg.(
      value & flag
      & info [ "reduced" ] ~doc:"Use the bench-reduced scenario sizes.")
  in
  let distinct =
    Arg.(
      value & opt int 1
      & info [ "distinct" ] ~docv:"N"
          ~doc:
            "Cycle through N scenarios differing only in seed (1 keeps \
             the server cache-hot after the first response).")
  in
  let retries =
    Arg.(
      value & opt int Ptg_server.Client.default_retry.Ptg_server.Client.attempts
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Attempts per request (>= 1): transport failures reconnect \
             and retry with jittered exponential backoff. Retries are \
             lossless — scenarios are deterministic and cache-keyed.")
  in
  let backoff =
    Arg.(
      value
      & opt float
          Ptg_server.Client.default_retry.Ptg_server.Client.base_backoff_s
      & info [ "backoff" ] ~docv:"SECS"
          ~doc:"Base retry backoff (doubles per attempt, jittered).")
  in
  let connect_timeout =
    Arg.(
      value & opt (some float) None
      & info [ "connect-timeout" ] ~docv:"SECS"
          ~doc:"Fail a connect attempt after $(docv).")
  in
  let request_timeout =
    Arg.(
      value & opt (some float) None
      & info [ "request-timeout" ] ~docv:"SECS"
          ~doc:"Fail (and retry) a request with no reply after $(docv).")
  in
  let swarm =
    Arg.(
      value & opt int 1
      & info [ "swarm" ] ~docv:"N"
          ~doc:
            "Independent sessions per client thread, dealt requests \
             round-robin: N x --clients connections without N x the \
             threads — the mode that soaks a sharded router.")
  in
  let run socket port seed kind reduced distinct clients requests retries
      backoff connect_timeout request_timeout swarm =
    let addr = addr_of ~cmd:"loadgen" ~required:true socket port in
    if clients < 1 || requests < 1 || distinct < 1 || swarm < 1 then begin
      Printf.eprintf
        "loadgen: --clients/--requests/--distinct/--swarm must be >= 1\n";
      exit 2
    end;
    if retries < 1 || backoff < 0. then begin
      Printf.eprintf "loadgen: --retries must be >= 1, --backoff >= 0\n";
      exit 2
    end;
    let scenarios =
      List.init distinct (fun i ->
          Ptg_sim.Scenario.make
            ~seed:(Int64.add seed (Int64.of_int i))
            ~reduced kind)
    in
    let policy =
      {
        Ptg_server.Client.default_retry with
        Ptg_server.Client.attempts = retries;
        base_backoff_s = backoff;
      }
    in
    let report =
      Ptg_server.Client.loadgen ~policy ?connect_timeout_s:connect_timeout
        ?request_timeout_s:request_timeout ~swarm ~addr ~clients
        ~requests_per_client:requests ~scenarios ()
    in
    print_string (Ptg_server.Client.report_to_string report);
    (* A run where nothing succeeded is a failure, and scripts must see
       it as one — the percentile lines already read n/a. *)
    if report.Ptg_server.Client.ok = 0 then exit 1
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Closed-loop load generator against a running serve instance: \
          N concurrent clients, throughput and p50/p95/p99 latency, \
          with lossless transport-failure retries.")
    Term.(
      const run $ socket_arg $ port_arg $ seed_arg $ kind $ reduced $ distinct
      $ clients $ requests $ retries $ backoff $ connect_timeout
      $ request_timeout $ swarm)

let serve_router_cmd =
  let shard_args =
    Arg.(
      value & opt_all string []
      & info [ "shard" ] ~docv:"ADDR"
          ~doc:
            "Backend shard address: a TCP port number (on 127.0.0.1) or \
             a unix socket path. Repeatable; shard ids follow the order \
             given.")
  in
  let spawn =
    Arg.(
      value & opt int 0
      & info [ "spawn" ] ~docv:"N"
          ~doc:
            "Fork N shard processes (each a $(b,serve --port 0) child of \
             this binary) and route across them in addition to any \
             --shard addresses; they are shut down when the router \
             stops.")
  in
  let cache =
    Arg.(
      value & opt int 64
      & info [ "cache" ] ~docv:"N"
          ~doc:"Router hot-set cache capacity (LRU entries).")
  in
  let cache_bytes =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-bytes" ] ~docv:"BYTES"
          ~doc:
            "Byte budget for the hot-set cache (key + value weights), \
             enforced alongside the entry cap; unset means entries-only.")
  in
  let vnodes =
    Arg.(
      value & opt int 64
      & info [ "vnodes" ] ~docv:"N"
          ~doc:"Consistent-hash ring points per shard.")
  in
  let health_interval =
    Arg.(
      value & opt float 0.5
      & info [ "health-interval" ] ~docv:"SECS"
          ~doc:
            "Delay between health-ping sweeps over the shards; failures \
             accumulate strikes until ejection, a successful ping \
             re-admits the shard.")
  in
  let strikes =
    Arg.(
      value & opt int 3
      & info [ "strikes" ] ~docv:"N"
          ~doc:"Consecutive health failures before a shard is ejected.")
  in
  let request_timeout =
    Arg.(
      value & opt float 30.
      & info [ "request-timeout" ] ~docv:"SECS"
          ~doc:
            "Per-forward socket deadline; an expiry counts as a \
             transport failure (retried, then the shard is ejected and \
             the request re-routed).")
  in
  let idle_timeout =
    Arg.(
      value & opt float 60.
      & info [ "idle-timeout" ] ~docv:"SECS"
          ~doc:
            "Close a client connection whose socket stays idle for \
             $(docv); 0 disables.")
  in
  let max_conns =
    Arg.(
      value & opt int 256
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Concurrent-connection cap; accepts beyond it are shed with \
             a best-effort overloaded frame.")
  in
  let drain_deadline =
    Arg.(
      value & opt float 5.
      & info [ "drain-deadline" ] ~docv:"SECS"
          ~doc:
            "On shutdown, force-close connections still open after \
             $(docv).")
  in
  let shard_snapshot_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot-dir" ] ~docv:"DIR"
          ~doc:
            "Pass $(b,--snapshot-dir) $(docv) to every spawned shard: \
             one shared warm-start store, so when a shard dies \
             mid-slice the ring successor that adopts the re-routed \
             request resumes from the victim's deepest checkpoint \
             instead of recomputing. Content-hash keys and write-once \
             atomic saves make the sharing race-free.")
  in
  let shard_snapshot_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:"Pass $(b,--snapshot-every) $(docv) to every spawned shard.")
  in
  let shard_slices =
    Arg.(
      value & opt int 0
      & info [ "slices" ] ~docv:"N"
          ~doc:
            "Pass $(b,--slices) $(docv) to every spawned shard: \
             deadline expiries checkpoint and requeue (the shard keeps \
             the router alive with progress frames) instead of \
             returning timeout frames.")
  in
  let shard_deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:
            "Pass $(b,--deadline) $(docv) to every spawned shard (the \
             per-slice compute window when --slices is set).")
  in
  (* A spawned shard announces its kernel-chosen port on its first
     stdout line; everything after that flows to our stdout untouched. *)
  let spawn_shard extra i =
    let r, w = Unix.pipe () in
    let pid =
      Unix.create_process Sys.executable_name
        (Array.append [| Sys.executable_name; "serve"; "--port"; "0" |] extra)
        Unix.stdin w Unix.stderr
    in
    Unix.close w;
    let ic = Unix.in_channel_of_descr r in
    let fail msg =
      Printf.eprintf "serve-router: spawned shard %d %s\n" i msg;
      exit 1
    in
    match input_line ic with
    | exception End_of_file -> fail "exited before announcing its address"
    | line -> (
        match Scanf.sscanf_opt line "serving on 127.0.0.1:%d" (fun p -> p) with
        | Some port -> (pid, ic, Ptg_server.Server.Tcp port)
        | None -> fail (Printf.sprintf "announced %S, expected a port" line))
  in
  let shutdown_shard (pid, ic, addr) =
    (try
       let c = Ptg_server.Client.connect ~timeout_s:1.0 addr in
       ignore (Ptg_server.Client.request ~timeout_s:5.0 c Ptg_server.Protocol.Shutdown);
       Ptg_server.Client.close c
     with _ -> ());
    (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
    close_in_noerr ic
  in
  let run socket port shard_addrs spawn snapshot_dir snapshot_every slices
      deadline cache cache_bytes vnodes health_interval strikes
      request_timeout idle_timeout max_conns drain_deadline trace metrics =
    let addr = addr_of ~cmd:"serve-router" ~required:false socket port in
    if spawn < 0 then begin
      Printf.eprintf "serve-router: --spawn must be >= 0\n";
      exit 2
    end;
    if shard_addrs = [] && spawn = 0 then begin
      Printf.eprintf
        "serve-router: need at least one shard (--shard ADDR or --spawn N)\n";
      exit 2
    end;
    let named =
      List.map
        (fun s ->
          match int_of_string_opt s with
          | Some p when p >= 0 -> Ptg_server.Server.Tcp p
          | _ -> Ptg_server.Server.Unix_socket s)
        shard_addrs
    in
    let shard_extra =
      Array.of_list
        (List.concat
           [
             (match snapshot_dir with
             | Some d -> [ "--snapshot-dir"; d ]
             | None -> []);
             (match snapshot_every with
             | Some n -> [ "--snapshot-every"; string_of_int n ]
             | None -> []);
             (if slices > 0 then [ "--slices"; string_of_int slices ] else []);
             (match deadline with
             | Some s -> [ "--deadline"; Printf.sprintf "%g" s ]
             | None -> []);
           ])
    in
    let children = List.init spawn (spawn_shard shard_extra) in
    let shards = named @ List.map (fun (_, _, a) -> a) children in
    let obs = sink_of ~trace ~metrics in
    let base = Ptg_server.Router.default_config addr ~shards in
    let config =
      {
        base with
        Ptg_server.Router.cache_capacity = cache;
        cache_bytes;
        vnodes;
        health_interval_s = health_interval;
        strike_limit = strikes;
        request_timeout_s = request_timeout;
        idle_timeout_s = idle_timeout;
        max_conns;
        drain_deadline_s = drain_deadline;
        obs;
      }
    in
    let router =
      try Ptg_server.Router.start config
      with Invalid_argument msg ->
        List.iter shutdown_shard children;
        Printf.eprintf "serve-router: %s\n" msg;
        exit 2
    in
    (match Ptg_server.Router.listen_addr router with
    | Ptg_server.Server.Unix_socket path ->
        Printf.printf "routing on %s across %d shards (cache %d, vnodes %d)\n%!"
          path (List.length shards) cache vnodes
    | Ptg_server.Server.Tcp port ->
        Printf.printf
          "routing on 127.0.0.1:%d across %d shards (cache %d, vnodes %d)\n%!"
          port (List.length shards) cache vnodes);
    Ptg_server.Router.wait router;
    List.iter shutdown_shard children;
    print_endline "router stopped; final stats:";
    List.iter
      (fun (k, v) -> Printf.printf "  %-16s %.0f\n" k v)
      (Ptg_server.Router.stats router);
    export_sink obs ~trace ~metrics
  in
  Cmd.v
    (Cmd.info "serve-router"
       ~doc:
         "Run the sharding front tier: consistent-hash route each \
          request's canonical scenario hash across backend shards, with \
          a router-local hot-set cache, health-check ejection and \
          re-admission, and transport-crash re-routing. Stops on a \
          shutdown frame.")
    Term.(
      const run $ socket_arg $ port_arg $ shard_args $ spawn
      $ shard_snapshot_dir $ shard_snapshot_every $ shard_slices
      $ shard_deadline $ cache $ cache_bytes $ vnodes $ health_interval
      $ strikes $ request_timeout $ idle_timeout $ max_conns
      $ drain_deadline $ trace_file_arg $ metrics_arg)

let all_cmd =
  let run seed jobs =
    Ptg_sim.Tables_exp.print_all ();
    print_newline ();
    Ptg_sim.Security_exp.print (Ptg_sim.Security_exp.run ());
    print_newline ();
    Ptg_sim.Fig6.print (Ptg_sim.Fig6.run ~jobs ~seed ());
    print_newline ();
    Ptg_sim.Fig7.print (Ptg_sim.Fig7.run ~jobs ~seed ());
    print_newline ();
    Ptg_sim.Fig8.print (Ptg_sim.Fig8.run ~jobs ~seed ());
    print_newline ();
    Ptg_sim.Fig9.print (Ptg_sim.Fig9.run ~jobs ~seed ());
    print_newline ();
    Ptg_sim.Multicore_exp.print (Ptg_sim.Multicore_exp.run ~jobs ~seed ());
    print_newline ();
    Ptg_sim.Attacks_exp.print (Ptg_sim.Attacks_exp.run ~seed ());
    print_newline ();
    Ptg_sim.Baselines_exp.print (Ptg_sim.Baselines_exp.run ~seed ());
    print_newline ();
    Ptg_sim.Ablations.print_correction (Ptg_sim.Ablations.correction ~jobs ~seed ());
    print_newline ();
    Ptg_sim.Ablations.print_pattern (Ptg_sim.Ablations.pattern ~seed ());
    print_newline ();
    Ptg_sim.Ablations.print_ctb (Ptg_sim.Ablations.ctb_overflow ~seed ())
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Regenerate every table and figure in sequence.")
    Term.(const run $ seed_arg $ jobs_arg)

let () =
  let info =
    Cmd.info "ptguard_cli" ~version:"1.0.0"
      ~doc:"PT-Guard (DSN 2023) reproduction: experiments and demos."
  in
  let cmds =
    [
      fig6_cmd; fig7_cmd; fig8_cmd; fig9_cmd; security_cmd; multicore_cmd;
      tables_cmd; attacks_cmd; baselines_cmd; ablations_cmd; trace_cmd;
      fullsys_cmd; stats_cmd; serve_cmd; serve_router_cmd; loadgen_cmd; all_cmd;
    ]
  in
  let names = List.sort compare (List.map Cmd.name cmds) in
  (* An unknown subcommand gets a one-screen answer — the full command
     list — instead of cmdliner's generic error. Unique-prefix
     invocations (e.g. "tab" for tables) still go through cmdliner. *)
  (if Array.length Sys.argv > 1 then
     let first = Sys.argv.(1) in
     let is_prefix name =
       String.length first <= String.length name
       && String.sub name 0 (String.length first) = first
     in
     if String.length first > 0 && first.[0] <> '-'
        && not (List.exists is_prefix names)
     then begin
       Printf.eprintf "ptguard_cli: unknown subcommand \"%s\"\n" first;
       Printf.eprintf "usage: ptguard_cli COMMAND [OPTION]...\n";
       Printf.eprintf "commands: %s\n" (String.concat ", " names);
       exit 2
     end);
  exit (Cmd.eval (Cmd.group info cmds))

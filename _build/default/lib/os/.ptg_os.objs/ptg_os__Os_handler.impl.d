lib/os/os_handler.ml: Format Hashtbl Int64 List Option Ptg_dram Ptg_memctrl Ptg_pte Ptg_util Ptg_vm Ptguard

lib/os/os_handler.mli: Format Ptg_memctrl Ptg_pte Ptg_util Ptg_vm

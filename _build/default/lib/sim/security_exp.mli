(** Sections IV-G and VI-E: analytical security of the MAC.

    Paper results being reproduced: a 96-bit MAC takes > 10^14 years to
    defeat at one attempt per 50 ns; soft-matching k = 4 MAC bits (needed
    for < 1% uncorrectable MACs at p_flip = 1%) with G_max = 372 guesses
    leaves an effective 66-bit MAC, still > 10^4 years. *)

type k_row = {
  k : int;
  p_uncorrectable_1pct : float;
  p_uncorrectable_0p2pct : float;
  n_eff : float;
  years : float;
}

type result = {
  report : Ptg_crypto.Security.report;
  k_sweep : k_row list;          (** k = 0..8: the Section VI-E trade-off *)
  chosen_k : int;                (** smallest k with <1% uncorrectable @ 1% *)
  mac_width_sweep : (int * float * float) list;
      (** (width, n_eff with k=4 corr., years) — Section VII-A ablation *)
}

val run : ?g_max:int -> unit -> result
val print : result -> unit

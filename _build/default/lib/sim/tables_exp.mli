(** Tables I-IV of the paper, regenerated from the implementation.

    These are definitional tables (PTE layouts, system configuration,
    protected bits); regenerating them from the codecs proves the
    implementation encodes the same architecture the paper describes, and
    the unit tests assert every row. *)

val print_table_i : unit -> unit
(** x86_64 PTE layout (from {!Ptg_pte.X86}). *)

val print_table_ii : unit -> unit
(** ARMv8 descriptor layout (from {!Ptg_pte.Armv8}). *)

val print_table_iii : unit -> unit
(** Baseline system configuration (from the timing model's defaults). *)

val print_table_iv : ?config:Ptg_pte.Protection.config -> unit -> unit
(** MAC-protected bits (from {!Ptg_pte.Protection}). *)

val print_cost : ?config:Ptguard.Config.t -> unit -> unit
(** Section V-E storage/power summary for both designs. *)

val print_all : unit -> unit

lib/sim/fig8.mli: Ptg_vm

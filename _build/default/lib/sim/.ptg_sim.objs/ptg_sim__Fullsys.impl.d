lib/sim/fullsys.ml: Array Format Frame_allocator Hashtbl Int64 Page_table Ptg_cpu Ptg_dram Ptg_memctrl Ptg_pte Ptg_rowhammer Ptg_util Ptg_vm Ptguard Rng

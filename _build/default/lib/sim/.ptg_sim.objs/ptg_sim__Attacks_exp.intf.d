lib/sim/attacks_exp.mli:

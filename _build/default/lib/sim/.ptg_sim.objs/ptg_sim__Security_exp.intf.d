lib/sim/security_exp.mli: Ptg_crypto

lib/sim/fig8.ml: Array List Printf Ptg_util Ptg_vm Rng Table

lib/sim/fig7.mli: Ptg_workloads Ptguard

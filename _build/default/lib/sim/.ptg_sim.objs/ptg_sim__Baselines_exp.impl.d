lib/sim/baselines_exp.ml: Array Bits Encrypted_pte Fun Int64 List Monotonic Ptg_baselines Ptg_pte Ptg_util Ptguard Rng Secwalk Table

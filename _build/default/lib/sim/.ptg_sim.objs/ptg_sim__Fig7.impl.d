lib/sim/fig7.ml: Array Int64 List Ptg_cpu Ptg_util Ptg_workloads Ptguard Rng Stats Table

lib/sim/multicore_exp.mli: Ptg_workloads Ptguard

lib/sim/walk_trace.ml: Array Fig9 Fun Hashtbl Int64 List Option Printf Ptg_cpu Ptg_rowhammer Ptg_util Ptg_vm Ptg_workloads Ptguard Rng String

lib/sim/security_exp.ml: Format Fun List Printf Ptg_crypto Ptg_util Security

lib/sim/baselines_exp.mli:

lib/sim/fig9.ml: Array Float Hashtbl Int64 List Option Printf Ptg_pte Ptg_rowhammer Ptg_util Ptg_vm Ptg_workloads Ptguard Rng Stats Table

lib/sim/multicore_exp.ml: Array Int64 List Printf Ptg_cpu Ptg_util Ptg_workloads Ptguard Rng Stats String Table

lib/sim/fullsys.mli: Format Ptg_rowhammer

lib/sim/walk_trace.mli: Hashtbl Ptg_pte Ptg_workloads

lib/sim/fig6.ml: Array Float Int64 List Printf Ptg_cpu Ptg_util Ptg_workloads Ptguard Rng Stats Table

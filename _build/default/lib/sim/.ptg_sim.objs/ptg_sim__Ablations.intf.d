lib/sim/ablations.mli: Ptg_workloads

lib/sim/attacks_exp.ml: Array List Option Printf Ptg_dram Ptg_mitigations Ptg_pte Ptg_rowhammer Ptg_util Ptg_vm Ptguard Rng Table

lib/sim/fig6.mli: Ptg_util Ptg_workloads Ptguard

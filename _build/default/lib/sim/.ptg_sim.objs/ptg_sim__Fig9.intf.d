lib/sim/fig9.mli: Ptg_util Ptg_workloads Ptguard

lib/sim/ablations.ml: Array Config Correction Ctb Engine Float Int64 List Printf Ptg_cpu Ptg_crypto Ptg_dram Ptg_memctrl Ptg_pte Ptg_rowhammer Ptg_util Ptg_vm Ptg_workloads Ptguard Rng Table

lib/sim/tables_exp.ml: Format List Printf Ptg_cpu Ptg_pte Ptg_util Ptguard Table

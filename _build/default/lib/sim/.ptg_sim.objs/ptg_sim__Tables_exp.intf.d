lib/sim/tables_exp.mli: Ptg_pte Ptguard

open Ptg_util

let print_table_i () =
  print_endline "Table I: x86_64 Page Table Entry";
  Table.print
    ~align:[ Table.Left; Left ]
    ~header:[ "Bit(s)"; "Purpose" ]
    [
       [ "0"; "Present" ];
       [ "1"; "Writable" ];
       [ "2"; "User Accessible" ];
       [ "3"; "Write Through" ];
       [ "4"; "Cache Disable" ];
       [ "5"; "Accessed" ];
       [ "6"; "Dirty" ];
       [ "7"; "2 MB Page" ];
       [ "8"; "Global" ];
       [ "11:9"; "Usable by OS" ];
       [ "51:12"; "PFN" ];
       [ "58:52"; "Ignored" ];
       [ "62:59"; "Memory Protection Keys" ];
       [ "63"; "No Execute" ];
     ]

let print_table_ii () =
  print_endline "Table II: ARMv8 Page Table Entry";
  Table.print
    ~align:[ Table.Left; Left ]
    ~header:[ "Bit(s)"; "Purpose" ]
    [
      [ "0"; "Valid" ];
      [ "1"; "Block (HP)" ];
      [ "5:2"; "Memory Attributes" ];
      [ "7:6"; "Access Permissions" ];
      [ "9:8"; "PFN[39:38]" ];
      [ "10"; "Accessed" ];
      [ "11"; "Caching" ];
      [ "49:12"; "PFN[37:0]" ];
      [ "50"; "Reserved" ];
      [ "51"; "Dirty" ];
      [ "52"; "Contiguous" ];
      [ "54:53"; "Execute-Never" ];
      [ "58:55"; "Ignored" ];
      [ "62:59"; "Hardware Attributes" ];
      [ "63"; "Reserved" ];
    ]

let print_table_iii () =
  let c = Ptg_cpu.Core.default_config in
  let cache_desc (cfg : Ptg_cpu.Cache.config) =
    Printf.sprintf "%dKB, %d-way" (cfg.Ptg_cpu.Cache.size_bytes / 1024)
      cfg.Ptg_cpu.Cache.assoc
  in
  print_endline "Table III: Baseline system configuration";
  Table.print
    ~align:[ Table.Left; Left ]
    ~header:[ "Component"; "Configuration" ]
    [
      [ "Core"; "In-order, 3 GHz, x86_64 ISA" ];
      [ "TLB"; Printf.sprintf "%d entry, fully associative" c.Ptg_cpu.Core.tlb_entries ];
      [ "MMU cache"; cache_desc c.Ptg_cpu.Core.mmu_cache ];
      [ "L1-D cache"; cache_desc c.Ptg_cpu.Core.l1 ];
      [ "L2 cache"; cache_desc c.Ptg_cpu.Core.l2 ];
      [ "L3 cache"; cache_desc c.Ptg_cpu.Core.l3 ];
      [ "DRAM"; "4 GB DDR4 (1 channel, 16 banks, 8KB rows)" ];
    ]

let print_table_iv ?(config = Ptg_pte.Protection.default) () =
  print_endline "Table IV: bits protected by the MAC in the PTE";
  Format.printf "%a@." (Ptg_pte.Protection.pp_table_iv config) ()

let print_cost ?config () =
  let configs =
    match config with
    | Some c -> [ c ]
    | None -> [ Ptguard.Config.baseline; Ptguard.Config.optimized ]
  in
  List.iter
    (fun cfg ->
      Printf.printf "%s (Section V-E):\n"
        (Ptguard.Config.design_name cfg.Ptguard.Config.design);
      Format.printf "%a@.@." Ptguard.Cost.pp (Ptguard.Cost.of_config cfg))
    configs

let print_all () =
  print_table_i ();
  print_newline ();
  print_table_ii ();
  print_newline ();
  print_table_iii ();
  print_newline ();
  print_table_iv ();
  print_newline ();
  print_cost ()

(** Attack-vs-mitigation matrix (paper Sections II-B/II-C and IV-G).

    Reproduces the motivation story end-to-end on the DRAM + fault-model
    substrate, with real PTE cachelines stored in the victim row:

    - double-sided hammering flips bits on unprotected DRAM;
    - in-DRAM TRR stops it, but many-sided (TRRespass) thrashes TRR's
      sampler and flips anyway;
    - Half-Double flips a distance-2 victim {e through} the mitigation's
      own victim refreshes;
    - Graphene provisioned for RTH 10K fails on an RTH 4.8K (LPDDR4-class)
      module — the design-time-threshold weakness;
    - in every breakthrough case, PT-Guard detects (or corrects) all
      tampered PTE lines on the simulated page-table walk: zero escapes. *)

type row = {
  attack : string;
  mitigation : string;
  rth : int;                 (** module's actual Rowhammer threshold *)
  activations : int;
  mitigation_refreshes : int;
  bit_flips : int;           (** flips landed in the victim row *)
  pte_lines_tampered : int;  (** victim PTE cachelines with flipped bits *)
  detected : int;            (** walks that raised PTECheckFailed *)
  corrected : int;           (** walks transparently corrected *)
  escapes : int;             (** tampered lines consumed: must be 0 *)
}

type result = { rows : row list }

val run : ?seed:int64 -> ?iterations:int -> unit -> result
(** [iterations] scales every attack's activation budget (default 400K
    rotations — enough to clear the RTH in each scripted scenario). *)

val print : result -> unit
val to_csv : result -> path:string -> unit

open Ptg_util

type row = {
  attack : string;
  mitigation : string;
  rth : int;
  activations : int;
  mitigation_refreshes : int;
  bit_flips : int;
  pte_lines_tampered : int;
  detected : int;
  corrected : int;
  escapes : int;
}

type result = { rows : row list }

type mitigation_kind =
  | No_mitigation
  | Trr
  | Para
  | Graphene of { threshold : int }
  | Soft_trr
  | Soft_trr_and_trr
      (** the deployment SoftTRR assumes: OS-level PT-row tracking layered
          over the module's own in-DRAM TRR *)

let mitigation_name = function
  | No_mitigation -> "none"
  | Trr -> "TRR"
  | Para -> "PARA"
  | Graphene { threshold } -> Printf.sprintf "Graphene(T=%d)" threshold
  | Soft_trr -> "SoftTRR"
  | Soft_trr_and_trr -> "SoftTRR+TRR"

type scenario = {
  label : string;
  pattern : int -> Ptg_rowhammer.Attack.pattern; (* victim row -> pattern *)
  mitigation : mitigation_kind;
  fault_config : Ptg_rowhammer.Fault_model.config;
}

let scenarios =
  let ddr4 = Ptg_rowhammer.Fault_model.ddr4 in
  (* Keep distance-2 coupling weak so Half-Double genuinely needs the
     mitigation's refreshes to push the victim past RTH. *)
  let ddr4 = { ddr4 with Ptg_rowhammer.Fault_model.distance2_weight = 0.01 } in
  let lpddr4 =
    { ddr4 with Ptg_rowhammer.Fault_model.rth = 4800; p_flip = 0.01 }
  in
  let double_sided v = Ptg_rowhammer.Attack.Double_sided { victim = v } in
  let many_sided v =
    (* TRRespass/SMASH: park decoys in the TRR sampler's post-REF window,
       hammer the true aggressors outside it. *)
    Ptg_rowhammer.Attack.Synchronized_many_sided
      {
        aggressors = [ v - 1; v + 1 ];
        decoys = [ v + 500; v + 502; v + 504; v + 506 ];
        ref_interval = 166;
        window = 8;
      }
  in
  let half_double v = Ptg_rowhammer.Attack.Half_double { victim = v; distance = 2 } in
  [
    { label = "double-sided"; pattern = double_sided; mitigation = No_mitigation; fault_config = ddr4 };
    { label = "double-sided"; pattern = double_sided; mitigation = Trr; fault_config = ddr4 };
    { label = "double-sided"; pattern = double_sided; mitigation = Para; fault_config = ddr4 };
    { label = "double-sided"; pattern = double_sided; mitigation = Graphene { threshold = 2500 }; fault_config = ddr4 };
    { label = "sync many-sided (TRRespass)"; pattern = many_sided; mitigation = Trr; fault_config = ddr4 };
    { label = "sync many-sided (TRRespass)"; pattern = many_sided; mitigation = Graphene { threshold = 2500 }; fault_config = ddr4 };
    { label = "half-double"; pattern = half_double; mitigation = No_mitigation; fault_config = ddr4 };
    { label = "half-double"; pattern = half_double; mitigation = Trr; fault_config = ddr4 };
    { label = "double-sided"; pattern = double_sided; mitigation = Soft_trr; fault_config = ddr4 };
    { label = "half-double"; pattern = half_double; mitigation = Soft_trr_and_trr; fault_config = ddr4 };
    { label = "double-sided @ RTH 4.8K"; pattern = double_sided; mitigation = Graphene { threshold = 2500 }; fault_config = lpddr4 };
    { label = "double-sided @ RTH 4.8K"; pattern = double_sided; mitigation = Graphene { threshold = 1200 }; fault_config = lpddr4 };
  ]

let victim_row = 1000
let channel = 0
let bank = 3

(* Fill the victim row with realistic PTE cachelines through the guarded
   controller, so flips land in protected lines. *)
let plant_pte_lines rng engine dram =
  let geometry = Ptg_dram.Dram.geometry dram in
  let params =
    { (Ptg_vm.Process_model.draw_params rng) with Ptg_vm.Process_model.target_ptes = 4096 }
  in
  let lines = Ptg_vm.Process_model.leaf_lines rng params in
  let cols = geometry.Ptg_dram.Geometry.columns in
  List.init (min cols (Array.length lines)) (fun col ->
      let coords =
        { Ptg_dram.Geometry.channel; rank = 0; bank; row = victim_row; col }
      in
      let addr = Ptg_dram.Geometry.encode geometry coords in
      let logical = lines.(col) in
      Ptg_dram.Dram.write_line dram addr
        (Ptguard.Engine.process_write engine ~addr logical);
      (addr, logical))

let run_scenario ~seed ~iterations scenario =
  let rng = Rng.create seed in
  let dram = Ptg_dram.Dram.create () in
  let fault =
    Ptg_rowhammer.Fault_model.attach ~config:scenario.fault_config
      ~rng:(Rng.split rng) dram
  in
  let pt_row ~channel:c ~bank:b ~row = c = channel && b = bank && row = victim_row in
  let mitigation =
    match scenario.mitigation with
    | No_mitigation -> None
    | Trr -> Some (Ptg_mitigations.Mitigation.attach_trr dram)
    | Para -> Some (Ptg_mitigations.Mitigation.attach_para ~rng:(Rng.split rng) dram)
    | Graphene { threshold } ->
        Some (Ptg_mitigations.Mitigation.attach_graphene ~threshold dram)
    | Soft_trr -> Some (Ptg_mitigations.Mitigation.attach_soft_trr ~pt_row dram)
    | Soft_trr_and_trr ->
        (* the in-DRAM TRR runs underneath; report SoftTRR's refreshes *)
        let _hw = Ptg_mitigations.Mitigation.attach_trr dram in
        Some (Ptg_mitigations.Mitigation.attach_soft_trr ~pt_row dram)
  in
  let engine = Ptguard.Engine.create ~config:Ptguard.Config.optimized ~rng:(Rng.split rng) () in
  let planted = plant_pte_lines rng engine dram in
  let pattern = scenario.pattern victim_row in
  let start_acts = Ptg_dram.Dram.total_activations dram in
  ignore
    (Ptg_rowhammer.Attack.run dram ~channel ~bank pattern ~iterations ~start_time:0);
  let activations = Ptg_dram.Dram.total_activations dram - start_acts in
  (* Count flips that landed in the victim row and replay page-table walks
     over the planted lines. *)
  let bit_flips =
    List.length
      (List.filter
         (fun f ->
           f.Ptg_rowhammer.Fault_model.row = victim_row
           && f.Ptg_rowhammer.Fault_model.bank = bank)
         (Ptg_rowhammer.Fault_model.flips fault))
  in
  let mask = Ptg_pte.Protection.masked_for_mac Ptg_pte.Protection.default in
  let tampered = ref 0 and detected = ref 0 and corrected = ref 0 and escapes = ref 0 in
  List.iter
    (fun (addr, logical) ->
      let stored_now = Ptg_dram.Dram.read_line dram addr in
      let clean_stored = Ptguard.Engine.process_write engine ~addr logical in
      let was_tampered = not (Ptg_pte.Line.equal stored_now clean_stored) in
      if was_tampered then begin
        incr tampered;
        match Ptguard.Engine.process_read engine ~addr ~is_pte:true stored_now with
        | { Ptguard.Engine.integrity = Ptguard.Engine.Failed; _ } -> incr detected
        | { integrity = Ptguard.Engine.Corrected _; line = Some l; _ } ->
            if Ptg_pte.Line.equal (mask l) (mask logical) then incr corrected
            else incr escapes
        | { integrity = Ptguard.Engine.Passed; line = Some l; _ } ->
            (* Flips restricted to unprotected bits are benign. *)
            if Ptg_pte.Line.equal (mask l) (mask logical) then ()
            else incr escapes
        | _ -> incr escapes
      end)
    planted;
  {
    attack = scenario.label;
    mitigation = mitigation_name scenario.mitigation;
    rth = scenario.fault_config.Ptg_rowhammer.Fault_model.rth;
    activations;
    mitigation_refreshes =
      Option.fold ~none:0 ~some:Ptg_mitigations.Mitigation.refreshes_issued mitigation;
    bit_flips;
    pte_lines_tampered = !tampered;
    detected = !detected;
    corrected = !corrected;
    escapes = !escapes;
  }

let run ?(seed = 13L) ?(iterations = 400_000) () =
  { rows = List.map (run_scenario ~seed ~iterations) scenarios }

let header =
  [ "attack"; "mitigation"; "RTH"; "ACTs"; "refreshes"; "flips"; "tampered lines";
    "detected"; "corrected"; "escapes" ]

let to_rows result =
  List.map
    (fun r ->
      [
        r.attack;
        r.mitigation;
        string_of_int r.rth;
        string_of_int r.activations;
        string_of_int r.mitigation_refreshes;
        string_of_int r.bit_flips;
        string_of_int r.pte_lines_tampered;
        string_of_int r.detected;
        string_of_int r.corrected;
        string_of_int r.escapes;
      ])
    result.rows

let print result =
  print_endline "Rowhammer attacks vs mitigations, with PT-Guard as the backstop";
  Table.print
    ~align:[ Table.Left; Left; Right; Right; Right; Right; Right; Right; Right; Right ]
    ~header (to_rows result);
  print_endline
    "Expected shape: TRR stops double-sided but not many-sided or\n\
     half-double; Graphene provisioned for RTH 10K fails at RTH 4.8K;\n\
     PT-Guard detects or corrects every tampered PTE line (escapes = 0)."

let to_csv result ~path = Table.save_csv ~path ~header (to_rows result)

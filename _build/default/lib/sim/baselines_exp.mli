(** Prior page-table defenses vs PT-Guard (paper Sections II-E and VIII-C).

    Reproduces the paper's qualitative comparison as a measured matrix.
    Six threat scenarios are thrown at four defenses (none, Monotonic
    Pointers, SecWalk-style EDC, PT-Guard) and each trial is scored:

    - [blocked]: the tampering could not produce a dangerous value
      (Monotonic's placement guarantee);
    - [detected]: the defense flagged the corruption before use;
    - [corrected]: flagged and transparently repaired (PT-Guard only);
    - [escaped]: a tampered PTE would have been consumed.

    The paper's claims this table demonstrates: Monotonic leaves every
    non-PFN field exposed and collapses on anti-cell flips; a keyless EDC
    is forged outright and never binds the address; PT-Guard detects
    everything and corrects most. *)

type outcome_counts = {
  trials : int;
  blocked : int;
  detected : int;
  corrected : int;
  escaped : int;
}

type row = { threat : string; defense : string; counts : outcome_counts }
type result = { rows : row list }

val threats : string list

val run : ?trials:int -> ?seed:int64 -> unit -> result
(** Default 500 trials per (threat, defense) cell. *)

val print : result -> unit
val to_csv : result -> path:string -> unit

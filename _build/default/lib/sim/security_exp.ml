open Ptg_crypto

type k_row = {
  k : int;
  p_uncorrectable_1pct : float;
  p_uncorrectable_0p2pct : float;
  n_eff : float;
  years : float;
}

type result = {
  report : Security.report;
  k_sweep : k_row list;
  chosen_k : int;
  mac_width_sweep : (int * float * float) list;
}

let run ?(g_max = 372) () =
  let n = 96 in
  let k_sweep =
    List.map
      (fun k ->
        let n_eff = Security.effective_mac_bits ~n ~k ~g_max in
        {
          k;
          p_uncorrectable_1pct = Security.p_uncorrectable ~n ~p_flip:0.01 ~k;
          p_uncorrectable_0p2pct = Security.p_uncorrectable ~n ~p_flip:0.002 ~k;
          n_eff;
          years =
            Security.years_to_attack ~log2_p_success:(-.n_eff)
              ~attempts_per_sec:Security.dram_attempts_per_sec;
        })
      (List.init 9 Fun.id)
  in
  let mac_width_sweep =
    List.map
      (fun width ->
        let n_eff = Security.effective_mac_bits ~n:width ~k:4 ~g_max in
        ( width,
          n_eff,
          Security.years_to_attack ~log2_p_success:(-.n_eff)
            ~attempts_per_sec:Security.dram_attempts_per_sec ))
      [ 48; 64; 80; 96 ]
  in
  {
    report = Security.report ~g_max ();
    k_sweep;
    chosen_k = Security.min_k ~n ~p_flip:0.01 ~target:0.01;
    mac_width_sweep;
  }

let print result =
  print_endline "Security analysis (Sections IV-G and VI-E, Equations 1-2)";
  Format.printf "%a@." Security.pp_report result.report;
  Printf.printf "\nSoft-match tolerance sweep (96-bit MAC, G_max=%d):\n"
    result.report.Security.g_max;
  Ptg_util.Table.print
    ~align:[ Ptg_util.Table.Right; Right; Right; Right; Right ]
    ~header:[ "k"; "P[unc.] @1%"; "P[unc.] @0.2%"; "n_eff (bits)"; "attack years" ]
    (List.map
       (fun r ->
         [
           string_of_int r.k;
           Printf.sprintf "%.3g" r.p_uncorrectable_1pct;
           Printf.sprintf "%.3g" r.p_uncorrectable_0p2pct;
           Printf.sprintf "%.1f" r.n_eff;
           Printf.sprintf "%.3g" r.years;
         ])
       result.k_sweep);
  Printf.printf
    "Chosen k = %d (smallest with <1%% uncorrectable MACs at p_flip = 1%%; paper: 4).\n\n"
    result.chosen_k;
  print_endline "MAC width ablation (Section VII-A), with k=4 correction:";
  Ptg_util.Table.print
    ~align:[ Ptg_util.Table.Right; Right; Right ]
    ~header:[ "MAC bits"; "n_eff"; "attack years" ]
    (List.map
       (fun (w, n_eff, years) ->
         [ string_of_int w; Printf.sprintf "%.1f" n_eff; Printf.sprintf "%.3g" years ])
       result.mac_width_sweep)

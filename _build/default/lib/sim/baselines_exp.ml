open Ptg_util
open Ptg_baselines

type outcome_counts = {
  trials : int;
  blocked : int;
  detected : int;
  corrected : int;
  escaped : int;
}

type row = { threat : string; defense : string; counts : outcome_counts }
type result = { rows : row list }

type outcome = Blocked | Detected | Corrected | Escaped

let threats =
  [
    "PFN flip (true cell, 1->0)";
    "PFN flip (anti cell, 0->1)";
    "U/S privilege-bit flip";
    "5 random flips";
    "surgical forge (keyless)";
    "PTE relocation/replay";
  ]

let defenses = [ "none"; "Monotonic"; "SecWalk-EDC"; "PTE-encryption"; "PT-Guard" ]

(* Victim environment shared by all trials: page tables live above the
   watermark frame; the attacker's PTEs point below it. *)
let watermark_pfn = 0x80000L

let make_line rng =
  let base = Int64.add 0x2000L (Int64.of_int (Rng.int rng 0x6000)) in
  Array.init 8 (fun i ->
      if Rng.bernoulli rng 0.25 then 0L
      else
        Ptg_pte.X86.make ~writable:true ~user:true
          ~pfn:(Int64.add base (Int64.of_int i))
          ())

(* --- the threats, expressed on (line, target PTE index) ---------------- *)

let pick_set_pfn_bit rng pte =
  let candidates =
    List.filter (fun b -> Bits.get pte (12 + b)) (List.init 19 Fun.id)
  in
  match candidates with
  | [] -> None
  | l -> Some (List.nth l (Rng.int rng (List.length l)))

let pick_clear_pfn_bit rng pte =
  let candidates =
    List.filter (fun b -> not (Bits.get pte (12 + b))) (List.init 28 Fun.id)
  in
  match candidates with
  | [] -> None
  | l -> Some (List.nth l (Rng.int rng (List.length l)))

(* --- per-defense evaluation ------------------------------------------- *)

let eval_none ~changed = if changed then Escaped else Blocked

let eval_monotonic ~threat ~pfn_bit ~anti_cell ~pte ~changed =
  match threat with
  | `Pfn ->
      let mono = Monotonic.create ~watermark_pfn in
      let pfn = Ptg_pte.X86.pfn pte in
      (match pfn_bit with
      | None -> Blocked
      | Some bit ->
          if Monotonic.pfn_flip_blocked mono ~pfn ~bit ~anti_cell then Blocked
          else Escaped)
  | `Other -> if changed then Escaped else Blocked

let eval_secwalk ~tampered_protected =
  if Secwalk.verify tampered_protected then Escaped else Detected

let eval_ptguard engine ~addr ~original ~faulty_stored =
  let masked = Ptg_pte.Protection.masked_for_mac Ptg_pte.Protection.default in
  match Ptguard.Engine.process_read engine ~addr ~is_pte:true faulty_stored with
  | { Ptguard.Engine.integrity = Ptguard.Engine.Failed; _ } -> Detected
  | { integrity = Ptguard.Engine.Corrected _; line = Some l; _ } ->
      if Ptg_pte.Line.equal (masked l) (masked original) then Corrected else Escaped
  | { integrity = Ptguard.Engine.Passed; line = Some l; _ } ->
      if Ptg_pte.Line.equal (masked l) (masked original) then Blocked else Escaped
  | _ -> Escaped

let run ?(trials = 500) ?(seed = 33L) () =
  let rng = Rng.create seed in
  let engine =
    Ptguard.Engine.create ~config:Ptguard.Config.optimized ~rng:(Rng.split rng) ()
  in
  let enc = Encrypted_pte.create ~rng:(Rng.split rng) in
  let addr_counter = ref 0 in
  let cell threat defense =
    let counts = { trials; blocked = 0; detected = 0; corrected = 0; escaped = 0 } in
    let acc = ref counts in
    for _ = 1 to trials do
      incr addr_counter;
      let addr = Int64.of_int (0x5000_0000 + (!addr_counter * 64)) in
      let line = make_line rng in
      let idx =
        let nonzero =
          List.filter (fun i -> not (Int64.equal line.(i) 0L)) (List.init 8 Fun.id)
        in
        List.nth nonzero (Rng.int rng (List.length nonzero))
      in
      let pte = line.(idx) in
      (* Build the tampered artifacts each defense sees. *)
      let outcome =
        (* Prepare threat-specific tampering. *)
        let kind, tampered_pte, pfn_bit, anti_cell =
          match threat with
          | "PFN flip (true cell, 1->0)" -> (
              match pick_set_pfn_bit rng pte with
              | Some b -> (`Pfn, Bits.clear pte (12 + b), Some b, false)
              | None -> (`Pfn, pte, None, false))
          | "PFN flip (anti cell, 0->1)" -> (
              match pick_clear_pfn_bit rng pte with
              | Some b -> (`Pfn, Bits.set pte (12 + b), Some b, true)
              | None -> (`Pfn, pte, None, true))
          | "U/S privilege-bit flip" -> (`Other, Bits.flip pte 2, None, false)
          | "5 random flips" ->
              let p = ref pte in
              for _ = 1 to 5 do
                (* flips across flags and PFN *)
                p := Bits.flip !p (Rng.int rng 40)
              done;
              (`Other, !p, None, false)
          | "surgical forge (keyless)" ->
              (* attacker-chosen PTE: kernel frame, user-accessible *)
              ( `Forge,
                Ptg_pte.X86.make ~writable:true ~user:true
                  ~pfn:(Int64.add watermark_pfn 7L) (),
                None, false )
          | "PTE relocation/replay" -> (`Replay, pte, None, false)
          | _ -> assert false
        in
        let changed = not (Int64.equal tampered_pte pte) in
        match defense with
        | "none" -> eval_none ~changed:(changed || kind = `Replay)
        | "Monotonic" -> (
            match kind with
            | `Pfn -> eval_monotonic ~threat:`Pfn ~pfn_bit ~anti_cell ~pte ~changed
            | `Forge ->
                (* the OS placement check rejects PFNs above the watermark
                   at map time, but the attacker writes via DRAM, not via
                   the OS *)
                Escaped
            | `Replay -> Escaped
            | `Other -> eval_monotonic ~threat:`Other ~pfn_bit ~anti_cell ~pte ~changed)
        | "SecWalk-EDC" -> (
            let protected_pte = Secwalk.protect pte in
            match kind with
            | `Forge ->
                eval_secwalk
                  ~tampered_protected:(Secwalk.forge protected_pte ~target:tampered_pte)
            | `Replay ->
                (* a validly protected PTE copied to another slot still
                   verifies: no address binding *)
                eval_secwalk ~tampered_protected:protected_pte
            | `Pfn | `Other ->
                if not changed then Blocked
                else
                  let t =
                    Int64.logor
                      (Int64.logand tampered_pte (Bits.mask 40))
                      (Int64.logand protected_pte (Int64.lognot (Bits.mask 40)))
                  in
                  eval_secwalk ~tampered_protected:t)
        | "PTE-encryption" -> (
            (* No authentication: any physical tampering decrypts to
               garbage that is consumed undetected (counted as escaped —
               the walk proceeds on meaningless PTEs or crashes). *)
            let stored = Encrypted_pte.encrypt_line enc ~addr line in
            match kind with
            | `Pfn | `Other ->
                if not changed then Blocked
                else begin
                  (* the attacker's flip lands on ciphertext bits *)
                  let faulty = Ptg_pte.Line.flip_bit stored ((idx * 64) + 12) in
                  match Encrypted_pte.consume enc ~addr ~original:line ~stored:faulty with
                  | Encrypted_pte.Intact -> Blocked
                  | Encrypted_pte.Garbage_consumed _ -> Escaped
                end
            | `Forge -> (
                (* attacker-written bits decrypt to uncontrolled garbage *)
                let faulty = Array.map (fun w -> Int64.logxor w 0x1234L) stored in
                match Encrypted_pte.consume enc ~addr ~original:line ~stored:faulty with
                | Encrypted_pte.Intact -> Blocked
                | Encrypted_pte.Garbage_consumed _ -> Escaped)
            | `Replay -> (
                (* ciphertext replayed at another address: the tweak makes
                   it decrypt to garbage, silently *)
                match
                  Encrypted_pte.consume enc ~addr:(Int64.add addr 0x40L)
                    ~original:line ~stored
                with
                | Encrypted_pte.Intact -> Escaped (* would mean replay worked *)
                | Encrypted_pte.Garbage_consumed _ -> Escaped))
        | "PT-Guard" -> (
            let stored = Ptguard.Engine.process_write engine ~addr line in
            match kind with
            | `Forge ->
                (* attacker writes its forged PTE straight into DRAM *)
                let faulty = Array.copy stored in
                faulty.(idx) <-
                  Int64.logor
                    (Int64.logand tampered_pte (Bits.mask 40))
                    (Int64.logand stored.(idx) (Int64.lognot (Bits.mask 40)));
                eval_ptguard engine ~addr ~original:line ~faulty_stored:faulty
            | `Replay -> (
                (* replay the whole protected line at a different physical
                   address: the MAC tweak catches it *)
                let other = Int64.add addr 0x40L in
                match
                  Ptguard.Engine.process_read engine ~addr:other ~is_pte:true stored
                with
                | { Ptguard.Engine.integrity = Ptguard.Engine.Failed; _ } -> Detected
                | { integrity = Ptguard.Engine.Corrected _; line = Some l; _ } ->
                    (* only acceptable if it reconstructed the line that
                       legitimately belongs at [other] — it cannot, so any
                       correction yielding the replayed content escaped *)
                    let masked =
                      Ptg_pte.Protection.masked_for_mac Ptg_pte.Protection.default
                    in
                    if Ptg_pte.Line.equal (masked l) (masked line) then Escaped
                    else Detected
                | _ -> Escaped)
            | `Pfn | `Other ->
                if not changed then Blocked
                else begin
                  let faulty = Array.copy stored in
                  faulty.(idx) <-
                    Int64.logor
                      (Int64.logand tampered_pte (Bits.mask 40))
                      (Int64.logand stored.(idx) (Int64.lognot (Bits.mask 40)));
                  eval_ptguard engine ~addr ~original:line ~faulty_stored:faulty
                end)
        | _ -> assert false
      in
      acc :=
        (match outcome with
        | Blocked -> { !acc with blocked = !acc.blocked + 1 }
        | Detected -> { !acc with detected = !acc.detected + 1 }
        | Corrected -> { !acc with corrected = !acc.corrected + 1 }
        | Escaped -> { !acc with escaped = !acc.escaped + 1 })
    done;
    !acc
  in
  let rows =
    List.concat_map
      (fun threat ->
        List.map (fun defense -> { threat; defense; counts = cell threat defense }) defenses)
      threats
  in
  { rows }

let header = [ "threat"; "defense"; "blocked"; "detected"; "corrected"; "ESCAPED" ]

let to_rows result =
  List.map
    (fun r ->
      let pct n = Table.fpct (100.0 *. float_of_int n /. float_of_int r.counts.trials) in
      [
        r.threat; r.defense; pct r.counts.blocked; pct r.counts.detected;
        pct r.counts.corrected; pct r.counts.escaped;
      ])
    result.rows

let print result =
  print_endline
    "Prior page-table defenses vs PT-Guard (Sections II-E, VIII-C):";
  Table.print
    ~align:[ Table.Left; Left; Right; Right; Right; Right ]
    ~header (to_rows result);
  print_endline
    "Expected shape: Monotonic only constrains true-cell PFN flips; the\n\
     keyless EDC is forged and replayed at will; encryption denies the\n\
     attacker control but consumes undetected garbage (counted escaped)\n\
     and can correct nothing; PT-Guard never lets a tampered PTE through\n\
     and corrects most faults."

let to_csv result ~path = Table.save_csv ~path ~header (to_rows result)

(** Hardware page-table walker operating through the guarded memory
    controller.

    Unlike {!Ptg_vm.Page_table.walk} (a functional walk over raw memory),
    this walker issues [is_pte]-tagged line reads through {!Memctrl}, so
    every level's PTE cacheline is integrity-checked by PT-Guard before
    its entry is consumed — the invariant of Section IV-G: {e no PTE
    cacheline with bit flips is ever consumed on page table walks}. *)

type outcome =
  | Translated of { paddr : int64; pte : int64; latency : int }
  | Not_present of { level : Ptg_vm.Page_table.level; latency : int }
  | Integrity_failure of {
      level : Ptg_vm.Page_table.level;
      line_addr : int64;
      latency : int;
    }  (** PTECheckFailed: the walk aborts, the OS gets an exception. *)
  | Corrected_then_translated of {
      paddr : int64;
      pte : int64;
      step : Ptguard.Correction.step;
      guesses : int;
      latency : int;
    }  (** The walk survived a Rowhammer flip thanks to correction. *)

val walk : Memctrl.t -> root:int64 -> vaddr:int64 -> outcome
(** 4-level x86_64 walk starting at the PML4 physical address [root]. *)

val pp_outcome : Format.formatter -> outcome -> unit

type t = {
  dram : Ptg_dram.Dram.t;
  engine : Ptguard.Engine.t option;
  mutable now : int;
}

let create ?engine dram = { dram; engine; now = 0 }
let dram t = t.dram
let engine t = t.engine

type read = {
  data : Ptg_pte.Line.t option;
  integrity : Ptguard.Engine.integrity;
  latency : int;
}

let advance t = function
  | Some now -> t.now <- max t.now now
  | None -> t.now <- t.now + 1

let read_line t ?now ~addr ~is_pte () =
  advance t now;
  let r = Ptg_dram.Dram.access t.dram ~now:t.now ~addr ~is_write:false in
  let stored = Ptg_dram.Dram.read_line t.dram addr in
  match t.engine with
  | None ->
      {
        data = Some stored;
        integrity = Ptguard.Engine.Data_passthrough;
        latency = r.Ptg_dram.Dram.latency;
      }
  | Some engine ->
      let g = Ptguard.Engine.process_read engine ~addr ~is_pte stored in
      {
        data = g.Ptguard.Engine.line;
        integrity = g.Ptguard.Engine.integrity;
        latency = r.Ptg_dram.Dram.latency + g.Ptguard.Engine.extra_latency;
      }

let write_line t ?now ~addr line () =
  advance t now;
  let r = Ptg_dram.Dram.access t.dram ~now:t.now ~addr ~is_write:true in
  let stored =
    match t.engine with
    | None -> line
    | Some engine -> Ptguard.Engine.process_write engine ~addr line
  in
  Ptg_dram.Dram.write_line t.dram addr stored;
  r.Ptg_dram.Dram.latency

(* Word-level OS view: an untimed read-modify-write cycle through the
   controller. Data reads of a tampered protected line pass the raw bits
   through — intentionally, see Section IV-E. *)
let phys_mem t =
  let read_raw addr =
    match read_line t ~addr ~is_pte:false () with
    | { data = Some line; _ } -> line
    | { data = None; _ } -> assert false (* data reads always forward *)
  in
  {
    Ptg_vm.Phys_mem.read_word =
      (fun addr ->
        let line = read_raw (Ptg_pte.Line.line_addr addr) in
        line.(Int64.to_int (Int64.logand addr 63L) / 8));
    write_word =
      (fun addr v ->
        let base = Ptg_pte.Line.line_addr addr in
        let line = read_raw base in
        line.(Int64.to_int (Int64.logand addr 63L) / 8) <- v;
        ignore (write_line t ~addr:base line ()));
  }

let rekey t ~rng =
  match t.engine with
  | None -> ()
  | Some engine ->
      Ptguard.Engine.rekey engine ~rng ~iter_lines:(fun process ->
          Ptg_dram.Dram.iter_stored t.dram (fun addr line ->
              Ptg_dram.Dram.write_line t.dram addr (process ~addr line)))

lib/memctrl/mmu.mli: Format Memctrl Ptg_vm Ptguard

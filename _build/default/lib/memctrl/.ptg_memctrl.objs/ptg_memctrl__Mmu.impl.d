lib/memctrl/mmu.ml: Array Format Int64 Memctrl Page_table Ptg_pte Ptg_vm Ptguard

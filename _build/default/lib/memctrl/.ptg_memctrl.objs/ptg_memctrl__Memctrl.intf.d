lib/memctrl/memctrl.mli: Ptg_dram Ptg_pte Ptg_util Ptg_vm Ptguard

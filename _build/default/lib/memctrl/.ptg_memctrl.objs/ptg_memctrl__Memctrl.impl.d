lib/memctrl/memctrl.ml: Array Int64 Ptg_dram Ptg_pte Ptg_vm Ptguard

(** Blacksmith-style frequency-domain Rowhammer fuzzing (Jattke et al.,
    S&P 2022 — one of the paper's "breakthrough" attacks).

    Where TRRespass defeats TRR samplers with {e many} aggressors and
    SMASH with explicit REF synchronization, Blacksmith fuzzes
    {e non-uniform} patterns: each aggressor is hammered with its own
    frequency, phase and amplitude within a repeating period. Patterns
    whose phase structure keeps the true aggressors out of the sampler's
    observation slots defeat the mitigation without the attacker ever
    knowing the REF timing — Blacksmith found effective patterns on all
    40 DIMMs it fuzzed.

    The model: a pattern is a set of [(row, freq, phase, amplitude)]
    tuples compiled to an activation schedule; {!campaign} runs the fuzz
    loop the tool implements — generate a random pattern, hammer a fresh
    TRR-protected module, keep it if bits flip. *)

type tuple = { row : int; freq : int; phase : int; amplitude : int }

type pattern = { period : int; tuples : tuple list }

val schedule : pattern -> slots:int -> int array
(** Compile to a row-activation sequence of [slots] accesses: at slot
    [i], the tuples for which [(i - phase) mod freq < amplitude] are
    active; among the active rows the schedule round-robins, and slots
    with no active tuple visit a far filler row (keeping the activation
    rate constant, as on real hardware). *)

val random_pattern :
  Ptg_util.Rng.t -> victim:int -> decoys:int -> pattern
(** A fuzzer candidate: the two distance-1 aggressors of [victim] plus
    [decoys] far rows, each with randomized frequency (divisors of the
    period), phase and amplitude — the Blacksmith search space. *)

val run :
  Ptg_dram.Dram.t -> channel:int -> bank:int -> pattern -> slots:int ->
  start_time:int -> int
(** Execute the compiled schedule as timed accesses on one bank; returns
    the finish time. The fuzzing loop that searches for effective patterns
    lives in {!Ptg_mitigations.Blacksmith_campaign} (it needs the TRR
    model). *)

val pp_pattern : Format.formatter -> pattern -> unit

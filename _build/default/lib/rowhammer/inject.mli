(** Direct uniform fault injection into cachelines.

    This is the evaluation methodology of the paper's Section VI-F: "For
    each PTE cacheline obtained from DRAM, we flip each bit with a uniform
    probability of p_flip" — decoupled from the full DRAM attack machinery
    so the correction experiments are controlled and fast. *)

val flip_line : Ptg_util.Rng.t -> p_flip:float -> Ptg_pte.Line.t -> Ptg_pte.Line.t * int list
(** [flip_line rng ~p_flip line] flips each of the 512 bits independently
    with probability [p_flip]; returns the faulty line and the flipped bit
    indices (ascending). Uses geometric skipping, so cost is proportional
    to the number of flips, not 512. *)

val flip_exactly : Ptg_util.Rng.t -> n:int -> Ptg_pte.Line.t -> Ptg_pte.Line.t * int list
(** Flip exactly [n] distinct uniformly-chosen bits. *)

val flip_bits : Ptg_pte.Line.t -> int list -> Ptg_pte.Line.t
(** Flip a given list of bit positions. *)

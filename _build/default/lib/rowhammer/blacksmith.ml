type tuple = { row : int; freq : int; phase : int; amplitude : int }
type pattern = { period : int; tuples : tuple list }

let schedule pattern ~slots =
  if pattern.period < 1 then invalid_arg "Blacksmith.schedule: period";
  List.iter
    (fun t ->
      if t.freq < 1 || t.amplitude < 1 || t.phase < 0 then
        invalid_arg "Blacksmith.schedule: tuple")
    pattern.tuples;
  let rot = ref 0 in
  let filler_a = 30_000 and filler_b = 30_100 in
  Array.init slots (fun i ->
      let slot = i mod pattern.period in
      let active =
        List.filter
          (fun t -> (slot - t.phase + (16 * t.freq)) mod t.freq < t.amplitude)
          pattern.tuples
      in
      match active with
      | [] ->
          (* keep the activation stream dense, alternating two far rows so
             the row buffer never absorbs accesses *)
          if i land 1 = 0 then filler_a else filler_b
      | l ->
          incr rot;
          (List.nth l (!rot mod List.length l)).row)

let random_pattern rng ~victim ~decoys =
  let period = 64 * (1 + Ptg_util.Rng.int rng 4) in
  let divisors = [ 1; 2; 4; 8; 16; 32 ] in
  let random_freq () =
    period / List.nth divisors (Ptg_util.Rng.int rng (List.length divisors))
  in
  let mk row =
    {
      row;
      freq = max 1 (random_freq ());
      phase = Ptg_util.Rng.int rng period;
      amplitude = 1 + Ptg_util.Rng.int rng 6;
    }
  in
  let aggressors = [ mk (victim - 1); mk (victim + 1) ] in
  let decoy_rows = List.init decoys (fun i -> victim + 200 + (2 * i)) in
  { period; tuples = aggressors @ List.map mk decoy_rows }

let run dram ~channel ~bank pattern ~slots ~start_time =
  let geometry = Ptg_dram.Dram.geometry dram in
  let sched = schedule pattern ~slots in
  let now = ref start_time in
  Array.iteri
    (fun i row ->
      if row >= 0 && row < geometry.Ptg_dram.Geometry.rows_per_bank then begin
        let coords =
          { Ptg_dram.Geometry.channel;
            rank = bank / geometry.Ptg_dram.Geometry.banks_per_rank; bank; row;
            col = i land (geometry.Ptg_dram.Geometry.columns - 1) }
        in
        let addr = Ptg_dram.Geometry.encode geometry coords in
        let r = Ptg_dram.Dram.access dram ~now:!now ~addr ~is_write:false in
        now := !now + r.Ptg_dram.Dram.latency
      end)
    sched;
  !now

let pp_pattern fmt p =
  Format.fprintf fmt "period=%d:" p.period;
  List.iter
    (fun t ->
      Format.fprintf fmt " (row=%d f=%d ph=%d amp=%d)" t.row t.freq t.phase
        t.amplitude)
    p.tuples

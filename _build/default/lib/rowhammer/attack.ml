type pattern =
  | Single_sided of { aggressor : int; dummy : int }
  | Double_sided of { victim : int }
  | Many_sided of { aggressors : int list }
  | Synchronized_many_sided of {
      aggressors : int list;
      decoys : int list;
      ref_interval : int;
      window : int;
    }
  | Half_double of { victim : int; distance : int }

let pattern_name = function
  | Single_sided _ -> "single-sided"
  | Double_sided _ -> "double-sided"
  | Many_sided _ -> "many-sided"
  | Synchronized_many_sided _ -> "synchronized many-sided (TRRespass)"
  | Half_double _ -> "half-double"

let pp_pattern fmt p =
  match p with
  | Single_sided { aggressor; dummy } ->
      Format.fprintf fmt "single-sided(aggressor=%d, dummy=%d)" aggressor dummy
  | Double_sided { victim } -> Format.fprintf fmt "double-sided(victim=%d)" victim
  | Many_sided { aggressors } ->
      Format.fprintf fmt "many-sided(%d aggressors)" (List.length aggressors)
  | Synchronized_many_sided { aggressors; decoys; ref_interval; window } ->
      Format.fprintf fmt
        "sync-many-sided(%d aggressors, %d decoys, ref=%d, window=%d)"
        (List.length aggressors) (List.length decoys) ref_interval window
  | Half_double { victim; distance } ->
      Format.fprintf fmt "half-double(victim=%d, distance=%d)" victim distance

let rotation = function
  | Single_sided { aggressor; dummy } -> [ aggressor; dummy ]
  | Double_sided { victim } -> [ victim - 1; victim + 1 ]
  | Many_sided { aggressors } -> aggressors
  | Synchronized_many_sided { aggressors; _ } -> aggressors
  | Half_double { victim; distance } -> [ victim - distance; victim + distance ]

let aggressor_rows p =
  match p with
  | Synchronized_many_sided { aggressors; decoys; _ } ->
      List.sort_uniq compare (aggressors @ decoys)
  | _ -> List.sort_uniq compare (rotation p)

let victim_rows = function
  | Single_sided { aggressor; dummy = _ } -> [ aggressor - 1; aggressor + 1 ]
  | Double_sided { victim } -> [ victim ]
  | Many_sided { aggressors } | Synchronized_many_sided { aggressors; _ } ->
      List.sort_uniq compare
        (List.concat_map (fun a -> [ a - 1; a + 1 ]) aggressors)
  | Half_double { victim; distance = _ } -> [ victim ]

let schedule p ~iterations =
  match p with
  | Synchronized_many_sided { aggressors; decoys; ref_interval; window } ->
      if decoys = [] || aggressors = [] then invalid_arg "Attack.schedule: empty rows";
      if window >= ref_interval then invalid_arg "Attack.schedule: window >= ref_interval";
      let agg = Array.of_list aggressors and dec = Array.of_list decoys in
      let ai = ref 0 and di = ref 0 in
      Array.init (iterations * List.length aggressors) (fun i ->
          if i mod ref_interval < window then begin
            let r = dec.(!di mod Array.length dec) in
            incr di;
            r
          end
          else begin
            let r = agg.(!ai mod Array.length agg) in
            incr ai;
            r
          end)
  | _ ->
      let rot = Array.of_list (rotation p) in
      Array.init (iterations * Array.length rot) (fun i -> rot.(i mod Array.length rot))

let run dram ~channel ~bank pattern ~iterations ~start_time =
  let geometry = Ptg_dram.Dram.geometry dram in
  let sched = schedule pattern ~iterations in
  let now = ref start_time in
  Array.iteri
    (fun i row ->
      if row >= 0 && row < geometry.Ptg_dram.Geometry.rows_per_bank then begin
        (* Vary the column so consecutive same-row accesses in a rotation of
           one would still be distinguishable; the row alternation itself
           guarantees activations. *)
        let coords =
          { Ptg_dram.Geometry.channel; rank = bank / geometry.Ptg_dram.Geometry.banks_per_rank;
            bank; row; col = i land (geometry.Ptg_dram.Geometry.columns - 1) }
        in
        let addr = Ptg_dram.Geometry.encode geometry coords in
        let r = Ptg_dram.Dram.access dram ~now:!now ~addr ~is_write:false in
        now := !now + r.Ptg_dram.Dram.latency
      end)
    sched;
  !now

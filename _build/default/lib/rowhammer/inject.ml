let flip_bits line bits =
  List.fold_left (fun l b -> Ptg_pte.Line.flip_bit l b) line bits

let flip_line rng ~p_flip line =
  if p_flip < 0.0 || p_flip > 1.0 then invalid_arg "Inject.flip_line: p_flip";
  if p_flip = 0.0 then (Ptg_pte.Line.copy line, [])
  else begin
    let bits = ref [] in
    let bit = ref (Ptg_util.Rng.geometric rng p_flip) in
    while !bit < 512 do
      bits := !bit :: !bits;
      bit := !bit + 1 + Ptg_util.Rng.geometric rng p_flip
    done;
    let bits = List.rev !bits in
    (flip_bits line bits, bits)
  end

let flip_exactly rng ~n line =
  if n < 0 || n > 512 then invalid_arg "Inject.flip_exactly: n";
  let chosen = Hashtbl.create n in
  while Hashtbl.length chosen < n do
    Hashtbl.replace chosen (Ptg_util.Rng.int rng 512) ()
  done;
  let bits = List.sort compare (Hashtbl.fold (fun b () acc -> b :: acc) chosen []) in
  (flip_bits line bits, bits)

(** Rowhammer attack access patterns (paper Section II).

    Each pattern is compiled to a schedule of row activations on one bank.
    Row-buffer behaviour matters: alternating between at least two rows in
    the same bank forces an activation per access (a single repeated row
    would hit in the row buffer and never re-activate), which is why even
    "single-sided" hammering uses a far dummy row. *)

type pattern =
  | Single_sided of { aggressor : int; dummy : int }
      (** Alternate [aggressor] with a far-away [dummy] row. *)
  | Double_sided of { victim : int }
      (** Alternate [victim-1] and [victim+1]: the classic strongest pattern. *)
  | Many_sided of { aggressors : int list }
      (** Cycle through many aggressor rows so a limited-entry tracker
          cannot accumulate counts on any of them. *)
  | Synchronized_many_sided of {
      aggressors : int list;
      decoys : int list;
      ref_interval : int;
      window : int;
    }
      (** TRRespass/SMASH-style: the attacker aligns with the REF cadence
          ([ref_interval] activations) and feeds [decoys] during the
          [window] activations the TRR sampler observes after each REF,
          hammering [aggressors] the rest of the time — the sampler only
          ever tracks decoys, so mitigations never refresh the real
          victims. *)
  | Half_double of { victim : int; distance : int }
      (** Hammer rows at [victim +/- distance] (distance 2): flips arrive
          via the mitigation's own refreshes of the distance-1 rows. *)

val pp_pattern : Format.formatter -> pattern -> unit
val pattern_name : pattern -> string

val aggressor_rows : pattern -> int list
(** The set of rows the attacker touches. *)

val victim_rows : pattern -> int list
(** The rows the attacker intends to flip. *)

val schedule : pattern -> iterations:int -> int array
(** The row-activation sequence: [iterations] passes over the pattern's
    aggressor rotation. Length = iterations * (rows in rotation). *)

val run :
  Ptg_dram.Dram.t ->
  channel:int ->
  bank:int ->
  pattern ->
  iterations:int ->
  start_time:int ->
  int
(** Execute the schedule as timed DRAM accesses (one line of each row,
    alternating columns to defeat the row buffer). Returns the finish
    time. Mitigations and fault models attached to the DRAM observe the
    resulting activations. *)

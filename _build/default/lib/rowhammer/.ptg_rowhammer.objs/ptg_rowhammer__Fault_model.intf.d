lib/rowhammer/fault_model.mli: Ptg_dram Ptg_util

lib/rowhammer/fault_model.ml: Hashtbl List Option Ptg_dram Ptg_pte Ptg_util

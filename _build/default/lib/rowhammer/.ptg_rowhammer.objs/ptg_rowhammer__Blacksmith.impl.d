lib/rowhammer/blacksmith.ml: Array Format List Ptg_dram Ptg_util

lib/rowhammer/inject.mli: Ptg_pte Ptg_util

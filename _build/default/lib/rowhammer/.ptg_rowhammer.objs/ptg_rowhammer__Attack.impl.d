lib/rowhammer/attack.ml: Array Format List Ptg_dram

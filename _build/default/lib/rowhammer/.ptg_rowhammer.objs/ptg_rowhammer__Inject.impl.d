lib/rowhammer/inject.ml: Hashtbl List Ptg_pte Ptg_util

lib/rowhammer/blacksmith.mli: Format Ptg_dram Ptg_util

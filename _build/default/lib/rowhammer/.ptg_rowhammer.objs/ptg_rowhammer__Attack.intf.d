lib/rowhammer/attack.mli: Format Ptg_dram

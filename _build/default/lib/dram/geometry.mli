(** DRAM organization and physical-address mapping.

    Addresses decompose as row / bank / column / line-offset. The mapping
    XORs bank bits with low row bits (a common bank-interleaving scheme) so
    that streaming accesses spread across banks, which matters for the
    multicore contention model. *)

type t = {
  channels : int;
  ranks : int;
  banks_per_rank : int;
  rows_per_bank : int;
  columns : int;        (** cachelines per row (row size / 64 B) *)
}

type coords = {
  channel : int;
  rank : int;
  bank : int;  (** flattened bank id within the channel: rank * banks_per_rank + bank *)
  row : int;
  col : int;
}

val ddr4_4gb : t
(** The paper's Table III single-core config: 4 GB, 1 channel, 1 rank,
    16 banks, 8 KB rows (128 lines/row), 32768 rows/bank. *)

val ddr4_16gb : t
(** The multicore config of Section VII-C: 16 GB, 2 channels. *)

val capacity_bytes : t -> int64
val total_banks : t -> int
(** Banks per channel (ranks * banks_per_rank). *)

val decode : t -> int64 -> coords
(** Map a physical byte address to DRAM coordinates. The address is first
    line-aligned. Addresses beyond capacity wrap (mod capacity). *)

val encode : t -> coords -> int64
(** Inverse of {!decode} (line-aligned address). *)

val row_neighbors : t -> int -> distance:int -> int list
(** Rows at exactly [distance] from the given row, clipped to the bank. *)

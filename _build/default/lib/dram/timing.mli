(** DDR4-like timing parameters, expressed in CPU cycles at the paper's
    3 GHz clock (Table III).

    The model charges latency per access according to the state of the
    target bank's row buffer: hit (column access only), closed (activate +
    column) or conflict (precharge + activate + column). These are the only
    DRAM timing effects the paper's slowdown analysis depends on — PT-Guard
    adds a constant MAC latency on top of reads, so what matters is that
    reads have a realistic base cost. *)

type t = {
  t_cas : int;        (** column access strobe (CL) *)
  t_rcd : int;        (** RAS-to-CAS: activate latency *)
  t_rp : int;         (** precharge *)
  bus_and_queue : int;(** fixed controller + bus transfer overhead *)
  refresh_interval : int; (** tREFW: all-rows refresh window (cycles) *)
}

val ddr4_3ghz : t
(** DDR4-2400-ish timings at 3 GHz: tCAS = tRCD = tRP = 42 cycles (14 ns),
    21-cycle fixed overhead, 64 ms refresh window. A row-buffer conflict
    read costs 147 cycles (~49 ns), matching the paper's "DRAM access
    takes 50ns". *)

type row_buffer_outcome = Hit | Closed_row | Conflict

val read_latency : t -> row_buffer_outcome -> int
val write_latency : t -> row_buffer_outcome -> int

lib/dram/geometry.ml: Int64 List

lib/dram/timing.ml:

lib/dram/timing.mli:

lib/dram/geometry.mli:

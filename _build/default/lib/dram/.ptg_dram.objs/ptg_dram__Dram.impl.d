lib/dram/dram.ml: Array Geometry Hashtbl List Option Ptg_pte Timing

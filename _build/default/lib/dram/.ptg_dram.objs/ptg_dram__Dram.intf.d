lib/dram/dram.mli: Geometry Ptg_pte Timing

type t = {
  t_cas : int;
  t_rcd : int;
  t_rp : int;
  bus_and_queue : int;
  refresh_interval : int;
}

let ddr4_3ghz =
  {
    t_cas = 42;
    t_rcd = 42;
    t_rp = 42;
    bus_and_queue = 21;
    refresh_interval = 192_000_000; (* 64 ms at 3 GHz *)
  }

type row_buffer_outcome = Hit | Closed_row | Conflict

let read_latency t = function
  | Hit -> t.t_cas + t.bus_and_queue
  | Closed_row -> t.t_rcd + t.t_cas + t.bus_and_queue
  | Conflict -> t.t_rp + t.t_rcd + t.t_cas + t.bus_and_queue

(* Writes are posted through the controller's write queue; the critical
   path seen by the core is just the queue insertion, but we report the
   same bank occupancy cost for bandwidth accounting. *)
let write_latency = read_latency

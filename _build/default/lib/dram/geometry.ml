type t = {
  channels : int;
  ranks : int;
  banks_per_rank : int;
  rows_per_bank : int;
  columns : int;
}

type coords = { channel : int; rank : int; bank : int; row : int; col : int }

let ddr4_4gb =
  { channels = 1; ranks = 1; banks_per_rank = 16; rows_per_bank = 32768; columns = 128 }

let ddr4_16gb =
  { channels = 2; ranks = 2; banks_per_rank = 16; rows_per_bank = 32768; columns = 128 }

let capacity_bytes t =
  let lines =
    Int64.of_int t.channels
    |> Int64.mul (Int64.of_int t.ranks)
    |> Int64.mul (Int64.of_int t.banks_per_rank)
    |> Int64.mul (Int64.of_int t.rows_per_bank)
    |> Int64.mul (Int64.of_int t.columns)
  in
  Int64.mul lines 64L

let total_banks t = t.ranks * t.banks_per_rank

(* Address layout, low to high: 6 offset | column | channel | bank+rank | row.
   Bank bits are XORed with the low row bits for permutation interleaving. *)
let decode t addr =
  let line = Int64.to_int (Int64.shift_right_logical addr 6) in
  let col = line mod t.columns in
  let rest = line / t.columns in
  let channel = rest mod t.channels in
  let rest = rest / t.channels in
  let banks = total_banks t in
  let bank_raw = rest mod banks in
  let rest = rest / banks in
  let row = rest mod t.rows_per_bank in
  let bank = (bank_raw lxor (row land (banks - 1))) mod banks in
  let rank = bank / t.banks_per_rank in
  { channel; rank; bank; row; col }

let encode t { channel; bank; row; col; rank = _ } =
  let banks = total_banks t in
  let bank_raw = (bank lxor (row land (banks - 1))) mod banks in
  let line = ((((row * banks) + bank_raw) * t.channels + channel) * t.columns) + col in
  Int64.shift_left (Int64.of_int line) 6

let row_neighbors t row ~distance =
  if distance <= 0 then invalid_arg "Geometry.row_neighbors: distance";
  List.filter
    (fun r -> r >= 0 && r < t.rows_per_bank)
    [ row - distance; row + distance ]

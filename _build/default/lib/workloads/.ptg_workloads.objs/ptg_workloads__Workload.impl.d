lib/workloads/workload.ml: Array Int64 List Ptg_cpu Ptg_util

lib/workloads/workload.mli: Ptg_cpu Ptg_util

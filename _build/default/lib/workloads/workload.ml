type suite = Spec_int | Spec_fp | Gap

type spec = {
  name : string;
  suite : suite;
  target_mpki : float;
  pct_mem : float;
  hot_pages : int;
  cold_pages : int;
  cold_page_run : float;
}

(* MPKI targets follow the shape of Figure 6 (bottom): xalancbmk is the
   29-MPKI outlier; lbm/fotonik3d/bwaves/mcf and all GAP kernels exceed
   10; povray/exchange2/imagick are cache-resident. Cold regions are sized
   so the irregular footprint dwarfs the 2 MB LLC and 64-entry TLB. *)
let spec ?(pct_mem = 0.35) ?(hot_pages = 24) ?(cold_pages = 131072)
    ?(cold_page_run = 7.0) name suite target_mpki =
  { name; suite; target_mpki; pct_mem; hot_pages; cold_pages; cold_page_run }

let all =
  [
    (* SPECint 2017 (gcc excluded, per the paper) *)
    spec "perlbench" Spec_int 0.7;
    spec "mcf" Spec_int 15.0;
    spec "omnetpp" Spec_int 8.0;
    spec "xalancbmk" Spec_int 29.0;
    spec "x264" Spec_int 0.4;
    spec "deepsjeng" Spec_int 1.1;
    spec "leela" Spec_int 0.4;
    spec "exchange2" Spec_int 0.05;
    spec "xz" Spec_int 3.5;
    (* SPECfp 2017 (blender and parest excluded, per the paper) *)
    spec "bwaves" Spec_fp 12.0;
    spec "cactuBSSN" Spec_fp 5.5;
    spec "namd" Spec_fp 0.6;
    spec "povray" Spec_fp 0.05;
    spec "lbm" Spec_fp 25.0;
    spec "wrf" Spec_fp 6.0;
    spec "cam4" Spec_fp 3.0;
    spec "imagick" Spec_fp 0.1;
    spec "nab" Spec_fp 1.2;
    spec "fotonik3d" Spec_fp 20.0;
    spec "roms" Spec_fp 9.0;
    (* GAP kernels on USA-road: pointer chasing gives them shorter
       per-page runs (more page walks per miss) than SPEC's sweeps. *)
    spec ~cold_pages:262144 ~cold_page_run:5.0 "bfs" Gap 18.0;
    spec ~cold_pages:262144 ~cold_page_run:5.0 "cc" Gap 22.0;
    spec ~cold_pages:262144 ~cold_page_run:5.0 "pr" Gap 26.0;
    spec ~cold_pages:262144 ~cold_page_run:5.0 "sssp" Gap 24.0;
    spec ~cold_pages:262144 ~cold_page_run:5.0 "bc" Gap 14.0;
  ]

let by_name name = List.find_opt (fun s -> s.name = name) all
let names = List.map (fun s -> s.name) all
let high_mpki = List.filter (fun s -> s.target_mpki > 10.0) all

let fig9_subset =
  List.filter_map by_name [ "mcf"; "xalancbmk"; "lbm"; "fotonik3d"; "pr"; "bfs" ]

let stream rng spec =
  (* The 1.02 factor compensates for residual cache reuse of clustered
     cold pages, measured against the MPKI targets (see test suite). *)
  let p_cold = 1.02 *. spec.target_mpki /. (spec.pct_mem *. 1000.0) in
  if p_cold > 1.0 then invalid_arg "Workload.stream: target_mpki too high for pct_mem";
  let hot_cursor = ref 0 in
  let hot_bytes = spec.hot_pages * 4096 in
  let cold_bytes = Int64.of_int spec.cold_pages |> Int64.mul 4096L in
  (* Cold accesses cluster on a page for a geometric run before jumping:
     real irregular workloads touch several lines per page, which sets the
     ratio of page walks to LLC misses. *)
  let cold_page = ref 0L in
  let cold_line = ref 0 in
  let p_new_page = 1.0 /. spec.cold_page_run in
  fun () ->
    if not (Ptg_util.Rng.bernoulli rng spec.pct_mem) then Ptg_cpu.Core.Nonmem
    else begin
      let is_store = Ptg_util.Rng.bernoulli rng 0.25 in
      let addr =
        if Ptg_util.Rng.bernoulli rng p_cold then begin
          if Ptg_util.Rng.bernoulli rng p_new_page then begin
            cold_page := Ptg_util.Rng.int64_bounded rng (Int64.of_int spec.cold_pages);
            cold_line := Ptg_util.Rng.int rng 64
          end
          else cold_line := (!cold_line + 1) land 63;
          Int64.add (Int64.mul !cold_page 4096L) (Int64.of_int (64 * !cold_line))
        end
        else begin
          (* Hot access: sequential sweep of a cache-resident buffer. *)
          hot_cursor := (!hot_cursor + 64) mod hot_bytes;
          Int64.add cold_bytes (Int64.of_int !hot_cursor)
        end
      in
      if is_store then Ptg_cpu.Core.Store addr else Ptg_cpu.Core.Load addr
    end

let multicore_same spec = Array.make 4 spec

let multicore_mixes rng n =
  let pool = Array.of_list all in
  Array.init n (fun _ -> Array.init 4 (fun _ -> Ptg_util.Rng.choose rng pool))

(** Synthetic stand-ins for the paper's evaluation workloads.

    The paper runs 20 SPEC CPU-2017 benchmarks (all int + fp except gcc,
    blender and parest, with ref inputs) and 5 GAP graph kernels on
    USA-road. Neither suite is available here, so each workload is a
    synthetic memory-access generator calibrated to the property the
    paper's performance results actually depend on: its LLC misses per
    kilo-instruction (Figure 6, bottom — the paper's own analysis ties
    slowdown directly to MPKI, Section IV-H).

    The generator model: a fraction [pct_mem] of instructions are memory
    operations; each touches a small hot working set (cache-resident) or,
    with the calibrated cold probability, a random line of a large cold
    region (cache- and TLB-hostile). Cold accesses produce both the LLC
    misses and the page-table walks whose DRAM reads PT-Guard taxes. *)

type suite = Spec_int | Spec_fp | Gap

type spec = {
  name : string;
  suite : suite;
  target_mpki : float;   (** calibration target from Figure 6 (bottom) *)
  pct_mem : float;       (** memory instructions per instruction *)
  hot_pages : int;       (** cache-resident working set *)
  cold_pages : int;      (** streaming/irregular region (TLB-hostile) *)
  cold_page_run : float; (** mean lines touched per cold page visit; sets
                             the walk-to-miss ratio *)
}

val all : spec list
(** The 25 workloads: 9 SPECint + 11 SPECfp + 5 GAP, ordered as in
    Figure 6. *)

val by_name : string -> spec option
val names : string list

val high_mpki : spec list
(** Workloads with MPKI > 10 (the paper's "memory-intensive" set). *)

val fig9_subset : spec list
(** The 4 SPEC + 2 GAP workloads shown in Figure 9. *)

val stream : Ptg_util.Rng.t -> spec -> unit -> Ptg_cpu.Core.op
(** An infinite instruction stream for the workload. Deterministic for a
    given RNG state. *)

val multicore_same : spec -> spec array
(** 4 instances of the same workload (the SAME configuration). *)

val multicore_mixes : Ptg_util.Rng.t -> int -> spec array array
(** [multicore_mixes rng n] draws [n] random 4-workload mixes (the MIX
    configuration; paper Section VII-C uses 16). *)

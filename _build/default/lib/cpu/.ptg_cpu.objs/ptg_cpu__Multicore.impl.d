lib/cpu/multicore.ml: Array Cache Core Guard_timing Int64 Ptg_dram Tlb

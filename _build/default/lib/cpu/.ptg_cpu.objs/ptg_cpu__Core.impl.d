lib/cpu/core.ml: Cache Guard_timing Int64 List Ptg_dram Ptg_pte Tlb

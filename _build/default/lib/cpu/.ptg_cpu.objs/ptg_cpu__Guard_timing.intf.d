lib/cpu/guard_timing.mli: Ptg_util Ptguard

lib/cpu/cache.mli:

lib/cpu/guard_timing.ml: Ptg_util Ptguard

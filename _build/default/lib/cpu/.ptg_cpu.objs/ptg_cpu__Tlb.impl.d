lib/cpu/tlb.ml: Array Int64

lib/cpu/tlb.mli:

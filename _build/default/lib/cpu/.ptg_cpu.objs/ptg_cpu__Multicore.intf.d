lib/cpu/multicore.mli: Cache Core Guard_timing

lib/cpu/core.mli: Cache Guard_timing Ptg_dram

lib/cpu/cache.ml: Array Int64

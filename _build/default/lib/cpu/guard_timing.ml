type kind =
  | Unprotected
  | Guarded of {
      config : Ptguard.Config.t;
      p_data_protected : float;
      rng : Ptg_util.Rng.t;
    }

type t = {
  kind : kind;
  mutable mac_computations : int;
  mutable reads : int;
}

let unprotected = { kind = Unprotected; mac_computations = 0; reads = 0 }

let of_config ?(p_data_protected = 0.005) config ~rng =
  { kind = Guarded { config; p_data_protected; rng }; mac_computations = 0; reads = 0 }

let read_penalty t ~is_pte =
  t.reads <- t.reads + 1;
  match t.kind with
  | Unprotected -> 0
  | Guarded { config; p_data_protected; rng } -> (
      let charge () =
        t.mac_computations <- t.mac_computations + 1;
        config.Ptguard.Config.mac_latency_cycles
      in
      match config.Ptguard.Config.design with
      | Ptguard.Config.Baseline ->
          (* Section IV: the MAC is recomputed on every DRAM read. *)
          charge ()
      | Ptguard.Config.Optimized ->
          if is_pte then charge ()
          else if Ptg_util.Rng.bernoulli rng p_data_protected then charge ()
          else 0)

let mac_computations t = t.mac_computations
let reads_observed t = t.reads

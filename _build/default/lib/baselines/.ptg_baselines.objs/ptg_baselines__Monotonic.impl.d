lib/baselines/monotonic.ml: Int64 Ptg_util

lib/baselines/encrypted_pte.ml: Array Block128 Int64 Ptg_crypto Ptg_pte Qarma

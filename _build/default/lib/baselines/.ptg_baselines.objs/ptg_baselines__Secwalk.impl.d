lib/baselines/secwalk.ml: Bits Int64 Ptg_util

lib/baselines/secwalk.mli:

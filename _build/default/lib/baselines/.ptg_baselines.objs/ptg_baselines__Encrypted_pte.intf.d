lib/baselines/encrypted_pte.mli: Ptg_pte Ptg_util

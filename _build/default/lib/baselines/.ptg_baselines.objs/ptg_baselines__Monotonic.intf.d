lib/baselines/monotonic.mli: Ptg_pte

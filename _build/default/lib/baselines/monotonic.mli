(** Monotonic Pointers (Wu et al., ASPLOS 2019) — paper Section II-E.1.

    The defense places page tables in DRAM true cells (whose Rowhammer
    flips are 1 -> 0 only) above a physical watermark, with all user pages
    below it. A 1 -> 0 flip can only decrease a PFN, so a user PTE's PFN
    can never climb into the page-table region: the self-referencing
    exploit of Figure 3 is blocked.

    The model exposes the two gaps the paper calls out:
    - flips in {e non-PFN} fields (user/supervisor, writable, NX, MPK)
      are not constrained at all;
    - cells occasionally flip 0 -> 1 ("a small probability that an error
      can go the other way due to circuit effects"), and a single such
      flip re-enables the PFN attack. *)

type t

val create : watermark_pfn:int64 -> t
(** Page tables live at PFNs >= [watermark_pfn]; user frames below. *)

val watermark : t -> int64

val user_pfn_ok : t -> int64 -> bool
(** Placement check the OS enforces at map time. *)

val pfn_flip_blocked : t -> pfn:int64 -> bit:int -> anti_cell:bool -> bool
(** Does the defense prevent the flip of PFN bit [bit] from yielding a
    page-table PFN? True cells ([anti_cell = false]) can only clear bits;
    anti cells set them. *)

val protects_field : Ptg_pte.X86.flag -> bool
(** Whether the defense constrains tampering of a given PTE flag — always
    [false]: monotonic placement only reasons about the PFN. *)

val flipped_pfn : pfn:int64 -> bit:int -> anti_cell:bool -> int64 option
(** The PFN after a flip of [bit], or [None] when the cell orientation
    makes that flip impossible (clearing an already-clear bit, setting an
    already-set one). *)

(** Memory encryption as a page-table defense (paper Section VII-A).

    The paper's discussion: encryption is complementary — it hides
    contents and makes controlled tampering impossible, but it provides
    {e no authentication}: a Rowhammer flip in an encrypted PTE decrypts
    to garbage that the hardware cannot distinguish from a valid entry,
    so the system consumes a wild translation or crashes, and nothing can
    be corrected ("decryption of faulty encrypted data produces
    meaningless values").

    Modeled as QARMA-128 in an XTS-like mode over the four 16-byte chunks
    of the PTE cacheline, tweaked by (address, chunk index): the same
    primitive PT-Guard uses, spent on confidentiality instead of
    integrity. *)

type t

val create : rng:Ptg_util.Rng.t -> t

val encrypt_line : t -> addr:int64 -> Ptg_pte.Line.t -> Ptg_pte.Line.t
(** What goes to DRAM. *)

val decrypt_line : t -> addr:int64 -> Ptg_pte.Line.t -> Ptg_pte.Line.t
(** What the walker consumes — garbage if the stored bits were flipped,
    with no indication anything is wrong. *)

type consume_outcome =
  | Intact                 (** decrypted PTEs equal the originals *)
  | Garbage_consumed of {
      wild_pfn : bool;     (** some decrypted PFN points somewhere new *)
      looks_present : bool (** a garbage entry still has the Present bit *)
    }

val consume : t -> addr:int64 -> original:Ptg_pte.Line.t -> stored:Ptg_pte.Line.t -> consume_outcome
(** Decrypt [stored] and compare against [original]: the outcome a walk
    would experience. There is no [Detected] constructor — that is the
    point. *)

(** SecWalk-style error-detection codes for PTEs (paper Section II-E.2).

    SecWalk (Schilling et al., HOST 2021) protects page-table walks with a
    non-cryptographic error-detection code stored in each PTE's spare
    bits. The paper's critique, which this model lets us demonstrate:

    - with the space available in a PTE, the code detects only a bounded
      number of bit flips (up to 4);
    - the code is linear, so an attacker who can aim flips can modify the
      PTE {e and} patch the code so the check still passes (the ECCploit
      pattern).

    We implement the EDC as CRC-24/OpenPGP over the protected PTE bits —
    the widest standard code that fits the x86 PTE's 24 spare bits
    (SecWalk's RISC-V layout fits 25; the character is identical).
    Detection of a handful of flips is near-certain; guarantees stop at
    the code's Hamming distance; and most importantly the code is keyless
    and linear. *)

val edc_bits : int
(** 24 (SecWalk proper: 25 in the RISC-V layout). *)

val compute : int64 -> int
(** [compute pte] is the EDC over the PTE's protected content
    (flags + PFN, bits 0..39). *)

val protect : int64 -> int64
(** Embed the EDC in the PTE's spare bits (51:40 + 58:52, the same
    headroom PT-Guard pools for its MAC — one PTE protects only itself). *)

val verify : int64 -> bool
(** Recompute and compare. *)

val strip : int64 -> int64

val forge : int64 -> target:int64 -> int64
(** The surgical attack: produce a protected PTE encoding [target]
    (attacker-chosen PFN/flags) whose EDC verifies, given any validly
    protected PTE. Possible because the code is linear and keyless —
    contrast with {!Ptguard.Engine}, where this requires guessing a
    96-bit keyed MAC. *)

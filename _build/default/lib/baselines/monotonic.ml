type t = { watermark_pfn : int64 }

let create ~watermark_pfn =
  if Int64.compare watermark_pfn 0L <= 0 then invalid_arg "Monotonic.create";
  { watermark_pfn }

let watermark t = t.watermark_pfn
let user_pfn_ok t pfn = Int64.unsigned_compare pfn t.watermark_pfn < 0

let flipped_pfn ~pfn ~bit ~anti_cell =
  if bit < 0 || bit > 39 then invalid_arg "Monotonic.flipped_pfn: bit";
  let set = Ptg_util.Bits.get pfn bit in
  match (anti_cell, set) with
  | false, true -> Some (Ptg_util.Bits.clear pfn bit) (* true cell: 1 -> 0 *)
  | true, false -> Some (Ptg_util.Bits.set pfn bit) (* anti cell: 0 -> 1 *)
  | false, false | true, true -> None

let pfn_flip_blocked t ~pfn ~bit ~anti_cell =
  match flipped_pfn ~pfn ~bit ~anti_cell with
  | None -> true (* the flip cannot happen at all *)
  | Some pfn' -> user_pfn_ok t pfn' (* blocked iff it stays in user space *)

let protects_field _ = false

open Ptg_util

let edc_bits = 24

(* The EDC covers the PTE's architectural content: flags, OS bits and the
   full 40-bit PFN field (bits 0..39). *)
let content_mask = Bits.mask 40

(* Code bits live in the spare headroom: bits 40..58 (the same bits
   PT-Guard pools) plus 59..63 — SecWalk's RISC-V target reserves this
   region, at the cost of protection keys/NX metadata. *)
let edc_lo = 40

(* CRC-24/OpenPGP (polynomial 0x864CFB): a standard code of the width
   that fits the PTE's spare bits. SecWalk's RISC-V layout fits 25 bits;
   the x86 layout modeled here has 24 spare bits (40..63) — one code bit
   fewer, with the same security character (keyless and linear). *)
let poly = 0x864CFB

let compute pte =
  let content = Int64.logand pte content_mask in
  let crc = ref 0 in
  for bit = 39 downto 0 do
    let incoming = if Bits.get content bit then 1 else 0 in
    let top = (!crc lsr 23) land 1 in
    crc := ((!crc lsl 1) lor incoming) land 0xFFFFFF;
    if top = 1 then crc := !crc lxor (poly land 0xFFFFFF)
  done;
  !crc

let protect pte =
  let content = Int64.logand pte content_mask in
  Bits.insert content ~lo:edc_lo ~hi:(edc_lo + edc_bits - 1) (Int64.of_int (compute pte))

let stored_edc pte =
  Int64.to_int (Bits.extract pte ~lo:edc_lo ~hi:(edc_lo + edc_bits - 1))

let verify pte = stored_edc pte = compute pte
let strip pte = Int64.logand pte content_mask

(* The code is keyless and computable by anyone: forging a valid
   protected PTE for attacker-chosen content is a single CRC evaluation. *)
let forge _observed ~target = protect target

(** QARMA-128 tweakable block cipher (Avanzi, ToSC 2017).

    This is the low-latency reflector cipher PT-Guard uses to build the PTE
    MAC (paper Section IV-F: "18 round QARMA-128 ... 256-bit key").

    The implementation follows the published construction: a 16-cell state
    (8-bit cells for the 128-bit block), [r] forward rounds of
    AddRoundTweakey / cell shuffle [tau] / involutory diffusion matrix [M] /
    S-box, a keyed pseudo-reflector, and [r] mirrored backward rounds, with
    the tweak evolving through the [h] cell permutation and a cell LFSR.
    Key material is [w0 || k0] (256 bits); [w1] is derived by the
    orthomorphism [o(w) = (w >>> 1) xor (w >> 127)] and the reflector key is
    [k1 = M(k0)].

    No official QARMA-128 test vectors are reachable in this offline
    environment, so the round constants (hex digits of pi) and the 8-bit
    cell S-box (nibble-parallel sigma_1 with nibble swap) are documented
    choices; correctness is established by the property tests: exact
    inverse, ~50% avalanche, and key/tweak sensitivity. See DESIGN.md. *)

type key
(** Expanded key schedule. *)

val default_rounds : int
(** Forward-round count [r] matching the paper's "18-round" deployment:
    [r = 8] (8 forward + 2 reflector + 8 backward). *)

val expand_key : ?rounds:int -> w0:Block128.t -> Block128.t -> key
(** [expand_key ~w0 k0] builds a key schedule from the 256-bit key
    [w0 || k0].
    [rounds] defaults to {!default_rounds}; it must be within [1, 16]
    (bounded by the round-constant table). *)

val key_of_rng : ?rounds:int -> Ptg_util.Rng.t -> key
(** Draw a uniformly random key. *)

val rounds : key -> int

val encrypt : key -> tweak:Block128.t -> Block128.t -> Block128.t
(** [encrypt key ~tweak p] is the ciphertext of block [p] under [tweak]. *)

val decrypt : key -> tweak:Block128.t -> Block128.t -> Block128.t
(** Exact inverse of {!encrypt} for the same key and tweak. *)

(**/**)

module Internal : sig
  (* Exposed for white-box unit tests only. *)
  val sbox : int array
  val sbox_inv : int array
  val tau : int array
  val tau_inv : int array
  val mix : int array -> int array
  val tweak_update : int array -> int array
  val tweak_update_inv : int array -> int array
end

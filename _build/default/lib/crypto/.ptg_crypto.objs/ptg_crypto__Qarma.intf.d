lib/crypto/qarma.mli: Block128 Ptg_util

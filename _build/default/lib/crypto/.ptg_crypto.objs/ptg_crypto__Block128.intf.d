lib/crypto/block128.mli: Format

lib/crypto/qarma.ml: Array Block128 Ptg_util

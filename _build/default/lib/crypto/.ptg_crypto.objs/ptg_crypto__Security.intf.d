lib/crypto/security.mli: Format

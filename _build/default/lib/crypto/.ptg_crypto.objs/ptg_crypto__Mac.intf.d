lib/crypto/mac.mli: Format Qarma

lib/crypto/security.ml: Binomial Float Format Ptg_util

lib/crypto/mac.ml: Array Block128 Format Int64 Ptg_util Qarma

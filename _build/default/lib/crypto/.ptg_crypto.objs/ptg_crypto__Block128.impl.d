lib/crypto/block128.ml: Array Format Int64 Ptg_util

open Ptg_util

let log2_p_escape ~n ~k ~g_max =
  if n <= 0 || k < 0 || g_max <= 0 then invalid_arg "Security.log2_p_escape";
  Binomial.log2 (float_of_int g_max)
  +. Binomial.log2_sum_choose n k
  -. float_of_int n

let p_escape ~n ~k ~g_max = Float.pow 2.0 (log2_p_escape ~n ~k ~g_max)
let effective_mac_bits ~n ~k ~g_max = -.log2_p_escape ~n ~k ~g_max
let security_loss_bits ~n ~k ~g_max = float_of_int n -. effective_mac_bits ~n ~k ~g_max

let p_uncorrectable ~n ~p_flip ~k = Binomial.tail_ge ~n ~p:p_flip (k + 1)

let min_k ~n ~p_flip ~target =
  let rec go k =
    if k > n then n
    else if p_uncorrectable ~n ~p_flip ~k < target then k
    else go (k + 1)
  in
  go 0

let seconds_per_year = 365.25 *. 24.0 *. 3600.0
let dram_attempts_per_sec = 1.0 /. 50e-9

let years_to_attack ~log2_p_success ~attempts_per_sec =
  (* E[attempts] = 2^-log2_p; keep in log space until the final division. *)
  let log2_attempts = -.log2_p_success in
  let log2_secs = log2_attempts -. Binomial.log2 attempts_per_sec in
  Float.pow 2.0 (log2_secs -. Binomial.log2 seconds_per_year)

type report = {
  mac_bits : int;
  soft_k : int;
  g_max : int;
  n_eff : float;
  loss_bits : float;
  log2_escape : float;
  years_detection_only : float;
  years_with_correction : float;
  p_uncorrectable_at_1pct : float;
  p_uncorrectable_at_0p2pct : float;
}

let report ?(mac_bits = 96) ?(soft_k = 4) ?(g_max = 372) () =
  let log2_escape = log2_p_escape ~n:mac_bits ~k:soft_k ~g_max in
  {
    mac_bits;
    soft_k;
    g_max;
    n_eff = -.log2_escape;
    loss_bits = float_of_int mac_bits +. log2_escape;
    log2_escape;
    years_detection_only =
      years_to_attack
        ~log2_p_success:(-.float_of_int mac_bits)
        ~attempts_per_sec:dram_attempts_per_sec;
    years_with_correction =
      years_to_attack ~log2_p_success:log2_escape
        ~attempts_per_sec:dram_attempts_per_sec;
    p_uncorrectable_at_1pct = p_uncorrectable ~n:mac_bits ~p_flip:0.01 ~k:soft_k;
    p_uncorrectable_at_0p2pct = p_uncorrectable ~n:mac_bits ~p_flip:0.002 ~k:soft_k;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>MAC width:                 %d bits@,\
     Soft-match tolerance k:    %d bits@,\
     Max correction guesses:    %d@,\
     Effective MAC security:    %.1f bits@,\
     Security loss:             %.1f bits@,\
     log2 P[escape detection]:  %.1f@,\
     Attack time (detect-only): %.3g years@,\
     Attack time (correcting):  %.3g years@,\
     P[>k MAC flips] at 1%%:    %.3g@,\
     P[>k MAC flips] at 0.2%%:  %.3g@]"
    r.mac_bits r.soft_k r.g_max r.n_eff r.loss_bits r.log2_escape
    r.years_detection_only r.years_with_correction r.p_uncorrectable_at_1pct
    r.p_uncorrectable_at_0p2pct

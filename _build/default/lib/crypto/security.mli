(** Analytical security model for PT-Guard's MAC (paper Sections IV-G and
    VI-E, Equations 1 and 2).

    All probabilities are tracked in log2 space because quantities like
    2^-96 underflow doubles only barely and intermediate binomials
    overflow; the printable reports convert at the edges. *)

val log2_p_escape : n:int -> k:int -> g_max:int -> float
(** Equation (1) in log2: probability that a tampered PTE escapes detection
    given an [n]-bit MAC, soft matching tolerating [k] faulty MAC bits and
    at most [g_max] correction guesses.
    [log2 (G_max * sum_{h<=k} C(n,h) / 2^n)]. *)

val p_escape : n:int -> k:int -> g_max:int -> float
(** [2 ** log2_p_escape] (may underflow to 0 for large [n]). *)

val effective_mac_bits : n:int -> k:int -> g_max:int -> float
(** [n_eff = -log2 p_escape]; the paper reports 66 bits for n=96, k=4,
    G_max=372. *)

val security_loss_bits : n:int -> k:int -> g_max:int -> float
(** [n - n_eff]. *)

val p_uncorrectable : n:int -> p_flip:float -> k:int -> float
(** Equation (2): probability that more than [k] of the [n] MAC bits flip,
    i.e. the stored MAC itself is beyond the soft-match budget. *)

val min_k : n:int -> p_flip:float -> target:float -> int
(** Smallest [k] such that [p_uncorrectable] < [target] (the paper picks
    the smallest k giving < 1% at p_flip = 1%, which is k = 4). *)

val years_to_attack : log2_p_success:float -> attempts_per_sec:float -> float
(** Expected years until one success when each attempt succeeds with
    probability [2 ** log2_p_success] at the given attempt rate. The
    paper's headline numbers: one attempt per 50 ns DRAM access against a
    96-bit MAC gives > 10^14 years; the k=4-softened 66-bit-effective MAC
    still gives > 10^4 years. *)

val dram_attempts_per_sec : float
(** One attempt per 50 ns DRAM access = 2e7/s (Section IV-G). *)

type report = {
  mac_bits : int;
  soft_k : int;
  g_max : int;
  n_eff : float;
  loss_bits : float;
  log2_escape : float;
  years_detection_only : float;  (** exact match, no correction *)
  years_with_correction : float; (** soft match + correction guesses *)
  p_uncorrectable_at_1pct : float;
  p_uncorrectable_at_0p2pct : float;
}

val report : ?mac_bits:int -> ?soft_k:int -> ?g_max:int -> unit -> report
(** Defaults follow the paper: 96-bit MAC, k = 4, G_max = 372. *)

val pp_report : Format.formatter -> report -> unit

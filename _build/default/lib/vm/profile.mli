(** PTE value-locality profiling — the measurement behind the paper's
    Figure 8 and the correction guess strategies of Section VI-B. *)

type category = Zero | Contiguous | Non_contiguous

val categorize : Ptg_pte.Line.t -> category array
(** Per-PTE category within one cacheline. A non-zero PTE is [Contiguous]
    when its PFN continues the +1-per-page progression from its nearest
    non-zero neighbour in the line (i.e. [pfn_i - pfn_j = i - j]); ties
    between equally-near neighbours accept either side. *)

type process_stats = {
  total_ptes : int;
  zero : int;
  contiguous : int;
  non_contiguous : int;
  flag_uniform_lines : int; (** lines whose non-zero PTEs agree on all flags *)
  nonzero_lines : int;      (** lines with at least one non-zero PTE *)
}

val stats_of_lines : Ptg_pte.Line.t array -> process_stats

val pct_zero : process_stats -> float
val pct_contiguous : process_stats -> float
val pct_non_contiguous : process_stats -> float

val flag_uniformity : process_stats -> float
(** Fraction of non-zero-bearing lines whose non-zero PTEs share identical
    flag values (paper Insight 3: > 99%). Flags here are all protected
    non-PFN bits (permissions, protection keys, NX) excluding Accessed
    and Dirty, which genuinely vary per page. *)

type aggregate = {
  processes : int;
  mean_zero : float;
  stderr_zero : float;
  mean_contiguous : float;
  stderr_contiguous : float;
  mean_non_contiguous : float;
  mean_flag_uniformity : float;
  total_ptes_profiled : int;
  per_process : (float * float * float) array;
      (** (zero, contiguous, non-contiguous) percentages, sorted by
          contiguous descending — the x-axis ordering of Figure 8 *)
}

val aggregate : process_stats list -> aggregate

type t = { read_word : int64 -> int64; write_word : int64 -> int64 -> unit }

let check_aligned addr =
  if Int64.logand addr 7L <> 0L then
    invalid_arg "Phys_mem: unaligned word address"

let of_hashtbl () =
  let store : (int64, int64) Hashtbl.t = Hashtbl.create 4096 in
  {
    read_word =
      (fun addr ->
        check_aligned addr;
        Option.value ~default:0L (Hashtbl.find_opt store addr));
    write_word =
      (fun addr v ->
        check_aligned addr;
        if Int64.equal v 0L then Hashtbl.remove store addr
        else Hashtbl.replace store addr v);
  }

let of_dram dram =
  {
    read_word =
      (fun addr ->
        check_aligned addr;
        let line = Ptg_dram.Dram.read_line dram addr in
        let idx = Int64.to_int (Int64.logand addr 63L) / 8 in
        line.(idx));
    write_word =
      (fun addr v ->
        check_aligned addr;
        let line = Ptg_dram.Dram.read_line dram addr in
        let idx = Int64.to_int (Int64.logand addr 63L) / 8 in
        line.(idx) <- v;
        Ptg_dram.Dram.write_line dram addr line);
  }

let read_line t addr =
  let base = Ptg_pte.Line.line_addr addr in
  Array.init 8 (fun i -> t.read_word (Int64.add base (Int64.of_int (i * 8))))

let write_line t addr line =
  let base = Ptg_pte.Line.line_addr addr in
  Array.iteri (fun i w -> t.write_word (Int64.add base (Int64.of_int (i * 8))) w) line

(** Word-addressable physical memory abstraction.

    Page tables are built through this interface so the same construction
    code can target either a plain hashtable (fast, for profiling
    experiments) or a simulated DRAM device (for end-to-end demos where
    Rowhammer corrupts the stored page tables and PT-Guard inspects the
    traffic). Word addresses must be 8-byte aligned. *)

type t = {
  read_word : int64 -> int64;
  write_word : int64 -> int64 -> unit;
}

val of_hashtbl : unit -> t
(** Fresh, zero-initialized sparse memory. *)

val of_dram : Ptg_dram.Dram.t -> t
(** Backed by a DRAM device's functional storage (read-modify-write at
    line granularity). Note: accesses through this view are {e untimed}
    and bypass any memory-controller integrity engine; use the memory
    controller's own API when PT-Guard must observe the traffic. *)

val read_line : t -> int64 -> Ptg_pte.Line.t
(** Assemble the 64-byte line containing the address. *)

val write_line : t -> int64 -> Ptg_pte.Line.t -> unit

(** Statistical model of a Linux process's address space.

    Generates the leaf-level PTE cachelines of a realistic process without
    materializing the radix tree — the scale of the paper's Figure 8
    profile (623 processes, 24M PTEs) makes streaming generation
    necessary. The model reproduces the three properties the paper
    measures and exploits for correction:

    - {b sparseness}: page-table pages are allocated whole (512 entries)
      but populated only in demand-faulted runs, leaving ~64% zero PTEs;
    - {b PFN contiguity}: sequentially faulted pages draw consecutive
      frames from the allocator, broken by fragmentation (~24% of all
      PTEs end up contiguous with a neighbour);
    - {b flag uniformity}: permissions are per-VMA, so the 8 PTEs of a
      cacheline almost always agree on every flag.

    Knobs are drawn per process, giving the cross-process spread visible
    in Figure 8. *)

type vma_kind = Code | Data | Heap | Stack | Shared_lib | Mmap

val vma_kind_name : vma_kind -> string

type size_class = Small | Medium | Large

type params = {
  size_class : size_class;
  target_ptes : int;    (** total leaf PTE slots (allocated PT pages * 512) *)
  mean_run : float;     (** mean length of a present-page run *)
  mean_gap : float;     (** mean length of a gap between runs *)
  p_break : float;      (** allocator fragmentation probability *)
}

val draw_params : Ptg_util.Rng.t -> params
(** Process population model: 60% small (~2K PTEs), 30% medium (~30K),
    10% large (~250K); locality knobs jittered per process. The resulting
    623-process aggregate matches the paper's 24M-PTE profile. *)

type vma = {
  kind : vma_kind;
  start_vpn : int64;   (** first virtual page number, 512-aligned *)
  npages : int;        (** pages spanned (present or not) *)
  writable : bool;
  user : bool;
  no_execute : bool;
  protection_key : int64;
}

val generate_vmas : Ptg_util.Rng.t -> params -> vma list
(** Carve the target PTE budget into VMAs with kind-appropriate sizes and
    permissions, at disjoint 2 MB-aligned regions. *)

val leaf_lines : Ptg_util.Rng.t -> params -> Ptg_pte.Line.t array
(** All leaf PTE cachelines of one generated process (zero lines from the
    unpopulated parts of allocated page-table pages included). *)

val populate :
  Ptg_util.Rng.t ->
  params ->
  table:Page_table.t ->
  alloc:Frame_allocator.t ->
  vma list
(** Functional variant: actually install the process's mappings into a
    {!Page_table.t} (used by the end-to-end attack demos, with modest
    [target_ptes]). Returns the VMAs created. *)

lib/vm/process_model.mli: Frame_allocator Page_table Ptg_pte Ptg_util

lib/vm/frame_allocator.ml: Array Int64 Ptg_util

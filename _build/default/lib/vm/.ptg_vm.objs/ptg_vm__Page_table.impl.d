lib/vm/page_table.ml: Bits Format Frame_allocator Int64 List Option Phys_mem Ptg_pte Ptg_util

lib/vm/phys_mem.ml: Array Hashtbl Int64 Option Ptg_dram Ptg_pte

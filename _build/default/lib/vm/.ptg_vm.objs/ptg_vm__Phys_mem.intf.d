lib/vm/phys_mem.mli: Ptg_dram Ptg_pte

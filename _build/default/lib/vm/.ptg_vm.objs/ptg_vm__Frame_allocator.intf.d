lib/vm/frame_allocator.mli: Ptg_util

lib/vm/profile.mli: Ptg_pte

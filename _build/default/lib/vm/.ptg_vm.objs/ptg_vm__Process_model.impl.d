lib/vm/process_model.ml: Array Float Frame_allocator Int64 List Page_table Ptg_pte Ptg_util Rng

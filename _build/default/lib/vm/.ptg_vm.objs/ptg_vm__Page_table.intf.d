lib/vm/page_table.mli: Format Frame_allocator Phys_mem

lib/vm/profile.ml: Array Bits Int64 List Ptg_pte Ptg_util Stats

open Ptg_util

type category = Zero | Contiguous | Non_contiguous

let categorize line =
  let pfn i = Ptg_pte.X86.pfn line.(i) in
  let nonzero i = not (Int64.equal line.(i) 0L) in
  Array.init 8 (fun i ->
      if not (nonzero i) then Zero
      else begin
        (* Nearest non-zero neighbour on each side. *)
        let continues j =
          nonzero j
          && Int64.equal (Int64.sub (pfn i) (pfn j)) (Int64.of_int (i - j))
        in
        let rec scan step j = if j < 0 || j > 7 then None else if nonzero j then Some j else scan step (j + step) in
        let left = scan (-1) (i - 1) and right = scan 1 (i + 1) in
        let candidate =
          match (left, right) with
          | None, None -> []
          | Some l, None -> [ l ]
          | None, Some r -> [ r ]
          | Some l, Some r ->
              if i - l < r - i then [ l ] else if r - i < i - l then [ r ] else [ l; r ]
        in
        if List.exists continues candidate then Contiguous else Non_contiguous
      end)

type process_stats = {
  total_ptes : int;
  zero : int;
  contiguous : int;
  non_contiguous : int;
  flag_uniform_lines : int;
  nonzero_lines : int;
}

(* Flags compared for uniformity: every protected non-PFN bit except
   Accessed (bit 5), which legitimately differs per page. *)
let flag_signature pte =
  let low = Int64.logand pte 0b111011111L in
  let high = Bits.extract pte ~lo:59 ~hi:63 in
  Int64.logor low (Int64.shift_left high 9)

let line_flags_uniform line =
  let sigs =
    Array.to_list line
    |> List.filter (fun w -> not (Int64.equal w 0L))
    |> List.map flag_signature
  in
  match sigs with
  | [] -> true
  | s :: rest -> List.for_all (Int64.equal s) rest

let stats_of_lines lines =
  let zero = ref 0 and contiguous = ref 0 and non_contiguous = ref 0 in
  let uniform = ref 0 and nonzero_lines = ref 0 in
  Array.iter
    (fun line ->
      Array.iter
        (function
          | Zero -> incr zero
          | Contiguous -> incr contiguous
          | Non_contiguous -> incr non_contiguous)
        (categorize line);
      if not (Ptg_pte.Line.is_zero line) then begin
        incr nonzero_lines;
        if line_flags_uniform line then incr uniform
      end)
    lines;
  {
    total_ptes = 8 * Array.length lines;
    zero = !zero;
    contiguous = !contiguous;
    non_contiguous = !non_contiguous;
    flag_uniform_lines = !uniform;
    nonzero_lines = !nonzero_lines;
  }

let pct part total = if total = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int total
let pct_zero s = pct s.zero s.total_ptes
let pct_contiguous s = pct s.contiguous s.total_ptes
let pct_non_contiguous s = pct s.non_contiguous s.total_ptes

let flag_uniformity s =
  if s.nonzero_lines = 0 then 1.0
  else float_of_int s.flag_uniform_lines /. float_of_int s.nonzero_lines

type aggregate = {
  processes : int;
  mean_zero : float;
  stderr_zero : float;
  mean_contiguous : float;
  stderr_contiguous : float;
  mean_non_contiguous : float;
  mean_flag_uniformity : float;
  total_ptes_profiled : int;
  per_process : (float * float * float) array;
}

let aggregate stats_list =
  let stats = Array.of_list stats_list in
  let zeros = Array.map pct_zero stats in
  let contigs = Array.map pct_contiguous stats in
  let noncontigs = Array.map pct_non_contiguous stats in
  let uniforms = Array.map flag_uniformity stats in
  let per_process =
    Array.map2 (fun z (c, n) -> (z, c, n)) zeros
      (Array.map2 (fun c n -> (c, n)) contigs noncontigs)
  in
  Array.sort (fun (_, c1, _) (_, c2, _) -> compare c2 c1) per_process;
  {
    processes = Array.length stats;
    mean_zero = Stats.mean zeros;
    stderr_zero = Stats.stderr zeros;
    mean_contiguous = Stats.mean contigs;
    stderr_contiguous = Stats.stderr contigs;
    mean_non_contiguous = Stats.mean noncontigs;
    mean_flag_uniformity = Stats.mean uniforms;
    total_ptes_profiled = Array.fold_left (fun acc s -> acc + s.total_ptes) 0 stats;
    per_process;
  }

open Ptg_util

type vma_kind = Code | Data | Heap | Stack | Shared_lib | Mmap

let vma_kind_name = function
  | Code -> "code"
  | Data -> "data"
  | Heap -> "heap"
  | Stack -> "stack"
  | Shared_lib -> "shared-lib"
  | Mmap -> "mmap"

type size_class = Small | Medium | Large

type params = {
  size_class : size_class;
  target_ptes : int;
  mean_run : float;
  mean_gap : float;
  p_break : float;
}

let jitter rng base spread = base *. (1.0 +. (spread *. ((2.0 *. Rng.float rng) -. 1.0)))

let draw_params rng =
  let u = Rng.float rng in
  let size_class, base_ptes =
    if u < 0.60 then (Small, 2048)
    else if u < 0.90 then (Medium, 30_720)
    else (Large, 245_760)
  in
  let target_ptes =
    let f = jitter rng (float_of_int base_ptes) 0.5 in
    max 512 (512 * int_of_float (Float.round (f /. 512.0)))
  in
  {
    size_class;
    target_ptes;
    (* Calibrated against Figure 8's aggregates (64.13% zero PTEs, 23.73%
       contiguous): see the calibration test in test/test_process_model.ml. *)
    mean_run = Float.max 1.5 (jitter rng 8.0 0.4);
    mean_gap = Float.max 1.5 (jitter rng 5.0 0.4);
    p_break = Float.min 0.9 (Float.max 0.05 (jitter rng 0.45 0.4));
  }

type vma = {
  kind : vma_kind;
  start_vpn : int64;
  npages : int;
  writable : bool;
  user : bool;
  no_execute : bool;
  protection_key : int64;
}

let vma_spec rng kind =
  (* Page-count ranges per mapping kind (4 KB pages). *)
  let range lo hi = lo + Rng.int rng (hi - lo + 1) in
  match kind with
  | Code -> (range 16 512, false, true, false)
  | Data -> (range 8 256, true, true, true)
  | Heap -> (range 64 4096, true, true, true)
  | Stack -> (range 8 64, true, true, true)
  | Shared_lib -> (range 16 384, false, true, false)
  | Mmap -> (range 128 8192, true, true, true)

let kinds_cycle = [| Mmap; Heap; Shared_lib; Code; Data; Shared_lib; Mmap; Stack |]

let generate_vmas rng params =
  (* Every process has the fixed segments; the PTE budget beyond them is
     filled with mmap/lib regions, as in real address spaces where
     anonymous mappings dominate large processes. *)
  let budget = ref params.target_ptes in
  let next_vpn = ref 0x7f00_0000_0L in
  let vmas = ref [] in
  let add kind =
    let npages, writable, user, no_execute = vma_spec rng kind in
    let npages = min npages (max 1 !budget) in
    let span_ptes = 512 * ((npages + 511) / 512) in
    let protection_key =
      if kind = Mmap && Rng.bernoulli rng 0.05 then Int64.of_int (1 + Rng.int rng 15)
      else 0L
    in
    vmas :=
      { kind; start_vpn = !next_vpn; npages; writable; user; no_execute; protection_key }
      :: !vmas;
    (* Next VMA starts on a fresh 2 MB (512-page) boundary, leaving a hole. *)
    next_vpn := Int64.add !next_vpn (Int64.of_int (span_ptes + 512));
    budget := !budget - span_ptes
  in
  add Code;
  add Data;
  add Stack;
  add Heap;
  let i = ref 0 in
  while !budget > 0 do
    add kinds_cycle.(!i mod Array.length kinds_cycle);
    incr i
  done;
  List.rev !vmas

(* Demand-paging run structure: alternating present runs and gaps with
   geometric lengths. Returns presence per page of the VMA. *)
let presence_map rng params npages =
  let present = Array.make npages false in
  let p_run = 1.0 /. params.mean_run and p_gap = 1.0 /. params.mean_gap in
  let i = ref 0 in
  (* Start in a gap or a run with probability proportional to their share. *)
  let in_run = ref (Rng.float rng < params.mean_run /. (params.mean_run +. params.mean_gap)) in
  while !i < npages do
    let len = 1 + Rng.geometric rng (if !in_run then p_run else p_gap) in
    if !in_run then
      for j = !i to min (npages - 1) (!i + len - 1) do
        present.(j) <- true
      done;
    i := !i + len;
    in_run := not !in_run
  done;
  present

let pte_of_frame rng vma frame =
  let accessed = Rng.bernoulli rng 0.7 in
  (* Anonymous writable pages are dirty from their first (write) fault, so
     dirty is VMA-uniform in practice — the paper measures > 99% of lines
     with identical flag values across all non-zero PTEs. A 0.1% per-page
     exception models clean-after-writeback pages. *)
  let dirty = vma.writable <> Rng.bernoulli rng 0.001 && vma.writable in
  Ptg_pte.X86.make ~writable:vma.writable ~user:vma.user ~accessed ~dirty
    ~no_execute:vma.no_execute ~protection_key:vma.protection_key ~pfn:frame ()

(* Generate the leaf PTE values of one VMA, padded to whole PT pages. *)
let vma_ptes rng params alloc vma =
  let span = 512 * ((vma.npages + 511) / 512) in
  let ptes = Array.make span 0L in
  let present = presence_map rng params vma.npages in
  (* Allocate frames per present run so contiguity reflects fault order. *)
  let i = ref 0 in
  while !i < vma.npages do
    if present.(!i) then begin
      let run_end = ref !i in
      while !run_end + 1 < vma.npages && present.(!run_end + 1) do
        incr run_end
      done;
      let frames = Frame_allocator.alloc_run alloc (!run_end - !i + 1) in
      Array.iteri
        (fun k frame -> ptes.(!i + k) <- pte_of_frame rng vma frame)
        frames;
      i := !run_end + 1
    end
    else incr i
  done;
  ptes

let leaf_lines rng params =
  let alloc =
    Frame_allocator.create ~p_break:params.p_break
      ~start_frame:(Int64.of_int (0x1000 + Rng.int rng 0x100000))
      rng
  in
  let vmas = generate_vmas rng params in
  let lines = ref [] in
  List.iter
    (fun vma ->
      let ptes = vma_ptes rng params alloc vma in
      let nlines = Array.length ptes / 8 in
      for l = nlines - 1 downto 0 do
        lines := Array.sub ptes (l * 8) 8 :: !lines
      done)
    vmas;
  Array.of_list !lines

let populate rng params ~table ~alloc =
  let vmas = generate_vmas rng params in
  List.iter
    (fun vma ->
      let ptes = vma_ptes rng params alloc vma in
      Array.iteri
        (fun i pte ->
          if not (Int64.equal pte 0L) then begin
            let vaddr = Int64.shift_left (Int64.add vma.start_vpn (Int64.of_int i)) 12 in
            Page_table.map table ~vaddr ~pte
          end)
        ptes)
    vmas;
  vmas

(** x86_64 page table entry codec (paper Table I, Intel SDM Vol. 3A).

    A PTE is a raw [int64]; this module names every architectural field so
    the rest of the system never hard-codes bit positions. The same layout
    is used at all four paging levels (PML4E/PDPTE/PDE/PTE). *)

type flag =
  | Present            (** bit 0 *)
  | Writable           (** bit 1 *)
  | User_accessible    (** bit 2 *)
  | Write_through      (** bit 3 *)
  | Cache_disable      (** bit 4 *)
  | Accessed           (** bit 5 *)
  | Dirty              (** bit 6 *)
  | Huge_page          (** bit 7: 2 MB page at PDE level / PAT at PTE level *)
  | Global             (** bit 8 *)
  | No_execute         (** bit 63 *)

val flag_bit : flag -> int
val all_flags : flag list

val get_flag : int64 -> flag -> bool
val set_flag : int64 -> flag -> bool -> int64

val pfn : int64 -> int64
(** Bits 51:12 — the page frame number. *)

val set_pfn : int64 -> int64 -> int64
(** [set_pfn pte pfn] keeps only the low 40 bits of [pfn]. *)

val os_bits : int64 -> int64
(** Bits 11:9, usable by the OS. *)

val set_os_bits : int64 -> int64 -> int64

val protection_key : int64 -> int64
(** Bits 62:59 — memory protection key domain (MPK). *)

val set_protection_key : int64 -> int64 -> int64

val ignored_bits : int64 -> int64
(** Bits 58:52, ignored by hardware; PT-Guard's identifier lives here. *)

val make :
  ?writable:bool ->
  ?user:bool ->
  ?accessed:bool ->
  ?dirty:bool ->
  ?global:bool ->
  ?no_execute:bool ->
  ?protection_key:int64 ->
  pfn:int64 ->
  unit ->
  int64
(** A present PTE with the given fields; unspecified flags are clear. *)

val zero : int64
(** The not-present all-zero PTE (the common case in real page tables). *)

val is_zero : int64 -> bool

val phys_addr : int64 -> int64
(** [pfn pte * 4096]. *)

val pp : Format.formatter -> int64 -> unit
(** Compact human-readable rendering, e.g. [pfn=0x1a2b P W U A D]. *)

(** PT-Guard's protection layout for ARMv8 descriptors (paper Section
    IV-F: "Without loss of generality, we use x86_64 page table format ...
    but the principles apply to ARMv8 or any other ISA").

    ARMv8 provisions the same 40-bit output address as x86-64, but splits
    it: PFN[37:0] at bits 49:12 and PFN[39:38] at bits 9:8 (Table II). At
    M = 40 physical bits a PTE uses PFN bits 27:0 (descriptor bits 39:12),
    leaving exactly 12 unused PFN bits per PTE — descriptor bits 49:40
    plus 9:8 — i.e. the same 96 pooled MAC bits per cacheline as x86, just
    scattered. The OS-ignored bits 58:55 give a 4-bit-per-PTE (32-bit per
    line) identifier for the optimized design; being narrower than x86's
    56-bit identifier, data-line identifier collisions are ~2^-32 per read
    instead of ~2^-56 (still forwarded correctly, merely costing a MAC
    computation).

    Protected content mirrors Table IV's intent: every architectural field
    except the Accessed flag (AF, bit 10) — valid/block, memory
    attributes, access permissions, caching, dirty, contiguous,
    execute-never, hardware attributes, and the in-use PFN bits. *)

type config = { phys_addr_bits : int }

val default : config
(** M = 40. *)

val make : phys_addr_bits:int -> config
(** Supported range: 32..40 (12 to 20 unused PFN bits; the MAC always
    uses the top 12). *)

val protected_mask : config -> int64
(** Per-descriptor mask of MAC-protected bits (45 bits at M = 40). *)

val protected_bits_per_pte : config -> int

val mac_field_mask : int64
(** Bits 49:40 and 9:8 — the scattered 12-bit MAC slice. *)

val identifier_field_mask : int64
(** Bits 58:55. *)

val matches_basic_pattern : config -> Line.t -> bool
val matches_extended_pattern : config -> Line.t -> bool

val embed_mac : Line.t -> Ptg_crypto.Mac.t -> Line.t
val extract_mac : Line.t -> Ptg_crypto.Mac.t
val strip_mac : Line.t -> Line.t
val masked_for_mac : config -> Line.t -> Line.t

val embed_identifier : Line.t -> int64 -> Line.t
(** 32-bit identifier, 4 bits per descriptor. *)

val extract_identifier : Line.t -> int64
val strip_identifier : Line.t -> Line.t

open Ptg_util

type flag =
  | Present
  | Writable
  | User_accessible
  | Write_through
  | Cache_disable
  | Accessed
  | Dirty
  | Huge_page
  | Global
  | No_execute

let flag_bit = function
  | Present -> 0
  | Writable -> 1
  | User_accessible -> 2
  | Write_through -> 3
  | Cache_disable -> 4
  | Accessed -> 5
  | Dirty -> 6
  | Huge_page -> 7
  | Global -> 8
  | No_execute -> 63

let all_flags =
  [ Present; Writable; User_accessible; Write_through; Cache_disable;
    Accessed; Dirty; Huge_page; Global; No_execute ]

let get_flag pte f = Bits.get pte (flag_bit f)
let set_flag pte f b = Bits.assign pte (flag_bit f) b
let pfn pte = Bits.extract pte ~lo:12 ~hi:51
let set_pfn pte v = Bits.insert pte ~lo:12 ~hi:51 v
let os_bits pte = Bits.extract pte ~lo:9 ~hi:11
let set_os_bits pte v = Bits.insert pte ~lo:9 ~hi:11 v
let protection_key pte = Bits.extract pte ~lo:59 ~hi:62
let set_protection_key pte v = Bits.insert pte ~lo:59 ~hi:62 v
let ignored_bits pte = Bits.extract pte ~lo:52 ~hi:58

let make ?(writable = false) ?(user = false) ?(accessed = false) ?(dirty = false)
    ?(global = false) ?(no_execute = false) ?(protection_key = 0L) ~pfn () =
  let pte = set_flag 0L Present true in
  let pte = set_flag pte Writable writable in
  let pte = set_flag pte User_accessible user in
  let pte = set_flag pte Accessed accessed in
  let pte = set_flag pte Dirty dirty in
  let pte = set_flag pte Global global in
  let pte = set_flag pte No_execute no_execute in
  let pte = set_protection_key pte protection_key in
  set_pfn pte pfn

let zero = 0L
let is_zero pte = Int64.equal pte 0L
let phys_addr pte = Int64.shift_left (pfn pte) 12

let pp fmt pte =
  if is_zero pte then Format.fprintf fmt "<zero>"
  else begin
    Format.fprintf fmt "pfn=0x%Lx" (pfn pte);
    let letter f c = if get_flag pte f then Format.fprintf fmt " %c" c in
    letter Present 'P';
    letter Writable 'W';
    letter User_accessible 'U';
    letter Accessed 'A';
    letter Dirty 'D';
    letter Global 'G';
    letter No_execute 'X';
    let pk = protection_key pte in
    if pk <> 0L then Format.fprintf fmt " pk=%Ld" pk
  end

open Ptg_util

type config = { phys_addr_bits : int }

let make ~phys_addr_bits =
  if phys_addr_bits < 32 || phys_addr_bits > 40 then
    invalid_arg "Protection_armv8.make: phys_addr_bits must be in [32, 40]";
  { phys_addr_bits }

let default = make ~phys_addr_bits:40

(* The scattered 12-bit MAC slice: unused PFN bits 49:40 (PFN[37:28]) and
   9:8 (PFN[39:38]). *)
let mac_high_mask = Bits.field_mask ~lo:40 ~hi:49
let mac_low_mask = Bits.field_mask ~lo:8 ~hi:9
let mac_field_mask = Int64.logor mac_high_mask mac_low_mask
let identifier_field_mask = Bits.field_mask ~lo:55 ~hi:58

(* PFN bits a machine with M physical-address bits actually uses all live
   in the 49:12 range once M <= 40 (PFN[37:0]); bits beyond M-12 are
   zero. *)
let unused_low_pfn_mask cfg =
  if cfg.phys_addr_bits >= 40 then 0L
  else Bits.field_mask ~lo:cfg.phys_addr_bits ~hi:39

let protected_mask cfg =
  (* valid, block, attrs 5:2, AP 7:6; caching 11; used PFN (M-1):12;
     dirty 51, contiguous 52, XN 54:53; hardware attributes 62:59.
     Excluded: AF (bit 10), the MAC/identifier fields, reserved 50/63. *)
  let low = Bits.field_mask ~lo:0 ~hi:7 in
  let caching = Bits.bit 11 in
  let pfn = Bits.field_mask ~lo:12 ~hi:(cfg.phys_addr_bits - 1) in
  let high = Bits.field_mask ~lo:51 ~hi:54 in
  let hw = Bits.field_mask ~lo:59 ~hi:62 in
  List.fold_left Int64.logor 0L [ low; caching; pfn; high; hw ]

let protected_bits_per_pte cfg = Bits.popcount (protected_mask cfg)

let zero_under mask line = Array.for_all (fun w -> Int64.logand w mask = 0L) line
let basic_pattern_mask cfg = Int64.logor mac_field_mask (unused_low_pfn_mask cfg)
let matches_basic_pattern cfg line = zero_under (basic_pattern_mask cfg) line

let matches_extended_pattern cfg line =
  zero_under (Int64.logor (basic_pattern_mask cfg) identifier_field_mask) line

(* A 12-bit MAC piece goes high-10 into bits 49:40 and low-2 into 9:8. *)
let embed_piece w piece =
  let piece = Int64.of_int piece in
  let w = Bits.insert w ~lo:40 ~hi:49 (Int64.shift_right_logical piece 2) in
  Bits.insert w ~lo:8 ~hi:9 (Int64.logand piece 3L)

let extract_piece w =
  let high = Bits.extract w ~lo:40 ~hi:49 in
  let low = Bits.extract w ~lo:8 ~hi:9 in
  Int64.to_int (Int64.logor (Int64.shift_left high 2) low)

let embed_mac line mac =
  let pieces = Ptg_crypto.Mac.split12 mac in
  Array.mapi (fun i w -> embed_piece w pieces.(i)) line

let extract_mac line = Ptg_crypto.Mac.join12 (Array.map extract_piece line)
let strip_mac line = Array.map (fun w -> Int64.logand w (Int64.lognot mac_field_mask)) line

let masked_for_mac cfg line =
  let m = protected_mask cfg in
  Array.map (fun w -> Int64.logand w m) line

let embed_identifier line ident =
  if Int64.logand ident (Int64.lognot (Bits.mask 32)) <> 0L then
    invalid_arg "Protection_armv8.embed_identifier: identifier wider than 32 bits";
  Array.mapi
    (fun i w ->
      Bits.insert w ~lo:55 ~hi:58 (Bits.extract ident ~lo:(i * 4) ~hi:((i * 4) + 3)))
    line

let extract_identifier line =
  let acc = ref 0L in
  Array.iteri
    (fun i w ->
      acc := Int64.logor !acc (Int64.shift_left (Bits.extract w ~lo:55 ~hi:58) (i * 4)))
    line;
  !acc

let strip_identifier line =
  Array.map (fun w -> Int64.logand w (Int64.lognot identifier_field_mask)) line

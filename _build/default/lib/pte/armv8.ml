open Ptg_util

type field =
  | Valid
  | Block
  | Memory_attributes
  | Access_permissions
  | Accessed
  | Caching
  | Dirty
  | Contiguous
  | Execute_never

let get_valid d = Bits.get d 0
let set_valid d b = Bits.assign d 0 b
let get_block d = Bits.get d 1
let set_block d b = Bits.assign d 1 b
let memory_attributes d = Bits.extract d ~lo:2 ~hi:5
let set_memory_attributes d v = Bits.insert d ~lo:2 ~hi:5 v
let access_permissions d = Bits.extract d ~lo:6 ~hi:7
let set_access_permissions d v = Bits.insert d ~lo:6 ~hi:7 v
let get_accessed d = Bits.get d 10
let set_accessed d b = Bits.assign d 10 b
let get_contiguous d = Bits.get d 52
let set_contiguous d b = Bits.assign d 52 b
let execute_never d = Bits.extract d ~lo:53 ~hi:54
let set_execute_never d v = Bits.insert d ~lo:53 ~hi:54 v
let hardware_attributes d = Bits.extract d ~lo:59 ~hi:62

let pfn d =
  let low = Bits.extract d ~lo:12 ~hi:49 in
  let high = Bits.extract d ~lo:8 ~hi:9 in
  Int64.logor low (Int64.shift_left high 38)

let set_pfn d v =
  let d = Bits.insert d ~lo:12 ~hi:49 (Int64.logand v (Bits.mask 38)) in
  Bits.insert d ~lo:8 ~hi:9 (Int64.shift_right_logical v 38)

let make ?(writable = false) ?(user = false) ?(execute_never = false) ~pfn:frame () =
  let d = set_valid 0L true in
  let d = set_block d false in
  (* AP[2:1]: AP[2]=read-only, AP[1]=EL0 accessible. *)
  let ap = (if writable then 0L else 2L) |> fun ap ->
    if user then Int64.logor ap 1L else ap
  in
  let d = set_access_permissions d ap in
  let d = set_execute_never d (if execute_never then 3L else 0L) in
  let d = set_accessed d true in
  set_pfn d frame

let zero = 0L
let is_zero d = Int64.equal d 0L

let pp fmt d =
  if is_zero d then Format.fprintf fmt "<zero>"
  else
    Format.fprintf fmt "pfn=0x%Lx%s ap=%Ld xn=%Ld" (pfn d)
      (if get_valid d then " V" else "")
      (access_permissions d) (execute_never d)

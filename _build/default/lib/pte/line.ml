type t = int64 array

let words = 8
let size_bytes = 64
let create () = Array.make words 0L
let copy = Array.copy

let equal a b =
  Array.length a = words && Array.length b = words
  && begin
       let ok = ref true in
       for i = 0 to words - 1 do
         if not (Int64.equal a.(i) b.(i)) then ok := false
       done;
       !ok
     end

let is_zero a = Array.for_all (Int64.equal 0L) a

let of_words a =
  if Array.length a <> words then invalid_arg "Line.of_words: need 8 words";
  Array.copy a

let map = Array.map

let hamming a b =
  let acc = ref 0 in
  for i = 0 to words - 1 do
    acc := !acc + Ptg_util.Bits.hamming a.(i) b.(i)
  done;
  !acc

let flip_bit line i =
  if i < 0 || i > 511 then invalid_arg "Line.flip_bit: bit index";
  let out = Array.copy line in
  out.(i / 64) <- Ptg_util.Bits.flip out.(i / 64) (i mod 64);
  out

let get_bit line i =
  if i < 0 || i > 511 then invalid_arg "Line.get_bit: bit index";
  Ptg_util.Bits.get line.(i / 64) (i mod 64)

let set_bit line i b =
  if i < 0 || i > 511 then invalid_arg "Line.set_bit: bit index";
  let out = Array.copy line in
  out.(i / 64) <- Ptg_util.Bits.assign out.(i / 64) (i mod 64) b;
  out

let line_addr a = Int64.logand a (Int64.lognot 63L)

let pp fmt line =
  Format.fprintf fmt "@[<v>";
  Array.iteri (fun i w -> Format.fprintf fmt "[%d] %a@," i Ptg_util.Bits.pp_hex w) line;
  Format.fprintf fmt "@]"

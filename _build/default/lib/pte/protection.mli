(** Table IV of the paper: which PTE bits the MAC protects, where the MAC
    and identifier live, and the write-time bit-pattern matches.

    All functions are parameterized on [m], the number of physical address
    bits of the machine (Table IV's "M"). With [m = 40] (1 TB) every PTE
    has a 28-bit PFN and 12 unused PFN bits; the MAC always occupies bits
    51:40 and the identifier the OS-ignored bits 58:52. *)

type config = {
  phys_addr_bits : int;  (** M; 32..40 supported *)
}

val default : config
(** M = 40 — the paper's headline configuration ("even with ... 1TB ...
    there are 12 unused bits per PFN"; Section VI-F protects 28-bit PFNs). *)

val make : phys_addr_bits:int -> config

val protected_mask : config -> int64
(** Per-PTE mask of MAC-protected bits: flags 8:0 except Accessed (bit 5),
    programmable bits 11:9, PFN bits (M-1):12, and protection keys/NX
    (63:59). For M = 40 this is 44 bits = 28 PFN + 16 flag bits. *)

val mac_field_mask : int64
(** Bits 51:40 — the 12-bit per-PTE MAC slice. *)

val identifier_field_mask : int64
(** Bits 58:52 — the 7-bit per-PTE identifier slice. *)

val unused_pfn_mask : config -> int64
(** Bits 39:M (zero-width when M = 40): PFN bits beyond the machine's
    physical memory, which the OS also zeroes. Not MAC-protected. *)

val protected_bits_per_pte : config -> int
(** Popcount of {!protected_mask}. *)

(** {2 Write-time pattern matches (Sections IV-B and V-A)} *)

val matches_basic_pattern : config -> Line.t -> bool
(** The original 96-bit pattern: every PTE's MAC field (and any unused PFN
    bits) is zero. True for every line the trusted OS writes as PTEs, and
    for data lines that happen to be zero there. *)

val matches_extended_pattern : config -> Line.t -> bool
(** The optimized 152-bit pattern: basic pattern plus all identifier
    fields zero. *)

(** {2 MAC embed / extract / strip} *)

val embed_mac : Line.t -> Ptg_crypto.Mac.t -> Line.t
(** Write the 96-bit MAC into the 8 per-PTE MAC fields. *)

val extract_mac : Line.t -> Ptg_crypto.Mac.t
(** Read the stored MAC out of the MAC fields. *)

val strip_mac : Line.t -> Line.t
(** Zero the MAC fields (what the memory controller forwards upward). *)

val masked_for_mac : config -> Line.t -> Line.t
(** The canonical MAC input: the line restricted to its protected bits
    (everything else zeroed, including the MAC/identifier fields). *)

(** {2 Identifier embed / extract / strip (Section V-A)} *)

val embed_identifier : Line.t -> int64 -> Line.t
(** [embed_identifier line ident] writes the 56-bit identifier, 7 bits
    into each PTE's ignored field. *)

val extract_identifier : Line.t -> int64
val strip_identifier : Line.t -> Line.t

val split7 : int64 -> int array
(** The 8 seven-bit slices of a 56-bit identifier. *)

val join7 : int array -> int64

val pfn_out_of_bounds : config -> int64 -> bool
(** [pfn_out_of_bounds cfg pte]: the OS-visible bounds check of Section
    IV-E — a PFN referencing memory beyond the machine's physical limit,
    which is how the OS notices a MAC left in a faulty PTE it read
    directly. *)

val pp_table_iv : config -> Format.formatter -> unit -> unit
(** Render Table IV for this configuration. *)

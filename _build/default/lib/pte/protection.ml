open Ptg_util

type config = { phys_addr_bits : int }

let make ~phys_addr_bits =
  if phys_addr_bits < 32 || phys_addr_bits > 40 then
    invalid_arg "Protection.make: phys_addr_bits must be in [32, 40]";
  { phys_addr_bits }

let default = make ~phys_addr_bits:40

let mac_field_mask = Bits.field_mask ~lo:40 ~hi:51
let identifier_field_mask = Bits.field_mask ~lo:52 ~hi:58

let unused_pfn_mask cfg =
  if cfg.phys_addr_bits >= 40 then 0L
  else Bits.field_mask ~lo:cfg.phys_addr_bits ~hi:39

let protected_mask cfg =
  let flags = Int64.logand (Bits.field_mask ~lo:0 ~hi:8) (Int64.lognot (Bits.bit 5)) in
  let programmable = Bits.field_mask ~lo:9 ~hi:11 in
  let pfn = Bits.field_mask ~lo:12 ~hi:(cfg.phys_addr_bits - 1) in
  let keys_nx = Bits.field_mask ~lo:59 ~hi:63 in
  Int64.logor flags (Int64.logor programmable (Int64.logor pfn keys_nx))

let protected_bits_per_pte cfg = Bits.popcount (protected_mask cfg)

let zero_under mask line = Array.for_all (fun w -> Int64.logand w mask = 0L) line

let basic_pattern_mask cfg = Int64.logor mac_field_mask (unused_pfn_mask cfg)

let matches_basic_pattern cfg line = zero_under (basic_pattern_mask cfg) line

let matches_extended_pattern cfg line =
  zero_under (Int64.logor (basic_pattern_mask cfg) identifier_field_mask) line

let embed_mac line mac =
  let pieces = Ptg_crypto.Mac.split12 mac in
  Array.mapi
    (fun i w -> Bits.insert w ~lo:40 ~hi:51 (Int64.of_int pieces.(i)))
    line

let extract_mac line =
  Ptg_crypto.Mac.join12
    (Array.map (fun w -> Int64.to_int (Bits.extract w ~lo:40 ~hi:51)) line)

let strip_mac line = Array.map (fun w -> Int64.logand w (Int64.lognot mac_field_mask)) line

let masked_for_mac cfg line =
  let m = protected_mask cfg in
  Array.map (fun w -> Int64.logand w m) line

let split7 ident =
  if Int64.logand ident (Int64.lognot (Bits.mask 56)) <> 0L then
    invalid_arg "Protection.split7: identifier wider than 56 bits";
  Array.init 8 (fun i -> Int64.to_int (Bits.extract ident ~lo:(i * 7) ~hi:((i * 7) + 6)))

let join7 pieces =
  if Array.length pieces <> 8 then invalid_arg "Protection.join7: need 8 pieces";
  let acc = ref 0L in
  Array.iteri
    (fun i p ->
      if p < 0 || p > 0x7f then invalid_arg "Protection.join7: piece out of range";
      acc := Int64.logor !acc (Int64.shift_left (Int64.of_int p) (i * 7)))
    pieces;
  !acc

let embed_identifier line ident =
  let pieces = split7 ident in
  Array.mapi (fun i w -> Bits.insert w ~lo:52 ~hi:58 (Int64.of_int pieces.(i))) line

let extract_identifier line =
  join7 (Array.map (fun w -> Int64.to_int (Bits.extract w ~lo:52 ~hi:58)) line)

let strip_identifier line =
  Array.map (fun w -> Int64.logand w (Int64.lognot identifier_field_mask)) line

let pfn_out_of_bounds cfg pte =
  let max_pfn = Int64.shift_left 1L (cfg.phys_addr_bits - 12) in
  Int64.unsigned_compare (X86.pfn pte) max_pfn >= 0

let pp_table_iv cfg fmt () =
  let m = cfg.phys_addr_bits in
  Format.fprintf fmt
    "@[<v>Bits      Description                Protected?@,\
     8:0       Flags                      Yes (except accessed bit)@,\
     11:9      Programmable               Yes@,\
     %d:12     PFN                        Yes@,"
    (m - 1);
  if m < 40 then Format.fprintf fmt "39:%d     Ignored (Zeros)            -@," m;
  Format.fprintf fmt
    "51:40     MAC (1/8th portion)        -@,\
     58:52     Ignored (Zeros)            -@,\
     63:59     Prot. Keys / NX Flag       Yes@,\
     (protected bits per PTE: %d)@]"
    (protected_bits_per_pte cfg)

(** 64-byte cachelines as arrays of eight 64-bit words.

    A cacheline holds either eight PTEs (a "PTE line") or arbitrary data —
    PT-Guard cannot tell the difference except by bit pattern, which is the
    whole point of the opportunistic design. *)

type t = int64 array
(** Always length 8. Word [i] covers byte offsets [8i .. 8i+7]. *)

val words : int
(** 8. *)

val size_bytes : int
(** 64. *)

val create : unit -> t
(** All-zero line. *)

val copy : t -> t
val equal : t -> t -> bool
val is_zero : t -> bool

val of_words : int64 array -> t
(** Validates length 8 and copies. *)

val map : (int64 -> int64) -> t -> t

val hamming : t -> t -> int
(** Bit-level Hamming distance over all 512 bits. *)

val flip_bit : t -> int -> t
(** [flip_bit line i] flips bit [i] of the 512-bit line, [i] in [0, 511];
    bit [i] lives in word [i/64]. Returns a new line. *)

val get_bit : t -> int -> bool
val set_bit : t -> int -> bool -> t

val line_addr : int64 -> int64
(** [line_addr a] clears the low 6 bits: the line-aligned address of [a]. *)

val pp : Format.formatter -> t -> unit

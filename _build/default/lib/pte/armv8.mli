(** ARMv8 stage-1 page descriptor codec (paper Table II, ARM ARM D5).

    Included to demonstrate PT-Guard's ISA generality (Section IV-F: "the
    principles apply to ARMv8 or any other ISA"): ARMv8 also provisions a
    40-bit output address, leaving the same pooled headroom for a MAC. *)

type field =
  | Valid              (** bit 0 *)
  | Block              (** bit 1: table/page vs block descriptor *)
  | Memory_attributes  (** bits 5:2 (AttrIndx + NS) *)
  | Access_permissions (** bits 7:6 (AP[2:1]) *)
  | Accessed           (** bit 10 (AF) *)
  | Caching            (** bit 11 *)
  | Dirty              (** bit 51 (DBM) *)
  | Contiguous         (** bit 52 *)
  | Execute_never      (** bits 54:53 (PXN/UXN) *)

val get_valid : int64 -> bool
val set_valid : int64 -> bool -> int64
val get_block : int64 -> bool
val set_block : int64 -> bool -> int64
val memory_attributes : int64 -> int64
val set_memory_attributes : int64 -> int64 -> int64
val access_permissions : int64 -> int64
val set_access_permissions : int64 -> int64 -> int64
val get_accessed : int64 -> bool
val set_accessed : int64 -> bool -> int64
val get_contiguous : int64 -> bool
val set_contiguous : int64 -> bool -> int64
val execute_never : int64 -> int64
val set_execute_never : int64 -> int64 -> int64
val hardware_attributes : int64 -> int64
(** Bits 62:59. *)

val pfn : int64 -> int64
(** The 40-bit output frame number: PFN[37:0] at bits 49:12 and PFN[39:38]
    at bits 9:8 (Table II's split encoding). *)

val set_pfn : int64 -> int64 -> int64

val make : ?writable:bool -> ?user:bool -> ?execute_never:bool -> pfn:int64 -> unit -> int64
(** A valid page descriptor. [writable]/[user] map onto AP[2:1]. *)

val zero : int64
val is_zero : int64 -> bool
val pp : Format.formatter -> int64 -> unit

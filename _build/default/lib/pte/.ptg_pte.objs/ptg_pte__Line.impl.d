lib/pte/line.ml: Array Format Int64 Ptg_util

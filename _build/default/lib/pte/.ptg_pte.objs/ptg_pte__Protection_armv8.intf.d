lib/pte/protection_armv8.mli: Line Ptg_crypto

lib/pte/protection_armv8.ml: Array Bits Int64 List Ptg_crypto Ptg_util

lib/pte/x86.ml: Bits Format Int64 Ptg_util

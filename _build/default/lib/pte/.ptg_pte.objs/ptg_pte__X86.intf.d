lib/pte/x86.mli: Format

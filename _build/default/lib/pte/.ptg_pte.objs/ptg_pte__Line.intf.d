lib/pte/line.mli: Format

lib/pte/armv8.ml: Bits Format Int64 Ptg_util

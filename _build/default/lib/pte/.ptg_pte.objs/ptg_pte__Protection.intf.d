lib/pte/protection.mli: Format Line Ptg_crypto

lib/pte/armv8.mli: Format

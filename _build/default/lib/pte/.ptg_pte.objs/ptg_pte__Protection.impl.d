lib/pte/protection.ml: Array Bits Format Int64 Ptg_crypto Ptg_util X86

lib/core/config.mli: Format Layout Ptg_pte

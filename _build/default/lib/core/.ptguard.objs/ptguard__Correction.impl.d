lib/core/correction.ml: Array Bits Block128 Config Fun Int64 Layout List Mac Ptg_crypto Ptg_pte Ptg_util Qarma

lib/core/cost.ml: Config Format

lib/core/engine.ml: Array Config Correction Ctb Fun Int64 Layout List Mac Option Ptg_crypto Ptg_pte Ptg_util Qarma

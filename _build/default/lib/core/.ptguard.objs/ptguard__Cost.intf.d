lib/core/cost.mli: Config Format

lib/core/ctb.ml: Int64 List Ptg_pte

lib/core/engine.mli: Config Correction Ctb Ptg_crypto Ptg_pte Ptg_util

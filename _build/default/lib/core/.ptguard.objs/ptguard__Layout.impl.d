lib/core/layout.ml: Fun Int64 List Ptg_crypto Ptg_pte Ptg_util

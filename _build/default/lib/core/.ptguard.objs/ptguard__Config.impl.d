lib/core/config.ml: Format Layout Ptg_crypto Ptg_util

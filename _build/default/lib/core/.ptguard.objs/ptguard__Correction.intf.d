lib/core/correction.mli: Config Ptg_crypto Ptg_pte

lib/core/ctb.mli:

lib/core/layout.mli: Ptg_crypto Ptg_pte

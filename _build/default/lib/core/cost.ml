type t = {
  sram_key_bytes : int;
  sram_ctb_bytes : int;
  sram_identifier_bytes : int;
  sram_mac_zero_bytes : int;
  sram_total_bytes : int;
  dram_overhead_bytes : int;
  mac_gates : int;
  mac_area_mm2 : float;
  mac_energy_nj : float;
  mac_latency_ns : float;
}

let of_config (cfg : Config.t) =
  let sram_key_bytes = 32 in
  let sram_ctb_bytes = 5 * cfg.Config.ctb_entries in
  let sram_identifier_bytes, sram_mac_zero_bytes =
    match cfg.Config.design with
    | Config.Baseline -> (0, 0)
    | Config.Optimized -> (7, 12)
  in
  {
    sram_key_bytes;
    sram_ctb_bytes;
    sram_identifier_bytes;
    sram_mac_zero_bytes;
    sram_total_bytes =
      sram_key_bytes + sram_ctb_bytes + sram_identifier_bytes + sram_mac_zero_bytes;
    dram_overhead_bytes = 0;
    mac_gates = 280_000;
    mac_area_mm2 = 0.015;
    mac_energy_nj = 1.6;
    mac_latency_ns = 3.4;
  }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>SRAM: key %dB + CTB %dB + identifier %dB + MAC-zero %dB = %dB total@,\
     DRAM storage overhead: %dB@,\
     MAC circuit: ~%dK gates, %.3f mm^2 (7nm), %.1f nJ/op, %.1f ns latency@]"
    t.sram_key_bytes t.sram_ctb_bytes t.sram_identifier_bytes t.sram_mac_zero_bytes
    t.sram_total_bytes t.dram_overhead_bytes (t.mac_gates / 1000) t.mac_area_mm2
    t.mac_energy_nj t.mac_latency_ns

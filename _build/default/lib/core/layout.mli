(** ISA abstraction for the PT-Guard engine.

    Section IV-F: "Without loss of generality, we use x86_64 page table
    format for PT-Guard, but the principles apply to ARMv8 or any other
    ISA." This module is that claim made executable: everything the
    engine and the correction algorithm need to know about a page-table
    format is captured in {!S}, and both the x86-64 and ARMv8 layouts
    implement it — {!Ptguard.Engine} and {!Ptguard.Correction} work
    unchanged over either. *)

module type S = sig
  val name : string

  val phys_addr_bits : int
  (** M, the machine's physical address width. *)

  (** {2 Protection and spare-bit geometry} *)

  val protected_mask : int64
  (** Per-entry mask of MAC-protected bits. *)

  val mac_field_mask : int64
  (** Per-entry bits holding the 12-bit MAC slice (possibly scattered). *)

  val identifier_field_mask : int64
  val identifier_bits : int
  (** Total identifier width across the 8 entries (56 on x86, 32 on ARM). *)

  (** {2 Write-time pattern matches} *)

  val matches_basic_pattern : Ptg_pte.Line.t -> bool
  val matches_extended_pattern : Ptg_pte.Line.t -> bool

  (** {2 MAC / identifier embedding} *)

  val embed_mac : Ptg_pte.Line.t -> Ptg_crypto.Mac.t -> Ptg_pte.Line.t
  val extract_mac : Ptg_pte.Line.t -> Ptg_crypto.Mac.t
  val strip_mac : Ptg_pte.Line.t -> Ptg_pte.Line.t
  val masked_for_mac : Ptg_pte.Line.t -> Ptg_pte.Line.t
  val embed_identifier : Ptg_pte.Line.t -> int64 -> Ptg_pte.Line.t
  val extract_identifier : Ptg_pte.Line.t -> int64
  val strip_identifier : Ptg_pte.Line.t -> Ptg_pte.Line.t

  (** {2 What correction needs to guess} *)

  val pfn : int64 -> int64
  (** The entry's frame number as a value (handles split encodings). *)

  val set_pfn : int64 -> int64 -> int64

  val pfn_word_bits : int * int
  (** (lo, hi) word-bit range of the in-use PFN bits that flip-and-check
      and the top-bits majority vote operate on. *)

  val flag_bits : int list
  (** Protected non-PFN bit positions (the majority-vote targets). *)

  val pfn_out_of_bounds : int64 -> bool
  (** The OS-side bounds check of Section IV-E. *)
end

val x86 : ?phys_addr_bits:int -> unit -> (module S)
(** The paper's primary target (Tables I and IV). Default M = 40. *)

val armv8 : ?phys_addr_bits:int -> unit -> (module S)
(** The ARMv8 descriptor layout (Table II), MAC in the scattered unused
    PFN bits. Default M = 40. *)

val default : (module S)
(** [x86 ()]. *)

type design = Baseline | Optimized

type t = {
  design : design;
  mac_latency_cycles : int;
  mac_bits : int;
  soft_match_k : int;
  correction_enabled : bool;
  zero_pte_max_bits : int;
  layout : (module Layout.S);
  ctb_entries : int;
  qarma_rounds : int;
}

let baseline =
  {
    design = Baseline;
    mac_latency_cycles = 10;
    mac_bits = 96;
    soft_match_k = 4;
    correction_enabled = true;
    zero_pte_max_bits = 4;
    layout = Layout.default;
    ctb_entries = 4;
    qarma_rounds = Ptg_crypto.Qarma.default_rounds;
  }

let optimized = { baseline with design = Optimized }
let with_mac_latency t cycles = { t with mac_latency_cycles = cycles }
let with_correction t b = { t with correction_enabled = b }

let with_mac_bits t bits =
  if bits < 1 || bits > 96 then invalid_arg "Config.with_mac_bits";
  { t with mac_bits = bits }

let with_layout t layout = { t with layout }
let design_name = function Baseline -> "PT-Guard" | Optimized -> "Optimized PT-Guard"

let layout_name t =
  let module L = (val t.layout : Layout.S) in
  L.name

let protected_bits_per_pte t =
  let module L = (val t.layout : Layout.S) in
  Ptg_util.Bits.popcount L.protected_mask

let masked_for_mac t line =
  let module L = (val t.layout : Layout.S) in
  L.masked_for_mac line

let max_correction_guesses t = 1 + (8 * protected_bits_per_pte t) + 1 + 18

let sram_bytes t =
  let key = 32 in
  let ctb = 5 * t.ctb_entries in
  let opt =
    match t.design with
    | Baseline -> 0
    | Optimized ->
        let module L = (val t.layout : Layout.S) in
        ((L.identifier_bits + 7) / 8) + 12
  in
  key + ctb + opt

let pp fmt t =
  let module L = (val t.layout : Layout.S) in
  Format.fprintf fmt
    "@[<v>%s (%s): MAC %d bits at %d cycles, soft-match k=%d, correction %s,@ \
     M=%d phys bits, CTB %d entries, SRAM %d bytes, G_max %d@]"
    (design_name t.design) L.name t.mac_bits t.mac_latency_cycles t.soft_match_k
    (if t.correction_enabled then "on" else "off")
    L.phys_addr_bits t.ctb_entries (sram_bytes t) (max_correction_guesses t)

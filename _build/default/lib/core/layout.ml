module type S = sig
  val name : string
  val phys_addr_bits : int
  val protected_mask : int64
  val mac_field_mask : int64
  val identifier_field_mask : int64
  val identifier_bits : int
  val matches_basic_pattern : Ptg_pte.Line.t -> bool
  val matches_extended_pattern : Ptg_pte.Line.t -> bool
  val embed_mac : Ptg_pte.Line.t -> Ptg_crypto.Mac.t -> Ptg_pte.Line.t
  val extract_mac : Ptg_pte.Line.t -> Ptg_crypto.Mac.t
  val strip_mac : Ptg_pte.Line.t -> Ptg_pte.Line.t
  val masked_for_mac : Ptg_pte.Line.t -> Ptg_pte.Line.t
  val embed_identifier : Ptg_pte.Line.t -> int64 -> Ptg_pte.Line.t
  val extract_identifier : Ptg_pte.Line.t -> int64
  val strip_identifier : Ptg_pte.Line.t -> Ptg_pte.Line.t
  val pfn : int64 -> int64
  val set_pfn : int64 -> int64 -> int64
  val pfn_word_bits : int * int
  val flag_bits : int list
  val pfn_out_of_bounds : int64 -> bool
end

let bits_of_mask mask =
  List.filter (fun b -> Ptg_util.Bits.get mask b) (List.init 64 Fun.id)

let x86 ?(phys_addr_bits = 40) () : (module S) =
  let cfg = Ptg_pte.Protection.make ~phys_addr_bits in
  let module L = struct
    let name = "x86_64"
    let phys_addr_bits = phys_addr_bits
    let protected_mask = Ptg_pte.Protection.protected_mask cfg
    let mac_field_mask = Ptg_pte.Protection.mac_field_mask
    let identifier_field_mask = Ptg_pte.Protection.identifier_field_mask
    let identifier_bits = 56
    let matches_basic_pattern = Ptg_pte.Protection.matches_basic_pattern cfg
    let matches_extended_pattern = Ptg_pte.Protection.matches_extended_pattern cfg
    let embed_mac = Ptg_pte.Protection.embed_mac
    let extract_mac = Ptg_pte.Protection.extract_mac
    let strip_mac = Ptg_pte.Protection.strip_mac
    let masked_for_mac = Ptg_pte.Protection.masked_for_mac cfg
    let embed_identifier = Ptg_pte.Protection.embed_identifier
    let extract_identifier = Ptg_pte.Protection.extract_identifier
    let strip_identifier = Ptg_pte.Protection.strip_identifier
    let pfn = Ptg_pte.X86.pfn
    let set_pfn = Ptg_pte.X86.set_pfn
    let pfn_word_bits = (12, phys_addr_bits - 1)

    let flag_bits =
      let lo, hi = pfn_word_bits in
      List.filter (fun b -> not (b >= lo && b <= hi)) (bits_of_mask protected_mask)

    let pfn_out_of_bounds = Ptg_pte.Protection.pfn_out_of_bounds cfg
  end in
  (module L)

let armv8 ?(phys_addr_bits = 40) () : (module S) =
  let cfg = Ptg_pte.Protection_armv8.make ~phys_addr_bits in
  let module L = struct
    let name = "armv8"
    let phys_addr_bits = phys_addr_bits
    let protected_mask = Ptg_pte.Protection_armv8.protected_mask cfg
    let mac_field_mask = Ptg_pte.Protection_armv8.mac_field_mask
    let identifier_field_mask = Ptg_pte.Protection_armv8.identifier_field_mask
    let identifier_bits = 32
    let matches_basic_pattern = Ptg_pte.Protection_armv8.matches_basic_pattern cfg
    let matches_extended_pattern = Ptg_pte.Protection_armv8.matches_extended_pattern cfg
    let embed_mac = Ptg_pte.Protection_armv8.embed_mac
    let extract_mac = Ptg_pte.Protection_armv8.extract_mac
    let strip_mac = Ptg_pte.Protection_armv8.strip_mac
    let masked_for_mac = Ptg_pte.Protection_armv8.masked_for_mac cfg
    let embed_identifier = Ptg_pte.Protection_armv8.embed_identifier
    let extract_identifier = Ptg_pte.Protection_armv8.extract_identifier
    let strip_identifier = Ptg_pte.Protection_armv8.strip_identifier
    let pfn = Ptg_pte.Armv8.pfn
    let set_pfn = Ptg_pte.Armv8.set_pfn

    (* In-use PFN bits are contiguous word bits 12..M-1 on ARM too (the
       split PFN[39:38] portion at 9:8 is zero below 1 TB). *)
    let pfn_word_bits = (12, phys_addr_bits - 1)

    let flag_bits =
      let lo, hi = pfn_word_bits in
      List.filter (fun b -> not (b >= lo && b <= hi)) (bits_of_mask protected_mask)

    let pfn_out_of_bounds entry =
      let max_pfn = Int64.shift_left 1L (phys_addr_bits - 12) in
      Int64.unsigned_compare (Ptg_pte.Armv8.pfn entry) max_pfn >= 0
  end in
  (module L)

let default = x86 ()

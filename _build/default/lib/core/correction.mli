(** Best-effort correction of faulty PTE cachelines (paper Section VI).

    On an integrity failure during a page-table walk, the hardware guesses
    candidate values for the PTE cacheline and accepts the first whose MAC
    {e soft-matches} (Hamming distance <= k) the stored MAC — a strong MAC
    makes an incorrect accepted guess as unlikely as a MAC collision. The
    guess sequence exploits the value locality measured on real systems
    (Section VI-B / our {!Ptg_vm.Profile}):

    + soft MAC match of the line as-is (faults confined to the MAC bits);
    + flip-and-check of every protected bit;
    + reset of almost-zero PTEs (<= 4 set bits) to zero;
    + bitwise majority vote of the flags across non-zero PTEs;
    + majority vote of the top PFN bits + contiguity reconstruction of the
      low 8 PFN bits from each of 8 base choices;
    + strategies 4 and 5 combined.

    Total G_max = 372 guesses at M = 40. *)

type step =
  | Soft_mac_match      (** step 1 *)
  | Flip_and_check      (** step 2 *)
  | Zero_pte_reset      (** step 3 *)
  | Flag_majority       (** step 4 *)
  | Pfn_contiguity      (** step 5 *)
  | Flags_and_pfn       (** steps 4+5 combined *)

val step_name : step -> string

type outcome =
  | Corrected of { line : Ptg_pte.Line.t; step : step; guesses : int }
      (** [line] is the full corrected stored line (MAC still embedded);
          [guesses] counts MAC checks performed including the successful
          one. *)
  | Uncorrectable of { guesses : int }

type strategy_mask = {
  use_soft_mac : bool;
  use_flip_and_check : bool;
  use_zero_reset : bool;
  use_flag_vote : bool;
  use_pfn_contiguity : bool;
}

val all_strategies : strategy_mask
val no_strategies : strategy_mask

val correct :
  ?strategies:strategy_mask ->
  ?mac_zero:Ptg_crypto.Mac.t ->
  Config.t ->
  Ptg_crypto.Qarma.key ->
  addr:int64 ->
  Ptg_pte.Line.t ->
  outcome
(** [correct config key ~addr faulty] runs the guess sequence against the
    stored (possibly faulty) MAC embedded in [faulty]. The [strategies]
    mask supports the ablation study (default: all enabled). [mac_zero]
    is the Optimized design's address-free MAC-zero constant: when given,
    all-zero candidates are checked against it, mirroring the write path
    (Section V-B). *)

val verify_only :
  Config.t -> Ptg_crypto.Qarma.key -> addr:int64 -> Ptg_pte.Line.t -> bool
(** Exact-match integrity check (no soft matching, no guessing): does the
    embedded MAC equal the MAC recomputed over the protected bits? *)

(** Hardware cost accounting (paper Section V-E and IV-F).

    PT-Guard's selling point is near-zero cost: no DRAM storage, tens of
    bytes of SRAM, and a MAC circuit of a few hundred thousand gates. This
    module renders the paper's cost table for a given configuration. *)

type t = {
  sram_key_bytes : int;          (** 32 B QARMA-256 key *)
  sram_ctb_bytes : int;          (** 5 B per CTB entry *)
  sram_identifier_bytes : int;   (** 7 B, Optimized only *)
  sram_mac_zero_bytes : int;     (** 12 B, Optimized only *)
  sram_total_bytes : int;
  dram_overhead_bytes : int;     (** always 0 — the headline claim *)
  mac_gates : int;               (** ~280K (4 pipelined QARMA encryptors) *)
  mac_area_mm2 : float;          (** ~0.015 mm^2 at 7 nm *)
  mac_energy_nj : float;         (** ~1.6 nJ per computation at 15 nm *)
  mac_latency_ns : float;        (** 3.4 ns (18-round QARMA-128 at 7 nm) *)
}

val of_config : Config.t -> t
val pp : Format.formatter -> t -> unit

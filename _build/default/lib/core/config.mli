(** PT-Guard configuration.

    Two designs from the paper:
    - [Baseline] (Section IV): MAC embedded on the 96-bit zero pattern;
      every DRAM read pays the MAC-computation latency.
    - [Optimized] (Section V): the extended 152-bit pattern additionally
      plants an identifier in the OS-ignored PTE bits, so regular reads
      skip the MAC unless the identifier is present; all-zero lines use a
      pre-computed MAC-zero.

    The page-table format itself is abstracted behind {!Layout.S}: the
    default configurations target x86-64 (Tables I/IV), and
    {!with_layout} retargets the same engine at ARMv8 or any other ISA —
    the Section IV-F generality claim, executable. *)

type design = Baseline | Optimized

type t = {
  design : design;
  mac_latency_cycles : int;   (** MAC computation delay (paper default: 10) *)
  mac_bits : int;             (** 96 default; 64 for the Section VII-A ablation *)
  soft_match_k : int;         (** MAC fault tolerance for correction (paper: 4) *)
  correction_enabled : bool;
  zero_pte_max_bits : int;    (** "almost-zero" threshold for guess strategy 1 (paper: 4) *)
  layout : (module Layout.S); (** page-table format (default: x86-64 at M = 40) *)
  ctb_entries : int;          (** collision tracking buffer capacity (paper: 4) *)
  qarma_rounds : int;
}

val baseline : t
(** Section IV design, correction enabled, x86-64 at M = 40, 10-cycle MAC. *)

val optimized : t
(** Section V design (identifier + MAC-zero optimizations). *)

val with_mac_latency : t -> int -> t
val with_correction : t -> bool -> t
val with_mac_bits : t -> int -> t

val with_layout : t -> (module Layout.S) -> t
(** Retarget the engine at another page-table format (e.g.
    [Layout.armv8 ()]). *)

val design_name : design -> string
val layout_name : t -> string

val protected_bits_per_pte : t -> int
val masked_for_mac : t -> Ptg_pte.Line.t -> Ptg_pte.Line.t
(** Convenience accessors through the configured layout. *)

val max_correction_guesses : t -> int
(** G_max of Section VI-D: 1 (soft MAC) + 8*protected-bits (flip&check) +
    1 (zero reset) + 18 (flag vote x PFN contiguity) = 372 for x86 at
    M = 40. *)

val sram_bytes : t -> int
(** SRAM cost per Section V-E: 32 B key + 5 B/CTB entry, plus identifier
    and 12 B MAC-zero for [Optimized] — 52 B / 71 B at the paper's
    parameters. *)

val pp : Format.formatter -> t -> unit

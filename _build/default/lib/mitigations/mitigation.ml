type t = {
  name : string;
  mutable refreshes : int;
  mutable active : bool;
}

let name t = t.name
let refreshes_issued t = t.refreshes
let detach t = t.active <- false

let refresh_neighbors t dram ~channel ~bank ~row =
  let geometry = Ptg_dram.Dram.geometry dram in
  List.iter
    (fun r ->
      Ptg_dram.Dram.refresh_row dram ~channel ~bank ~row:r;
      t.refreshes <- t.refreshes + 1)
    (Ptg_dram.Geometry.row_neighbors geometry row ~distance:1)

(* --- TRR ------------------------------------------------------------- *)

type trr_entry = { row : int; mutable count : int; inserted_at : int }

type trr_bank = {
  mutable entries : trr_entry list; (* newest first, length <= sampler_size *)
  mutable acts_since_ref : int;
  mutable acts_total : int;
}

let attach_trr ?(sampler_size = 4) ?(ref_interval_acts = 166) ?(sample_window = 8) dram =
  if sampler_size < 1 then invalid_arg "Mitigation.attach_trr: sampler_size";
  let t = { name = "TRR"; refreshes = 0; active = true } in
  let banks : (int * int, trr_bank) Hashtbl.t = Hashtbl.create 32 in
  let bank_state channel bank =
    let key = (channel, bank) in
    match Hashtbl.find_opt banks key with
    | Some b -> b
    | None ->
        let b = { entries = []; acts_since_ref = 0; acts_total = 0 } in
        Hashtbl.replace banks key b;
        b
  in
  Ptg_dram.Dram.on_activate dram (fun c ->
      if t.active then begin
        let channel = c.Ptg_dram.Geometry.channel
        and bank = c.Ptg_dram.Geometry.bank
        and row = c.Ptg_dram.Geometry.row in
        let b = bank_state channel bank in
        b.acts_total <- b.acts_total + 1;
        if b.acts_since_ref < sample_window then begin
        (match List.find_opt (fun e -> e.row = row) b.entries with
        | Some e -> e.count <- e.count + 1
        | None ->
            let entry = { row; count = 1; inserted_at = b.acts_total } in
            if List.length b.entries < sampler_size then
              b.entries <- entry :: b.entries
            else begin
              (* Sampler full: evict the oldest entry, losing its history.
                 With more distinct aggressors than sampler entries, no row
                 ever accumulates a meaningful count. *)
              let oldest =
                List.fold_left
                  (fun acc e -> if e.inserted_at < acc.inserted_at then e else acc)
                  (List.hd b.entries) b.entries
              in
              b.entries <-
                entry :: List.filter (fun e -> e != oldest) b.entries
            end)
        end;
        b.acts_since_ref <- b.acts_since_ref + 1;
        if b.acts_since_ref >= ref_interval_acts then begin
          b.acts_since_ref <- 0;
          (* REF-time mitigation: refresh neighbours of the hottest entry. *)
          match b.entries with
          | [] -> ()
          | e :: rest ->
              let hottest =
                List.fold_left (fun acc e -> if e.count > acc.count then e else acc) e rest
              in
              b.entries <- List.filter (fun e -> e != hottest) b.entries;
              refresh_neighbors t dram ~channel ~bank ~row:hottest.row
        end
      end);
  t

(* --- PARA ------------------------------------------------------------ *)

let attach_para ?(p = 0.001) ~rng dram =
  if p < 0.0 || p > 1.0 then invalid_arg "Mitigation.attach_para: p";
  let t = { name = "PARA"; refreshes = 0; active = true } in
  let geometry = Ptg_dram.Dram.geometry dram in
  Ptg_dram.Dram.on_activate dram (fun c ->
      if t.active then
        List.iter
          (fun r ->
            if Ptg_util.Rng.bernoulli rng p then begin
              Ptg_dram.Dram.refresh_row dram ~channel:c.Ptg_dram.Geometry.channel
                ~bank:c.Ptg_dram.Geometry.bank ~row:r;
              t.refreshes <- t.refreshes + 1
            end)
          (Ptg_dram.Geometry.row_neighbors geometry c.Ptg_dram.Geometry.row
             ~distance:1));
  t

(* --- Graphene -------------------------------------------------------- *)

type graphene_bank = {
  counts : (int, int) Hashtbl.t; (* Misra-Gries estimated counts *)
  mutable spillover : int;
}

let attach_graphene ?(counters = 128) ?(threshold = 2500) dram =
  if counters < 1 || threshold < 1 then invalid_arg "Mitigation.attach_graphene";
  let t = { name = "Graphene"; refreshes = 0; active = true } in
  let banks : (int * int, graphene_bank) Hashtbl.t = Hashtbl.create 32 in
  let bank_state channel bank =
    let key = (channel, bank) in
    match Hashtbl.find_opt banks key with
    | Some b -> b
    | None ->
        let b = { counts = Hashtbl.create counters; spillover = 0 } in
        Hashtbl.replace banks key b;
        b
  in
  Ptg_dram.Dram.on_activate dram (fun c ->
      if t.active then begin
        let channel = c.Ptg_dram.Geometry.channel
        and bank = c.Ptg_dram.Geometry.bank
        and row = c.Ptg_dram.Geometry.row in
        let b = bank_state channel bank in
        (match Hashtbl.find_opt b.counts row with
        | Some n -> Hashtbl.replace b.counts row (n + 1)
        | None ->
            if Hashtbl.length b.counts < counters then Hashtbl.replace b.counts row 1
            else begin
              (* Misra-Gries decrement step: no entry is ever silently
                 undercounted by more than the spillover. *)
              b.spillover <- b.spillover + 1;
              let doomed =
                Hashtbl.fold
                  (fun r n acc -> if n <= 1 then r :: acc else acc)
                  b.counts []
              in
              if doomed = [] then begin
                let all = Hashtbl.fold (fun r n acc -> (r, n) :: acc) b.counts [] in
                List.iter (fun (r, n) -> Hashtbl.replace b.counts r (n - 1)) all
              end
              else List.iter (Hashtbl.remove b.counts) doomed;
              Hashtbl.replace b.counts row 1
            end);
        match Hashtbl.find_opt b.counts row with
        | Some n when n >= threshold ->
            Hashtbl.replace b.counts row 0;
            refresh_neighbors t dram ~channel ~bank ~row
        | _ -> ()
      end);
  t

(* --- SoftTRR ---------------------------------------------------------- *)

let attach_soft_trr ?(threshold = 2500) ~pt_row dram =
  if threshold < 1 then invalid_arg "Mitigation.attach_soft_trr: threshold";
  let t = { name = "SoftTRR"; refreshes = 0; active = true } in
  let geometry = Ptg_dram.Dram.geometry dram in
  (* aggressor (channel, bank, row) -> activations seen since the guarded
     PT row was last refreshed *)
  let counts : (int * int * int, int) Hashtbl.t = Hashtbl.create 64 in
  Ptg_dram.Dram.on_activate dram (fun c ->
      if t.active then begin
        let channel = c.Ptg_dram.Geometry.channel
        and bank = c.Ptg_dram.Geometry.bank
        and row = c.Ptg_dram.Geometry.row in
        (* Software visibility: only the attacker's activations adjacent
           to a page-table row register. *)
        let guarded_neighbors =
          List.filter
            (fun r -> pt_row ~channel ~bank ~row:r)
            (Ptg_dram.Geometry.row_neighbors geometry row ~distance:1)
        in
        if guarded_neighbors <> [] then begin
          let key = (channel, bank, row) in
          let n = 1 + Option.value ~default:0 (Hashtbl.find_opt counts key) in
          if n >= threshold then begin
            Hashtbl.remove counts key;
            (* Refresh the page-table rows this aggressor endangers (a
               kernel read of the PT page re-writes the row). *)
            List.iter
              (fun r ->
                Ptg_dram.Dram.refresh_row dram ~channel ~bank ~row:r;
                t.refreshes <- t.refreshes + 1)
              guarded_neighbors
          end
          else Hashtbl.replace counts key n
        end
      end);
  t

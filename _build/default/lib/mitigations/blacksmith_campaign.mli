(** The Blacksmith fuzzing loop (Jattke et al., S&P 2022), run against the
    in-DRAM TRR model.

    Blacksmith's result was empirical: fuzzing non-uniform
    frequency/phase/amplitude patterns finds bit flips on every
    TRR-protected DDR4 DIMM tested, without reverse-engineering the
    mitigation. The campaign here reproduces the loop: random pattern ->
    fresh TRR-protected module -> hammer -> keep if it flips. With enough
    tries some phase structures keep the true aggressors out of the
    sampler's post-REF observation window, and the victim crosses RTH
    unnoticed. *)

type result = {
  tries : int;
  effective_patterns : int;  (** patterns that flipped >= 1 victim bit *)
  total_flips : int;
  best_flips : int;
  best : Ptg_rowhammer.Blacksmith.pattern option;
}

val campaign :
  ?tries:int ->
  ?slots:int ->
  ?rth:int ->
  rng:Ptg_util.Rng.t ->
  victim:int ->
  unit ->
  result
(** Defaults: 40 tries of 600K activation slots against an RTH-10K module
    with TRR attached and all-ones (true-cell) data planted in the victim
    row. *)

val pp : Format.formatter -> result -> unit

lib/mitigations/mitigation.mli: Ptg_dram Ptg_util

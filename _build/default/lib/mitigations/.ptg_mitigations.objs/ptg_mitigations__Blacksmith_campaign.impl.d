lib/mitigations/blacksmith_campaign.ml: Array Blacksmith Fault_model Format List Mitigation Ptg_dram Ptg_rowhammer Ptg_util

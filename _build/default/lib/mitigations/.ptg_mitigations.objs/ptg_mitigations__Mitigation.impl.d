lib/mitigations/mitigation.ml: Hashtbl List Option Ptg_dram Ptg_util

lib/mitigations/blacksmith_campaign.mli: Format Ptg_rowhammer Ptg_util

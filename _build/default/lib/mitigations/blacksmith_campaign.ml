open Ptg_rowhammer

type result = {
  tries : int;
  effective_patterns : int;
  total_flips : int;
  best_flips : int;
  best : Blacksmith.pattern option;
}

let try_pattern ~slots ~rth ~rng ~victim pattern =
  let dram = Ptg_dram.Dram.create () in
  let config =
    { Fault_model.ddr4 with
      Fault_model.rth;
      orientation = Fault_model.All_true;
      p_flip = 0.02 }
  in
  let fault = Fault_model.attach ~config ~rng dram in
  let _trr = Mitigation.attach_trr dram in
  let geometry = Ptg_dram.Dram.geometry dram in
  let c = Ptg_dram.Geometry.decode geometry 0L in
  Ptg_dram.Dram.write_line dram
    (Ptg_dram.Geometry.encode geometry { c with Ptg_dram.Geometry.row = victim })
    (Array.make 8 (-1L));
  ignore
    (Blacksmith.run dram ~channel:c.Ptg_dram.Geometry.channel
       ~bank:c.Ptg_dram.Geometry.bank pattern ~slots ~start_time:0);
  List.length
    (List.filter (fun f -> f.Fault_model.row = victim) (Fault_model.flips fault))

let campaign ?(tries = 40) ?(slots = 600_000) ?(rth = 10_000) ~rng ~victim () =
  let effective = ref 0 and total = ref 0 and best_flips = ref 0 in
  let best = ref None in
  for _ = 1 to tries do
    let pattern =
      Blacksmith.random_pattern rng ~victim ~decoys:(2 + Ptg_util.Rng.int rng 6)
    in
    let flips = try_pattern ~slots ~rth ~rng:(Ptg_util.Rng.split rng) ~victim pattern in
    total := !total + flips;
    if flips > 0 then incr effective;
    if flips > !best_flips then begin
      best_flips := flips;
      best := Some pattern
    end
  done;
  {
    tries;
    effective_patterns = !effective;
    total_flips = !total;
    best_flips = !best_flips;
    best = !best;
  }

let pp fmt r =
  Format.fprintf fmt
    "@[<v>fuzzed %d patterns against TRR: %d effective, %d total flips, best %d@,"
    r.tries r.effective_patterns r.total_flips r.best_flips;
  (match r.best with
  | Some p -> Format.fprintf fmt "best pattern: %a@]" Blacksmith.pp_pattern p
  | None -> Format.fprintf fmt "no effective pattern found@]")

let bit i =
  if i < 0 || i > 63 then invalid_arg "Bits.bit";
  Int64.shift_left 1L i

let get w i = Int64.logand (Int64.shift_right_logical w i) 1L = 1L
let set w i = Int64.logor w (bit i)
let clear w i = Int64.logand w (Int64.lognot (bit i))
let flip w i = Int64.logxor w (bit i)
let assign w i b = if b then set w i else clear w i

let mask n =
  if n < 0 || n > 64 then invalid_arg "Bits.mask";
  if n = 64 then -1L else Int64.sub (Int64.shift_left 1L n) 1L

let field_mask ~lo ~hi =
  if lo < 0 || hi > 63 || lo > hi then invalid_arg "Bits.field_mask";
  Int64.shift_left (mask (hi - lo + 1)) lo

let extract w ~lo ~hi =
  Int64.logand (Int64.shift_right_logical w lo) (mask (hi - lo + 1))

let insert w ~lo ~hi v =
  let m = field_mask ~lo ~hi in
  Int64.logor
    (Int64.logand w (Int64.lognot m))
    (Int64.logand (Int64.shift_left v lo) m)

let popcount w =
  (* SWAR popcount: classic bit-twiddling, avoids a 64-iteration loop. *)
  let open Int64 in
  let w = sub w (logand (shift_right_logical w 1) 0x5555555555555555L) in
  let w =
    add
      (logand w 0x3333333333333333L)
      (logand (shift_right_logical w 2) 0x3333333333333333L)
  in
  let w = logand (add w (shift_right_logical w 4)) 0x0F0F0F0F0F0F0F0FL in
  to_int (shift_right_logical (mul w 0x0101010101010101L) 56)

let hamming a b = popcount (Int64.logxor a b)
let parity w = popcount w land 1 = 1

let rotl w n =
  let n = n land 63 in
  if n = 0 then w
  else Int64.logor (Int64.shift_left w n) (Int64.shift_right_logical w (64 - n))

let rotr w n = rotl w (64 - (n land 63))

let rotl8 x n =
  let n = n land 7 in
  let x = x land 0xff in
  if n = 0 then x else ((x lsl n) lor (x lsr (8 - n))) land 0xff

let bytes_of_int64_le w =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 w;
  b

let int64_of_bytes_le b ~off = Bytes.get_int64_le b off
let to_hex w = Printf.sprintf "%016Lx" w
let pp_hex fmt w = Format.fprintf fmt "0x%s" (to_hex w)

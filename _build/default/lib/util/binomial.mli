(** Log-space binomial arithmetic for the security analysis.

    The paper's Equations (1) and (2) involve terms like [C(96, h)] and
    binomial tails with [n = 96]; these overflow naive integer arithmetic and
    underflow naive floats, so everything is computed in log space. *)

val log_factorial : int -> float
(** Natural log of [n!], via Lanczos-free lgamma summation (exact
    accumulation for the small [n] used here). *)

val log_choose : int -> int -> float
(** [log_choose n k] = ln C(n,k); [neg_infinity] when [k < 0 || k > n]. *)

val choose_float : int -> int -> float
(** C(n,k) as a float (may be inf for huge n). *)

val log2_sum_choose : int -> int -> float
(** [log2_sum_choose n k] = log2 (sum_{h=0..k} C(n,h)), computed stably.
    This is the Hamming-ball volume term of Equation (1). *)

val pmf : n:int -> p:float -> int -> float
(** Binomial probability mass: P[X = k] for X ~ B(n, p). *)

val tail_ge : n:int -> p:float -> int -> float
(** [tail_ge ~n ~p k] = P[X >= k] for X ~ B(n, p): Equation (2)'s
    uncorrectable-MAC probability uses [tail_ge ~n:96 ~p:p_flip (k+1)]. *)

val log2 : float -> float
(** Base-2 logarithm. *)

type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ?(align = []) ~header rows =
  let ncols = List.length header in
  List.iteri
    (fun i row ->
      if List.length row <> ncols then
        invalid_arg
          (Printf.sprintf "Table.render: row %d has %d cells, expected %d" i
             (List.length row) ncols))
    rows;
  let aligns =
    Array.init ncols (fun i ->
        match List.nth_opt align i with Some a -> a | None -> Left)
  in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure header;
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  let sep () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line row =
    Buffer.add_char buf '|';
    List.iteri
      (fun i cell ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad aligns.(i) widths.(i) cell);
        Buffer.add_string buf " |")
      row;
    Buffer.add_char buf '\n'
  in
  sep ();
  line header;
  sep ();
  List.iter line rows;
  sep ();
  Buffer.contents buf

let print ?align ~header rows = print_string (render ?align ~header rows)

let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let csv ~header rows =
  let buf = Buffer.create 1024 in
  let line row =
    Buffer.add_string buf (String.concat "," (List.map csv_field row));
    Buffer.add_char buf '\n'
  in
  line header;
  List.iter line rows;
  Buffer.contents buf

let save_csv ~path ~header rows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (csv ~header rows))

let fpct x = Printf.sprintf "%.2f%%" x
let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x

(** 64-bit bit-manipulation primitives.

    All functions operate on [int64] values interpreted as unsigned 64-bit
    words. Bit positions are numbered 0 (least significant) to 63. These are
    the workhorse operations for PTE field extraction, MAC embedding, and
    fault injection throughout the code base. *)

val bit : int -> int64
(** [bit i] is the word with only bit [i] set. Requires [0 <= i < 64]. *)

val get : int64 -> int -> bool
(** [get w i] is the value of bit [i] of [w]. *)

val set : int64 -> int -> int64
(** [set w i] is [w] with bit [i] set to 1. *)

val clear : int64 -> int -> int64
(** [clear w i] is [w] with bit [i] set to 0. *)

val flip : int64 -> int -> int64
(** [flip w i] is [w] with bit [i] inverted. *)

val assign : int64 -> int -> bool -> int64
(** [assign w i b] is [w] with bit [i] set to [b]. *)

val mask : int -> int64
(** [mask n] is a word with the [n] least-significant bits set.
    Requires [0 <= n <= 64]; [mask 64] is all-ones. *)

val field_mask : lo:int -> hi:int -> int64
(** [field_mask ~lo ~hi] has bits [lo..hi] (inclusive) set.
    Requires [0 <= lo <= hi < 64]. *)

val extract : int64 -> lo:int -> hi:int -> int64
(** [extract w ~lo ~hi] is the value of bits [lo..hi] of [w], shifted down
    so the field's bit [lo] becomes bit 0 of the result. *)

val insert : int64 -> lo:int -> hi:int -> int64 -> int64
(** [insert w ~lo ~hi v] replaces bits [lo..hi] of [w] with the low bits
    of [v]. Bits of [v] above the field width are ignored. *)

val popcount : int64 -> int
(** Number of set bits. *)

val hamming : int64 -> int64 -> int
(** [hamming a b] is the Hamming distance between [a] and [b]. *)

val parity : int64 -> bool
(** [parity w] is [true] when [w] has an odd number of set bits. *)

val rotl : int64 -> int -> int64
(** Rotate left by [n] (mod 64). *)

val rotr : int64 -> int -> int64
(** Rotate right by [n] (mod 64). *)

val rotl8 : int -> int -> int
(** [rotl8 x n] rotates the 8-bit value [x] left by [n] (mod 8); the result
    is again within [0, 255]. Used by the QARMA cell diffusion matrix. *)

val bytes_of_int64_le : int64 -> bytes
(** Little-endian 8-byte encoding. *)

val int64_of_bytes_le : bytes -> off:int -> int64
(** Little-endian decoding of 8 bytes starting at [off]. *)

val to_hex : int64 -> string
(** 16-digit lowercase hexadecimal rendering (no 0x prefix). *)

val pp_hex : Format.formatter -> int64 -> unit
(** Formatter version of {!to_hex}, prefixed with [0x]. *)

let log_factorial =
  (* Memoized exact summation; n stays small (<= a few thousand) here. *)
  let cache = ref [| 0.0 |] in
  fun n ->
    if n < 0 then invalid_arg "Binomial.log_factorial";
    let c = !cache in
    if n < Array.length c then c.(n)
    else begin
      let len = max (n + 1) (2 * Array.length c) in
      let c' = Array.make len 0.0 in
      Array.blit c 0 c' 0 (Array.length c);
      for i = Array.length c to len - 1 do
        c'.(i) <- c'.(i - 1) +. log (float_of_int i)
      done;
      cache := c';
      c'.(n)
    end

let log_choose n k =
  if k < 0 || k > n then neg_infinity
  else log_factorial n -. log_factorial k -. log_factorial (n - k)

let choose_float n k = exp (log_choose n k)
let log2 x = log x /. log 2.0

let log2_sum_choose n k =
  if k < 0 then neg_infinity
  else begin
    (* Sum in log space anchored at the largest term for stability. *)
    let k = min k n in
    let logs = Array.init (k + 1) (fun h -> log_choose n h) in
    let m = Array.fold_left Float.max neg_infinity logs in
    let s = Array.fold_left (fun acc l -> acc +. exp (l -. m)) 0.0 logs in
    (m +. log s) /. log 2.0
  end

let pmf ~n ~p k =
  if k < 0 || k > n then 0.0
  else if p <= 0.0 then if k = 0 then 1.0 else 0.0
  else if p >= 1.0 then if k = n then 1.0 else 0.0
  else
    exp
      (log_choose n k
      +. (float_of_int k *. log p)
      +. (float_of_int (n - k) *. log (1.0 -. p)))

let tail_ge ~n ~p k =
  if k <= 0 then 1.0
  else if k > n then 0.0
  else begin
    let acc = ref 0.0 in
    for i = k to n do
      acc := !acc +. pmf ~n ~p i
    done;
    Float.min 1.0 !acc
  end

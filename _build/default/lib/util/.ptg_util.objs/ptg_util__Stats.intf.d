lib/util/stats.mli:

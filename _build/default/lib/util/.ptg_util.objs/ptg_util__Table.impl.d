lib/util/table.ml: Array Buffer Fun List Printf String

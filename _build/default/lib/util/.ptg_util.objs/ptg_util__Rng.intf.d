lib/util/rng.mli:

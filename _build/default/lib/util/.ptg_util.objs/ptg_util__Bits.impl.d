lib/util/bits.ml: Bytes Format Int64 Printf

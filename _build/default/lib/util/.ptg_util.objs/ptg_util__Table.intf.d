lib/util/table.mli:

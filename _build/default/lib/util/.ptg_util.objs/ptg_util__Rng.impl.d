lib/util/rng.ml: Array Bits Float Int64

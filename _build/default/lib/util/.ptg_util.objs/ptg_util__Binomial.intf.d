lib/util/binomial.mli:

open Ptg_crypto

let block =
  Alcotest.testable
    (fun fmt b -> Block128.pp fmt b)
    Block128.equal

let test_basics () =
  Alcotest.check block "xor self is zero" Block128.zero
    (Block128.logxor
       (Block128.make ~hi:0xAAL ~lo:0xBBL)
       (Block128.make ~hi:0xAAL ~lo:0xBBL));
  Alcotest.(check bool) "equal" true
    (Block128.equal (Block128.of_int64 5L) (Block128.make ~hi:0L ~lo:5L));
  Alcotest.(check int) "compare orders by hi" (-1)
    (Block128.compare (Block128.make ~hi:1L ~lo:0L) (Block128.make ~hi:2L ~lo:0L))

let test_popcount_hamming () =
  Alcotest.(check int) "popcount" 128 (Block128.popcount (Block128.lognot Block128.zero));
  Alcotest.(check int) "hamming one bit" 1
    (Block128.hamming Block128.zero (Block128.of_int64 0x10L));
  Alcotest.(check int) "hamming across halves" 2
    (Block128.hamming Block128.zero (Block128.make ~hi:1L ~lo:1L))

let test_rotr1 () =
  (* bit 0 of lo wraps to bit 63 of hi *)
  Alcotest.check block "lo bit0 -> hi bit63"
    (Block128.make ~hi:Int64.min_int ~lo:0L)
    (Block128.rotr1 (Block128.of_int64 1L));
  (* bit 0 of hi moves to bit 63 of lo *)
  Alcotest.check block "hi bit0 -> lo bit63"
    (Block128.make ~hi:0L ~lo:Int64.min_int)
    (Block128.rotr1 (Block128.make ~hi:1L ~lo:0L))

let test_shift_right_127 () =
  Alcotest.check block "top bit isolated" (Block128.of_int64 1L)
    (Block128.shift_right_127 (Block128.make ~hi:Int64.min_int ~lo:0L));
  Alcotest.check block "zero otherwise" Block128.zero
    (Block128.shift_right_127 (Block128.make ~hi:0x7FFFFFFFFFFFFFFFL ~lo:(-1L)))

let test_cells () =
  let b = Block128.make ~hi:0x0011223344556677L ~lo:0x8899AABBCCDDEEFFL in
  let cells = Block128.to_cells b in
  Alcotest.(check int) "cell 0 is MSB of hi" 0x00 cells.(0);
  Alcotest.(check int) "cell 7 is LSB of hi" 0x77 cells.(7);
  Alcotest.(check int) "cell 8 is MSB of lo" 0x88 cells.(8);
  Alcotest.(check int) "cell 15 is LSB of lo" 0xFF cells.(15)

let test_cells_validation () =
  Alcotest.check_raises "wrong length" (Invalid_argument "Block128.of_cells: length")
    (fun () -> ignore (Block128.of_cells (Array.make 15 0)));
  Alcotest.check_raises "cell range"
    (Invalid_argument "Block128.of_cells: cell range") (fun () ->
      ignore (Block128.of_cells (Array.make 16 256)))

let test_hex () =
  Alcotest.(check string) "hex" "000000000000000a000000000000000b"
    (Block128.to_hex (Block128.make ~hi:0xAL ~lo:0xBL))

let gen_block =
  QCheck2.Gen.map (fun (hi, lo) -> Block128.make ~hi ~lo) QCheck2.Gen.(pair int64 int64)

let prop_cells_roundtrip =
  QCheck2.Test.make ~name:"to_cells/of_cells roundtrip" ~count:300 gen_block
    (fun b -> Block128.equal (Block128.of_cells (Block128.to_cells b)) b)

let prop_rotr1_period =
  QCheck2.Test.make ~name:"rotr1 applied 128 times is identity" ~count:50 gen_block
    (fun b ->
      let r = ref b in
      for _ = 1 to 128 do
        r := Block128.rotr1 !r
      done;
      Block128.equal !r b)

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "popcount/hamming" `Quick test_popcount_hamming;
    Alcotest.test_case "rotr1" `Quick test_rotr1;
    Alcotest.test_case "shift_right_127" `Quick test_shift_right_127;
    Alcotest.test_case "cells layout" `Quick test_cells;
    Alcotest.test_case "cells validation" `Quick test_cells_validation;
    Alcotest.test_case "hex" `Quick test_hex;
    QCheck_alcotest.to_alcotest prop_cells_roundtrip;
    QCheck_alcotest.to_alcotest prop_rotr1_period;
  ]

open Ptguard
open Ptg_crypto

let cfg = Config.baseline
let rng0 = Ptg_util.Rng.create 77L
let key = Qarma.key_of_rng rng0

(* A realistic protected line: contiguous PFNs, uniform flags, two zeros. *)
let make_line () =
  Array.init 8 (fun i ->
      if i >= 6 then 0L
      else
        Ptg_pte.X86.make ~writable:true ~user:true ~dirty:true
          ~pfn:(Int64.of_int (0x3300 + i))
          ())

let addr = 0xBEEF_0000L

let stored_of line =
  let mac =
    Mac.truncate ~width:cfg.Config.mac_bits
      (Mac.compute key ~addr (Config.masked_for_mac cfg line))
  in
  Ptg_pte.Protection.embed_mac line mac

let masked = Config.masked_for_mac cfg

let expect_corrected ?strategies ~expected_step faulty original =
  match Correction.correct ?strategies cfg key ~addr faulty with
  | Correction.Corrected { line; step; guesses } ->
      Alcotest.(check bool) "faithful" true
        (Ptg_pte.Line.equal (masked line) (masked original));
      Alcotest.(check string) "step" expected_step (Correction.step_name step);
      Alcotest.(check bool) "guesses within G_max" true
        (guesses <= Config.max_correction_guesses cfg)
  | Correction.Uncorrectable _ -> Alcotest.fail "expected correction"

let test_verify_only () =
  let line = make_line () in
  let stored = stored_of line in
  Alcotest.(check bool) "clean verifies" true (Correction.verify_only cfg key ~addr stored);
  let bad = Ptg_pte.Line.flip_bit stored 1 in
  Alcotest.(check bool) "flip breaks exact match" false
    (Correction.verify_only cfg key ~addr bad)

let test_soft_mac_step () =
  let line = make_line () in
  let stored = stored_of line in
  (* 4 flips inside the MAC field of PTE 0 (bits 40..51 of word 0) *)
  let faulty = List.fold_left Ptg_pte.Line.flip_bit stored [ 40; 43; 46; 50 ] in
  expect_corrected ~expected_step:"soft-MAC-match" faulty line

let test_five_mac_flips_uncorrectable_as_is () =
  let line = make_line () in
  let stored = stored_of line in
  (* 5 MAC flips exceed k = 4; no data guess can recover the MAC bits. *)
  let faulty = List.fold_left Ptg_pte.Line.flip_bit stored [ 40; 43; 46; 50; 41 ] in
  match Correction.correct cfg key ~addr faulty with
  | Correction.Uncorrectable { guesses } ->
      Alcotest.(check bool) "within G_max" true
        (guesses <= Config.max_correction_guesses cfg)
  | Correction.Corrected _ -> Alcotest.fail "must not correct >k MAC damage"

let test_flip_and_check_step () =
  let line = make_line () in
  let stored = stored_of line in
  (* single flip in a protected PFN bit of PTE 2 *)
  let faulty = Ptg_pte.Line.flip_bit stored ((2 * 64) + 17) in
  expect_corrected ~expected_step:"flip-and-check" faulty line

let test_flip_and_check_with_mac_damage () =
  let line = make_line () in
  let stored = stored_of line in
  (* one data flip plus two MAC flips: flip-and-check under soft match *)
  let faulty =
    List.fold_left Ptg_pte.Line.flip_bit stored [ (3 * 64) + 2; (1 * 64) + 44; (5 * 64) + 47 ]
  in
  expect_corrected ~expected_step:"flip-and-check" faulty line

let test_zero_reset_step () =
  let line = make_line () in
  let stored = stored_of line in
  (* shred a zero PTE (word 7) with 3 content flips *)
  let faulty =
    List.fold_left Ptg_pte.Line.flip_bit stored [ (7 * 64) + 3; (7 * 64) + 20; (7 * 64) + 33 ]
  in
  expect_corrected ~expected_step:"zero-PTE-reset" faulty line

let test_flag_majority_step () =
  let line = make_line () in
  let stored = stored_of line in
  (* writable-bit flips in two different non-zero PTEs *)
  let faulty = List.fold_left Ptg_pte.Line.flip_bit stored [ (0 * 64) + 1; (4 * 64) + 1 ] in
  expect_corrected ~expected_step:"flag-majority" faulty line

let test_pfn_contiguity_step () =
  let line = make_line () in
  let stored = stored_of line in
  (* low-PFN damage in two PTEs *)
  let faulty = List.fold_left Ptg_pte.Line.flip_bit stored [ (1 * 64) + 13; (5 * 64) + 15 ] in
  expect_corrected ~expected_step:"pfn-contiguity" faulty line

let test_combined_step () =
  let line = make_line () in
  let stored = stored_of line in
  (* flag damage + PFN damage together *)
  let faulty = List.fold_left Ptg_pte.Line.flip_bit stored [ (0 * 64) + 63; (2 * 64) + 14 ] in
  expect_corrected ~expected_step:"flags+pfn" faulty line

let test_strategy_gating () =
  let line = make_line () in
  let stored = stored_of line in
  let faulty = Ptg_pte.Line.flip_bit stored ((2 * 64) + 17) in
  (* With flip-and-check disabled, a lone PFN flip falls to contiguity. *)
  let strategies =
    { Correction.all_strategies with Correction.use_flip_and_check = false }
  in
  (match Correction.correct ~strategies cfg key ~addr faulty with
  | Correction.Corrected { step; _ } ->
      Alcotest.(check string) "fallback strategy" "pfn-contiguity"
        (Correction.step_name step)
  | Correction.Uncorrectable _ -> Alcotest.fail "contiguity should recover");
  (* With nothing enabled, nothing corrects. *)
  match Correction.correct ~strategies:Correction.no_strategies cfg key ~addr faulty with
  | Correction.Uncorrectable { guesses } -> Alcotest.(check int) "no guesses" 0 guesses
  | Correction.Corrected _ -> Alcotest.fail "no strategies, no corrections"

let test_mac_zero_candidates () =
  (* Under the Optimized design, a zero line carries the address-free
     MAC-zero; correction must check zero candidates against it. *)
  let cfg_opt = Config.optimized in
  let mz = Mac.truncate ~width:96 (Mac.compute_zero key) in
  let stored = Ptg_pte.Protection.embed_mac (Array.make 8 0L) mz in
  let faulty = Ptg_pte.Line.flip_bit stored ((3 * 64) + 21) in
  match Correction.correct ~mac_zero:mz cfg_opt key ~addr faulty with
  | Correction.Corrected { line; _ } ->
      Alcotest.(check bool) "restored to zero content" true
        (Ptg_pte.Line.is_zero (masked line))
  | Correction.Uncorrectable _ -> Alcotest.fail "zero-line flip must correct"

let test_guess_budget () =
  (* On a fully-populated line (8 contiguity bases), an uncorrectable
     outcome exhausts exactly G_max guesses — the Section VI-D bound. *)
  let line =
    Array.init 8 (fun i ->
        Ptg_pte.X86.make ~writable:true ~user:true ~pfn:(Int64.of_int (0x4400 + i)) ())
  in
  let stored = stored_of line in
  let rng = Ptg_util.Rng.create 3L in
  (* Wreck the MAC beyond soft-matching so no guess can ever succeed. *)
  let faulty =
    List.fold_left Ptg_pte.Line.flip_bit stored [ 40; 42; 44; 46; 48; 50; 104; 106 ]
  in
  ignore rng;
  match Correction.correct cfg key ~addr faulty with
  | Correction.Uncorrectable { guesses } ->
      Alcotest.(check int) "exactly G_max guesses" (Config.max_correction_guesses cfg)
        guesses
  | Correction.Corrected _ -> Alcotest.fail "unmatchable MAC must not correct"

let prop_single_flip_always_corrected =
  QCheck2.Test.make ~name:"any single protected-bit flip corrects faithfully"
    ~count:60
    QCheck2.Gen.(pair (int_bound 7) (int_bound 63))
    (fun (word, bit) ->
      let protected_mask = Ptg_pte.Protection.protected_mask Ptg_pte.Protection.default in
      QCheck2.assume (Ptg_util.Bits.get protected_mask bit);
      let line = make_line () in
      let stored = stored_of line in
      let faulty = Ptg_pte.Line.flip_bit stored ((word * 64) + bit) in
      match Correction.correct cfg key ~addr faulty with
      | Correction.Corrected { line = fixed; _ } ->
          Ptg_pte.Line.equal (masked fixed) (masked line)
      | Correction.Uncorrectable _ -> false)

let prop_never_miscorrects =
  QCheck2.Test.make ~name:"correction is faithful or fails (no mis-corrections)"
    ~count:40
    QCheck2.Gen.(int_range 1 12)
    (fun nflips ->
      let rng = Ptg_util.Rng.create (Int64.of_int (nflips * 31)) in
      let line = make_line () in
      let stored = stored_of line in
      let faulty, _ = Ptg_rowhammer.Inject.flip_exactly rng ~n:nflips stored in
      match Correction.correct cfg key ~addr faulty with
      | Correction.Corrected { line = fixed; _ } ->
          Ptg_pte.Line.equal (masked fixed) (masked line)
      | Correction.Uncorrectable _ -> true)

let suite =
  [
    Alcotest.test_case "verify_only" `Quick test_verify_only;
    Alcotest.test_case "step 1: soft MAC" `Quick test_soft_mac_step;
    Alcotest.test_case "5 MAC flips stay detected" `Quick test_five_mac_flips_uncorrectable_as_is;
    Alcotest.test_case "step 2: flip and check" `Quick test_flip_and_check_step;
    Alcotest.test_case "step 2 with MAC damage" `Quick test_flip_and_check_with_mac_damage;
    Alcotest.test_case "step 3: zero reset" `Quick test_zero_reset_step;
    Alcotest.test_case "step 4: flag majority" `Quick test_flag_majority_step;
    Alcotest.test_case "step 5: pfn contiguity" `Quick test_pfn_contiguity_step;
    Alcotest.test_case "steps 4+5 combined" `Quick test_combined_step;
    Alcotest.test_case "strategy gating" `Quick test_strategy_gating;
    Alcotest.test_case "mac-zero candidates" `Quick test_mac_zero_candidates;
    Alcotest.test_case "guess budget" `Quick test_guess_budget;
    QCheck_alcotest.to_alcotest prop_single_flip_always_corrected;
    QCheck_alcotest.to_alcotest prop_never_miscorrects;
  ]

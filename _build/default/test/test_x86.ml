open Ptg_pte

(* Table I of the paper: every field at its architected bit position. *)
let test_table_i_positions () =
  let expected =
    [
      (X86.Present, 0); (X86.Writable, 1); (X86.User_accessible, 2);
      (X86.Write_through, 3); (X86.Cache_disable, 4); (X86.Accessed, 5);
      (X86.Dirty, 6); (X86.Huge_page, 7); (X86.Global, 8); (X86.No_execute, 63);
    ]
  in
  List.iter
    (fun (flag, bit) -> Alcotest.(check int) "flag bit" bit (X86.flag_bit flag))
    expected;
  Alcotest.(check int) "all flags listed" 10 (List.length X86.all_flags)

let test_flag_roundtrip () =
  List.iter
    (fun flag ->
      let pte = X86.set_flag 0L flag true in
      Alcotest.(check bool) "set then get" true (X86.get_flag pte flag);
      Alcotest.(check int) "exactly one bit" 1 (Ptg_util.Bits.popcount pte);
      Alcotest.(check bool) "clear" false
        (X86.get_flag (X86.set_flag pte flag false) flag))
    X86.all_flags

let test_pfn_field () =
  let pte = X86.set_pfn 0L 0xF_FFFF_FFFFL in
  (* PFN occupies 51:12 — 40 bits. *)
  Alcotest.(check int64) "pfn read back" 0xF_FFFF_FFFFL (X86.pfn pte);
  Alcotest.(check int64) "bits below 12 clear" 0L (Ptg_util.Bits.extract pte ~lo:0 ~hi:11);
  Alcotest.(check int64) "bits above 51 clear" 0L (Ptg_util.Bits.extract pte ~lo:52 ~hi:63);
  (* overwide pfn truncated to 40 bits *)
  Alcotest.(check int64) "pfn truncated" 0L (X86.pfn (X86.set_pfn 0L (Int64.shift_left 1L 40)))

let test_os_and_keys () =
  let pte = X86.set_os_bits 0L 0b101L in
  Alcotest.(check int64) "os bits" 0b101L (X86.os_bits pte);
  Alcotest.(check int64) "os bits at 11:9" (Int64.shift_left 0b101L 9) pte;
  let pte = X86.set_protection_key 0L 0xFL in
  Alcotest.(check int64) "protection key" 0xFL (X86.protection_key pte);
  Alcotest.(check int64) "keys at 62:59" (Int64.shift_left 0xFL 59) pte

let test_ignored_bits () =
  let pte = Ptg_util.Bits.insert 0L ~lo:52 ~hi:58 0x7FL in
  Alcotest.(check int64) "ignored bits 58:52" 0x7FL (X86.ignored_bits pte)

let test_make () =
  let pte =
    X86.make ~writable:true ~user:true ~accessed:true ~dirty:true ~global:true
      ~no_execute:true ~protection_key:5L ~pfn:0x1234L ()
  in
  Alcotest.(check bool) "present" true (X86.get_flag pte X86.Present);
  Alcotest.(check bool) "writable" true (X86.get_flag pte X86.Writable);
  Alcotest.(check bool) "user" true (X86.get_flag pte X86.User_accessible);
  Alcotest.(check bool) "nx" true (X86.get_flag pte X86.No_execute);
  Alcotest.(check int64) "pfn" 0x1234L (X86.pfn pte);
  Alcotest.(check int64) "key" 5L (X86.protection_key pte);
  let minimal = X86.make ~pfn:1L () in
  Alcotest.(check bool) "defaults clear" false (X86.get_flag minimal X86.Writable)

let test_phys_addr () =
  let pte = X86.make ~pfn:0xABCL () in
  Alcotest.(check int64) "phys addr" (Int64.shift_left 0xABCL 12) (X86.phys_addr pte)

let test_zero () =
  Alcotest.(check bool) "zero is zero" true (X86.is_zero X86.zero);
  Alcotest.(check bool) "non-zero" false (X86.is_zero (X86.make ~pfn:1L ()))

let test_pp () =
  let s = Format.asprintf "%a" X86.pp (X86.make ~writable:true ~pfn:0x1AL ()) in
  Alcotest.(check bool) "pp mentions pfn" true
    (String.length s > 0 && s.[0] = 'p');
  let z = Format.asprintf "%a" X86.pp X86.zero in
  Alcotest.(check string) "pp zero" "<zero>" z

let prop_fields_independent =
  QCheck2.Test.make ~name:"pfn write preserves flags" ~count:300
    QCheck2.Gen.(pair int64 (int_bound 0xFFFF))
    (fun (raw, pfn) ->
      let pte = X86.set_pfn raw (Int64.of_int pfn) in
      List.for_all (fun f -> X86.get_flag pte f = X86.get_flag raw f) X86.all_flags)

let suite =
  [
    Alcotest.test_case "Table I positions" `Quick test_table_i_positions;
    Alcotest.test_case "flag roundtrip" `Quick test_flag_roundtrip;
    Alcotest.test_case "pfn field" `Quick test_pfn_field;
    Alcotest.test_case "os bits / protection keys" `Quick test_os_and_keys;
    Alcotest.test_case "ignored bits" `Quick test_ignored_bits;
    Alcotest.test_case "make" `Quick test_make;
    Alcotest.test_case "phys addr" `Quick test_phys_addr;
    Alcotest.test_case "zero" `Quick test_zero;
    Alcotest.test_case "pp" `Quick test_pp;
    QCheck_alcotest.to_alcotest prop_fields_independent;
  ]

open Ptg_util

(* tiny local substring helper to avoid external deps *)
let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_render_shape () =
  let s = Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  let lines = String.split_on_char '\n' (String.trim s) in
  Alcotest.(check int) "3 rules + header + 2 rows" 6 (List.length lines);
  let widths = List.map String.length lines in
  List.iter (fun w -> Alcotest.(check int) "uniform width" (List.hd widths) w) widths

let test_render_mismatch () =
  Alcotest.check_raises "row width mismatch"
    (Invalid_argument "Table.render: row 0 has 1 cells, expected 2") (fun () ->
      ignore (Table.render ~header:[ "a"; "b" ] [ [ "only" ] ]))

let test_alignment () =
  let s =
    Table.render ~align:[ Table.Right ] ~header:[ "n" ] [ [ "1" ]; [ "100" ] ]
  in
  Alcotest.(check bool) "right aligned" true (contains_substring s "|   1 |")

let test_csv_quoting () =
  let s = Table.csv ~header:[ "x" ] [ [ "a,b" ]; [ "say \"hi\"" ]; [ "plain" ] ] in
  Alcotest.(check bool) "comma quoted" true (contains_substring s "\"a,b\"");
  Alcotest.(check bool) "quote doubled" true
    (contains_substring s "\"say \"\"hi\"\"\"");
  Alcotest.(check bool) "plain unquoted" true (contains_substring s "\nplain\n")

let test_formatters () =
  Alcotest.(check string) "fpct" "1.33%" (Table.fpct 1.3333);
  Alcotest.(check string) "f2" "2.50" (Table.f2 2.5);
  Alcotest.(check string) "f3" "0.125" (Table.f3 0.125)

let test_save_csv () =
  let path = Filename.temp_file "ptg_test" ".csv" in
  Table.save_csv ~path ~header:[ "a" ] [ [ "1" ] ];
  let ic = open_in path in
  let line1 = input_line ic in
  let line2 = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header" "a" line1;
  Alcotest.(check string) "row" "1" line2

let suite =
  [
    Alcotest.test_case "render shape" `Quick test_render_shape;
    Alcotest.test_case "row mismatch" `Quick test_render_mismatch;
    Alcotest.test_case "alignment" `Quick test_alignment;
    Alcotest.test_case "csv quoting" `Quick test_csv_quoting;
    Alcotest.test_case "formatters" `Quick test_formatters;
    Alcotest.test_case "save csv" `Quick test_save_csv;
  ]

open Ptg_dram

let t = Timing.ddr4_3ghz

let test_latencies () =
  Alcotest.(check int) "row hit" (t.Timing.t_cas + t.Timing.bus_and_queue)
    (Timing.read_latency t Timing.Hit);
  Alcotest.(check int) "closed row"
    (t.Timing.t_rcd + t.Timing.t_cas + t.Timing.bus_and_queue)
    (Timing.read_latency t Timing.Closed_row);
  Alcotest.(check int) "conflict"
    (t.Timing.t_rp + t.Timing.t_rcd + t.Timing.t_cas + t.Timing.bus_and_queue)
    (Timing.read_latency t Timing.Conflict);
  (* The paper's "DRAM access takes 50ns": conflict ~ 147 cycles @3GHz. *)
  Alcotest.(check int) "conflict is 147 cycles" 147 (Timing.read_latency t Timing.Conflict)

let test_row_buffer_state_machine () =
  let d = Dram.create () in
  let r1 = Dram.access d ~now:0 ~addr:0x1000L ~is_write:false in
  Alcotest.(check bool) "first access opens row" true
    (r1.Dram.outcome = Timing.Closed_row);
  let r2 = Dram.access d ~now:100 ~addr:0x1040L ~is_write:false in
  Alcotest.(check bool) "same row hits" true (r2.Dram.outcome = Timing.Hit);
  (* Access a different row in the same bank: need an address mapping to
     the same bank but another row; same column+channel, row+1. *)
  let g = Dram.geometry d in
  let c = Geometry.decode g 0x1000L in
  let other = Geometry.encode g { c with Geometry.row = c.Geometry.row + 1 } in
  let r3 = Dram.access d ~now:200 ~addr:other ~is_write:false in
  Alcotest.(check bool) "row conflict" true (r3.Dram.outcome = Timing.Conflict)

let test_storage () =
  let d = Dram.create () in
  Alcotest.(check bool) "unwritten reads zero" true
    (Ptg_pte.Line.is_zero (Dram.read_line d 0x2000L));
  let line = Array.init 8 Int64.of_int in
  Dram.write_line d 0x2000L line;
  Alcotest.(check bool) "read back" true (Ptg_pte.Line.equal line (Dram.read_line d 0x2000L));
  (* line-granular: offset within line reads same line *)
  Alcotest.(check bool) "unaligned addr same line" true
    (Ptg_pte.Line.equal line (Dram.read_line d 0x2038L));
  Alcotest.(check int) "stored count" 1 (Dram.stored_line_count d)

let test_flip_stored_bit () =
  let d = Dram.create () in
  let line = Array.make 8 0L in
  Dram.write_line d 0x3000L line;
  Dram.flip_stored_bit d ~addr:0x3000L ~bit:70;
  let got = Dram.read_line d 0x3000L in
  Alcotest.(check int64) "bit 70 is word 1 bit 6" (Ptg_util.Bits.bit 6) got.(1)

let test_activation_counting () =
  let d = Dram.create () in
  let g = Dram.geometry d in
  let c = Geometry.decode g 0x1000L in
  let row_addr r = Geometry.encode g { c with Geometry.row = r } in
  (* alternate two rows to force activations *)
  for _ = 1 to 5 do
    ignore (Dram.access d ~now:0 ~addr:(row_addr 10) ~is_write:false);
    ignore (Dram.access d ~now:0 ~addr:(row_addr 12) ~is_write:false)
  done;
  Alcotest.(check int) "row 10 activations" 5
    (Dram.activations d ~channel:c.Geometry.channel ~bank:c.Geometry.bank ~row:10);
  Alcotest.(check int) "total activations" 10 (Dram.total_activations d)

let test_refresh_row_resets () =
  let d = Dram.create () in
  let g = Dram.geometry d in
  let c = Geometry.decode g 0x1000L in
  let row_addr r = Geometry.encode g { c with Geometry.row = r } in
  ignore (Dram.access d ~now:0 ~addr:(row_addr 20) ~is_write:false);
  ignore (Dram.access d ~now:0 ~addr:(row_addr 22) ~is_write:false);
  Dram.refresh_row d ~channel:c.Geometry.channel ~bank:c.Geometry.bank ~row:20;
  Alcotest.(check int) "refresh clears count" 0
    (Dram.activations d ~channel:c.Geometry.channel ~bank:c.Geometry.bank ~row:20)

let test_listeners () =
  let d = Dram.create () in
  let acts = ref 0 and refreshes = ref 0 and epochs = ref 0 in
  Dram.on_activate d (fun _ -> incr acts);
  Dram.subscribe_refresh d (fun ~channel:_ ~bank:_ ~row:_ -> incr refreshes);
  Dram.on_refresh_epoch d (fun () -> incr epochs);
  ignore (Dram.access d ~now:0 ~addr:0x1000L ~is_write:false);
  ignore (Dram.access d ~now:1 ~addr:0x1040L ~is_write:false) (* row hit: no act *);
  Dram.refresh_row d ~channel:0 ~bank:0 ~row:5;
  Alcotest.(check int) "one activation" 1 !acts;
  Alcotest.(check int) "one refresh" 1 !refreshes;
  (* jump past the refresh window *)
  ignore
    (Dram.access d
       ~now:((Dram.timing d).Timing.refresh_interval + 1)
       ~addr:0x1000L ~is_write:false);
  Alcotest.(check int) "epoch rolled" 1 !epochs

let test_epoch_clears_activations () =
  let d = Dram.create () in
  let g = Dram.geometry d in
  let c = Geometry.decode g 0x1000L in
  ignore (Dram.access d ~now:0 ~addr:0x1000L ~is_write:false);
  ignore
    (Dram.access d
       ~now:((Dram.timing d).Timing.refresh_interval + 1)
       ~addr:0x800000L ~is_write:false);
  Alcotest.(check int) "counts cleared at epoch" 0
    (Dram.activations d ~channel:c.Geometry.channel ~bank:c.Geometry.bank
       ~row:c.Geometry.row)

let test_lines_in_row_and_iter () =
  let d = Dram.create () in
  let g = Dram.geometry d in
  let c = Geometry.decode g 0x4000L in
  Dram.write_line d 0x4000L (Array.make 8 7L);
  Dram.write_line d 0x4040L (Array.make 8 9L);
  let in_row =
    Dram.lines_in_row d ~channel:c.Geometry.channel ~bank:c.Geometry.bank
      ~row:c.Geometry.row
  in
  Alcotest.(check int) "two lines in row" 2 (List.length in_row);
  let n = ref 0 in
  Dram.iter_stored d (fun _ _ -> incr n);
  Alcotest.(check int) "iter_stored visits all" 2 !n

let suite =
  [
    Alcotest.test_case "timing latencies" `Quick test_latencies;
    Alcotest.test_case "row buffer" `Quick test_row_buffer_state_machine;
    Alcotest.test_case "storage" `Quick test_storage;
    Alcotest.test_case "flip stored bit" `Quick test_flip_stored_bit;
    Alcotest.test_case "activation counting" `Quick test_activation_counting;
    Alcotest.test_case "refresh resets" `Quick test_refresh_row_resets;
    Alcotest.test_case "listeners" `Quick test_listeners;
    Alcotest.test_case "epoch clears" `Quick test_epoch_clears_activations;
    Alcotest.test_case "lines_in_row / iter" `Quick test_lines_in_row_and_iter;
  ]

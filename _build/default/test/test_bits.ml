open Ptg_util

let check_i = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)
let check_b = Alcotest.(check bool)

let test_bit_basics () =
  check_i64 "bit 0" 1L (Bits.bit 0);
  check_i64 "bit 63" Int64.min_int (Bits.bit 63);
  check_b "get set bit" true (Bits.get (Bits.bit 17) 17);
  check_b "get clear bit" false (Bits.get (Bits.bit 17) 16);
  check_i64 "set" 0b101L (Bits.set 0b001L 2);
  check_i64 "clear" 0b001L (Bits.clear 0b101L 2);
  check_i64 "flip on" 0b101L (Bits.flip 0b001L 2);
  check_i64 "flip off" 0b001L (Bits.flip 0b101L 2);
  check_i64 "assign true" 0b101L (Bits.assign 0b001L 2 true);
  check_i64 "assign false" 0b001L (Bits.assign 0b101L 2 false)

let test_bit_bounds () =
  Alcotest.check_raises "bit -1" (Invalid_argument "Bits.bit") (fun () ->
      ignore (Bits.bit (-1)));
  Alcotest.check_raises "bit 64" (Invalid_argument "Bits.bit") (fun () ->
      ignore (Bits.bit 64))

let test_mask () =
  check_i64 "mask 0" 0L (Bits.mask 0);
  check_i64 "mask 1" 1L (Bits.mask 1);
  check_i64 "mask 12" 0xFFFL (Bits.mask 12);
  check_i64 "mask 64" (-1L) (Bits.mask 64);
  Alcotest.check_raises "mask 65" (Invalid_argument "Bits.mask") (fun () ->
      ignore (Bits.mask 65))

let test_field_mask () =
  check_i64 "field 0..3" 0xFL (Bits.field_mask ~lo:0 ~hi:3);
  check_i64 "field 40..51 (MAC slice)" 0x000F_FF00_0000_0000L
    (Bits.field_mask ~lo:40 ~hi:51);
  check_i64 "field 52..58 (identifier slice)" 0x07F0_0000_0000_0000L
    (Bits.field_mask ~lo:52 ~hi:58);
  check_i64 "single bit field" (Bits.bit 63) (Bits.field_mask ~lo:63 ~hi:63)

let test_extract_insert () =
  let w = 0x1234_5678_9ABC_DEF0L in
  check_i64 "extract low nibble" 0L (Bits.extract w ~lo:0 ~hi:3);
  check_i64 "extract byte 7" 0x12L (Bits.extract w ~lo:56 ~hi:63);
  check_i64 "insert then extract" 0x5AL
    (Bits.extract (Bits.insert w ~lo:20 ~hi:27 0x5AL) ~lo:20 ~hi:27);
  (* insertion must not disturb other bits *)
  let w' = Bits.insert w ~lo:20 ~hi:27 0x5AL in
  check_i64 "insert preserves below" (Bits.extract w ~lo:0 ~hi:19)
    (Bits.extract w' ~lo:0 ~hi:19);
  check_i64 "insert preserves above" (Bits.extract w ~lo:28 ~hi:63)
    (Bits.extract w' ~lo:28 ~hi:63);
  (* overflowing value is truncated to the field *)
  check_i64 "insert truncates" 0xFL (Bits.extract (Bits.insert 0L ~lo:4 ~hi:7 0xFFL) ~lo:4 ~hi:7)

let test_popcount () =
  check_i "popcount 0" 0 (Bits.popcount 0L);
  check_i "popcount -1" 64 (Bits.popcount (-1L));
  check_i "popcount 0xF0F0" 8 (Bits.popcount 0xF0F0L);
  check_i "popcount min_int" 1 (Bits.popcount Int64.min_int)

let test_hamming_parity () =
  check_i "hamming self" 0 (Bits.hamming 0xABCDL 0xABCDL);
  check_i "hamming 1 bit" 1 (Bits.hamming 0L 0x800000L);
  check_i "hamming all" 64 (Bits.hamming 0L (-1L));
  check_b "parity odd" true (Bits.parity 0b111L);
  check_b "parity even" false (Bits.parity 0b110L)

let test_rot () =
  check_i64 "rotl 0" 0xDEADL (Bits.rotl 0xDEADL 0);
  check_i64 "rotl 64 = id" 0xDEADL (Bits.rotl 0xDEADL 64);
  check_i64 "rotl top bit" 1L (Bits.rotl Int64.min_int 1);
  check_i64 "rotr bottom bit" Int64.min_int (Bits.rotr 1L 1);
  check_i "rotl8 basic" 0b11 (Bits.rotl8 0b10000001 1);
  check_i "rotl8 id mod 8" 0xA5 (Bits.rotl8 0xA5 8)

let test_bytes_roundtrip () =
  let w = 0x0123_4567_89AB_CDEFL in
  check_i64 "bytes roundtrip" w (Bits.int64_of_bytes_le (Bits.bytes_of_int64_le w) ~off:0)

let test_hex () =
  Alcotest.(check string) "to_hex" "00000000deadbeef" (Bits.to_hex 0xDEADBEEFL)

(* Properties *)
let prop_popcount_naive =
  QCheck2.Test.make ~name:"popcount matches naive loop" ~count:500
    QCheck2.Gen.int64 (fun w ->
      let naive = ref 0 in
      for i = 0 to 63 do
        if Bits.get w i then incr naive
      done;
      Bits.popcount w = !naive)

let prop_rot_inverse =
  QCheck2.Test.make ~name:"rotr undoes rotl" ~count:500
    QCheck2.Gen.(pair int64 (int_bound 200))
    (fun (w, n) -> Int64.equal (Bits.rotr (Bits.rotl w n) n) w)

let prop_insert_extract =
  QCheck2.Test.make ~name:"extract of insert returns value" ~count:500
    QCheck2.Gen.(triple int64 (int_bound 63) (int_bound 63))
    (fun (w, a, b) ->
      let lo = min a b and hi = max a b in
      let v = Int64.logand w (Bits.mask (hi - lo + 1)) in
      Int64.equal (Bits.extract (Bits.insert 0L ~lo ~hi v) ~lo ~hi) v)

let prop_flip_involution =
  QCheck2.Test.make ~name:"flip is an involution" ~count:500
    QCheck2.Gen.(pair int64 (int_bound 63))
    (fun (w, i) -> Int64.equal (Bits.flip (Bits.flip w i) i) w)

let suite =
  [
    Alcotest.test_case "bit basics" `Quick test_bit_basics;
    Alcotest.test_case "bit bounds" `Quick test_bit_bounds;
    Alcotest.test_case "mask" `Quick test_mask;
    Alcotest.test_case "field_mask" `Quick test_field_mask;
    Alcotest.test_case "extract/insert" `Quick test_extract_insert;
    Alcotest.test_case "popcount" `Quick test_popcount;
    Alcotest.test_case "hamming/parity" `Quick test_hamming_parity;
    Alcotest.test_case "rotations" `Quick test_rot;
    Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
    Alcotest.test_case "hex" `Quick test_hex;
    QCheck_alcotest.to_alcotest prop_popcount_naive;
    QCheck_alcotest.to_alcotest prop_rot_inverse;
    QCheck_alcotest.to_alcotest prop_insert_extract;
    QCheck_alcotest.to_alcotest prop_flip_involution;
  ]

open Ptg_dram

let test_capacity () =
  Alcotest.(check int64) "4 GB config"
    (Int64.mul 4L (Int64.mul 1024L (Int64.mul 1024L 1024L)))
    (Geometry.capacity_bytes Geometry.ddr4_4gb);
  Alcotest.(check int64) "16 GB config"
    (Int64.mul 16L (Int64.mul 1024L (Int64.mul 1024L 1024L)))
    (Geometry.capacity_bytes Geometry.ddr4_16gb)

let test_total_banks () =
  Alcotest.(check int) "4gb banks" 16 (Geometry.total_banks Geometry.ddr4_4gb);
  Alcotest.(check int) "16gb banks" 32 (Geometry.total_banks Geometry.ddr4_16gb)

let test_decode_fields_in_range () =
  let g = Geometry.ddr4_4gb in
  let rng = Ptg_util.Rng.create 1L in
  for _ = 1 to 1000 do
    let addr = Ptg_util.Rng.int64_bounded rng (Geometry.capacity_bytes g) in
    let c = Geometry.decode g addr in
    if c.Geometry.channel < 0 || c.Geometry.channel >= g.Geometry.channels then
      Alcotest.fail "channel out of range";
    if c.Geometry.bank < 0 || c.Geometry.bank >= Geometry.total_banks g then
      Alcotest.fail "bank out of range";
    if c.Geometry.row < 0 || c.Geometry.row >= g.Geometry.rows_per_bank then
      Alcotest.fail "row out of range";
    if c.Geometry.col < 0 || c.Geometry.col >= g.Geometry.columns then
      Alcotest.fail "col out of range"
  done

let test_adjacent_lines_same_row () =
  (* Consecutive lines land in the same row (locality preserved). *)
  let g = Geometry.ddr4_4gb in
  let a = Geometry.decode g 0x10000L in
  let b = Geometry.decode g 0x10040L in
  Alcotest.(check int) "same row" a.Geometry.row b.Geometry.row;
  Alcotest.(check int) "same bank" a.Geometry.bank b.Geometry.bank;
  Alcotest.(check int) "next column" (a.Geometry.col + 1) b.Geometry.col

let test_row_neighbors () =
  let g = Geometry.ddr4_4gb in
  Alcotest.(check (list int)) "interior" [ 99; 101 ]
    (Geometry.row_neighbors g 100 ~distance:1);
  Alcotest.(check (list int)) "edge clipped" [ 1 ] (Geometry.row_neighbors g 0 ~distance:1);
  Alcotest.(check (list int)) "distance 2" [ 98; 102 ]
    (Geometry.row_neighbors g 100 ~distance:2);
  Alcotest.check_raises "distance 0" (Invalid_argument "Geometry.row_neighbors: distance")
    (fun () -> ignore (Geometry.row_neighbors g 5 ~distance:0))

let prop_decode_encode =
  QCheck2.Test.make ~name:"encode inverts decode (line-aligned)" ~count:500
    QCheck2.Gen.(map Int64.abs int64)
    (fun raw ->
      let g = Ptg_dram.Geometry.ddr4_4gb in
      let addr =
        Int64.mul 64L
          (Int64.rem (Int64.div raw 64L)
             (Int64.div (Geometry.capacity_bytes g) 64L))
      in
      let c = Geometry.decode g addr in
      Int64.equal (Geometry.encode g c) addr)

let suite =
  [
    Alcotest.test_case "capacity" `Quick test_capacity;
    Alcotest.test_case "total banks" `Quick test_total_banks;
    Alcotest.test_case "decode ranges" `Quick test_decode_fields_in_range;
    Alcotest.test_case "line locality" `Quick test_adjacent_lines_same_row;
    Alcotest.test_case "row neighbors" `Quick test_row_neighbors;
    QCheck_alcotest.to_alcotest prop_decode_encode;
  ]

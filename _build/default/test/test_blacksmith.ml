open Ptg_rowhammer

let test_schedule_activation_rule () =
  let p =
    {
      Blacksmith.period = 8;
      tuples = [ { Blacksmith.row = 100; freq = 4; phase = 1; amplitude = 2 } ];
    }
  in
  let sched = Blacksmith.schedule p ~slots:16 in
  (* active at slots where (i - 1) mod 4 < 2, i.e. i mod 4 in {1, 2} *)
  Array.iteri
    (fun i row ->
      let should_be_active = i mod 4 = 1 || i mod 4 = 2 in
      if should_be_active then Alcotest.(check int) "active slot" 100 row
      else if row = 100 then Alcotest.failf "row active at wrong slot %d" i)
    sched

let test_schedule_filler_alternates () =
  let p = { Blacksmith.period = 4; tuples = [] } in
  let sched = Blacksmith.schedule p ~slots:10 in
  for i = 0 to 8 do
    if sched.(i) = sched.(i + 1) then Alcotest.fail "filler must alternate rows"
  done

let test_schedule_validation () =
  Alcotest.check_raises "bad tuple" (Invalid_argument "Blacksmith.schedule: tuple")
    (fun () ->
      ignore
        (Blacksmith.schedule
           {
             Blacksmith.period = 8;
             tuples = [ { Blacksmith.row = 1; freq = 0; phase = 0; amplitude = 1 } ];
           }
           ~slots:4))

let test_random_pattern_shape () =
  let rng = Ptg_util.Rng.create 2L in
  for _ = 1 to 50 do
    let p = Blacksmith.random_pattern rng ~victim:500 ~decoys:3 in
    Alcotest.(check int) "aggressors + decoys" 5 (List.length p.Blacksmith.tuples);
    let rows = List.map (fun t -> t.Blacksmith.row) p.Blacksmith.tuples in
    Alcotest.(check bool) "both distance-1 aggressors present" true
      (List.mem 499 rows && List.mem 501 rows);
    List.iter
      (fun t ->
        if t.Blacksmith.freq < 1 || t.Blacksmith.freq > p.Blacksmith.period then
          Alcotest.fail "freq out of range";
        if t.Blacksmith.phase < 0 || t.Blacksmith.phase >= p.Blacksmith.period then
          Alcotest.fail "phase out of range")
      p.Blacksmith.tuples
  done

let test_run_activates () =
  let dram = Ptg_dram.Dram.create () in
  let p =
    {
      Blacksmith.period = 4;
      tuples =
        [
          { Blacksmith.row = 100; freq = 2; phase = 0; amplitude = 1 };
          { Blacksmith.row = 102; freq = 2; phase = 1; amplitude = 1 };
        ];
    }
  in
  let finish = Blacksmith.run dram ~channel:0 ~bank:0 p ~slots:100 ~start_time:0 in
  Alcotest.(check bool) "time advanced" true (finish > 0);
  Alcotest.(check int) "dense activation stream" 100 (Ptg_dram.Dram.total_activations dram)

let test_campaign_finds_patterns () =
  (* The Blacksmith empirical result in miniature: fuzzing finds at least
     one pattern that flips bits through TRR, even though the uniform
     double-sided pattern is fully mitigated (test_mitigation.ml). *)
  let rng = Ptg_util.Rng.create 77L in
  let r = Ptg_mitigations.Blacksmith_campaign.campaign ~tries:20 ~rng ~victim:900 () in
  Alcotest.(check int) "tries recorded" 20 r.Ptg_mitigations.Blacksmith_campaign.tries;
  Alcotest.(check bool) "fuzzing found an effective pattern" true
    (r.Ptg_mitigations.Blacksmith_campaign.effective_patterns >= 1);
  Alcotest.(check bool) "best pattern reported" true
    (r.Ptg_mitigations.Blacksmith_campaign.best <> None);
  Alcotest.(check bool) "not every random pattern works" true
    (r.Ptg_mitigations.Blacksmith_campaign.effective_patterns < 20)

let suite =
  [
    Alcotest.test_case "schedule activation rule" `Quick test_schedule_activation_rule;
    Alcotest.test_case "schedule filler" `Quick test_schedule_filler_alternates;
    Alcotest.test_case "schedule validation" `Quick test_schedule_validation;
    Alcotest.test_case "random pattern shape" `Quick test_random_pattern_shape;
    Alcotest.test_case "run activates" `Quick test_run_activates;
    Alcotest.test_case "campaign finds patterns" `Slow test_campaign_finds_patterns;
  ]
